// Package advisor is the public, versioned entry point to the XML
// Index Advisor — the stable API both the command-line tools and the
// xiad server mode are built on. Everything under internal/ is an
// implementation detail; programs embed the advisor through this
// package only.
//
// The shape of the API follows the paper's server mode (§3): the
// advisor lives inside the engine behind a stable interface, workloads
// are opened once into long-lived sessions, and each session serves
// many recommendation requests — different strategies, different disk
// budgets — against the same prepared candidate space and warm what-if
// cache.
//
//	adv, err := advisor.New(cat,
//		advisor.WithStrategy("race"),
//		advisor.WithParallelism(8))
//	sess, err := adv.Open(ctx, w)
//	resp, err := sess.Recommend(ctx, advisor.RecommendRequest{BudgetPages: 512})
//
// Requests and responses are versioned DTOs with stable JSON tags
// (RecommendRequest, RecommendResponse; APIVersion pins the wire
// format), so the same types serve as the library surface and the
// xiad HTTP/JSON wire format. For live progress, RecommendStream
// returns a channel of Events — candidate-space stats, every search
// TraceEvent as it is emitted, and the run's cache/kernel counters —
// terminated by the result or an error.
package advisor

import (
	"context"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/search"
	"repro/internal/sqltype"
	"repro/internal/stats"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// Workload is a weighted set of queries and updates to recommend
// indexes for. Build one programmatically (AddQuery/AddInsert/
// AddDelete) or parse the textual workload format with ParseWorkload.
type Workload = workload.Workload

// Catalog is the database catalog an Advisor recommends against.
type Catalog = catalog.Catalog

// ParseWorkload parses the textual workload format (one weighted query
// or update statement per line; see internal/workload).
func ParseWorkload(name, text string) (*Workload, error) {
	return workload.Parse(name, text)
}

// Strategies returns the sorted canonical names of every registered
// search strategy, including the race portfolio.
func Strategies() []string { return search.Names() }

// DefaultStrategy is the strategy used when a request names none: the
// paper's primary algorithm.
func DefaultStrategy() string { return search.Default }

// CanonicalStrategy resolves a strategy name or alias ("greedy",
// "top-down", ...) to its canonical registered name; the error of an
// unknown name enumerates the valid strategies.
func CanonicalStrategy(name string) (string, error) { return search.Canonical(name) }

// Advisor is a configured recommendation service over one catalog. It
// is safe for concurrent use: sessions may be opened and exercised from
// many goroutines, and they share the advisor's what-if engine and its
// memoizing cache.
type Advisor struct {
	cat  *catalog.Catalog
	core *core.Advisor
	cfg  config
}

// New builds an advisor over the catalog. Options are validated
// here — this is the single defaulting/validation path for every
// entry point (CLI flags, server requests, library callers) — and an
// invalid one fails with an *OptionError wrapping ErrInvalidOption.
func New(cat *Catalog, opts ...Option) (*Advisor, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Advisor{cat: cat, core: core.New(cat, cfg.core), cfg: cfg}, nil
}

// Workers is the what-if engine's evaluation parallelism (>= 1).
func (a *Advisor) Workers() int { return a.core.CostEngine().Workers() }

// Resilience reports the costing resilience middleware's circuit-
// breaker state ("closed", "open", "half-open") and its lifetime
// counters. ok is false when the advisor was built without
// WithResilience.
func (a *Advisor) Resilience() (state string, counters ResilienceStats, ok bool) {
	res := a.core.Resilient()
	if res == nil {
		return "", ResilienceStats{}, false
	}
	return res.State().String(), res.ResilienceCounters(), true
}

// Degraded reports whether the advisor is currently degraded: the
// costing circuit breaker is not closed, so uncached what-if
// evaluations fail fast and recommendations may come back best-so-far.
// Always false without WithResilience. The xiad health endpoint
// surfaces this as status "degraded".
func (a *Advisor) Degraded() bool {
	state, _, ok := a.Resilience()
	return ok && state != whatif.BreakerClosed.String()
}

// Strategy is the advisor's default search strategy (canonical name),
// used by requests that do not name one.
func (a *Advisor) Strategy() string { return a.cfg.core.Search.String() }

// BudgetPages is the advisor's default disk budget (0 = unlimited),
// used by requests that do not carry one.
func (a *Advisor) BudgetPages() int64 { return a.cfg.core.DiskBudgetPages }

// Open prepares a session for the workload: the candidate pipeline
// runs once (enumeration, generalization, containment DAG) and the
// what-if evaluator is bound, so every subsequent Recommend on the
// session — any strategy, any budget, from any goroutine — reuses the
// candidate space and the warm cache.
//
// With WithSnapshotDir, Open first tries to warm-start from the
// workload's snapshot file: a hit skips the pipeline and the base-cost
// evaluations entirely, and the restored session recommends
// byte-identically to the one that saved. Any miss or mismatch falls
// back to a cold prepare.
func (a *Advisor) Open(ctx context.Context, w *Workload) (*Session, error) {
	if sess := a.tryRestore(ctx, w); sess != nil {
		return sess, nil
	}
	prep, err := a.core.Prepare(ctx, w)
	if err != nil {
		return nil, err
	}
	return &Session{
		adv:      a,
		prep:     prep,
		name:     w.Name,
		created:  time.Now(),
		snapPath: a.WorkloadSnapshotPath(w),
	}, nil
}

// Recommend is the one-shot convenience path: prepare the workload,
// serve the single request, and release the session. Unlike a session
// Recommend, the response's elapsed time and cache/kernel counters
// cover the whole run, candidate generation included.
func (a *Advisor) Recommend(ctx context.Context, w *Workload, req RecommendRequest) (*RecommendResponse, error) {
	strategy, budgetPages, err := req.validate(a)
	if err != nil {
		return nil, err
	}
	ctx, cancel := a.requestContext(ctx, req)
	defer cancel()
	rec, prep, err := a.core.RecommendFull(ctx, w, core.SearchKind(strategy), budgetPages, nil)
	if err != nil {
		return nil, err
	}
	sess := &Session{adv: a, prep: prep, name: w.Name, created: time.Now(), closed: true}
	return sess.response(rec, strategy, budgetPages, req), nil
}

// requestContext applies the effective deadline — the request's
// timeout, falling back to the advisor's WithDeadline — to ctx.
func (a *Advisor) requestContext(ctx context.Context, req RecommendRequest) (context.Context, context.CancelFunc) {
	deadline := a.cfg.deadline
	if req.TimeoutMS > 0 {
		deadline = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if deadline > 0 {
		return context.WithTimeout(ctx, deadline)
	}
	return ctx, func() {}
}

// EvaluateOn measures a recommended configuration's benefit on another
// workload (the unseen-queries analysis of the demo): total weighted
// cost without indexes, with the configuration, derived entirely from
// the response DTO.
func (a *Advisor) EvaluateOn(ctx context.Context, w *Workload, indexes []Index) (noIdx, withIdx float64, err error) {
	defs, err := a.defsFor(indexes)
	if err != nil {
		return 0, 0, err
	}
	return a.core.EvaluateDefs(ctx, w, defs)
}

// Materialize creates the recommended indexes as real (physical)
// indexes in the catalog, returning their names — the demo's final
// "create the recommended configuration" step. Like EvaluateOn it
// works from the response DTO alone, so it also materializes
// recommendations that crossed a process boundary (the xiad wire).
func (a *Advisor) Materialize(resp *RecommendResponse) ([]string, error) {
	var names []string
	for _, idx := range resp.Indexes {
		p, err := pattern.Parse(idx.Pattern)
		if err != nil {
			return names, fmt.Errorf("advisor: index %s: %w", idx.Name, err)
		}
		ty, err := sqltype.ParseType(idx.Type)
		if err != nil {
			return names, fmt.Errorf("advisor: index %s: %w", idx.Name, err)
		}
		if _, err := a.cat.CreateIndex(idx.Name, idx.Collection, p, ty); err != nil {
			return names, err
		}
		names = append(names, idx.Name)
	}
	return names, nil
}

// defsFor rebuilds virtual index definitions from response DTO entries.
func (a *Advisor) defsFor(indexes []Index) ([]*catalog.IndexDef, error) {
	defs := make([]*catalog.IndexDef, 0, len(indexes))
	byColl := map[string]*stats.Stats{}
	for _, idx := range indexes {
		p, err := pattern.Parse(idx.Pattern)
		if err != nil {
			return nil, fmt.Errorf("advisor: index %s: %w", idx.Name, err)
		}
		ty, err := sqltype.ParseType(idx.Type)
		if err != nil {
			return nil, fmt.Errorf("advisor: index %s: %w", idx.Name, err)
		}
		st := byColl[idx.Collection]
		if st == nil {
			if st, err = a.cat.Stats(idx.Collection); err != nil {
				return nil, err
			}
			byColl[idx.Collection] = st
		}
		defs = append(defs, catalog.VirtualDef(idx.Name, idx.Collection, p, ty, st))
	}
	return defs, nil
}
