package advisor_test

import (
	"os"
	"testing"

	"repro/internal/apibaseline"
)

// TestExportedAPIBaseline enforces the committed exported-identifier
// baseline from inside `go test`, so API drift fails the ordinary test
// run, not just the dedicated CI step. Accept intentional changes with
// `go run ./cmd/apicheck -update` from the repository root.
func TestExportedAPIBaseline(t *testing.T) {
	got, err := apibaseline.Surface([][2]string{
		{"advisor", "."},
		{"advisor/server", "./server"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("../api/v1.txt")
	if err != nil {
		t.Fatalf("%v (run `go run ./cmd/apicheck -update` from the repo root)", err)
	}
	if got != string(want) {
		t.Errorf("exported API drifted from api/v1.txt; if intentional, run `go run ./cmd/apicheck -update` and commit.\n--- current surface ---\n%s", got)
	}
}
