package advisor

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/candidate"
	"repro/internal/pattern"
	"repro/internal/search"
	"repro/internal/whatif"
)

// APIVersion is the wire-format version of the request/response DTOs.
// Requests may carry it explicitly; an unknown version is rejected. The
// v1 JSON shape is pinned by a golden test and the exported-identifier
// baseline in api/v1.txt.
const APIVersion = "v1"

// ErrInvalidRequest is the sentinel every request-validation failure
// wraps; the xiad server maps it to HTTP 400.
var ErrInvalidRequest = errors.New("advisor: invalid request")

// ErrCostServiceUnavailable is the sentinel a recommendation fails
// with when the costing circuit breaker (WithResilience) is open and
// no best-so-far result could be served; the xiad server maps it to
// HTTP 503 with a Retry-After hint. Degraded runs that do return a
// result carry RecommendResponse.Degraded instead of this error.
var ErrCostServiceUnavailable = whatif.ErrCircuitOpen

// RequestError reports one invalid request field. It unwraps to
// ErrInvalidRequest.
type RequestError struct {
	// Field is the JSON field name, e.g. "budgetPages".
	Field string
	// Reason says what a valid value looks like.
	Reason string
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("advisor: request field %q: %s", e.Field, e.Reason)
}

func (e *RequestError) Unwrap() error { return ErrInvalidRequest }

// Stats aliases: the run statistics blocks of a RecommendResponse. They
// are shared with the internal engines so counters never drift from
// what the advisor actually measured; their JSON shape is part of the
// pinned v1 wire format.
type (
	// SearchStats summarize one strategy run (rounds, wall time, cache
	// deltas; winner and members for the race portfolio).
	SearchStats = search.Stats
	// TraceEvent is one structured search step.
	TraceEvent = search.TraceEvent
	// Trace is a structured search trace.
	Trace = search.Trace
	// CacheStats are what-if engine counter deltas for one run.
	CacheStats = whatif.Stats
	// ResilienceStats are the costing resilience middleware's counters
	// (retries, breaker trips and rejects, call timeouts, recovered
	// panics), nested in CacheStats and reported by Advisor.Resilience.
	ResilienceStats = whatif.ResilienceStats
	// RelevanceStats summarize per-query relevant-candidate counts: how
	// many of the session's candidates can serve each workload query at
	// all, as the engine's relevance projection sees it.
	RelevanceStats = whatif.RelevanceStats
	// KernelStats are pattern-containment kernel counter deltas for one
	// run.
	KernelStats = pattern.KernelStats
	// PipelineStats describe the candidate pipeline run behind a
	// session's candidate space.
	PipelineStats = candidate.Stats
)

// RecommendRequest asks a session for one recommendation. The zero
// value is a valid request: current API version, the advisor's default
// strategy and budget, no timeout, no trace or DAG payload.
type RecommendRequest struct {
	// APIVersion pins the wire format; empty means the current version.
	APIVersion string `json:"apiVersion,omitempty"`
	// Strategy names the search strategy (canonical name or alias);
	// empty uses the advisor's default.
	Strategy string `json:"strategy,omitempty"`
	// BudgetPages bounds the configuration size in pages (0 with
	// BudgetKB 0 = the advisor's default budget).
	BudgetPages int64 `json:"budgetPages,omitempty"`
	// BudgetKB is the budget in kilobytes; exclusive with BudgetPages.
	BudgetKB int64 `json:"budgetKB,omitempty"`
	// UnlimitedBudget requests the unconstrained (overtrained-baseline)
	// configuration even when the advisor has a default budget;
	// exclusive with BudgetPages and BudgetKB.
	UnlimitedBudget bool `json:"unlimitedBudget,omitempty"`
	// TimeoutMS bounds the recommendation's wall-clock; with the race
	// strategy in anytime mode, an expired timeout returns the best
	// configuration any member finished instead of failing.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
	// IncludeTrace attaches the structured search trace to the
	// response.
	IncludeTrace bool `json:"includeTrace,omitempty"`
	// IncludeDAG attaches the rendered candidate containment DAG to the
	// response.
	IncludeDAG bool `json:"includeDAG,omitempty"`
}

// validate normalizes the request against the advisor's defaults,
// returning the canonical strategy and the effective page budget.
func (r *RecommendRequest) validate(a *Advisor) (strategy string, budgetPages int64, err error) {
	if r.APIVersion != "" && r.APIVersion != APIVersion {
		return "", 0, &RequestError{Field: "apiVersion",
			Reason: fmt.Sprintf("unsupported version %q (this advisor speaks %q)", r.APIVersion, APIVersion)}
	}
	strategy = r.Strategy
	if strategy == "" {
		strategy = a.Strategy()
	}
	if strategy, err = search.Canonical(strategy); err != nil {
		return "", 0, &RequestError{Field: "strategy", Reason: err.Error()}
	}
	if r.BudgetPages < 0 {
		return "", 0, &RequestError{Field: "budgetPages", Reason: "must be >= 0 (0 = unlimited)"}
	}
	if r.BudgetKB < 0 {
		return "", 0, &RequestError{Field: "budgetKB", Reason: "must be >= 0 (0 = unlimited)"}
	}
	if r.BudgetPages > 0 && r.BudgetKB > 0 {
		return "", 0, &RequestError{Field: "budgetKB", Reason: "budgetPages and budgetKB are exclusive"}
	}
	if r.UnlimitedBudget && (r.BudgetPages > 0 || r.BudgetKB > 0) {
		return "", 0, &RequestError{Field: "unlimitedBudget", Reason: "exclusive with budgetPages and budgetKB"}
	}
	if r.TimeoutMS < 0 {
		return "", 0, &RequestError{Field: "timeoutMs", Reason: "must be >= 0 (0 = no timeout)"}
	}
	budgetPages = a.BudgetPages()
	switch {
	case r.UnlimitedBudget:
		budgetPages = 0
	case r.BudgetPages > 0:
		budgetPages = r.BudgetPages
	case r.BudgetKB > 0:
		budgetPages = budgetKBToPages(r.BudgetKB)
	}
	return strategy, budgetPages, nil
}

// Index is one recommended index in a response.
type Index struct {
	// Name is the public index name (XIA_IDX<n>), matching the DDL and
	// the per-query analysis.
	Name string `json:"name"`
	// Collection is the indexed collection.
	Collection string `json:"collection"`
	// Pattern is the XML pattern the index covers.
	Pattern string `json:"pattern"`
	// Type is the SQL type of the indexed values.
	Type string `json:"type"`
	// Pages is the index's estimated size.
	Pages int64 `json:"pages"`
	// Entries is the index's estimated entry count.
	Entries int64 `json:"entries"`
	// DDL is the CREATE INDEX statement.
	DDL string `json:"ddl"`
}

// QueryCost is one query's row in the recommendation analysis (paper
// Figure 5).
type QueryCost struct {
	ID   string `json:"id"`
	Text string `json:"text"`
	// Weight is the query's workload weight.
	Weight float64 `json:"weight"`
	// CostNoIndexes, CostRecommended, CostOvertrained are the estimated
	// costs with no indexes, under the recommendation, and under the
	// overtrained all-basic-candidates configuration.
	CostNoIndexes   float64 `json:"costNoIndexes"`
	CostRecommended float64 `json:"costRecommended"`
	CostOvertrained float64 `json:"costOvertrained"`
	// IndexesUsed names the recommended indexes the query's plan uses.
	IndexesUsed []string `json:"indexesUsed,omitempty"`
}

// CandidateSummary describes a session's candidate space.
type CandidateSummary struct {
	// Basics is the deduplicated basic candidate count; Total adds the
	// generalized candidates.
	Basics int `json:"basics"`
	Total  int `json:"total"`
	// BasicsPages is the size of the overtrained all-basics
	// configuration — the budget-sweep baseline.
	BasicsPages int64 `json:"basicsPages"`
	// DAGNodes/DAGEdges/DAGRoots describe the containment DAG.
	DAGNodes int `json:"dagNodes"`
	DAGEdges int `json:"dagEdges"`
	DAGRoots int `json:"dagRoots"`
}

// RecommendResponse is one recommendation: the configuration, its
// estimated benefits, the per-query analysis, and the run's statistics.
// Its JSON shape is the v1 wire format, pinned by a golden test.
type RecommendResponse struct {
	// APIVersion stamps the wire format the response speaks.
	APIVersion string `json:"apiVersion"`
	// Workload names the session's workload.
	Workload string `json:"workload,omitempty"`
	// Strategy is the canonical name of the strategy that ran.
	Strategy string `json:"strategy"`
	// BudgetPages is the effective disk budget (0 = unlimited).
	BudgetPages int64 `json:"budgetPages,omitempty"`
	// Indexes is the recommended configuration.
	Indexes []Index `json:"indexes"`
	// TotalPages is the configuration size.
	TotalPages int64 `json:"totalPages"`
	// QueryBenefit, UpdateCost, NetBenefit summarize the estimated
	// workload improvement.
	QueryBenefit float64 `json:"queryBenefit"`
	UpdateCost   float64 `json:"updateCost"`
	NetBenefit   float64 `json:"netBenefit"`
	// Degraded marks a best-so-far response: the what-if cost service
	// became unavailable mid-run (circuit breaker open) and the anytime
	// contract returned the best configuration evaluated before the
	// outage instead of failing. DegradedReason says what gave out.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degradedReason,omitempty"`
	// PerQuery is the recommendation analysis (Figure 5).
	PerQuery []QueryCost `json:"perQuery"`
	// Candidates summarizes the session's candidate space.
	Candidates CandidateSummary `json:"candidates"`
	// Pipeline, Search, Cache, Kernel are the run's statistics blocks.
	Pipeline PipelineStats `json:"pipeline"`
	Search   SearchStats   `json:"search"`
	Cache    CacheStats    `json:"cache"`
	Kernel   KernelStats   `json:"kernel"`
	// Relevance is the per-query relevant-candidate distribution over
	// the session's candidate space.
	Relevance RelevanceStats `json:"relevance"`
	// Evaluations counts per-query what-if evaluations issued during
	// this run (cache misses only).
	Evaluations int64 `json:"evaluations"`
	// ElapsedMS is the run's wall-clock in milliseconds.
	ElapsedMS int64 `json:"elapsedMs"`
	// Trace is the structured search trace (IncludeTrace requests
	// only).
	Trace Trace `json:"trace,omitempty"`
	// DAGText is the rendered containment DAG (IncludeDAG requests
	// only).
	DAGText string `json:"dagText,omitempty"`
}

// Elapsed is the run's wall-clock as a duration.
func (r *RecommendResponse) Elapsed() time.Duration {
	return time.Duration(r.ElapsedMS) * time.Millisecond
}

// DDL returns the CREATE INDEX statements, one per recommended index.
func (r *RecommendResponse) DDL() []string {
	out := make([]string, len(r.Indexes))
	for i, idx := range r.Indexes {
		out[i] = idx.DDL
	}
	return out
}

// Report renders the recommendation as text: configuration, DDL,
// benefits, and the per-query analysis table — the same screen
// core.Recommendation.Report prints.
func (r *RecommendResponse) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== XML Index Advisor recommendation ===\n")
	fmt.Fprintf(&sb, "candidates: %d basic, %d total (DAG: %d edges, %d roots)\n",
		r.Candidates.Basics, r.Candidates.Total, r.Candidates.DAGEdges, r.Candidates.DAGRoots)
	fmt.Fprintf(&sb, "recommended configuration: %d indexes, %d pages\n", len(r.Indexes), r.TotalPages)
	for _, idx := range r.Indexes {
		fmt.Fprintf(&sb, "  %s\n", idx.DDL)
	}
	fmt.Fprintf(&sb, "estimated query benefit: %.1f   update cost: %.1f   net: %.1f\n",
		r.QueryBenefit, r.UpdateCost, r.NetBenefit)
	fmt.Fprintf(&sb, "\n%-6s %10s %12s %12s  %s\n", "query", "no-index", "recommended", "overtrained", "indexes used")
	for _, qc := range r.PerQuery {
		fmt.Fprintf(&sb, "%-6s %10.1f %12.1f %12.1f  %s\n",
			qc.ID, qc.CostNoIndexes, qc.CostRecommended, qc.CostOvertrained, strings.Join(qc.IndexesUsed, ","))
	}
	fmt.Fprintf(&sb, "\nadvisor runtime: %v (%d what-if evaluations, %d cache hits)\n",
		r.Elapsed().Round(time.Millisecond), r.Evaluations, r.Cache.Hits)
	return sb.String()
}
