package advisor

// EventType discriminates streaming progress events.
type EventType string

const (
	// EventSpace opens every stream: the session's candidate space
	// summary and the pipeline stats behind it.
	EventSpace EventType = "space"
	// EventTrace carries one search TraceEvent, forwarded as the
	// strategy emits it (under the race portfolio, events from every
	// member interleave; TraceEvent.Strategy tells them apart).
	EventTrace EventType = "trace"
	// EventCounters carries the run's cache and kernel counter deltas,
	// emitted once after the search finishes.
	EventCounters EventType = "counters"
	// EventResult terminates a successful stream with the full
	// response.
	EventResult EventType = "result"
	// EventError terminates a failed stream.
	EventError EventType = "error"
)

// Event is one streaming progress message. Exactly one payload field is
// set, matching Type; Seq increases by one per event so transports that
// re-order (or consumers that fan in) can restore stream order.
type Event struct {
	Type EventType `json:"type"`
	Seq  int       `json:"seq"`
	// Candidates and Pipeline are the EventSpace payload.
	Candidates *CandidateSummary `json:"candidates,omitempty"`
	Pipeline   *PipelineStats    `json:"pipeline,omitempty"`
	// Trace is the EventTrace payload.
	Trace *TraceEvent `json:"trace,omitempty"`
	// Cache and Kernel are the EventCounters payload; Dropped counts
	// trace events shed because the consumer fell behind (trace
	// delivery is lossy under backpressure so a slow consumer never
	// stalls the search).
	Cache   *CacheStats  `json:"cache,omitempty"`
	Kernel  *KernelStats `json:"kernel,omitempty"`
	Dropped int          `json:"dropped,omitempty"`
	// Response is the EventResult payload.
	Response *RecommendResponse `json:"response,omitempty"`
	// Error is the EventError payload.
	Error string `json:"error,omitempty"`
}
