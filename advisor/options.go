package advisor

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/candidate"
	"repro/internal/core"
	"repro/internal/search"
	"repro/internal/store"
	"repro/internal/whatif"
)

// CostService is the what-if costing contract the advisor's engine
// evaluates queries through; WithCostWrapper interposes on it.
type CostService = whatif.CostService

// ResilienceOptions tune the costing resilience middleware
// (WithResilience): per-call timeout, bounded retries with
// deterministic jitter, and the circuit breaker. The zero value means
// production defaults for every knob.
type ResilienceOptions = whatif.ResilientOptions

// ErrInvalidOption is the sentinel every option-validation failure
// wraps; match with errors.Is.
var ErrInvalidOption = errors.New("advisor: invalid option")

// OptionError reports one invalid option value. It unwraps to
// ErrInvalidOption.
type OptionError struct {
	// Option names the offending option constructor, e.g.
	// "WithBudgetPages".
	Option string
	// Value is the rejected value.
	Value any
	// Reason says what a valid value looks like.
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("advisor: %s(%v): %s", e.Option, e.Value, e.Reason)
}

func (e *OptionError) Unwrap() error { return ErrInvalidOption }

// config is the advisor's resolved configuration: the core options plus
// the facade-level request defaults.
type config struct {
	core        core.Options
	deadline    time.Duration
	faultSpec   string
	snapshotDir string
}

func defaultConfig() config {
	return config{core: core.DefaultOptions()}
}

// Option configures an Advisor. Options record values; New validates
// the assembled configuration in one place.
type Option func(*config)

// WithBudgetPages sets the default disk budget in pages (0 =
// unlimited); individual requests may override it.
func WithBudgetPages(pages int64) Option {
	return func(c *config) { c.core.DiskBudgetPages = pages }
}

// WithBudgetKB sets the default disk budget in kilobytes, converted to
// pages (rounding up to one page for any positive budget).
func WithBudgetKB(kb int64) Option {
	return func(c *config) { c.core.DiskBudgetPages = budgetKBToPages(kb) }
}

// budgetKBToPages converts a KB budget to pages; any positive budget is
// at least one page, and non-positive means unlimited.
func budgetKBToPages(kb int64) int64 {
	if kb <= 0 {
		return kb
	}
	pages := (kb * 1024) / store.DefaultPageSize
	if pages < 1 {
		pages = 1
	}
	return pages
}

// WithStrategy sets the default search strategy by name or alias
// ("greedy-heuristic", "topdown", "race", ...); individual requests may
// override it. See Strategies for the valid names.
func WithStrategy(name string) Option {
	return func(c *config) { c.core.Search = core.SearchKind(name) }
}

// WithGeneralize toggles the candidate generalization phase (§2.2).
func WithGeneralize(on bool) Option {
	return func(c *config) { c.core.Generalize = on }
}

// WithRules replaces the default generalization rule set with a
// comma-separated spec ("lub,leaf,axis", "all", "none"). The empty
// string keeps the paper's default rules.
func WithRules(spec string) Option {
	return func(c *config) { c.core.Rules = spec }
}

// WithMaxCandidates caps the expanded candidate set (0 = the default
// cap).
func WithMaxCandidates(n int) Option {
	return func(c *config) { c.core.MaxCandidates = n }
}

// WithMinSharedSteps sets the minimum number of shared concrete steps
// two patterns need before pairwise generalization applies.
func WithMinSharedSteps(n int) Option {
	return func(c *config) { c.core.MinSharedSteps = n }
}

// WithInteractionAware toggles interaction-aware greedy search (§2.3):
// re-evaluate configurations each round instead of trusting standalone
// benefits.
func WithInteractionAware(on bool) Option {
	return func(c *config) { c.core.InteractionAware = on }
}

// WithSyntacticEnumeration switches candidate enumeration from the
// optimizer-coupled Enumerate Indexes EXPLAIN mode to the loosely
// coupled syntactic baseline (the paper's coupling ablation).
func WithSyntacticEnumeration(on bool) Option {
	return func(c *config) {
		if on {
			c.core.Enumeration = core.EnumSyntactic
		} else {
			c.core.Enumeration = core.EnumOptimizer
		}
	}
}

// WithIncludeUniversal adds the universal patterns (//* and //@*) as
// DAG roots.
func WithIncludeUniversal(on bool) Option {
	return func(c *config) { c.core.IncludeUniversal = on }
}

// WithRelaxAxes enables the optional axis-relaxation rule
// (/a/b -> /a//b).
func WithRelaxAxes(on bool) Option {
	return func(c *config) { c.core.RelaxAxes = on }
}

// WithParallelism bounds concurrent what-if query evaluations (0 =
// GOMAXPROCS). Recommendations are identical at every worker count.
func WithParallelism(n int) Option {
	return func(c *config) { c.core.Parallelism = n }
}

// WithGenParallelism bounds concurrent per-query candidate enumerations
// (0 = GOMAXPROCS). The candidate set is identical at every level.
func WithGenParallelism(n int) Option {
	return func(c *config) { c.core.GenParallelism = n }
}

// WithProjection toggles the what-if engine's relevance projection
// (default on): evaluation atoms are keyed and costed per (query,
// relevant sub-config), so configurations differing only in definitions
// irrelevant to a query share that query's cached cost. Projection is
// cost-preserving — recommendations are byte-identical either way —
// and off exists only as the measured baseline for the projection's
// what-if call reduction (CacheStats.Evaluations).
func WithProjection(on bool) Option {
	return func(c *config) { c.core.NoProjection = !on }
}

// WithCacheShards sets the what-if cache shard count (0 = default).
func WithCacheShards(n int) Option {
	return func(c *config) { c.core.CacheShards = n }
}

// WithCacheSize caps the number of memoized configuration evaluations
// (0 = the default cap, negative = unlimited).
func WithCacheSize(n int) Option {
	return func(c *config) { c.core.CacheSize = n }
}

// WithDeadline bounds every recommendation that does not carry its own
// request timeout, and turns on anytime mode: when the deadline
// expires, the race portfolio returns the best configuration any
// member finished instead of failing (requests that still have no
// finished member fail with the context error).
func WithDeadline(d time.Duration) Option {
	return func(c *config) {
		c.deadline = d
		c.core.Anytime = true
	}
}

// WithAnytime toggles anytime mode independently of WithDeadline, for
// callers that put deadlines on the context themselves.
func WithAnytime(on bool) Option {
	return func(c *config) { c.core.Anytime = on }
}

// WithEagerGreedy forces the greedy-heuristic strategy's original eager
// marginal scan (re-evaluate the whole eligible prefix every round)
// instead of the default lazy-greedy heap. Both modes choose identical
// configurations; eager exists as the measured baseline for the lazy
// path's what-if call reduction (SearchStats.Evals).
func WithEagerGreedy(on bool) Option {
	return func(c *config) { c.core.EagerGreedy = on }
}

// WithCostBoundedRace makes the race portfolio cost-bounded: members
// publish fully evaluated net benefits to a shared leader board and
// abort once their remaining upper bound cannot beat the leader.
// Aborted members are recorded in SearchStats.Members with Aborted set
// and never win, so the winning configuration is always complete. Off
// by default because aborted members' partial results are
// timing-dependent, unlike the default race whose member results are
// byte-identical to serial runs.
func WithCostBoundedRace(on bool) Option {
	return func(c *config) { c.core.RaceCostBound = on }
}

// WithTraceCap bounds the per-strategy search trace buffer (0 = the
// default cap, negative = unlimited). When a search overflows the cap,
// the trace ends with a "truncated" marker event and
// SearchStats.TruncatedEvents counts the dropped events; streaming
// progress events are never truncated.
func WithTraceCap(n int) Option {
	return func(c *config) { c.core.TraceCap = n }
}

// WithLPIterations caps the lp strategy's dual coordinate-descent
// passes (0 = the solver default). The dual value is a certified upper
// bound at every pass, so a lower cap trades bound tightness — and
// with it rounding quality — for solve time, never correctness.
func WithLPIterations(n int) Option {
	return func(c *config) { c.core.LPMaxPasses = n }
}

// WithLPRepairRounds caps the lp strategy's bounded what-if repair
// after rounding (0 = the default, negative = no repair). Each round
// drops configuration members no plan uses and prices a fixed-size
// burst of extension candidates with real marginal evaluations.
func WithLPRepairRounds(n int) Option {
	return func(c *config) { c.core.LPRepairRounds = n }
}

// WithResilience wraps the what-if cost service in the resilience
// middleware, directly below the memoizing engine: per-call timeouts,
// bounded retries with exponential backoff and deterministic jitter,
// and a circuit breaker that fails fast (ErrCircuitOpen) while the
// backend is down — cached evaluations keep serving throughout. With
// anytime mode on, a breaker opening mid-search degrades the
// recommendation to best-so-far (RecommendResponse.Degraded) instead
// of failing it. The zero ResilienceOptions value selects production
// defaults.
func WithResilience(o ResilienceOptions) Option {
	return func(c *config) { ro := o; c.core.Resilience = &ro }
}

// WithCostWrapper interposes wrap on the what-if cost service, below
// the resilience middleware (engine → resilience → wrap(backend)). It
// exists for fault injection and backend shims; wrap must return a
// service safe for concurrent use.
func WithCostWrapper(wrap func(CostService) CostService) Option {
	return func(c *config) { c.core.CostWrapper = wrap }
}

// WithFaultInjection wraps the cost service in the deterministic
// fault injector (chaos testing, the CI soak, `xiad -faults`). The
// spec is the whatif.ParseFaultSpec syntax, e.g.
// "seed=7,error=0.1,latency=0.05:3ms,panic=25"; an invalid spec fails
// New. The empty spec disables injection. Composes with
// WithCostWrapper: the injector wraps the wrapped service.
func WithFaultInjection(spec string) Option {
	return func(c *config) { c.faultSpec = spec }
}

// validate is the single defaulting/validation path for advisor
// configuration, replacing per-command flag checks. It normalizes the
// strategy to its canonical name.
func (c *config) validate() error {
	if c.core.DiskBudgetPages < 0 {
		return &OptionError{Option: "WithBudgetPages", Value: c.core.DiskBudgetPages,
			Reason: "disk budget must be >= 0 (0 = unlimited)"}
	}
	canon, err := search.Canonical(string(c.core.Search))
	if err != nil {
		return &OptionError{Option: "WithStrategy", Value: string(c.core.Search), Reason: err.Error()}
	}
	if c.core.LPMaxPasses < 0 {
		return &OptionError{Option: "WithLPIterations", Value: c.core.LPMaxPasses,
			Reason: "pass cap must be >= 0 (0 = solver default)"}
	}
	c.core.Search = core.SearchKind(canon)
	if c.core.Rules != "" {
		if _, err := candidate.ParseRules(c.core.Rules); err != nil {
			return &OptionError{Option: "WithRules", Value: c.core.Rules, Reason: err.Error()}
		}
	}
	if c.core.MaxCandidates < 0 {
		return &OptionError{Option: "WithMaxCandidates", Value: c.core.MaxCandidates,
			Reason: "candidate cap must be >= 0 (0 = default)"}
	}
	if c.core.MinSharedSteps < 0 {
		return &OptionError{Option: "WithMinSharedSteps", Value: c.core.MinSharedSteps,
			Reason: "shared-step threshold must be >= 0"}
	}
	if c.core.Parallelism < 0 {
		return &OptionError{Option: "WithParallelism", Value: c.core.Parallelism,
			Reason: "worker count must be >= 0 (0 = GOMAXPROCS)"}
	}
	if c.core.GenParallelism < 0 {
		return &OptionError{Option: "WithGenParallelism", Value: c.core.GenParallelism,
			Reason: "worker count must be >= 0 (0 = GOMAXPROCS)"}
	}
	if c.core.CacheShards < 0 {
		return &OptionError{Option: "WithCacheShards", Value: c.core.CacheShards,
			Reason: "shard count must be >= 0 (0 = default)"}
	}
	if c.deadline < 0 {
		return &OptionError{Option: "WithDeadline", Value: c.deadline,
			Reason: "deadline must be >= 0 (0 = none)"}
	}
	if c.snapshotDir != "" {
		if err := os.MkdirAll(c.snapshotDir, 0o755); err != nil {
			return &OptionError{Option: "WithSnapshotDir", Value: c.snapshotDir, Reason: err.Error()}
		}
	}
	if c.faultSpec != "" {
		sched, err := whatif.ParseFaultSpec(c.faultSpec)
		if err != nil {
			return &OptionError{Option: "WithFaultInjection", Value: c.faultSpec, Reason: err.Error()}
		}
		user := c.core.CostWrapper
		c.core.CostWrapper = func(svc whatif.CostService) whatif.CostService {
			if user != nil {
				svc = user(svc)
			}
			return whatif.NewFaultService(svc, sched)
		}
	}
	return nil
}
