package advisor_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/advisor"
	"repro/internal/catalog"
)

// normalizeResp projects a response onto its deterministic content:
// everything except the volatile run-local counters (wall clock, cache
// and kernel deltas, per-run evaluation and search accounting, trace).
// The candidate space, configuration, DDL, exact costs, and the
// pipeline stats (restored verbatim from the snapshot) all remain.
func normalizeResp(t *testing.T, resp *advisor.RecommendResponse) string {
	t.Helper()
	c := *resp
	c.ElapsedMS = 0
	c.Cache = advisor.CacheStats{}
	c.Kernel = advisor.KernelStats{}
	c.Search = advisor.SearchStats{}
	c.Evaluations = 0
	c.Trace = nil
	b, err := json.MarshalIndent(&c, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSnapshotRestoreParity is the restore-parity property suite: on
// the xmark, tpox, and paper workloads, for every registered strategy,
// a session restored from a snapshot recommends byte-identically to
// the session that saved it — and does so warm, with zero what-if
// evaluations.
func TestSnapshotRestoreParity(t *testing.T) {
	env, workloads := testWorkloads(t)
	ctx := context.Background()
	for name, w := range workloads {
		t.Run(name, func(t *testing.T) {
			adv, err := advisor.New(catalog.New(env.Store))
			if err != nil {
				t.Fatal(err)
			}
			sess, err := adv.Open(ctx, w)
			if err != nil {
				t.Fatal(err)
			}
			want := map[string]string{}
			for _, strat := range advisor.Strategies() {
				resp, err := sess.Recommend(ctx, advisor.RecommendRequest{Strategy: strat})
				if err != nil {
					t.Fatalf("%s: %v", strat, err)
				}
				want[strat] = normalizeResp(t, resp)
			}
			var buf bytes.Buffer
			if err := sess.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}

			adv2, err := advisor.New(catalog.New(env.Store))
			if err != nil {
				t.Fatal(err)
			}
			restored, err := adv2.Restore(ctx, bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if restored.RestoredFrom() != "stream" {
				t.Errorf("RestoredFrom = %q, want stream", restored.RestoredFrom())
			}
			if restored.Workload() != w.Name {
				t.Errorf("Workload = %q, want %q", restored.Workload(), w.Name)
			}
			for _, strat := range advisor.Strategies() {
				resp, err := restored.Recommend(ctx, advisor.RecommendRequest{Strategy: strat})
				if err != nil {
					t.Fatalf("restored %s: %v", strat, err)
				}
				if resp.Evaluations != 0 {
					t.Errorf("%s: restored run issued %d what-if evaluations, want 0 (warm cache)",
						strat, resp.Evaluations)
				}
				if got := normalizeResp(t, resp); got != want[strat] {
					t.Errorf("%s: restored response differs:\n--- original ---\n%s\n--- restored ---\n%s",
						strat, want[strat], got)
				}
			}
		})
	}
}

// TestWithSnapshotDirWarmStart pins the durable-session loop: open
// cold, persist, and a later advisor's Open on the same workload
// warm-starts from the file and recommends identically with zero
// evaluations.
func TestWithSnapshotDirWarmStart(t *testing.T) {
	env, workloads := testWorkloads(t)
	w := workloads["xmark"]
	ctx := context.Background()
	dir := t.TempDir()

	adv1, err := advisor.New(catalog.New(env.Store), advisor.WithSnapshotDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := adv1.Open(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if sess.RestoredFrom() != "" {
		t.Fatalf("first open restored from %q, want cold", sess.RestoredFrom())
	}
	if !sess.LastSaved().IsZero() {
		t.Fatal("LastSaved non-zero before any persist")
	}
	resp1, err := sess.Recommend(ctx, advisor.RecommendRequest{})
	if err != nil {
		t.Fatal(err)
	}
	path, err := sess.Persist()
	if err != nil {
		t.Fatal(err)
	}
	if want := adv1.WorkloadSnapshotPath(w); path != want {
		t.Errorf("Persist path = %q, want %q", path, want)
	}
	if sess.LastSaved().IsZero() {
		t.Error("LastSaved still zero after persist")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	// Inspect without restoring: the file frames must be readable.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	info, err := advisor.InspectSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if info.Candidates == 0 || info.Atoms == 0 {
		t.Errorf("inspect reports empty snapshot: %+v", info)
	}

	// A new advisor over the same catalog and directory warm-starts.
	adv2, err := advisor.New(catalog.New(env.Store), advisor.WithSnapshotDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := adv2.Open(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if sess2.RestoredFrom() != path {
		t.Fatalf("second open RestoredFrom = %q, want %q", sess2.RestoredFrom(), path)
	}
	resp2, err := sess2.Recommend(ctx, advisor.RecommendRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Evaluations != 0 {
		t.Errorf("warm-started run issued %d what-if evaluations, want 0", resp2.Evaluations)
	}
	if got, want := normalizeResp(t, resp2), normalizeResp(t, resp1); got != want {
		t.Errorf("warm-started response differs:\n--- cold ---\n%s\n--- warm ---\n%s", want, got)
	}
	// Persisting the restored session overwrites the same file.
	if _, err := sess2.Persist(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenFallsBackColdOnMismatch: a snapshot taken under different
// options must not warm-start a mismatched advisor; Open silently goes
// cold instead of failing.
func TestOpenFallsBackColdOnMismatch(t *testing.T) {
	env, workloads := testWorkloads(t)
	w := workloads["paper"]
	ctx := context.Background()
	dir := t.TempDir()

	adv1, err := advisor.New(catalog.New(env.Store), advisor.WithSnapshotDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := adv1.Open(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Persist(); err != nil {
		t.Fatal(err)
	}

	adv2, err := advisor.New(catalog.New(env.Store),
		advisor.WithSnapshotDir(dir), advisor.WithGeneralize(false))
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := adv2.Open(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if sess2.RestoredFrom() != "" {
		t.Errorf("mismatched advisor warm-started from %q, want cold open", sess2.RestoredFrom())
	}
	if _, err := sess2.Recommend(ctx, advisor.RecommendRequest{}); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreTypedErrors pins the facade error surface: garbage is
// ErrNotSnapshot, a flipped byte is ErrSnapshotCorrupt, and a
// mismatched advisor restoring explicitly gets ErrSnapshotMismatch.
func TestRestoreTypedErrors(t *testing.T) {
	env, workloads := testWorkloads(t)
	w := workloads["xmark"]
	ctx := context.Background()

	adv, err := advisor.New(catalog.New(env.Store))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Restore(ctx, bytes.NewReader([]byte("no snapshot here"))); !errors.Is(err, advisor.ErrNotSnapshot) {
		t.Errorf("Restore(garbage) = %v, want ErrNotSnapshot", err)
	}

	sess, err := adv.Open(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip one payload byte past the header: the section checksum must
	// catch it.
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x40
	if _, err := adv.Restore(ctx, bytes.NewReader(bad)); !errors.Is(err, advisor.ErrSnapshotCorrupt) {
		t.Errorf("Restore(corrupt) = %v, want ErrSnapshotCorrupt", err)
	}

	mismatched, err := advisor.New(catalog.New(env.Store), advisor.WithRules("none"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mismatched.Restore(ctx, bytes.NewReader(raw)); !errors.Is(err, advisor.ErrSnapshotMismatch) {
		t.Errorf("Restore(mismatched options) = %v, want ErrSnapshotMismatch", err)
	}

	// RestoreFile on a missing path surfaces the os error.
	if _, err := adv.RestoreFile(ctx, filepath.Join(t.TempDir(), "missing.xsnap")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("RestoreFile(missing) = %v, want ErrNotExist", err)
	}
}

// TestPersistWithoutDir: Persist needs WithSnapshotDir.
func TestPersistWithoutDir(t *testing.T) {
	env, workloads := testWorkloads(t)
	adv, err := advisor.New(catalog.New(env.Store))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := adv.Open(context.Background(), workloads["paper"])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Persist(); !errors.Is(err, advisor.ErrNoSnapshotDir) {
		t.Errorf("Persist = %v, want ErrNoSnapshotDir", err)
	}
}

// TestSnapshotClosedSession: snapshot operations respect Close.
func TestSnapshotClosedSession(t *testing.T) {
	env, workloads := testWorkloads(t)
	adv, err := advisor.New(catalog.New(env.Store))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := adv.Open(context.Background(), workloads["paper"])
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	var buf bytes.Buffer
	if err := sess.Snapshot(&buf); !errors.Is(err, advisor.ErrSessionClosed) {
		t.Errorf("Snapshot on closed session = %v, want ErrSessionClosed", err)
	}
}
