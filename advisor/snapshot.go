package advisor

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/snapshot"
)

// SnapshotExt is the file extension session snapshot files use.
const SnapshotExt = ".xsnap"

// Snapshot-related sentinels, re-exported so facade callers can match
// with errors.Is without importing internal packages.
var (
	// ErrNoSnapshotDir is returned by Session.Persist when the advisor
	// was built without WithSnapshotDir.
	ErrNoSnapshotDir = fmt.Errorf("advisor: no snapshot directory configured")
	// ErrSnapshotMismatch: the snapshot is well-formed but does not fit
	// this advisor — different options, or the catalog's statistics
	// changed since the save, so the cached costs would be stale.
	ErrSnapshotMismatch = core.ErrSnapshotMismatch
	// ErrSnapshotCorrupt: the snapshot failed structural validation
	// (bad checksum, truncated frame, dangling cross-reference).
	ErrSnapshotCorrupt = snapshot.ErrCorrupt
	// ErrNotSnapshot: the input is not a session snapshot at all.
	ErrNotSnapshot = snapshot.ErrNotSnapshot
)

// SnapshotInfo describes a snapshot file without restoring it: format
// version, per-section sizes, and the section cardinalities.
type SnapshotInfo = snapshot.Info

// InspectSnapshot reads only a snapshot's framing: cheap enough for
// status endpoints and the xdb snapshot inspect command, and it
// verifies every checksum on the way.
func InspectSnapshot(r io.Reader) (*SnapshotInfo, error) { return snapshot.Inspect(r) }

// WithSnapshotDir enables durable sessions: Open first tries to
// warm-start from the workload's snapshot file in dir (falling back to
// a cold prepare on any miss or mismatch), Session.Persist writes
// there, and server mode persists sessions before evicting them and on
// graceful shutdown. The directory is created if missing.
func WithSnapshotDir(dir string) Option {
	return func(c *config) { c.snapshotDir = dir }
}

// SnapshotDir is the advisor's snapshot directory ("" when durable
// sessions are off).
func (a *Advisor) SnapshotDir() string { return a.cfg.snapshotDir }

// WorkloadSnapshotPath is the path Open and Persist use for this
// workload's snapshot: keyed by the workload's name and a fingerprint
// of its full canonical text, so distinct workloads sharing a name
// never collide. Empty without WithSnapshotDir.
func (a *Advisor) WorkloadSnapshotPath(w *Workload) string {
	if a.cfg.snapshotDir == "" {
		return ""
	}
	return filepath.Join(a.cfg.snapshotDir, workloadSnapshotName(w))
}

func workloadSnapshotName(w *Workload) string {
	h := fnv.New64a()
	io.WriteString(h, w.Format())
	name := w.Name
	if name == "" {
		name = "workload"
	}
	clean := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			clean = append(clean, r)
		default:
			clean = append(clean, '_')
		}
	}
	return fmt.Sprintf("wl-%s-%016x%s", string(clean), h.Sum64(), SnapshotExt)
}

// Restore rebuilds a session from a snapshot stream previously written
// by Session.Snapshot. The restored session serves recommendations
// byte-identical to the one that saved — the candidate space, what-if
// cache atoms, and benefit matrix all come back warm, so the first
// Recommend issues no cost-service calls. Restore fails with
// ErrNotSnapshot / ErrSnapshotCorrupt for bad input and
// ErrSnapshotMismatch when the snapshot was taken under different
// options or the catalog's statistics have since changed.
func (a *Advisor) Restore(ctx context.Context, r io.Reader) (*Session, error) {
	return a.restore(ctx, r, "stream")
}

// RestoreFile is Restore from a snapshot file.
func (a *Advisor) RestoreFile(ctx context.Context, path string) (*Session, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return a.restore(ctx, f, path)
}

func (a *Advisor) restore(ctx context.Context, r io.Reader, source string) (*Session, error) {
	prep, err := a.core.LoadPrepared(ctx, r)
	if err != nil {
		return nil, err
	}
	w := prep.Workload()
	return &Session{
		adv:          a,
		prep:         prep,
		name:         w.Name,
		created:      time.Now(),
		snapPath:     a.WorkloadSnapshotPath(w),
		restoredFrom: source,
	}, nil
}

// tryRestore is Open's warm-start path: restore the workload's snapshot
// file if one exists and matches both this advisor and the requested
// workload. Any failure — missing file, corruption, option or stats
// mismatch, or a (name, fingerprint) collision on a different workload
// — means a cold open; durable sessions degrade, never fail.
func (a *Advisor) tryRestore(ctx context.Context, w *Workload) *Session {
	path := a.WorkloadSnapshotPath(w)
	if path == "" {
		return nil
	}
	sess, err := a.RestoreFile(ctx, path)
	if err != nil {
		return nil
	}
	if sess.prep.Workload().Format() != w.Format() {
		return nil
	}
	return sess
}

// Snapshot serializes the session's full prepared state — candidate
// space and containment DAG, pattern table, the session's completed
// what-if cache atoms, and the benefit matrix if built — to w in the
// versioned format of internal/snapshot.
func (s *Session) Snapshot(w io.Writer) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	return s.prep.Save(w)
}

// SnapshotToFile writes the session snapshot to path atomically: a
// temporary file in the destination directory is written, synced, and
// renamed into place, so readers see either the old snapshot or the
// complete new one, never a torn write.
func (s *Session) SnapshotToFile(path string) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".xsnap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := s.prep.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	s.mu.Lock()
	s.lastSaved = time.Now()
	s.mu.Unlock()
	return nil
}

// Persist writes the session to its snapshot file (the same file Open
// warm-starts from) and returns the path. It fails with
// ErrNoSnapshotDir when the advisor has no snapshot directory.
func (s *Session) Persist() (string, error) {
	if s.snapPath == "" {
		return "", ErrNoSnapshotDir
	}
	if err := s.SnapshotToFile(s.snapPath); err != nil {
		return "", err
	}
	return s.snapPath, nil
}

// RestoredFrom reports where the session was warm-started from: the
// snapshot path (or "stream" for Restore), "" for a cold open.
func (s *Session) RestoredFrom() string { return s.restoredFrom }

// LastSaved is the time of the session's last successful persist (zero
// if never persisted in this process).
func (s *Session) LastSaved() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSaved
}
