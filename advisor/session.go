package advisor

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/search"
	"repro/internal/whatif"
)

// ErrSessionClosed is returned by operations on a closed session.
var ErrSessionClosed = errors.New("advisor: session closed")

// Session is a long-lived handle on one prepared workload: the
// candidate pipeline has run and the what-if evaluator is bound, so
// every Recommend — any strategy, any budget — reuses the candidate
// space and the warm what-if cache. Sessions are safe for concurrent
// use; simultaneous Recommend calls share the cache and each sees only
// its own trace.
type Session struct {
	adv     *Advisor
	prep    *core.Prepared
	name    string
	created time.Time
	// snapPath is the workload-keyed snapshot file (empty without
	// WithSnapshotDir); restoredFrom records the warm-start source.
	snapPath     string
	restoredFrom string

	mu        sync.Mutex
	closed    bool
	lastSaved time.Time
}

// Workload names the session's workload.
func (s *Session) Workload() string { return s.name }

// Created is the session's open time.
func (s *Session) Created() time.Time { return s.created }

// Advisor returns the advisor the session was opened on.
func (s *Session) Advisor() *Advisor { return s.adv }

// Candidates summarizes the session's candidate space.
func (s *Session) Candidates() CandidateSummary {
	basics := s.prep.Basics()
	dag := s.prep.DAG()
	sum := CandidateSummary{
		Basics:   len(basics),
		Total:    len(dag.Nodes),
		DAGNodes: len(dag.Nodes),
		DAGEdges: dag.Edges(),
		DAGRoots: len(dag.Roots),
	}
	for _, c := range basics {
		sum.BasicsPages += c.Pages()
	}
	return sum
}

// Pipeline returns the candidate pipeline's stats for the session's
// space.
func (s *Session) Pipeline() PipelineStats { return s.prep.CandidateStats() }

// DAGText renders the session's candidate containment DAG.
func (s *Session) DAGText() string { return s.prep.DAG().Render() }

// Close marks the session closed; subsequent recommendations fail with
// ErrSessionClosed. In-flight recommendations finish normally. Closing
// an already-closed session is a no-op.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// checkOpen fails if the session was closed.
func (s *Session) checkOpen() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	return nil
}

// Recommend serves one recommendation request on the session.
func (s *Session) Recommend(ctx context.Context, req RecommendRequest) (*RecommendResponse, error) {
	return s.recommend(ctx, req, nil)
}

// RecommendStream serves one request while streaming progress events:
// an EventSpace with the candidate-space summary, one EventTrace per
// search step as it happens, an EventCounters with the run's cache and
// kernel deltas, and a terminal EventResult (or EventError). The
// channel closes after the terminal event. Cancelling ctx aborts both
// the search and the stream; an abandoned consumer therefore cancels
// rather than leaks.
//
// Trace events are lossy under backpressure: search strategies emit
// them synchronously on the search path, so when the consumer falls
// more than a buffer behind, trace events are dropped (counted in the
// EventCounters' Dropped field) rather than stalling the search. The
// space, counters, and terminal events are never dropped.
func (s *Session) RecommendStream(ctx context.Context, req RecommendRequest) <-chan Event {
	ch := make(chan Event, 64)
	go func() {
		var (
			seqMu   sync.Mutex
			seq     int
			dropped int
		)
		defer close(ch)
		// A panic anywhere on the streaming path (a custom strategy, a
		// conversion bug) must terminate the stream with a typed error
		// event, never kill the process or strand the consumer on an
		// open channel. The send is non-blocking: a consumer that went
		// away gets the channel close instead.
		defer func() {
			if r := recover(); r != nil {
				err := whatif.NewPanicError("advisor: recommend stream", r)
				seqMu.Lock()
				e := Event{Type: EventError, Error: err.Error(), Seq: seq}
				seqMu.Unlock()
				select {
				case ch <- e:
				default:
				}
			}
		}()
		// send delivers a must-arrive event, waiting for the consumer
		// (or its cancellation); sendTrace never blocks the search.
		send := func(e Event) {
			seqMu.Lock()
			e.Seq = seq
			seq++
			seqMu.Unlock()
			select {
			case ch <- e:
			case <-ctx.Done():
			}
		}
		sendTrace := func(e Event) {
			seqMu.Lock()
			defer seqMu.Unlock()
			e.Seq = seq
			select {
			case ch <- e:
				seq++
			default:
				dropped++
			}
		}
		sum := s.Candidates()
		pipe := s.Pipeline()
		send(Event{Type: EventSpace, Candidates: &sum, Pipeline: &pipe})
		resp, err := s.recommend(ctx, req, func(te search.TraceEvent) {
			sendTrace(Event{Type: EventTrace, Trace: &te})
		})
		if err != nil {
			send(Event{Type: EventError, Error: err.Error()})
			return
		}
		cache, kernel := resp.Cache, resp.Kernel
		seqMu.Lock()
		nDropped := dropped
		seqMu.Unlock()
		send(Event{Type: EventCounters, Cache: &cache, Kernel: &kernel, Dropped: nDropped})
		send(Event{Type: EventResult, Response: resp})
	}()
	return ch
}

// recommend is the shared request path: validate, apply the deadline,
// search, convert.
func (s *Session) recommend(ctx context.Context, req RecommendRequest, obs func(search.TraceEvent)) (*RecommendResponse, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	strategy, budgetPages, err := req.validate(s.adv)
	if err != nil {
		return nil, err
	}
	ctx, cancel := s.adv.requestContext(ctx, req)
	defer cancel()
	rec, err := s.prep.RecommendObserved(ctx, core.SearchKind(strategy), budgetPages, obs)
	if err != nil {
		return nil, err
	}
	return s.response(rec, strategy, budgetPages, req), nil
}

// response converts a core recommendation into the v1 response DTO.
func (s *Session) response(rec *core.Recommendation, strategy string, budgetPages int64, req RecommendRequest) *RecommendResponse {
	resp := &RecommendResponse{
		APIVersion:     APIVersion,
		Workload:       s.name,
		Strategy:       strategy,
		BudgetPages:    budgetPages,
		TotalPages:     rec.TotalPages,
		QueryBenefit:   rec.QueryBenefit,
		UpdateCost:     rec.UpdateCost,
		NetBenefit:     rec.NetBenefit,
		Degraded:       rec.Degraded,
		DegradedReason: rec.DegradedReason,
		Candidates:     s.Candidates(),
		Pipeline:       rec.Gen,
		Search:         rec.Search,
		Cache:          rec.Cache,
		Kernel:         rec.Kernel,
		Relevance:      rec.Relevance,
		Evaluations:    int64(rec.Evaluations),
		ElapsedMS:      int64(rec.Elapsed / time.Millisecond),
	}
	for i, c := range rec.Config {
		resp.Indexes = append(resp.Indexes, Index{
			// Names come from core in Config order, so the DTO can
			// never drift from the DDL text or PerQuery.IndexesUsed.
			Name:       rec.Names[i],
			Collection: c.Collection,
			Pattern:    c.Pattern.String(),
			Type:       c.Type.Short(),
			Pages:      c.Pages(),
			Entries:    c.Def.EstEntries,
			DDL:        rec.DDL[i],
		})
	}
	for _, qa := range rec.PerQuery {
		resp.PerQuery = append(resp.PerQuery, QueryCost{
			ID:              qa.ID,
			Text:            qa.Text,
			Weight:          qa.Weight,
			CostNoIndexes:   qa.CostNoIndexes,
			CostRecommended: qa.CostRecommended,
			CostOvertrained: qa.CostOvertrained,
			IndexesUsed:     qa.IndexesUsed,
		})
	}
	if req.IncludeTrace {
		resp.Trace = rec.TraceEvents
	}
	if req.IncludeDAG {
		resp.DAGText = rec.DAG.Render()
	}
	return resp
}
