package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/advisor"
	"repro/advisor/server"
	"repro/internal/catalog"
	"repro/internal/experiments"
	"repro/internal/testleak"
)

// newTestServer spins up the xiad handler over the shared small XMark
// environment, returning the test server and the textual workload used
// to open sessions.
func newTestServer(t *testing.T, opts server.Options) (*httptest.Server, *server.Server, string) {
	t.Helper()
	env, err := experiments.BuildEnv(experiments.Small)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := advisor.New(catalog.New(env.Store), advisor.WithAnytime(true))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(adv, opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv, env.XMarkWorkload.Format()
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func decodeJSON(t *testing.T, res *http.Response, wantStatus int, v any) {
	t.Helper()
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != wantStatus {
		t.Fatalf("status %d, want %d; body: %s", res.StatusCode, wantStatus, body)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("decode: %v; body: %s", err, body)
		}
	}
}

func openSession(t *testing.T, ts *httptest.Server, workloadText string) server.SessionInfo {
	t.Helper()
	var info server.SessionInfo
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions",
		server.CreateSessionRequest{Name: "xmark", Workload: workloadText}),
		http.StatusCreated, &info)
	return info
}

// TestSessionLifecycle walks the whole session surface: health,
// strategies, create, get, list, recommend, delete, and the 404 after
// deletion.
func TestSessionLifecycle(t *testing.T) {
	testleak.Check(t)
	ts, _, wl := newTestServer(t, server.Options{})

	var health server.Health
	res, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, res, http.StatusOK, &health)
	if health.Status != "ok" || health.Sessions != 0 || health.APIVersion != advisor.APIVersion {
		t.Fatalf("healthz: %+v", health)
	}

	var strategies server.StrategyList
	res, err = http.Get(ts.URL + "/v1/strategies")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, res, http.StatusOK, &strategies)
	if strategies.Default != advisor.DefaultStrategy() ||
		!reflect.DeepEqual(strategies.Strategies, advisor.Strategies()) {
		t.Fatalf("strategies: %+v", strategies)
	}

	info := openSession(t, ts, wl)
	if info.ID == "" || info.Workload != "xmark" || info.Candidates.Basics == 0 {
		t.Fatalf("session info: %+v", info)
	}

	var got server.SessionInfo
	res, err = http.Get(ts.URL + "/v1/sessions/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, res, http.StatusOK, &got)
	if got.ID != info.ID || got.Candidates != info.Candidates {
		t.Fatalf("get session: %+v vs %+v", got, info)
	}

	var list server.SessionList
	res, err = http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, res, http.StatusOK, &list)
	if len(list.Sessions) != 1 || list.Sessions[0].ID != info.ID {
		t.Fatalf("session list: %+v", list)
	}

	var resp advisor.RecommendResponse
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions/"+info.ID+"/recommend",
		advisor.RecommendRequest{Strategy: "greedy-heuristic"}), http.StatusOK, &resp)
	if resp.APIVersion != advisor.APIVersion || len(resp.Indexes) == 0 || resp.Strategy != "greedy-heuristic" {
		t.Fatalf("recommend: version=%q strategy=%q #idx=%d", resp.APIVersion, resp.Strategy, len(resp.Indexes))
	}
	for _, idx := range resp.Indexes {
		if idx.DDL == "" || idx.Pattern == "" {
			t.Fatalf("bare index in response: %+v", idx)
		}
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", res.StatusCode)
	}
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions/"+info.ID+"/recommend",
		advisor.RecommendRequest{}), http.StatusNotFound, nil)
}

// TestConcurrentRecommends satisfies the acceptance bar: at least 8
// concurrent recommend calls against one shared session (run under
// -race in CI), each byte-identical to its serial twin.
func TestConcurrentRecommends(t *testing.T) {
	testleak.Check(t)
	ts, _, wl := newTestServer(t, server.Options{})
	info := openSession(t, ts, wl)
	url := ts.URL + "/v1/sessions/" + info.ID + "/recommend"

	var base advisor.RecommendResponse
	decodeJSON(t, postJSON(t, url, advisor.RecommendRequest{}), http.StatusOK, &base)

	reqs := make([]advisor.RecommendRequest, 0, 8)
	for _, strategy := range []string{"greedy-basic", "greedy-heuristic", "topdown", "race"} {
		for _, budget := range []int64{0, base.TotalPages / 2} {
			reqs = append(reqs, advisor.RecommendRequest{Strategy: strategy, BudgetPages: budget})
		}
	}
	serial := make([]advisor.RecommendResponse, len(reqs))
	for i, rq := range reqs {
		decodeJSON(t, postJSON(t, url, rq), http.StatusOK, &serial[i])
	}

	results := make([]advisor.RecommendResponse, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, rq := range reqs {
		wg.Add(1)
		go func(i int, rq advisor.RecommendRequest) {
			defer wg.Done()
			data, err := json.Marshal(rq)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := http.Post(url, "application/json", bytes.NewReader(data))
			if err != nil {
				errs[i] = err
				return
			}
			defer res.Body.Close()
			body, err := io.ReadAll(res.Body)
			if err != nil {
				errs[i] = err
				return
			}
			if res.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", res.StatusCode, body)
				return
			}
			errs[i] = json.Unmarshal(body, &results[i])
		}(i, rq)
	}
	wg.Wait()
	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("request %d (%s@%d): %v", i, reqs[i].Strategy, reqs[i].BudgetPages, errs[i])
		}
		if got, want := results[i].DDL(), serial[i].DDL(); !reflect.DeepEqual(got, want) {
			t.Errorf("request %d (%s@%d): concurrent result differs from serial",
				i, reqs[i].Strategy, reqs[i].BudgetPages)
		}
	}
}

// sseEvent is one parsed SSE message.
type sseEvent struct {
	name string
	ev   advisor.Event
}

func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var name string
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev advisor.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE data: %v", err)
			}
			out = append(out, sseEvent{name: name, ev: ev})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSSEStreamOrdering satisfies the acceptance bar: the SSE stream
// delivers search trace events before the final response, in sequence
// order, with matching SSE event names.
func TestSSEStreamOrdering(t *testing.T) {
	testleak.Check(t)
	ts, _, wl := newTestServer(t, server.Options{})
	info := openSession(t, ts, wl)

	res := postJSON(t, ts.URL+"/v1/sessions/"+info.ID+"/recommend?stream=1",
		advisor.RecommendRequest{Strategy: "race"})
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := readSSE(t, res.Body)
	if len(events) < 4 {
		t.Fatalf("only %d events", len(events))
	}
	traces := 0
	resultAt := -1
	for i, e := range events {
		if string(e.ev.Type) != e.name {
			t.Errorf("event %d: SSE name %q != payload type %q", i, e.name, e.ev.Type)
		}
		if e.ev.Seq != i {
			t.Errorf("event %d has seq %d", i, e.ev.Seq)
		}
		switch e.ev.Type {
		case advisor.EventTrace:
			if resultAt >= 0 {
				t.Error("trace event after the result")
			}
			traces++
		case advisor.EventResult:
			resultAt = i
		case advisor.EventError:
			t.Fatalf("stream error: %s", e.ev.Error)
		}
	}
	if events[0].ev.Type != advisor.EventSpace {
		t.Errorf("first event is %s, want space", events[0].ev.Type)
	}
	if traces == 0 {
		t.Error("no trace events streamed")
	}
	if resultAt != len(events)-1 {
		t.Errorf("result at position %d of %d", resultAt, len(events))
	}
	final := events[resultAt].ev.Response
	if final == nil || len(final.Indexes) == 0 {
		t.Fatal("terminal event carries no recommendation")
	}
}

// TestMalformedRequests pins the 4xx surface.
func TestMalformedRequests(t *testing.T) {
	testleak.Check(t)
	ts, _, wl := newTestServer(t, server.Options{})
	info := openSession(t, ts, wl)
	recommendURL := ts.URL + "/v1/sessions/" + info.ID + "/recommend"

	post := func(url, body string) *http.Response {
		res, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cases := []struct {
		name   string
		res    *http.Response
		status int
	}{
		{"invalid JSON body", post(recommendURL, "{not json"), http.StatusBadRequest},
		{"unknown field", post(recommendURL, `{"budgetPages": 1, "frobnicate": true}`), http.StatusBadRequest},
		{"unknown strategy", post(recommendURL, `{"strategy":"annealing"}`), http.StatusBadRequest},
		{"conflicting budgets", post(recommendURL, `{"budgetPages":1,"budgetKB":1}`), http.StatusBadRequest},
		{"future api version", post(recommendURL, `{"apiVersion":"v9"}`), http.StatusBadRequest},
		{"missing workload", post(ts.URL+"/v1/sessions", `{"name":"empty"}`), http.StatusBadRequest},
		{"unparseable workload", post(ts.URL+"/v1/sessions", `{"workload":"q|notaweight|x"}`), http.StatusBadRequest},
		{"bad session apiVersion", post(ts.URL+"/v1/sessions", `{"apiVersion":"v9","workload":"q|1|x"}`), http.StatusBadRequest},
		{"unknown session", post(ts.URL+"/v1/sessions/nope/recommend", `{}`), http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e server.Error
			decodeJSON(t, tc.res, tc.status, &e)
			if e.Error.Code != tc.status || e.Error.Message == "" {
				t.Errorf("error envelope: %+v", e)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		res, err := http.Get(recommendURL)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET on recommend: status %d, want 405", res.StatusCode)
		}
	})
}

// TestRequestTimeoutAnytime exercises the anytime deadline over the
// wire: a recommend with a very tight timeout on the race strategy
// either returns a best-so-far result or a timeout status — never a
// hang, never a malformed response.
func TestRequestTimeoutAnytime(t *testing.T) {
	testleak.Check(t)
	ts, _, wl := newTestServer(t, server.Options{})
	info := openSession(t, ts, wl)

	// Warm the cache so members can finish instantly at the deadline.
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions/"+info.ID+"/recommend",
		advisor.RecommendRequest{Strategy: "race"}), http.StatusOK, &advisor.RecommendResponse{})

	res := postJSON(t, ts.URL+"/v1/sessions/"+info.ID+"/recommend",
		advisor.RecommendRequest{Strategy: "race", TimeoutMS: 50})
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	switch res.StatusCode {
	case http.StatusOK:
		var resp advisor.RecommendResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if resp.Strategy != "race" {
			t.Errorf("strategy %q", resp.Strategy)
		}
	case http.StatusGatewayTimeout:
		// Acceptable when even the fastest member missed 50ms.
	default:
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
}

// TestIdleEviction pins the janitor contract with a fake clock: idle
// sessions past the TTL are evicted and answer 404, fresh ones survive.
func TestIdleEviction(t *testing.T) {
	testleak.Check(t)
	now := time.Unix(1700000000, 0)
	var clockMu sync.Mutex
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		defer clockMu.Unlock()
		now = now.Add(d)
	}
	ts, srv, wl := newTestServer(t, server.Options{IdleTTL: time.Minute, Now: clock})

	stale := openSession(t, ts, wl)
	advance(2 * time.Minute)
	fresh := openSession(t, ts, wl)
	if n := srv.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions/"+stale.ID+"/recommend",
		advisor.RecommendRequest{}), http.StatusNotFound, nil)
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions/"+fresh.ID+"/recommend",
		advisor.RecommendRequest{}), http.StatusOK, nil)
}

// TestSessionLimit pins MaxSessions.
func TestSessionLimit(t *testing.T) {
	testleak.Check(t)
	ts, _, wl := newTestServer(t, server.Options{MaxSessions: 1})
	openSession(t, ts, wl)
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions",
		server.CreateSessionRequest{Workload: wl}), http.StatusTooManyRequests, nil)
}
