// Package server implements the advisor's server mode (paper §3): the
// xiad HTTP/JSON daemon. The advisor lives inside the engine process
// and clients drive it over a small versioned REST surface:
//
//	POST   /v1/sessions                  open a workload into a session
//	GET    /v1/sessions                  list open sessions
//	GET    /v1/sessions/{id}             one session's info
//	DELETE /v1/sessions/{id}             close a session
//	POST   /v1/sessions/{id}/recommend   run one recommendation
//	POST   /v1/sessions/{id}/recommend?stream=1   …streaming progress (SSE)
//	GET    /v1/strategies                registered search strategies
//	GET    /v1/healthz                   liveness + session count
//
// Request and response bodies are the advisor package's versioned DTOs;
// ?stream=1 upgrades a recommend call to a Server-Sent-Events stream of
// advisor.Events (candidate-space stats, live search trace, counters)
// terminated by the result. Sessions are concurrent-safe — many
// recommend calls may share one session, and they share its warm
// what-if cache — and idle sessions are evicted after Options.IdleTTL.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/advisor"
)

// Options configure a Server.
type Options struct {
	// IdleTTL evicts sessions unused for this long (0 = never). Evicted
	// sessions answer 404, like closed ones.
	IdleTTL time.Duration
	// MaxSessions bounds concurrently open sessions (0 = unlimited);
	// opening past the bound answers 429.
	MaxSessions int
	// MaxInFlight bounds concurrently served recommendations across all
	// sessions (0 = unlimited). A recommend past the bound answers 429
	// with a Retry-After header instead of queueing — searches are CPU-
	// bound, so admission control beats an unbounded backlog.
	MaxInFlight int
	// RequestTimeout bounds each recommend request's wall clock on the
	// server side (0 = none), independent of the advisor's own deadline
	// options. With anytime mode on, an expired timeout degrades to
	// best-so-far instead of failing.
	RequestTimeout time.Duration
	// Now is the clock (nil = time.Now), a test hook for eviction.
	Now func() time.Time
}

// Server is the advisor HTTP front end. It implements http.Handler.
type Server struct {
	adv   *advisor.Advisor
	opts  Options
	mux   *http.ServeMux
	start time.Time

	// inflight counts recommend requests currently being served, for
	// MaxInFlight admission and the health report.
	inflight atomic.Int64
	// evictedPersisted counts sessions persisted to disk on eviction
	// (only ever non-zero with a snapshot directory configured).
	evictedPersisted atomic.Int64

	mu       sync.Mutex
	seq      int64
	sessions map[string]*session
	// reserved counts session slots handed out to in-flight creates
	// that have not inserted yet, so MaxSessions holds even while the
	// expensive Open runs outside the lock.
	reserved int
}

// session is one server-side session entry: the advisor session plus
// the bookkeeping the server locks per session (last use, in-flight
// request count) so eviction never races a running recommendation.
type session struct {
	id   string
	sess *advisor.Session

	mu       sync.Mutex
	lastUsed time.Time
	active   int
}

// touch records a request starting on the session.
func (e *session) touch(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lastUsed = now
	e.active++
}

// done records a request finishing.
func (e *session) done(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lastUsed = now
	e.active--
}

// idleSince reports whether the session has no in-flight request and
// was last used before the cutoff.
func (e *session) idleSince(cutoff time.Time) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.active == 0 && e.lastUsed.Before(cutoff)
}

// New builds a server over the advisor.
func New(adv *advisor.Advisor, opts Options) *Server {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	s := &Server{adv: adv, opts: opts, start: opts.Now(), sessions: map[string]*session{}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	mux.HandleFunc("POST /v1/sessions/{id}/recommend", s.handleRecommend)
	mux.HandleFunc("GET /v1/strategies", s.handleStrategies)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux = mux
	// With durable sessions, new IDs must not collide with sessions a
	// previous process persisted.
	s.scanSnapshotSeq()
	return s
}

// ServeHTTP dispatches to the v1 routes behind a panic-recovery
// middleware: a panic escaping any handler becomes a JSON 500 (best
// effort — headers may already be written on a streaming response)
// instead of killing the connection goroutine with a stack splat.
// http.ErrAbortHandler is re-raised: that is net/http's own
// abort-this-response protocol, not a failure.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.error(w, http.StatusInternalServerError, fmt.Sprintf("internal error: recovered panic: %v", rec))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// InFlight counts recommend requests currently being served.
func (s *Server) InFlight() int { return int(s.inflight.Load()) }

// Janitor evicts idle sessions every interval until ctx is cancelled.
// Run it in a goroutine next to http.Serve; tests call EvictIdle
// directly instead.
func (s *Server) Janitor(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.EvictIdle()
		}
	}
}

// EvictIdle closes and removes every session idle longer than IdleTTL,
// returning how many were evicted. Sessions with in-flight requests are
// never evicted. With durable sessions on, each victim is persisted to
// its snapshot file first (counted in EvictedPersisted), so a later
// request on its ID resumes it warm instead of finding a 404; a session
// that fails to persist is still evicted — eviction is the memory
// bound, durability is best effort.
func (s *Server) EvictIdle() int {
	if s.opts.IdleTTL <= 0 {
		return 0
	}
	cutoff := s.opts.Now().Add(-s.opts.IdleTTL)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, e := range s.sessions {
		if e.idleSince(cutoff) {
			if err := s.persistSession(e); err == nil && s.snapshotsOn() {
				s.evictedPersisted.Add(1)
			}
			e.sess.Close()
			delete(s.sessions, id)
			n++
		}
	}
	return n
}

// SessionCount is the number of open sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// --- wire DTOs for the server-only endpoints ---

// CreateSessionRequest opens a workload into a session.
type CreateSessionRequest struct {
	// APIVersion pins the wire format; empty means the current version.
	APIVersion string `json:"apiVersion,omitempty"`
	// Name labels the workload; empty uses "workload".
	Name string `json:"name,omitempty"`
	// Workload is the textual workload format (required; one weighted
	// query or update statement per line).
	Workload string `json:"workload"`
}

// SessionInfo describes one open session.
type SessionInfo struct {
	APIVersion string `json:"apiVersion"`
	// ID addresses the session in /v1/sessions/{id} routes.
	ID string `json:"id"`
	// Workload names the session's workload.
	Workload string `json:"workload"`
	// Candidates summarizes the prepared candidate space.
	Candidates advisor.CandidateSummary `json:"candidates"`
	// CreatedAtMS and LastUsedMS are Unix milliseconds.
	CreatedAtMS int64 `json:"createdAtMs"`
	LastUsedMS  int64 `json:"lastUsedMs"`
	// Active counts in-flight recommendations.
	Active int `json:"active"`
	// Durable reports whether the session persists to a snapshot
	// directory (eviction and graceful shutdown save it; its ID resumes
	// lazily). The remaining fields are only set when it does.
	Durable bool `json:"durable,omitempty"`
	// RestoredFrom is the snapshot path the session warm-started from
	// ("" for a cold open).
	RestoredFrom string `json:"restoredFrom,omitempty"`
	// LastSavedMS is the Unix-millisecond time of the session's last
	// successful persist (0 = never persisted by this process).
	LastSavedMS int64 `json:"lastSavedMs,omitempty"`
}

// SessionList is the GET /v1/sessions response.
type SessionList struct {
	APIVersion string        `json:"apiVersion"`
	Sessions   []SessionInfo `json:"sessions"`
}

// StrategyList is the GET /v1/strategies response.
type StrategyList struct {
	APIVersion string   `json:"apiVersion"`
	Default    string   `json:"default"`
	Strategies []string `json:"strategies"`
}

// Health is the GET /v1/healthz response. Status is "ok", or
// "degraded" while the advisor's costing circuit breaker is not closed
// (uncached what-if evaluations fail fast; recommendations may come
// back best-so-far with "degraded": true).
type Health struct {
	APIVersion string `json:"apiVersion"`
	Status     string `json:"status"`
	Sessions   int    `json:"sessions"`
	UptimeMS   int64  `json:"uptimeMs"`
	// Breaker is the costing circuit breaker state ("closed", "open",
	// "half-open"); empty when the advisor runs without resilience
	// middleware.
	Breaker string `json:"breaker,omitempty"`
	// InFlight counts recommend requests currently being served
	// (bounded by Options.MaxInFlight when set).
	InFlight int `json:"inFlight"`
	// SnapshotDir is the durable-session snapshot directory (empty =
	// durability off; the remaining snapshot fields are then absent).
	SnapshotDir string `json:"snapshotDir,omitempty"`
	// SnapshotFiles counts snapshot files currently in the directory.
	SnapshotFiles int `json:"snapshotFiles,omitempty"`
	// EvictedPersisted counts sessions persisted on idle eviction since
	// the process started.
	EvictedPersisted int64 `json:"evictedPersisted,omitempty"`
}

// Error is the JSON error envelope every non-2xx response carries.
type Error struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is the error payload: the HTTP status and a message.
type ErrorBody struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// --- handlers ---

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.APIVersion != "" && req.APIVersion != advisor.APIVersion {
		s.error(w, http.StatusBadRequest, fmt.Sprintf("unsupported apiVersion %q (this server speaks %q)",
			req.APIVersion, advisor.APIVersion))
		return
	}
	if req.Workload == "" {
		s.error(w, http.StatusBadRequest, "workload is required")
		return
	}
	name := req.Name
	if name == "" {
		name = "workload"
	}
	wl, err := advisor.ParseWorkload(name, req.Workload)
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(wl.Queries) == 0 {
		s.error(w, http.StatusBadRequest, "workload has no queries")
		return
	}
	// Reserve a slot before the expensive Open so concurrent creates
	// cannot overshoot MaxSessions between check and insert.
	s.mu.Lock()
	if s.opts.MaxSessions > 0 && len(s.sessions)+s.reserved >= s.opts.MaxSessions {
		s.mu.Unlock()
		s.error(w, http.StatusTooManyRequests, fmt.Sprintf("session limit %d reached", s.opts.MaxSessions))
		return
	}
	s.reserved++
	s.mu.Unlock()
	sess, err := s.adv.Open(r.Context(), wl)
	s.mu.Lock()
	s.reserved--
	if err != nil {
		s.mu.Unlock()
		// The workload text already parsed; a failure here is the
		// candidate pipeline's (stats, optimizer, empty store), which
		// is the server's side of the contract, not the client's.
		s.error(w, statusFor(err), err.Error())
		return
	}
	s.seq++
	e := &session{id: fmt.Sprintf("s%d", s.seq), sess: sess, lastUsed: s.opts.Now()}
	s.sessions[e.id] = e
	s.mu.Unlock()
	s.json(w, http.StatusCreated, s.info(e))
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := make([]*session, 0, len(s.sessions))
	for _, e := range s.sessions {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	list := SessionList{APIVersion: advisor.APIVersion, Sessions: []SessionInfo{}}
	for _, e := range entries {
		list.Sessions = append(list.Sessions, s.info(e))
	}
	sort.Slice(list.Sessions, func(i, j int) bool { return list.Sessions[i].ID < list.Sessions[j].ID })
	s.json(w, http.StatusOK, list)
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(w, r)
	if e == nil {
		return
	}
	s.json(w, http.StatusOK, s.info(e))
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	e := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	// Explicit DELETE also discards the ID-keyed snapshot file: the
	// client is done with this ID, so lazy resume must not resurrect
	// it. This holds even when the session is only on disk (evicted
	// from memory after a persist), in which case the delete of the
	// file is the whole close.
	onDisk := false
	if e == nil && s.snapshotsOn() && validSessionID(id) {
		_, statErr := os.Stat(s.sessionSnapshotPath(id))
		onDisk = statErr == nil
	}
	s.removeSessionSnapshot(id)
	if e == nil {
		if onDisk {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		s.error(w, http.StatusNotFound, fmt.Sprintf("no session %q", id))
		return
	}
	e.sess.Close()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	// Admission control before any work: searches are CPU-bound, so
	// requests past the in-flight bound are bounced with 429 and a
	// Retry-After hint instead of piling onto an unbounded backlog.
	n := s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if max := s.opts.MaxInFlight; max > 0 && n > int64(max) {
		w.Header().Set("Retry-After", "1")
		s.error(w, http.StatusTooManyRequests, fmt.Sprintf("recommendation limit reached (%d in flight)", max))
		return
	}
	// Resolve and touch atomically under the server lock: from here the
	// session counts as active, so the janitor cannot evict it while
	// the body is still being read or the search runs.
	e := s.acquire(w, r)
	if e == nil {
		return
	}
	defer func() { e.done(s.opts.Now()) }()
	var req advisor.RecommendRequest
	if !s.decode(w, r, &req) {
		return
	}
	if s.opts.RequestTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	if r.URL.Query().Get("stream") != "" {
		s.recommendStream(w, r, e, req)
		return
	}
	resp, err := e.sess.Recommend(r.Context(), req)
	if err != nil {
		code := statusFor(err)
		if code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		s.error(w, code, err.Error())
		return
	}
	s.json(w, http.StatusOK, resp)
}

// recommendStream serves one recommendation as a Server-Sent-Events
// stream: one SSE message per advisor.Event, the event type in the SSE
// "event" field and the JSON payload in "data", flushed as emitted so
// search progress reaches the client before the final result.
func (s *Server) recommendStream(w http.ResponseWriter, r *http.Request, e *session, req advisor.RecommendRequest) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.error(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for ev := range e.sess.RecommendStream(r.Context(), req) {
		data, err := json.Marshal(ev)
		if err != nil {
			data, _ = json.Marshal(advisor.Event{Type: advisor.EventError, Seq: ev.Seq, Error: err.Error()})
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
		fl.Flush()
	}
}

func (s *Server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	s.json(w, http.StatusOK, StrategyList{
		APIVersion: advisor.APIVersion,
		Default:    advisor.DefaultStrategy(),
		Strategies: advisor.Strategies(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{
		APIVersion: advisor.APIVersion,
		Status:     "ok",
		Sessions:   s.SessionCount(),
		UptimeMS:   int64(s.opts.Now().Sub(s.start) / time.Millisecond),
		InFlight:   s.InFlight(),
	}
	if state, _, ok := s.adv.Resilience(); ok {
		h.Breaker = state
		if s.adv.Degraded() {
			h.Status = "degraded"
		}
	}
	if s.snapshotsOn() {
		h.SnapshotDir = s.adv.SnapshotDir()
		h.SnapshotFiles = s.snapshotFileCount()
		h.EvictedPersisted = s.EvictedPersisted()
	}
	s.json(w, http.StatusOK, h)
}

// --- helpers ---

// lookup resolves the {id} path segment, answering 404 itself when the
// session does not exist (closed or evicted sessions are gone from the
// map, so they 404 too — unless durable sessions can resume the ID from
// its snapshot file).
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *session {
	id := r.PathValue("id")
	s.mu.Lock()
	e := s.sessions[id]
	s.mu.Unlock()
	if e == nil {
		e = s.resume(r.Context(), id)
	}
	if e == nil {
		s.error(w, http.StatusNotFound, fmt.Sprintf("no session %q", id))
	}
	return e
}

// acquire is lookup plus touch in one critical section with the
// eviction sweep: a request that resolved its session is marked active
// before EvictIdle could consider the entry, closing the window where a
// live request lands on a just-evicted session. Callers must pair it
// with session.done. An ID missing from memory but present in the
// snapshot directory is resumed first, then acquired.
func (s *Server) acquire(w http.ResponseWriter, r *http.Request) *session {
	id := r.PathValue("id")
	for {
		s.mu.Lock()
		e := s.sessions[id]
		if e != nil {
			e.touch(s.opts.Now())
		}
		s.mu.Unlock()
		if e != nil {
			return e
		}
		if s.resume(r.Context(), id) == nil {
			s.error(w, http.StatusNotFound, fmt.Sprintf("no session %q", id))
			return nil
		}
		// Loop to touch the resumed entry under the lock: the janitor
		// must see it active before it can consider evicting it again.
	}
}

func (s *Server) info(e *session) SessionInfo {
	e.mu.Lock()
	lastUsed, active := e.lastUsed, e.active
	e.mu.Unlock()
	info := SessionInfo{
		APIVersion:  advisor.APIVersion,
		ID:          e.id,
		Workload:    e.sess.Workload(),
		Candidates:  e.sess.Candidates(),
		CreatedAtMS: e.sess.Created().UnixMilli(),
		LastUsedMS:  lastUsed.UnixMilli(),
		Active:      active,
	}
	s.snapshotStatus(e, &info)
	return info
}

// decode reads a JSON body into v, answering 400 on malformed input.
// An empty body decodes to the zero value (every request type has a
// useful zero form except session creation, which checks its required
// fields itself).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 10<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return true // empty body = the zero request
		}
		s.error(w, http.StatusBadRequest, fmt.Sprintf("malformed request body: %v", err))
		return false
	}
	return true
}

// statusFor maps advisor errors to HTTP statuses: invalid requests and
// options are the client's fault; a closed session is gone; an open
// costing circuit breaker is a temporary outage worth retrying;
// everything else (recovered panics included) is a server-side failure.
func statusFor(err error) int {
	switch {
	case errors.Is(err, advisor.ErrInvalidRequest), errors.Is(err, advisor.ErrInvalidOption):
		return http.StatusBadRequest
	case errors.Is(err, advisor.ErrSessionClosed):
		return http.StatusGone
	case errors.Is(err, advisor.ErrCostServiceUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) json(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) error(w http.ResponseWriter, code int, msg string) {
	s.json(w, code, Error{Error: ErrorBody{Code: code, Message: msg}})
}
