package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/advisor"
	"repro/advisor/server"
	"repro/internal/catalog"
	"repro/internal/experiments"
	"repro/internal/search"
	"repro/internal/testleak"
	"repro/internal/whatif"
)

// chaosOpenFor is the breaker cooldown used by the chaos suite: long
// enough that an open breaker is observable over several HTTP round
// trips, short enough that the recovery phase waits milliseconds.
const chaosOpenFor = 50 * time.Millisecond

// chaosResilience tunes the middleware for deterministic chaos under
// seeded 10% transient errors: MaxRetries comfortably above the
// breaker threshold so a hard outage trips the breaker within the
// FIRST failing call's retry loop, and the threshold high enough that
// ten independent 10% faults in a row (p = 1e-10) never trip it by
// accident during the transient phase.
func chaosResilience() advisor.ResilienceOptions {
	return advisor.ResilienceOptions{
		RetryBase:        100 * time.Microsecond,
		RetryMax:         time.Millisecond,
		MaxRetries:       12,
		FailureThreshold: 10,
		OpenFor:          chaosOpenFor,
	}
}

// newChaosServer is newTestServer plus the production resilience
// middleware and a schedule-driven fault injector between the
// middleware and the real cost backend. Parallelism 1 keeps backend
// call numbers deterministic and lets the half-open breaker's single
// probe decide recovery without concurrent calls racing it.
func newChaosServer(t *testing.T, ropts advisor.ResilienceOptions, sopts server.Options) (*httptest.Server, *whatif.FaultService, *experiments.Env) {
	t.Helper()
	env, err := experiments.BuildEnv(experiments.Small)
	if err != nil {
		t.Fatal(err)
	}
	var fs *whatif.FaultService
	adv, err := advisor.New(catalog.New(env.Store),
		advisor.WithAnytime(true),
		advisor.WithParallelism(1),
		advisor.WithResilience(ropts),
		advisor.WithCostWrapper(func(svc advisor.CostService) advisor.CostService {
			fs = whatif.NewFaultService(svc, whatif.FaultSchedule{})
			return fs
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(adv, sopts)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, fs, env
}

func getHealth(t *testing.T, ts *httptest.Server) server.Health {
	t.Helper()
	res, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h server.Health
	decodeJSON(t, res, http.StatusOK, &h)
	return h
}

func openNamed(t *testing.T, ts *httptest.Server, name, workloadText string) server.SessionInfo {
	t.Helper()
	var info server.SessionInfo
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions",
		server.CreateSessionRequest{Name: name, Workload: workloadText}),
		http.StatusCreated, &info)
	return info
}

// TestChaosLifecycle is the acceptance chaos run: one server phased
// through clean traffic, an injected panic, seeded transient errors
// plus latency spikes, a hard costing outage, and recovery. Every
// failure maps to a typed JSON error or a degraded 200 — never a
// crash — health tracks the breaker, and no goroutine leaks.
func TestChaosLifecycle(t *testing.T) {
	testleak.Check(t)
	ts, fs, env := newChaosServer(t, chaosResilience(), server.Options{})

	// --- Phase A: clean baseline over XMark.
	xmark := openNamed(t, ts, "xmark", env.XMarkWorkload.Format())
	var clean advisor.RecommendResponse
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions/"+xmark.ID+"/recommend",
		advisor.RecommendRequest{Strategy: "greedy-basic", UnlimitedBudget: true}),
		http.StatusOK, &clean)
	if clean.Degraded || len(clean.Indexes) == 0 {
		t.Fatalf("clean phase: degraded=%v #idx=%d", clean.Degraded, len(clean.Indexes))
	}
	if h := getHealth(t, ts); h.Status != "ok" || h.Breaker != "closed" {
		t.Fatalf("healthz after clean phase: %+v", h)
	}

	// --- Phase B: one injected backend panic. It surfaces as a typed
	// 500 envelope (PanicError is never retried), and a single failure
	// leaves the breaker closed.
	tpox := openNamed(t, ts, "tpox", env.TPoXWorkload.Format())
	fs.SetSchedule(whatif.FaultSchedule{PanicOn: fs.Calls() + 1})
	var panicErr server.Error
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions/"+tpox.ID+"/recommend",
		advisor.RecommendRequest{Strategy: "greedy-basic", UnlimitedBudget: true}),
		http.StatusInternalServerError, &panicErr)
	if !strings.Contains(panicErr.Error.Message, "panic") {
		t.Fatalf("panic phase error: %+v", panicErr)
	}
	if h := getHealth(t, ts); h.Status != "ok" || h.Breaker != "closed" {
		t.Fatalf("healthz after one panic: %+v", h)
	}

	// --- Phase C: seeded transient chaos (10% errors, 5% latency
	// spikes). Retries absorb it: the recommendation succeeds,
	// undegraded, and the stats prove faults really were injected.
	injectedBefore := fs.Injected()
	fs.SetSchedule(whatif.FaultSchedule{Seed: 7, ErrorRate: 0.1, LatencyRate: 0.05, Latency: 500 * time.Microsecond})
	var chaotic advisor.RecommendResponse
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions/"+tpox.ID+"/recommend",
		advisor.RecommendRequest{Strategy: "greedy-basic", UnlimitedBudget: true}),
		http.StatusOK, &chaotic)
	if chaotic.Degraded || len(chaotic.Indexes) == 0 {
		t.Fatalf("chaos phase: degraded=%v #idx=%d", chaotic.Degraded, len(chaotic.Indexes))
	}
	if fs.Injected() == injectedBefore {
		t.Error("chaos phase injected no faults; the schedule never engaged")
	}
	if chaotic.Cache.Resilience.Retries == 0 {
		t.Error("faults were injected but no retries recorded")
	}

	// --- Phase D: hard outage. The XMark session's atoms are warm from
	// phase A, so greedy-heuristic selects its first index from cache,
	// hits the dead backend on the next lazy round, trips the breaker
	// inside that call's retry loop, and degrades to best-so-far.
	fs.SetSchedule(whatif.FaultSchedule{FailAfter: 1})
	var degraded advisor.RecommendResponse
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions/"+xmark.ID+"/recommend",
		advisor.RecommendRequest{Strategy: "greedy-heuristic", UnlimitedBudget: true}),
		http.StatusOK, &degraded)
	if !degraded.Degraded || degraded.DegradedReason == "" {
		t.Fatalf("outage phase: degraded=%v reason=%q", degraded.Degraded, degraded.DegradedReason)
	}
	if len(degraded.Indexes) == 0 {
		t.Error("degraded response carries no best-so-far configuration")
	}
	if h := getHealth(t, ts); h.Status != "degraded" || h.Breaker != "open" {
		t.Fatalf("healthz during outage: %+v", h)
	}

	// A brand-new session needs uncached base costing, which the open
	// breaker fails fast; the server maps that to a typed 503 envelope.
	var unavailable server.Error
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions",
		server.CreateSessionRequest{Name: "paper", Workload: env.PaperWorkload.Format()}),
		http.StatusServiceUnavailable, &unavailable)
	if unavailable.Error.Code != http.StatusServiceUnavailable || unavailable.Error.Message == "" {
		t.Fatalf("error envelope during outage: %+v", unavailable)
	}

	// With the breaker open, a fully cached recommendation still serves
	// clean: phase A's exact request repeats without touching the
	// backend and matches its original answer.
	var cached advisor.RecommendResponse
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions/"+xmark.ID+"/recommend",
		advisor.RecommendRequest{Strategy: "greedy-basic", UnlimitedBudget: true}),
		http.StatusOK, &cached)
	if cached.Degraded {
		t.Error("cache-served recommendation flagged degraded during the outage")
	}
	if got, want := cached.DDL(), clean.DDL(); !equalStrings(got, want) {
		t.Errorf("cache-served recommendation drifted during the outage:\n got %v\nwant %v", got, want)
	}

	// --- Phase E: recovery. Clear the schedule, let the breaker cool
	// off, and drive fresh (uncached) evaluations through it: the
	// half-open probe succeeds, the breaker closes, health is ok again.
	fs.SetSchedule(whatif.FaultSchedule{})
	time.Sleep(3 * chaosOpenFor)
	openNamed(t, ts, "paper", env.PaperWorkload.Format())
	if h := getHealth(t, ts); h.Status != "ok" || h.Breaker != "closed" {
		t.Fatalf("healthz after recovery: %+v", h)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// panicStrategy is a registered strategy that explodes mid-search,
// standing in for a search-layer bug.
type panicStrategy struct{}

func (panicStrategy) Name() string { return "test-panic" }

func (panicStrategy) Search(ctx context.Context, sp *search.Space) (*search.Result, error) {
	panic("test-panic strategy exploded")
}

// TestRecommendPanicContained pins the server's panic containment: a
// strategy panic becomes a JSON 500 on the plain path and a terminal
// error event on the SSE path, and the server keeps serving afterward.
func TestRecommendPanicContained(t *testing.T) {
	testleak.Check(t)
	search.Register(panicStrategy{})
	defer search.Unregister("test-panic")
	ts, _, wl := newTestServer(t, server.Options{})
	info := openSession(t, ts, wl)
	url := ts.URL + "/v1/sessions/" + info.ID + "/recommend"

	var e server.Error
	decodeJSON(t, postJSON(t, url, advisor.RecommendRequest{Strategy: "test-panic"}),
		http.StatusInternalServerError, &e)
	if e.Error.Code != http.StatusInternalServerError || !strings.Contains(e.Error.Message, "panic") {
		t.Fatalf("error envelope: %+v", e)
	}

	t.Run("stream", func(t *testing.T) {
		res := postJSON(t, url+"?stream=1", advisor.RecommendRequest{Strategy: "test-panic"})
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("stream status %d", res.StatusCode)
		}
		events := readSSE(t, res.Body)
		if len(events) == 0 {
			t.Fatal("no SSE events")
		}
		last := events[len(events)-1]
		if last.ev.Type != advisor.EventError || !strings.Contains(last.ev.Error, "panic") {
			t.Fatalf("terminal event type=%q error=%q, want an error mentioning the panic",
				last.ev.Type, last.ev.Error)
		}
	})

	// The server survived both panics: health answers and the session
	// still recommends.
	if h := getHealth(t, ts); h.Status != "ok" {
		t.Fatalf("healthz after panics: %+v", h)
	}
	decodeJSON(t, postJSON(t, url, advisor.RecommendRequest{}), http.StatusOK, nil)
}

// blockingStrategy parks until its context is cancelled — an arbitrarily
// slow search for admission and disconnect tests.
type blockingStrategy struct{}

func (blockingStrategy) Name() string { return "test-block" }

func (blockingStrategy) Search(ctx context.Context, sp *search.Space) (*search.Result, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// startBlockedRecommend fires a recommend that parks in the search
// until ctx is cancelled, returning a channel closed when the request
// goroutine has fully unwound.
func startBlockedRecommend(t *testing.T, ctx context.Context, url string, stream bool) <-chan struct{} {
	t.Helper()
	data, err := json.Marshal(advisor.RecommendRequest{Strategy: "test-block"})
	if err != nil {
		t.Fatal(err)
	}
	if stream {
		url += "?stream=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, err := http.DefaultClient.Do(req)
		if err == nil {
			res.Body.Close()
		}
	}()
	return done
}

// TestMaxInFlightAdmission pins admission control: with MaxInFlight 1
// and one recommendation parked in the search, the next one bounces
// with 429 and a Retry-After hint, and the slot frees once the first
// request ends.
func TestMaxInFlightAdmission(t *testing.T) {
	testleak.Check(t)
	search.Register(blockingStrategy{})
	defer search.Unregister("test-block")
	ts, srv, wl := newTestServer(t, server.Options{MaxInFlight: 1})
	info := openSession(t, ts, wl)
	url := ts.URL + "/v1/sessions/" + info.ID + "/recommend"

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := startBlockedRecommend(t, ctx, url, false)
	waitFor(t, "blocked request in flight", func() bool { return srv.InFlight() == 1 })

	res := postJSON(t, url, advisor.RecommendRequest{})
	if res.Header.Get("Retry-After") == "" {
		t.Error("429 response without a Retry-After header")
	}
	var e server.Error
	decodeJSON(t, res, http.StatusTooManyRequests, &e)
	if e.Error.Code != http.StatusTooManyRequests || e.Error.Message == "" {
		t.Fatalf("error envelope: %+v", e)
	}

	cancel()
	<-done
	waitFor(t, "slot released", func() bool { return srv.InFlight() == 0 })
	decodeJSON(t, postJSON(t, url, advisor.RecommendRequest{}), http.StatusOK, nil)
}

// TestSSEClientDisconnect pins stream cleanup: a client that hangs up
// mid-stream cancels the search, and the recommend goroutine unwinds
// (verified by the leak check) instead of writing into the void.
func TestSSEClientDisconnect(t *testing.T) {
	testleak.Check(t)
	search.Register(blockingStrategy{})
	defer search.Unregister("test-block")
	ts, srv, wl := newTestServer(t, server.Options{})
	info := openSession(t, ts, wl)

	res := postJSON(t, ts.URL+"/v1/sessions/"+info.ID+"/recommend?stream=1",
		advisor.RecommendRequest{Strategy: "test-block"})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", res.StatusCode)
	}
	// Wait for the stream to actually start (the space event flushes
	// before the search parks), then hang up mid-stream.
	first := make(chan error, 1)
	go func() {
		_, err := bufio.NewReader(res.Body).ReadString('\n')
		first <- err
	}()
	select {
	case err := <-first:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no SSE bytes within 5s")
	}
	res.Body.Close()
	waitFor(t, "in-flight drained after disconnect", func() bool { return srv.InFlight() == 0 })
}

// TestEvictionSparesInFlightSessions pins the janitor-vs-recommend
// race: a session whose recommendation is still running is never
// evicted, however stale the fake clock says it is; once the request
// ends it ages out normally.
func TestEvictionSparesInFlightSessions(t *testing.T) {
	testleak.Check(t)
	search.Register(blockingStrategy{})
	defer search.Unregister("test-block")

	now := time.Unix(1700000000, 0)
	var clockMu sync.Mutex
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		defer clockMu.Unlock()
		now = now.Add(d)
	}
	ts, srv, wl := newTestServer(t, server.Options{IdleTTL: time.Minute, Now: clock})
	info := openSession(t, ts, wl)
	url := ts.URL + "/v1/sessions/" + info.ID + "/recommend"

	active := func(want int) {
		t.Helper()
		waitFor(t, "session active count", func() bool {
			res, err := http.Get(ts.URL + "/v1/sessions/" + info.ID)
			if err != nil {
				t.Fatal(err)
			}
			var got server.SessionInfo
			decodeJSON(t, res, http.StatusOK, &got)
			return got.Active == want
		})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := startBlockedRecommend(t, ctx, url, false)
	active(1)

	advance(2 * time.Minute)
	if n := srv.EvictIdle(); n != 0 {
		t.Fatalf("evicted %d session(s) while a recommend was in flight", n)
	}

	cancel()
	<-done
	active(0)
	advance(2 * time.Minute)
	if n := srv.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d session(s) after the request ended, want 1", n)
	}
	decodeJSON(t, postJSON(t, url, advisor.RecommendRequest{}), http.StatusNotFound, nil)
}

// waitFor polls cond for up to 5s; the deadline turns a wedged
// condition into a test failure instead of a hang.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
