package server_test

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/advisor"
	"repro/advisor/server"
	"repro/internal/catalog"
	"repro/internal/experiments"
	"repro/internal/testleak"
)

// newDurableServer is newTestServer with a snapshot directory: the
// returned constructor builds a fresh Server over the same store and
// directory, simulating a daemon restart.
func newDurableServer(t *testing.T, dir string, opts server.Options) (*httptest.Server, *server.Server, string, func() (*httptest.Server, *server.Server)) {
	t.Helper()
	env, err := experiments.BuildEnv(experiments.Small)
	if err != nil {
		t.Fatal(err)
	}
	build := func() (*httptest.Server, *server.Server) {
		adv, err := advisor.New(catalog.New(env.Store),
			advisor.WithAnytime(true), advisor.WithSnapshotDir(dir))
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(adv, opts)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		return ts, srv
	}
	ts, srv := build()
	return ts, srv, env.XMarkWorkload.Format(), build
}

func getJSON(t *testing.T, url string, wantStatus int, v any) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, res, wantStatus, v)
}

// TestEvictPersistsAndResumes pins the durable eviction loop: an idle
// session is persisted before eviction, the health report counts it,
// and the next request on its ID resumes it from disk — warm, so the
// recommendation issues zero what-if evaluations.
func TestEvictPersistsAndResumes(t *testing.T) {
	testleak.Check(t)
	now := time.Now()
	clock := func() time.Time { return now }
	dir := t.TempDir()
	ts, srv, wl, _ := newDurableServer(t, dir, server.Options{IdleTTL: time.Minute, Now: clock})

	info := openSession(t, ts, wl)
	if !info.Durable {
		t.Error("session not marked durable despite snapshot dir")
	}
	var warm advisor.RecommendResponse
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions/"+info.ID+"/recommend", advisor.RecommendRequest{}),
		http.StatusOK, &warm)

	now = now.Add(2 * time.Minute)
	if n := srv.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	if n := srv.EvictedPersisted(); n != 1 {
		t.Errorf("EvictedPersisted = %d, want 1", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "session-"+info.ID+".xsnap")); err != nil {
		t.Fatalf("no ID-keyed snapshot after eviction: %v", err)
	}

	var health server.Health
	getJSON(t, ts.URL+"/v1/healthz", http.StatusOK, &health)
	if health.Sessions != 0 || health.EvictedPersisted != 1 || health.SnapshotDir != dir || health.SnapshotFiles == 0 {
		t.Errorf("health after eviction: %+v", health)
	}

	// The evicted ID answers, resumed from its snapshot, and the run is
	// warm: zero evaluations.
	var resumed advisor.RecommendResponse
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions/"+info.ID+"/recommend", advisor.RecommendRequest{}),
		http.StatusOK, &resumed)
	if resumed.Evaluations != 0 {
		t.Errorf("resumed recommend issued %d evaluations, want 0", resumed.Evaluations)
	}
	if got, want := resumed.DDL(), warm.DDL(); len(got) != len(want) {
		t.Errorf("resumed DDL %v, want %v", got, want)
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("resumed DDL %v, want %v", got, want)
				break
			}
		}
	}
	var si server.SessionInfo
	getJSON(t, ts.URL+"/v1/sessions/"+info.ID, http.StatusOK, &si)
	if si.RestoredFrom == "" || !si.Durable || si.LastSavedMS == 0 {
		t.Errorf("resumed session info lacks snapshot status: %+v", si)
	}
}

// TestShutdownPersistAllAndRestart: PersistAll saves every open
// session; a new server process over the same directory resumes them by
// ID and never mints a colliding ID.
func TestShutdownPersistAllAndRestart(t *testing.T) {
	testleak.Check(t)
	dir := t.TempDir()
	ts, srv, wl, build := newDurableServer(t, dir, server.Options{})

	a := openSession(t, ts, wl)
	b := openSession(t, ts, wl)
	// Run one recommendation on a so its snapshot carries the search's
	// cache atoms; the post-restart run can then be fully warm.
	var before advisor.RecommendResponse
	decodeJSON(t, postJSON(t, ts.URL+"/v1/sessions/"+a.ID+"/recommend", advisor.RecommendRequest{}),
		http.StatusOK, &before)
	if n, err := srv.PersistAll(); err != nil || n != 2 {
		t.Fatalf("PersistAll = %d, %v; want 2, nil", n, err)
	}

	// "Restart": a fresh server over the same store and directory.
	ts2, _ := build()
	var resp advisor.RecommendResponse
	decodeJSON(t, postJSON(t, ts2.URL+"/v1/sessions/"+a.ID+"/recommend", advisor.RecommendRequest{}),
		http.StatusOK, &resp)
	if resp.Evaluations != 0 {
		t.Errorf("post-restart recommend issued %d evaluations, want 0", resp.Evaluations)
	}
	var si server.SessionInfo
	getJSON(t, ts2.URL+"/v1/sessions/"+b.ID, http.StatusOK, &si)
	if si.ID != b.ID || si.RestoredFrom == "" {
		t.Errorf("restarted session info: %+v", si)
	}
	// New sessions on the restarted server continue past the persisted
	// sequence instead of shadowing s1/s2.
	fresh := openSession(t, ts2, wl)
	if fresh.ID == a.ID || fresh.ID == b.ID {
		t.Errorf("restarted server reissued persisted session ID %s", fresh.ID)
	}
	// Warm-started open: the workload was snapshotted on PersistAll, so
	// even the new session restores instead of re-running the pipeline.
	if fresh.RestoredFrom == "" {
		t.Errorf("fresh session on restarted server opened cold: %+v", fresh)
	}
}

// TestDeleteRemovesSnapshot: DELETE discards the ID-keyed file so the
// ID cannot be resumed, including when the session lives only on disk.
func TestDeleteRemovesSnapshot(t *testing.T) {
	testleak.Check(t)
	now := time.Now()
	clock := func() time.Time { return now }
	dir := t.TempDir()
	ts, srv, wl, _ := newDurableServer(t, dir, server.Options{IdleTTL: time.Minute, Now: clock})

	info := openSession(t, ts, wl)
	now = now.Add(2 * time.Minute)
	if n := srv.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	// On-disk only: DELETE still answers 204 and removes the file.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE evicted session = %d, want 204", res.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, "session-"+info.ID+".xsnap")); !os.IsNotExist(err) {
		t.Errorf("snapshot file survives DELETE: %v", err)
	}
	getJSON(t, ts.URL+"/v1/sessions/"+info.ID, http.StatusNotFound, nil)
}

// TestResumeRejectsCrookedIDs: lazy resume never touches the filesystem
// for IDs the server could not have generated, so a crafted path
// segment cannot escape the snapshot directory.
func TestResumeRejectsCrookedIDs(t *testing.T) {
	testleak.Check(t)
	dir := t.TempDir()
	ts, _, _, _ := newDurableServer(t, dir, server.Options{})
	for _, id := range []string{"..%2F..%2Fetc", "s12x", "x1", "s"} {
		getJSON(t, ts.URL+"/v1/sessions/"+id, http.StatusNotFound, nil)
	}
}

// TestNoSnapshotDirUnchanged: without a snapshot directory the durable
// fields stay absent and eviction still answers 404.
func TestNoSnapshotDirUnchanged(t *testing.T) {
	testleak.Check(t)
	now := time.Now()
	clock := func() time.Time { return now }
	ts, srv, wl := newTestServer(t, server.Options{IdleTTL: time.Minute, Now: clock})
	info := openSession(t, ts, wl)
	if info.Durable || info.RestoredFrom != "" || info.LastSavedMS != 0 {
		t.Errorf("durable fields set without snapshot dir: %+v", info)
	}
	now = now.Add(2 * time.Minute)
	if n := srv.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if srv.EvictedPersisted() != 0 {
		t.Error("EvictedPersisted counted without snapshot dir")
	}
	getJSON(t, ts.URL+"/v1/sessions/"+info.ID, http.StatusNotFound, nil)
	var health server.Health
	getJSON(t, ts.URL+"/v1/healthz", http.StatusOK, &health)
	if health.SnapshotDir != "" || health.SnapshotFiles != 0 || health.EvictedPersisted != 0 {
		t.Errorf("health reports snapshots without a dir: %+v", health)
	}
}
