// Durable sessions for server mode. When the advisor has a snapshot
// directory (advisor.WithSnapshotDir, xiad -snapshot-dir), the server
// writes each session's prepared state to an ID-keyed snapshot file
// before evicting it and on graceful shutdown, and lazily resumes a
// session from its file when a request addresses an ID that is no
// longer in memory — so a client holding a session URL across an idle
// eviction or a daemon restart keeps its warm session instead of a 404,
// and the first recommendation after resume issues no what-if
// evaluations.

package server

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/advisor"
)

// sessionSnapshotPrefix names ID-keyed session snapshot files:
// session-<id>.xsnap in the advisor's snapshot directory.
const sessionSnapshotPrefix = "session-"

// snapshotsOn reports whether durable sessions are configured.
func (s *Server) snapshotsOn() bool { return s.adv.SnapshotDir() != "" }

// sessionSnapshotPath is the ID-keyed snapshot file for a session.
func (s *Server) sessionSnapshotPath(id string) string {
	return filepath.Join(s.adv.SnapshotDir(), sessionSnapshotPrefix+id+advisor.SnapshotExt)
}

// EvictedPersisted counts sessions that were persisted to their
// snapshot file on eviction (the evicted_persisted health counter).
func (s *Server) EvictedPersisted() int64 { return s.evictedPersisted.Load() }

// persistSession writes the session to both snapshot files: the
// ID-keyed file lazy resume reads, and the workload-keyed file a later
// Open on the same workload warm-starts from.
func (s *Server) persistSession(e *session) error {
	if !s.snapshotsOn() {
		return nil
	}
	if err := e.sess.SnapshotToFile(s.sessionSnapshotPath(e.id)); err != nil {
		return err
	}
	_, err := e.sess.Persist()
	return err
}

// PersistAll persists every open session (graceful shutdown), returning
// how many were saved and the first error. Sessions that fail to
// persist are skipped, not closed: shutdown should save as much as it
// can.
func (s *Server) PersistAll() (int, error) {
	if !s.snapshotsOn() {
		return 0, nil
	}
	s.mu.Lock()
	entries := make([]*session, 0, len(s.sessions))
	for _, e := range s.sessions {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	n := 0
	var first error
	for _, e := range entries {
		if err := s.persistSession(e); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		n++
	}
	return n, first
}

// validSessionID reports whether id has the server's generated form
// ("s" + digits). Lazy resume only touches files for such IDs, so a
// crafted path segment can never escape the snapshot directory.
func validSessionID(id string) bool {
	if len(id) < 2 || id[0] != 's' {
		return false
	}
	for _, r := range id[1:] {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// resume tries to lazily rebuild session id from its ID-keyed snapshot
// file. It returns nil — request answers 404, exactly as without
// durable sessions — when snapshots are off, the ID is not one this
// server could have generated, the file is missing or does not fit the
// advisor anymore, or the server is at its session bound. A concurrent
// resume of the same ID wins harmlessly: the loser's restored session
// is closed and the winner's entry returned.
func (s *Server) resume(ctx context.Context, id string) *session {
	if !s.snapshotsOn() || !validSessionID(id) {
		return nil
	}
	sess, err := s.adv.RestoreFile(ctx, s.sessionSnapshotPath(id))
	if err != nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur := s.sessions[id]; cur != nil {
		sess.Close()
		return cur
	}
	if s.opts.MaxSessions > 0 && len(s.sessions)+s.reserved >= s.opts.MaxSessions {
		sess.Close()
		return nil
	}
	e := &session{id: id, sess: sess, lastUsed: s.opts.Now()}
	s.sessions[id] = e
	return e
}

// scanSnapshotSeq reads the snapshot directory and advances the session
// ID sequence past every persisted session-s<n>.xsnap, so IDs minted
// after a restart never collide with sessions a previous process
// persisted (a collision would silently shadow the old session's file).
func (s *Server) scanSnapshotSeq() {
	if !s.snapshotsOn() {
		return
	}
	names, err := filepath.Glob(filepath.Join(s.adv.SnapshotDir(), sessionSnapshotPrefix+"s*"+advisor.SnapshotExt))
	if err != nil {
		return
	}
	max := int64(0)
	for _, name := range names {
		base := strings.TrimSuffix(filepath.Base(name), advisor.SnapshotExt)
		id := strings.TrimPrefix(base, sessionSnapshotPrefix)
		if !validSessionID(id) {
			continue
		}
		if n, err := strconv.ParseInt(id[1:], 10, 64); err == nil && n > max {
			max = n
		}
	}
	s.mu.Lock()
	if max > s.seq {
		s.seq = max
	}
	s.mu.Unlock()
}

// removeSessionSnapshot deletes a session's ID-keyed snapshot file
// (explicit DELETE means the client is done with the ID; keeping the
// file would resurrect a deliberately closed session).
func (s *Server) removeSessionSnapshot(id string) {
	if !s.snapshotsOn() {
		return
	}
	os.Remove(s.sessionSnapshotPath(id))
}

// snapshotStatus fills a SessionInfo's durability fields. A session
// that has not persisted in this process but was resumed from a file
// reports the file's modification time — the save was a previous
// incarnation's, but it is still this state's last save.
func (s *Server) snapshotStatus(e *session, info *SessionInfo) {
	if !s.snapshotsOn() {
		return
	}
	info.Durable = true
	info.RestoredFrom = e.sess.RestoredFrom()
	if t := e.sess.LastSaved(); !t.IsZero() {
		info.LastSavedMS = t.UnixMilli()
	} else if info.RestoredFrom != "" {
		if fi, err := os.Stat(info.RestoredFrom); err == nil {
			info.LastSavedMS = fi.ModTime().UnixMilli()
		}
	}
}

// snapshotFileCount counts snapshot files in the directory, for the
// health report (best effort; 0 when snapshots are off or on error).
func (s *Server) snapshotFileCount() int {
	if !s.snapshotsOn() {
		return 0
	}
	names, err := filepath.Glob(filepath.Join(s.adv.SnapshotDir(), "*"+advisor.SnapshotExt))
	if err != nil {
		return 0
	}
	return len(names)
}
