package advisor_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/advisor"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// testWorkloads returns the three standard workloads over the shared
// small environment.
func testWorkloads(t testing.TB) (*experiments.Env, map[string]*workload.Workload) {
	t.Helper()
	env, err := experiments.BuildEnv(experiments.Small)
	if err != nil {
		t.Fatal(err)
	}
	return env, map[string]*workload.Workload{
		"xmark": env.XMarkWorkload,
		"tpox":  env.TPoXWorkload,
		"paper": env.PaperWorkload,
	}
}

// maskRuntime drops the wall-clock report line, the only
// nondeterministic part of the recommendation screen.
func maskRuntime(report string) string {
	var out []string
	for _, line := range strings.Split(report, "\n") {
		if strings.HasPrefix(line, "advisor runtime:") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// TestFacadeParity pins the facade to the core pipeline: on the
// xmark/tpox/paper workloads, recommendations served through the public
// advisor package are byte-identical to core.Advisor output —
// same DDL, same per-query analysis, same benefits.
func TestFacadeParity(t *testing.T) {
	env, workloads := testWorkloads(t)
	ctx := context.Background()
	for name, w := range workloads {
		t.Run(name, func(t *testing.T) {
			coreRec, err := core.New(catalog.New(env.Store), core.DefaultOptions()).Recommend(w)
			if err != nil {
				t.Fatal(err)
			}
			adv, err := advisor.New(catalog.New(env.Store))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := adv.Recommend(ctx, w, advisor.RecommendRequest{})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := resp.DDL(), coreRec.DDL; !reflect.DeepEqual(got, want) {
				t.Errorf("DDL mismatch:\nfacade: %v\ncore:   %v", got, want)
			}
			if got, want := maskRuntime(resp.Report()), maskRuntime(coreRec.Report()); got != want {
				t.Errorf("report mismatch:\nfacade:\n%s\ncore:\n%s", got, want)
			}
		})
	}
}

// TestOptionValidation pins the centralized constructor validation and
// its typed errors.
func TestOptionValidation(t *testing.T) {
	env, _ := testWorkloads(t)
	cases := []struct {
		name   string
		opt    advisor.Option
		option string
	}{
		{"negative budget", advisor.WithBudgetPages(-1), "WithBudgetPages"},
		{"unknown strategy", advisor.WithStrategy("simulated-annealing"), "WithStrategy"},
		{"bad rules", advisor.WithRules("lub,bogus"), "WithRules"},
		{"negative parallelism", advisor.WithParallelism(-2), "WithParallelism"},
		{"negative gen parallelism", advisor.WithGenParallelism(-2), "WithGenParallelism"},
		{"negative cache shards", advisor.WithCacheShards(-1), "WithCacheShards"},
		{"negative max candidates", advisor.WithMaxCandidates(-1), "WithMaxCandidates"},
		{"negative min shared steps", advisor.WithMinSharedSteps(-1), "WithMinSharedSteps"},
		{"negative deadline", advisor.WithDeadline(-1), "WithDeadline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := advisor.New(catalog.New(env.Store), tc.opt)
			if err == nil {
				t.Fatal("want validation error, got nil")
			}
			if !errors.Is(err, advisor.ErrInvalidOption) {
				t.Errorf("error %v does not wrap ErrInvalidOption", err)
			}
			var oe *advisor.OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %T is not *OptionError", err)
			}
			if oe.Option != tc.option {
				t.Errorf("OptionError.Option = %q, want %q", oe.Option, tc.option)
			}
		})
	}

	// Aliases normalize to canonical names in one place.
	adv, err := advisor.New(catalog.New(env.Store), advisor.WithStrategy("top-down"))
	if err != nil {
		t.Fatal(err)
	}
	if got := adv.Strategy(); got != "topdown" {
		t.Errorf("alias not canonicalized: %q", got)
	}
}

// TestUnlimitedBudgetRequest pins the escape hatch: with a default
// budget configured on the advisor, UnlimitedBudget reaches the
// unconstrained configuration a zero budget can no longer express.
func TestUnlimitedBudgetRequest(t *testing.T) {
	env, workloads := testWorkloads(t)
	ctx := context.Background()
	w := workloads["xmark"]

	free, err := advisor.New(catalog.New(env.Store))
	if err != nil {
		t.Fatal(err)
	}
	unconstrained, err := free.Recommend(ctx, w, advisor.RecommendRequest{})
	if err != nil {
		t.Fatal(err)
	}

	capped, err := advisor.New(catalog.New(env.Store),
		advisor.WithBudgetPages(unconstrained.TotalPages/2))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := capped.Open(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	defaulted, err := sess.Recommend(ctx, advisor.RecommendRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if defaulted.TotalPages > unconstrained.TotalPages/2 {
		t.Fatalf("default budget not applied: %d pages", defaulted.TotalPages)
	}
	unlimited, err := sess.Recommend(ctx, advisor.RecommendRequest{UnlimitedBudget: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(unlimited.DDL(), unconstrained.DDL()) {
		t.Errorf("unlimitedBudget result differs from the unconstrained configuration")
	}
	if unlimited.BudgetPages != 0 {
		t.Errorf("unlimited response reports budget %d", unlimited.BudgetPages)
	}
}

// TestRequestValidation pins per-request validation and its typed
// errors.
func TestRequestValidation(t *testing.T) {
	env, workloads := testWorkloads(t)
	ctx := context.Background()
	adv, err := advisor.New(catalog.New(env.Store))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := adv.Open(ctx, workloads["paper"])
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	cases := []struct {
		name  string
		req   advisor.RecommendRequest
		field string
	}{
		{"future api version", advisor.RecommendRequest{APIVersion: "v9"}, "apiVersion"},
		{"unknown strategy", advisor.RecommendRequest{Strategy: "annealing"}, "strategy"},
		{"negative budget", advisor.RecommendRequest{BudgetPages: -5}, "budgetPages"},
		{"conflicting budgets", advisor.RecommendRequest{BudgetPages: 1, BudgetKB: 1}, "budgetKB"},
		{"unlimited conflicts with budget", advisor.RecommendRequest{UnlimitedBudget: true, BudgetKB: 1}, "unlimitedBudget"},
		{"negative timeout", advisor.RecommendRequest{TimeoutMS: -1}, "timeoutMs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := sess.Recommend(ctx, tc.req)
			if !errors.Is(err, advisor.ErrInvalidRequest) {
				t.Fatalf("error %v does not wrap ErrInvalidRequest", err)
			}
			var re *advisor.RequestError
			if !errors.As(err, &re) {
				t.Fatalf("error %T is not *RequestError", err)
			}
			if re.Field != tc.field {
				t.Errorf("RequestError.Field = %q, want %q", re.Field, tc.field)
			}
		})
	}

	if _, err := sess.Recommend(ctx, advisor.RecommendRequest{APIVersion: advisor.APIVersion}); err != nil {
		t.Errorf("explicit current version rejected: %v", err)
	}
	sess.Close()
	if _, err := sess.Recommend(ctx, advisor.RecommendRequest{}); !errors.Is(err, advisor.ErrSessionClosed) {
		t.Errorf("closed session error = %v, want ErrSessionClosed", err)
	}
}

// TestSessionConcurrentRecommends runs many simultaneous strategy/budget
// requests on one session and checks each against its serial twin: the
// warm-cache sharing must never change a result.
func TestSessionConcurrentRecommends(t *testing.T) {
	env, workloads := testWorkloads(t)
	ctx := context.Background()
	adv, err := advisor.New(catalog.New(env.Store))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := adv.Open(ctx, workloads["xmark"])
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	full, err := sess.Recommend(ctx, advisor.RecommendRequest{})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []advisor.RecommendRequest
	for _, strategy := range []string{"greedy-basic", "greedy-heuristic", "topdown", "race"} {
		for _, budget := range []int64{0, full.TotalPages / 2} {
			reqs = append(reqs, advisor.RecommendRequest{Strategy: strategy, BudgetPages: budget})
		}
	}
	serial := make([]*advisor.RecommendResponse, len(reqs))
	for i, req := range reqs {
		if serial[i], err = sess.Recommend(ctx, req); err != nil {
			t.Fatal(err)
		}
	}

	parallel := make([]*advisor.RecommendResponse, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req advisor.RecommendRequest) {
			defer wg.Done()
			parallel[i], errs[i] = sess.Recommend(ctx, req)
		}(i, req)
	}
	wg.Wait()
	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("request %d (%s@%d): %v", i, reqs[i].Strategy, reqs[i].BudgetPages, errs[i])
		}
		if got, want := parallel[i].DDL(), serial[i].DDL(); !reflect.DeepEqual(got, want) {
			t.Errorf("request %d (%s@%d): parallel config differs from serial\nparallel: %v\nserial:   %v",
				i, reqs[i].Strategy, reqs[i].BudgetPages, got, want)
		}
		if parallel[i].NetBenefit != serial[i].NetBenefit {
			t.Errorf("request %d: net %.3f != %.3f", i, parallel[i].NetBenefit, serial[i].NetBenefit)
		}
	}
}

// TestRecommendStream pins the stream contract: space first, then every
// trace event, then counters, then the result; sequence numbers
// strictly increase; and the streamed result matches a plain Recommend.
func TestRecommendStream(t *testing.T) {
	env, workloads := testWorkloads(t)
	ctx := context.Background()
	adv, err := advisor.New(catalog.New(env.Store))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := adv.Open(ctx, workloads["paper"])
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	plain, err := sess.Recommend(ctx, advisor.RecommendRequest{Strategy: "race"})
	if err != nil {
		t.Fatal(err)
	}

	var events []advisor.Event
	for ev := range sess.RecommendStream(ctx, advisor.RecommendRequest{Strategy: "race"}) {
		events = append(events, ev)
	}
	if len(events) < 4 {
		t.Fatalf("only %d events", len(events))
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if events[0].Type != advisor.EventSpace {
		t.Errorf("first event is %s, want space", events[0].Type)
	}
	traces := 0
	var sawCounters, sawResult bool
	var result *advisor.RecommendResponse
	for _, ev := range events[1:] {
		switch ev.Type {
		case advisor.EventTrace:
			if sawCounters || sawResult {
				t.Error("trace event after counters/result")
			}
			if ev.Trace.Strategy == "" {
				t.Error("trace event without strategy attribution")
			}
			traces++
		case advisor.EventCounters:
			sawCounters = true
		case advisor.EventResult:
			sawResult = true
			result = ev.Response
		case advisor.EventError:
			t.Fatalf("stream error: %s", ev.Error)
		}
	}
	if traces == 0 || !sawCounters || !sawResult {
		t.Fatalf("stream missing phases: %d traces, counters=%v, result=%v", traces, sawCounters, sawResult)
	}
	if events[len(events)-1].Type != advisor.EventResult {
		t.Errorf("last event is %s, want result", events[len(events)-1].Type)
	}
	if !reflect.DeepEqual(result.DDL(), plain.DDL()) {
		t.Errorf("streamed config differs from plain recommend")
	}
	// The streamed trace events match the result's own trace count for
	// the winner plus the losing members' steps — at minimum, every
	// event in the final trace was also streamed.
	if traces < len(result.Search.Members) {
		t.Errorf("fewer streamed traces (%d) than race members (%d)", traces, len(result.Search.Members))
	}
}

// TestEvaluateOnAndMaterialize drives the DTO round trip: a response's
// indexes evaluate and materialize without reaching into internals.
func TestEvaluateOnAndMaterialize(t *testing.T) {
	env, workloads := testWorkloads(t)
	ctx := context.Background()
	w := workloads["paper"]
	cat := catalog.New(env.Store)
	adv, err := advisor.New(cat)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := adv.Recommend(ctx, w, advisor.RecommendRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Indexes) == 0 {
		t.Fatal("no indexes recommended")
	}
	noIdx, withIdx, err := adv.EvaluateOn(ctx, w, resp.Indexes)
	if err != nil {
		t.Fatal(err)
	}
	if noIdx <= withIdx {
		t.Errorf("expected benefit: no-index %.1f <= with-config %.1f", noIdx, withIdx)
	}

	// A JSON round trip must not change what materializes: the wire is
	// the API.
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var decoded advisor.RecommendResponse
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	names, err := adv.Materialize(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(resp.Indexes) {
		t.Fatalf("materialized %d of %d indexes", len(names), len(resp.Indexes))
	}
	for i, n := range names {
		if want := fmt.Sprintf("XIA_IDX%d", i+1); n != want {
			t.Errorf("index name %q, want %q", n, want)
		}
		found := false
		for _, def := range cat.Indexes("") {
			if def.Name == n {
				found = true
			}
		}
		if !found {
			t.Errorf("index %s not in catalog", n)
		}
	}
}
