package advisor_test

import (
	"context"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/advisor"
	"repro/internal/catalog"
)

// TestFaultInjectionSoak is the CI fault-injection soak: the same
// request stream runs against a clean advisor and one whose costing
// backend injects a seeded 10% transient error rate plus latency
// spikes behind the resilience middleware. Because every fault
// decision is a pure function of (seed, call number) and retries land
// on fresh call numbers, the middleware absorbs the chaos completely:
// every faulted recommendation must be byte-identical to its clean
// twin, never degraded, with the retry counters proving faults really
// fired. SOAK_ITERS deepens the budget sweep (default 2 keeps the
// default test run fast; CI raises it).
func TestFaultInjectionSoak(t *testing.T) {
	env, workloads := testWorkloads(t)
	iters := 2
	if s := os.Getenv("SOAK_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("SOAK_ITERS=%q: want a positive integer", s)
		}
		iters = n
	}

	clean, err := advisor.New(catalog.New(env.Store), advisor.WithAnytime(true))
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := advisor.New(catalog.New(env.Store),
		advisor.WithAnytime(true),
		advisor.WithResilience(advisor.ResilienceOptions{
			RetryBase:        100 * time.Microsecond,
			RetryMax:         time.Millisecond,
			MaxRetries:       12,
			FailureThreshold: 10,
			OpenFor:          50 * time.Millisecond,
		}),
		advisor.WithFaultInjection("seed=7,error=0.1,latency=0.05:200us"))
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	strategies := []string{"greedy-basic", "greedy-heuristic", "topdown"}
	for _, name := range []string{"xmark", "tpox", "paper"} {
		w := workloads[name]
		// The unlimited run prices the full candidate set and anchors
		// the budget sweep below.
		base, err := clean.Recommend(ctx, w, advisor.RecommendRequest{UnlimitedBudget: true})
		if err != nil {
			t.Fatal(err)
		}
		for iter := 0; iter < iters; iter++ {
			for _, strategy := range strategies {
				req := advisor.RecommendRequest{Strategy: strategy}
				if iter == 0 {
					req.UnlimitedBudget = true
				} else {
					// Fractional budgets drive fresh search paths each
					// iteration instead of replaying warm cache hits.
					req.BudgetPages = base.TotalPages * int64(iter) / int64(iters)
					if req.BudgetPages < 1 {
						req.BudgetPages = 1
					}
				}
				want, err := clean.Recommend(ctx, w, req)
				if err != nil {
					t.Fatalf("%s/%s iter %d: clean: %v", name, strategy, iter, err)
				}
				got, err := faulted.Recommend(ctx, w, req)
				if err != nil {
					t.Fatalf("%s/%s iter %d: faulted: %v", name, strategy, iter, err)
				}
				if got.Degraded {
					t.Fatalf("%s/%s iter %d: faulted run degraded (%s); transient faults must be absorbed by retries",
						name, strategy, iter, got.DegradedReason)
				}
				if g, w := maskRuntime(got.Report()), maskRuntime(want.Report()); g != w {
					t.Errorf("%s/%s iter %d: faulted recommendation differs from clean run:\n--- clean ---\n%s\n--- faulted ---\n%s",
						name, strategy, iter, w, g)
				}
			}
		}
	}

	state, counters, ok := faulted.Resilience()
	if !ok {
		t.Fatal("faulted advisor reports no resilience middleware")
	}
	if state != "closed" {
		t.Errorf("breaker state %q after the soak, want closed", state)
	}
	if counters.Retries == 0 {
		t.Error("soak finished without a single retry; the fault schedule never fired")
	}
	if counters.BreakerTrips != 0 {
		t.Errorf("breaker tripped %d time(s) during a transient-only soak", counters.BreakerTrips)
	}
}
