package advisor_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/advisor"
	"repro/internal/candidate"
	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/search"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenResponse is a fully populated v1 response with every field set
// to a fixed value, so the golden file pins the complete wire shape:
// field names, nesting, and omitempty behavior.
func goldenResponse() *advisor.RecommendResponse {
	return &advisor.RecommendResponse{
		APIVersion:  advisor.APIVersion,
		Workload:    "golden",
		Strategy:    "race",
		BudgetPages: 64,
		Indexes: []advisor.Index{{
			Name:       "XIA_IDX1",
			Collection: "auction",
			Pattern:    "/site/regions/*/item/quantity",
			Type:       "dbl",
			Pages:      3,
			Entries:    120,
			DDL:        "CREATE INDEX XIA_IDX1 ON AUCTION(DOC) GENERATE KEY USING XMLPATTERN '/site/regions/*/item/quantity' AS SQL DOUBLE",
		}},
		TotalPages:   3,
		QueryBenefit: 312.5,
		UpdateCost:   12.25,
		NetBenefit:   300.25,
		PerQuery: []advisor.QueryCost{{
			ID:              "Q1",
			Text:            `for $i in collection("auction")/site/regions/namerica/item where $i/quantity > 5 return $i/name`,
			Weight:          3,
			CostNoIndexes:   208.75,
			CostRecommended: 93.5,
			CostOvertrained: 91.25,
			IndexesUsed:     []string{"XIA_IDX1"},
		}},
		Candidates: advisor.CandidateSummary{
			Basics:      4,
			Total:       8,
			BasicsPages: 10,
			DAGNodes:    8,
			DAGEdges:    6,
			DAGRoots:    2,
		},
		Pipeline: advisor.PipelineStats{
			Source:      "optimizer",
			Enumerated:  4,
			Basic:       4,
			Generalized: 4,
			Deduped:     0,
			Pruned:      4,
			Rules: []candidate.RuleStats{
				{Name: "lub", Applied: 2, Pruned: 2},
				{Name: "leaf", Applied: 2, Pruned: 2},
			},
			Matrix: candidate.MatrixStats{
				Strata:     2,
				Pairs:      24,
				Structural: 24,
				NFA:        0,
				Edges:      6,
				BuildWall:  11 * time.Microsecond,
				ReduceWall: time.Microsecond,
			},
			Wall: time.Millisecond,
		},
		Search: advisor.SearchStats{
			Strategy: "race",
			Rounds:   4,
			Elapsed:  5 * time.Millisecond,
			Cache:    search.Counters{Hits: 28, Misses: 15, Evaluations: 45},
			Winner:   "greedy-heuristic",
			Members: []advisor.SearchStats{{
				Strategy: "greedy-heuristic",
				Rounds:   4,
				Elapsed:  4 * time.Millisecond,
				Cache:    search.Counters{Hits: 26, Misses: 13, Evaluations: 37},
			}},
		},
		Cache: advisor.CacheStats{Hits: 29, Misses: 16, Evaluations: 48, ProjectedHits: 9, RelevantDefs: 60},
		Kernel: advisor.KernelStats{
			Interned: 12,
			Contains: pattern.CacheStats{Hits: 40, Misses: 24, Size: 24, Capacity: 4096},
			Overlaps: pattern.CacheStats{Hits: 2, Misses: 2, Size: 2, Capacity: 4096},
		},
		Relevance:   advisor.RelevanceStats{Queries: 1, Min: 2, Median: 2, P95: 2, Max: 2, Mean: 2},
		Evaluations: 48,
		ElapsedMS:   7,
		Trace: advisor.Trace{{
			Round:     1,
			Action:    "add",
			Candidate: "auction|/site/regions/*/item/quantity|dbl",
			Benefit:   300.25,
			Pages:     3,
			Covered:   1,
			Of:        4,
			Note:      "",
			Strategy:  "greedy-heuristic",
			Cache:     search.Counters{Hits: 10, Misses: 2, Evaluations: 6},
		}},
		DAGText: "auction dbl\n  /site/regions/*/item/quantity\n",
	}
}

// TestRecommendResponseGolden pins the v1 JSON wire format. A failure
// means the wire shape changed: either fix the regression, or — for an
// intentional, versioned change — run `go test ./advisor -update` and
// review the golden diff.
func TestRecommendResponseGolden(t *testing.T) {
	resp := goldenResponse()
	got, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "recommend_response.v1.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./advisor -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("v1 wire format drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenCoversLiveResponse checks the golden literal stays honest:
// a real recommendation marshals to the same JSON field set (no new
// fields sneak into the wire unpinned). Volatile values are not
// compared — only the key structure.
func TestGoldenCoversLiveResponse(t *testing.T) {
	env, workloads := testWorkloads(t)
	adv, err := advisor.New(catalog.New(env.Store))
	if err != nil {
		t.Fatal(err)
	}
	live, err := adv.Recommend(context.Background(), workloads["paper"],
		advisor.RecommendRequest{IncludeTrace: true, IncludeDAG: true})
	if err != nil {
		t.Fatal(err)
	}
	liveKeys := topLevelKeys(t, live)
	goldenKeys := topLevelKeys(t, goldenResponse())
	for k := range liveKeys {
		if !goldenKeys[k] {
			t.Errorf("live response has top-level field %q missing from the golden literal", k)
		}
	}
}

func topLevelKeys(t *testing.T, v any) map[string]bool {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for k := range m {
		out[k] = true
	}
	return out
}
