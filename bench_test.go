// Package repro holds the benchmark harness: one benchmark per
// experiment of DESIGN.md §4 (each regenerating a table/figure of the
// paper's demonstration), plus end-to-end advisor and executor
// benchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// Reports are written once per benchmark via -v logging; the
// cmd/experiments binary prints the same tables at reporting scale.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/experiments"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	env, err := experiments.BuildEnv(experiments.Small)
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// runExperiment wraps one experiment as a benchmark, logging its report
// on the first iteration.
func runExperiment(b *testing.B, fn func(*experiments.Env) (string, error)) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := fn(env)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", rep)
		}
	}
}

// BenchmarkE1EnumerateIndexes regenerates Figure 2 (Enumerate Indexes).
func BenchmarkE1EnumerateIndexes(b *testing.B) {
	runExperiment(b, experiments.E1EnumerateIndexes)
}

// BenchmarkE2EvaluateIndexes regenerates Figure 3 (Evaluate Indexes).
func BenchmarkE2EvaluateIndexes(b *testing.B) {
	runExperiment(b, experiments.E2EvaluateIndexes)
}

// BenchmarkE3GeneralizationDAG regenerates Figure 4 (candidate DAG and
// search traversals).
func BenchmarkE3GeneralizationDAG(b *testing.B) {
	runExperiment(b, experiments.E3GeneralizationDAG)
}

// BenchmarkE4RecommendationAnalysis regenerates Figure 5 (per-query
// no-index / recommended / overtrained costs).
func BenchmarkE4RecommendationAnalysis(b *testing.B) {
	runExperiment(b, experiments.E4RecommendationAnalysis)
}

// BenchmarkE5UnseenWorkload regenerates the unseen-queries analysis
// (generalization payoff on held-out queries).
func BenchmarkE5UnseenWorkload(b *testing.B) {
	runExperiment(b, experiments.E5UnseenWorkload)
}

// BenchmarkE6SearchStrategies regenerates the search-strategy budget
// sweep (§2.3).
func BenchmarkE6SearchStrategies(b *testing.B) {
	runExperiment(b, experiments.E6SearchStrategies)
}

// BenchmarkE7UpdateCost regenerates the update-share sensitivity table.
func BenchmarkE7UpdateCost(b *testing.B) {
	runExperiment(b, experiments.E7UpdateCost)
}

// BenchmarkE8ActualExecution regenerates the demo's final step: actual
// execution time with and without the recommended indexes.
func BenchmarkE8ActualExecution(b *testing.B) {
	runExperiment(b, experiments.E8ActualExecution)
}

// BenchmarkE9CouplingAblation regenerates the tight- vs loose-coupling
// enumeration comparison.
func BenchmarkE9CouplingAblation(b *testing.B) {
	runExperiment(b, experiments.E9CouplingAblation)
}

// BenchmarkE10InteractionAblation regenerates the index-interaction
// ablation.
func BenchmarkE10InteractionAblation(b *testing.B) {
	runExperiment(b, experiments.E10InteractionAblation)
}

// BenchmarkE11AdvisorScalability regenerates the advisor-runtime table.
func BenchmarkE11AdvisorScalability(b *testing.B) {
	runExperiment(b, experiments.E11AdvisorScalability)
}

// BenchmarkE12ParallelWhatIf regenerates the what-if parallelism table.
func BenchmarkE12ParallelWhatIf(b *testing.B) {
	runExperiment(b, experiments.E12ParallelWhatIf)
}

// BenchmarkE13RuleAblation regenerates the generalization-rule ablation
// table (per-rule applied/pruned counters).
func BenchmarkE13RuleAblation(b *testing.B) {
	runExperiment(b, experiments.E13RuleAblation)
}

// BenchmarkE14StrategyPortfolio regenerates the strategy-portfolio
// table (every registered strategy plus the race, shared search space).
func BenchmarkE14StrategyPortfolio(b *testing.B) {
	runExperiment(b, experiments.E14StrategyPortfolio)
}

// BenchmarkAdvisorEndToEnd measures one full Recommend call on the
// XMark workload (the advisor-runtime series).
func BenchmarkAdvisorEndToEnd(b *testing.B) {
	env := benchEnv(b)
	w := datagen.XMarkWorkload(20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.New(env.Cat, core.DefaultOptions())
		if _, err := a.Recommend(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdvisorParallel sweeps the what-if engine's worker count on
// the XMark workload: one full Recommend per iteration, reporting the
// per-query evaluation count and cache hit rate alongside wall-clock.
// The recommendation itself is identical at every worker count; only
// the evaluation throughput changes.
func BenchmarkAdvisorParallel(b *testing.B) {
	env := benchEnv(b)
	w := datagen.XMarkWorkload(20, 1)
	for _, workers := range experiments.WorkerSweep() {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var evals, hits, misses int64
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.Parallelism = workers
				a := core.New(env.Cat, opts)
				rec, err := a.Recommend(w)
				if err != nil {
					b.Fatal(err)
				}
				evals += rec.Cache.Evaluations
				hits += rec.Cache.Hits
				misses += rec.Cache.Misses
			}
			b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
			if hits+misses > 0 {
				b.ReportMetric(100*float64(hits)/float64(hits+misses), "cache-hit-%")
			}
		})
	}
}

// BenchmarkAdvisorScalesWithWorkload reports advisor runtime as the
// workload grows (the scalability series).
func BenchmarkAdvisorScalesWithWorkload(b *testing.B) {
	env := benchEnv(b)
	for _, n := range []int{5, 10, 20, 40} {
		w := datagen.XMarkWorkload(n, 1)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := core.New(env.Cat, core.DefaultOptions())
				if _, err := a.Recommend(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	return "queries-" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// BenchmarkExecutorDocScan and BenchmarkExecutorIndexScan give the raw
// executor cost ratio behind E8.
func BenchmarkExecutorDocScan(b *testing.B) {
	env := benchEnv(b)
	cat := env.Cat
	ex := executor.New(cat)
	w := datagen.XMarkWorkload(1, 1)
	q := w.Queries[0].Query
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Run(q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecutorIndexScan(b *testing.B) {
	env := benchEnv(b)
	cat := env.Cat
	a := core.New(cat, core.DefaultOptions())
	w := &workload.Workload{Name: "bench"}
	w.MustAddQuery(1, `for $i in collection("auction")/site/regions/namerica/item where $i/price < 20 return $i/name`)
	rec, err := a.Recommend(w)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := a.Materialize(rec); err != nil {
		b.Fatal(err)
	}
	defer func() {
		for i := range rec.Config {
			cat.DropIndex("XIA_IDX" + string(rune('1'+i)))
		}
	}()
	opt := optimizer.New(cat)
	q := w.Queries[0].Query
	plan, err := opt.Optimize(q, nil)
	if err != nil {
		b.Fatal(err)
	}
	ex := executor.New(cat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Run(q, plan); err != nil {
			b.Fatal(err)
		}
	}
}
