// Command apicheck diffs the exported API surface of the public
// advisor packages against the committed baseline in api/v1.txt — the
// CI gate that makes API changes deliberate. Exit status 1 means the
// surface drifted; run with -update (and commit the diff) to accept an
// intentional change.
//
//	go run ./cmd/apicheck            # check against api/v1.txt
//	go run ./cmd/apicheck -update    # rewrite the baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/apibaseline"
)

func main() {
	baseline := flag.String("baseline", "api/v1.txt", "baseline file to diff against")
	update := flag.Bool("update", false, "rewrite the baseline instead of checking")
	flag.Parse()

	got, err := apibaseline.Surface([][2]string{
		{"advisor", "advisor"},
		{"advisor/server", "advisor/server"},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(2)
	}
	if *update {
		if dir := filepath.Dir(*baseline); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "apicheck:", err)
				os.Exit(2)
			}
		}
		if err := os.WriteFile(*baseline, []byte(got), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(2)
		}
		fmt.Printf("apicheck: wrote %s\n", *baseline)
		return
	}
	want, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: %v (run `go run ./cmd/apicheck -update` to create it)\n", err)
		os.Exit(2)
	}
	if got == string(want) {
		fmt.Printf("apicheck: exported API matches %s\n", *baseline)
		return
	}
	fmt.Fprintf(os.Stderr, "apicheck: exported API drifted from %s\n", *baseline)
	fmt.Fprintln(os.Stderr, diff(string(want), got))
	fmt.Fprintln(os.Stderr, "apicheck: if the change is intentional, run `go run ./cmd/apicheck -update` and commit the result")
	os.Exit(1)
}

// diff renders a minimal line diff: baseline-only lines as '-', new
// lines as '+'.
func diff(want, got string) string {
	wantSet := toSet(want)
	gotSet := toSet(got)
	var out string
	for _, line := range splitLines(want) {
		if !gotSet[line] {
			out += "  - " + line + "\n"
		}
	}
	for _, line := range splitLines(got) {
		if !wantSet[line] {
			out += "  + " + line + "\n"
		}
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func toSet(s string) map[string]bool {
	out := map[string]bool{}
	for _, line := range splitLines(s) {
		out[line] = true
	}
	return out
}
