// Command xgen generates the benchmark databases and workload files used
// by the xdb and xia tools.
//
//	xgen -out data -kind xmark -docs 500 -queries 20 -seed 7
//	xgen -out data -kind tpox  -securities 100 -queries 20 -seed 7
//
// Documents are written one file per document under <out>/<collection>/;
// the workload is written to <out>/<kind>.workload in the format of
// internal/workload.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/datagen"
	"repro/internal/store"
	"repro/internal/workload"
	"repro/internal/xmldoc"
)

func main() {
	out := flag.String("out", "data", "output directory")
	kind := flag.String("kind", "xmark", "xmark or tpox")
	docs := flag.Int("docs", 300, "xmark: number of documents")
	securities := flag.Int("securities", 60, "tpox: number of securities")
	queries := flag.Int("queries", 20, "workload queries to generate")
	updates := flag.Float64("updates", 0, "update weight to add to the workload")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	st := store.New()
	var w *workload.Workload
	switch *kind {
	case "xmark":
		if _, err := datagen.GenerateXMark(st, datagen.XMarkConfig{Docs: *docs, Seed: *seed}); err != nil {
			fatal(err)
		}
		w = datagen.XMarkWorkload(*queries, *seed)
		if *updates > 0 {
			datagen.XMarkUpdates(w, *updates, *seed)
		}
	case "tpox":
		if err := datagen.GenerateTPoX(st, datagen.TPoXConfig{Securities: *securities, Seed: *seed}); err != nil {
			fatal(err)
		}
		w = datagen.TPoXWorkload(*queries, *seed, *securities)
		if *updates > 0 {
			datagen.TPoXUpdates(w, *updates, *seed, *securities)
		}
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	written := 0
	for _, name := range st.Names() {
		col := st.Get(name)
		dir := filepath.Join(*out, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		col.Each(func(d *xmldoc.Document) bool {
			path := filepath.Join(dir, fmt.Sprintf("%s_%06d.xml", name, d.ID))
			if err := os.WriteFile(path, []byte(d.Serialize()), 0o644); err != nil {
				fatal(err)
			}
			written++
			return true
		})
	}
	wpath := filepath.Join(*out, *kind+".workload")
	if err := os.WriteFile(wpath, []byte(w.Format()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d documents under %s and workload %s (%d queries, %d updates)\n",
		written, *out, wpath, len(w.Queries), len(w.Updates))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xgen:", err)
	os.Exit(1)
}
