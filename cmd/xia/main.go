// Command xia is the XML Index Advisor CLI: given a database (generated
// or loaded from a directory of XML files) and a workload file, it
// recommends an index configuration under a disk budget and prints the
// recommendation analysis.
//
//	xia -gen xmark:500:1 -workload data/xmark.workload -budget-kb 256 -search topdown
//	xia -gen xmark:500:1 -workload data/xmark.workload -search race -trace-json
//	xia -load auction=data/auction -workload data/xmark.workload -dag -trace
//	xia -gen xmark:500:1 -workload data/xmark.workload -parallel 8 -cache-size 4096 -timeout 30s
//	xia -gen xmark:500:1 -workload data/xmark.workload -gen-parallel 8 -rules lub,leaf,axis
//
// The -materialize flag additionally builds the recommended indexes and
// reruns the workload to report actual execution times (the demo's final
// step).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/optimizer"
	"repro/internal/search"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	gen := flag.String("gen", "", "generate data: xmark:<docs>:<seed> or tpox:<securities>:<seed>")
	load := flag.String("load", "", "load data: <collection>=<dir>[,<collection>=<dir>...]")
	wpath := flag.String("workload", "", "workload file (required)")
	budgetKB := flag.Int64("budget-kb", 0, "disk budget in KB (0 = unlimited)")
	searchName := flag.String("search", "greedy", "search strategy: "+strings.Join(search.Names(), " | "))
	noGen := flag.Bool("no-generalize", false, "disable candidate generalization")
	rules := flag.String("rules", "", "generalization rules: comma-separated lub,wildcard,leaf,axis,universal | all | none (default: paper rules)")
	genParallel := flag.Int("gen-parallel", 0, "concurrent candidate enumerations (0 = GOMAXPROCS)")
	showDAG := flag.Bool("dag", false, "print the candidate DAG")
	showTrace := flag.Bool("trace", false, "print the search trace")
	traceJSON := flag.Bool("trace-json", false, "print the structured search trace as JSON")
	materialize := flag.Bool("materialize", false, "build recommended indexes and report actual execution times")
	parallel := flag.Int("parallel", 0, "concurrent what-if evaluations (0 = GOMAXPROCS)")
	cacheShards := flag.Int("cache-shards", 0, "what-if cache shard count (0 = default)")
	cacheSize := flag.Int("cache-size", 0, "max memoized configuration evaluations (0 = default 65536, negative = unlimited)")
	timeout := flag.Duration("timeout", 0, "abort the advisor after this duration (0 = none)")
	flag.Parse()

	if *wpath == "" {
		fmt.Fprintln(os.Stderr, "xia: -workload is required")
		os.Exit(2)
	}
	st := store.New()
	if err := setupData(st, *gen, *load); err != nil {
		fatal(err)
	}
	text, err := os.ReadFile(*wpath)
	if err != nil {
		fatal(err)
	}
	w, err := workload.Parse(filepath.Base(*wpath), string(text))
	if err != nil {
		fatal(err)
	}

	opts := core.DefaultOptions()
	opts.Generalize = !*noGen
	opts.Rules = *rules
	opts.GenParallelism = *genParallel
	opts.Parallelism = *parallel
	opts.CacheShards = *cacheShards
	opts.CacheSize = *cacheSize
	if opts.Search, err = core.ParseSearchKind(*searchName); err != nil {
		fatal(err)
	}
	if *budgetKB > 0 {
		opts.DiskBudgetPages = (*budgetKB * 1024) / store.DefaultPageSize
		if opts.DiskBudgetPages < 1 {
			opts.DiskBudgetPages = 1
		}
	}
	cat := catalog.New(st)
	adv := core.New(cat, opts)
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rec, err := adv.RecommendContext(ctx, w)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rec.Report())
	// rec.Report already covers evaluations and hits; add only what it
	// lacks.
	fmt.Printf("what-if engine: %d workers, %d cache misses (%.0f%% hit rate)\n",
		adv.CostEngine().Workers(), rec.Cache.Misses, 100*rec.Cache.HitRate())
	fmt.Println(rec.Kernel.String())
	fmt.Println(rec.Search.String())
	fmt.Println(rec.Gen.String())
	if *showDAG {
		fmt.Println()
		fmt.Print(rec.DAG.Render())
	}
	if *showTrace {
		fmt.Println("\nsearch trace:")
		for _, line := range rec.Trace {
			fmt.Println("  " + line)
		}
	}
	if *traceJSON {
		data, err := rec.TraceEvents.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nsearch trace (JSON):\n%s\n", data)
	}
	if *materialize {
		if err := runMaterialized(cat, adv, rec, w); err != nil {
			fatal(err)
		}
	}
}

func setupData(st *store.Store, gen, load string) error {
	if gen == "" && load == "" {
		return fmt.Errorf("one of -gen or -load is required")
	}
	if gen != "" {
		parts := strings.Split(gen, ":")
		kind := parts[0]
		n, seed := 300, int64(1)
		if len(parts) > 1 {
			v, err := strconv.Atoi(parts[1])
			if err != nil {
				return fmt.Errorf("bad -gen count: %v", err)
			}
			n = v
		}
		if len(parts) > 2 {
			v, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				return fmt.Errorf("bad -gen seed: %v", err)
			}
			seed = v
		}
		switch kind {
		case "xmark":
			if _, err := datagen.GenerateXMark(st, datagen.XMarkConfig{Docs: n, Seed: seed}); err != nil {
				return err
			}
		case "tpox":
			if err := datagen.GenerateTPoX(st, datagen.TPoXConfig{Securities: n, Seed: seed}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown generator %q", kind)
		}
	}
	if load != "" {
		for _, spec := range strings.Split(load, ",") {
			coll, dir, ok := strings.Cut(spec, "=")
			if !ok {
				return fmt.Errorf("bad -load spec %q", spec)
			}
			col := st.Get(coll)
			if col == nil {
				var err error
				if col, err = st.Create(coll); err != nil {
					return err
				}
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				return err
			}
			for _, e := range entries {
				if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") {
					continue
				}
				data, err := os.ReadFile(filepath.Join(dir, e.Name()))
				if err != nil {
					return err
				}
				if _, err := col.InsertXML(string(data)); err != nil {
					return fmt.Errorf("%s: %w", e.Name(), err)
				}
			}
		}
	}
	return nil
}

func runMaterialized(cat *catalog.Catalog, adv *core.Advisor, rec *core.Recommendation, w *workload.Workload) error {
	names, err := adv.Materialize(rec)
	if err != nil {
		return err
	}
	fmt.Printf("\nmaterialized %d indexes: %s\n", len(names), strings.Join(names, ", "))
	opt := optimizer.New(cat)
	ex := executor.New(cat)
	fmt.Printf("%-6s %8s %12s %12s %8s\n", "query", "rows", "scan", "indexed", "speedup")
	for _, e := range w.Queries {
		scan, err := ex.Run(e.Query, nil)
		if err != nil {
			return err
		}
		plan, err := opt.Optimize(e.Query, nil)
		if err != nil {
			return err
		}
		idx, err := ex.Run(e.Query, plan)
		if err != nil {
			return err
		}
		su := float64(scan.Metrics.Duration.Microseconds()+1) / float64(idx.Metrics.Duration.Microseconds()+1)
		fmt.Printf("%-6s %8d %12v %12v %7.1fx\n",
			e.Query.ID, scan.Rows, scan.Metrics.Duration, idx.Metrics.Duration, su)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xia:", err)
	os.Exit(1)
}
