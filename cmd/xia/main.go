// Command xia is the XML Index Advisor CLI: given a database (generated
// or loaded from a directory of XML files) and a workload file, it
// recommends an index configuration under a disk budget and prints the
// recommendation analysis. It is a thin shell over the public advisor
// package — the same API the xiad server mode speaks.
//
//	xia -gen xmark:500:1 -workload data/xmark.workload -budget-kb 256 -search topdown
//	xia -gen xmark:500:1 -workload data/xmark.workload -search race -trace-json
//	xia -load auction=data/auction -workload data/xmark.workload -dag -trace
//	xia -gen xmark:500:1 -workload data/xmark.workload -parallel 8 -cache-size 4096 -timeout 30s
//	xia -gen xmark:500:1 -workload data/xmark.workload -gen-parallel 8 -rules lub,leaf,axis
//
// The -materialize flag additionally builds the recommended indexes and
// reruns the workload to report actual execution times (the demo's final
// step).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/advisor"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/optimizer"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	gen := flag.String("gen", "", "generate data: xmark:<docs>:<seed> or tpox:<securities>:<seed>")
	load := flag.String("load", "", "load data: <collection>=<dir>[,<collection>=<dir>...]")
	wpath := flag.String("workload", "", "workload file (required)")
	budgetKB := flag.Int64("budget-kb", 0, "disk budget in KB (0 = unlimited)")
	searchName := flag.String("search", "greedy", "search strategy: "+strings.Join(advisor.Strategies(), " | "))
	noGen := flag.Bool("no-generalize", false, "disable candidate generalization")
	rules := flag.String("rules", "", "generalization rules: comma-separated lub,wildcard,leaf,axis,universal | all | none (default: paper rules)")
	genParallel := flag.Int("gen-parallel", 0, "concurrent candidate enumerations (0 = GOMAXPROCS)")
	showDAG := flag.Bool("dag", false, "print the candidate DAG")
	showTrace := flag.Bool("trace", false, "print the search trace")
	traceJSON := flag.Bool("trace-json", false, "print the structured search trace as JSON")
	materialize := flag.Bool("materialize", false, "build recommended indexes and report actual execution times")
	parallel := flag.Int("parallel", 0, "concurrent what-if evaluations (0 = GOMAXPROCS)")
	cacheShards := flag.Int("cache-shards", 0, "what-if cache shard count (0 = default)")
	cacheSize := flag.Int("cache-size", 0, "max memoized configuration evaluations (0 = default 65536, negative = unlimited)")
	timeout := flag.Duration("timeout", 0, "abort the advisor after this duration (0 = none)")
	flag.Parse()

	if *wpath == "" {
		fmt.Fprintln(os.Stderr, "xia: -workload is required")
		os.Exit(2)
	}
	st := store.New()
	if err := setupData(st, *gen, *load); err != nil {
		fatal(err)
	}
	text, err := os.ReadFile(*wpath)
	if err != nil {
		fatal(err)
	}
	w, err := advisor.ParseWorkload(filepath.Base(*wpath), string(text))
	if err != nil {
		fatal(err)
	}

	// All flag validation (budget, strategy names, rule specs) happens
	// in the advisor constructor — the one shared path.
	cat := catalog.New(st)
	adv, err := advisor.New(cat,
		advisor.WithStrategy(*searchName),
		advisor.WithBudgetKB(*budgetKB),
		advisor.WithGeneralize(!*noGen),
		advisor.WithRules(*rules),
		advisor.WithGenParallelism(*genParallel),
		advisor.WithParallelism(*parallel),
		advisor.WithCacheShards(*cacheShards),
		advisor.WithCacheSize(*cacheSize),
	)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	resp, err := adv.Recommend(ctx, w, advisor.RecommendRequest{
		IncludeTrace: *showTrace || *traceJSON,
		IncludeDAG:   *showDAG,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(resp.Report())
	// resp.Report already covers evaluations and hits; add only what it
	// lacks.
	fmt.Printf("what-if engine: %d workers, %d cache misses (%.0f%% hit rate, %d projection-enabled hits, %.1f relevant defs/atom)\n",
		adv.Workers(), resp.Cache.Misses, 100*resp.Cache.HitRate(),
		resp.Cache.ProjectedHits, resp.Cache.MeanRelevant())
	fmt.Printf("relevance: %d..%d relevant candidates/query (median %d, p95 %d, mean %.1f)\n",
		resp.Relevance.Min, resp.Relevance.Max, resp.Relevance.Median, resp.Relevance.P95, resp.Relevance.Mean)
	fmt.Println(resp.Kernel.String())
	fmt.Println(resp.Search.String())
	fmt.Println(resp.Pipeline.String())
	if *showDAG {
		fmt.Println()
		fmt.Print(resp.DAGText)
	}
	if *showTrace {
		fmt.Println("\nsearch trace:")
		for _, ev := range resp.Trace {
			fmt.Println("  " + ev.String())
		}
	}
	if *traceJSON {
		data, err := resp.Trace.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nsearch trace (JSON):\n%s\n", data)
	}
	if *materialize {
		if err := runMaterialized(cat, adv, resp, w); err != nil {
			fatal(err)
		}
	}
}

func setupData(st *store.Store, gen, load string) error {
	if gen == "" && load == "" {
		return fmt.Errorf("one of -gen or -load is required")
	}
	return datagen.SetupStore(st, gen, load)
}

func runMaterialized(cat *catalog.Catalog, adv *advisor.Advisor, resp *advisor.RecommendResponse, w *workload.Workload) error {
	names, err := adv.Materialize(resp)
	if err != nil {
		return err
	}
	fmt.Printf("\nmaterialized %d indexes: %s\n", len(names), strings.Join(names, ", "))
	opt := optimizer.New(cat)
	ex := executor.New(cat)
	fmt.Printf("%-6s %8s %12s %12s %8s\n", "query", "rows", "scan", "indexed", "speedup")
	for _, e := range w.Queries {
		scan, err := ex.Run(e.Query, nil)
		if err != nil {
			return err
		}
		plan, err := opt.Optimize(e.Query, nil)
		if err != nil {
			return err
		}
		idx, err := ex.Run(e.Query, plan)
		if err != nil {
			return err
		}
		su := float64(scan.Metrics.Duration.Microseconds()+1) / float64(idx.Metrics.Duration.Microseconds()+1)
		fmt.Printf("%-6s %8d %12v %12v %7.1fx\n",
			e.Query.ID, scan.Rows, scan.Metrics.Duration, idx.Metrics.Duration, su)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xia:", err)
	os.Exit(1)
}
