// Command xiad is the XML Index Advisor in server mode (paper §3): the
// advisor lives inside the engine process and clients drive it over a
// versioned HTTP/JSON API — open a workload into a session once, then
// run many budget/strategy sweeps against the warm what-if cache, with
// optional Server-Sent-Events progress streaming.
//
//	xiad -gen xmark:500:1 -addr :8080
//	xiad -load auction=data/auction -addr :8080 -session-ttl 10m
//
//	curl -s localhost:8080/v1/healthz
//	curl -s localhost:8080/v1/strategies
//	curl -s -X POST localhost:8080/v1/sessions \
//	    -d '{"name":"demo","workload":"q|3|for $i in collection(\"auction\")/site/regions/namerica/item where $i/quantity > 5 return $i/name"}'
//	curl -s -X POST localhost:8080/v1/sessions/s1/recommend -d '{"strategy":"race","budgetKB":256}'
//	curl -N -X POST 'localhost:8080/v1/sessions/s1/recommend?stream=1' -d '{"strategy":"race"}'
//
// Request timeouts (-request-timeout or per-request timeoutMs) run the
// race portfolio in anytime mode: at the deadline the best
// configuration any member finished is returned instead of an error.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/advisor"
	"repro/advisor/server"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	gen := flag.String("gen", "", "generate data: xmark:<docs>:<seed> or tpox:<securities>:<seed>")
	load := flag.String("load", "", "load data: <collection>=<dir>[,<collection>=<dir>...]")
	searchName := flag.String("search", "", "default search strategy: "+strings.Join(advisor.Strategies(), " | "))
	parallel := flag.Int("parallel", 0, "concurrent what-if evaluations (0 = GOMAXPROCS)")
	cacheShards := flag.Int("cache-shards", 0, "what-if cache shard count (0 = default)")
	cacheSize := flag.Int("cache-size", 0, "max memoized configuration evaluations (0 = default, negative = unlimited)")
	reqTimeout := flag.Duration("request-timeout", 0, "default per-recommendation deadline; anytime race returns best-so-far (0 = none)")
	sessionTTL := flag.Duration("session-ttl", 15*time.Minute, "evict sessions idle for this long (0 = never)")
	maxSessions := flag.Int("max-sessions", 0, "max concurrently open sessions (0 = unlimited)")
	flag.Parse()

	// An empty -gen/-load pair is allowed: sessions then fail until
	// data exists, which suits smoke tests of /v1/healthz and
	// /v1/strategies.
	st := store.New()
	if err := datagen.SetupStore(st, *gen, *load); err != nil {
		log.Fatalln("xiad:", err)
	}
	opts := []advisor.Option{
		advisor.WithParallelism(*parallel),
		advisor.WithCacheShards(*cacheShards),
		advisor.WithCacheSize(*cacheSize),
		advisor.WithAnytime(true),
	}
	if *searchName != "" {
		opts = append(opts, advisor.WithStrategy(*searchName))
	}
	if *reqTimeout > 0 {
		opts = append(opts, advisor.WithDeadline(*reqTimeout))
	}
	adv, err := advisor.New(catalog.New(st), opts...)
	if err != nil {
		log.Fatalln("xiad:", err)
	}
	srv := server.New(adv, server.Options{IdleTTL: *sessionTTL, MaxSessions: *maxSessions})
	if *sessionTTL > 0 {
		go srv.Janitor(context.Background(), *sessionTTL/4+time.Second)
	}
	log.Printf("xiad: serving the advisor API on %s (strategies: %s; %d what-if workers)",
		*addr, strings.Join(advisor.Strategies(), ", "), adv.Workers())
	log.Fatalln("xiad:", http.ListenAndServe(*addr, srv))
}
