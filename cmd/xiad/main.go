// Command xiad is the XML Index Advisor in server mode (paper §3): the
// advisor lives inside the engine process and clients drive it over a
// versioned HTTP/JSON API — open a workload into a session once, then
// run many budget/strategy sweeps against the warm what-if cache, with
// optional Server-Sent-Events progress streaming.
//
//	xiad -gen xmark:500:1 -addr :8080
//	xiad -load auction=data/auction -addr :8080 -session-ttl 10m
//
//	curl -s localhost:8080/v1/healthz
//	curl -s localhost:8080/v1/strategies
//	curl -s -X POST localhost:8080/v1/sessions \
//	    -d '{"name":"demo","workload":"q|3|for $i in collection(\"auction\")/site/regions/namerica/item where $i/quantity > 5 return $i/name"}'
//	curl -s -X POST localhost:8080/v1/sessions/s1/recommend -d '{"strategy":"race","budgetKB":256}'
//	curl -N -X POST 'localhost:8080/v1/sessions/s1/recommend?stream=1' -d '{"strategy":"race"}'
//
// Request timeouts (-request-timeout or per-request timeoutMs) run the
// race portfolio in anytime mode: at the deadline the best
// configuration any member finished is returned instead of an error.
//
// With -snapshot-dir, sessions are durable: idle-evicted sessions and
// every session open at graceful shutdown are persisted as versioned
// snapshot files, requests addressing a persisted session ID resume it
// lazily with its warm what-if cache, and opening a workload that was
// snapshotted before warm-starts instead of re-running the candidate
// pipeline.
//
// The process is signal-aware: SIGINT/SIGTERM drain in-flight requests
// via http.Server.Shutdown, bounded by -shutdown-timeout. Exit codes:
// 0 clean shutdown, 1 setup failure, 2 listen failure, 3 shutdown
// timeout (the server was closed hard).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/advisor"
	"repro/advisor/server"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/store"
	"repro/internal/whatif"
)

func main() { os.Exit(run(os.Args[1:])) }

// run is the whole daemon lifecycle, separated from main so the exit
// code is a return value: 0 clean shutdown, 1 setup failure, 2 listen
// failure, 3 forced close after the shutdown grace expired.
func run(args []string) int {
	fs := flag.NewFlagSet("xiad", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	gen := fs.String("gen", "", "generate data: xmark:<docs>:<seed> or tpox:<securities>:<seed>")
	load := fs.String("load", "", "load data: <collection>=<dir>[,<collection>=<dir>...]")
	searchName := fs.String("search", "", "default search strategy: "+strings.Join(advisor.Strategies(), " | "))
	parallel := fs.Int("parallel", 0, "concurrent what-if evaluations (0 = GOMAXPROCS)")
	cacheShards := fs.Int("cache-shards", 0, "what-if cache shard count (0 = default)")
	cacheSize := fs.Int("cache-size", 0, "max memoized configuration evaluations (0 = default, negative = unlimited)")
	reqTimeout := fs.Duration("request-timeout", 0, "default per-recommendation deadline; anytime race returns best-so-far (0 = none)")
	sessionTTL := fs.Duration("session-ttl", 15*time.Minute, "evict sessions idle for this long (0 = never)")
	maxSessions := fs.Int("max-sessions", 0, "max concurrently open sessions (0 = unlimited)")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrently served recommendations; excess answers 429 (0 = unlimited)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "grace for draining in-flight requests on SIGINT/SIGTERM")
	whatifTimeout := fs.Duration("whatif-timeout", 0, "per-call what-if costing timeout (0 = resilience default)")
	whatifRetries := fs.Int("whatif-retries", 0, "what-if costing retries per call (0 = default, negative = none)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive costing failures that open the circuit breaker (0 = default)")
	breakerOpen := fs.Duration("breaker-open", 0, "how long an open breaker rejects before probing (0 = default)")
	faults := fs.String("faults", "", "inject deterministic costing faults, e.g. seed=7,error=0.1,latency=0.05:3ms (chaos/soak testing)")
	snapshotDir := fs.String("snapshot-dir", "", "durable sessions: persist session snapshots here on eviction and shutdown, resume lazily by ID (empty = off)")
	fs.Parse(args)

	// An empty -gen/-load pair is allowed: sessions then fail until
	// data exists, which suits smoke tests of /v1/healthz and
	// /v1/strategies.
	st := store.New()
	if err := datagen.SetupStore(st, *gen, *load); err != nil {
		log.Println("xiad:", err)
		return 1
	}
	opts := []advisor.Option{
		advisor.WithParallelism(*parallel),
		advisor.WithCacheShards(*cacheShards),
		advisor.WithCacheSize(*cacheSize),
		advisor.WithAnytime(true),
		advisor.WithResilience(advisor.ResilienceOptions{
			CallTimeout:      *whatifTimeout,
			MaxRetries:       *whatifRetries,
			FailureThreshold: *breakerThreshold,
			OpenFor:          *breakerOpen,
		}),
	}
	if *searchName != "" {
		opts = append(opts, advisor.WithStrategy(*searchName))
	}
	if *reqTimeout > 0 {
		opts = append(opts, advisor.WithDeadline(*reqTimeout))
	}
	if *faults != "" {
		opts = append(opts, advisor.WithFaultInjection(*faults))
		log.Printf("xiad: FAULT INJECTION ACTIVE (%s) — this is a chaos/soak configuration", *faults)
	}
	if *snapshotDir != "" {
		opts = append(opts, advisor.WithSnapshotDir(*snapshotDir))
	}
	adv, err := advisor.New(catalog.New(st), opts...)
	if err != nil {
		log.Println("xiad:", err)
		return 1
	}
	srv := server.New(adv, server.Options{
		IdleTTL:     *sessionTTL,
		MaxSessions: *maxSessions,
		MaxInFlight: *maxInFlight,
	})
	janitorCtx, stopJanitor := context.WithCancel(context.Background())
	defer stopJanitor()
	if *sessionTTL > 0 {
		go srv.Janitor(janitorCtx, *sessionTTL/4+time.Second)
	}

	// Listen separately from Serve so a dead port is a distinct,
	// immediate failure (exit 2) rather than whatever falls out of
	// ListenAndServe's combined error.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Println("xiad: listen:", err)
		return 2
	}
	httpSrv := &http.Server{Handler: srv}

	log.Printf("xiad: serving the advisor API on %s (strategies: %s; %d what-if workers)",
		ln.Addr(), strings.Join(advisor.Strategies(), ", "), adv.Workers())
	log.Printf("xiad: limits: max-sessions=%d max-inflight=%d session-ttl=%v request-timeout=%v shutdown-timeout=%v",
		*maxSessions, *maxInFlight, *sessionTTL, *reqTimeout, *shutdownTimeout)
	if *snapshotDir != "" {
		log.Printf("xiad: durable sessions: snapshot-dir=%s", *snapshotDir)
	}
	ropts := whatif.ResilientOptions{
		CallTimeout:      *whatifTimeout,
		MaxRetries:       *whatifRetries,
		FailureThreshold: *breakerThreshold,
		OpenFor:          *breakerOpen,
	}.WithDefaults()
	log.Printf("xiad: costing resilience: call-timeout=%v retries=%d breaker-threshold=%d breaker-open=%v",
		ropts.CallTimeout, ropts.MaxRetries, ropts.FailureThreshold, ropts.OpenFor)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)

	select {
	case err := <-serveErr:
		// Serve only returns on failure here: ErrServerClosed cannot
		// happen before a signal triggers Shutdown below.
		log.Println("xiad: serve:", err)
		return 2
	case sig := <-sigs:
		log.Printf("xiad: received %v; draining in-flight requests (grace %v)", sig, *shutdownTimeout)
	}
	stopJanitor()
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		// The grace expired with requests still running; close hard so
		// the process actually exits, and say so in the exit code.
		log.Println("xiad: shutdown grace expired, closing:", err)
		httpSrv.Close()
		return 3
	}
	if *snapshotDir != "" {
		// In-flight requests have drained; persist every open session so
		// the next process resumes them warm.
		n, perr := srv.PersistAll()
		if perr != nil {
			log.Println("xiad: persisting sessions:", perr)
		}
		log.Printf("xiad: persisted %d session(s) to %s", n, *snapshotDir)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Println("xiad: serve:", err)
		return 2
	}
	log.Println("xiad: clean shutdown")
	return 0
}
