// Command xdb is a small interactive shell over the XML database
// substrate: load or generate documents, create real indexes, run
// XQuery/SQL-XML queries, and invoke the two EXPLAIN modes the advisor
// relies on. It is the "visual client" of the demonstration, rendered as
// a REPL.
//
//	xdb                          # interactive
//	xdb -c 'gen xmark 200 1; enumerate for $i in collection("auction")/site/regions/namerica/item where $i/quantity > 5 return $i/name'
//	xdb -parallel 4              # what-if evaluation worker count
//
// Commands:
//
//	gen xmark <docs> <seed> | gen tpox <securities> <seed>
//	load <collection> <dir>
//	ls
//	stats <collection> [n]
//	create <name> <collection> <pattern> <type>
//	drop <name>
//	query <query text>
//	explain <query text>
//	enumerate <query text>
//	evaluate <pattern>:<type>[,<pattern>:<type>...] :: <query text>
//	whatif [-relevance] <pattern>:<type>[,<pattern>:<type>...] :: <workload-file>
//	candidates <workload-file> [rules]
//	search <workload-file> [budget-pages]
//	search -synthetic n=N [budget-pages]
//	snapshot save <workload-file> <path> [strategy]
//	snapshot restore <path> [budget-pages]
//	snapshot inspect <path>
//	help | quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/advisor"
	"repro/internal/candidate"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/optimizer"
	"repro/internal/pattern"
	"repro/internal/querylang"
	"repro/internal/search"
	"repro/internal/sqltype"
	"repro/internal/store"
	"repro/internal/whatif"
	"repro/internal/workload"
)

type shell struct {
	st       *store.Store
	cat      *catalog.Catalog
	opt      *optimizer.Optimizer
	what     *whatif.Engine
	ex       *executor.Executor
	out      *bufio.Writer
	parallel int // what-if worker count (-parallel; 0 = GOMAXPROCS)
}

func main() {
	cmds := flag.String("c", "", "semicolon-separated commands to run non-interactively")
	parallel := flag.Int("parallel", 0, "concurrent what-if evaluations (0 = GOMAXPROCS)")
	flag.Parse()

	sh := newShell(*parallel)
	defer sh.out.Flush()
	if *cmds != "" {
		for _, c := range strings.Split(*cmds, ";") {
			if err := sh.run(strings.TrimSpace(c)); err != nil {
				fmt.Fprintln(os.Stderr, "xdb:", err)
				sh.out.Flush()
				os.Exit(1)
			}
		}
		return
	}
	fmt.Fprintln(sh.out, "xdb shell — 'help' for commands")
	sh.out.Flush()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(sh.out, "xdb> ")
		sh.out.Flush()
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "quit" || line == "exit" {
			return
		}
		if line == "" {
			continue
		}
		if err := sh.run(line); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		}
		sh.out.Flush()
	}
}

func newShell(parallel int) *shell {
	st := store.New()
	cat := catalog.New(st)
	opt := optimizer.New(cat)
	// The shell's evaluate command does not hide real indexes (the DBA
	// wants the configuration on top of what exists), so VirtualOnly is
	// off — unlike the advisor's engine.
	svc := &whatif.OptimizerService{Opt: opt}
	return &shell{
		st:  st,
		cat: cat,
		opt: opt,
		// The shell is long-lived; cap the cache like the advisor does.
		what:     whatif.NewEngine(svc, whatif.Options{Workers: parallel, MaxEntries: 1 << 16}),
		ex:       executor.New(cat),
		out:      bufio.NewWriter(os.Stdout),
		parallel: parallel,
	}
}

func (s *shell) run(line string) error {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "help":
		fmt.Fprintln(s.out, "commands: gen, load, ls, stats, create, drop, query, explain, enumerate, evaluate, whatif, candidates, search, snapshot, quit")
		return nil
	case "gen":
		// Mutating commands invalidate memoized what-if costs: the
		// engine's cache keys carry no catalog version.
		s.what.Flush()
		return s.cmdGen(rest)
	case "load":
		s.what.Flush()
		return s.cmdLoad(rest)
	case "ls":
		return s.cmdLs()
	case "stats":
		return s.cmdStats(rest)
	case "create":
		s.what.Flush()
		return s.cmdCreate(rest)
	case "drop":
		s.what.Flush()
		if !s.cat.DropIndex(rest) {
			return fmt.Errorf("no index %q", rest)
		}
		fmt.Fprintf(s.out, "dropped %s\n", rest)
		return nil
	case "query":
		return s.cmdQuery(rest, true)
	case "explain":
		return s.cmdQuery(rest, false)
	case "enumerate":
		return s.cmdEnumerate(rest)
	case "evaluate":
		return s.cmdEvaluate(rest)
	case "whatif":
		return s.cmdWhatIf(rest)
	case "candidates":
		return s.cmdCandidates(rest)
	case "search":
		return s.cmdSearch(rest)
	case "snapshot":
		return s.cmdSnapshot(rest)
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (s *shell) cmdGen(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return fmt.Errorf("usage: gen xmark <docs> <seed> | gen tpox <securities> <seed>")
	}
	n, seed := 200, int64(1)
	if len(fields) > 1 {
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		n = v
	}
	if len(fields) > 2 {
		v, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return err
		}
		seed = v
	}
	switch fields[0] {
	case "xmark":
		col, err := datagen.GenerateXMark(s.st, datagen.XMarkConfig{Docs: n, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "generated %d documents into %s\n", col.Len(), col.Name())
	case "tpox":
		if err := datagen.GenerateTPoX(s.st, datagen.TPoXConfig{Securities: n, Seed: seed}); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "generated tpox collections: security=%d order=%d custacc=%d\n",
			s.st.Get("security").Len(), s.st.Get("order").Len(), s.st.Get("custacc").Len())
	default:
		return fmt.Errorf("unknown generator %q", fields[0])
	}
	return nil
}

func (s *shell) cmdLoad(rest string) error {
	coll, dir, ok := strings.Cut(rest, " ")
	if !ok {
		return fmt.Errorf("usage: load <collection> <dir>")
	}
	col := s.st.Get(coll)
	if col == nil {
		var err error
		if col, err = s.st.Create(coll); err != nil {
			return err
		}
	}
	entries, err := os.ReadDir(strings.TrimSpace(dir))
	if err != nil {
		return err
	}
	loaded := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(strings.TrimSpace(dir), e.Name()))
		if err != nil {
			return err
		}
		if _, err := col.InsertXML(string(data)); err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
		loaded++
	}
	fmt.Fprintf(s.out, "loaded %d documents into %s\n", loaded, coll)
	return nil
}

func (s *shell) cmdLs() error {
	for _, name := range s.st.Names() {
		col := s.st.Get(name)
		fmt.Fprintf(s.out, "collection %-12s %6d docs %8d nodes %6d pages\n",
			name, col.Len(), col.NodeCount(), col.Pages())
	}
	for _, def := range s.cat.Indexes("") {
		fmt.Fprintf(s.out, "index %s\n", def)
	}
	return nil
}

func (s *shell) cmdStats(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return fmt.Errorf("usage: stats <collection> [n]")
	}
	limit := 15
	if len(fields) > 1 {
		if v, err := strconv.Atoi(fields[1]); err == nil {
			limit = v
		}
	}
	st, err := s.cat.Stats(fields[0])
	if err != nil {
		return err
	}
	type row struct {
		path  string
		count int64
	}
	var rows []row
	for p, ps := range st.Paths {
		rows = append(rows, row{p, ps.Count})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].path < rows[j].path
	})
	fmt.Fprintf(s.out, "%s: %d docs, %d nodes, %d distinct paths\n", fields[0], st.Docs, st.Nodes, len(st.Paths))
	for i, r := range rows {
		if i >= limit {
			break
		}
		fmt.Fprintf(s.out, "  %8d  %s\n", r.count, r.path)
	}
	return nil
}

func (s *shell) cmdCreate(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) != 4 {
		return fmt.Errorf("usage: create <name> <collection> <pattern> <type>")
	}
	p, err := pattern.Parse(fields[2])
	if err != nil {
		return err
	}
	ty, err := sqltype.ParseType(fields[3])
	if err != nil {
		return err
	}
	def, err := s.cat.CreateIndex(fields[0], fields[1], p, ty)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "created %s\n", def)
	return nil
}

func (s *shell) cmdQuery(text string, exec bool) error {
	q, err := querylang.ParseAuto(text)
	if err != nil {
		return err
	}
	plan, err := s.opt.Optimize(q, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "plan: %s\n", plan.Describe())
	if !exec {
		return nil
	}
	res, err := s.ex.Run(q, plan)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "rows: %d  (scanned %d docs, fetched %d, visited %d nodes, %v)\n",
		res.Rows, res.Metrics.DocsScanned, res.Metrics.DocsFetched,
		res.Metrics.NodesVisited, res.Metrics.Duration)
	return nil
}

func (s *shell) cmdEnumerate(text string) error {
	q, err := querylang.ParseAuto(text)
	if err != nil {
		return err
	}
	rep, err := s.opt.ExplainEnumerate(q)
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, rep)
	return nil
}

// cmdEvaluate parses "<pattern>:<type>[,...] :: <query>".
func (s *shell) cmdEvaluate(rest string) error {
	cfgStr, qStr, ok := strings.Cut(rest, "::")
	if !ok {
		return fmt.Errorf("usage: evaluate <pattern>:<type>[,...] :: <query>")
	}
	q, err := querylang.ParseAuto(strings.TrimSpace(qStr))
	if err != nil {
		return err
	}
	st, err := s.cat.Stats(q.Collection)
	if err != nil {
		return err
	}
	var defs []*catalog.IndexDef
	for i, item := range strings.Split(strings.TrimSpace(cfgStr), ",") {
		patStr, tyStr, ok := strings.Cut(strings.TrimSpace(item), ":")
		if !ok {
			return fmt.Errorf("config item %q: want <pattern>:<type>", item)
		}
		p, err := pattern.Parse(strings.TrimSpace(patStr))
		if err != nil {
			return err
		}
		ty, err := sqltype.ParseType(tyStr)
		if err != nil {
			return err
		}
		defs = append(defs, catalog.VirtualDef(fmt.Sprintf("V%d", i+1), q.Collection, p, ty, st))
	}
	ev, err := s.what.EvaluateQuery(context.Background(), q, defs)
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, ev.Explain(q.Text, defs))
	return nil
}

// cmdWhatIf parses "whatif [-relevance] <pattern>:<type>[,...] ::
// <workload-file>" and costs the whole workload under the virtual
// configuration through the what-if engine — the fan-out path the
// -parallel flag governs. The per-query rows show each query's
// relevance-projected atom: how many of the configuration's definitions
// can serve the query at all, and whether its cost came from the cache.
// -relevance additionally prints the relevant-candidate count
// distribution across the workload's queries. -faults=<spec> routes
// the evaluation through a one-off engine whose cost service injects
// deterministic faults behind the resilience middleware
// (whatif.ParseFaultSpec syntax) — the interactive window into the
// retry/breaker behavior the advisor runs with in production.
func (s *shell) cmdWhatIf(rest string) error {
	relevance := false
	faultSpec := ""
	for {
		word, tail, ok := strings.Cut(rest, " ")
		if ok && word == "-relevance" {
			relevance = true
			rest = strings.TrimSpace(tail)
			continue
		}
		if ok && strings.HasPrefix(word, "-faults=") {
			faultSpec = strings.TrimPrefix(word, "-faults=")
			rest = strings.TrimSpace(tail)
			continue
		}
		break
	}
	cfgStr, path, ok := strings.Cut(rest, "::")
	if !ok {
		return fmt.Errorf("usage: whatif [-relevance] [-faults=<spec>] <pattern>:<type>[,...] :: <workload-file>")
	}
	text, err := os.ReadFile(strings.TrimSpace(path))
	if err != nil {
		return err
	}
	w, err := workload.Parse(filepath.Base(strings.TrimSpace(path)), string(text))
	if err != nil {
		return err
	}
	if len(w.Queries) == 0 {
		return fmt.Errorf("workload has no queries")
	}
	// Parse the configuration once, then instantiate one set of
	// virtual defs per collection the workload touches; the engine
	// hands each query only its own collection's indexes.
	type cfgItem struct {
		pat pattern.Pattern
		ty  sqltype.Type
	}
	var items []cfgItem
	for _, item := range strings.Split(strings.TrimSpace(cfgStr), ",") {
		patStr, tyStr, ok := strings.Cut(strings.TrimSpace(item), ":")
		if !ok {
			return fmt.Errorf("config item %q: want <pattern>:<type>", item)
		}
		p, err := pattern.Parse(strings.TrimSpace(patStr))
		if err != nil {
			return err
		}
		ty, err := sqltype.ParseType(tyStr)
		if err != nil {
			return err
		}
		items = append(items, cfgItem{pat: p, ty: ty})
	}
	var defs []*catalog.IndexDef
	seen := map[string]bool{}
	queries := w.QueryList()
	for _, e := range w.Queries {
		coll := e.Query.Collection
		if seen[coll] {
			continue
		}
		seen[coll] = true
		st, err := s.cat.Stats(coll)
		if err != nil {
			return err
		}
		for i, it := range items {
			defs = append(defs, catalog.VirtualDef(fmt.Sprintf("V%d_%s", i+1, coll), coll, it.pat, it.ty, st))
		}
	}
	eng := s.what
	var fsvc *whatif.FaultService
	var rsvc *whatif.ResilientService
	if faultSpec != "" {
		sched, err := whatif.ParseFaultSpec(faultSpec)
		if err != nil {
			return err
		}
		// A one-off engine so injected faults never poison the shell's
		// long-lived cache: optimizer → fault injector → resilience.
		fsvc = whatif.NewFaultService(&whatif.OptimizerService{Opt: s.opt}, sched)
		rsvc = whatif.NewResilientService(fsvc, whatif.ResilientOptions{})
		eng = whatif.NewEngine(rsvc, whatif.Options{Workers: s.parallel, MaxEntries: 1 << 16})
	}
	before := eng.Stats()
	res, err := eng.EvaluateConfig(context.Background(), queries, defs)
	if err != nil {
		return err
	}
	var noIdx, withIdx float64
	fmt.Fprintf(s.out, "%-8s %12s %12s %10s %4s %6s  %s\n",
		"query", "no-index", "with-config", "benefit", "rel", "cached", "indexes used")
	for qi, e := range w.Queries {
		qe := res.Queries[qi]
		noIdx += e.Weight * qe.CostNoIndexes
		withIdx += e.Weight * qe.Cost
		cached := "miss"
		if res.Atoms[qi].Hit {
			cached = "hit"
		}
		fmt.Fprintf(s.out, "%-8s %12.2f %12.2f %10.2f %4d %6s  %s\n",
			e.Query.ID, qe.CostNoIndexes, qe.Cost, qe.Benefit(),
			res.Atoms[qi].Relevant, cached, strings.Join(qe.UsedIndexes, ","))
	}
	st := eng.Stats().Sub(before)
	fmt.Fprintf(s.out, "weighted: no-index %.1f, with-config %.1f (benefit %.1f)\n", noIdx, withIdx, noIdx-withIdx)
	fmt.Fprintf(s.out, "what-if engine: %d workers, %d evaluations, %d hits (%d projected), %d misses\n",
		eng.Workers(), st.Evaluations, st.Hits, st.ProjectedHits, st.Misses)
	if fsvc != nil {
		rc := st.Resilience
		fmt.Fprintf(s.out, "fault injection: %d calls, %d faults injected; retries %d, call timeouts %d, breaker trips %d (state: %s)\n",
			fsvc.Calls(), fsvc.Injected(), rc.Retries, rc.CallTimeouts, rc.BreakerTrips, rsvc.State())
	}
	if relevance {
		counts := make([]int, len(res.Atoms))
		for i, a := range res.Atoms {
			counts[i] = a.Relevant
		}
		rs := whatif.NewRelevanceStats(counts)
		fmt.Fprintf(s.out, "relevant config definitions per query: min %d, median %d, p95 %d, max %d (mean %.1f over %d queries)\n",
			rs.Min, rs.Median, rs.P95, rs.Max, rs.Mean, rs.Queries)
	}
	return nil
}

// cmdCandidates parses "<workload-file> [rules]" and runs the candidate
// pipeline (enumeration + generalization) over the current catalog,
// dumping the pipeline stats and the containment DAG without running the
// configuration search.
func (s *shell) cmdCandidates(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("usage: candidates <workload-file> [rules]")
	}
	text, err := os.ReadFile(fields[0])
	if err != nil {
		return err
	}
	w, err := workload.Parse(filepath.Base(fields[0]), string(text))
	if err != nil {
		return err
	}
	if len(w.Queries) == 0 {
		return fmt.Errorf("workload has no queries")
	}
	rules := candidate.DefaultRules()
	if len(fields) == 2 {
		if rules, err = candidate.ParseRules(fields[1]); err != nil {
			return err
		}
	}
	// Mirror the advisor's default thresholds so the dump shows the
	// candidate space Recommend actually searches.
	pipe := candidate.New(s.cat, &candidate.OptimizerSource{Opt: s.opt}, candidate.Options{
		Rules:          rules,
		MinSharedSteps: candidate.DefaultMinSharedSteps,
		MaxCandidates:  candidate.DefaultMaxCandidates,
	})
	set, err := pipe.Run(context.Background(), w)
	if err != nil {
		return err
	}
	fmt.Fprintln(s.out, set.Stats.String())
	fmt.Fprintln(s.out, pattern.Stats().String())
	fmt.Fprint(s.out, set.DAG.Render())
	return nil
}

// cmdSearch parses "<workload-file> [budget-pages]" or "-synthetic n=N
// [budget-pages]" and compares every registered search strategy
// side-by-side: one advisor prepares the candidate space once (or the
// deterministic synthetic generator builds it), then each strategy —
// plus the eager greedy-heuristic baseline and the cost-bounded race —
// searches it at the same budget. The evals column is each strategy's
// exact what-if call count, which is where lazy-vs-eager shows.
func (s *shell) cmdSearch(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) >= 1 && fields[0] == "-synthetic" {
		return s.cmdSearchSynthetic(fields[1:])
	}
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("usage: search <workload-file> [budget-pages] | search -synthetic n=N [budget-pages]")
	}
	text, err := os.ReadFile(fields[0])
	if err != nil {
		return err
	}
	w, err := workload.Parse(filepath.Base(fields[0]), string(text))
	if err != nil {
		return err
	}
	var budget int64
	if len(fields) == 2 {
		if budget, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("bad budget: %v", err)
		}
	}
	ctx := context.Background()
	adv, err := advisor.New(s.cat, advisor.WithParallelism(s.parallel))
	if err != nil {
		return err
	}
	sess, err := adv.Open(ctx, w)
	if err != nil {
		return err
	}
	defer sess.Close()
	s.searchTableHeader()
	for _, name := range advisor.Strategies() {
		resp, err := sess.Recommend(ctx, advisor.RecommendRequest{Strategy: name, BudgetPages: budget})
		if err != nil {
			return err
		}
		note := ""
		if resp.Search.Winner != "" {
			note = "winner " + resp.Search.Winner
		}
		if lps := resp.Search.LP; lps != nil {
			note = fmt.Sprintf("lp objective %.1f, bound %.1f, %d passes", lps.Objective, lps.Bound, lps.Passes)
		}
		s.searchTableRow(name, len(resp.Indexes), resp.TotalPages, resp.NetBenefit, resp.Search.Rounds,
			resp.Search.Elapsed, resp.Search.Evals, resp.Cache.Hits, note)
	}
	// Eager baseline for the lazy-greedy comparison: same candidate
	// space, original per-round prefix re-evaluation.
	eagerAdv, err := advisor.New(s.cat, advisor.WithParallelism(s.parallel), advisor.WithEagerGreedy(true))
	if err != nil {
		return err
	}
	eagerSess, err := eagerAdv.Open(ctx, w)
	if err != nil {
		return err
	}
	defer eagerSess.Close()
	resp, err := eagerSess.Recommend(ctx, advisor.RecommendRequest{Strategy: "greedy-heuristic", BudgetPages: budget})
	if err != nil {
		return err
	}
	s.searchTableRow("greedy-eager", len(resp.Indexes), resp.TotalPages, resp.NetBenefit, resp.Search.Rounds,
		resp.Search.Elapsed, resp.Search.Evals, resp.Cache.Hits, "eager marginal scan")
	return nil
}

// cmdSearchSynthetic drives the deterministic synthetic candidate-space
// generator ("search -synthetic n=N [seed=S] [budget-pages]"): no
// documents, no optimizer — just the search layer at scale, with the
// eager baseline and the cost-bounded race alongside the registered
// strategies. The generator seed defaults to 42 (the benchmark spaces)
// and is always echoed, so any printed table can be reproduced.
func (s *shell) cmdSearchSynthetic(fields []string) error {
	usage := fmt.Errorf("usage: search -synthetic n=N [seed=S] [budget-pages]")
	if len(fields) < 1 {
		return usage
	}
	spec := strings.TrimPrefix(fields[0], "n=")
	n, err := strconv.Atoi(spec)
	if err != nil || n < 1 {
		return fmt.Errorf("bad candidate count %q: want n=N", fields[0])
	}
	seed := uint64(42)
	rest := fields[1:]
	if len(rest) > 0 && strings.HasPrefix(rest[0], "seed=") {
		seed, err = strconv.ParseUint(strings.TrimPrefix(rest[0], "seed="), 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: want seed=S", rest[0])
		}
		rest = rest[1:]
	}
	if len(rest) > 1 {
		return usage
	}
	sp := search.NewSyntheticSpace(n, seed)
	if len(rest) == 1 {
		budget, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad budget: %v", err)
		}
		sp = sp.WithBudget(budget)
	}
	fmt.Fprintf(s.out, "synthetic space: %d candidates (%d DAG roots), budget %d pages, seed %d\n",
		len(sp.Candidates), len(sp.DAG.Roots), sp.BudgetPages, seed)
	ctx := context.Background()
	run := func(name string, tune func(*search.Space), note string) error {
		stratName := name
		switch name {
		case "greedy-eager":
			stratName = "greedy-heuristic"
		case "race-bounded":
			stratName = "race"
		}
		strat, err := search.Lookup(stratName)
		if err != nil {
			return err
		}
		view := sp.WithBudget(sp.BudgetPages)
		if tune != nil {
			tune(view)
		}
		res, err := strat.Search(ctx, view)
		if err != nil {
			return err
		}
		if res.Stats.Winner != "" {
			note = "winner " + res.Stats.Winner
			for _, m := range res.Members {
				if m.Aborted {
					note += ", " + m.Strategy + " aborted"
				}
			}
		}
		if lps := res.Stats.LP; lps != nil {
			note = fmt.Sprintf("lp objective %.1f, bound %.1f, %d passes", lps.Objective, lps.Bound, lps.Passes)
		}
		s.searchTableRow(name, len(res.Config), res.Pages, res.Eval.Net, res.Stats.Rounds,
			res.Stats.Elapsed, res.Stats.Evals, res.Stats.Cache.Hits, note)
		return nil
	}
	s.searchTableHeader()
	for _, name := range search.Names() {
		if err := run(name, nil, ""); err != nil {
			return err
		}
	}
	if err := run("greedy-eager", func(v *search.Space) { v.EagerGreedy = true }, "eager marginal scan"); err != nil {
		return err
	}
	return run("race-bounded", func(v *search.Space) { v.RaceCostBound = true }, "")
}

// cmdSnapshot is the durable-session toolbox:
//
//	snapshot save <workload-file> <path> [strategy]   prepare + recommend, write the session snapshot
//	snapshot restore <path> [budget-pages]            rebuild the session and recommend warm
//	snapshot inspect <path>                           print version, sections, and cardinalities
func (s *shell) cmdSnapshot(rest string) error {
	usage := fmt.Errorf("usage: snapshot save <workload-file> <path> [strategy] | snapshot restore <path> [budget-pages] | snapshot inspect <path>")
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return usage
	}
	switch fields[0] {
	case "save":
		if len(fields) < 3 || len(fields) > 4 {
			return usage
		}
		strategy := ""
		if len(fields) == 4 {
			strategy = fields[3]
		}
		return s.snapshotSave(fields[1], fields[2], strategy)
	case "restore":
		var budget int64
		if len(fields) > 3 {
			return usage
		}
		if len(fields) == 3 {
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return fmt.Errorf("bad budget: %v", err)
			}
			budget = v
		}
		return s.snapshotRestore(fields[1], budget)
	case "inspect":
		if len(fields) != 2 {
			return usage
		}
		return s.snapshotInspect(fields[1])
	default:
		return usage
	}
}

// snapshotSave opens a session for the workload, runs one
// recommendation so the saved cache atoms cover a full search, and
// writes the snapshot.
func (s *shell) snapshotSave(workloadFile, path, strategy string) error {
	text, err := os.ReadFile(workloadFile)
	if err != nil {
		return err
	}
	w, err := workload.Parse(filepath.Base(workloadFile), string(text))
	if err != nil {
		return err
	}
	ctx := context.Background()
	adv, err := advisor.New(s.cat, advisor.WithParallelism(s.parallel))
	if err != nil {
		return err
	}
	sess, err := adv.Open(ctx, w)
	if err != nil {
		return err
	}
	defer sess.Close()
	resp, err := sess.Recommend(ctx, advisor.RecommendRequest{Strategy: strategy})
	if err != nil {
		return err
	}
	start := time.Now()
	if err := sess.SnapshotToFile(path); err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "saved %s: %d bytes in %v (%d indexes recommended by %s, %d what-if evaluations cached)\n",
		path, fi.Size(), time.Since(start).Round(time.Millisecond), len(resp.Indexes), resp.Strategy, resp.Cache.Evaluations)
	return nil
}

// snapshotRestore rebuilds the session over the shell's catalog and
// recommends, printing the warm-start evidence: elapsed restore time
// and how many what-if evaluations the recommendation issued (zero
// when the snapshot covered the search).
func (s *shell) snapshotRestore(path string, budget int64) error {
	ctx := context.Background()
	adv, err := advisor.New(s.cat, advisor.WithParallelism(s.parallel))
	if err != nil {
		return err
	}
	start := time.Now()
	sess, err := adv.RestoreFile(ctx, path)
	if err != nil {
		return err
	}
	defer sess.Close()
	restoreTime := time.Since(start)
	resp, err := sess.Recommend(ctx, advisor.RecommendRequest{BudgetPages: budget})
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "restored %s in %v (workload %s)\n", path, restoreTime.Round(time.Millisecond), sess.Workload())
	fmt.Fprint(s.out, resp.Report())
	fmt.Fprintf(s.out, "warm start: %d what-if evaluations issued by this recommendation\n", resp.Evaluations)
	return nil
}

// snapshotInspect prints a snapshot file's framing without restoring
// it: format version, creation time, workload, per-section payload
// sizes, and the section cardinalities.
func (s *shell) snapshotInspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := advisor.InspectSnapshot(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%s: session snapshot v%d, %d bytes\n", path, info.Version, info.TotalBytes)
	fmt.Fprintf(s.out, "  created:  %s\n", time.UnixMilli(info.CreatedUnixMS).UTC().Format(time.RFC3339))
	fmt.Fprintf(s.out, "  workload: %s (%d queries, %d updates)\n", info.WorkloadName, info.Queries, info.Updates)
	fmt.Fprintf(s.out, "  options:  %s\n", info.OptionsFP)
	for _, cv := range info.Collections {
		fmt.Fprintf(s.out, "  collection %s @ stats version %d\n", cv.Name, cv.Version)
	}
	fmt.Fprintf(s.out, "  %d patterns, %d candidates (%d basic), %d cache atoms, %d benefit rows\n",
		info.Patterns, info.Candidates, info.Basics, info.Atoms, info.BenefitRows)
	fmt.Fprintln(s.out, "  sections:")
	for _, sec := range info.Sections {
		fmt.Fprintf(s.out, "    %-9s %8d bytes\n", sec.Section, sec.Bytes)
	}
	return nil
}

func (s *shell) searchTableHeader() {
	fmt.Fprintf(s.out, "%-17s %5s %8s %12s %7s %9s %8s %8s  %s\n",
		"strategy", "#idx", "pages", "net benefit", "rounds", "time", "evals", "hits", "notes")
}

func (s *shell) searchTableRow(name string, idx int, pages int64, net float64, rounds int,
	elapsed time.Duration, evals, hits int64, note string) {
	fmt.Fprintf(s.out, "%-17s %5d %8d %12.1f %7d %9v %8d %8d  %s\n",
		name, idx, pages, net, rounds, elapsed.Round(time.Millisecond), evals, hits, note)
}
