// Command experiments regenerates every table and figure of the paper's
// demonstration (experiment index in DESIGN.md §4) and prints them as
// text tables. Results are deterministic for a given scale.
//
// Usage:
//
//	experiments [-scale small|medium] [-only E4]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "medium", "dataset scale: small or medium")
	only := flag.String("only", "", "run a single experiment (E1..E14)")
	flag.Parse()

	scale := experiments.Medium
	switch strings.ToLower(*scaleFlag) {
	case "small":
		scale = experiments.Small
	case "medium":
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	env, err := experiments.BuildEnv(scale)
	if err != nil {
		fatal(err)
	}
	type exp struct {
		name string
		fn   func(*experiments.Env) (string, error)
	}
	exps := []exp{
		{"E1", experiments.E1EnumerateIndexes},
		{"E2", experiments.E2EvaluateIndexes},
		{"E3", experiments.E3GeneralizationDAG},
		{"E4", experiments.E4RecommendationAnalysis},
		{"E5", experiments.E5UnseenWorkload},
		{"E6", experiments.E6SearchStrategies},
		{"E7", experiments.E7UpdateCost},
		{"E8", experiments.E8ActualExecution},
		{"E9", experiments.E9CouplingAblation},
		{"E10", experiments.E10InteractionAblation},
		{"E11", experiments.E11AdvisorScalability},
		{"E12", experiments.E12ParallelWhatIf},
		{"E13", experiments.E13RuleAblation},
		{"E14", experiments.E14StrategyPortfolio},
	}
	ran := 0
	for _, e := range exps {
		if *only != "" && !strings.EqualFold(*only, e.name) {
			continue
		}
		rep, err := e.fn(env)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.name, err))
		}
		fmt.Printf("%s\n%s\n", strings.Repeat("=", 78), rep)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment named %q\n", *only)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
