package optimizer

import "math"

// CostModel holds the constants of the cost model, in abstract "timeron"
// units. The defaults follow the usual textbook ratios: a random page
// read costs twice a sequential one, and CPU work per node/entry is three
// orders of magnitude below an I/O.
type CostModel struct {
	// IOPage is the cost of one sequential page read.
	IOPage float64
	// IORandom is the cost of one random page read (index descents,
	// document fetches).
	IORandom float64
	// CPUNode is the navigation cost per document node visited.
	CPUNode float64
	// CPUEntry is the processing cost per index entry scanned.
	CPUEntry float64
	// CPUPathCheck is the extra per-entry cost of re-verifying the
	// rooted path of an entry against a query pattern when the index
	// pattern is strictly more general than the leg pattern.
	CPUPathCheck float64
	// MaintPerEntry is the cost of one index entry insert/delete during
	// data modification (B+ tree descent plus leaf update, amortized).
	MaintPerEntry float64
}

// DefaultCost is the cost model used unless a caller overrides it.
// CPUNode is deliberately high relative to CPUEntry: navigating parsed XML
// (node tests, predicate evaluation) is the dominant CPU cost in native
// XML stores, which is exactly why value indexes pay off.
var DefaultCost = CostModel{
	IOPage:       1.0,
	IORandom:     2.0,
	CPUNode:      0.01,
	CPUEntry:     0.001,
	CPUPathCheck: 0.0005,
	// An index entry insert/delete pays a tree descent plus a leaf
	// write, i.e. a couple of random I/Os amortized over buffering.
	MaintPerEntry: 2.0,
}

// entriesPerLeafPage approximates B+ tree leaf capacity for costing
// (matching xindex.DefaultOrder at the default fill factor).
const entriesPerLeafPage = 90.0

// yaoDocs estimates how many distinct documents hold k uniformly spread
// matches, out of d documents (Cardenas/Yao approximation).
func yaoDocs(d, k float64) float64 {
	if d <= 0 || k <= 0 {
		return 0
	}
	est := d * (1 - math.Exp(k*math.Log1p(-1/d)))
	if d <= 1 {
		est = math.Min(k, d)
	}
	if est > d {
		est = d
	}
	if est < 1 {
		est = 1
	}
	return est
}
