package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/querylang"
	"repro/internal/sqltype"
)

// Candidate is one basic candidate index enumerated for a query: a leg
// pattern that the optimizer's index matching proved usable, with the SQL
// type an index must have to serve it.
type Candidate struct {
	Pattern pattern.Pattern
	Type    sqltype.Type
	// Leg is the originating query leg.
	Leg querylang.Leg
}

// Key identifies the candidate by what it would index.
func (c Candidate) Key() string { return c.Pattern.String() + "|" + c.Type.Short() }

// String renders the candidate.
func (c Candidate) String() string {
	return fmt.Sprintf("%s AS %s", c.Pattern, c.Type.String())
}

// universalDefs builds the virtual //* and //@* indexes (one per SQL
// type) that the Enumerate Indexes mode plants in the catalog view.
func universalDefs(coll string) []*catalog.IndexDef {
	var defs []*catalog.IndexDef
	for _, t := range sqltype.Types {
		defs = append(defs,
			&catalog.IndexDef{
				Name:       "VIRT_ALL_ELEM_" + t.Short(),
				Collection: coll,
				Pattern:    pattern.UniversalFor(pattern.TestElem),
				Type:       t,
				Virtual:    true,
				EstEntries: 1, EstPages: 1, // size is irrelevant for matching
			},
			&catalog.IndexDef{
				Name:       "VIRT_ALL_ATTR_" + t.Short(),
				Collection: coll,
				Pattern:    pattern.UniversalFor(pattern.TestAttr),
				Type:       t,
				Virtual:    true,
				EstEntries: 1, EstPages: 1,
			})
	}
	return defs
}

// EnumerateIndexes is the first new EXPLAIN mode (paper §2.1): it plants
// the universal virtual indexes and reports every query pattern that the
// ordinary index-matching code matched against them — the basic candidate
// set for the query. Output (extraction) legs are excluded: a value index
// never serves extraction. Disjunct (OR/NOT) legs are included: DB2 can
// use index ORing for them, so they are legitimate candidates.
func (o *Optimizer) EnumerateIndexes(q *querylang.Query) ([]Candidate, error) {
	st, err := o.Cat.Stats(q.Collection)
	if err != nil {
		return nil, fmt.Errorf("optimizer: %w", err)
	}
	virt := universalDefs(q.Collection)
	var out []Candidate
	seen := map[string]bool{}
	for _, leg := range q.Legs() {
		if leg.Output {
			continue
		}
		// Reuse the very same matching routine normal optimization
		// uses; a leg is a candidate iff it matches a universal index.
		acc, ok := o.bestAccess(st, leg, virt)
		if !ok {
			continue
		}
		c := Candidate{Pattern: leg.Pattern, Type: acc.Index.Type, Leg: leg}
		if !seen[c.Key()] {
			seen[c.Key()] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// Evaluation is the outcome of the Evaluate Indexes mode for one query.
type Evaluation struct {
	Plan *Plan
	// CostNoIndexes is the document-scan cost (the "original cost").
	CostNoIndexes float64
	// Cost is the estimated cost under the evaluated configuration.
	Cost float64
	// UsedIndexes names the configuration indexes the plan chose.
	UsedIndexes []string
	// Benefit is CostNoIndexes - Cost (>= 0).
	Benefit float64
}

// EvaluateIndexes is the second new EXPLAIN mode (paper §2.3): simulate
// an index configuration made of virtual indexes and estimate the query
// cost under it. When virtualOnly is true the catalog's real indexes are
// hidden, so the evaluation isolates the configuration — this is what the
// advisor's search uses.
func (o *Optimizer) EvaluateIndexes(q *querylang.Query, config []*catalog.IndexDef, virtualOnly bool) (*Evaluation, error) {
	opt := o
	if virtualOnly {
		c := *o
		c.virtualOnly = true
		opt = &c
	}
	plan, err := opt.Optimize(q, config)
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{
		Plan:          plan,
		CostNoIndexes: plan.DocScanCost,
		Cost:          plan.Cost,
	}
	configNames := map[string]bool{}
	for _, d := range config {
		configNames[d.Name] = true
	}
	for _, name := range plan.IndexNames() {
		if configNames[name] {
			ev.UsedIndexes = append(ev.UsedIndexes, name)
		}
	}
	sort.Strings(ev.UsedIndexes)
	ev.Benefit = ev.CostNoIndexes - ev.Cost
	if ev.Benefit < 0 {
		ev.Benefit = 0
	}
	return ev, nil
}

// ExplainEnumerate renders the Enumerate Indexes output as text (the
// content of the paper's Figure 2 screen).
func (o *Optimizer) ExplainEnumerate(q *querylang.Query) (string, error) {
	cands, err := o.EnumerateIndexes(q)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "EXPLAIN MODE: ENUMERATE INDEXES\nquery: %s\n", strings.TrimSpace(q.Text))
	fmt.Fprintf(&sb, "basic candidates (%d):\n", len(cands))
	for _, c := range cands {
		fmt.Fprintf(&sb, "  %s\n", c)
	}
	return sb.String(), nil
}

// ExplainEvaluate renders the Evaluate Indexes output as text (the
// content of the paper's Figure 3 screen).
func (o *Optimizer) ExplainEvaluate(q *querylang.Query, config []*catalog.IndexDef, virtualOnly bool) (string, error) {
	ev, err := o.EvaluateIndexes(q, config, virtualOnly)
	if err != nil {
		return "", err
	}
	return RenderEvaluation(q.Text, config, ev.CostNoIndexes, ev.Cost, ev.Benefit, ev.Plan.Describe()), nil
}

// RenderEvaluation formats the EVALUATE INDEXES screen from plain
// values — the single rendering shared with the whatif service.
func RenderEvaluation(queryText string, config []*catalog.IndexDef, costNoIdx, cost, benefit float64, planDesc string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "EXPLAIN MODE: EVALUATE INDEXES\nquery: %s\n", strings.TrimSpace(queryText))
	fmt.Fprintf(&sb, "configuration (%d indexes):\n", len(config))
	for _, d := range config {
		fmt.Fprintf(&sb, "  %s\n", d)
	}
	fmt.Fprintf(&sb, "cost without indexes: %10.2f\n", costNoIdx)
	fmt.Fprintf(&sb, "cost with config:     %10.2f\n", cost)
	fmt.Fprintf(&sb, "benefit:              %10.2f\n", benefit)
	fmt.Fprintf(&sb, "plan: %s\n", planDesc)
	return sb.String()
}
