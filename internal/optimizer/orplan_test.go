package optimizer

import (
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/sqltype"
)

func TestIndexORingChosenForPureOr(t *testing.T) {
	cat := newFixture(t, 800)
	cat.CreateIndex("IP", "items", pattern.MustParse("/site/regions/*/item/price"), sqltype.Double)
	cat.CreateIndex("IQ", "items", pattern.MustParse("/site/regions/*/item/quantity"), sqltype.Double)
	o := New(cat)
	// Both disjuncts are selective; the union is still far smaller than
	// the collection, so index ORing should beat a scan.
	q := mustQuery(t, `for $i in collection("items")/site/regions/*/item where $i/price = 7 or $i/price = 14 return $i`)
	plan, err := o.Optimize(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UsesIndexes() {
		t.Fatalf("expected an index plan: %s", plan.Describe())
	}
	var orAnchor *LegAccess
	for i := range plan.Access {
		if plan.Access[i].IsOr() {
			orAnchor = &plan.Access[i]
		}
	}
	if orAnchor == nil {
		t.Fatalf("expected an IXOR anchor: %s", plan.Describe())
	}
	if len(orAnchor.Members) != 2 {
		t.Errorf("OR members = %d, want 2", len(orAnchor.Members))
	}
	if !strings.Contains(plan.Describe(), "IXOR") {
		t.Errorf("Describe misses IXOR: %s", plan.Describe())
	}
}

func TestIndexORingNeedsAllMembersCovered(t *testing.T) {
	cat := newFixture(t, 500)
	// Only the price index exists; the quantity disjunct is uncovered.
	cat.CreateIndex("IP", "items", pattern.MustParse("/site/regions/*/item/price"), sqltype.Double)
	o := New(cat)
	q := mustQuery(t, `for $i in collection("items")/site/regions/*/item where $i/price = 7 or $i/quantity = 3 return $i`)
	plan, err := o.Optimize(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plan.Access {
		if a.IsOr() {
			t.Fatalf("incomplete OR group must not produce an IXOR anchor: %s", plan.Describe())
		}
	}
}

func TestImpureOrGetsNoGroup(t *testing.T) {
	// An AND nested inside the OR makes union semantics wrong for index
	// ORing; no group may be assigned.
	q := mustQuery(t, `for $i in collection("items")/site/item where $i/a = 1 or ($i/b = 2 and $i/c = 3) return $i`)
	for _, l := range q.Legs() {
		if l.OrGroup != 0 {
			t.Errorf("impure OR leg %s has group %d", l, l.OrGroup)
		}
	}
}

func TestPureOrGroupAssignment(t *testing.T) {
	q := mustQuery(t, `for $i in collection("items")/site/item where ($i/a = 1 or $i/b = 2 or $i/c = 3) and $i/d = 4 return $i`)
	groups := map[int]int{}
	for _, l := range q.Legs() {
		if l.OrGroup > 0 {
			groups[l.OrGroup]++
		}
		if l.Op == sqltype.Eq && l.Value.F == 4 && l.OrGroup != 0 {
			t.Error("conjunctive leg must not be grouped")
		}
	}
	if len(groups) != 1 {
		t.Fatalf("groups = %v, want one group", groups)
	}
	for _, n := range groups {
		if n != 3 {
			t.Errorf("group size = %d, want 3", n)
		}
	}
}

func TestNotOrGetsNoGroup(t *testing.T) {
	q := mustQuery(t, `for $i in collection("items")/site/item where not($i/a = 1 or $i/b = 2) return $i`)
	for _, l := range q.Legs() {
		if l.OrGroup != 0 {
			t.Errorf("negated OR leg %s has group %d", l, l.OrGroup)
		}
	}
}

func TestTwoIndependentOrGroups(t *testing.T) {
	q := mustQuery(t, `for $i in collection("items")/site/item where ($i/a = 1 or $i/b = 2) and ($i/c = 3 or $i/d = 4) return $i`)
	groups := map[int]int{}
	for _, l := range q.Legs() {
		if l.OrGroup > 0 {
			groups[l.OrGroup]++
		}
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want two", groups)
	}
}
