package optimizer

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/sqltype"
	"repro/internal/store"
)

// xmarkCatalog builds a catalog over generated XMark data plus a pool of
// plausible virtual index definitions.
func xmarkCatalog(t testing.TB, docs int) (*catalog.Catalog, []*catalog.IndexDef) {
	t.Helper()
	st := store.New()
	if _, err := datagen.GenerateXMark(st, datagen.XMarkConfig{Docs: docs, Seed: 21}); err != nil {
		t.Fatal(err)
	}
	cat := catalog.New(st)
	s, err := cat.Stats("auction")
	if err != nil {
		t.Fatal(err)
	}
	pool := []*catalog.IndexDef{}
	defs := []struct {
		pat string
		ty  sqltype.Type
	}{
		{"/site/regions/*/item/quantity", sqltype.Double},
		{"/site/regions/*/item/price", sqltype.Double},
		{"/site/regions/*/item/*", sqltype.Double},
		{"/site/regions/*/item/name", sqltype.Varchar},
		{"/site/regions/*/item/location", sqltype.Varchar},
		{"/site/regions/*/item", sqltype.Varchar},
		{"/site/people/person/profile/@income", sqltype.Double},
		{"/site/open_auctions/open_auction/initial", sqltype.Double},
		{"/site/open_auctions/open_auction/bidder/increase", sqltype.Double},
		{"/site/closed_auctions/closed_auction/price", sqltype.Double},
		{"/site/closed_auctions/closed_auction/date", sqltype.Date},
		{"//@category", sqltype.Varchar},
		{"//item/@id", sqltype.Varchar},
	}
	for i, d := range defs {
		pool = append(pool, catalog.VirtualDef(
			"P"+string(rune('A'+i)), "auction", pattern.MustParse(d.pat), d.ty, s))
	}
	return cat, pool
}

// TestPlanCostNeverExceedsDocScan: the optimizer always has the scan
// fallback, so no plan can cost more.
func TestPlanCostNeverExceedsDocScan(t *testing.T) {
	cat, pool := xmarkCatalog(t, 200)
	o := New(cat)
	w := datagen.XMarkWorkload(30, 17)
	for _, e := range w.Queries {
		plan, err := o.Optimize(e.Query, pool)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Cost > plan.DocScanCost+1e-9 {
			t.Errorf("%s: cost %f > docscan %f", e.Query.ID, plan.Cost, plan.DocScanCost)
		}
	}
}

// TestMoreIndexesNeverIncreaseCost: enlarging the available index set can
// only add plan options, so the estimated cost is monotone non-increasing.
func TestMoreIndexesNeverIncreaseCost(t *testing.T) {
	cat, pool := xmarkCatalog(t, 200)
	o := New(cat)
	w := datagen.XMarkWorkload(20, 23)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		e := w.Queries[rng.Intn(len(w.Queries))]
		// A random subset and a random superset of it.
		var sub, super []*catalog.IndexDef
		for _, d := range pool {
			r := rng.Intn(3)
			if r == 0 {
				sub = append(sub, d)
			}
			if r <= 1 {
				super = append(super, d)
			}
		}
		super = append(super, sub...)
		planSub, err := o.Optimize(e.Query, sub)
		if err != nil {
			t.Fatal(err)
		}
		planSuper, err := o.Optimize(e.Query, super)
		if err != nil {
			t.Fatal(err)
		}
		if planSuper.Cost > planSub.Cost+1e-9 {
			t.Errorf("trial %d %s: superset cost %f > subset cost %f",
				trial, e.Query.ID, planSuper.Cost, planSub.Cost)
		}
	}
}

// TestEvaluationBenefitNonNegative: Evaluate Indexes never reports a
// negative benefit (the optimizer would simply not use the indexes).
func TestEvaluationBenefitNonNegative(t *testing.T) {
	cat, pool := xmarkCatalog(t, 150)
	o := New(cat)
	w := datagen.XMarkWorkload(15, 31)
	rng := rand.New(rand.NewSource(7))
	for _, e := range w.Queries {
		var cfg []*catalog.IndexDef
		for _, d := range pool {
			if rng.Intn(2) == 0 {
				cfg = append(cfg, d)
			}
		}
		ev, err := o.EvaluateIndexes(e.Query, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Benefit < 0 {
			t.Errorf("%s: negative benefit %f", e.Query.ID, ev.Benefit)
		}
		if ev.Cost > ev.CostNoIndexes+1e-9 {
			t.Errorf("%s: cost with indexes %f > without %f", e.Query.ID, ev.Cost, ev.CostNoIndexes)
		}
	}
}

// TestEnumerationSubsetOfLegs: every enumerated candidate corresponds to
// a leg of the query (the optimizer invents nothing).
func TestEnumerationSubsetOfLegs(t *testing.T) {
	cat, _ := xmarkCatalog(t, 100)
	o := New(cat)
	w := datagen.XMarkWorkload(20, 41)
	for _, e := range w.Queries {
		legPatterns := map[string]bool{}
		for _, l := range e.Query.Legs() {
			legPatterns[l.Pattern.String()] = true
		}
		cands, err := o.EnumerateIndexes(e.Query)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cands {
			if !legPatterns[c.Pattern.String()] {
				t.Errorf("%s: candidate %s is not a query leg", e.Query.ID, c.Pattern)
			}
		}
	}
}
