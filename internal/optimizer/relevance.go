package optimizer

import (
	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/querylang"
	"repro/internal/sqltype"
)

// legSig is one deduplicated (pattern, index type) access signature of a
// query: the only two properties of a leg that bestAccess consults when
// deciding whether an index definition applies to it.
type legSig struct {
	pat pattern.Pattern
	typ sqltype.Type
}

// RelevantFilter returns a predicate reporting whether an index
// definition can influence the plan Optimize chooses for q. It mirrors
// the bestAccess applicability rule exactly — an index serves a leg iff
// its SQL type matches the leg's and its pattern contains the leg
// pattern (the PR 3 containment kernel) — over every non-output leg of
// the query. Lone disjuncts, which Optimize itself skips, are kept as a
// safe over-approximation, so dropping definitions the predicate
// rejects from a configuration is provably cost-preserving: the plan,
// its cost, and its index set are identical with or without them.
//
// The predicate is safe for concurrent use and cheap (a few cached
// containment probes per definition); the leg signatures are computed
// once up front.
func RelevantFilter(q *querylang.Query) func(*catalog.IndexDef) bool {
	var sigs []legSig
	seen := map[string]bool{}
	for _, leg := range q.Legs() {
		if leg.Output {
			continue
		}
		typ, ok := typeForLeg(leg)
		if !ok {
			continue
		}
		key := leg.Pattern.String() + "\x00" + typ.Short()
		if seen[key] {
			continue
		}
		seen[key] = true
		sigs = append(sigs, legSig{pat: leg.Pattern, typ: typ})
	}
	return func(def *catalog.IndexDef) bool {
		for _, s := range sigs {
			if def.Type == s.typ && pattern.ContainsCached(def.Pattern, s.pat) {
				return true
			}
		}
		return false
	}
}
