package optimizer

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/querylang"
	"repro/internal/sqltype"
	"repro/internal/store"
)

// newFixture builds a catalog with n auction-like documents.
func newFixture(t testing.TB, n int) *catalog.Catalog {
	t.Helper()
	st := store.New()
	c := st.MustCreate("items")
	for i := 0; i < n; i++ {
		region := []string{"namerica", "africa", "europe", "asia"}[i%4]
		src := fmt.Sprintf(
			`<site><regions><%[1]s><item id="i%[2]d"><name>item %[2]d</name><quantity>%[3]d</quantity><price>%[4]d</price></item></%[1]s></regions></site>`,
			region, i, i%10, (i*7)%1000)
		if _, err := c.InsertXML(src); err != nil {
			t.Fatal(err)
		}
	}
	return catalog.New(st)
}

func mustQuery(t testing.TB, src string) *querylang.Query {
	t.Helper()
	q, err := querylang.ParseAuto(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestDocScanWithoutIndexes(t *testing.T) {
	cat := newFixture(t, 200)
	o := New(cat)
	q := mustQuery(t, `for $i in collection("items")/site/regions/namerica/item where $i/quantity = 3 return $i/name`)
	plan, err := o.Optimize(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.UsesIndexes() {
		t.Error("no indexes exist; plan should be a doc scan")
	}
	if plan.Cost != plan.DocScanCost || plan.Cost <= 0 {
		t.Errorf("cost = %f, docscan = %f", plan.Cost, plan.DocScanCost)
	}
	if !strings.Contains(plan.Describe(), "DOCSCAN") {
		t.Error("Describe should mention DOCSCAN")
	}
}

func TestIndexBeatsScanOnSelectiveQuery(t *testing.T) {
	cat := newFixture(t, 500)
	if _, err := cat.CreateIndex("IQ", "items", pattern.MustParse("/site/regions/*/item/quantity"), sqltype.Double); err != nil {
		t.Fatal(err)
	}
	o := New(cat)
	q := mustQuery(t, `for $i in collection("items")/site/regions/namerica/item where $i/quantity = 3 return $i/name`)
	plan, err := o.Optimize(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UsesIndexes() {
		t.Fatalf("selective equality should use the index; plan: %s", plan.Describe())
	}
	if plan.Cost >= plan.DocScanCost {
		t.Errorf("index plan not cheaper: %f >= %f", plan.Cost, plan.DocScanCost)
	}
	if got := plan.IndexNames(); len(got) != 1 || got[0] != "IQ" {
		t.Errorf("IndexNames = %v", got)
	}
	// The index pattern properly contains the leg (namerica only), so a
	// residual path check is required.
	if !plan.Access[0].ResidualPathCheck {
		t.Error("residual path check expected for more general index")
	}
}

func TestExactIndexAvoidsResidualCheck(t *testing.T) {
	cat := newFixture(t, 300)
	cat.CreateIndex("IEXACT", "items", pattern.MustParse("/site/regions/namerica/item/quantity"), sqltype.Double)
	o := New(cat)
	q := mustQuery(t, `for $i in collection("items")/site/regions/namerica/item where $i/quantity = 3 return $i`)
	plan, _ := o.Optimize(q, nil)
	if !plan.UsesIndexes() {
		t.Fatal("index expected")
	}
	if plan.Access[0].ResidualPathCheck {
		t.Error("exact-pattern index should not need a path check")
	}
}

func TestTypeMatchingRejectsWrongType(t *testing.T) {
	cat := newFixture(t, 100)
	cat.CreateIndex("ISTR", "items", pattern.MustParse("/site/regions/*/item/quantity"), sqltype.Varchar)
	o := New(cat)
	// quantity = 3 is a DOUBLE comparison; a VARCHAR index cannot serve it.
	q := mustQuery(t, `for $i in collection("items")/site/regions/*/item where $i/quantity = 3 return $i`)
	plan, _ := o.Optimize(q, nil)
	if plan.UsesIndexes() {
		t.Errorf("VARCHAR index must not serve DOUBLE comparison; plan: %s", plan.Describe())
	}
}

func TestUnselectiveRangePrefersScan(t *testing.T) {
	cat := newFixture(t, 300)
	cat.CreateIndex("IQ", "items", pattern.MustParse("/site/regions/*/item/quantity"), sqltype.Double)
	o := New(cat)
	// quantity >= 0 matches everything: fetching every doc through the
	// index is worse than scanning.
	q := mustQuery(t, `for $i in collection("items")/site/regions/*/item where $i/quantity >= 0 return $i`)
	plan, _ := o.Optimize(q, nil)
	if plan.UsesIndexes() {
		t.Errorf("unselective predicate should scan; plan: %s", plan.Describe())
	}
}

func TestIndexAnding(t *testing.T) {
	cat := newFixture(t, 1000)
	cat.CreateIndex("IQ", "items", pattern.MustParse("/site/regions/*/item/quantity"), sqltype.Double)
	cat.CreateIndex("IP", "items", pattern.MustParse("/site/regions/*/item/price"), sqltype.Double)
	o := New(cat)
	q := mustQuery(t, `for $i in collection("items")/site/regions/*/item where $i/quantity = 3 and $i/price < 50 return $i`)
	plan, err := o.Optimize(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UsesIndexes() {
		t.Fatal("index plan expected")
	}
	if len(plan.Access) < 2 {
		t.Logf("plan chose single index (acceptable if ANDing not cheaper): %s", plan.Describe())
	}
	// With both predicates the fetched docs must be fewer than with the
	// price predicate alone.
	single, _ := o.Optimize(mustQuery(t, `for $i in collection("items")/site/regions/*/item where $i/price < 50 return $i`), nil)
	if !single.UsesIndexes() {
		t.Fatalf("price < 50 should use the index: %s", single.Describe())
	}
	if plan.FetchDocs > single.FetchDocs+1 {
		t.Errorf("ANDed fetch %f > single fetch %f", plan.FetchDocs, single.FetchDocs)
	}
}

func TestVirtualIndexesViaExtra(t *testing.T) {
	cat := newFixture(t, 300)
	o := New(cat)
	st, _ := cat.Stats("items")
	virt := catalog.VirtualDef("V1", "items", pattern.MustParse("/site/regions/*/item/price"), sqltype.Double, st)
	q := mustQuery(t, `for $i in collection("items")/site/regions/*/item where $i/price = 7 return $i`)
	plan, err := o.Optimize(q, []*catalog.IndexDef{virt})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UsesIndexes() || plan.Access[0].Index.Name != "V1" {
		t.Errorf("virtual index not used: %s", plan.Describe())
	}
}

func TestVirtualOnlyHidesRealIndexes(t *testing.T) {
	cat := newFixture(t, 300)
	cat.CreateIndex("IREAL", "items", pattern.MustParse("/site/regions/*/item/price"), sqltype.Double)
	o := New(cat)
	q := mustQuery(t, `for $i in collection("items")/site/regions/*/item where $i/price = 7 return $i`)
	ev, err := o.EvaluateIndexes(q, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Plan.UsesIndexes() {
		t.Error("virtualOnly evaluation must not see real indexes")
	}
	ev2, _ := o.EvaluateIndexes(q, nil, false)
	if !ev2.Plan.UsesIndexes() {
		t.Error("non-virtualOnly evaluation should see real indexes")
	}
}

func TestEnumerateIndexes(t *testing.T) {
	cat := newFixture(t, 100)
	o := New(cat)
	q := mustQuery(t, `for $i in collection("items")/site/regions/namerica/item
where $i/quantity > 5 and contains($i/name, "item")
return $i/name`)
	cands, err := o.EnumerateIndexes(q)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]bool{}
	for _, c := range cands {
		byKey[c.Key()] = true
	}
	for _, want := range []string{
		"/site/regions/namerica/item/quantity|dbl", // value predicate
		"/site/regions/namerica/item/name|str",     // contains predicate
		"/site/regions/namerica/item|str",          // structural binding leg
	} {
		if !byKey[want] {
			t.Errorf("missing candidate %q; got %v", want, byKey)
		}
	}
	// Output leg must not be a candidate with output marker — the name
	// pattern appears via contains, not via the return clause.
	for _, c := range cands {
		if c.Leg.Output {
			t.Errorf("output leg enumerated: %v", c)
		}
	}
}

func TestEnumerateIncludesAttributeAndDisjunct(t *testing.T) {
	cat := newFixture(t, 50)
	o := New(cat)
	q := mustQuery(t, `SELECT 1 FROM items WHERE XMLEXISTS('$d/site/regions/namerica/item[@id = "i1" or quantity = 2]' PASSING doc AS "d")`)
	cands, err := o.EnumerateIndexes(q)
	if err != nil {
		t.Fatal(err)
	}
	var attr, disj bool
	for _, c := range cands {
		if c.Pattern.Last().Kind == pattern.TestAttr {
			attr = true
		}
		if c.Leg.Disjunct {
			disj = true
		}
	}
	if !attr {
		t.Error("attribute candidate missing (needs //@* universal index)")
	}
	if !disj {
		t.Error("disjunct candidates should be enumerated")
	}
}

func TestEvaluateIndexesBenefit(t *testing.T) {
	cat := newFixture(t, 400)
	o := New(cat)
	st, _ := cat.Stats("items")
	q := mustQuery(t, `for $i in collection("items")/site/regions/*/item where $i/price = 7 return $i`)
	good := catalog.VirtualDef("VQ", "items", pattern.MustParse("/site/regions/*/item/price"), sqltype.Double, st)
	ev, err := o.EvaluateIndexes(q, []*catalog.IndexDef{good}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Benefit <= 0 {
		t.Errorf("benefit = %f, want > 0", ev.Benefit)
	}
	if len(ev.UsedIndexes) != 1 || ev.UsedIndexes[0] != "VQ" {
		t.Errorf("UsedIndexes = %v", ev.UsedIndexes)
	}
	// An irrelevant index yields zero benefit.
	bad := catalog.VirtualDef("VB", "items", pattern.MustParse("//nosuch"), sqltype.Double, st)
	ev2, _ := o.EvaluateIndexes(q, []*catalog.IndexDef{bad}, true)
	if ev2.Benefit != 0 || len(ev2.UsedIndexes) != 0 {
		t.Errorf("irrelevant index: benefit=%f used=%v", ev2.Benefit, ev2.UsedIndexes)
	}
}

func TestExplainRendering(t *testing.T) {
	cat := newFixture(t, 50)
	o := New(cat)
	q := mustQuery(t, `for $i in collection("items")/site/regions/*/item where $i/quantity = 3 return $i`)
	s, err := o.ExplainEnumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "ENUMERATE INDEXES") || !strings.Contains(s, "quantity") {
		t.Errorf("enumerate explain:\n%s", s)
	}
	st, _ := cat.Stats("items")
	cfg := []*catalog.IndexDef{catalog.VirtualDef("V", "items", pattern.MustParse("//quantity"), sqltype.Double, st)}
	s, err = o.ExplainEvaluate(q, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EVALUATE INDEXES", "benefit", "cost without indexes"} {
		if !strings.Contains(s, want) {
			t.Errorf("evaluate explain missing %q:\n%s", want, s)
		}
	}
}

func TestUnknownCollection(t *testing.T) {
	cat := newFixture(t, 5)
	o := New(cat)
	q := mustQuery(t, `for $i in collection("nosuch")/a return $i`)
	if _, err := o.Optimize(q, nil); err == nil {
		t.Error("unknown collection should fail")
	}
	if _, err := o.EnumerateIndexes(q); err == nil {
		t.Error("enumerate on unknown collection should fail")
	}
}

func TestYaoDocs(t *testing.T) {
	if got := yaoDocs(0, 10); got != 0 {
		t.Errorf("yao(0,10) = %f", got)
	}
	if got := yaoDocs(100, 0); got != 0 {
		t.Errorf("yao(100,0) = %f", got)
	}
	got := yaoDocs(100, 1)
	if got < 0.99 || got > 1.01 {
		t.Errorf("yao(100,1) = %f, want ~1", got)
	}
	if got := yaoDocs(100, 10000); got > 100 {
		t.Errorf("yao overflow: %f", got)
	}
	// Monotone in k.
	prev := 0.0
	for k := 1.0; k < 500; k *= 2 {
		cur := yaoDocs(100, k)
		if cur < prev {
			t.Errorf("yao not monotone at k=%f", k)
		}
		prev = cur
	}
}

func TestCostScalesWithData(t *testing.T) {
	small := newFixture(t, 50)
	big := newFixture(t, 1000)
	q := mustQuery(t, `for $i in collection("items")/site/regions/*/item where $i/quantity = 3 return $i`)
	ps, _ := New(small).Optimize(q, nil)
	pb, _ := New(big).Optimize(q, nil)
	if pb.DocScanCost <= ps.DocScanCost {
		t.Errorf("doc scan cost should grow with data: %f vs %f", pb.DocScanCost, ps.DocScanCost)
	}
}
