// Package optimizer implements the cost-based query optimizer substrate:
// per-query access-path selection between full document scans and XML
// value index scans (single index or index-ANDing), driven by collected
// statistics and exact pattern-containment index matching.
//
// On top of normal optimization it implements the paper's two new EXPLAIN
// modes:
//
//   - Enumerate Indexes: plant virtual universal indexes (//* and //@*,
//     one per SQL type), run the ordinary index-matching code, and report
//     every query pattern that matched — "if all possible indexes were
//     available, which query patterns would benefit?" (paper §2.1).
//   - Evaluate Indexes: install a virtual index configuration and report
//     the estimated cost of the query under it (paper §2.3).
package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/querylang"
	"repro/internal/sqltype"
	"repro/internal/stats"
)

// AccessKind distinguishes access paths.
type AccessKind uint8

const (
	// AccessDocScan reads and navigates every document.
	AccessDocScan AccessKind = iota
	// AccessIndexScan probes an XML value index.
	AccessIndexScan
)

// String names the access kind.
func (k AccessKind) String() string {
	if k == AccessIndexScan {
		return "IXSCAN"
	}
	return "DOCSCAN"
}

// LegAccess is the chosen access path for one anchoring leg.
type LegAccess struct {
	Leg   querylang.Leg
	Index *catalog.IndexDef

	// ValueSel is the selectivity of the leg's value predicate.
	ValueSel float64
	// EntriesScanned is the estimated number of index entries read.
	EntriesScanned float64
	// Matches is the estimated number of entries satisfying both the
	// value predicate and the leg pattern.
	Matches float64
	// DocSel is the estimated fraction of documents surviving this leg.
	DocSel float64
	// ResidualPathCheck is set when the index pattern properly contains
	// the leg pattern, so each entry's rooted path must be re-verified.
	ResidualPathCheck bool
	// Cost is the index access cost (descent + leaf scan + residual),
	// excluding the document fetch.
	Cost float64

	// Members is non-empty for an index-ORing anchor: one scan per
	// disjunct of a pure OR group, whose document sets are unioned.
	// Leg/Index then describe the first member for display only.
	Members []LegAccess
}

// IsOr reports whether the access is an index-ORing anchor.
func (a *LegAccess) IsOr() bool { return len(a.Members) > 0 }

// Plan is the optimizer's output for one query.
type Plan struct {
	Query *querylang.Query

	// Access holds the chosen index anchors; empty means full scan.
	Access []LegAccess
	// FetchDocs is the estimated number of documents fetched (index
	// plans only).
	FetchDocs float64
	// Cost is the estimated total cost of the chosen plan.
	Cost float64
	// DocScanCost is the cost of the document-scan alternative, kept
	// for benefit computation and display.
	DocScanCost float64
}

// UsesIndexes reports whether the plan uses any index.
func (p *Plan) UsesIndexes() bool { return len(p.Access) > 0 }

// IndexNames returns the names of the indexes the plan uses, sorted and
// deduplicated (OR anchors contribute every member index).
func (p *Plan) IndexNames() []string {
	seen := map[string]bool{}
	var out []string
	addName := func(n string) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, a := range p.Access {
		if a.IsOr() {
			for _, m := range a.Members {
				addName(m.Index.Name)
			}
			continue
		}
		addName(a.Index.Name)
	}
	sort.Strings(out)
	return out
}

// Describe renders a compact plan explanation.
func (p *Plan) Describe() string {
	var sb strings.Builder
	if !p.UsesIndexes() {
		fmt.Fprintf(&sb, "DOCSCAN cost=%.2f", p.Cost)
		return sb.String()
	}
	fmt.Fprintf(&sb, "IXAND(%d) cost=%.2f fetch=%.1f docscan=%.2f", len(p.Access), p.Cost, p.FetchDocs, p.DocScanCost)
	for _, a := range p.Access {
		if a.IsOr() {
			fmt.Fprintf(&sb, "\n  IXOR(%d) [docsel=%.4f cost=%.2f]", len(a.Members), a.DocSel, a.Cost)
			for _, m := range a.Members {
				fmt.Fprintf(&sb, "\n    IXSCAN %s on %s [docsel=%.4f]", m.Index.Name, m.Leg, m.DocSel)
			}
			continue
		}
		fmt.Fprintf(&sb, "\n  IXSCAN %s on %s", a.Index.Name, a.Leg)
		fmt.Fprintf(&sb, " [sel=%.4f entries=%.0f docsel=%.4f cost=%.2f residual=%v]",
			a.ValueSel, a.EntriesScanned, a.DocSel, a.Cost, a.ResidualPathCheck)
	}
	return sb.String()
}

// Optimizer is the cost-based optimizer over a catalog.
type Optimizer struct {
	Cat  *catalog.Catalog
	Cost CostModel

	// MaxAnchors bounds index-ANDing width.
	MaxAnchors int

	// virtualOnly hides the catalog's real indexes from planning, so
	// that Evaluate Indexes isolates a hypothetical configuration.
	virtualOnly bool
}

// New returns an optimizer with the default cost model.
func New(cat *catalog.Catalog) *Optimizer {
	return &Optimizer{Cat: cat, Cost: DefaultCost, MaxAnchors: 3}
}

// Optimize chooses the cheapest plan for the query using the catalog's
// registered indexes plus the given extra (virtual) definitions.
func (o *Optimizer) Optimize(q *querylang.Query, extra []*catalog.IndexDef) (*Plan, error) {
	st, err := o.Cat.Stats(q.Collection)
	if err != nil {
		return nil, fmt.Errorf("optimizer: %w", err)
	}
	plan := &Plan{Query: q}
	plan.DocScanCost = o.docScanCost(st)
	plan.Cost = plan.DocScanCost

	// Collect the best index access per anchorable leg.
	var indexes []*catalog.IndexDef
	if !o.virtualOnly {
		indexes = o.Cat.Indexes(q.Collection)
	}
	indexes = append(indexes, extra...)
	var accesses []LegAccess
	orGroups := map[int][]querylang.Leg{}
	for _, leg := range q.Legs() {
		if leg.Output {
			continue
		}
		if leg.Disjunct {
			if leg.OrGroup > 0 {
				orGroups[leg.OrGroup] = append(orGroups[leg.OrGroup], leg)
			}
			continue // a lone disjunct cannot restrict the result
		}
		best, ok := o.bestAccess(st, leg, indexes)
		if !ok {
			continue
		}
		accesses = append(accesses, best)
	}
	// Index ORing: a pure OR group is answerable when every disjunct
	// has a covering index; the anchor unions the member scans.
	groupIDs := make([]int, 0, len(orGroups))
	for g := range orGroups {
		groupIDs = append(groupIDs, g)
	}
	sort.Ints(groupIDs)
	for _, g := range groupIDs {
		legs := orGroups[g]
		members := make([]LegAccess, 0, len(legs))
		complete := true
		for _, leg := range legs {
			acc, ok := o.bestAccess(st, leg, indexes)
			if !ok {
				complete = false
				break
			}
			members = append(members, acc)
		}
		if !complete || len(members) < 2 {
			continue
		}
		or := LegAccess{Leg: members[0].Leg, Index: members[0].Index, Members: members}
		for _, m := range members {
			or.Cost += m.Cost
			or.DocSel += m.DocSel
			or.EntriesScanned += m.EntriesScanned
			or.Matches += m.Matches
		}
		if or.DocSel > 1 {
			or.DocSel = 1
		}
		accesses = append(accesses, or)
	}
	// Most selective anchors first.
	sort.Slice(accesses, func(i, j int) bool {
		if accesses[i].DocSel != accesses[j].DocSel {
			return accesses[i].DocSel < accesses[j].DocSel
		}
		return accesses[i].Index.Name < accesses[j].Index.Name
	})

	maxK := o.MaxAnchors
	if maxK < 1 {
		maxK = 1
	}
	if maxK > len(accesses) {
		maxK = len(accesses)
	}
	for k := 1; k <= maxK; k++ {
		cost, fetch := o.andCost(st, accesses[:k])
		if cost < plan.Cost {
			plan.Cost = cost
			plan.FetchDocs = fetch
			plan.Access = append([]LegAccess(nil), accesses[:k]...)
		}
	}
	return plan, nil
}

// docScanCost is the cost of scanning and navigating every document.
func (o *Optimizer) docScanCost(st *stats.Stats) float64 {
	return float64(st.Pages)*o.Cost.IOPage + float64(st.Nodes)*o.Cost.CPUNode
}

// typeForLeg determines which index SQL type can answer the leg.
func typeForLeg(leg querylang.Leg) (sqltype.Type, bool) {
	switch leg.Op {
	case sqltype.Exists:
		// Every node value casts to VARCHAR, so only a VARCHAR index is
		// guaranteed to contain all nodes of the pattern.
		return sqltype.Varchar, true
	case sqltype.ContainsSubstr:
		return sqltype.Varchar, true
	default:
		return leg.Value.Type, true
	}
}

// bestAccess returns the cheapest index access for the leg, if any index
// applies. This is the index-matching routine the Enumerate Indexes mode
// reuses: an index applies iff its SQL type matches the leg and its
// pattern contains the leg pattern.
func (o *Optimizer) bestAccess(st *stats.Stats, leg querylang.Leg, indexes []*catalog.IndexDef) (LegAccess, bool) {
	typ, ok := typeForLeg(leg)
	if !ok {
		return LegAccess{}, false
	}
	var best LegAccess
	found := false
	for _, def := range indexes {
		if def.Type != typ {
			continue
		}
		if !pattern.ContainsCached(def.Pattern, leg.Pattern) {
			continue
		}
		acc := o.costAccess(st, leg, def, typ)
		if !found || acc.Cost < best.Cost {
			best = acc
			found = true
		}
	}
	return best, found
}

// costAccess costs one (leg, index) access.
func (o *Optimizer) costAccess(st *stats.Stats, leg querylang.Leg, def *catalog.IndexDef, typ sqltype.Type) LegAccess {
	acc := LegAccess{Leg: leg, Index: def}
	idxEntries := float64(def.Entries())
	legEntries := float64(st.TypedCardinality(leg.Pattern, typ))

	// Selectivity of the value predicate over the leg's pattern, and
	// over the whole index contents (what a range scan must read).
	var legSel, idxSel float64
	switch leg.Op {
	case sqltype.Exists:
		legSel, idxSel = 1, 1
	case sqltype.Ne, sqltype.ContainsSubstr:
		legSel = st.Selectivity(leg.Pattern, leg.Op, leg.Value)
		idxSel = 1 // full index scan
	default:
		legSel = st.Selectivity(leg.Pattern, leg.Op, leg.Value)
		idxSel = st.Selectivity(def.Pattern, leg.Op, leg.Value)
	}
	acc.ValueSel = legSel
	acc.EntriesScanned = idxEntries * idxSel
	acc.Matches = legEntries * legSel
	acc.ResidualPathCheck = !pattern.ContainsCached(leg.Pattern, def.Pattern)

	height := 2.0
	if idxEntries > 0 {
		for n := idxEntries / entriesPerLeafPage; n > 1; n /= entriesPerLeafPage {
			height++
		}
	}
	leafPages := acc.EntriesScanned / entriesPerLeafPage
	acc.Cost = height*o.Cost.IORandom + leafPages*o.Cost.IOPage + acc.EntriesScanned*o.Cost.CPUEntry
	if acc.ResidualPathCheck {
		acc.Cost += acc.EntriesScanned * o.Cost.CPUPathCheck
	}

	docs := float64(st.Docs)
	matchedDocs := yaoDocs(docs, acc.Matches)
	if docs > 0 {
		acc.DocSel = matchedDocs / docs
	}
	return acc
}

// andCost is the cost of an index-ANDed plan over the given anchors: scan
// every index, intersect document IDs, fetch the surviving documents, and
// finish the query by navigation on them.
func (o *Optimizer) andCost(st *stats.Stats, anchors []LegAccess) (cost, fetchDocs float64) {
	docs := float64(st.Docs)
	sel := 1.0
	for _, a := range anchors {
		cost += a.Cost
		sel *= a.DocSel
	}
	fetchDocs = docs * sel
	if fetchDocs > 0 && fetchDocs < 1 {
		fetchDocs = 1
	}
	var pagesPerDoc, nodesPerDoc float64
	if docs > 0 {
		pagesPerDoc = float64(st.Pages) / docs
		if pagesPerDoc < 1 {
			pagesPerDoc = 1
		}
		nodesPerDoc = float64(st.Nodes) / docs
	}
	cost += fetchDocs * (pagesPerDoc*o.Cost.IORandom + nodesPerDoc*o.Cost.CPUNode)
	return cost, fetchDocs
}
