package executor

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/pattern"
	"repro/internal/querylang"
	"repro/internal/sqltype"
	"repro/internal/store"
	"repro/internal/workload"
	"repro/internal/xindex"
)

func fixture(t testing.TB, n int) *catalog.Catalog {
	t.Helper()
	st := store.New()
	c := st.MustCreate("items")
	for i := 0; i < n; i++ {
		region := []string{"namerica", "africa", "europe", "asia"}[i%4]
		src := fmt.Sprintf(
			`<site><regions><%[1]s><item id="i%[2]d"><name>item %[2]d</name><quantity>%[3]d</quantity><price>%[4]d</price></item></%[1]s></regions></site>`,
			region, i, i%10, (i*7)%1000)
		if _, err := c.InsertXML(src); err != nil {
			t.Fatal(err)
		}
	}
	return catalog.New(st)
}

func parse(t testing.TB, src string) *querylang.Query {
	t.Helper()
	q, err := querylang.ParseAuto(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestDocScanCounts(t *testing.T) {
	cat := fixture(t, 100)
	ex := New(cat)
	q := parse(t, `for $i in collection("items")/site/regions/*/item where $i/quantity = 3 return $i/name`)
	res, err := ex.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	// quantity = i%10 == 3 for i = 3, 13, ..., 93: 10 items.
	if res.Rows != 10 {
		t.Errorf("Rows = %d, want 10", res.Rows)
	}
	if res.Metrics.DocsScanned != 100 {
		t.Errorf("DocsScanned = %d, want 100", res.Metrics.DocsScanned)
	}
	if res.Metrics.ResultNodes != 10 {
		t.Errorf("ResultNodes = %d, want 10", res.Metrics.ResultNodes)
	}
	if res.Metrics.NodesVisited == 0 {
		t.Error("NodesVisited not recorded")
	}
}

func TestIndexPlanMatchesDocScan(t *testing.T) {
	cat := fixture(t, 400)
	cat.CreateIndex("IP", "items", pattern.MustParse("/site/regions/*/item/price"), sqltype.Double)
	o := optimizer.New(cat)
	ex := New(cat)

	queries := []string{
		`for $i in collection("items")/site/regions/*/item where $i/price = 7 return $i/name`,
		`for $i in collection("items")/site/regions/*/item where $i/price < 50 return $i`,
		`for $i in collection("items")/site/regions/namerica/item where $i/price >= 900 return $i`,
		`SELECT 1 FROM items WHERE XMLEXISTS('$d/site/regions/africa/item[price < 100]' PASSING doc AS "d")`,
	}
	for _, src := range queries {
		q := parse(t, src)
		scanRes, err := ex.Run(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		plan, err := o.Optimize(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		idxRes, err := ex.Run(q, plan)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if scanRes.Rows != idxRes.Rows {
			t.Errorf("%s:\n  scan rows=%d index rows=%d (plan %s)", src, scanRes.Rows, idxRes.Rows, plan.Describe())
		}
		if plan.UsesIndexes() && idxRes.Metrics.DocsFetched > scanRes.Metrics.DocsScanned {
			t.Errorf("%s: fetched %d > scanned %d", src, idxRes.Metrics.DocsFetched, scanRes.Metrics.DocsScanned)
		}
	}
}

func TestIndexPlanTouchesFewerDocs(t *testing.T) {
	cat := fixture(t, 500)
	cat.CreateIndex("IP", "items", pattern.MustParse("/site/regions/*/item/price"), sqltype.Double)
	o := optimizer.New(cat)
	ex := New(cat)
	q := parse(t, `for $i in collection("items")/site/regions/*/item where $i/price = 7 return $i`)
	plan, _ := o.Optimize(q, nil)
	if !plan.UsesIndexes() {
		t.Fatalf("expected index plan: %s", plan.Describe())
	}
	res, err := ex.Run(q, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.DocsFetched >= 50 {
		t.Errorf("index plan fetched %d docs; expected a small fraction of 500", res.Metrics.DocsFetched)
	}
	if res.Metrics.NodesVisited == 0 && res.Rows > 0 {
		t.Error("fetched docs should be navigated")
	}
	if len(res.Metrics.IndexesUsed) != 1 || res.Metrics.IndexesUsed[0] != "IP" {
		t.Errorf("IndexesUsed = %v", res.Metrics.IndexesUsed)
	}
}

func TestResidualPathVerification(t *testing.T) {
	cat := fixture(t, 200)
	// General index over all item subelements; query asks namerica only.
	cat.CreateIndex("IGEN", "items", pattern.MustParse("/site/regions/*/item/*"), sqltype.Double)
	o := optimizer.New(cat)
	ex := New(cat)
	q := parse(t, `for $i in collection("items")/site/regions/namerica/item where $i/price = 7 return $i`)
	plan, _ := o.Optimize(q, nil)
	if !plan.UsesIndexes() {
		t.Skipf("optimizer chose scan: %s", plan.Describe())
	}
	scanRes, _ := ex.Run(q, nil)
	idxRes, err := ex.Run(q, plan)
	if err != nil {
		t.Fatal(err)
	}
	if scanRes.Rows != idxRes.Rows {
		t.Errorf("residual verification broken: scan=%d idx=%d", scanRes.Rows, idxRes.Rows)
	}
}

func TestIndexAndingExecution(t *testing.T) {
	cat := fixture(t, 600)
	cat.CreateIndex("IP", "items", pattern.MustParse("/site/regions/*/item/price"), sqltype.Double)
	cat.CreateIndex("IQ", "items", pattern.MustParse("/site/regions/*/item/quantity"), sqltype.Double)
	o := optimizer.New(cat)
	ex := New(cat)
	q := parse(t, `for $i in collection("items")/site/regions/*/item where $i/price < 100 and $i/quantity = 3 return $i`)
	plan, _ := o.Optimize(q, nil)
	scanRes, _ := ex.Run(q, nil)
	idxRes, err := ex.Run(q, plan)
	if err != nil {
		t.Fatal(err)
	}
	if scanRes.Rows != idxRes.Rows {
		t.Errorf("scan=%d idx=%d (plan: %s)", scanRes.Rows, idxRes.Rows, plan.Describe())
	}
}

func TestVirtualIndexPlanFailsExecution(t *testing.T) {
	cat := fixture(t, 100)
	o := optimizer.New(cat)
	ex := New(cat)
	st, _ := cat.Stats("items")
	virt := catalog.VirtualDef("V", "items", pattern.MustParse("/site/regions/*/item/price"), sqltype.Double, st)
	q := parse(t, `for $i in collection("items")/site/regions/*/item where $i/price = 7 return $i`)
	plan, _ := o.Optimize(q, []*catalog.IndexDef{virt})
	if !plan.UsesIndexes() {
		t.Skip("virtual index not chosen")
	}
	if _, err := ex.Run(q, plan); err == nil {
		t.Error("executing a plan over an unbuilt virtual index must fail")
	}
}

func TestUnknownCollection(t *testing.T) {
	cat := fixture(t, 1)
	ex := New(cat)
	q := parse(t, `for $i in collection("nosuch")/a return $i`)
	if _, err := ex.Run(q, nil); err == nil {
		t.Error("unknown collection should fail")
	}
}

func TestPerDocumentSemantics(t *testing.T) {
	cat := fixture(t, 40)
	ex := New(cat)
	// XQuery counts binding nodes; SQL/XML counts documents. With one
	// item per document they coincide; verify both paths run.
	xq := parse(t, `for $i in collection("items")/site/regions/*/item where $i/quantity = 3 return $i`)
	sq := parse(t, `SELECT 1 FROM items WHERE XMLEXISTS('$d/site/regions/*/item[quantity = 3]' PASSING doc AS "d")`)
	xres, _ := ex.Run(xq, nil)
	sres, _ := ex.Run(sq, nil)
	if xres.Rows != sres.Rows {
		t.Errorf("XQuery rows=%d SQL rows=%d, want equal for 1-item docs", xres.Rows, sres.Rows)
	}
	if xres.Rows != 4 {
		t.Errorf("rows = %d, want 4", xres.Rows)
	}
}

func TestAggregateAndConstructorQueries(t *testing.T) {
	cat := fixture(t, 30)
	ex := New(cat)
	q := parse(t, `for $i in collection("items")/site/regions/*/item where $i/quantity > 5 return count($i)`)
	res, err := ex.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == 0 {
		t.Error("aggregate query returned no rows")
	}
}

func TestSpeedupOnLargeCollection(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cat := fixture(t, 3000)
	cat.CreateIndex("IP", "items", pattern.MustParse("/site/regions/*/item/price"), sqltype.Double)
	o := optimizer.New(cat)
	ex := New(cat)
	q := parse(t, `for $i in collection("items")/site/regions/*/item where $i/price = 7 return $i`)
	plan, _ := o.Optimize(q, nil)
	if !plan.UsesIndexes() {
		t.Fatal("index expected")
	}
	scanRes, _ := ex.Run(q, nil)
	idxRes, _ := ex.Run(q, plan)
	if idxRes.Rows != scanRes.Rows {
		t.Fatalf("row mismatch %d vs %d", idxRes.Rows, scanRes.Rows)
	}
	// The index execution must navigate far fewer nodes.
	if idxRes.Metrics.NodesVisited*10 > scanRes.Metrics.NodesVisited {
		t.Errorf("index visited %d nodes, scan %d; expected >=10x reduction",
			idxRes.Metrics.NodesVisited, scanRes.Metrics.NodesVisited)
	}
}

func TestIndexORingExecutionMatchesScan(t *testing.T) {
	cat := fixture(t, 700)
	cat.CreateIndex("IP", "items", pattern.MustParse("/site/regions/*/item/price"), sqltype.Double)
	o := optimizer.New(cat)
	ex := New(cat)
	q := parse(t, `for $i in collection("items")/site/regions/*/item where $i/price = 7 or $i/price = 21 return $i/name`)
	plan, err := o.Optimize(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	hasOr := false
	for _, a := range plan.Access {
		if a.IsOr() {
			hasOr = true
		}
	}
	if !hasOr {
		t.Skipf("optimizer chose %s", plan.Describe())
	}
	scanRes, _ := ex.Run(q, nil)
	idxRes, err := ex.Run(q, plan)
	if err != nil {
		t.Fatal(err)
	}
	if scanRes.Rows != idxRes.Rows {
		t.Errorf("OR execution mismatch: scan=%d idx=%d", scanRes.Rows, idxRes.Rows)
	}
	if idxRes.Metrics.DocsFetched >= scanRes.Metrics.DocsScanned {
		t.Errorf("OR plan fetched %d docs of %d", idxRes.Metrics.DocsFetched, scanRes.Metrics.DocsScanned)
	}
}

func TestApplyUpdateInsertAndDelete(t *testing.T) {
	cat := fixture(t, 50)
	cat.CreateIndex("IQ", "items", pattern.MustParse("/site/regions/*/item/quantity"), sqltype.Double)
	ex := New(cat)

	w := &workload.Workload{}
	w.AddInsert(1, "items", `<site><regions><europe><item id="zz"><quantity>3</quantity></item></europe></regions></site>`)
	if err := w.AddDelete(1, "items", "/site/regions/africa/item"); err != nil {
		t.Fatal(err)
	}

	docs, entries, err := ex.ApplyUpdate(w.Updates[0])
	if err != nil {
		t.Fatal(err)
	}
	if docs != 1 || entries != 1 {
		t.Errorf("insert: docs=%d entries=%d", docs, entries)
	}
	col, _ := cat.Collection("items")
	if col.Len() != 51 {
		t.Errorf("collection size = %d", col.Len())
	}

	// The delete removes the africa docs (i%4==1: 13 of the original 50).
	docs, entries, err = ex.ApplyUpdate(w.Updates[1])
	if err != nil {
		t.Fatal(err)
	}
	if docs != 13 {
		t.Errorf("deleted %d docs, want 13", docs)
	}
	if entries != 13 {
		t.Errorf("deleted %d entries, want 13", entries)
	}
	if col.Len() != 51-13 {
		t.Errorf("collection size after delete = %d", col.Len())
	}
	// Index must agree with a fresh rebuild.
	def := cat.Index("IQ")
	if err := def.Phys.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	fresh := xindex.Build("FRESH", pattern.MustParse("/site/regions/*/item/quantity"), sqltype.Double, col)
	if def.Phys.Entries() != fresh.Entries() {
		t.Errorf("maintained index has %d entries, fresh build %d", def.Phys.Entries(), fresh.Entries())
	}
}
