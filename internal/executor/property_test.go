package executor

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/optimizer"
	"repro/internal/pattern"
	"repro/internal/sqltype"
	"repro/internal/store"
)

// TestWorkloadEquivalenceUnderIndexes is the central executor soundness
// property: for every generated workload query, the indexed plan returns
// exactly the rows a full document scan returns, whatever indexes exist.
func TestWorkloadEquivalenceUnderIndexes(t *testing.T) {
	st := store.New()
	if _, err := datagen.GenerateXMark(st, datagen.XMarkConfig{Docs: 300, Seed: 77}); err != nil {
		t.Fatal(err)
	}
	if err := datagen.GenerateTPoX(st, datagen.TPoXConfig{Securities: 30, Seed: 77}); err != nil {
		t.Fatal(err)
	}
	cat := catalog.New(st)
	for i, d := range []struct {
		coll, pat string
		ty        sqltype.Type
	}{
		{"auction", "/site/regions/*/item/quantity", sqltype.Double},
		{"auction", "/site/regions/*/item/price", sqltype.Double},
		{"auction", "/site/regions/*/item/name", sqltype.Varchar},
		{"auction", "/site/regions/*/item/location", sqltype.Varchar},
		{"auction", "/site/people/person/profile/@income", sqltype.Double},
		{"auction", "/site/open_auctions/open_auction/initial", sqltype.Double},
		{"auction", "/site/closed_auctions/closed_auction/price", sqltype.Double},
		{"auction", "/site/closed_auctions/closed_auction/date", sqltype.Date},
		{"auction", "//@category", sqltype.Varchar},
		{"security", "/Security/Symbol", sqltype.Varchar},
		{"security", "/Security/SecurityInformation/Sector", sqltype.Varchar},
		{"security", "/Security/Price/LastTrade", sqltype.Double},
		{"security", "/Security/PE", sqltype.Double},
		{"order", "/FIXML/Order/@Acct", sqltype.Varchar},
		{"order", "/FIXML/Order/OrdQty/@Qty", sqltype.Double},
		{"order", "/FIXML/Order/Instrmt/@Sym", sqltype.Varchar},
		{"custacc", "/Customer/Nationality", sqltype.Varchar},
		{"custacc", "/Customer/DateOfBirth", sqltype.Date},
		{"custacc", "//Account/Balance/OnlineActualBal/Amount", sqltype.Double},
	} {
		if _, err := cat.CreateIndex("PX"+string(rune('A'+i)), d.coll, pattern.MustParse(d.pat), d.ty); err != nil {
			t.Fatal(err)
		}
	}
	o := optimizer.New(cat)
	ex := New(cat)

	queries := append(datagen.XMarkWorkload(40, 13).Queries, datagen.TPoXWorkload(27, 13, 30).Queries...)
	indexedPlans := 0
	for _, e := range queries {
		scan, err := ex.Run(e.Query, nil)
		if err != nil {
			t.Fatalf("%s (%s): %v", e.Query.ID, e.Query.Text, err)
		}
		plan, err := o.Optimize(e.Query, nil)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := ex.Run(e.Query, plan)
		if err != nil {
			t.Fatalf("%s: %v", e.Query.ID, err)
		}
		if scan.Rows != idx.Rows {
			t.Errorf("%s: scan=%d indexed=%d\n  query: %s\n  plan: %s",
				e.Query.ID, scan.Rows, idx.Rows, e.Query.Text, plan.Describe())
		}
		if plan.UsesIndexes() {
			indexedPlans++
		}
	}
	if indexedPlans == 0 {
		t.Error("no query used an index; the property test exercised nothing")
	}
	t.Logf("indexed plans: %d of %d queries", indexedPlans, len(queries))
}
