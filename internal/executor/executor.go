// Package executor runs optimized plans against the real store and real
// indexes. It exists for the final step of the paper's demonstration:
// after the advisor's recommended configuration is actually created, "the
// actual execution time taken by the queries can then be displayed".
//
// A document-scan plan evaluates the query on every document. An index
// plan scans the chosen physical indexes, verifies entry paths, ANDs the
// resulting document ID sets, and completes the query by evaluating it
// only on the surviving documents.
package executor

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/pattern"
	"repro/internal/querylang"
	"repro/internal/sqltype"
	"repro/internal/store"
	"repro/internal/workload"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// Metrics records the observable work a query execution performed.
type Metrics struct {
	DocsScanned     int           // documents fully evaluated
	NodesVisited    int64         // navigation steps during evaluation
	IndexLeaves     int           // B+ tree leaf pages read
	IndexEntries    int           // index entries scanned
	DocsFetched     int           // documents fetched by index plans
	Duration        time.Duration // wall-clock execution time
	IndexesUsed     []string
	ResultNodes     int // nodes produced by extraction paths
	BindingMatches  int // binding nodes that survived all filters
	DocsQualified   int // documents contributing at least one result
	PagesReadApprox int64
}

// Result is the outcome of executing a query.
type Result struct {
	// Rows is the number of result rows under the query's semantics
	// (binding nodes, or qualifying documents for SQL/XML).
	Rows    int
	Metrics Metrics
}

// Executor executes queries against a catalog's store and indexes.
type Executor struct {
	Cat *catalog.Catalog
}

// New returns an executor over the catalog.
func New(cat *catalog.Catalog) *Executor {
	return &Executor{Cat: cat}
}

// Run executes the query with the given plan. A nil plan (or one without
// index anchors) runs a full document scan. Index plans require the
// anchor indexes to be physically built.
func (e *Executor) Run(q *querylang.Query, plan *optimizer.Plan) (*Result, error) {
	col, err := e.Cat.Collection(q.Collection)
	if err != nil {
		return nil, fmt.Errorf("executor: %w", err)
	}
	start := time.Now()
	var res *Result
	if plan == nil || !plan.UsesIndexes() {
		res, err = e.runDocScan(q, col)
	} else {
		res, err = e.runIndexPlan(q, col, plan)
	}
	if err != nil {
		return nil, err
	}
	res.Metrics.Duration = time.Since(start)
	return res, nil
}

// runDocScan evaluates the query on every document.
func (e *Executor) runDocScan(q *querylang.Query, col *store.Collection) (*Result, error) {
	res := &Result{}
	var ev xpath.Evaluator
	col.Each(func(d *xmldoc.Document) bool {
		res.Metrics.DocsScanned++
		e.evalDoc(q, d, &ev, res)
		return true
	})
	res.Metrics.NodesVisited = ev.Visited
	res.Metrics.PagesReadApprox = col.Pages()
	return res, nil
}

// runIndexPlan scans the anchor indexes, intersects the document sets,
// and evaluates the query on surviving documents only.
func (e *Executor) runIndexPlan(q *querylang.Query, col *store.Collection, plan *optimizer.Plan) (*Result, error) {
	res := &Result{}
	var candidate map[xmldoc.DocID]bool
	for _, a := range plan.Access {
		var docs map[xmldoc.DocID]bool
		if a.IsOr() {
			// Index ORing: union the member scans' document sets.
			docs = map[xmldoc.DocID]bool{}
			for _, m := range a.Members {
				mdocs, err := e.scanAccess(col, &m, res)
				if err != nil {
					return nil, err
				}
				for id := range mdocs {
					docs[id] = true
				}
			}
		} else {
			var err error
			docs, err = e.scanAccess(col, &a, res)
			if err != nil {
				return nil, err
			}
		}
		if candidate == nil {
			candidate = docs
		} else {
			for id := range candidate {
				if !docs[id] {
					delete(candidate, id)
				}
			}
		}
	}
	ids := make([]xmldoc.DocID, 0, len(candidate))
	for id := range candidate {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var ev xpath.Evaluator
	for _, id := range ids {
		d := col.Get(id)
		if d == nil {
			continue
		}
		res.Metrics.DocsFetched++
		e.evalDoc(q, d, &ev, res)
	}
	res.Metrics.NodesVisited = ev.Visited
	pagesPerDoc := int64(1)
	if col.Len() > 0 {
		if ppd := col.Pages() / int64(col.Len()); ppd > 1 {
			pagesPerDoc = ppd
		}
	}
	res.Metrics.PagesReadApprox = int64(res.Metrics.DocsFetched)*pagesPerDoc + int64(res.Metrics.IndexLeaves)
	return res, nil
}

// scanAccess runs one index scan with residual path verification and
// returns the set of matching document IDs.
func (e *Executor) scanAccess(col *store.Collection, a *optimizer.LegAccess, res *Result) (map[xmldoc.DocID]bool, error) {
	def := e.Cat.Index(a.Index.Name)
	if def == nil || def.Phys == nil {
		return nil, fmt.Errorf("executor: plan uses index %q which is not physically built", a.Index.Name)
	}
	res.Metrics.IndexesUsed = append(res.Metrics.IndexesUsed, def.Name)
	scan, err := def.Phys.Scan(a.Leg.Op, a.Leg.Value)
	if err != nil {
		return nil, fmt.Errorf("executor: %w", err)
	}
	res.Metrics.IndexLeaves += scan.LeavesRead
	res.Metrics.IndexEntries += len(scan.Entries)

	// Verify entry paths when the index is more general than the leg.
	var m *pattern.Matcher
	if a.ResidualPathCheck {
		m = pattern.InternedMatcher(a.Leg.Pattern)
	}
	docs := map[xmldoc.DocID]bool{}
	for _, entry := range scan.Entries {
		if m != nil {
			d := col.Get(entry.Doc)
			if d == nil {
				continue
			}
			n := d.Node(entry.Node)
			if n == nil || !m.MatchPath(n.RootPath()) {
				continue
			}
		}
		docs[entry.Doc] = true
	}
	return docs, nil
}

// evalDoc applies the full query semantics to one document, accumulating
// rows and extraction counts into res.
func (e *Executor) evalDoc(q *querylang.Query, d *xmldoc.Document, ev *xpath.Evaluator, res *Result) {
	bind := ev.Eval(d, q.Binding)
	if len(bind) == 0 {
		return
	}
	for _, dc := range q.DocConds {
		if len(ev.Eval(d, dc)) == 0 {
			return
		}
	}
	survivors := bind[:0:0]
	for _, n := range bind {
		if q.Where != nil && !evalWhere(ev, n, q.Where) {
			continue
		}
		survivors = append(survivors, n)
	}
	if len(survivors) == 0 {
		return
	}
	res.Metrics.DocsQualified++
	res.Metrics.BindingMatches += len(survivors)
	if q.PerDocument {
		res.Rows++
	} else {
		res.Rows += len(survivors)
	}
	for _, r := range q.Returns {
		for _, n := range survivors {
			res.Metrics.ResultNodes += len(ev.EvalFrom(n, r))
		}
	}
	for _, r := range q.DocReturns {
		res.Metrics.ResultNodes += len(ev.Eval(d, r))
	}
}

// ApplyUpdate executes one workload update statement against the store
// and its physical indexes: inserts add the statement's document; deletes
// remove every document the selection path matches. It returns the
// documents affected and the index entries maintained — the measured
// counterpart of the advisor's update-cost estimate.
func (e *Executor) ApplyUpdate(u workload.Update) (docs int, entries int, err error) {
	switch u.Kind {
	case workload.UpdateInsert:
		_, n, err := e.Cat.InsertDocument(u.Collection, u.DocXML)
		if err != nil {
			return 0, 0, err
		}
		return 1, n, nil
	case workload.UpdateDelete:
		col, err := e.Cat.Collection(u.Collection)
		if err != nil {
			return 0, 0, err
		}
		var ids []xmldoc.DocID
		var ev xpath.Evaluator
		col.Each(func(d *xmldoc.Document) bool {
			if len(ev.Eval(d, u.Path)) > 0 {
				ids = append(ids, d.ID)
			}
			return true
		})
		for _, id := range ids {
			n, err := e.Cat.DeleteDocument(u.Collection, id)
			if err != nil {
				return docs, entries, err
			}
			docs++
			entries += n
		}
		return docs, entries, nil
	}
	return 0, 0, fmt.Errorf("executor: unknown update kind %d", u.Kind)
}

// evalWhere evaluates a where expression with paths relative to ctx.
func evalWhere(ev *xpath.Evaluator, ctx *xmldoc.Node, expr xpath.BoolExpr) bool {
	switch x := expr.(type) {
	case *xpath.AndExpr:
		return evalWhere(ev, ctx, x.L) && evalWhere(ev, ctx, x.R)
	case *xpath.OrExpr:
		return evalWhere(ev, ctx, x.L) || evalWhere(ev, ctx, x.R)
	case *xpath.NotExpr:
		return !evalWhere(ev, ctx, x.E)
	case *xpath.ExistsExpr:
		return len(ev.EvalFrom(ctx, x.Path)) > 0
	case *xpath.Comparison:
		for _, n := range ev.EvalFrom(ctx, x.Path) {
			if sqltype.Eval(xpath.NodeValue(n), x.Op, x.Value) {
				return true
			}
		}
		return false
	}
	return false
}
