package search_test

import (
	"context"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/search"
)

var (
	benchOnce  sync.Once
	benchSpace *search.Space
	benchErr   error
)

// benchmarkSpace prepares one shared mid-budget search space over the
// small XMark workload; strategies then run over the warm what-if
// cache, so the benchmark isolates search overhead (ranking, rounds,
// trace assembly) from cold optimizer calls.
func benchmarkSpace(b *testing.B) *search.Space {
	b.Helper()
	benchOnce.Do(func() {
		env, err := experiments.BuildEnv(experiments.Small)
		if err != nil {
			benchErr = err
			return
		}
		ctx := context.Background()
		a := core.New(env.Cat, core.DefaultOptions())
		prep, err := a.Prepare(ctx, env.XMarkWorkload)
		if err != nil {
			benchErr = err
			return
		}
		full, err := prep.RecommendWith(ctx, core.SearchGreedyHeuristic, 0)
		if err != nil {
			benchErr = err
			return
		}
		benchSpace = prep.Space().WithBudget(full.TotalPages / 2)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSpace
}

var (
	scaleMu     sync.Mutex
	scaleSpaces = map[int]*search.Space{}
)

// syntheticSpace returns the shared synthetic space with n basic
// candidates (built once per size; the spaces are immutable and the
// per-strategy eval counters live in the results, not the space).
func syntheticSpace(b *testing.B, n int) *search.Space {
	b.Helper()
	scaleMu.Lock()
	defer scaleMu.Unlock()
	sp, ok := scaleSpaces[n]
	if !ok {
		sp = search.NewSyntheticSpace(n, 42)
		scaleSpaces[n] = sp
	}
	return sp
}

// BenchmarkSearchScale is the scale trajectory behind BENCH_search.json:
// the synthetic candidate space at 1k/10k/50k candidates, comparing the
// lazy-greedy heap against the eager baseline, the lp relaxation
// against lazy greedy, and the cost-bounded race against the plain
// portfolio. evals/op is each strategy's exact what-if call count
// (Stats.Evals), the quantity the lazy path (and, far more so, the lp
// strategy) exists to shrink. The slowest variants are skipped at 50k
// to keep the CI -benchtime=1x smoke seconds-scale; set
// SEARCH_SCALE_FULL=1 to run them anyway (the BENCH_search.json
// refresh does).
func BenchmarkSearchScale(b *testing.B) {
	variants := []struct {
		name  string
		strat string
		tune  func(*search.Space)
	}{
		{"greedy-eager", "greedy-heuristic", func(sp *search.Space) { sp.EagerGreedy = true }},
		{"greedy-lazy", "greedy-heuristic", nil},
		{"lp", "lp", nil},
		{"race", "race", nil},
		{"race-bounded", "race", func(sp *search.Space) { sp.RaceCostBound = true }},
	}
	full := os.Getenv("SEARCH_SCALE_FULL") != ""
	for _, sz := range []struct {
		name string
		n    int
		skip map[string]bool
	}{
		{"n-1k", 1_000, nil},
		{"n-10k", 10_000, nil},
		{"n-50k", 50_000, map[string]bool{"greedy-eager": true, "race": true, "race-bounded": true}},
	} {
		b.Run(sz.name, func(b *testing.B) {
			base := syntheticSpace(b, sz.n)
			for _, v := range variants {
				if sz.skip[v.name] && !full {
					continue
				}
				strat, err := search.Lookup(v.strat)
				if err != nil {
					b.Fatal(err)
				}
				b.Run(v.name, func(b *testing.B) {
					sp := base.WithBudget(base.BudgetPages)
					if v.tune != nil {
						v.tune(sp)
					}
					ctx := context.Background()
					var evals, rounds int64
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						res, err := strat.Search(ctx, sp)
						if err != nil {
							b.Fatal(err)
						}
						evals += res.Stats.Evals
						rounds += int64(res.Stats.Rounds)
					}
					b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
					b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
				})
			}
		})
	}
}

// BenchmarkSearch sweeps every registered strategy over the shared
// space — the CI smoke step runs this under -race with -benchtime=1x so
// strategy regressions (and data races between portfolio members) fail
// fast.
func BenchmarkSearch(b *testing.B) {
	sp := benchmarkSpace(b)
	for _, name := range search.Names() {
		strat, err := search.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			ctx := context.Background()
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := strat.Search(ctx, sp)
				if err != nil {
					b.Fatal(err)
				}
				rounds += res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}
