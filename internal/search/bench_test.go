package search_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/search"
)

var (
	benchOnce  sync.Once
	benchSpace *search.Space
	benchErr   error
)

// benchmarkSpace prepares one shared mid-budget search space over the
// small XMark workload; strategies then run over the warm what-if
// cache, so the benchmark isolates search overhead (ranking, rounds,
// trace assembly) from cold optimizer calls.
func benchmarkSpace(b *testing.B) *search.Space {
	b.Helper()
	benchOnce.Do(func() {
		env, err := experiments.BuildEnv(experiments.Small)
		if err != nil {
			benchErr = err
			return
		}
		ctx := context.Background()
		a := core.New(env.Cat, core.DefaultOptions())
		prep, err := a.Prepare(ctx, env.XMarkWorkload)
		if err != nil {
			benchErr = err
			return
		}
		full, err := prep.RecommendWith(ctx, core.SearchGreedyHeuristic, 0)
		if err != nil {
			benchErr = err
			return
		}
		benchSpace = prep.Space().WithBudget(full.TotalPages / 2)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSpace
}

// BenchmarkSearch sweeps every registered strategy over the shared
// space — the CI smoke step runs this under -race with -benchtime=1x so
// strategy regressions (and data races between portfolio members) fail
// fast.
func BenchmarkSearch(b *testing.B) {
	sp := benchmarkSpace(b)
	for _, name := range search.Names() {
		strat, err := search.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			ctx := context.Background()
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := strat.Search(ctx, sp)
				if err != nil {
					b.Fatal(err)
				}
				rounds += res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}
