package search

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"repro/internal/lp"
	"repro/internal/whatif"
)

// The lp strategy is the CoPhy-style relaxation search: instead of
// pricing configurations one what-if call at a time, it solves the
// fractional index-selection LP over the space's standalone benefit
// matrix (Space.Benefits) — per-(query, candidate) benefit
// coefficients, modular private benefits and update costs, the page
// budget as a knapsack row, and at-most-one side constraints over
// containment chains from the DAG — then deterministically rounds the
// fractional solution and repairs it with a bounded number of real
// what-if evaluations. The dual bound certified by the solver upper
// bounds every feasible configuration's surrogate net, which is what
// the cost-bounded race aborts against.
//
// What-if evaluations are spent only on the rounded configuration and
// the repair pass (plus one standalone pass per candidate when the
// space has no Benefits hook), so at 10k-50k candidates the strategy
// runs orders of magnitude fewer evaluations than lazy greedy while
// the benefit matrix — memoized by its producer and free of optimizer
// calls on engine-backed spaces after the first build — carries the
// model.
func init() { Register(lpStrategy{}) }

// DefaultLPRepairRounds is the repair-round cap used when
// Space.LPRepairRounds is 0.
const DefaultLPRepairRounds = 3

// lpRepairBurst is how many extension candidates one repair round
// prices with real what-if marginals. It is a fixed constant, not the
// evaluator's worker count, so recommendations stay independent of the
// parallelism setting.
const lpRepairBurst = 8

type lpStrategy struct{}

func (lpStrategy) Name() string { return "lp" }

func (lpStrategy) Search(ctx context.Context, sp *Space) (*Result, error) {
	tr := newTracer("lp", sp)

	m, err := lpMatrix(ctx, sp, tr)
	if err != nil {
		if sp.degradable(err) {
			return degrade(sp, tr, nil, nil, err), nil
		}
		return nil, err
	}

	// Canonical item order: surrogate standalone net density, densest
	// first, with the same content-only tie-breaks as rankByDensity —
	// the LP's item indices, the rounding heap's tie-breaks, and
	// therefore the recommendation are byte-stable under candidate
	// permutation.
	order := lpOrder(sp.Candidates, m)

	prob := lpProblem(sp, m, order)
	sol := lp.Solve(prob, lp.Options{MaxPasses: sp.LPMaxPasses})
	support := 0
	for _, x := range sol.X {
		if x > 0 {
			support++
		}
	}
	tr.lp = &LPStats{
		Objective: sol.Objective,
		Bound:     sol.Bound,
		Passes:    sol.Passes,
		Converged: sol.Converged,
		Items:     prob.NumItems,
		NonZero:   m.NonZero(),
		Chains:    len(prob.Groups),
		Support:   support,
	}
	tr.emit(TraceEvent{Action: ActionSolve, Benefit: sol.Objective,
		Note: fmt.Sprintf("lp relaxation: objective %.1f, dual bound %.1f, %d passes (converged=%t), support %d of %d items, %d chains",
			sol.Objective, sol.Bound, sol.Passes, sol.Converged, support, prob.NumItems, len(prob.Groups))})

	// Cost-bounded racing: the dual bound upper-bounds every feasible
	// configuration's surrogate net. If the leader already beat it,
	// rounding cannot win — stop before spending a single evaluation.
	if sp.leader != nil && sol.Bound < sp.leader.best() {
		return abort(sp, tr, nil, &Eval{}, sol.Bound), nil
	}

	// Deterministic rounding: a lazy-greedy (CELF) scan over the
	// surrogate objective under the budget and containment-antichain
	// constraints, tried from two pivots — LP-support-first (the
	// fractional solution gets the first claim on the budget) and
	// density-first over all candidates (the greedy order, for when a
	// stalled dual leaves the support misleading). Both scans are pure
	// matrix arithmetic; the better surrogate net wins, ties to the
	// density pivot.
	supportPos := make([]int, 0, support)
	rest := make([]int, 0, len(order)-support)
	allPos := make([]int, len(order))
	for pos := range order {
		allPos[pos] = pos
		if sol.X[pos] > 0 {
			supportPos = append(supportPos, pos)
		} else {
			rest = append(rest, pos)
		}
	}
	ra := newLPRounder(sp, m, order)
	ra.phase(supportPos)
	ra.phase(rest)
	rb := newLPRounder(sp, m, order)
	rb.phase(allPos)
	r, pivot := rb, "density-first"
	if ra.surNet > rb.surNet {
		r, pivot = ra, "support-first"
	}
	tr.lp.Pivot = pivot
	for _, a := range r.adds {
		tr.round++
		tr.emit(TraceEvent{Action: ActionAdd, Candidate: r.cands[a.pos].Key(), Benefit: a.surNet,
			Pages: a.pages, Note: "surrogate net (" + pivot + ")"})
	}

	curEval, err := tr.ev.Evaluate(ctx, r.config)
	if err != nil {
		if sp.degradable(err) {
			return degrade(sp, tr, r.config, nil, err), nil
		}
		return nil, err
	}
	if sp.leader != nil {
		sp.leader.publish(curEval.Net)
	}
	tr.emit(TraceEvent{Action: ActionRounded, Benefit: curEval.Net, Pages: r.pages,
		Note: fmt.Sprintf("rounded net %.1f vs lp objective %.1f (bound %.1f)", curEval.Net, sol.Objective, sol.Bound)})

	// Bounded what-if repair: drop members no plan uses, then try a
	// burst of surrogate-promising extensions priced by real marginal
	// evaluations — the matrix proposes, the what-if service disposes.
	repairBase := tr.ev.calls.Load()
	curEval, res, err := r.repair(ctx, sp, tr, curEval)
	if err != nil || res != nil {
		return res, err
	}
	tr.lp.RepairEvals = tr.ev.calls.Load() - repairBase

	// Never worse than empty: a rounded configuration that nets out
	// negative is discarded wholesale.
	if curEval.Net < 0 {
		tr.emit(TraceEvent{Action: ActionSkip, Benefit: curEval.Net, Pages: r.pages,
			Note: "rounded configuration nets negative; reverting to the empty configuration"})
		r.config, curEval = nil, nil
	}
	if tr.lp != nil {
		if curEval != nil {
			tr.lp.RoundedNet = curEval.Net
		}
	}
	return finish(ctx, sp, tr, r.config, curEval)
}

// lpMatrix obtains the benefit model: the space's Benefits hook when
// wired, else one standalone what-if pass through the strategy's
// counting evaluator, decomposed into modular terms only (no per-query
// rows) — the LP then degenerates to a knapsack over standalone nets,
// which is still budget-sound and repair-corrected.
func lpMatrix(ctx context.Context, sp *Space, tr *tracer) (*whatif.BenefitMatrix, error) {
	if sp.Benefits != nil {
		m, err := sp.Benefits(ctx)
		if err != nil {
			return nil, err
		}
		if m != nil {
			return m, nil
		}
	}
	evals, err := evalEach(ctx, tr.ev, nil, sp.Candidates)
	if err != nil {
		return nil, err
	}
	m := &whatif.BenefitMatrix{
		Rows:    make([][]whatif.BenefitEntry, len(sp.Candidates)),
		Private: make([]float64, len(sp.Candidates)),
		Update:  make([]float64, len(sp.Candidates)),
	}
	for i, e := range evals {
		m.Private[i] = e.QueryBenefit
		m.Update[i] = e.UpdateCost
	}
	return m, nil
}

// lpOrder returns the candidates in surrogate standalone net density
// order (content-only tie-breaks, mirroring rankByDensity).
func lpOrder(cands []*Candidate, m *whatif.BenefitMatrix) []int {
	net := make([]float64, len(cands))
	for ci := range cands {
		net[ci] = m.StandaloneBenefit(ci) - m.UpdateCost(ci)
	}
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := cands[order[i]], cands[order[j]]
		ri := ratio(net[order[i]], a.Pages())
		rj := ratio(net[order[j]], b.Pages())
		if ri != rj {
			return ri > rj
		}
		if da, db := a.Pattern.DescendantCount(), b.Pattern.DescendantCount(); da != db {
			return da < db
		}
		if wa, wb := a.Pattern.WildcardCount(), b.Pattern.WildcardCount(); wa != wb {
			return wa < wb
		}
		return a.Key() < b.Key()
	})
	return order
}

// lpProblem assembles the relaxation: weights are the modular nets
// (private benefit minus update cost), rows the per-query benefit
// coefficients, and every (ancestor, descendant) containment pair an
// at-most-one group.
func lpProblem(sp *Space, m *whatif.BenefitMatrix, order []int) *lp.Problem {
	prob := &lp.Problem{
		NumItems:   len(order),
		NumQueries: m.NumQueries,
		Weight:     make([]float64, len(order)),
		Size:       make([]int64, len(order)),
		Rows:       make([][]lp.Entry, len(order)),
		Budget:     sp.BudgetPages,
	}
	itemOf := make(map[int]int, len(order)) // candidate ID -> item index
	for pos, ci := range order {
		c := sp.Candidates[ci]
		itemOf[c.ID] = pos
		prob.Weight[pos] = m.PrivateBenefit(ci) - m.UpdateCost(ci)
		prob.Size[pos] = c.Pages()
		if ci < len(m.Rows) && len(m.Rows[ci]) > 0 {
			row := make([]lp.Entry, len(m.Rows[ci]))
			for i, e := range m.Rows[ci] {
				row[i] = lp.Entry{Query: e.Query, Benefit: e.Benefit}
			}
			prob.Rows[pos] = row
		}
	}
	if sp.DAG != nil {
		// Groups are emitted in item order (content-canonical), so the
		// solver's chain-coordinate sweep is deterministic too.
		for pos := range order {
			c := sp.Candidates[order[pos]]
			seen := map[int]bool{}
			stack := append([]*Candidate(nil), c.Parents...)
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if seen[p.ID] {
					continue
				}
				seen[p.ID] = true
				if anc, ok := itemOf[p.ID]; ok {
					prob.Groups = append(prob.Groups, []int32{int32(anc), int32(pos)})
				}
				stack = append(stack, p.Parents...)
			}
		}
	}
	return prob
}

// lpRounder is the deterministic rounding state: the growing integral
// configuration, each query's current best surrogate benefit, and the
// chosen-candidate set the containment-antichain check runs against.
type lpRounder struct {
	sp      *Space
	cands   []*Candidate // by item position (canonical order)
	rows    [][]whatif.BenefitEntry
	weights []float64
	curQ    []float64
	chosen  map[int]bool // candidate ID -> chosen
	banned  map[int]bool // dropped as unused by repair; never re-added
	config  []*Candidate
	pages   int64
	surNet  float64
	version int
	// adds records the rounding scan's accepted items in order, so the
	// winning pivot's trace can be emitted after the pivots compete.
	adds []lpAdd
}

// lpAdd is one accepted rounding step: the item and the surrogate
// net/pages after it joined.
type lpAdd struct {
	pos    int
	surNet float64
	pages  int64
}

func newLPRounder(sp *Space, m *whatif.BenefitMatrix, order []int) *lpRounder {
	r := &lpRounder{
		sp:      sp,
		cands:   make([]*Candidate, len(order)),
		rows:    make([][]whatif.BenefitEntry, len(order)),
		weights: make([]float64, len(order)),
		curQ:    make([]float64, m.NumQueries),
		chosen:  map[int]bool{},
		banned:  map[int]bool{},
	}
	for pos, ci := range order {
		r.cands[pos] = sp.Candidates[ci]
		if ci < len(m.Rows) {
			r.rows[pos] = m.Rows[ci]
		}
		r.weights[pos] = m.PrivateBenefit(ci) - m.UpdateCost(ci)
	}
	return r
}

// gain is the exact surrogate marginal of adding item pos to the
// current configuration: its modular weight plus, per query, the
// improvement over the query's current best server.
func (r *lpRounder) gain(pos int) float64 {
	g := r.weights[pos]
	for _, e := range r.rows[pos] {
		if e.Benefit > r.curQ[e.Query] {
			g += e.Benefit - r.curQ[e.Query]
		}
	}
	return g
}

// conflicts reports whether the candidate is an ancestor or descendant
// of an already chosen one (the at-most-one-per-chain constraint the
// LP's groups encode, enforced exactly on the integral side).
func (r *lpRounder) conflicts(c *Candidate) bool {
	if len(r.chosen) == 0 {
		return false
	}
	return r.walkConflict(c.Parents, func(n *Candidate) []*Candidate { return n.Parents }) ||
		r.walkConflict(c.Children, func(n *Candidate) []*Candidate { return n.Children })
}

func (r *lpRounder) walkConflict(start []*Candidate, next func(*Candidate) []*Candidate) bool {
	seen := map[int]bool{}
	stack := append([]*Candidate(nil), start...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n.ID] {
			continue
		}
		seen[n.ID] = true
		if r.chosen[n.ID] {
			return true
		}
		stack = append(stack, next(n)...)
	}
	return false
}

// add commits item pos to the configuration and updates the surrogate
// state.
func (r *lpRounder) add(pos int) float64 {
	g := r.gain(pos)
	c := r.cands[pos]
	r.config = append(r.config, c)
	r.chosen[c.ID] = true
	r.pages += c.Pages()
	r.surNet += g
	for _, e := range r.rows[pos] {
		if e.Benefit > r.curQ[e.Query] {
			r.curQ[e.Query] = e.Benefit
		}
	}
	r.version++
	return g
}

// lpRoundItem is one heap entry of the rounding scan: the item's
// last-known marginal surrogate density (an upper bound — marginals
// only shrink as the configuration grows) and the configuration
// version it was computed at.
type lpRoundItem struct {
	pos int
	key float64
	ver int
}

// lpRoundHeap is a max-heap over (key desc, pos asc): equal marginals
// resolve to the canonical density-rank position, the same tie the
// greedy strategies use.
type lpRoundHeap []*lpRoundItem

func (h lpRoundHeap) Len() int { return len(h) }
func (h lpRoundHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key > h[j].key
	}
	return h[i].pos < h[j].pos
}
func (h lpRoundHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *lpRoundHeap) Push(x any)   { *h = append(*h, x.(*lpRoundItem)) }
func (h *lpRoundHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// phase runs one CELF scan over the given item positions: pop the top,
// refresh its marginal if stale, accept it when fresh and positive.
// Items over budget or in containment conflict are discarded for good
// — the configuration only grows, so neither condition can clear. The
// scan costs zero what-if evaluations; it is pure matrix arithmetic.
func (r *lpRounder) phase(positions []int) {
	h := make(lpRoundHeap, 0, len(positions))
	for _, pos := range positions {
		g := r.gain(pos)
		h = append(h, &lpRoundItem{pos: pos, key: ratio(g, r.cands[pos].Pages()), ver: r.version})
	}
	heap.Init(&h)
	for len(h) > 0 {
		top := h[0]
		if top.key <= 0 {
			break // keys are upper bounds: nothing below can be positive
		}
		c := r.cands[top.pos]
		if !r.sp.Fits(r.pages+c.Pages()) || r.conflicts(c) {
			heap.Pop(&h)
			continue
		}
		if top.ver != r.version {
			top.key = ratio(r.gain(top.pos), c.Pages())
			top.ver = r.version
			heap.Fix(&h, 0)
			continue
		}
		heap.Pop(&h)
		r.add(top.pos)
		r.adds = append(r.adds, lpAdd{pos: top.pos, surNet: r.surNet, pages: r.pages})
	}
}

// repair runs the bounded what-if repair loop: per round, drop
// configuration members no plan uses, then price a burst of the most
// surrogate-promising extensions with real marginal evaluations and
// add the best positive one. It returns the repaired evaluation, or a
// terminal (degraded) result when the backend goes away mid-repair.
func (r *lpRounder) repair(ctx context.Context, sp *Space, tr *tracer, curEval *Eval) (*Eval, *Result, error) {
	rounds := sp.LPRepairRounds
	if rounds == 0 {
		rounds = DefaultLPRepairRounds
	}
	if rounds < 0 {
		return curEval, nil, nil // repair disabled
	}

	// Rescue: a rounded configuration that nets negative means the
	// surrogate badly overestimated (typically the modular-only
	// fallback matrix, which double-counts shared queries). The
	// rounding order is a greedy density order, so price its doubling
	// prefixes — O(log n) evaluations — and restart repair from the
	// best one instead of handing the net<0 guard a wholesale revert.
	if curEval.Net < 0 && len(r.adds) > 1 {
		bestEval, bestK := curEval, len(r.adds)
		for k := 1; k < len(r.adds); k *= 2 {
			e, err := tr.ev.Evaluate(ctx, r.config[:k])
			if err != nil {
				if sp.degradable(err) {
					return nil, degrade(sp, tr, r.config, curEval, err), nil
				}
				return nil, nil, err
			}
			if e.Net > bestEval.Net {
				bestEval, bestK = e, k
			}
		}
		if bestK < len(r.adds) {
			for _, c := range r.config[bestK:] {
				delete(r.chosen, c.ID)
			}
			r.config = r.config[:bestK:bestK]
			r.pages = PagesOf(r.config)
			r.rebuildCurQ()
			r.version++
			curEval = bestEval
			if sp.leader != nil {
				sp.leader.publish(curEval.Net)
			}
			tr.emit(TraceEvent{Action: ActionDrop, Benefit: curEval.Net, Pages: r.pages,
				Note: fmt.Sprintf("rescue: rounded net was negative; truncated to the best %d-member prefix", bestK)})
		}
	}

	for round := 0; round < rounds; round++ {
		changed := false

		pruned := r.config[:0:0]
		for _, c := range r.config {
			if curEval.Used[c.ID] {
				pruned = append(pruned, c)
				continue
			}
			tr.emit(TraceEvent{Action: ActionReclaim, Candidate: c.Key(), Note: "unused under rounded config"})
			delete(r.chosen, c.ID)
			r.banned[c.ID] = true
		}
		if len(pruned) != len(r.config) {
			r.config = pruned
			r.pages = PagesOf(pruned)
			r.rebuildCurQ()
			var err error
			curEval, err = tr.ev.Evaluate(ctx, r.config)
			if err != nil {
				if sp.degradable(err) {
					return nil, degrade(sp, tr, r.config, nil, err), nil
				}
				return nil, nil, err
			}
			if sp.leader != nil {
				sp.leader.publish(curEval.Net)
			}
			changed = true
		}

		batch := r.extensionBurst()
		if len(batch) > 0 {
			cands := make([]*Candidate, len(batch))
			for i, pos := range batch {
				cands[i] = r.cands[pos]
			}
			evals, err := evalEach(ctx, tr.ev, r.config, cands)
			if err != nil {
				if sp.degradable(err) {
					return nil, degrade(sp, tr, r.config, curEval, err), nil
				}
				return nil, nil, err
			}
			// CELF over the burst's real marginals: accept the freshest
			// best positive extension, mark the survivors stale, and
			// refresh one entry per pop — each accepted add costs a
			// handful of evaluations, not a full burst re-pricing.
			items := make([]*lpExt, len(batch))
			for i, pos := range batch {
				items[i] = &lpExt{pos: pos, c: cands[i], eval: evals[i],
					key: ratio(evals[i].Net-curEval.Net, cands[i].Pages()), fresh: true}
			}
			for len(items) > 0 {
				sort.SliceStable(items, func(i, j int) bool {
					if items[i].key != items[j].key {
						return items[i].key > items[j].key
					}
					return items[i].pos < items[j].pos
				})
				top := items[0]
				if top.key <= 0 {
					break
				}
				if !r.sp.Fits(r.pages+top.c.Pages()) || r.conflicts(top.c) {
					items = items[1:]
					continue
				}
				if !top.fresh {
					re, err := evalEach(ctx, tr.ev, r.config, []*Candidate{top.c})
					if err != nil {
						if sp.degradable(err) {
							return nil, degrade(sp, tr, r.config, curEval, err), nil
						}
						return nil, nil, err
					}
					top.eval = re[0]
					top.key = ratio(re[0].Net-curEval.Net, top.c.Pages())
					top.fresh = true
					continue
				}
				r.add(top.pos)
				curEval = top.eval
				if sp.leader != nil {
					sp.leader.publish(curEval.Net)
				}
				tr.round++
				tr.emit(TraceEvent{Action: ActionAdd, Candidate: top.c.Key(), Benefit: curEval.Net,
					Pages: r.pages, Note: "repair: real marginal"})
				changed = true
				items = items[1:]
				for _, it := range items {
					it.fresh = false
				}
			}
		}

		if !changed {
			break
		}
	}
	return curEval, nil, nil
}

// lpExt is one repair-burst entry: the extension candidate, its latest
// real evaluation, and whether that evaluation still reflects the
// current configuration.
type lpExt struct {
	pos   int
	c     *Candidate
	eval  *Eval
	key   float64
	fresh bool
}

// extensionBurst picks the lpRepairBurst unchosen items with the best
// surrogate marginal density that fit the budget and the antichain —
// the repair round's real-evaluation shortlist. Non-positive surrogate
// marginals stay in the pool (ranked last): the surrogate has no
// interaction terms, so a candidate it scores at zero can still carry
// real complementary benefit, and pricing it is exactly what repair is
// for. The burst size is constant so recommendations stay
// parallelism-independent.
func (r *lpRounder) extensionBurst() []int {
	type scored struct {
		pos int
		key float64
	}
	var top []scored
	for pos, c := range r.cands {
		if r.chosen[c.ID] || r.banned[c.ID] {
			continue
		}
		if !r.sp.Fits(r.pages+c.Pages()) || r.conflicts(c) {
			continue
		}
		top = append(top, scored{pos: pos, key: ratio(r.gain(pos), c.Pages())})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].key != top[j].key {
			return top[i].key > top[j].key
		}
		return top[i].pos < top[j].pos
	})
	if len(top) > lpRepairBurst {
		top = top[:lpRepairBurst]
	}
	out := make([]int, len(top))
	for i, s := range top {
		out[i] = s.pos
	}
	return out
}

// rebuildCurQ recomputes the per-query best surrogate benefit from the
// current configuration after members were dropped.
func (r *lpRounder) rebuildCurQ() {
	for q := range r.curQ {
		r.curQ[q] = 0
	}
	for pos, c := range r.cands {
		if !r.chosen[c.ID] {
			continue
		}
		for _, e := range r.rows[pos] {
			if e.Benefit > r.curQ[e.Query] {
				r.curQ[e.Query] = e.Benefit
			}
		}
	}
}
