package search

import (
	"container/heap"
	"context"

	"repro/internal/candidate"
)

// lazyItem is one candidate in the lazy-greedy priority queue: its
// last-known marginal benefit density (an upper bound on the current
// marginal), the position in the standalone density ranking (the
// deterministic tie-break), the round the key was computed against
// (freshness), and the evaluation that produced the key (reused as the
// round's configuration evaluation when the item is selected).
type lazyItem struct {
	c     *Candidate
	key   float64
	pos   int
	round int
	eval  *Eval
}

// lazyHeap is a max-heap over (key desc, pos asc): the same order the
// eager scan resolves ties in — earliest density-rank position wins
// among equal marginals — so popping the heap reproduces the eager
// selection exactly.
type lazyHeap []*lazyItem

func (h lazyHeap) Len() int { return len(h) }
func (h lazyHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key > h[j].key
	}
	return h[i].pos < h[j].pos
}
func (h lazyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *lazyHeap) Push(x any)   { *h = append(*h, x.(*lazyItem)) }
func (h *lazyHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// lazyBurst is how many stale heap tops one refresh step re-evaluates.
// It is the canonical CELF burst of one, and deliberately NOT derived
// from the evaluator's worker count: the cost model is not perfectly
// submodular (index interactions can grow a marginal, so a stale key is
// not always a true upper bound), which makes the selection sensitive
// to how many tops get speculatively refreshed — a runtime-dependent
// burst would make the recommendation depend on the parallelism setting
// (E12 pins that it does not), and any burst beyond the top itself both
// wastes speculative evaluations and surfaces grown marginals the eager
// scan resolves differently. Parallel workers still serve the
// standalone seeding pass and the eager mode's round batches.
const lazyBurst = 1

// lazy is the submodular lazy-evaluation form of the interaction-aware
// greedy heuristic (the CELF trick): keep candidates in a max-heap
// keyed by their last-known marginal benefit density — initialized from
// standalone nets, which upper-bound marginals — and each round
// re-evaluate only popped tops until the freshly re-evaluated top beats
// every stale key below it. When marginals shrink as the configuration
// grows (submodularity), a stale key is an upper bound and the fresh
// top is exactly the argmax the eager prefix scan finds — at a fraction
// of the what-if calls. The real cost model can violate that locally
// (index interactions), so lazy-vs-eager equality is additionally
// pinned empirically by property tests on the shipped workloads.
//
// Two situations fall back to first principles: a candidate that fails
// the budget or redundancy filter is parked for the round and re-tried
// later (the filters depend on the configuration, which both grows and
// shrinks), and a reclamation that shrinks the configuration resets
// every key to its standalone upper bound (marginals may have grown
// back, so last-known marginals are no longer bounds).
func (g greedyHeuristic) lazy(ctx context.Context, sp *Space, tr *tracer,
	alone map[int]*Eval, order []*Candidate) (*Result, error) {
	width := bitsetWidth(sp.Candidates)
	var config []*Candidate
	covered := candidate.NewBitset(width)

	curEval, err := tr.ev.Evaluate(ctx, nil)
	if err != nil {
		if sp.degradable(err) {
			return degrade(sp, tr, nil, nil, err), nil
		}
		return nil, err
	}
	// Round 1 keys are exact, not just bounds: against the empty
	// configuration the marginal IS the standalone net, so the first
	// selection costs no re-evaluations at all.
	h := make(lazyHeap, 0, len(order))
	for i, c := range order {
		h = append(h, &lazyItem{c: c, key: ratio(alone[c.ID].Net, c.Pages()), pos: i, round: 1, eval: alone[c.ID]})
	}
	heap.Init(&h)

	round := 1
	var parked []*lazyItem
	for {
		if sp.leader != nil {
			sp.leader.publish(curEval.Net)
			bound := curEval.Net
			pages := PagesOf(config)
			for _, it := range h {
				if net := alone[it.c.ID].Net; net > 0 && sp.Fits(pages+it.c.Pages()) {
					bound += net
				}
			}
			if bound < sp.leader.best() {
				return abort(sp, tr, config, curEval, bound), nil
			}
		}
		pages := PagesOf(config)
		parked = parked[:0]
		var selected *lazyItem
		for {
			// Collect a burst of stale tops, parking tops that fail the
			// round's budget/redundancy filters along the way.
			var batch []*lazyItem
			for len(h) > 0 && len(batch) < lazyBurst {
				top := h[0]
				if top.key <= 0 {
					// Keys are upper bounds: nothing below the top can
					// have a positive marginal, fresh or not.
					break
				}
				if !sp.Fits(pages+top.c.Pages()) || top.c.Covers().SubsetOf(covered) {
					heap.Pop(&h)
					parked = append(parked, top)
					continue
				}
				if top.round == round {
					break // fresh: no stale key above it can compete
				}
				heap.Pop(&h)
				batch = append(batch, top)
			}
			if len(batch) == 0 {
				if len(h) == 0 || h[0].key <= 0 {
					break // nothing eligible with a positive marginal
				}
				// The collection stopped on a fresh, positive top: the
				// exact argmax of this round's marginals.
				selected = heap.Pop(&h).(*lazyItem)
				break
			}
			cands := make([]*Candidate, len(batch))
			for i, it := range batch {
				cands[i] = it.c
			}
			evals, err := evalEach(ctx, tr.ev, config, cands)
			if err != nil {
				if sp.degradable(err) {
					return degrade(sp, tr, config, curEval, err), nil
				}
				return nil, err
			}
			for i, it := range batch {
				it.key = ratio(evals[i].Net-curEval.Net, it.c.Pages())
				it.round = round
				it.eval = evals[i]
				heap.Push(&h, it)
			}
		}
		// Parked items stay candidates for later rounds: the budget
		// filter can pass again after reclamation shrinks the
		// configuration, and redundancy is re-checked per round.
		for _, it := range parked {
			heap.Push(&h, it)
		}
		if selected == nil {
			break
		}

		config = append(config, selected.c)
		selected.c.Covers().OrInto(covered)
		curEval = selected.eval
		tr.round++
		tr.emit(TraceEvent{Action: ActionAdd, Candidate: selected.c.Key(), Benefit: curEval.Net,
			Pages: PagesOf(config), Covered: covered.Count(), Of: width})

		// Reclaim space held by members no plan uses anymore.
		pruned := config[:0:0]
		for _, c := range config {
			if curEval.Used[c.ID] {
				pruned = append(pruned, c)
			} else {
				tr.emit(TraceEvent{Action: ActionReclaim, Candidate: c.Key(), Note: "unused under current config"})
			}
		}
		if len(pruned) != len(config) {
			config = pruned
			curEval, err = tr.ev.Evaluate(ctx, config)
			if err != nil {
				if sp.degradable(err) {
					// Reclaimed members were unused, so the selection's
					// evaluation still prices this configuration.
					return degrade(sp, tr, config, selected.eval, err), nil
				}
				return nil, err
			}
			covered = candidate.NewBitset(width)
			for _, c := range config {
				c.Covers().OrInto(covered)
			}
			// The configuration shrank, so marginals may have grown:
			// last-known marginals are no longer upper bounds. Standalone
			// nets still are — reset every key to that bound.
			for _, it := range h {
				it.key = ratio(alone[it.c.ID].Net, it.c.Pages())
				it.round = 0
				it.eval = alone[it.c.ID]
			}
			heap.Init(&h)
		}
		round++
	}
	return finish(ctx, sp, tr, config, curEval)
}
