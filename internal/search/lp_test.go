package search_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/search"
	"repro/internal/whatif"
)

// lpPair runs the lp strategy and lazy greedy on the same space and
// returns both results.
func lpPair(t *testing.T, sp *search.Space) (lpRes, lazyRes *search.Result) {
	t.Helper()
	ctx := context.Background()
	lpS, err := search.Lookup("lp")
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := search.Lookup("greedy-heuristic")
	if err != nil {
		t.Fatal(err)
	}
	lpRes, err = lpS.Search(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	lazyRes, err = lazy.Search(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	return lpRes, lazyRes
}

// checkLPResult asserts the lp strategy's structural contract on one
// result: a budget-feasible configuration never worse than empty, with
// the LP stats block filled in and consistent.
func checkLPResult(t *testing.T, sp *search.Space, res *search.Result) {
	t.Helper()
	if res.Pages != search.PagesOf(res.Config) {
		t.Errorf("pages %d != config sum %d", res.Pages, search.PagesOf(res.Config))
	}
	if !sp.Fits(res.Pages) {
		t.Errorf("configuration of %d pages exceeds budget %d", res.Pages, sp.BudgetPages)
	}
	if res.Eval != nil && res.Eval.Net < 0 {
		t.Errorf("lp returned a configuration worse than empty: net %.3f", res.Eval.Net)
	}
	lp := res.Stats.LP
	if lp == nil {
		t.Fatal("lp run without Stats.LP")
	}
	if lp.Items != len(sp.Candidates) {
		t.Errorf("LP solved %d items, space has %d candidates", lp.Items, len(sp.Candidates))
	}
	if lp.Objective > lp.Bound+1e-6*(1+lp.Bound) {
		t.Errorf("LP objective %.6f exceeds its dual bound %.6f", lp.Objective, lp.Bound)
	}
	if res.Eval != nil && lp.RoundedNet != res.Eval.Net {
		t.Errorf("Stats.LP.RoundedNet %.3f != result net %.3f", lp.RoundedNet, res.Eval.Net)
	}
	if len(res.Config) > 0 && res.Stats.Rounds == 0 {
		t.Error("non-empty configuration with zero rounds")
	}
}

// TestLPParityRealWorkloads pins the quality contract on the three
// real workloads at unlimited, half, and quarter budgets: the rounded
// and repaired lp configuration nets at least 95% of lazy greedy's
// while spending no more what-if evaluations.
func TestLPParityRealWorkloads(t *testing.T) {
	ctx := context.Background()
	for name, w := range propertyWorkloads(t) {
		a := testAdvisor(t)
		prep, err := a.Prepare(ctx, w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sp0 := prep.Space()
		lazy, err := search.Lookup("greedy-heuristic")
		if err != nil {
			t.Fatal(err)
		}
		full, err := lazy.Search(ctx, sp0.WithBudget(0))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, budget := range []int64{0, full.Pages / 2, full.Pages / 4} {
			sp := sp0.WithBudget(budget)
			lpRes, lazyRes := lpPair(t, sp)
			checkLPResult(t, sp, lpRes)
			if lpRes.Eval.Net < 0.95*lazyRes.Eval.Net {
				t.Errorf("%s budget %d: lp net %.1f below 95%% of lazy net %.1f",
					name, budget, lpRes.Eval.Net, lazyRes.Eval.Net)
			}
			if lpRes.Stats.Evals > lazyRes.Stats.Evals {
				t.Errorf("%s budget %d: lp spent %d evals, lazy only %d",
					name, budget, lpRes.Stats.Evals, lazyRes.Stats.Evals)
			}
		}
	}
}

// TestLPSyntheticQualityAndEvals is the scale contract: on the
// synthetic spaces — where the surrogate model is exact, so the dual
// bound genuinely upper-bounds every configuration — lp must match
// lazy greedy's net within 5% while spending at least 5x fewer what-if
// evaluations.
func TestLPSyntheticQualityAndEvals(t *testing.T) {
	for _, n := range []int{1000, 10000} {
		sp := search.NewSyntheticSpace(n, 42)
		lpRes, lazyRes := lpPair(t, sp)
		checkLPResult(t, sp, lpRes)
		if lpRes.Eval.Net < 0.95*lazyRes.Eval.Net {
			t.Errorf("n=%d: lp net %.1f below 95%% of lazy net %.1f", n, lpRes.Eval.Net, lazyRes.Eval.Net)
		}
		if lpRes.Stats.Evals*5 > lazyRes.Stats.Evals {
			t.Errorf("n=%d: lp spent %d evals, not a 5x reduction over lazy's %d",
				n, lpRes.Stats.Evals, lazyRes.Stats.Evals)
		}
		// The surrogate equals the true synthetic net, so the dual bound
		// certifies both strategies' results.
		bound := lpRes.Stats.LP.Bound
		slack := 1e-6 * (1 + bound)
		if lpRes.Eval.Net > bound+slack || lazyRes.Eval.Net > bound+slack {
			t.Errorf("n=%d: dual bound %.1f below an achieved net (lp %.1f, lazy %.1f)",
				n, bound, lpRes.Eval.Net, lazyRes.Eval.Net)
		}
	}
}

// TestLPExactMatchPinned pins an exact agreement: on the n=1000
// seed-42 synthetic space the rounded lp configuration is identical to
// lazy greedy's, member for member.
func TestLPExactMatchPinned(t *testing.T) {
	sp := search.NewSyntheticSpace(1000, 42)
	lpRes, lazyRes := lpPair(t, sp)
	if configKey(lpRes) != configKey(lazyRes) {
		t.Errorf("lp and lazy configurations differ on the pinned space:\nlp:   %s\nlazy: %s",
			configKey(lpRes), configKey(lazyRes))
	}
	if lpRes.Eval.Net != lazyRes.Eval.Net {
		t.Errorf("nets differ on identical configurations: lp %.6f vs lazy %.6f",
			lpRes.Eval.Net, lazyRes.Eval.Net)
	}
}

// TestLPPermutationStable mirrors the lazy/eager permutation test: the
// LP item order, rounding tie-breaks, and repair shortlist are all
// content-keyed, so shuffling the candidate slice must not change the
// recommendation — and repeated runs on one space must agree exactly.
func TestLPPermutationStable(t *testing.T) {
	ctx := context.Background()
	sp := search.NewSyntheticSpace(2000, 7)
	lpS, err := search.Lookup("lp")
	if err != nil {
		t.Fatal(err)
	}
	first, err := lpS.Search(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	again, err := lpS.Search(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if configKey(first) != configKey(again) || first.Eval.Net != again.Eval.Net {
		t.Error("repeated lp runs on one space disagree")
	}
	want := configKey(first)
	orig := make(map[int]int, len(sp.Candidates)) // candidate ID -> row
	for i, c := range sp.Candidates {
		orig[c.ID] = i
	}
	for _, seed := range []int64{1, 2, 3} {
		perm := sp.WithBudget(sp.BudgetPages)
		cands := append([]*search.Candidate(nil), sp.Candidates...)
		rand.New(rand.NewSource(seed)).Shuffle(len(cands), func(i, j int) {
			cands[i], cands[j] = cands[j], cands[i]
		})
		perm.Candidates = cands
		// Space.Benefits rows align with Space.Candidates, so a shuffled
		// copy must present a matching row permutation — reusing the
		// original closure unchanged would violate the producer contract.
		perm.Benefits = func(ctx context.Context) (*whatif.BenefitMatrix, error) {
			m, err := sp.Benefits(ctx)
			if err != nil {
				return nil, err
			}
			pm := &whatif.BenefitMatrix{
				NumQueries: m.NumQueries,
				Rows:       make([][]whatif.BenefitEntry, len(cands)),
				Private:    make([]float64, len(cands)),
				Update:     make([]float64, len(cands)),
			}
			for i, c := range cands {
				ci := orig[c.ID]
				pm.Rows[i] = m.Rows[ci]
				pm.Private[i] = m.PrivateBenefit(ci)
				pm.Update[i] = m.UpdateCost(ci)
			}
			return pm, nil
		}
		res, err := lpS.Search(ctx, perm)
		if err != nil {
			t.Fatal(err)
		}
		if configKey(res) != want {
			t.Errorf("seed %d: permuting the candidate order changed the lp recommendation", seed)
		}
	}
}

// TestLPBenefitsNilFallback covers the degenerate path: with no
// Benefits hook the strategy prices every candidate standalone once,
// solves the modular-only relaxation (no per-query rows), and still
// returns a budget-feasible configuration no worse than empty.
func TestLPBenefitsNilFallback(t *testing.T) {
	ctx := context.Background()
	sp := search.NewSyntheticSpace(400, 7)
	sp = sp.WithBudget(sp.BudgetPages)
	sp.Benefits = nil
	lpS, err := search.Lookup("lp")
	if err != nil {
		t.Fatal(err)
	}
	res, err := lpS.Search(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	checkLPResult(t, sp, res)
	if res.Stats.LP.NonZero != 0 {
		t.Errorf("fallback matrix should be modular-only, got %d per-query cells", res.Stats.LP.NonZero)
	}
	if res.Stats.Evals < int64(len(sp.Candidates)) {
		t.Errorf("fallback must price every candidate standalone: %d evals for %d candidates",
			res.Stats.Evals, len(sp.Candidates))
	}
	if len(res.Config) == 0 {
		t.Error("fallback lp chose nothing on a space with clear winners")
	}
}

// TestLPAliases pins the accepted spellings.
func TestLPAliases(t *testing.T) {
	for _, name := range []string{"lp", "cophy", "relax"} {
		s, err := search.Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != "lp" {
			t.Fatalf("%s resolved to %s", name, s.Name())
		}
	}
}
