package search

import (
	"context"

	"repro/internal/candidate"
)

func init() {
	Register(greedyBasic{})
	Register(greedyHeuristic{})
}

// greedyBasic is the plain greedy 0/1-knapsack approximation of the
// relational DB2 advisor [8], kept as the baseline the paper compares
// its strategies against: rank candidates once by standalone net
// benefit per page and add while the budget holds. No redundancy
// detection, no re-evaluation — exactly the weaknesses the paper's
// heuristics address.
type greedyBasic struct{}

func (greedyBasic) Name() string { return "greedy-basic" }

func (g greedyBasic) Search(ctx context.Context, sp *Space) (*Result, error) {
	tr := newTracer(g.Name(), sp)
	alone, err := standalone(ctx, tr.ev, sp.Candidates)
	if err != nil {
		if sp.degradable(err) {
			return degrade(sp, tr, nil, nil, err), nil
		}
		return nil, err
	}
	order := rankByDensity(sp.Candidates, alone)
	var config []*Candidate
	var pages int64
	for _, c := range order {
		if alone[c.ID].Net <= 0 {
			break
		}
		if !sp.Fits(pages + c.Pages()) {
			tr.emit(TraceEvent{Action: ActionSkip, Candidate: c.Key(), Benefit: alone[c.ID].Net, Note: "over budget"})
			continue
		}
		config = append(config, c)
		pages += c.Pages()
		tr.round++
		tr.emit(TraceEvent{Action: ActionAdd, Candidate: c.Key(), Benefit: alone[c.ID].Net, Pages: pages})
	}
	return finish(ctx, sp, tr, config, nil)
}

// greedyHeuristic is the paper's greedy search with heuristics:
//
//   - redundancy bitmap: a candidate whose covered workload patterns add
//     nothing to the patterns already covered is skipped outright;
//   - interaction-aware marginal benefit: each round re-evaluates the
//     configuration with the candidate included (Evaluate Indexes), so
//     overlapping benefits are not double-counted;
//   - reclamation: after each addition, configuration members that the
//     optimizer no longer uses for any workload query are dropped and
//     their space reclaimed.
//
// The marginal evaluation runs in one of two modes that choose
// identical configurations: the default lazy-greedy heap (lazy.go),
// which re-evaluates only candidates whose last-known marginal still
// competes for the top, and the original eager prefix scan, kept
// behind Space.EagerGreedy as the reference baseline.
type greedyHeuristic struct{}

func (greedyHeuristic) Name() string { return "greedy-heuristic" }

func (g greedyHeuristic) Search(ctx context.Context, sp *Space) (*Result, error) {
	tr := newTracer(g.Name(), sp)

	// Candidates with no standalone benefit are dropped up front. A
	// candidate useless alone can in principle gain value inside an
	// index-ANDed plan, but its standalone benefit is a tight upper
	// bound in practice and evaluating every (config, candidate) pair
	// without it would be quadratic in optimizer calls.
	alone, err := standalone(ctx, tr.ev, sp.Candidates)
	if err != nil {
		if sp.degradable(err) {
			return degrade(sp, tr, nil, nil, err), nil
		}
		return nil, err
	}
	var positive []*Candidate
	for _, c := range sp.Candidates {
		if alone[c.ID].Net > 0 {
			positive = append(positive, c)
		}
	}
	// Consider high-density candidates first so the upper-bound pruning
	// fires early (eager cutoff / lazy heap order).
	remaining := rankByDensity(positive, alone)

	// The lazy heap only pays off when marginals are re-evaluated; the
	// standalone-trusting mode does no re-evaluation, so it always runs
	// the plain scan.
	if sp.InteractionAware && !sp.EagerGreedy {
		return g.lazy(ctx, sp, tr, alone, remaining)
	}
	return g.eager(ctx, sp, tr, alone, remaining)
}

// eager is the original marginal-evaluation loop: every round scans the
// density-ordered eligible prefix, re-evaluating config+{c} for each
// candidate until the standalone-density upper bound says no later
// candidate can beat the best found.
func (g greedyHeuristic) eager(ctx context.Context, sp *Space, tr *tracer,
	alone map[int]*Eval, remaining []*Candidate) (*Result, error) {
	width := bitsetWidth(sp.Candidates)
	var config []*Candidate
	covered := candidate.NewBitset(width)

	curEval, err := tr.ev.Evaluate(ctx, nil)
	if err != nil {
		if sp.degradable(err) {
			return degrade(sp, tr, nil, nil, err), nil
		}
		return nil, err
	}
	for {
		if sp.leader != nil {
			sp.leader.publish(curEval.Net)
			if bound := greedyUpperBound(sp, curEval.Net, PagesOf(config), remaining, alone); bound < sp.leader.best() {
				return abort(sp, tr, config, curEval, bound), nil
			}
		}
		pages := PagesOf(config)
		// Eligible candidates, in standalone-density order (inherited
		// from the sort above): budget and redundancy filters first.
		var elig []*Candidate
		for _, c := range remaining {
			if !sp.Fits(pages + c.Pages()) {
				continue
			}
			// Redundancy heuristic: covered patterns must grow.
			if c.Covers().SubsetOf(covered) {
				continue
			}
			elig = append(elig, c)
		}
		var best *Candidate
		var bestEval *Eval
		bestRatio := 0.0
		if sp.InteractionAware {
			// Marginal re-evaluation, parallelized in worker-sized
			// chunks down the density-ordered prefix. Upper-bound
			// pruning applies exactly as in the sequential algorithm —
			// the marginal benefit of c cannot meaningfully exceed its
			// standalone benefit, so the scan stops at the first
			// candidate whose standalone density is at or below the
			// best found ratio. Chunk members past the cutoff were
			// evaluated speculatively; their results are discarded, so
			// the recommendation is independent of the worker count.
			chunk := tr.ev.Workers() // always >= 1
			stopped := false
			for start := 0; start < len(elig) && !stopped; start += chunk {
				// Free prune at the batch boundary: if the cutoff
				// already holds for the batch's densest candidate, no
				// member can win — skip the speculative evaluations.
				if best != nil && ratio(alone[elig[start].ID].Net, elig[start].Pages()) <= bestRatio {
					break
				}
				end := start + chunk
				if end > len(elig) {
					end = len(elig)
				}
				batch := elig[start:end]
				evals, err := evalEach(ctx, tr.ev, config, batch)
				if err != nil {
					if sp.degradable(err) {
						return degrade(sp, tr, config, curEval, err), nil
					}
					return nil, err
				}
				for i, c := range batch {
					if best != nil && ratio(alone[c.ID].Net, c.Pages()) <= bestRatio {
						stopped = true
						break
					}
					marg := evals[i].Net - curEval.Net
					if r := ratio(marg, c.Pages()); marg > 0 && (best == nil || r > bestRatio) {
						best, bestEval, bestRatio = c, evals[i], r
					}
				}
			}
		} else {
			for _, c := range elig {
				if r := ratio(alone[c.ID].Net, c.Pages()); alone[c.ID].Net > 0 && (best == nil || r > bestRatio) {
					best, bestRatio = c, r
				}
			}
		}
		if best == nil {
			break
		}
		config = append(config, best)
		best.Covers().OrInto(covered)
		if bestEval == nil {
			bestEval, err = tr.ev.Evaluate(ctx, config)
			if err != nil {
				if sp.degradable(err) {
					// The newest member was never evaluated; degrade to
					// the configuration the last evaluation priced.
					return degrade(sp, tr, config[:len(config)-1], curEval, err), nil
				}
				return nil, err
			}
		}
		curEval = bestEval
		tr.round++
		tr.emit(TraceEvent{Action: ActionAdd, Candidate: best.Key(), Benefit: curEval.Net,
			Pages: PagesOf(config), Covered: covered.Count(), Of: width})

		// Reclaim space held by members no plan uses anymore.
		pruned := config[:0:0]
		for _, c := range config {
			if curEval.Used[c.ID] {
				pruned = append(pruned, c)
			} else {
				tr.emit(TraceEvent{Action: ActionReclaim, Candidate: c.Key(), Note: "unused under current config"})
			}
		}
		if len(pruned) != len(config) {
			config = pruned
			curEval, err = tr.ev.Evaluate(ctx, config)
			if err != nil {
				if sp.degradable(err) {
					// Reclaimed members were unused, so the pre-prune
					// evaluation still prices this configuration.
					return degrade(sp, tr, config, bestEval, err), nil
				}
				return nil, err
			}
			covered = candidate.NewBitset(width)
			for _, c := range config {
				c.Covers().OrInto(covered)
			}
		}
		// Remove the chosen candidate from further consideration.
		rest := remaining[:0:0]
		for _, c := range remaining {
			if c != best {
				rest = append(rest, c)
			}
		}
		remaining = rest
	}
	return finish(ctx, sp, tr, config, curEval)
}

// greedyUpperBound is a greedy member's optimistic remaining net: the
// current configuration's net plus every positive standalone net of a
// candidate that still fits the budget on its own. Marginal benefits
// cannot meaningfully exceed standalone benefits, so a member whose
// bound trails the race leader cannot win and may abort.
func greedyUpperBound(sp *Space, curNet float64, pages int64, remaining []*Candidate, alone map[int]*Eval) float64 {
	bound := curNet
	for _, c := range remaining {
		if net := alone[c.ID].Net; net > 0 && sp.Fits(pages+c.Pages()) {
			bound += net
		}
	}
	return bound
}
