package search_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/search"
)

// lazyEagerPair runs greedy-heuristic over the space in both marginal
// modes and returns (lazy, eager).
func lazyEagerPair(t *testing.T, sp *search.Space) (*search.Result, *search.Result) {
	t.Helper()
	strat, err := search.Lookup("greedy-heuristic")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	lazySp := sp.WithBudget(sp.BudgetPages)
	lazySp.EagerGreedy = false
	lazy, err := strat.Search(ctx, lazySp)
	if err != nil {
		t.Fatal(err)
	}
	eagerSp := sp.WithBudget(sp.BudgetPages)
	eagerSp.EagerGreedy = true
	eager, err := strat.Search(ctx, eagerSp)
	if err != nil {
		t.Fatal(err)
	}
	return lazy, eager
}

// requireSameChoice asserts the two results picked the identical
// configuration with identical evaluations.
func requireSameChoice(t *testing.T, label string, lazy, eager *search.Result) {
	t.Helper()
	if configKey(lazy) != configKey(eager) {
		t.Errorf("%s: lazy and eager chose different configurations:\n%s\nvs\n%s",
			label, configKey(lazy), configKey(eager))
	}
	if lazy.Eval.Net != eager.Eval.Net {
		t.Errorf("%s: lazy net %.6f != eager net %.6f", label, lazy.Eval.Net, eager.Eval.Net)
	}
	if lazy.Pages != eager.Pages {
		t.Errorf("%s: lazy pages %d != eager pages %d", label, lazy.Pages, eager.Pages)
	}
}

// TestLazyMatchesEagerOnWorkloads pins the tentpole property on the
// three real workloads: the lazy-greedy heap and the original eager
// prefix scan choose byte-identical configurations, and lazy never
// spends more what-if calls than eager.
func TestLazyMatchesEagerOnWorkloads(t *testing.T) {
	ctx := context.Background()
	for name, w := range propertyWorkloads(t) {
		t.Run(name, func(t *testing.T) {
			a := testAdvisor(t)
			prep, err := a.Prepare(ctx, w)
			if err != nil {
				t.Fatal(err)
			}
			full, err := prep.RecommendWith(ctx, core.SearchGreedyHeuristic, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, frac := range []int64{1, 2, 4} {
				budget := full.TotalPages / frac
				if budget < 1 {
					budget = 1
				}
				lazy, eager := lazyEagerPair(t, prep.Space().WithBudget(budget))
				requireSameChoice(t, name, lazy, eager)
				if lazy.Stats.Evals > eager.Stats.Evals {
					t.Errorf("%s budget %d: lazy spent %d evals, eager only %d",
						name, budget, lazy.Stats.Evals, eager.Stats.Evals)
				}
			}
		})
	}
}

// TestLazyMatchesEagerOnSyntheticPermuted runs both modes over the
// synthetic space — where interaction is heavy enough that the lazy
// heap actually skips most re-evaluations — and under candidate-order
// permutations: the ranking is content-based, so input order must not
// change the recommendation.
func TestLazyMatchesEagerOnSyntheticPermuted(t *testing.T) {
	sp := search.NewSyntheticSpace(2000, 7)
	lazy, eager := lazyEagerPair(t, sp)
	requireSameChoice(t, "synthetic", lazy, eager)
	if len(lazy.Config) == 0 {
		t.Fatal("synthetic search chose nothing")
	}
	if lazy.Stats.Evals*2 > eager.Stats.Evals {
		t.Errorf("lazy spent %d evals vs eager %d: expected at least a 2x reduction on the synthetic space",
			lazy.Stats.Evals, eager.Stats.Evals)
	}
	want := configKey(lazy)
	for _, seed := range []int64{1, 2, 3} {
		perm := sp.WithBudget(sp.BudgetPages)
		cands := append([]*search.Candidate(nil), sp.Candidates...)
		rand.New(rand.NewSource(seed)).Shuffle(len(cands), func(i, j int) {
			cands[i], cands[j] = cands[j], cands[i]
		})
		perm.Candidates = cands
		pl, pe := lazyEagerPair(t, perm)
		requireSameChoice(t, "permuted", pl, pe)
		if configKey(pl) != want {
			t.Errorf("seed %d: permuting the candidate order changed the recommendation", seed)
		}
	}
}

// TestSyntheticSpaceDeterministic pins the generator: same (n, seed)
// means identical candidates and identical search outcomes, both across
// builds and across repeated searches of one space.
func TestSyntheticSpaceDeterministic(t *testing.T) {
	a := search.NewSyntheticSpace(500, 11)
	b := search.NewSyntheticSpace(500, 11)
	if len(a.Candidates) != len(b.Candidates) {
		t.Fatalf("candidate counts differ: %d vs %d", len(a.Candidates), len(b.Candidates))
	}
	for i := range a.Candidates {
		ca, cb := a.Candidates[i], b.Candidates[i]
		if ca.Key() != cb.Key() || ca.Pages() != cb.Pages() || ca.Basic != cb.Basic {
			t.Fatalf("candidate %d differs: %v vs %v", i, ca, cb)
		}
	}
	if len(a.DAG.Roots) == 0 || len(a.DAG.Roots) != len(b.DAG.Roots) {
		t.Fatalf("root counts differ: %d vs %d", len(a.DAG.Roots), len(b.DAG.Roots))
	}
	strat, err := search.Lookup("greedy-heuristic")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ra, err := strat.Search(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := strat.Search(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	ra2, err := strat.Search(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*search.Result{rb, ra2} {
		if configKey(r) != configKey(ra) || r.Eval.Net != ra.Eval.Net || r.Stats.Evals != ra.Stats.Evals {
			t.Fatalf("synthetic searches diverged: %q/%.3f/%d vs %q/%.3f/%d",
				configKey(r), r.Eval.Net, r.Stats.Evals, configKey(ra), ra.Eval.Net, ra.Stats.Evals)
		}
	}
}

// TestCostBoundedRace checks the opt-in racing mode on the synthetic
// space: the winner is never an aborted member, the result matches the
// best surviving member, and the chosen configuration is the same one
// the plain (abort-free) race picks — aborting losers must not change
// what wins.
func TestCostBoundedRace(t *testing.T) {
	sp := search.NewSyntheticSpace(5000, 3)
	strat, err := search.Lookup("race")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	plain, err := strat.Search(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	bounded := sp.WithBudget(sp.BudgetPages)
	bounded.RaceCostBound = true
	res, err := strat.Search(ctx, bounded)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Winner == "" {
		t.Fatal("cost-bounded race recorded no winner")
	}
	bestSurviving := 0.0
	haveSurvivor := false
	for _, m := range res.Members {
		if m.Aborted != m.Stats.Aborted {
			t.Errorf("%s: result Aborted=%v but stats Aborted=%v", m.Strategy, m.Aborted, m.Stats.Aborted)
		}
		if m.Aborted {
			if m.Strategy == res.Stats.Winner {
				t.Errorf("aborted member %q won the race", m.Strategy)
			}
			continue
		}
		haveSurvivor = true
		if m.Eval.Net > bestSurviving {
			bestSurviving = m.Eval.Net
		}
	}
	if !haveSurvivor {
		t.Fatal("cost-bounded race has no surviving member")
	}
	if res.Eval.Net+1e-9 < bestSurviving {
		t.Errorf("cost-bounded race net %.3f < best surviving member %.3f", res.Eval.Net, bestSurviving)
	}
	if configKey(res) != configKey(plain) {
		t.Errorf("cost-bounded race chose a different configuration than the plain race:\n%s\nvs\n%s",
			configKey(res), configKey(plain))
	}
	if res.Eval.Net != plain.Eval.Net {
		t.Errorf("cost-bounded race net %.6f != plain race net %.6f", res.Eval.Net, plain.Eval.Net)
	}
}

// TestTraceCapTruncates checks the per-strategy trace buffer cap: the
// buffer ends with the truncation marker, Stats.Truncated counts the
// dropped events, and a streaming observer still receives the full
// stream.
func TestTraceCapTruncates(t *testing.T) {
	sp := search.NewSyntheticSpace(2000, 5)
	strat, err := search.Lookup("topdown")
	if err != nil {
		t.Fatal(err)
	}
	const cap = 16
	capped := sp.WithBudget(sp.BudgetPages)
	capped.TraceCap = cap
	var observed int
	capped.Observer = func(search.TraceEvent) { observed++ }
	res, err := strat.Search(context.Background(), capped)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Truncated == 0 {
		t.Fatalf("topdown over 2000 candidates emitted only %d events; expected the %d-event cap to truncate",
			len(res.Trace), cap)
	}
	if len(res.Trace) != cap+1 {
		t.Fatalf("capped trace holds %d events, want %d (cap) + 1 marker", len(res.Trace), cap)
	}
	last := res.Trace[len(res.Trace)-1]
	if last.Action != search.ActionTruncated {
		t.Errorf("capped trace ends with %q, want %q", last.Action, search.ActionTruncated)
	}
	if observed != cap+res.Stats.Truncated {
		t.Errorf("observer saw %d events, want the full stream of %d", observed, cap+res.Stats.Truncated)
	}

	// Unlimited cap: the same search keeps everything.
	unlimited := sp.WithBudget(sp.BudgetPages)
	unlimited.TraceCap = -1
	res2, err := strat.Search(context.Background(), unlimited)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Truncated != 0 {
		t.Errorf("unlimited trace reported %d truncated events", res2.Stats.Truncated)
	}
	if len(res2.Trace) != cap+res.Stats.Truncated {
		t.Errorf("unlimited trace holds %d events, capped run emitted %d", len(res2.Trace), cap+res.Stats.Truncated)
	}
}
