package search

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Default is the strategy used when no name is given: the paper's
// primary algorithm.
const Default = "greedy-heuristic"

var (
	regMu    sync.RWMutex
	registry = map[string]Strategy{}
	// aliases map accepted spellings to canonical registry names.
	aliases = map[string]string{
		"greedy":    "greedy-heuristic",
		"heuristic": "greedy-heuristic",
		"basic":     "greedy-basic",
		"knapsack":  "greedy-basic",
		"top-down":  "topdown",
		"portfolio": "race",
		"cophy":     "lp",
		"relax":     "lp",
	}
)

// Register adds a strategy under its canonical name. It panics on a
// duplicate or empty name — registration is an init-time programming
// act, not a runtime input.
func Register(s Strategy) {
	name := s.Name()
	if name == "" {
		panic("search: Register with empty strategy name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("search: strategy %q registered twice", name))
	}
	registry[name] = s
}

// Unregister removes a registered strategy by canonical name, reporting
// whether it was present. It exists for tests and for external plugins
// that install temporary strategies; the built-in strategies are never
// unregistered by the advisor itself.
func Unregister(name string) bool {
	regMu.Lock()
	defer regMu.Unlock()
	_, ok := registry[name]
	delete(registry, name)
	return ok
}

// Names returns the sorted canonical names of every registered
// strategy.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Canonical resolves a strategy name or alias to its canonical
// registered name. The empty string resolves to Default. Unknown names
// fail with an error that enumerates the valid strategies.
func Canonical(name string) (string, error) {
	if name == "" {
		name = Default
	}
	if c, ok := aliases[name]; ok {
		name = c
	}
	regMu.RLock()
	_, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return "", fmt.Errorf("search: unknown strategy %q (valid: %s)", name, strings.Join(Names(), ", "))
	}
	return name, nil
}

// Lookup resolves a strategy by name or alias (empty = Default). The
// error of an unknown name enumerates the valid strategies.
func Lookup(name string) (Strategy, error) {
	canonical, err := Canonical(name)
	if err != nil {
		return nil, err
	}
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[canonical], nil
}
