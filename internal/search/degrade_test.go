package search_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/search"
	"repro/internal/whatif"
)

// outageEval wraps a real evaluator and simulates a cost-backend outage:
// after failAfter successful evaluations, every further Evaluate fails
// with an error wrapping whatif.ErrCircuitOpen — exactly what the
// resilience middleware surfaces once its breaker opens.
type outageEval struct {
	inner     search.Evaluator
	failAfter int64
	calls     atomic.Int64
	fired     atomic.Bool
}

func (o *outageEval) Evaluate(ctx context.Context, cfg []*search.Candidate) (*search.Eval, error) {
	if o.calls.Add(1) > o.failAfter {
		o.fired.Store(true)
		return nil, fmt.Errorf("atom Q1: %w", whatif.ErrCircuitOpen)
	}
	return o.inner.Evaluate(ctx, cfg)
}

func (o *outageEval) Workers() int { return o.inner.Workers() }

// degradedSpace is the paper workload's prepared space with the cost
// backend cut off after failAfter evaluations, in anytime mode.
func degradedSpace(t *testing.T, failAfter int64, anytime bool) *search.Space {
	t.Helper()
	a := testAdvisor(t)
	w := propertyWorkloads(t)["paper"]
	prep, err := a.Prepare(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	sp := prep.Space().WithBudget(0)
	sp.Anytime = anytime
	sp.Eval = &outageEval{inner: sp.Eval, failAfter: failAfter}
	return sp
}

// TestStrategiesDegradeOnOpenBreaker pins graceful degradation: when
// the costing circuit breaker opens mid-search in anytime mode, every
// strategy returns its best-so-far configuration flagged Degraded with
// a terminal "degraded" trace event, instead of failing — and without
// anytime mode, the same outage is a hard error.
func TestStrategiesDegradeOnOpenBreaker(t *testing.T) {
	for _, name := range search.Names() {
		if name == "race" {
			continue // raced below, over a shared outage budget
		}
		for _, failAfter := range []int64{0, 1, 25} {
			t.Run(fmt.Sprintf("%s/failAfter=%d", name, failAfter), func(t *testing.T) {
				strat, err := search.Lookup(name)
				if err != nil {
					t.Fatal(err)
				}
				sp := degradedSpace(t, failAfter, true)
				res, err := strat.Search(context.Background(), sp)
				if err != nil {
					t.Fatalf("anytime search failed during outage: %v", err)
				}
				if !sp.Eval.(*outageEval).fired.Load() {
					// The strategy needed fewer evaluations than the
					// outage budget and finished healthy; nothing to
					// degrade.
					if res.Degraded {
						t.Fatal("degraded without any failed evaluation")
					}
					return
				}
				if !res.Degraded || !res.Stats.Degraded {
					t.Fatalf("Degraded=%v Stats.Degraded=%v, want both true", res.Degraded, res.Stats.Degraded)
				}
				last := res.Trace[len(res.Trace)-1]
				if last.Action != search.ActionDegraded {
					t.Errorf("last trace event is %q, want %q", last.Action, search.ActionDegraded)
				}
				// The best-so-far claim must be priced: a non-zero net
				// requires a configuration it was measured on.
				if res.Eval.Net != 0 && len(res.Config) == 0 {
					t.Errorf("degraded result claims net %.1f with an empty configuration", res.Eval.Net)
				}
			})
		}
	}

	t.Run("without anytime the outage is an error", func(t *testing.T) {
		for _, name := range search.Names() {
			strat, err := search.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			sp := degradedSpace(t, 1, false)
			_, err = strat.Search(context.Background(), sp)
			if !errors.Is(err, whatif.ErrCircuitOpen) {
				t.Errorf("%s: got %v, want ErrCircuitOpen", name, err)
			}
		}
	})
}

// degradedMember is a registered test strategy that always returns a
// degraded empty result, standing in for a member cut off by an open
// breaker while other members finished from cache.
type degradedMember struct{}

func (degradedMember) Name() string { return "test-degraded" }

func (degradedMember) Search(ctx context.Context, sp *search.Space) (*search.Result, error) {
	return &search.Result{
		Strategy: "test-degraded",
		Eval:     &search.Eval{},
		Degraded: true,
		Stats:    search.Stats{Strategy: "test-degraded", Degraded: true},
	}, nil
}

// TestRaceDegradedTiers pins the portfolio's winner tiers: a fully
// evaluated member always beats a degraded one regardless of nets, and
// only when every member degraded is the race result itself degraded.
func TestRaceDegradedTiers(t *testing.T) {
	race, err := search.Lookup("race")
	if err != nil {
		t.Fatal(err)
	}

	t.Run("complete member beats degraded member", func(t *testing.T) {
		search.Register(degradedMember{})
		defer search.Unregister("test-degraded")
		sp := degradedSpace(t, 1<<40, true) // healthy backend
		res, err := race.Search(context.Background(), sp)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded {
			t.Fatal("race degraded although complete members finished")
		}
		if res.Stats.Winner == "test-degraded" {
			t.Fatal("degraded member won over fully evaluated members")
		}
		found := false
		for _, m := range res.Members {
			if m.Strategy == "test-degraded" && m.Degraded {
				found = true
			}
		}
		if !found {
			t.Error("degraded member missing from Members")
		}
	})

	t.Run("all members degraded degrades the race", func(t *testing.T) {
		// The outage hits before any member's first evaluation, so every
		// member degrades immediately.
		sp := degradedSpace(t, 0, true)
		res, err := race.Search(context.Background(), sp)
		if err != nil {
			t.Fatalf("anytime race failed during outage: %v", err)
		}
		if !res.Degraded || !res.Stats.Degraded {
			t.Fatalf("Degraded=%v Stats.Degraded=%v, want both true", res.Degraded, res.Stats.Degraded)
		}
	})
}
