package search

import (
	"context"
	"fmt"
)

func init() {
	Register(topDown{})
}

// topDown is the paper's second algorithm: start from the DAG roots
// (the most general candidates, maximal benefit but typically over
// budget) and repeatedly replace the member with the worst benefit
// density by its DAG children, until the configuration fits. Children
// that bring no workload benefit are not added. If an over-budget member
// has no children, it is dropped.
type topDown struct{}

func (topDown) Name() string { return "topdown" }

func (t topDown) Search(ctx context.Context, sp *Space) (*Result, error) {
	if sp.DAG == nil {
		return nil, fmt.Errorf("search: topdown needs a containment DAG (Space.DAG is nil)")
	}
	tr := newTracer(t.Name(), sp)
	alone, err := standalone(ctx, tr.ev, sp.DAG.Nodes)
	if err != nil {
		if sp.degradable(err) {
			return degrade(sp, tr, nil, nil, err), nil
		}
		return nil, err
	}
	// Start configuration: all roots with positive standalone benefit.
	var config []*Candidate
	for _, r := range sp.DAG.Roots {
		if alone[r.ID].Net > 0 {
			config = append(config, r)
		}
	}
	tr.emit(TraceEvent{Action: ActionStart, Pages: PagesOf(config),
		Note: fmt.Sprintf("%d DAG roots", len(config))})

	inConfig := map[int]bool{}
	for _, c := range config {
		inConfig[c.ID] = true
	}
	for !sp.Fits(PagesOf(config)) && len(config) > 0 {
		if sp.leader != nil {
			// Optimistic bound on the descent's final net: the sum of
			// the current members' positive standalone nets (benefits
			// at most add up; every further descent step only drops or
			// specializes members). Trailing the leader means the
			// remaining rounds cannot produce a winner.
			bound := 0.0
			for _, c := range config {
				if net := alone[c.ID].Net; net > 0 {
					bound += net
				}
			}
			if bound < sp.leader.best() {
				return abort(sp, tr, nil, &Eval{}, bound), nil
			}
		}
		// Victim: the member with the worst standalone net benefit per
		// page (general, large, weakly used indexes go first).
		vi := 0
		worst := ratio(alone[config[0].ID].Net, config[0].Pages())
		for i, c := range config[1:] {
			if r := ratio(alone[c.ID].Net, c.Pages()); r < worst {
				worst, vi = r, i+1
			}
		}
		victim := config[vi]
		config = append(config[:vi], config[vi+1:]...)
		delete(inConfig, victim.ID)

		added := 0
		for _, ch := range victim.Children {
			if inConfig[ch.ID] || alone[ch.ID].Net <= 0 {
				continue
			}
			config = append(config, ch)
			inConfig[ch.ID] = true
			added++
		}
		tr.round++
		tr.emit(TraceEvent{Action: ActionReplace, Candidate: victim.Key(), Pages: PagesOf(config),
			Note: fmt.Sprintf("%d children added", added)})
	}

	// The children sum can still exceed the victim's size; the Fits
	// loop handles that by further descents. Finally drop any members
	// the optimizer does not use.
	var lastEval *Eval
	if len(config) > 0 {
		full, err := tr.ev.Evaluate(ctx, config)
		if err != nil {
			if sp.degradable(err) {
				// The descent itself never priced the configuration;
				// degrade to it with the zero evaluation rather than
				// overclaiming a benefit nothing measured.
				return degrade(sp, tr, config, nil, err), nil
			}
			return nil, err
		}
		lastEval = full
		kept := config[:0:0]
		for _, c := range config {
			if full.Used[c.ID] {
				kept = append(kept, c)
			} else {
				tr.emit(TraceEvent{Action: ActionDrop, Candidate: c.Key(), Note: "unused"})
			}
		}
		config = kept
	}
	return finish(ctx, sp, tr, config, lastEval)
}
