package search_test

import (
	"context"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/search"
	"repro/internal/workload"
)

// propertyWorkloads returns the three standard workloads over one
// shared small environment.
func propertyWorkloads(t testing.TB) map[string]*workload.Workload {
	t.Helper()
	env, err := experiments.BuildEnv(experiments.Small)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*workload.Workload{
		"xmark": env.XMarkWorkload,
		"tpox":  env.TPoXWorkload,
		"paper": env.PaperWorkload,
	}
}

func testAdvisor(t testing.TB) *core.Advisor {
	t.Helper()
	env, err := experiments.BuildEnv(experiments.Small)
	if err != nil {
		t.Fatal(err)
	}
	return core.New(env.Cat, core.DefaultOptions())
}

// configKey fingerprints a result's configuration, order-insensitive.
func configKey(res *search.Result) string {
	keys := make([]string, len(res.Config))
	for i, c := range res.Config {
		keys[i] = c.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// TestStrategyProperties is the cross-strategy property suite on the
// xmark/tpox/paper workloads: every strategy's result fits the budget
// and is never worse than the empty configuration, the race portfolio
// is never worse than its best member, and racing in parallel returns
// exactly the per-member results of running each strategy serially.
func TestStrategyProperties(t *testing.T) {
	ctx := context.Background()
	for name, w := range propertyWorkloads(t) {
		t.Run(name, func(t *testing.T) {
			a := testAdvisor(t)
			prep, err := a.Prepare(ctx, w)
			if err != nil {
				t.Fatal(err)
			}
			// Budget at half the unconstrained heuristic configuration,
			// so the budget constraint actually binds.
			full, err := prep.RecommendWith(ctx, core.SearchGreedyHeuristic, 0)
			if err != nil {
				t.Fatal(err)
			}
			budget := full.TotalPages / 2
			if budget < 1 {
				budget = 1
			}
			sp := prep.Space().WithBudget(budget)

			serial := map[string]*search.Result{}
			bestNet := 0.0
			for _, sn := range search.Names() {
				if sn == "race" {
					continue
				}
				strat, err := search.Lookup(sn)
				if err != nil {
					t.Fatal(err)
				}
				res, err := strat.Search(ctx, sp)
				if err != nil {
					t.Fatalf("%s: %v", sn, err)
				}
				serial[sn] = res

				if res.Pages != search.PagesOf(res.Config) {
					t.Errorf("%s: Pages %d != sum %d", sn, res.Pages, search.PagesOf(res.Config))
				}
				if !sp.Fits(res.Pages) {
					t.Errorf("%s: %d pages exceeds budget %d", sn, res.Pages, budget)
				}
				// Never worse than the empty configuration (net 0).
				if res.Eval.Net < 0 {
					t.Errorf("%s: net %.3f worse than empty configuration", sn, res.Eval.Net)
				}
				if res.Stats.Strategy != sn {
					t.Errorf("%s: stats strategy = %q", sn, res.Stats.Strategy)
				}
				if len(res.Config) > 0 && res.Stats.Rounds == 0 && sn != "topdown" {
					t.Errorf("%s: picked %d indexes in 0 rounds", sn, len(res.Config))
				}
				if res.Eval.Net > bestNet {
					bestNet = res.Eval.Net
				}
			}

			raceStrat, err := search.Lookup("race")
			if err != nil {
				t.Fatal(err)
			}
			race, err := raceStrat.Search(ctx, sp)
			if err != nil {
				t.Fatal(err)
			}
			if !sp.Fits(race.Pages) {
				t.Errorf("race: %d pages exceeds budget %d", race.Pages, budget)
			}
			// Race is never worse than its best member.
			if race.Eval.Net+1e-9 < bestNet {
				t.Errorf("race net %.3f < best member %.3f", race.Eval.Net, bestNet)
			}
			if race.Stats.Winner == "" {
				t.Error("race recorded no winner")
			}
			if winner := serial[race.Stats.Winner]; winner == nil {
				t.Errorf("race winner %q is not a member", race.Stats.Winner)
			} else if configKey(race) != configKey(winner) {
				t.Errorf("race config differs from its winner %q", race.Stats.Winner)
			}

			// Parallel racing equals serial per-strategy results.
			if len(race.Members) != len(serial) {
				t.Fatalf("race ran %d members, want %d", len(race.Members), len(serial))
			}
			for _, m := range race.Members {
				if m == nil {
					t.Fatal("race member result missing")
				}
				want := serial[m.Strategy]
				if want == nil {
					t.Fatalf("unexpected race member %q", m.Strategy)
				}
				if configKey(m) != configKey(want) {
					t.Errorf("%s raced in parallel chose a different config than serial:\n%s\nvs\n%s",
						m.Strategy, configKey(m), configKey(want))
				}
				if m.Eval.Net != want.Eval.Net {
					t.Errorf("%s raced net %.6f != serial %.6f", m.Strategy, m.Eval.Net, want.Eval.Net)
				}
			}
		})
	}
}

// TestBudgetSweepSharesTheSpace checks WithBudget reuse: every budget
// point of a sweep searches the same space on the shared what-if cache,
// so repeating a budget point costs zero new evaluations. (Equivalence
// of swept results with fresh full advisor runs is covered by
// core.TestPreparedBudgetSweepMatchesFullRuns.)
func TestBudgetSweepSharesTheSpace(t *testing.T) {
	ctx := context.Background()
	w := propertyWorkloads(t)["xmark"]
	a := testAdvisor(t)
	prep, err := a.Prepare(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	full, err := prep.RecommendWith(ctx, core.SearchTopDown, 0)
	if err != nil {
		t.Fatal(err)
	}
	strat, err := search.Lookup("topdown")
	if err != nil {
		t.Fatal(err)
	}
	sp := prep.Space()
	firstPass := map[int64]string{}
	for _, frac := range []int64{4, 2, 1} {
		budget := full.TotalPages / frac
		res, err := strat.Search(ctx, sp.WithBudget(budget))
		if err != nil {
			t.Fatal(err)
		}
		if res.Pages > budget {
			t.Errorf("budget %d: %d pages", budget, res.Pages)
		}
		firstPass[budget] = configKey(res)
	}
	// Second pass over the same budgets: identical configs, and every
	// configuration the strategy prices is already cached — zero new
	// what-if evaluations proves the sweep actually shares the space.
	for budget, want := range firstPass {
		before := sp.Counters()
		res, err := strat.Search(ctx, sp.WithBudget(budget))
		if err != nil {
			t.Fatal(err)
		}
		if got := configKey(res); got != want {
			t.Errorf("budget %d: re-sweep changed the config:\n%s\nvs\n%s", budget, got, want)
		}
		if d := sp.Counters().Sub(before); d.Evaluations != 0 {
			t.Errorf("budget %d: re-sweep issued %d evaluations on a warm space, want 0", budget, d.Evaluations)
		}
	}
}
