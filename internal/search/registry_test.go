package search

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/sqltype"
)

func TestRegistryNamesAndAliases(t *testing.T) {
	names := Names()
	for _, want := range []string{"greedy-basic", "greedy-heuristic", "topdown", "race"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	for alias, canonical := range map[string]string{
		"greedy": "greedy-heuristic", "heuristic": "greedy-heuristic",
		"basic": "greedy-basic", "knapsack": "greedy-basic",
		"top-down": "topdown", "portfolio": "race",
		"": Default,
	} {
		got, err := Canonical(alias)
		if err != nil || got != canonical {
			t.Errorf("Canonical(%q) = %q, %v; want %q", alias, got, err, canonical)
		}
		s, err := Lookup(alias)
		if err != nil || s.Name() != canonical {
			t.Errorf("Lookup(%q) = %v, %v", alias, s, err)
		}
	}
}

func TestLookupErrorEnumeratesStrategies(t *testing.T) {
	_, err := Lookup("simulated-annealing")
	if err == nil {
		t.Fatal("unknown strategy should fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "simulated-annealing") {
		t.Errorf("error does not echo the bad name: %q", msg)
	}
	for _, name := range Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not enumerate %q: %q", name, msg)
		}
	}
}

func TestRatioHandlesZeroPages(t *testing.T) {
	if r := ratio(10, 0); r != 10 {
		t.Errorf("ratio(10, 0) = %f", r)
	}
	if r := ratio(-3, 2); r != -1.5 {
		t.Errorf("ratio(-3, 2) = %f", r)
	}
}

// testCand builds a synthetic candidate with the given pattern and size.
func testCand(t *testing.T, id int, pat string, pages int64) *Candidate {
	t.Helper()
	p, err := pattern.Parse(pat)
	if err != nil {
		t.Fatal(err)
	}
	return &Candidate{
		ID:         id,
		Collection: "c",
		Pattern:    p,
		Type:       sqltype.Double,
		Def:        &catalog.IndexDef{Name: "T", Collection: "c", Pattern: p, Type: sqltype.Double, EstPages: pages, EstEntries: pages},
	}
}

// flatEval prices every configuration as the sum of fixed per-candidate
// nets, with every member used — a pure-knapsack oracle for ranking
// tests.
type flatEval struct {
	net map[int]float64
}

func (f flatEval) Evaluate(_ context.Context, cfg []*Candidate) (*Eval, error) {
	out := &Eval{Used: map[int]bool{}}
	for _, c := range cfg {
		out.Net += f.net[c.ID]
		out.QueryBenefit += f.net[c.ID]
		out.Used[c.ID] = true
	}
	return out, nil
}

func (f flatEval) Workers() int { return 2 }

// TestGreedyRankingTiesAreDeterministic is the regression test for the
// equal-density tie-break: candidates with identical benefit/page
// ratios must rank by content (specificity, then key), independent of
// input order and of ID assignment, so recommendations are byte-stable
// across map-iteration order.
func TestGreedyRankingTiesAreDeterministic(t *testing.T) {
	// All four candidates have ratio 1.0; two pattern-specificity ties
	// and a pure key tie among equals.
	build := func(perm []int) ([]*Candidate, flatEval) {
		cands := []*Candidate{
			testCand(t, 0, "/a/b/x", 10),
			testCand(t, 1, "//x", 10),
			testCand(t, 2, "/a/*/x", 10),
			testCand(t, 3, "/a/b/y", 20),
		}
		ev := flatEval{net: map[int]float64{0: 10, 1: 10, 2: 10, 3: 20}}
		out := make([]*Candidate, len(cands))
		for i, pi := range perm {
			out[i] = cands[pi]
		}
		return out, ev
	}
	wantOrder := []string{"/a/b/x", "/a/b/y", "/a/*/x", "//x"}

	rng := rand.New(rand.NewSource(7))
	perm := []int{0, 1, 2, 3}
	for trial := 0; trial < 20; trial++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		cands, ev := build(perm)
		alone, err := standalone(context.Background(), ev, cands)
		if err != nil {
			t.Fatal(err)
		}
		order := rankByDensity(cands, alone)
		for i, c := range order {
			if c.Pattern.String() != wantOrder[i] {
				t.Fatalf("perm %v: rank[%d] = %s, want %s", perm, i, c.Pattern, wantOrder[i])
			}
		}

		// End to end through greedy-basic under a budget that forces the
		// tie to pick exactly one of the equals.
		strat, err := Lookup("greedy-basic")
		if err != nil {
			t.Fatal(err)
		}
		sp := &Space{Candidates: cands, BudgetPages: 10, Eval: ev}
		res, err := strat.Search(context.Background(), sp)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Config) != 1 || res.Config[0].Pattern.String() != "/a/b/x" {
			t.Fatalf("perm %v: greedy-basic picked %v, want the most specific tie winner /a/b/x", perm, res.Config)
		}
	}
}

func TestTraceRendering(t *testing.T) {
	tr := Trace{
		{Round: 1, Action: ActionAdd, Candidate: "c|/a/b|dbl", Benefit: 12.5, Pages: 40,
			Covered: 3, Of: 9, Cache: Counters{Hits: 5, Misses: 2, Evaluations: 18}},
		{Round: 1, Action: ActionSkip, Candidate: "c|/a|dbl", Note: "over budget"},
	}
	lines := tr.Strings()
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, want := range []string{"add", "c|/a/b|dbl", "net=12.5", "pages=40", "covered=3/9", "[cache 5/2/18]"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("line %q missing %q", lines[0], want)
		}
	}
	if !strings.Contains(lines[1], "(over budget)") {
		t.Errorf("skip line %q missing note", lines[1])
	}
	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"action": "add"`, `"candidate": "c|/a/b|dbl"`, `"round": 1`, `"hits": 5`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %q:\n%s", want, data)
		}
	}
}

// TestRaceAbortsOnDeadContext pins the portfolio's abort semantics: a
// cancelled shared context must fail the race rather than crown a
// winner among whichever members happened to finish.
func TestRaceAbortsOnDeadContext(t *testing.T) {
	cands := []*Candidate{testCand(t, 0, "/a/b", 1)}
	ev := flatEval{net: map[int]float64{0: 5}}
	sp := &Space{Candidates: cands, DAG: &DAG{Nodes: cands, Roots: cands}, Eval: ev}
	strat, err := Lookup("race")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := strat.Search(ctx, sp); err == nil {
		t.Fatal("race on a cancelled context should fail, not return a partial winner")
	}
	// A live context over the same space succeeds.
	if _, err := strat.Search(context.Background(), sp); err != nil {
		t.Fatalf("race on a live context: %v", err)
	}
}

func TestSpaceWithBudget(t *testing.T) {
	base := &Space{BudgetPages: 0}
	if !base.Fits(1 << 40) {
		t.Error("unlimited budget should fit anything")
	}
	tight := base.WithBudget(10)
	if tight.Fits(11) || !tight.Fits(10) {
		t.Error("WithBudget(10) budget arithmetic broken")
	}
	if base.BudgetPages != 0 {
		t.Error("WithBudget mutated the original space")
	}
}
