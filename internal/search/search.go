// Package search is the advisor's configuration-search layer (paper
// §2.3): given a candidate Space — the enumerated/generalized candidate
// set, its containment DAG, a disk budget, and a what-if cost Evaluator
// — a Strategy picks the index configuration to recommend.
//
// Strategies are pluggable: the three paper algorithms (plain greedy
// knapsack, greedy with redundancy/interaction heuristics, top-down DAG
// descent) register themselves in a name-keyed registry, and a fourth
// "race" strategy runs the whole portfolio concurrently on the shared
// what-if cache and returns the best configuration. External strategies
// can be added with Register without touching internal/core.
//
// Every search produces a structured trace (typed TraceEvents rendered
// to text or JSON) and per-strategy stats (rounds, wall time, what-if
// cache counter deltas), and a Space can be re-budgeted with WithBudget
// so budget sweeps reuse the candidate set and the warm cache instead of
// re-running the whole advisor per budget point.
package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/candidate"
	"repro/internal/whatif"
)

// Candidate is one candidate index in the search space, produced by the
// internal/candidate pipeline.
type Candidate = candidate.Candidate

// DAG is the candidate containment DAG (paper §2.2, Figure 4).
type DAG = candidate.DAG

// Eval is one configuration evaluation as the search sees it: the
// workload-level aggregates the strategies rank configurations by.
type Eval struct {
	// QueryBenefit is the weighted query benefit (no update cost).
	QueryBenefit float64
	// UpdateCost is the weighted maintenance cost of the configuration.
	UpdateCost float64
	// Net is QueryBenefit - UpdateCost.
	Net float64
	// Used is the set of candidate IDs used by at least one query plan.
	Used map[int]bool
}

// Evaluator prices candidate configurations. Implementations must be
// safe for concurrent use: strategies evaluate many configurations at
// once, and the race strategy runs whole searches concurrently.
type Evaluator interface {
	// Evaluate returns the workload evaluation of the configuration.
	Evaluate(ctx context.Context, cfg []*Candidate) (*Eval, error)
	// Workers is the evaluator's useful concurrency (>= 1); strategies
	// size their speculative evaluation batches by it.
	Workers() int
}

// BatchEvaluator is the optional fast path of an Evaluator: evaluate
// base+{c} for a whole burst of candidates as one unit, so the backend
// can dispatch the burst to its worker pool in one call instead of
// paying per-candidate call and synchronization overhead. Results are
// in cands order. Strategies use it through evalEach, which falls back
// to per-candidate fan-out when the evaluator does not implement it.
type BatchEvaluator interface {
	Evaluator
	EvaluateBatch(ctx context.Context, base, cands []*Candidate) ([]*Eval, error)
}

// countingEvaluator wraps a strategy's evaluator with an exact call
// counter (one per configuration priced). Every strategy evaluates
// through its tracer's countingEvaluator, which is what makes
// Stats.Evals per-strategy exact where the shared cache counters are
// not.
type countingEvaluator struct {
	inner Evaluator
	calls atomic.Int64
}

func (c *countingEvaluator) Evaluate(ctx context.Context, cfg []*Candidate) (*Eval, error) {
	c.calls.Add(1)
	return c.inner.Evaluate(ctx, cfg)
}

func (c *countingEvaluator) Workers() int { return c.inner.Workers() }

// EvaluateBatch counts the whole burst and forwards it to the inner
// evaluator's batch entry point when it has one, else to the shared
// fan-out.
func (c *countingEvaluator) EvaluateBatch(ctx context.Context, base, cands []*Candidate) ([]*Eval, error) {
	c.calls.Add(int64(len(cands)))
	if be, ok := c.inner.(BatchEvaluator); ok {
		return be.EvaluateBatch(ctx, base, cands)
	}
	return fanOutEach(ctx, c.inner, base, cands)
}

// Counters are what-if cache counter snapshots (or deltas), threaded
// into traces and stats so every search step carries its cache cost.
type Counters struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evaluations int64 `json:"evaluations"`
}

// Sub returns the counter deltas since an earlier snapshot.
func (c Counters) Sub(earlier Counters) Counters {
	return Counters{
		Hits:        c.Hits - earlier.Hits,
		Misses:      c.Misses - earlier.Misses,
		Evaluations: c.Evaluations - earlier.Evaluations,
	}
}

// Space is one configuration-search problem: the candidate set to
// choose from, the containment DAG over it, the disk budget, and the
// cost evaluator. A Space is immutable once built; WithBudget derives
// re-budgeted views that share the candidates and the evaluator (and
// therefore the what-if cache), which is what makes budget sweeps and
// portfolio racing cheap.
type Space struct {
	// Candidates is every candidate (basic and generalized), with dense
	// IDs from 0 as produced by the candidate pipeline.
	Candidates []*Candidate
	// DAG is the containment DAG over Candidates (top-down search
	// descends it root to leaf).
	DAG *DAG
	// BudgetPages bounds the configuration size; 0 means unlimited.
	BudgetPages int64
	// Eval prices configurations (the what-if service boundary).
	Eval Evaluator
	// InteractionAware makes greedy search re-evaluate configurations
	// each round instead of trusting standalone benefits (§2.3 "index
	// interaction").
	InteractionAware bool
	// Counters, when non-nil, snapshots the what-if engine's cache
	// counters; traces and stats record deltas against it.
	Counters func() Counters
	// Benefits, when non-nil, produces the standalone per-(query,
	// candidate) benefit matrix, rows aligned with Candidates order —
	// the decomposed benefit model a CoPhy-style LP strategy optimizes
	// over. Producers memoize: the first call may cost one standalone
	// what-if evaluation per candidate (deduplicated through the
	// engine's atom cache), repeat calls are free.
	Benefits func(ctx context.Context) (*whatif.BenefitMatrix, error)
	// Observer, when non-nil, receives every trace event as it is
	// emitted — the streaming-progress hook. Events still accumulate in
	// the result's Trace. The observer may be called concurrently (the
	// race portfolio's members search at once) and must not block for
	// long: strategies emit synchronously on their search path.
	Observer func(TraceEvent)
	// Anytime makes deadline-aware strategies return their best result
	// so far when the context expires instead of failing. Today the
	// race portfolio honors it: members that completed before the
	// deadline still compete and the best finished member wins; only
	// when no member finished does the deadline surface as an error.
	Anytime bool
	// EagerGreedy forces greedy-heuristic's original eager marginal
	// scan (re-evaluate the density-ordered eligible prefix every
	// round) instead of the default lazy-greedy heap. The two paths
	// choose identical configurations; eager exists as the reference
	// baseline and for measuring the lazy path's what-if call
	// reduction.
	EagerGreedy bool
	// TraceCap bounds the per-strategy trace event buffer: 0 means
	// DefaultTraceCap, negative means unlimited. When the cap is hit
	// the buffer ends with an ActionTruncated marker and
	// Stats.Truncated counts the dropped events; streaming Observers
	// always receive the full stream.
	TraceCap int
	// RaceCostBound makes the race portfolio cost-bounded: members
	// publish their best net benefit to a shared leader board and a
	// member aborts once its remaining upper bound (current net plus
	// every positive standalone net still fitting the budget) cannot
	// beat the leader. Aborted members are recorded in the result's
	// Members with Stats.Aborted set and never win. Off by default
	// because an aborted member's partial result is no longer
	// byte-identical to running it serially.
	RaceCostBound bool
	// LPMaxPasses caps the lp strategy's dual coordinate-descent
	// passes (0 = the solver default). Fewer passes loosen the LP
	// bound but never invalidate it.
	LPMaxPasses int
	// LPRepairRounds caps the lp strategy's what-if repair rounds
	// after rounding (0 = the default, negative = no repair). Each
	// round may drop unused members and add one candidate priced by
	// real marginal evaluations.
	LPRepairRounds int
	// leader is the shared race leader board, set on the per-member
	// space copies by the race strategy when RaceCostBound is on.
	leader *leaderBoard
}

// WithBudget returns a view of the space under a different disk budget,
// sharing the candidates, DAG, and evaluator (and its cache).
func (s *Space) WithBudget(pages int64) *Space {
	c := *s
	c.BudgetPages = pages
	return &c
}

// Fits reports whether a configuration of the given size fits the
// budget (0 = unlimited).
func (s *Space) Fits(pages int64) bool {
	return s.BudgetPages <= 0 || pages <= s.BudgetPages
}

// counters reads the cache counters, zero when no source is wired.
func (s *Space) counters() Counters {
	if s.Counters == nil {
		return Counters{}
	}
	return s.Counters()
}

// Result is one strategy's chosen configuration plus its evaluation,
// structured trace, and run stats.
type Result struct {
	// Strategy is the canonical name of the strategy that produced the
	// result.
	Strategy string
	// Config is the chosen configuration.
	Config []*Candidate
	// Pages is the configuration size.
	Pages int64
	// Eval is the final evaluation of Config.
	Eval *Eval
	// Trace is the structured search trace.
	Trace Trace
	// Stats summarizes the run (rounds, wall time, cache deltas).
	Stats Stats
	// Members holds the per-member results of a portfolio run (the
	// race strategy); nil for plain strategies.
	Members []*Result
	// Aborted marks a cost-bounded race member that stopped early
	// because its remaining upper bound could not beat the leader; the
	// Config/Eval are whatever the member had when it stopped, and the
	// race never picks an aborted member as winner.
	Aborted bool
	// Degraded marks a best-so-far result returned because the what-if
	// backend became unavailable mid-search (circuit breaker open)
	// while Space.Anytime allowed partial results. Config is whatever
	// the strategy had fully built when the backend went away; Eval is
	// its last complete evaluation (possibly the empty configuration's).
	Degraded bool
}

// Strategy is one pluggable configuration-search algorithm.
type Strategy interface {
	// Name is the canonical registry name.
	Name() string
	// Search picks a configuration from the space. Implementations
	// must honor ctx cancellation and the space's budget.
	Search(ctx context.Context, sp *Space) (*Result, error)
}

// PagesOf sums the candidates' estimated sizes.
func PagesOf(cfg []*Candidate) int64 {
	var t int64
	for _, c := range cfg {
		t += c.Pages()
	}
	return t
}

// ratio is the benefit density (benefit per page) used to rank
// candidates; zero-page candidates count as one page.
func ratio(benefit float64, pages int64) float64 {
	if pages <= 0 {
		pages = 1
	}
	return benefit / float64(pages)
}

// bitsetWidth is the basic-candidate count: the width of the covers
// bitmaps (redundancy heuristic).
func bitsetWidth(cands []*Candidate) int {
	n := 0
	for _, c := range cands {
		if c.Basic {
			n++
		}
	}
	return n
}

// rankByDensity orders candidates by standalone net benefit per page,
// densest first. Equal densities tie-break on candidate content only —
// the more specific pattern first (fewest descendant axes, then fewest
// wildcards: indexing `/a/*/x` is a safer bet than `//x` at the same
// density), then the candidate key — never on ID assignment or input
// order, so the ranking and every recommendation derived from it are
// byte-stable across map iteration order and pipeline internals.
func rankByDensity(cands []*Candidate, alone map[int]*Eval) []*Candidate {
	order := append([]*Candidate(nil), cands...)
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		ri := ratio(alone[a.ID].Net, a.Pages())
		rj := ratio(alone[b.ID].Net, b.Pages())
		if ri != rj {
			return ri > rj
		}
		if da, db := a.Pattern.DescendantCount(), b.Pattern.DescendantCount(); da != db {
			return da < db
		}
		if wa, wb := a.Pattern.WildcardCount(), b.Pattern.WildcardCount(); wa != wb {
			return wa < wb
		}
		return a.Key() < b.Key()
	})
	return order
}

// leaderBoard is the race portfolio's shared best-net publication
// point: members publish the net benefit of configurations they have
// fully evaluated, and cost-bounded members abort once their remaining
// upper bound cannot beat the board. The member holding the maximum
// final net can never abort (its own bound is at least its final net,
// which is at least the leader), so at least one member always
// survives.
type leaderBoard struct {
	bits atomic.Uint64
}

func newLeaderBoard() *leaderBoard {
	lb := &leaderBoard{}
	lb.bits.Store(math.Float64bits(math.Inf(-1)))
	return lb
}

// publish raises the board to net if it is a new maximum.
func (l *leaderBoard) publish(net float64) {
	for {
		old := l.bits.Load()
		if math.Float64frombits(old) >= net {
			return
		}
		if l.bits.CompareAndSwap(old, math.Float64bits(net)) {
			return
		}
	}
}

// best returns the highest published net (-Inf before any publication).
func (l *leaderBoard) best() float64 {
	return math.Float64frombits(l.bits.Load())
}

// evalEach evaluates base+{c} for every candidate in cands as one
// burst: through the evaluator's batch entry point when it has one,
// else by per-candidate fan-out bounded by the worker count. Results
// are in cands order.
func evalEach(ctx context.Context, ev Evaluator, base, cands []*Candidate) ([]*Eval, error) {
	if be, ok := ev.(BatchEvaluator); ok {
		return be.EvaluateBatch(ctx, base, cands)
	}
	return fanOutEach(ctx, ev, base, cands)
}

// fanOutEach is the per-candidate fallback of evalEach: one Evaluate
// call per candidate, concurrently, bounded by the evaluator's worker
// count.
func fanOutEach(ctx context.Context, ev Evaluator, base, cands []*Candidate) ([]*Eval, error) {
	out := make([]*Eval, len(cands))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, ev.Workers())
	for i, c := range cands {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		cfg := make([]*Candidate, 0, len(base)+1)
		cfg = append(append(cfg, base...), c)
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, cfg []*Candidate) {
			defer wg.Done()
			defer func() { <-sem }()
			e, err := ev.Evaluate(ctx, cfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			out[i] = e
		}(i, cfg)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// standalone returns each candidate's evaluation alone, keyed by
// candidate ID. Candidates are evaluated concurrently.
func standalone(ctx context.Context, ev Evaluator, cands []*Candidate) (map[int]*Eval, error) {
	evals, err := evalEach(ctx, ev, nil, cands)
	if err != nil {
		return nil, err
	}
	out := make(map[int]*Eval, len(cands))
	for i, c := range cands {
		out[c.ID] = evals[i]
	}
	return out, nil
}

// degradable reports whether a search may answer err with a degraded
// best-so-far result instead of failing: the caller opted into partial
// results (Anytime) and the error is the circuit breaker cutting the
// what-if backend off — a transient infrastructure condition, not a
// wrong answer.
func (s *Space) degradable(err error) bool {
	return s.Anytime && errors.Is(err, whatif.ErrCircuitOpen)
}

// degrade assembles a best-so-far Result after the what-if backend
// became unavailable mid-search: the configuration the strategy had
// fully built, its last complete evaluation (nil means the empty
// configuration's zero evaluation), and the Degraded flag that flows
// through the race winner pick up into the v1 response.
func degrade(sp *Space, tr *tracer, config []*Candidate, cur *Eval, cause error) *Result {
	if cur == nil {
		cur = &Eval{}
	}
	tr.degraded = true
	tr.emit(TraceEvent{Action: ActionDegraded, Benefit: cur.Net, Pages: PagesOf(config),
		Note: fmt.Sprintf("best-so-far: %v", cause)})
	return &Result{
		Strategy: tr.strategy,
		Config:   config,
		Pages:    PagesOf(config),
		Eval:     cur,
		Trace:    tr.events,
		Stats:    tr.stats(),
		Degraded: true,
	}
}

// finish evaluates the final configuration and assembles the Result,
// publishing the final net to the race leader board when one is wired.
// fallback is the last complete evaluation the strategy holds (nil when
// it has none): if the final evaluation itself hits an open circuit
// breaker under the anytime contract, the result degrades to it rather
// than failing a fully built configuration at the finish line.
func finish(ctx context.Context, sp *Space, tr *tracer, config []*Candidate, fallback *Eval) (*Result, error) {
	final, err := tr.ev.Evaluate(ctx, config)
	if err != nil {
		if sp.degradable(err) {
			return degrade(sp, tr, config, fallback, err), nil
		}
		return nil, err
	}
	if sp.leader != nil {
		sp.leader.publish(final.Net)
	}
	return &Result{
		Strategy: tr.strategy,
		Config:   config,
		Pages:    PagesOf(config),
		Eval:     final,
		Trace:    tr.events,
		Stats:    tr.stats(),
	}, nil
}

// abort assembles the Result of a cost-bounded member that stopped
// early: the partial configuration it had (possibly none), the last
// evaluation it paid for, and Stats.Aborted set. No final evaluation is
// spent — the whole point of aborting is to stop paying.
func abort(sp *Space, tr *tracer, config []*Candidate, cur *Eval, bound float64) *Result {
	tr.aborted = true
	tr.emit(TraceEvent{Action: ActionAbort, Benefit: cur.Net, Pages: PagesOf(config),
		Note: fmt.Sprintf("cost bound: remaining upper bound %.1f cannot beat leader %.1f", bound, sp.leader.best())})
	return &Result{
		Strategy: tr.strategy,
		Config:   config,
		Pages:    PagesOf(config),
		Eval:     cur,
		Trace:    tr.events,
		Stats:    tr.stats(),
		Aborted:  true,
	}
}
