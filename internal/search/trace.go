package search

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Action is the kind of one search step.
type Action string

const (
	// ActionStart opens a search (top-down's initial root
	// configuration).
	ActionStart Action = "start"
	// ActionAdd records a candidate joining the configuration.
	ActionAdd Action = "add"
	// ActionSkip records a candidate rejected this round (over budget,
	// redundant coverage).
	ActionSkip Action = "skip"
	// ActionReclaim records a configuration member dropped because no
	// plan uses it anymore (greedy-heuristic space reclamation).
	ActionReclaim Action = "reclaim"
	// ActionReplace records top-down swapping a victim for its DAG
	// children.
	ActionReplace Action = "replace"
	// ActionDrop records top-down discarding an unused member in its
	// final pass.
	ActionDrop Action = "drop"
	// ActionMember records one portfolio member finishing (race).
	ActionMember Action = "member"
	// ActionPick records the portfolio winner (race).
	ActionPick Action = "pick"
	// ActionAbort records a portfolio member stopping early because its
	// remaining upper bound cannot beat the current race leader
	// (cost-bounded racing).
	ActionAbort Action = "abort"
	// ActionTruncated marks the point where the per-strategy trace
	// buffer hit its cap (Space.TraceCap); it is the buffer's final
	// event, and Stats.Truncated counts the events dropped after it.
	// Streaming observers still receive every event.
	ActionTruncated Action = "truncated"
	// ActionDegraded records a search falling back to its best-so-far
	// configuration because the what-if backend became unavailable
	// mid-run (circuit breaker open) under the anytime contract.
	ActionDegraded Action = "degraded"
	// ActionSolve records the lp strategy solving the fractional
	// relaxation: Benefit carries the LP objective, the note the dual
	// bound and pass count.
	ActionSolve Action = "solve"
	// ActionRounded records the lp strategy's rounded configuration
	// priced by the real what-if evaluator: Benefit is the rounded net,
	// the note compares it against the LP objective and bound.
	ActionRounded Action = "rounded"
)

// TraceEvent is one structured search step: which round, what happened,
// to which candidate, and at what benefit/size — plus the cumulative
// what-if cache deltas since the search started, so the cost of every
// decision is visible.
type TraceEvent struct {
	// Round is the search round the event belongs to (1-based; 0 for
	// events before the first round).
	Round int `json:"round"`
	// Action is the step kind.
	Action Action `json:"action"`
	// Candidate is the affected candidate's key (collection | pattern |
	// type); empty for configuration-level events.
	Candidate string `json:"candidate,omitempty"`
	// Benefit is the net benefit attached to the step (standalone or
	// configuration net, depending on the action).
	Benefit float64 `json:"benefit,omitempty"`
	// Pages is the configuration size after the step.
	Pages int64 `json:"pages,omitempty"`
	// Covered/Of are the covered basic-pattern counts (greedy
	// redundancy bitmap) when the strategy tracks them.
	Covered int `json:"covered,omitempty"`
	Of      int `json:"of,omitempty"`
	// Note carries strategy-specific detail ("over budget", a member
	// strategy name, ...).
	Note string `json:"note,omitempty"`
	// Strategy names the strategy that emitted the event. Under the
	// race portfolio a single stream interleaves events from every
	// member, and this is how consumers tell them apart.
	Strategy string `json:"strategy,omitempty"`
	// Cache is the cumulative what-if counter delta since the search
	// started (hits/misses/evaluations spent so far). The deltas are
	// windows over the space's shared engine counters: exact when one
	// search runs at a time, and inclusive of sibling traffic when
	// searches share the engine concurrently (the race portfolio's
	// members each observe the whole portfolio's work).
	Cache Counters `json:"cache"`
	// Evals is the cumulative count of configuration evaluations this
	// strategy itself has requested so far — unlike Cache, it is exact
	// per strategy even when portfolio members run concurrently, which
	// is what makes the lazy-greedy call reduction observable.
	Evals int64 `json:"evals"`
}

// String renders the event as one text line.
func (e TraceEvent) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "r%02d %-7s", e.Round, e.Action)
	if e.Candidate != "" {
		fmt.Fprintf(&sb, " %s", e.Candidate)
	}
	if e.Benefit != 0 {
		fmt.Fprintf(&sb, " net=%.1f", e.Benefit)
	}
	if e.Pages != 0 {
		fmt.Fprintf(&sb, " pages=%d", e.Pages)
	}
	if e.Of != 0 {
		fmt.Fprintf(&sb, " covered=%d/%d", e.Covered, e.Of)
	}
	if e.Note != "" {
		fmt.Fprintf(&sb, " (%s)", e.Note)
	}
	fmt.Fprintf(&sb, " [cache %d/%d/%d]", e.Cache.Hits, e.Cache.Misses, e.Cache.Evaluations)
	return sb.String()
}

// Trace is a structured search trace.
type Trace []TraceEvent

// Strings renders the trace as one text line per event.
func (t Trace) Strings() []string {
	out := make([]string, len(t))
	for i, e := range t {
		out[i] = e.String()
	}
	return out
}

// String renders the whole trace as text.
func (t Trace) String() string { return strings.Join(t.Strings(), "\n") }

// JSON renders the trace as an indented JSON array.
func (t Trace) JSON() ([]byte, error) { return json.MarshalIndent(t, "", "  ") }

// Stats summarize one strategy run: rounds taken, wall time, and the
// what-if cache counter deltas the search spent. For the race strategy,
// Winner names the member whose configuration won and Members holds the
// per-member stats; because the members run concurrently on the shared
// engine, each member's Cache window includes its siblings' traffic —
// compare member Elapsed/Rounds freely, but attribute cache counters to
// the portfolio as a whole, not to individual members.
type Stats struct {
	Strategy string        `json:"strategy"`
	Rounds   int           `json:"rounds"`
	Elapsed  time.Duration `json:"elapsedNs"`
	Cache    Counters      `json:"cache"`
	// Evals counts the configuration evaluations this strategy itself
	// requested (what-if calls). Exact per strategy, unlike the Cache
	// windows; for the race portfolio it is the sum over all members.
	Evals int64 `json:"evals"`
	// Truncated counts trace events dropped after the per-strategy
	// buffer hit its cap (Space.TraceCap); 0 when the full trace fit.
	Truncated int `json:"truncatedEvents,omitempty"`
	// Aborted marks a portfolio member that stopped early under
	// cost-bounded racing because its remaining upper bound could not
	// beat the leader; aborted members never win the race.
	Aborted bool `json:"aborted,omitempty"`
	// Degraded marks a run that fell back to its best-so-far
	// configuration because the what-if backend became unavailable
	// (circuit breaker open) while Space.Anytime allowed partial
	// results.
	Degraded bool    `json:"degraded,omitempty"`
	Winner   string  `json:"winner,omitempty"`
	Members  []Stats `json:"members,omitempty"`
	// LP summarizes the lp strategy's relaxation solve; nil for every
	// other strategy.
	LP *LPStats `json:"lp,omitempty"`
}

// LPStats summarize one lp-strategy run: the relaxation's objective
// and certified upper bound next to the net benefit the rounded
// configuration actually achieved, plus the solve's shape.
type LPStats struct {
	// Objective is the primal value of the fractional solution.
	Objective float64 `json:"objective"`
	// Bound is the dual upper bound on any feasible configuration's
	// surrogate net benefit (the race cost-bound the strategy aborts
	// against).
	Bound float64 `json:"bound"`
	// RoundedNet is the what-if net benefit of the final rounded (and
	// repaired) configuration.
	RoundedNet float64 `json:"roundedNet"`
	// Passes is the number of dual coordinate-descent passes spent.
	Passes int `json:"passes"`
	// Converged reports whether the dual converged before the pass cap.
	Converged bool `json:"converged"`
	// Items, NonZero, and Chains describe the solved relaxation:
	// candidate count, populated benefit cells, and containment-chain
	// side constraints.
	Items   int `json:"items"`
	NonZero int `json:"nonZero"`
	Chains  int `json:"chains"`
	// Support is the number of candidates with positive fractional
	// installation.
	Support int `json:"support"`
	// Pivot names the rounding pivot that won: "support-first" (the
	// fractional solution claimed the budget first) or "density-first"
	// (the greedy order, when a stalled dual left the support
	// misleading).
	Pivot string `json:"pivot,omitempty"`
	// RepairEvals counts the what-if evaluations the bounded repair
	// pass spent after rounding.
	RepairEvals int64 `json:"repairEvals"`
}

// String renders the stats as one line.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "search[%s]: %d rounds, %d what-if calls in %v; cache %d hits / %d misses / %d evaluations",
		s.Strategy, s.Rounds, s.Evals, s.Elapsed.Round(time.Millisecond), s.Cache.Hits, s.Cache.Misses, s.Cache.Evaluations)
	if s.Aborted {
		sb.WriteString("; aborted (cost bound)")
	}
	if s.Degraded {
		sb.WriteString("; degraded (cost service unavailable)")
	}
	if s.Winner != "" {
		fmt.Fprintf(&sb, "; winner %s", s.Winner)
	}
	if s.Truncated > 0 {
		fmt.Fprintf(&sb, "; trace truncated (%d events dropped)", s.Truncated)
	}
	return sb.String()
}

// DefaultTraceCap is the per-strategy trace buffer cap used when
// Space.TraceCap is 0: generous enough for every real workload while
// keeping a 50k-candidate synthetic run from accumulating hundreds of
// thousands of events.
const DefaultTraceCap = 4096

// tracer accumulates trace events and run stats for one search. It also
// wraps the space's evaluator in a per-strategy call counter: every
// strategy routes its evaluations through tracer.ev, so Stats.Evals and
// TraceEvent.Evals are exact even when portfolio members share the
// engine concurrently.
type tracer struct {
	strategy  string
	sp        *Space
	ev        *countingEvaluator
	start     time.Time
	base      Counters
	round     int
	cap       int
	truncated int
	aborted   bool
	degraded  bool
	lp        *LPStats
	events    Trace
}

func newTracer(strategy string, sp *Space) *tracer {
	cap := sp.TraceCap
	switch {
	case cap == 0:
		cap = DefaultTraceCap
	case cap < 0:
		cap = int(^uint(0) >> 1) // unlimited
	}
	return &tracer{strategy: strategy, sp: sp, ev: &countingEvaluator{inner: sp.Eval},
		start: time.Now(), base: sp.counters(), cap: cap}
}

// emit stamps the round, strategy, cache deltas, and eval count, then
// appends the event (up to the trace cap; the cap'th slot becomes an
// ActionTruncated marker and later events only bump the dropped count)
// and forwards it to the space's streaming observer, if any — observers
// see the full stream regardless of the cap.
func (t *tracer) emit(e TraceEvent) {
	e.Round = t.round
	e.Strategy = t.strategy
	e.Cache = t.sp.counters().Sub(t.base)
	e.Evals = t.ev.calls.Load()
	switch {
	case len(t.events) < t.cap:
		t.events = append(t.events, e)
	case t.truncated == 0:
		t.truncated++
		t.events = append(t.events, TraceEvent{Round: e.Round, Action: ActionTruncated,
			Strategy: t.strategy, Cache: e.Cache, Evals: e.Evals,
			Note: fmt.Sprintf("trace capped at %d events; stats.truncatedEvents counts the rest", t.cap)})
	default:
		t.truncated++
	}
	if t.sp.Observer != nil {
		t.sp.Observer(e)
	}
}

func (t *tracer) stats() Stats {
	return Stats{
		Strategy:  t.strategy,
		Rounds:    t.round,
		Elapsed:   time.Since(t.start),
		Cache:     t.sp.counters().Sub(t.base),
		Evals:     t.ev.calls.Load(),
		Truncated: t.truncated,
		Aborted:   t.aborted,
		Degraded:  t.degraded,
		LP:        t.lp,
	}
}
