package search

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Action is the kind of one search step.
type Action string

const (
	// ActionStart opens a search (top-down's initial root
	// configuration).
	ActionStart Action = "start"
	// ActionAdd records a candidate joining the configuration.
	ActionAdd Action = "add"
	// ActionSkip records a candidate rejected this round (over budget,
	// redundant coverage).
	ActionSkip Action = "skip"
	// ActionReclaim records a configuration member dropped because no
	// plan uses it anymore (greedy-heuristic space reclamation).
	ActionReclaim Action = "reclaim"
	// ActionReplace records top-down swapping a victim for its DAG
	// children.
	ActionReplace Action = "replace"
	// ActionDrop records top-down discarding an unused member in its
	// final pass.
	ActionDrop Action = "drop"
	// ActionMember records one portfolio member finishing (race).
	ActionMember Action = "member"
	// ActionPick records the portfolio winner (race).
	ActionPick Action = "pick"
)

// TraceEvent is one structured search step: which round, what happened,
// to which candidate, and at what benefit/size — plus the cumulative
// what-if cache deltas since the search started, so the cost of every
// decision is visible.
type TraceEvent struct {
	// Round is the search round the event belongs to (1-based; 0 for
	// events before the first round).
	Round int `json:"round"`
	// Action is the step kind.
	Action Action `json:"action"`
	// Candidate is the affected candidate's key (collection | pattern |
	// type); empty for configuration-level events.
	Candidate string `json:"candidate,omitempty"`
	// Benefit is the net benefit attached to the step (standalone or
	// configuration net, depending on the action).
	Benefit float64 `json:"benefit,omitempty"`
	// Pages is the configuration size after the step.
	Pages int64 `json:"pages,omitempty"`
	// Covered/Of are the covered basic-pattern counts (greedy
	// redundancy bitmap) when the strategy tracks them.
	Covered int `json:"covered,omitempty"`
	Of      int `json:"of,omitempty"`
	// Note carries strategy-specific detail ("over budget", a member
	// strategy name, ...).
	Note string `json:"note,omitempty"`
	// Strategy names the strategy that emitted the event. Under the
	// race portfolio a single stream interleaves events from every
	// member, and this is how consumers tell them apart.
	Strategy string `json:"strategy,omitempty"`
	// Cache is the cumulative what-if counter delta since the search
	// started (hits/misses/evaluations spent so far). The deltas are
	// windows over the space's shared engine counters: exact when one
	// search runs at a time, and inclusive of sibling traffic when
	// searches share the engine concurrently (the race portfolio's
	// members each observe the whole portfolio's work).
	Cache Counters `json:"cache"`
}

// String renders the event as one text line.
func (e TraceEvent) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "r%02d %-7s", e.Round, e.Action)
	if e.Candidate != "" {
		fmt.Fprintf(&sb, " %s", e.Candidate)
	}
	if e.Benefit != 0 {
		fmt.Fprintf(&sb, " net=%.1f", e.Benefit)
	}
	if e.Pages != 0 {
		fmt.Fprintf(&sb, " pages=%d", e.Pages)
	}
	if e.Of != 0 {
		fmt.Fprintf(&sb, " covered=%d/%d", e.Covered, e.Of)
	}
	if e.Note != "" {
		fmt.Fprintf(&sb, " (%s)", e.Note)
	}
	fmt.Fprintf(&sb, " [cache %d/%d/%d]", e.Cache.Hits, e.Cache.Misses, e.Cache.Evaluations)
	return sb.String()
}

// Trace is a structured search trace.
type Trace []TraceEvent

// Strings renders the trace as one text line per event.
func (t Trace) Strings() []string {
	out := make([]string, len(t))
	for i, e := range t {
		out[i] = e.String()
	}
	return out
}

// String renders the whole trace as text.
func (t Trace) String() string { return strings.Join(t.Strings(), "\n") }

// JSON renders the trace as an indented JSON array.
func (t Trace) JSON() ([]byte, error) { return json.MarshalIndent(t, "", "  ") }

// Stats summarize one strategy run: rounds taken, wall time, and the
// what-if cache counter deltas the search spent. For the race strategy,
// Winner names the member whose configuration won and Members holds the
// per-member stats; because the members run concurrently on the shared
// engine, each member's Cache window includes its siblings' traffic —
// compare member Elapsed/Rounds freely, but attribute cache counters to
// the portfolio as a whole, not to individual members.
type Stats struct {
	Strategy string        `json:"strategy"`
	Rounds   int           `json:"rounds"`
	Elapsed  time.Duration `json:"elapsedNs"`
	Cache    Counters      `json:"cache"`
	Winner   string        `json:"winner,omitempty"`
	Members  []Stats       `json:"members,omitempty"`
}

// String renders the stats as one line.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "search[%s]: %d rounds in %v; cache %d hits / %d misses / %d evaluations",
		s.Strategy, s.Rounds, s.Elapsed.Round(time.Millisecond), s.Cache.Hits, s.Cache.Misses, s.Cache.Evaluations)
	if s.Winner != "" {
		fmt.Fprintf(&sb, "; winner %s", s.Winner)
	}
	return sb.String()
}

// tracer accumulates trace events and run stats for one search.
type tracer struct {
	strategy string
	sp       *Space
	start    time.Time
	base     Counters
	round    int
	events   Trace
}

func newTracer(strategy string, sp *Space) *tracer {
	return &tracer{strategy: strategy, sp: sp, start: time.Now(), base: sp.counters()}
}

// emit appends the event, stamping the round, strategy, and cache
// deltas, and forwards it to the space's streaming observer, if any.
func (t *tracer) emit(e TraceEvent) {
	e.Round = t.round
	e.Strategy = t.strategy
	e.Cache = t.sp.counters().Sub(t.base)
	t.events = append(t.events, e)
	if t.sp.Observer != nil {
		t.sp.Observer(e)
	}
}

func (t *tracer) stats() Stats {
	return Stats{
		Strategy: t.strategy,
		Rounds:   t.round,
		Elapsed:  time.Since(t.start),
		Cache:    t.sp.counters().Sub(t.base),
	}
}
