package search

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/whatif"
)

func init() {
	Register(race{})
}

// race is the portfolio strategy: it runs every other registered
// strategy concurrently over the same space — same candidates, same
// budget, same shared what-if cache, one shared context/deadline — and
// returns the best-net configuration found. Because the members share
// the memoizing what-if engine, their evaluations overlap heavily (the
// standalone evaluations are common to all three paper strategies), so
// the portfolio costs far less than the sum of its members run cold.
//
// The winner is deterministic: highest final net benefit, ties broken
// by fewer pages, then by strategy name — so racing in parallel returns
// the same configuration as running each member serially and picking by
// the same rule.
//
// With Space.RaceCostBound the race is additionally cost-bounded:
// members publish every fully evaluated net to a shared leader board
// and abort once their remaining upper bound cannot beat it. Aborted
// members are excluded from the winner pick (their partial result is
// recorded in Members with Stats.Aborted), so the winner is still a
// complete, budget-respecting configuration — but which members abort
// depends on timing, so cost-bounded member results are not
// byte-identical to serial runs and the mode is opt-in.
type race struct{}

func (race) Name() string { return "race" }

func (r race) Search(ctx context.Context, sp *Space) (*Result, error) {
	tr := newTracer(r.Name(), sp)
	var members []string
	for _, name := range Names() {
		if name != r.Name() {
			members = append(members, name)
		}
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("search: race has no member strategies")
	}
	spRun := sp
	if sp.RaceCostBound {
		run := *sp
		run.leader = newLeaderBoard()
		spRun = &run
	}

	results := make([]*Result, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, name := range members {
		strat, err := Lookup(name)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(i int, name string, strat Strategy) {
			defer wg.Done()
			// A panicking member (a buggy external strategy, a panic
			// escaping a cost backend) is contained to its goroutine and
			// surfaces as a typed member error, not a dead process.
			defer func() {
				if r := recover(); r != nil {
					results[i], errs[i] = nil, whatif.NewPanicError("search: race member "+name, r)
				}
			}()
			results[i], errs[i] = strat.Search(ctx, spRun)
		}(i, name, strat)
	}
	wg.Wait()

	// A cancelled or expired shared context normally aborts the whole
	// portfolio: declaring a winner among the members that happened to
	// finish first would silently violate both the caller's deadline
	// request and the "never worse than the best member" guarantee (the
	// unfinished members might have won). The exception is the anytime
	// mode (Space.Anytime): there the caller asked for the best result
	// available at the deadline, so members that completed in time still
	// compete and only an empty finisher set surfaces the deadline as an
	// error. Any non-deadline member failure is fatal either way — the
	// plain strategies propagate evaluation errors, and the race must
	// stay equivalent to running its members serially.
	finished := 0
	for i := range members {
		if errs[i] == nil {
			finished++
		}
	}
	// Anytime softens deadlines only: an explicit cancellation is an
	// abort and always propagates, finished members or not.
	expired := ctx.Err()
	anytime := sp.Anytime && errors.Is(expired, context.DeadlineExceeded)
	if expired != nil && (!anytime || finished == 0) {
		return nil, expired
	}
	for i, name := range members {
		if errs[i] != nil {
			if expired != nil && errors.Is(errs[i], expired) {
				continue // anytime: this member was cut off by the deadline
			}
			return nil, fmt.Errorf("search: race member %s: %w", name, errs[i])
		}
	}
	var winner, degradedBest *Result
	for i, name := range members {
		res := results[i]
		if res == nil {
			continue
		}
		tr.round++
		note := fmt.Sprintf("%s: %d indexes in %v", name, len(res.Config), res.Stats.Elapsed.Round(time.Millisecond))
		switch {
		case res.Aborted:
			note = fmt.Sprintf("%s: aborted (cost bound) in %v", name, res.Stats.Elapsed.Round(time.Millisecond))
		case res.Degraded:
			note = fmt.Sprintf("%s: degraded (best-so-far) in %v", name, res.Stats.Elapsed.Round(time.Millisecond))
		}
		tr.emit(TraceEvent{Action: ActionMember, Benefit: res.Eval.Net, Pages: res.Pages, Note: note})
		// Aborted members stopped with a partial configuration; only
		// members that finished compete for the win. Degraded members
		// compete among themselves as the fallback tier: a fully
		// evaluated result always beats a best-so-far one, whatever the
		// nets claim.
		switch {
		case res.Aborted:
		case res.Degraded:
			if better(res, degradedBest) {
				degradedBest = res
			}
		case better(res, winner):
			winner = res
		}
	}
	if winner == nil {
		winner = degradedBest
	}
	if winner == nil {
		// Unreachable in practice: greedy-basic never aborts, so a
		// cost-bounded race always has at least one finisher.
		return nil, fmt.Errorf("search: race has no surviving member")
	}
	pickNote := winner.Strategy
	if expired != nil {
		pickNote = fmt.Sprintf("%s (deadline: %d/%d members finished)", winner.Strategy, finished, len(members))
	}
	if winner.Degraded {
		pickNote += " (degraded: every member returned best-so-far)"
	}
	tr.emit(TraceEvent{Action: ActionPick, Benefit: winner.Eval.Net, Pages: winner.Pages, Note: pickNote})

	stats := tr.stats()
	stats.Winner = winner.Strategy
	stats.Degraded = winner.Degraded
	// Report the winner's search rounds, not the member count the
	// tracer accumulated: in side-by-side tables the race row's
	// "rounds" must be comparable to the plain strategies'.
	stats.Rounds = winner.Stats.Rounds
	for i := range members {
		if results[i] != nil {
			stats.Members = append(stats.Members, results[i].Stats)
			// The portfolio's what-if spend is the sum of its members'
			// (the race itself evaluates nothing).
			stats.Evals += results[i].Stats.Evals
		}
	}
	// The portfolio's trace is the winner's full step-level trace
	// followed by the per-member summaries and the pick, so `-trace`/
	// `-trace-json` consumers still see how the chosen configuration
	// was built; losers' step traces stay available on Members (anytime
	// runs list only the members that finished before the deadline).
	trace := append(append(Trace{}, winner.Trace...), tr.events...)
	memberResults := make([]*Result, 0, len(results))
	for _, res := range results {
		if res != nil {
			memberResults = append(memberResults, res)
		}
	}
	return &Result{
		Strategy: r.Name(),
		Config:   winner.Config,
		Pages:    winner.Pages,
		Eval:     winner.Eval,
		Trace:    trace,
		Stats:    stats,
		Members:  memberResults,
		Degraded: winner.Degraded,
	}, nil
}

// better reports whether a beats b: higher net, then fewer pages, then
// lexicographically smaller strategy name (full determinism).
func better(a, b *Result) bool {
	if b == nil {
		return true
	}
	if a.Eval.Net != b.Eval.Net {
		return a.Eval.Net > b.Eval.Net
	}
	if a.Pages != b.Pages {
		return a.Pages < b.Pages
	}
	return a.Strategy < b.Strategy
}
