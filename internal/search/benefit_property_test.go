package search_test

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"testing"

	"repro/internal/catalog"
	"repro/internal/querylang"
	"repro/internal/search"
	"repro/internal/whatif"
)

// TestBenefitMatrixMatchesStandaloneWhatIf is the benefit-matrix
// fidelity property the lp strategy leans on: every populated
// (candidate, query) cell of Space.Benefits equals the benefit a real
// standalone what-if evaluation reports for that candidate on that
// query, and the modular Private/Update columns reproduce the
// aggregate standalone evaluation exactly. The sweep runs the
// engine-backed synthetic space with relevance projection on and off
// and across worker counts — none of which may change a single entry.
func TestBenefitMatrixMatchesStandaloneWhatIf(t *testing.T) {
	const n, seed = 800, 13
	ctx := context.Background()
	for _, noProj := range []bool{false, true} {
		for _, workers := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("noProj=%t/workers=%d", noProj, workers), func(t *testing.T) {
				sp, eng := search.NewSyntheticWhatIfSpace(n, seed,
					whatif.Options{NoProjection: noProj, Workers: workers})
				m, err := sp.Benefits(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if len(m.Rows) != len(sp.Candidates) {
					t.Fatalf("matrix has %d rows for %d candidates", len(m.Rows), len(sp.Candidates))
				}

				// The matrix's query indices address the shared-query
				// universe S0..S{NumQueries-1}; bind the engine to the
				// same universe to read per-query standalone costs.
				qs := make([]*querylang.Query, m.NumQueries)
				for i := range qs {
					qs[i] = &querylang.Query{
						ID:         "S" + strconv.Itoa(i),
						Collection: "syn",
						Text:       "synthetic shared query " + strconv.Itoa(i),
					}
				}
				bound := eng.Bind(qs)

				for ci, c := range sp.Candidates {
					// Aggregate: one standalone what-if evaluation must
					// reproduce the matrix's candidate-level columns.
					ev, err := sp.Eval.Evaluate(ctx, []*search.Candidate{c})
					if err != nil {
						t.Fatal(err)
					}
					wantQB := 0.0
					for _, e := range m.Rows[ci] {
						wantQB += e.Benefit
					}
					wantQB += m.PrivateBenefit(ci)
					if math.Abs(ev.QueryBenefit-wantQB) > 1e-9*(1+math.Abs(wantQB)) {
						t.Fatalf("candidate %d: standalone query benefit %.9f != matrix row sum + private %.9f",
							ci, ev.QueryBenefit, wantQB)
					}
					if math.Abs(ev.UpdateCost-m.UpdateCost(ci)) > 1e-9*(1+math.Abs(ev.UpdateCost)) {
						t.Fatalf("candidate %d: standalone update cost %.9f != matrix update %.9f",
							ci, ev.UpdateCost, m.UpdateCost(ci))
					}
				}

				// Entry granularity on a deterministic sample: the
				// engine's per-query standalone cost delta equals the
				// matrix cell exactly. Sampling every 7th candidate keeps
				// the sweep fast without hiding a systematic mismatch.
				for ci := 0; ci < len(sp.Candidates); ci += 7 {
					res, err := bound.EvaluateConfig(ctx, []*catalog.IndexDef{sp.Candidates[ci].Def})
					if err != nil {
						t.Fatal(err)
					}
					for qi, qe := range res.Queries {
						// The engine reports costs, not deltas; the
						// subtraction reintroduces last-bit float error,
						// hence the relative tolerance.
						got := qe.CostNoIndexes - qe.Cost
						want := m.Entry(ci, int32(qi))
						if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
							t.Fatalf("candidate %d query %d: engine standalone benefit %.9f != matrix entry %.9f",
								ci, qi, got, want)
						}
					}
				}
			})
		}
	}
}
