package search_test

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/search"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// advisorPair builds two advisors over one shared small environment:
// one with relevance projection (the default) and one with the
// whole-configuration atom keying (the measured baseline), at the given
// what-if parallelism.
func advisorPair(t testing.TB, workers int) (proj, base *core.Advisor) {
	t.Helper()
	env, err := experiments.BuildEnv(experiments.Small)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Parallelism = workers
	proj = core.New(env.Cat, opts)
	opts.NoProjection = true
	base = core.New(env.Cat, opts)
	return proj, base
}

// sameRecommendation asserts two recommendations are byte-identical in
// everything the user sees: configuration DDL, benefits, and the
// per-query analysis.
func sameRecommendation(t *testing.T, label string, got, want *core.Recommendation) {
	t.Helper()
	if g, w := strings.Join(got.DDL, "\n"), strings.Join(want.DDL, "\n"); g != w {
		t.Errorf("%s: configurations differ:\n%s\nvs\n%s", label, g, w)
	}
	if got.NetBenefit != want.NetBenefit || got.QueryBenefit != want.QueryBenefit ||
		got.UpdateCost != want.UpdateCost || got.TotalPages != want.TotalPages {
		t.Errorf("%s: benefit summary differs: net %.6f/%.6f query %.6f/%.6f update %.6f/%.6f pages %d/%d",
			label, got.NetBenefit, want.NetBenefit, got.QueryBenefit, want.QueryBenefit,
			got.UpdateCost, want.UpdateCost, got.TotalPages, want.TotalPages)
	}
	if !reflect.DeepEqual(got.PerQuery, want.PerQuery) {
		t.Errorf("%s: per-query analysis differs", label)
	}
}

// TestProjectionDifferentialRealWorkloads is the tentpole's safety net
// on real data: on xmark, tpox, and paper, the projected engine and the
// whole-config baseline produce byte-identical recommendations (every
// strategy) and identical per-query evaluations on randomized
// configurations, across worker counts.
func TestProjectionDifferentialRealWorkloads(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 4, 8} {
		proj, base := advisorPair(t, workers)
		for name, w := range propertyWorkloads(t) {
			label := name
			projPrep, err := proj.Prepare(ctx, w)
			if err != nil {
				t.Fatal(err)
			}
			basePrep, err := base.Prepare(ctx, w)
			if err != nil {
				t.Fatal(err)
			}
			for _, kind := range []core.SearchKind{core.SearchGreedyHeuristic, core.SearchTopDown, core.SearchGreedyBasic} {
				p, err := projPrep.RecommendWith(ctx, kind, 0)
				if err != nil {
					t.Fatal(err)
				}
				b, err := basePrep.RecommendWith(ctx, kind, 0)
				if err != nil {
					t.Fatal(err)
				}
				sameRecommendation(t, label+"/"+string(kind), p, b)
			}
			diffRandomConfigs(t, label, w, proj, base, projPrep.Space().Candidates, workers)
		}
	}
}

// diffRandomConfigs evaluates randomized sub-configurations of the
// candidate space on both engines and requires identical per-query
// costs, plans, and used-index sets (the Atoms metadata legitimately
// differs — that is the projection working).
func diffRandomConfigs(t *testing.T, label string, w *workload.Workload, proj, base *core.Advisor,
	cands []*search.Candidate, workers int) {
	t.Helper()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(int64(7*workers + len(label))))
	qs := w.QueryList()
	for trial := 0; trial < 12; trial++ {
		n := 1 + rng.Intn(6)
		defs := make([]*catalog.IndexDef, 0, n)
		for len(defs) < n {
			defs = append(defs, cands[rng.Intn(len(cands))].Def)
		}
		p, err := proj.CostEngine().EvaluateConfig(ctx, qs, defs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := base.CostEngine().EvaluateConfig(ctx, qs, defs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p.Queries, b.Queries) {
			t.Fatalf("%s trial %d: projected and baseline evaluations differ for %v", label, trial, defs)
		}
	}
}

// TestProjectionDifferentialSynthetic runs the same differential at
// scale on the whatif-backed synthetic space: identical greedy
// recommendations and identical randomized-configuration evaluations,
// with the projected engine spending strictly fewer CostService calls.
func TestProjectionDifferentialSynthetic(t *testing.T) {
	const n, seed = 2000, 7
	ctx := context.Background()
	spProj, engProj := search.NewSyntheticWhatIfSpace(n, seed, whatif.Options{})
	spBase, engBase := search.NewSyntheticWhatIfSpace(n, seed, whatif.Options{NoProjection: true})
	plain := search.NewSyntheticSpace(n, seed)

	strat, err := search.Lookup("greedy-heuristic")
	if err != nil {
		t.Fatal(err)
	}
	rp, err := strat.Search(ctx, spProj)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := strat.Search(ctx, spBase)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := strat.Search(ctx, plain)
	if err != nil {
		t.Fatal(err)
	}
	if configKey(rp) != configKey(rb) || rp.Eval.Net != rb.Eval.Net {
		t.Errorf("projected and baseline engines chose different configurations")
	}
	// The engine-backed evaluator reconstructs the model's aggregates
	// from per-query costs, so it matches the plain model up to float
	// summation order — the configuration choice must be identical, the
	// net equal to ~1e-9 relative.
	if configKey(rp) != configKey(rm) {
		t.Errorf("whatif-backed space chose a different configuration than the plain synthetic model")
	}
	if relDiff(rp.Eval.Net, rm.Eval.Net) > 1e-9 {
		t.Errorf("whatif-backed net %.12f != model net %.12f", rp.Eval.Net, rm.Eval.Net)
	}
	pe, be := engProj.Stats().Evaluations, engBase.Stats().Evaluations
	if pe >= be {
		t.Errorf("projection did not reduce CostService calls: %d vs %d", pe, be)
	}

	// Randomized configurations straight at the evaluators.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		sz := 1 + rng.Intn(8)
		cfg := make([]*search.Candidate, 0, sz)
		for len(cfg) < sz {
			cfg = append(cfg, spProj.Candidates[rng.Intn(len(spProj.Candidates))])
		}
		p, err := spProj.Eval.Evaluate(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := spBase.Eval.Evaluate(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := plain.Eval.Evaluate(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, b) {
			t.Fatalf("trial %d: projected vs baseline eval differ: %+v vs %+v", trial, p, b)
		}
		if !reflect.DeepEqual(p.Used, m.Used) ||
			relDiff(p.QueryBenefit, m.QueryBenefit) > 1e-9 ||
			relDiff(p.UpdateCost, m.UpdateCost) > 1e-9 ||
			relDiff(p.Net, m.Net) > 1e-9 {
			t.Fatalf("trial %d: engine-backed vs model eval differ: %+v vs %+v", trial, p, m)
		}
	}
}

// relDiff is |a-b| / max(1, |a|, |b|).
func relDiff(a, b float64) float64 {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) / scale
}

// TestBenefitMatrixSynthetic cross-checks the synthetic space's benefit
// matrix against standalone evaluations: row sum plus private benefit
// equals the standalone QueryBenefit for every candidate, on both the
// plain model and the whatif-engine-backed evaluator.
func TestBenefitMatrixSynthetic(t *testing.T) {
	ctx := context.Background()
	for _, engineBacked := range []bool{false, true} {
		var sp *search.Space
		if engineBacked {
			sp, _ = search.NewSyntheticWhatIfSpace(400, 3, whatif.Options{})
		} else {
			sp = search.NewSyntheticSpace(400, 3)
		}
		m, err := sp.Benefits(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Rows) != len(sp.Candidates) {
			t.Fatalf("matrix has %d rows for %d candidates", len(m.Rows), len(sp.Candidates))
		}
		for ci, c := range sp.Candidates {
			ev, err := sp.Eval.Evaluate(ctx, []*search.Candidate{c})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := m.StandaloneBenefit(ci), ev.QueryBenefit; math.Abs(got-want) > 1e-6 {
				t.Fatalf("engineBacked=%v candidate %d: matrix standalone benefit %.6f != evaluated %.6f",
					engineBacked, ci, got, want)
			}
		}
	}
}

// TestBenefitMatrixPaperWorkload cross-checks the advisor-built matrix
// on the paper workload: each row's sum equals the candidate's
// standalone evaluated query benefit, and each entry matches a
// standalone per-query what-if evaluation.
func TestBenefitMatrixPaperWorkload(t *testing.T) {
	ctx := context.Background()
	w := propertyWorkloads(t)["paper"]
	a := testAdvisor(t)
	prep, err := a.Prepare(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	sp := prep.Space()
	if sp.Benefits == nil {
		t.Fatal("prepared space exposes no Benefits hook")
	}
	m, err := sp.Benefits(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rows) != len(sp.Candidates) {
		t.Fatalf("matrix has %d rows for %d candidates", len(m.Rows), len(sp.Candidates))
	}
	if m.NumQueries != len(w.Queries) {
		t.Fatalf("matrix spans %d queries, workload has %d", m.NumQueries, len(w.Queries))
	}
	if m.NonZero() == 0 {
		t.Fatal("benefit matrix is empty on the paper workload")
	}
	qs := w.QueryList()
	populated := 0
	for ci, c := range sp.Candidates {
		ev, err := sp.Eval.Evaluate(ctx, []*search.Candidate{c})
		if err != nil {
			t.Fatal(err)
		}
		var rowSum float64
		for _, e := range m.Rows[ci] {
			rowSum += e.Benefit
		}
		if math.Abs(rowSum-ev.QueryBenefit) > 1e-6 {
			t.Errorf("candidate %d (%s): row sum %.6f != standalone query benefit %.6f",
				ci, c.Key(), rowSum, ev.QueryBenefit)
		}
		// Entries against standalone per-query what-if evaluations.
		res, err := a.CostEngine().EvaluateConfig(ctx, qs, []*catalog.IndexDef{c.Def})
		if err != nil {
			t.Fatal(err)
		}
		for qi, e := range w.Queries {
			want := e.Weight * res.Queries[qi].Benefit()
			if got := m.Entry(ci, int32(qi)); math.Abs(got-want) > 1e-6 {
				t.Errorf("candidate %d query %d: matrix entry %.6f != what-if benefit %.6f", ci, qi, got, want)
			}
		}
		if len(m.Rows[ci]) > 0 {
			populated++
		}
	}
	if populated == 0 {
		t.Fatal("no candidate has a populated benefit row")
	}
	// The second call returns the memoized matrix.
	again, err := sp.Benefits(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if again != m {
		t.Error("Benefits rebuilt the matrix instead of memoizing it")
	}
}
