package search_test

import (
	"context"
	"testing"

	"repro/advisor"
	"repro/internal/experiments"
	"repro/internal/search"
	"repro/internal/whatif"
)

// BenchmarkWhatifProjection is the scale trajectory behind
// BENCH_whatif.json: greedy-heuristic search over the whatif-backed
// synthetic space at 1k/10k candidates, with relevance projection
// (the default) against the whole-configuration atom keying
// (unprojected baseline). evals/op is the engine's exact CostService
// call count (whatif.Stats.Evaluations), the quantity projection
// exists to shrink; projhits/op counts cache hits that only exist
// because projection dropped irrelevant definitions from the atom key.
// Both variants choose byte-identical configurations
// (TestProjectionDifferentialSynthetic pins that). The in-repo bench
// stops at 10k to keep the CI -benchtime=1x smoke seconds-scale;
// BENCH_whatif.json records a one-off 50k measurement.
func BenchmarkWhatifProjection(b *testing.B) {
	strat, err := search.Lookup("greedy-heuristic")
	if err != nil {
		b.Fatal(err)
	}
	for _, sz := range []struct {
		name string
		n    int
	}{
		{"n-1k", 1_000},
		{"n-10k", 10_000},
	} {
		b.Run(sz.name, func(b *testing.B) {
			for _, v := range []struct {
				name   string
				noProj bool
			}{
				{"projected", false},
				{"unprojected", true},
			} {
				b.Run(v.name, func(b *testing.B) {
					ctx := context.Background()
					var evals, projHits, hits int64
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						// A fresh space per iteration: a warm cache would
						// turn every evaluation into a hit and measure
						// nothing.
						b.StopTimer()
						sp, eng := search.NewSyntheticWhatIfSpace(sz.n, 42, whatif.Options{NoProjection: v.noProj})
						b.StartTimer()
						if _, err := strat.Search(ctx, sp); err != nil {
							b.Fatal(err)
						}
						st := eng.Stats()
						evals += st.Evaluations
						projHits += st.ProjectedHits
						hits += st.Hits
					}
					b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
					b.ReportMetric(float64(hits)/float64(b.N), "hits/op")
					b.ReportMetric(float64(projHits)/float64(b.N), "projhits/op")
				})
			}
		})
	}
	// Real workloads through the whole advisor stack: candidate
	// pipeline + optimizer-backed what-if engine, projection on vs off.
	env, err := experiments.BuildEnv(experiments.Small)
	if err != nil {
		b.Fatal(err)
	}
	for _, wl := range []string{"xmark", "tpox"} {
		w := env.XMarkWorkload
		if wl == "tpox" {
			w = env.TPoXWorkload
		}
		b.Run(wl, func(b *testing.B) {
			for _, v := range []struct {
				name string
				on   bool
			}{
				{"projected", true},
				{"unprojected", false},
			} {
				b.Run(v.name, func(b *testing.B) {
					ctx := context.Background()
					var evals, projHits int64
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						a, err := advisor.New(env.Cat, advisor.WithProjection(v.on))
						if err != nil {
							b.Fatal(err)
						}
						b.StartTimer()
						rec, err := a.Recommend(ctx, w, advisor.RecommendRequest{})
						if err != nil {
							b.Fatal(err)
						}
						evals += rec.Cache.Evaluations
						projHits += rec.Cache.ProjectedHits
					}
					b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
					b.ReportMetric(float64(projHits)/float64(b.N), "projhits/op")
				})
			}
		})
	}
}
