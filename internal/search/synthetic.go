package search

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/candidate"
	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/sqltype"
	"repro/internal/whatif"
)

// Synthetic candidate-space generator: a deterministic, self-contained
// search problem at arbitrary scale (10k+ candidates), used by the
// BenchmarkSearchScale trajectory and the scale smoke tests. Real
// advisor runs bottom out in optimizer calls whose cost swamps the
// search layer long before the candidate count stresses it; the
// synthetic space replaces the what-if service with a microsecond-scale
// benefit model that keeps the properties the strategies rely on —
// submodular query benefit, modular update cost, index interaction
// through shared queries, a containment DAG whose most general roots
// are too expensive to recommend — so search-layer scaling (what-if
// call counts, heap behavior, trace volume, racing) is measurable in
// isolation.
const (
	// synQueriesPerWinner is how many shared workload queries each
	// winner candidate serves. Combined with the small query universe
	// this puts many winners on every query: heavy interaction, so
	// marginal benefits collapse far below standalone benefits and the
	// eager scan keeps re-pricing the whole winner prefix every round —
	// the regime the lazy-greedy heap exists for.
	synQueriesPerWinner = 4
	// synChildrenPerGen is the DAG fan-out: each generalized root
	// covers a block of this many basics.
	synChildrenPerGen = 64
	// synBudgetPages is the default disk budget: room for every winner
	// plus a long tail of filler picks, independent of n so round
	// counts stay comparable across scales. Callers can re-budget with
	// WithBudget.
	synBudgetPages = 2000
	// synWorkers is the fixed evaluator parallelism, so speculative
	// batch sizes (and therefore eval counts) are machine-independent.
	synWorkers = 8
)

// lcg is a 64-bit linear congruential generator (Knuth's MMIX
// constants): deterministic, seedable, and dependency-free, which is
// all the synthetic space needs.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

// float returns a uniform float64 in [0, 1).
func (r *lcg) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform int in [0, n).
func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }

// NewSyntheticSpace builds a deterministic synthetic search problem
// with n basic candidates plus the generalized DAG roots over them.
// The same (n, seed) always produces the identical space: identical
// candidates, identical evaluations, identical recommendations.
//
// The population mirrors the paper's spaces at a caricature's scale:
//
//   - n/20 "winner" basics carry most of the workload benefit and
//     interact heavily (synQueriesPerWinner shared queries each from a
//     universe of max(8, n/64)), so their marginals collapse as the
//     configuration grows — the lazy-vs-eager gap lives here;
//   - the remaining basics are near-independent fillers with small
//     positive nets (about one in ten is net-negative), the long tail
//     every strategy wades through;
//   - each generalized root covers a 64-block of basics at the sum of
//     their sizes. Roots over winners are net-negative standalone (the
//     paper's "most general indexes are usually far too large to
//     recommend": huge update cost), which keeps them out of the
//     top-down start configuration — top-down can only reach the
//     filler tail, its achievable net is honestly small, and the race
//     leader overtakes its cost bound early. Roots over fillers are
//     barely net-positive.
//
// Query benefit is weighted max-cover over the shared queries (each
// query is served by its best configuration member) plus a small
// per-candidate private benefit, so greedy marginals are submodular;
// update cost is modular. The private benefit also keeps every
// configuration member "used", so the reclamation path stays quiet
// here (real-workload tests exercise it) and lazy-greedy's key resets
// never fire.
func NewSyntheticSpace(n int, seed uint64) *Space {
	if n < 40 {
		n = 40
	}
	nw := n / 20 // winners
	m := n / 64  // shared query universe
	if m < 8 {
		m = 8
	}
	rng := lcg(seed ^ 0x9e3779b97f4a7c15)
	rng.next()

	ngw := (nw + synChildrenPerGen - 1) / synChildrenPerGen
	ngd := (n - nw + synChildrenPerGen - 1) / synChildrenPerGen
	total := n + ngw + ngd
	ev := &synthEval{
		m:       m,
		base:    make([]float64, total),
		vals:    make([]float64, total),
		upd:     make([]float64, total),
		queries: make([][]int32, total),
	}
	all := make([]*Candidate, 0, total)
	newBasic := func(id int, pages int64) *Candidate {
		pat := pattern.MustParse(fmt.Sprintf("/syn/b%06d", id))
		c := &candidate.Candidate{
			ID:         id,
			Collection: "syn",
			Pattern:    pat,
			Type:       sqltype.Double,
			Basic:      true,
			Def: &catalog.IndexDef{
				Name:       fmt.Sprintf("syn_b%06d", id),
				Collection: "syn",
				Pattern:    pat,
				Type:       sqltype.Double,
				Virtual:    true,
				EstEntries: pages * 64,
				EstPages:   pages,
			},
		}
		c.SetCovers([]int32{int32(id)})
		return c
	}
	for i := 0; i < nw; i++ {
		v := 500 + 500*rng.float()
		// Distinct shared queries (duplicate draws merge, so a winner
		// serves 1..synQueriesPerWinner queries).
		var qs []int32
		for k := 0; k < synQueriesPerWinner; k++ {
			q := int32(rng.intn(m))
			dup := false
			for _, have := range qs {
				if have == q {
					dup = true
					break
				}
			}
			if !dup {
				qs = append(qs, q)
			}
		}
		sortInt32(qs)
		ev.vals[i] = v
		ev.queries[i] = qs
		ev.base[i] = 0.01 * v
		ev.upd[i] = v * float64(len(qs)) * (0.2 + 0.3*rng.float())
		all = append(all, newBasic(i, int64(2+rng.intn(9))))
	}
	for i := nw; i < n; i++ {
		b := 2 + 8*rng.float()
		ev.base[i] = b
		ev.upd[i] = b * (0.2 + 1.0*rng.float())
		all = append(all, newBasic(i, int64(4+rng.intn(9))))
	}

	// Generalized roots: 64-blocks over [lo, hi) of the basics just
	// built. Winner roots price at 1.5x their standalone benefit (deep
	// under water); filler roots at standalone benefit minus one (barely
	// worth keeping, never worth a budget slot).
	roots := make([]*Candidate, 0, ngw+ngd)
	newGen := func(gi, lo, hi int, winner bool) {
		id := n + gi
		onQuery := make(map[int32]bool)
		maxV, sumBase := 0.0, 0.0
		var pages int64
		covers := make([]int32, 0, hi-lo)
		for i := lo; i < hi; i++ {
			for _, q := range ev.queries[i] {
				onQuery[q] = true
			}
			if ev.vals[i] > maxV {
				maxV = ev.vals[i]
			}
			sumBase += ev.base[i]
			pages += all[i].Pages()
			covers = append(covers, int32(i))
		}
		qs := make([]int32, 0, len(onQuery))
		for q := range onQuery {
			qs = append(qs, q)
		}
		sortInt32(qs)
		v := 0.9 * maxV
		ev.vals[id] = v
		ev.queries[id] = qs
		ev.base[id] = 0.9 * sumBase
		alone := v*float64(len(qs)) + ev.base[id]
		if winner {
			ev.upd[id] = 1.5 * alone
		} else {
			ev.upd[id] = alone - 1
		}
		pat := pattern.MustParse(fmt.Sprintf("/syn/g%05d", gi))
		g := &candidate.Candidate{
			ID:         id,
			Collection: "syn",
			Pattern:    pat,
			Type:       sqltype.Double,
			Rule:       "synthetic",
			Def: &catalog.IndexDef{
				Name:       fmt.Sprintf("syn_g%05d", gi),
				Collection: "syn",
				Pattern:    pat,
				Type:       sqltype.Double,
				Virtual:    true,
				EstEntries: pages * 64,
				EstPages:   pages,
			},
		}
		g.SetCovers(covers)
		for i := lo; i < hi; i++ {
			g.Children = append(g.Children, all[i])
			all[i].Parents = append(all[i].Parents, g)
		}
		all = append(all, g)
		roots = append(roots, g)
	}
	gi := 0
	for lo := 0; lo < nw; lo += synChildrenPerGen {
		hi := lo + synChildrenPerGen
		if hi > nw {
			hi = nw
		}
		newGen(gi, lo, hi, true)
		gi++
	}
	for lo := nw; lo < n; lo += synChildrenPerGen {
		hi := lo + synChildrenPerGen
		if hi > n {
			hi = n
		}
		newGen(gi, lo, hi, false)
		gi++
	}

	return &Space{
		Candidates:       all,
		DAG:              &candidate.DAG{Nodes: all, Roots: roots},
		BudgetPages:      synBudgetPages,
		Eval:             ev,
		InteractionAware: true,
		Counters: func() Counters {
			return Counters{Evaluations: ev.evals.Load()}
		},
		Benefits: func(context.Context) (*whatif.BenefitMatrix, error) {
			return ev.benefits(), nil
		},
	}
}

// sortInt32 is an insertion sort for the tiny query lists (avoids a
// sort.Slice closure per candidate on the generation path).
func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// synthEval is the synthetic what-if service: weighted max-cover query
// benefit over the shared queries, plus modular private benefit, minus
// modular update cost. Stateless per call (no cache), so Stats.Evals
// counts exactly the configurations a strategy priced.
type synthEval struct {
	// m is the shared query universe size.
	m int
	// Per candidate ID: base is the private benefit realized whenever
	// the candidate is in the configuration (and what keeps it "used");
	// vals its per-shared-query value; queries its distinct shared
	// queries; upd its update cost.
	base    []float64
	vals    []float64
	upd     []float64
	queries [][]int32
	// evals counts configuration evaluations (the Space.Counters feed).
	evals atomic.Int64
}

// Evaluate prices one configuration: each shared query is served by its
// best configuration member (ties to the lowest candidate ID, so
// results are independent of configuration order), benefit is the sum
// over queries plus the members' private benefits, update cost the sum
// over members.
func (s *synthEval) Evaluate(ctx context.Context, cfg []*Candidate) (*Eval, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.evals.Add(1)
	return s.eval(cfg), nil
}

// EvaluateBatch prices base+{c} for the whole burst sequentially — the
// model is microseconds per call, so skipping the fan-out goroutines
// keeps the benchmark measuring search overhead, not scheduler churn.
func (s *synthEval) EvaluateBatch(ctx context.Context, base, cands []*Candidate) ([]*Eval, error) {
	out := make([]*Eval, len(cands))
	cfg := make([]*Candidate, len(base)+1)
	copy(cfg, base)
	for i, c := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.evals.Add(1)
		cfg[len(base)] = c
		out[i] = s.eval(cfg)
	}
	return out, nil
}

// Workers is fixed so speculative batch sizes are machine-independent.
func (s *synthEval) Workers() int { return synWorkers }

// benefits builds the model's standalone benefit matrix: installed
// alone, candidate c improves each of its shared queries by vals[c]
// (it wins every query it serves when nothing competes) and delivers
// its private benefit base[c]. Row sums plus Private therefore equal
// the standalone QueryBenefit eval reports, which the matrix tests
// pin, and Update carries the model's modular update cost.
func (s *synthEval) benefits() *whatif.BenefitMatrix {
	m := &whatif.BenefitMatrix{
		NumQueries: s.m,
		Rows:       make([][]whatif.BenefitEntry, len(s.vals)),
		Private:    append([]float64(nil), s.base...),
		Update:     append([]float64(nil), s.upd...),
	}
	for c := range s.vals {
		if s.vals[c] <= 0 || len(s.queries[c]) == 0 {
			continue
		}
		row := make([]whatif.BenefitEntry, len(s.queries[c]))
		for i, q := range s.queries[c] {
			row[i] = whatif.BenefitEntry{Query: q, Benefit: s.vals[c]}
		}
		m.Rows[c] = row
	}
	return m
}

func (s *synthEval) eval(cfg []*Candidate) *Eval {
	out := &Eval{Used: map[int]bool{}}
	if len(cfg) == 0 {
		return out
	}
	if len(cfg) == 1 {
		// Standalone fast path: the lone member wins every query it
		// serves. This is the bulk of every strategy's eval traffic, and
		// skipping the m-sized scratch keeps it allocation-light.
		c := cfg[0]
		out.QueryBenefit = s.base[c.ID] + s.vals[c.ID]*float64(len(s.queries[c.ID]))
		out.UpdateCost = s.upd[c.ID]
		out.Net = out.QueryBenefit - out.UpdateCost
		if s.base[c.ID] > 0 || len(s.queries[c.ID]) > 0 {
			out.Used[c.ID] = true
		}
		return out
	}
	bestV := make([]float64, s.m)
	bestID := make([]int32, s.m)
	for _, c := range cfg {
		v := s.vals[c.ID]
		out.QueryBenefit += s.base[c.ID]
		out.UpdateCost += s.upd[c.ID]
		if s.base[c.ID] > 0 {
			out.Used[c.ID] = true
		}
		for _, q := range s.queries[c.ID] {
			switch {
			case v > bestV[q]:
				bestV[q], bestID[q] = v, int32(c.ID)
			case v == bestV[q] && v > 0 && int32(c.ID) < bestID[q]:
				bestID[q] = int32(c.ID)
			}
		}
	}
	for q, v := range bestV {
		if v > 0 {
			out.QueryBenefit += v
			out.Used[int(bestID[q])] = true
		}
	}
	out.Net = out.QueryBenefit - out.UpdateCost
	return out
}
