package search_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/search"
)

// blockingStrategy parks until its context is cancelled, then returns
// the context error — a stand-in for a member too slow for the
// deadline.
type blockingStrategy struct{}

func (blockingStrategy) Name() string { return "test-blocking" }

func (blockingStrategy) Search(ctx context.Context, sp *search.Space) (*search.Result, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestRaceAnytimeDeadline pins the anytime contract: with
// Space.Anytime, a race whose deadline cuts off a member still returns
// the best configuration among the members that finished; without it,
// the deadline surfaces as the context error. The blocking member
// guarantees the deadline fires while fast members have completed.
func TestRaceAnytimeDeadline(t *testing.T) {
	search.Register(blockingStrategy{})
	defer func() {
		if !search.Unregister("test-blocking") {
			t.Error("test-blocking was not registered")
		}
	}()

	w := propertyWorkloads(t)["paper"]
	a := testAdvisor(t)
	prep, err := a.Prepare(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	race, err := search.Lookup("race")
	if err != nil {
		t.Fatal(err)
	}

	// Reference run: no deadline, members only (exclude the blocking
	// one by racing on a space whose winner we compute serially).
	heuristic, err := prep.RecommendWith(context.Background(), core.SearchGreedyHeuristic, 0)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("anytime returns best finished member", func(t *testing.T) {
		sp := prep.Space().WithBudget(0)
		sp.Anytime = true
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel()
		res, err := race.Search(ctx, sp)
		if err != nil {
			t.Fatalf("anytime race failed at deadline: %v", err)
		}
		if len(res.Members) == 0 {
			t.Fatal("no member finished before the deadline")
		}
		for _, m := range res.Members {
			if m.Strategy == "test-blocking" {
				t.Error("blocking member reported as finished")
			}
		}
		// The three real strategies all finished (they are orders of
		// magnitude faster than the deadline), so the anytime winner
		// must be at least as good as the heuristic result.
		if res.Eval.Net < heuristic.NetBenefit {
			t.Errorf("anytime winner net %.3f < heuristic net %.3f", res.Eval.Net, heuristic.NetBenefit)
		}
		pick := res.Trace[len(res.Trace)-1]
		if pick.Action != search.ActionPick {
			t.Fatalf("last trace event is %s, want pick", pick.Action)
		}
		if !strings.Contains(pick.Note, "deadline:") {
			t.Errorf("pick note %q does not mention the deadline", pick.Note)
		}
	})

	t.Run("without anytime the deadline is an error", func(t *testing.T) {
		sp := prep.Space().WithBudget(0)
		sp.Anytime = false
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel()
		_, err := race.Search(ctx, sp)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("got %v, want context.DeadlineExceeded", err)
		}
	})

	t.Run("full recommendation assembles despite the expired deadline", func(t *testing.T) {
		// End-to-end through core: the deadline fires during the race
		// (the blocking member never returns), and the recommendation —
		// including the final and overtrained evaluations that run
		// after the search — must still come back.
		env, err := experiments.BuildEnv(experiments.Small)
		if err != nil {
			t.Fatal(err)
		}
		opts := core.DefaultOptions()
		opts.Anytime = true
		anytime := core.New(env.Cat, opts)
		aprep, err := anytime.Prepare(context.Background(), w)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel()
		rec, err := aprep.RecommendWith(ctx, core.SearchRace, 0)
		if err != nil {
			t.Fatalf("anytime recommendation failed at deadline: %v", err)
		}
		if len(rec.Config) == 0 || rec.NetBenefit < heuristic.NetBenefit {
			t.Errorf("anytime recommendation (%d indexes, net %.1f) worse than heuristic member (net %.1f)",
				len(rec.Config), rec.NetBenefit, heuristic.NetBenefit)
		}
		if len(rec.PerQuery) != len(w.Queries) {
			t.Errorf("assembly incomplete: %d per-query rows for %d queries", len(rec.PerQuery), len(w.Queries))
		}
	})

	t.Run("explicit cancellation aborts even with finished members", func(t *testing.T) {
		sp := prep.Space().WithBudget(0)
		sp.Anytime = true
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			// By now the three real members are long done (they take
			// milliseconds); only the blocking member is still parked.
			time.Sleep(300 * time.Millisecond)
			cancel()
		}()
		_, err := race.Search(ctx, sp)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled (anytime must not soften explicit aborts)", err)
		}
	})

	t.Run("no finished member surfaces the deadline even in anytime mode", func(t *testing.T) {
		sp := prep.Space().WithBudget(0)
		sp.Anytime = true
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // every member sees a dead context immediately
		_, err := race.Search(ctx, sp)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	})
}
