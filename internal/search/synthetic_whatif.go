package search

import (
	"context"
	"strconv"

	"repro/internal/catalog"
	"repro/internal/querylang"
	"repro/internal/whatif"
)

// synBaseCost is the document-scan cost of every synthetic shared
// query; per-query index benefit is a reduction below it.
const synBaseCost = 100000

// SyntheticBackend is a whatif.CostService (and RelevanceService) over
// the synthetic benefit model: the same max-cover cost function as
// synthEval, but decomposed per query so a real whatif.Engine — atom
// cache, relevance projection, worker pool — sits between the search
// and the model. A query's cost depends only on the configuration
// members that serve it, so RelevantFilter is exact and projection is
// cost-preserving by construction, mirroring the optimizer backend's
// contract at benchmark scale.
type SyntheticBackend struct {
	model *synthEval
	// byName maps an index-definition name back to its candidate ID.
	byName map[string]int
	// qIndex maps a query ID to its shared-query index.
	qIndex map[string]int
}

// EvaluateQuery implements whatif.CostService: the query's cost is
// synBaseCost minus the best per-query value among configuration
// members serving it (ties to the lowest candidate ID, matching
// synthEval).
func (b *SyntheticBackend) EvaluateQuery(ctx context.Context, q *querylang.Query, config []*catalog.IndexDef) (whatif.QueryEval, error) {
	if err := ctx.Err(); err != nil {
		return whatif.QueryEval{}, err
	}
	qi := b.qIndex[q.ID]
	ev := whatif.QueryEval{CostNoIndexes: synBaseCost, Cost: synBaseCost}
	bestV, bestID, bestName := 0.0, -1, ""
	for _, d := range config {
		id := b.byName[d.Name]
		if !b.serves(id, qi) {
			continue
		}
		v := b.model.vals[id]
		if v > bestV || (v == bestV && v > 0 && id < bestID) {
			bestV, bestID, bestName = v, id, d.Name
		}
	}
	if bestID >= 0 && bestV > 0 {
		ev.Cost -= bestV
		ev.UsedIndexes = []string{bestName}
	}
	return ev, nil
}

// RelevantFilter implements whatif.RelevanceService: a definition is
// relevant to a query iff its candidate serves the query in the model.
func (b *SyntheticBackend) RelevantFilter(q *querylang.Query) func(*catalog.IndexDef) bool {
	qi := b.qIndex[q.ID]
	return func(d *catalog.IndexDef) bool { return b.serves(b.byName[d.Name], qi) }
}

// serves reports whether candidate id's index improves shared query qi.
func (b *SyntheticBackend) serves(id, qi int) bool {
	for _, sq := range b.model.queries[id] {
		if int(sq) == qi {
			return true
		}
	}
	return false
}

// synthWhatifEval adapts a whatif.Bound over a SyntheticBackend to the
// search Evaluator: per-query engine costs are folded back into the
// model's workload aggregates (modular private benefit and update cost
// added outside the engine, exactly as synthEval computes them), so the
// whatif-backed space chooses the same configurations as the plain
// synthetic space — with every evaluation flowing through the engine's
// atom cache.
type synthWhatifEval struct {
	model  *synthEval
	byName map[string]int
	bound  *whatif.Bound
}

func (s *synthWhatifEval) derive(res *whatif.ConfigEval, cfg []*Candidate) *Eval {
	out := &Eval{Used: map[int]bool{}}
	for _, qe := range res.Queries {
		out.QueryBenefit += qe.CostNoIndexes - qe.Cost
		for _, name := range qe.UsedIndexes {
			out.Used[s.byName[name]] = true
		}
	}
	for _, c := range cfg {
		out.QueryBenefit += s.model.base[c.ID]
		out.UpdateCost += s.model.upd[c.ID]
		if s.model.base[c.ID] > 0 {
			out.Used[c.ID] = true
		}
	}
	out.Net = out.QueryBenefit - out.UpdateCost
	return out
}

func defsOf(cfg []*Candidate) []*catalog.IndexDef {
	defs := make([]*catalog.IndexDef, len(cfg))
	for i, c := range cfg {
		defs[i] = c.Def
	}
	return defs
}

// Evaluate prices one configuration through the what-if engine.
func (s *synthWhatifEval) Evaluate(ctx context.Context, cfg []*Candidate) (*Eval, error) {
	res, err := s.bound.EvaluateConfig(ctx, defsOf(cfg))
	if err != nil {
		return nil, err
	}
	return s.derive(res, cfg), nil
}

// EvaluateBatch prices base+{c} for the burst in one engine dispatch —
// identical projected sub-configs inside the burst are scheduled once.
func (s *synthWhatifEval) EvaluateBatch(ctx context.Context, base, cands []*Candidate) ([]*Eval, error) {
	configs := make([][]*catalog.IndexDef, len(cands))
	cfgs := make([][]*Candidate, len(cands))
	baseDefs := defsOf(base)
	for i, c := range cands {
		defs := make([]*catalog.IndexDef, 0, len(base)+1)
		configs[i] = append(append(defs, baseDefs...), c.Def)
		cfg := make([]*Candidate, 0, len(base)+1)
		cfgs[i] = append(append(cfg, base...), c)
	}
	results, err := s.bound.EvaluateConfigBatch(ctx, configs)
	if err != nil {
		return nil, err
	}
	out := make([]*Eval, len(cands))
	for i, res := range results {
		out[i] = s.derive(res, cfgs[i])
	}
	return out, nil
}

// Workers matches the plain synthetic space's fixed parallelism.
func (s *synthWhatifEval) Workers() int { return synWorkers }

// NewSyntheticWhatIfSpace is NewSyntheticSpace with a real what-if
// engine in the evaluation path: the same deterministic candidates,
// DAG, budget, and benefit model, but every configuration evaluation
// decomposes into per-(query, projected sub-config) atoms of a
// whatif.Engine over a SyntheticBackend. Strategies choose the same
// configurations as on the plain space; what changes is the measured
// cost — engine counters now count real per-query CostService calls,
// which is what the projection benchmarks and the projected-vs-
// unprojected differential tests need at 10k+ candidates. The engine is
// returned alongside for counter access.
func NewSyntheticWhatIfSpace(n int, seed uint64, o whatif.Options) (*Space, *whatif.Engine) {
	sp := NewSyntheticSpace(n, seed)
	model := sp.Eval.(*synthEval)
	byName := make(map[string]int, len(sp.Candidates))
	for _, c := range sp.Candidates {
		byName[c.Def.Name] = c.ID
	}
	queries := make([]*querylang.Query, model.m)
	qIndex := make(map[string]int, model.m)
	for i := range queries {
		id := "S" + strconv.Itoa(i)
		queries[i] = &querylang.Query{
			ID:         id,
			Collection: "syn",
			Text:       "synthetic shared query " + strconv.Itoa(i),
		}
		qIndex[id] = i
	}
	backend := &SyntheticBackend{model: model, byName: byName, qIndex: qIndex}
	if o.Workers == 0 {
		o.Workers = synWorkers
	}
	eng := whatif.NewEngine(backend, o)
	sp.Eval = &synthWhatifEval{model: model, byName: byName, bound: eng.Bind(queries)}
	sp.Counters = func() Counters {
		st := eng.Stats()
		return Counters{Hits: st.Hits, Misses: st.Misses, Evaluations: st.Evaluations}
	}
	return sp, eng
}
