package search

import (
	"context"
	"testing"
)

// TestMembersAbortAgainstUnbeatableLeader pins the cost-bound abort
// path deterministically: with a leader already published far above any
// achievable net, every bounded strategy must abort instead of paying
// for a search it cannot win — and the aborted result must be marked so
// the race never picks it.
func TestMembersAbortAgainstUnbeatableLeader(t *testing.T) {
	ctx := context.Background()
	for _, strat := range []Strategy{greedyHeuristic{}, topDown{}} {
		for _, eager := range []bool{false, true} {
			if eager && strat.Name() != "greedy-heuristic" {
				continue
			}
			sp := NewSyntheticSpace(400, 9).WithBudget(synBudgetPages)
			sp.EagerGreedy = eager
			sp.leader = newLeaderBoard()
			sp.leader.publish(1e18)
			res, err := strat.Search(ctx, sp)
			if err != nil {
				t.Fatalf("%s: %v", strat.Name(), err)
			}
			if !res.Aborted || !res.Stats.Aborted {
				t.Errorf("%s (eager=%v): did not abort against an unbeatable leader", strat.Name(), eager)
				continue
			}
			var found bool
			for _, e := range res.Trace {
				if e.Action == ActionAbort {
					found = true
				}
			}
			if !found {
				t.Errorf("%s (eager=%v): aborted result has no %q trace event", strat.Name(), eager, ActionAbort)
			}
		}
	}
}

// TestGreedyBasicNeverAborts guards the race's survivor guarantee: the
// baseline member has no abort hook, so at least one member always
// finishes even when the leader is unbeatable.
func TestGreedyBasicNeverAborts(t *testing.T) {
	sp := NewSyntheticSpace(400, 9).WithBudget(synBudgetPages)
	sp.leader = newLeaderBoard()
	sp.leader.publish(1e18)
	res, err := greedyBasic{}.Search(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Error("greedy-basic aborted; the race would have no guaranteed survivor")
	}
	if len(res.Config) == 0 {
		t.Error("greedy-basic chose nothing on the synthetic space")
	}
}
