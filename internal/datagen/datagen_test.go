package datagen

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/pattern"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/workload"
	"repro/internal/xmldoc"
)

func TestXMarkDeterministic(t *testing.T) {
	s1, s2 := store.New(), store.New()
	c1, err := GenerateXMark(s1, XMarkConfig{Docs: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := GenerateXMark(s2, XMarkConfig{Docs: 30, Seed: 7})
	if c1.NodeCount() != c2.NodeCount() || c1.Bytes() != c2.Bytes() {
		t.Error("same seed should generate identical data")
	}
	s3 := store.New()
	c3, _ := GenerateXMark(s3, XMarkConfig{Docs: 30, Seed: 8})
	if c1.Bytes() == c3.Bytes() {
		t.Error("different seeds should differ (almost surely)")
	}
}

func TestXMarkSchemaPaths(t *testing.T) {
	st := store.New()
	col, _ := GenerateXMark(st, XMarkConfig{Docs: 200, Seed: 1})
	s := stats.Collect(col)
	// The paper's example pattern must exist.
	for _, pat := range []string{
		"/site/regions/namerica/item/quantity",
		"/site/regions/*/item/price",
		"/site/people/person/profile/@income",
		"/site/open_auctions/open_auction/initial",
		"/site/closed_auctions/closed_auction/price",
		"//item/@id",
		"//incategory/@category",
	} {
		if s.Cardinality(pattern.MustParse(pat)) == 0 {
			t.Errorf("no nodes for %s", pat)
		}
	}
	// Region skew: namerica should dominate australia.
	na := s.Cardinality(pattern.MustParse("/site/regions/namerica/item"))
	au := s.Cardinality(pattern.MustParse("/site/regions/australia/item"))
	if na <= au {
		t.Errorf("region skew missing: namerica=%d australia=%d", na, au)
	}
}

func TestTPoXSchemaPaths(t *testing.T) {
	st := store.New()
	if err := GenerateTPoX(st, TPoXConfig{Securities: 20, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if st.Get("security").Len() != 20 {
		t.Errorf("securities = %d", st.Get("security").Len())
	}
	if st.Get("order").Len() != 200 {
		t.Errorf("orders = %d", st.Get("order").Len())
	}
	if st.Get("custacc").Len() != 100 {
		t.Errorf("custaccs = %d", st.Get("custacc").Len())
	}
	s := stats.Collect(st.Get("security"))
	for _, pat := range []string{
		"/Security/Symbol",
		"/Security/SecurityInformation/Sector",
		"/Security/Price/LastTrade",
	} {
		if s.Cardinality(pattern.MustParse(pat)) == 0 {
			t.Errorf("no nodes for %s", pat)
		}
	}
	so := stats.Collect(st.Get("order"))
	if so.Cardinality(pattern.MustParse("/FIXML/Order/@Acct")) != 200 {
		t.Error("order @Acct missing")
	}
	sc := stats.Collect(st.Get("custacc"))
	if sc.Cardinality(pattern.MustParse("//Account/Balance/OnlineActualBal/Amount")) == 0 {
		t.Error("custacc balance missing")
	}
}

func TestWorkloadQueriesParseAndRun(t *testing.T) {
	st := store.New()
	GenerateXMark(st, XMarkConfig{Docs: 60, Seed: 2})
	GenerateTPoX(st, TPoXConfig{Securities: 10, Seed: 2})
	cat := catalog.New(st)
	ex := executor.New(cat)

	xw := XMarkWorkload(20, 5)
	if len(xw.Queries) != 20 {
		t.Fatalf("xmark workload has %d queries", len(xw.Queries))
	}
	tw := TPoXWorkload(18, 5, 10)
	if len(tw.Queries) != 18 {
		t.Fatalf("tpox workload has %d queries", len(tw.Queries))
	}
	rows := 0
	for _, e := range append(xw.Queries, tw.Queries...) {
		res, err := ex.Run(e.Query, nil)
		if err != nil {
			t.Fatalf("query %q failed: %v", e.Query.Text, err)
		}
		rows += res.Rows
	}
	if rows == 0 {
		t.Error("entire workload returned zero rows; generator and queries disagree")
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a := XMarkWorkload(10, 9)
	b := XMarkWorkload(10, 9)
	for i := range a.Queries {
		if a.Queries[i].Query.Text != b.Queries[i].Query.Text || a.Queries[i].Weight != b.Queries[i].Weight {
			t.Fatal("same seed must give same workload")
		}
	}
}

func TestPaperWorkloadShape(t *testing.T) {
	w := XMarkPaperWorkload()
	if len(w.Queries) != 3 {
		t.Fatalf("paper workload = %d queries", len(w.Queries))
	}
	// Queries must produce the two quantity patterns plus a price pattern.
	var sawNA, sawAF, sawPrice bool
	for _, e := range w.Queries {
		for _, l := range e.Query.Legs() {
			switch l.Pattern.String() {
			case "/site/regions/namerica/item/quantity":
				sawNA = true
			case "/site/regions/africa/item/quantity":
				sawAF = true
			case "/site/regions/samerica/item/price":
				sawPrice = true
			}
		}
	}
	if !sawNA || !sawAF || !sawPrice {
		t.Errorf("paper legs missing: na=%v af=%v price=%v", sawNA, sawAF, sawPrice)
	}
}

func TestUpdateGenerators(t *testing.T) {
	w := XMarkWorkload(5, 1)
	XMarkUpdates(w, 10, 1)
	if len(w.Updates) != 2 || w.TotalUpdateWeight() != 10 {
		t.Errorf("updates = %d, weight = %f", len(w.Updates), w.TotalUpdateWeight())
	}
	tw := TPoXWorkload(5, 1, 10)
	TPoXUpdates(tw, 5, 1, 10)
	if len(tw.Updates) != 2 || tw.TotalUpdateWeight() != 5 {
		t.Errorf("tpox updates = %d, weight = %f", len(tw.Updates), tw.TotalUpdateWeight())
	}
	// The insert documents must be parseable XML.
	for _, u := range append(w.Updates, tw.Updates...) {
		if u.Kind == workload.UpdateInsert {
			if _, err := xmldoc.ParseString(u.DocXML); err != nil {
				t.Errorf("insert document does not parse: %v", err)
			}
		}
	}
}
