package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/store"
	"repro/internal/xmldoc"
)

// Sectors are the TPoX-like security sectors.
var Sectors = []string{
	"Energy", "Materials", "Industrials", "ConsumerDiscretionary",
	"ConsumerStaples", "HealthCare", "Financials", "InformationTechnology",
	"TelecommunicationServices", "Utilities",
}

var securityTypes = []string{"Stock", "Bond", "MutualFund"}

var currencies = []string{"USD", "EUR", "CAD", "JPY", "GBP"}

var nationalities = []string{
	"American", "Canadian", "German", "Japanese", "Brazilian", "Indian",
	"Egyptian", "Nigerian", "Korean", "Spanish",
}

// TPoXConfig controls the TPoX-like generator. It fills three
// collections (securities, orders, custaccs) in the 1 : 10 : 5 ratio of
// the original benchmark's document mix.
type TPoXConfig struct {
	// Securities is the number of security documents (orders and
	// customer accounts scale from it).
	Securities int
	Seed       int64
}

func (c *TPoXConfig) fill() {
	if c.Securities <= 0 {
		c.Securities = 50
	}
}

// TPoXCollections names the three generated collections.
var TPoXCollections = []string{"security", "order", "custacc"}

// GenerateTPoX populates the three TPoX collections in st.
func GenerateTPoX(st *store.Store, cfg TPoXConfig) error {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &tpoxGen{rng: rng, nSec: cfg.Securities}

	sec := st.Get("security")
	if sec == nil {
		var err error
		if sec, err = st.Create("security"); err != nil {
			return err
		}
	}
	for i := 0; i < cfg.Securities; i++ {
		sec.Insert(g.security(i))
	}

	ord := st.Get("order")
	if ord == nil {
		var err error
		if ord, err = st.Create("order"); err != nil {
			return err
		}
	}
	for i := 0; i < cfg.Securities*10; i++ {
		ord.Insert(g.order(i))
	}

	cust := st.Get("custacc")
	if cust == nil {
		var err error
		if cust, err = st.Create("custacc"); err != nil {
			return err
		}
	}
	for i := 0; i < cfg.Securities*5; i++ {
		cust.Insert(g.custacc(i))
	}
	return nil
}

type tpoxGen struct {
	rng  *rand.Rand
	nSec int
}

func (g *tpoxGen) symbol(i int) string {
	letters := "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	return fmt.Sprintf("%c%c%c%d", letters[i%26], letters[(i/26)%26], letters[(i/676)%26], i%10)
}

func (g *tpoxGen) security(i int) *xmldoc.Document {
	s := xmldoc.NewElement("Security")
	s.AppendChild(xmldoc.Elem("Symbol", g.symbol(i)))
	s.AppendChild(xmldoc.Elem("Name", fmt.Sprintf("%s %s Corp",
		adjectives[g.rng.Intn(len(adjectives))], nouns[g.rng.Intn(len(nouns))])))
	s.AppendChild(xmldoc.Elem("SecurityType", securityTypes[g.rng.Intn(len(securityTypes))]))
	info := xmldoc.NewElement("SecurityInformation")
	info.AppendChild(xmldoc.Elem("Sector", Sectors[g.rng.Intn(len(Sectors))]))
	info.AppendChild(xmldoc.Elem("Industry", fmt.Sprintf("Industry%02d", g.rng.Intn(40))))
	s.AppendChild(info)
	price := xmldoc.NewElement("Price")
	last := 2 + g.rng.ExpFloat64()*90
	price.AppendChild(xmldoc.Elem("LastTrade", fmt.Sprintf("%.2f", last)))
	price.AppendChild(xmldoc.Elem("Open", fmt.Sprintf("%.2f", last*(0.95+0.1*g.rng.Float64()))))
	price.AppendChild(xmldoc.Elem("High", fmt.Sprintf("%.2f", last*1.05)))
	price.AppendChild(xmldoc.Elem("Low", fmt.Sprintf("%.2f", last*0.94)))
	price.AppendChild(xmldoc.Elem("Volume", fmt.Sprintf("%d", 1000+g.rng.Intn(5000000))))
	s.AppendChild(price)
	s.AppendChild(xmldoc.Elem("PE", fmt.Sprintf("%.1f", 4+g.rng.Float64()*40)))
	s.AppendChild(xmldoc.Elem("Yield", fmt.Sprintf("%.2f", g.rng.Float64()*8)))
	doc := &xmldoc.Document{Name: "sec" + g.symbol(i), Root: s}
	doc.Renumber()
	return doc
}

func (g *tpoxGen) order(i int) *xmldoc.Document {
	f := xmldoc.NewElement("FIXML")
	o := xmldoc.NewElement("Order")
	o.SetAttr("ID", fmt.Sprintf("103%06d", i))
	o.SetAttr("Acct", fmt.Sprintf("%d", 10000+g.rng.Intn(5*g.nSec)))
	o.SetAttr("Side", []string{"1", "2"}[g.rng.Intn(2)])
	o.SetAttr("TxnTm", fmt.Sprintf("2008-%02d-%02dT%02d:%02d:00", 1+g.rng.Intn(6), 1+g.rng.Intn(28), g.rng.Intn(24), g.rng.Intn(60)))
	o.SetAttr("Typ", "2")
	inst := xmldoc.NewElement("Instrmt")
	inst.SetAttr("Sym", g.symbol(g.rng.Intn(g.nSec)))
	o.AppendChild(inst)
	qty := xmldoc.NewElement("OrdQty")
	qty.SetAttr("Qty", fmt.Sprintf("%d", 10+g.rng.Intn(9990)))
	o.AppendChild(qty)
	px := xmldoc.NewElement("Px")
	px.SetAttr("Px", fmt.Sprintf("%.2f", 2+g.rng.ExpFloat64()*90))
	o.AppendChild(px)
	f.AppendChild(o)
	doc := &xmldoc.Document{Name: fmt.Sprintf("order%d", i), Root: f}
	doc.Renumber()
	return doc
}

func (g *tpoxGen) custacc(i int) *xmldoc.Document {
	c := xmldoc.NewElement("Customer")
	c.SetAttr("id", fmt.Sprintf("%d", 10000+i))
	name := xmldoc.NewElement("Name")
	name.AppendChild(xmldoc.Elem("FirstName", firstNames[g.rng.Intn(len(firstNames))]))
	name.AppendChild(xmldoc.Elem("LastName", lastNames[g.rng.Intn(len(lastNames))]))
	c.AppendChild(name)
	c.AppendChild(xmldoc.Elem("DateOfBirth", fmt.Sprintf("%04d-%02d-%02d", 1940+g.rng.Intn(50), 1+g.rng.Intn(12), 1+g.rng.Intn(28))))
	c.AppendChild(xmldoc.Elem("Nationality", nationalities[g.rng.Intn(len(nationalities))]))
	c.AppendChild(xmldoc.Elem("PremiumCustomer", []string{"true", "false"}[g.rng.Intn(2)]))
	accts := xmldoc.NewElement("Accounts")
	for a := 0; a < 1+g.rng.Intn(3); a++ {
		acct := xmldoc.NewElement("Account")
		acct.SetAttr("id", fmt.Sprintf("%d-%d", 10000+i, a))
		acct.AppendChild(xmldoc.Elem("Currency", currencies[g.rng.Intn(len(currencies))]))
		bal := xmldoc.NewElement("Balance")
		ob := xmldoc.NewElement("OnlineActualBal")
		ob.AppendChild(xmldoc.Elem("Amount", fmt.Sprintf("%.2f", g.rng.ExpFloat64()*250000)))
		bal.AppendChild(ob)
		acct.AppendChild(bal)
		hold := xmldoc.NewElement("Holdings")
		for h := 0; h < g.rng.Intn(4); h++ {
			pos := xmldoc.NewElement("Position")
			pos.AppendChild(xmldoc.Elem("Symbol", g.symbol(g.rng.Intn(g.nSec))))
			pos.AppendChild(xmldoc.Elem("Qty", fmt.Sprintf("%d", 1+g.rng.Intn(2000))))
			hold.AppendChild(pos)
		}
		acct.AppendChild(hold)
		accts.AppendChild(acct)
	}
	c.AppendChild(accts)
	doc := &xmldoc.Document{Name: fmt.Sprintf("cust%d", i), Root: c}
	doc.Renumber()
	return doc
}

// TPoXOrderXML returns a generated order document as XML text, for
// insert-update workloads.
func TPoXOrderXML(seed int64, nSecurities int) string {
	if nSecurities <= 0 {
		nSecurities = 50
	}
	g := &tpoxGen{rng: rand.New(rand.NewSource(seed)), nSec: nSecurities}
	return g.order(0).Serialize()
}
