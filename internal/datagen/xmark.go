// Package datagen generates the synthetic data and query workloads the
// demonstration runs on: an XMark-like auction database [7] and a
// TPoX-like financial database [5], both seeded and deterministic.
//
// The real benchmarks ship data generators we cannot vendor (and XMark
// emits one huge document, where a DB2 XML column holds many small ones),
// so these generators reproduce the *schemas and value distributions*
// that matter to the advisor: the paper's example patterns — e.g.
// /site/regions/namerica/item/quantity — exist here with realistic
// cardinalities, skew, and cross-document variety.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/store"
	"repro/internal/xmldoc"
)

// Regions are the XMark continent regions.
var Regions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

var firstNames = []string{
	"Alice", "Bob", "Carla", "Dmitri", "Elena", "Farid", "Grace", "Hugo",
	"Ines", "Jun", "Kavya", "Liam", "Mona", "Nils", "Olga", "Pavel",
	"Quinn", "Rosa", "Sven", "Tara", "Umar", "Vera", "Wei", "Ximena",
	"Yuki", "Zane",
}

var lastNames = []string{
	"Anders", "Baker", "Chen", "Diaz", "Eriksen", "Fischer", "Garcia",
	"Hansen", "Ito", "Jansen", "Kumar", "Larsen", "Meyer", "Nguyen",
	"Okafor", "Petrov", "Quispe", "Rossi", "Schmidt", "Tanaka", "Ueda",
	"Vogel", "Wong", "Xu", "Yilmaz", "Zhao",
}

var nouns = []string{
	"bicycle", "lamp", "mask", "carving", "tortoise", "guitar", "kettle",
	"rug", "vase", "compass", "telescope", "atlas", "clock", "radio",
	"camera", "statue", "drum", "basket", "quilt", "chessboard",
}

var adjectives = []string{
	"antique", "handmade", "rare", "vintage", "painted", "carved",
	"gilded", "rustic", "ornate", "classic", "restored", "signed",
	"miniature", "oversized", "ceremonial", "nautical",
}

var cities = []string{
	"Vancouver", "Toronto", "Cairo", "Lagos", "Mumbai", "Tokyo", "Sydney",
	"Berlin", "Madrid", "Lima", "Chicago", "Oslo", "Nairobi", "Seoul",
}

var countries = []string{
	"Canada", "Egypt", "Nigeria", "India", "Japan", "Australia",
	"Germany", "Spain", "Peru", "United States", "Norway", "Kenya",
}

// XMarkConfig controls the XMark-like generator.
type XMarkConfig struct {
	// Docs is the number of <site> documents to generate.
	Docs int
	// Seed drives all randomness; equal configs generate equal data.
	Seed int64
	// ItemsPerDoc is the mean number of items per document (default 3).
	ItemsPerDoc int
	// Collection is the target collection name (default "auction").
	Collection string
}

func (c *XMarkConfig) fill() {
	if c.Docs <= 0 {
		c.Docs = 100
	}
	if c.ItemsPerDoc <= 0 {
		c.ItemsPerDoc = 3
	}
	if c.Collection == "" {
		c.Collection = "auction"
	}
}

// GenerateXMark populates (creating if needed) the configured collection
// in st and returns it.
func GenerateXMark(st *store.Store, cfg XMarkConfig) (*store.Collection, error) {
	cfg.fill()
	col := st.Get(cfg.Collection)
	if col == nil {
		var err error
		col, err = st.Create(cfg.Collection)
		if err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &xmarkGen{rng: rng, cfg: cfg}
	for i := 0; i < cfg.Docs; i++ {
		col.Insert(g.Document(i))
	}
	return col, nil
}

type xmarkGen struct {
	rng *rand.Rand
	cfg XMarkConfig
	seq int
}

// Document builds one <site> document.
func (g *xmarkGen) Document(n int) *xmldoc.Document {
	site := xmldoc.NewElement("site")

	regions := xmldoc.NewElement("regions")
	// Regions are skewed: namerica and europe carry most items, like the
	// original XMark distribution.
	nItems := 1 + g.rng.Intn(2*g.cfg.ItemsPerDoc-1)
	byRegion := map[string]*xmldoc.Node{}
	for i := 0; i < nItems; i++ {
		region := g.pickRegion()
		rn := byRegion[region]
		if rn == nil {
			rn = xmldoc.NewElement(region)
			byRegion[region] = rn
			regions.AppendChild(rn)
		}
		rn.AppendChild(g.item())
	}
	site.AppendChild(regions)

	people := xmldoc.NewElement("people")
	for i := 0; i < 1+g.rng.Intn(2); i++ {
		people.AppendChild(g.person())
	}
	site.AppendChild(people)

	oa := xmldoc.NewElement("open_auctions")
	for i := 0; i < g.rng.Intn(3); i++ {
		oa.AppendChild(g.openAuction())
	}
	site.AppendChild(oa)

	ca := xmldoc.NewElement("closed_auctions")
	for i := 0; i < g.rng.Intn(3); i++ {
		ca.AppendChild(g.closedAuction())
	}
	site.AppendChild(ca)

	if g.rng.Intn(4) == 0 {
		cats := xmldoc.NewElement("categories")
		c := xmldoc.NewElement("category")
		c.SetAttr("id", fmt.Sprintf("category%d", g.rng.Intn(20)))
		c.AppendChild(xmldoc.Elem("name", g.phrase(2)))
		cats.AppendChild(c)
		site.AppendChild(cats)
	}

	doc := &xmldoc.Document{Name: fmt.Sprintf("site%d", n), Root: site}
	doc.Renumber()
	return doc
}

func (g *xmarkGen) pickRegion() string {
	r := g.rng.Float64()
	switch {
	case r < 0.35:
		return "namerica"
	case r < 0.60:
		return "europe"
	case r < 0.75:
		return "asia"
	case r < 0.85:
		return "africa"
	case r < 0.95:
		return "samerica"
	default:
		return "australia"
	}
}

func (g *xmarkGen) item() *xmldoc.Node {
	g.seq++
	it := xmldoc.NewElement("item")
	it.SetAttr("id", fmt.Sprintf("item%d", g.seq))
	if g.rng.Intn(5) == 0 {
		it.SetAttr("featured", "yes")
	}
	it.AppendChild(xmldoc.Elem("name", g.phrase(2)))
	it.AppendChild(xmldoc.Elem("quantity", fmt.Sprintf("%d", 1+g.rng.Intn(10))))
	// Prices are skewed: most items cheap, a long expensive tail.
	price := 5 + g.rng.ExpFloat64()*120
	it.AppendChild(xmldoc.Elem("price", fmt.Sprintf("%.2f", price)))
	it.AppendChild(xmldoc.Elem("payment", []string{"Cash", "Creditcard", "Money order"}[g.rng.Intn(3)]))
	it.AppendChild(xmldoc.Elem("shipping", []string{"Will ship internationally", "Buyer pays fixed shipping charges"}[g.rng.Intn(2)]))
	loc := xmldoc.NewElement("location")
	loc.AppendChild(xmldoc.NewText(cities[g.rng.Intn(len(cities))]))
	it.AppendChild(loc)
	inc := xmldoc.NewElement("incategory")
	inc.SetAttr("category", fmt.Sprintf("category%d", g.rng.Intn(20)))
	it.AppendChild(inc)
	desc := xmldoc.NewElement("description")
	desc.AppendChild(xmldoc.Elem("text", g.phrase(6+g.rng.Intn(10))))
	it.AppendChild(desc)
	return it
}

func (g *xmarkGen) person() *xmldoc.Node {
	g.seq++
	p := xmldoc.NewElement("person")
	p.SetAttr("id", fmt.Sprintf("person%d", g.seq))
	first := firstNames[g.rng.Intn(len(firstNames))]
	last := lastNames[g.rng.Intn(len(lastNames))]
	p.AppendChild(xmldoc.Elem("name", first+" "+last))
	p.AppendChild(xmldoc.Elem("emailaddress", strings.ToLower(first)+"@example.com"))
	if g.rng.Intn(2) == 0 {
		p.AppendChild(xmldoc.Elem("phone", fmt.Sprintf("+1 (%d) %d-%d", 200+g.rng.Intn(700), 100+g.rng.Intn(900), 1000+g.rng.Intn(9000))))
	}
	addr := xmldoc.NewElement("address")
	addr.AppendChild(xmldoc.Elem("city", cities[g.rng.Intn(len(cities))]))
	addr.AppendChild(xmldoc.Elem("country", countries[g.rng.Intn(len(countries))]))
	p.AppendChild(addr)
	prof := xmldoc.NewElement("profile")
	prof.SetAttr("income", fmt.Sprintf("%d", 20000+g.rng.Intn(120000)))
	interest := xmldoc.NewElement("interest")
	interest.SetAttr("category", fmt.Sprintf("category%d", g.rng.Intn(20)))
	prof.AppendChild(interest)
	prof.AppendChild(xmldoc.Elem("education", []string{"High School", "College", "Graduate School", "Other"}[g.rng.Intn(4)]))
	p.AppendChild(prof)
	if g.rng.Intn(3) == 0 {
		p.AppendChild(xmldoc.Elem("creditcard", fmt.Sprintf("%d %d %d %d", 1000+g.rng.Intn(9000), 1000+g.rng.Intn(9000), 1000+g.rng.Intn(9000), 1000+g.rng.Intn(9000))))
	}
	return p
}

func (g *xmarkGen) openAuction() *xmldoc.Node {
	g.seq++
	a := xmldoc.NewElement("open_auction")
	a.SetAttr("id", fmt.Sprintf("open_auction%d", g.seq))
	initial := 1 + g.rng.ExpFloat64()*80
	a.AppendChild(xmldoc.Elem("initial", fmt.Sprintf("%.2f", initial)))
	cur := initial
	nBids := g.rng.Intn(4)
	for i := 0; i < nBids; i++ {
		b := xmldoc.NewElement("bidder")
		b.AppendChild(xmldoc.Elem("date", g.date(2007, 2008)))
		inc := 1 + g.rng.ExpFloat64()*15
		cur += inc
		b.AppendChild(xmldoc.Elem("increase", fmt.Sprintf("%.2f", inc)))
		ref := xmldoc.NewElement("personref")
		ref.SetAttr("person", fmt.Sprintf("person%d", 1+g.rng.Intn(5000)))
		b.AppendChild(ref)
		a.AppendChild(b)
	}
	a.AppendChild(xmldoc.Elem("current", fmt.Sprintf("%.2f", cur)))
	ir := xmldoc.NewElement("itemref")
	ir.SetAttr("item", fmt.Sprintf("item%d", 1+g.rng.Intn(10000)))
	a.AppendChild(ir)
	sl := xmldoc.NewElement("seller")
	sl.SetAttr("person", fmt.Sprintf("person%d", 1+g.rng.Intn(5000)))
	a.AppendChild(sl)
	a.AppendChild(xmldoc.Elem("quantity", fmt.Sprintf("%d", 1+g.rng.Intn(5))))
	iv := xmldoc.NewElement("interval")
	iv.AppendChild(xmldoc.Elem("start", g.date(2007, 2008)))
	iv.AppendChild(xmldoc.Elem("end", g.date(2008, 2009)))
	a.AppendChild(iv)
	return a
}

func (g *xmarkGen) closedAuction() *xmldoc.Node {
	g.seq++
	a := xmldoc.NewElement("closed_auction")
	sl := xmldoc.NewElement("seller")
	sl.SetAttr("person", fmt.Sprintf("person%d", 1+g.rng.Intn(5000)))
	a.AppendChild(sl)
	by := xmldoc.NewElement("buyer")
	by.SetAttr("person", fmt.Sprintf("person%d", 1+g.rng.Intn(5000)))
	a.AppendChild(by)
	ir := xmldoc.NewElement("itemref")
	ir.SetAttr("item", fmt.Sprintf("item%d", 1+g.rng.Intn(10000)))
	a.AppendChild(ir)
	a.AppendChild(xmldoc.Elem("price", fmt.Sprintf("%.2f", 5+g.rng.ExpFloat64()*150)))
	a.AppendChild(xmldoc.Elem("date", g.date(2006, 2008)))
	a.AppendChild(xmldoc.Elem("quantity", fmt.Sprintf("%d", 1+g.rng.Intn(5))))
	a.AppendChild(xmldoc.Elem("type", []string{"Regular", "Featured"}[g.rng.Intn(2)]))
	return a
}

func (g *xmarkGen) phrase(words int) string {
	var sb strings.Builder
	for i := 0; i < words; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if i%2 == 0 {
			sb.WriteString(adjectives[g.rng.Intn(len(adjectives))])
		} else {
			sb.WriteString(nouns[g.rng.Intn(len(nouns))])
		}
	}
	return sb.String()
}

func (g *xmarkGen) date(fromYear, toYear int) string {
	year := fromYear + g.rng.Intn(toYear-fromYear+1)
	return fmt.Sprintf("%04d-%02d-%02d", year, 1+g.rng.Intn(12), 1+g.rng.Intn(28))
}

// XMarkDocXML returns one generated <site> document as XML text, for
// insert-update workloads.
func XMarkDocXML(seed int64) string {
	g := &xmarkGen{rng: rand.New(rand.NewSource(seed)), cfg: XMarkConfig{ItemsPerDoc: 3}}
	return g.Document(0).Serialize()
}
