package datagen

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/store"
)

// SetupStore populates a store from the CLI data specs shared by the
// xia and xiad commands: gen is "xmark:<docs>:<seed>" or
// "tpox:<securities>:<seed>" (count and seed optional), load is
// "<collection>=<dir>[,<collection>=<dir>...]" of directories of .xml
// files. Empty specs are skipped; callers decide whether at least one
// is required.
func SetupStore(st *store.Store, gen, load string) error {
	if gen != "" {
		parts := strings.Split(gen, ":")
		kind := parts[0]
		n, seed := 300, int64(1)
		if len(parts) > 1 {
			v, err := strconv.Atoi(parts[1])
			if err != nil {
				return fmt.Errorf("bad -gen count: %v", err)
			}
			n = v
		}
		if len(parts) > 2 {
			v, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				return fmt.Errorf("bad -gen seed: %v", err)
			}
			seed = v
		}
		switch kind {
		case "xmark":
			if _, err := GenerateXMark(st, XMarkConfig{Docs: n, Seed: seed}); err != nil {
				return err
			}
		case "tpox":
			if err := GenerateTPoX(st, TPoXConfig{Securities: n, Seed: seed}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown generator %q", kind)
		}
	}
	if load != "" {
		for _, spec := range strings.Split(load, ",") {
			coll, dir, ok := strings.Cut(spec, "=")
			if !ok {
				return fmt.Errorf("bad -load spec %q", spec)
			}
			col := st.Get(coll)
			if col == nil {
				var err error
				if col, err = st.Create(coll); err != nil {
					return err
				}
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				return err
			}
			for _, e := range entries {
				if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") {
					continue
				}
				data, err := os.ReadFile(filepath.Join(dir, e.Name()))
				if err != nil {
					return err
				}
				if _, err := col.InsertXML(string(data)); err != nil {
					return fmt.Errorf("%s: %w", e.Name(), err)
				}
			}
		}
	}
	return nil
}
