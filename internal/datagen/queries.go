package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/workload"
)

// Symbol returns the deterministic ticker of security i, shared between
// the data generator and the query generators so generated point queries
// actually hit data.
func Symbol(i int) string {
	letters := "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	return fmt.Sprintf("%c%c%c%d", letters[i%26], letters[(i/26)%26], letters[(i/676)%26], i%10)
}

// xmarkTemplates are the XMark query templates: the standard benchmark
// queries' access patterns "augmented with synthetic queries" as in the
// demonstration (§3). Every call instantiates fresh constants, so a
// workload contains structural repeats with varying parameters — the
// raw material for candidate generalization.
var xmarkTemplates = []func(rng *rand.Rand) string{
	func(rng *rand.Rand) string { // region + quantity (paper §2.2 example shape)
		return fmt.Sprintf(
			`for $i in collection("auction")/site/regions/%s/item where $i/quantity > %d return $i/name`,
			Regions[rng.Intn(len(Regions))], 2+rng.Intn(7))
	},
	func(rng *rand.Rand) string { // region + price range
		return fmt.Sprintf(
			`for $i in collection("auction")/site/regions/%s/item where $i/price < %d return $i`,
			Regions[rng.Intn(len(Regions))], 20+rng.Intn(180))
	},
	func(rng *rand.Rand) string { // name contains
		return fmt.Sprintf(
			`for $i in collection("auction")/site/regions/%s/item where contains($i/name, "%s") return $i/name`,
			Regions[rng.Intn(len(Regions))], nouns[rng.Intn(len(nouns))])
	},
	func(rng *rand.Rand) string { // person income
		return fmt.Sprintf(
			`for $p in collection("auction")/site/people/person where $p/profile/@income >= %d return $p/name`,
			30000+1000*rng.Intn(100))
	},
	func(rng *rand.Rand) string { // open auction initial
		return fmt.Sprintf(
			`for $a in collection("auction")/site/open_auctions/open_auction where $a/initial > %d return $a/current`,
			10+rng.Intn(150))
	},
	func(rng *rand.Rand) string { // closed auction price and date
		return fmt.Sprintf(
			`for $c in collection("auction")/site/closed_auctions/closed_auction where $c/price > %d and $c/date >= "200%d-01-01" return $c/itemref/@item`,
			20+rng.Intn(200), 6+rng.Intn(3))
	},
	func(rng *rand.Rand) string { // SQL/XML region price
		return fmt.Sprintf(
			`SELECT COUNT(*) FROM auction WHERE XMLEXISTS('$d/site/regions/%s/item[price > %d]' PASSING doc AS "d")`,
			Regions[rng.Intn(len(Regions))], 50+rng.Intn(300))
	},
	func(rng *rand.Rand) string { // category attribute equality
		return fmt.Sprintf(
			`for $i in collection("auction")/site/regions/%s/item where $i/incategory/@category = "category%d" return $i/name`,
			Regions[rng.Intn(len(Regions))], rng.Intn(20))
	},
	func(rng *rand.Rand) string { // item location
		return fmt.Sprintf(
			`for $i in collection("auction")/site/regions/%s/item where $i/location = "%s" return $i/price`,
			Regions[rng.Intn(len(Regions))], cities[rng.Intn(len(cities))])
	},
	func(rng *rand.Rand) string { // bidder increase via nested for
		return fmt.Sprintf(
			`for $a in collection("auction")/site/open_auctions/open_auction for $b in $a/bidder where $b/increase > %d return $b/date`,
			5+rng.Intn(30))
	},
}

// XMarkWorkload generates n weighted queries over the XMark-like data.
func XMarkWorkload(n int, seed int64) *workload.Workload {
	rng := rand.New(rand.NewSource(seed))
	w := &workload.Workload{Name: fmt.Sprintf("xmark-%d", seed)}
	for i := 0; i < n; i++ {
		tpl := xmarkTemplates[i%len(xmarkTemplates)]
		w.MustAddQuery(float64(1+rng.Intn(10)), tpl(rng))
	}
	return w
}

// XMarkPaperWorkload is the exact workload of the paper's §2.2 example:
// item quantities in two regions plus item prices in a third, which
// generalize to /site/regions/*/item/quantity and /site/regions/*/item/*.
func XMarkPaperWorkload() *workload.Workload {
	w := &workload.Workload{Name: "xmark-paper"}
	w.MustAddQuery(1, `for $i in collection("auction")/site/regions/namerica/item where $i/quantity > 5 return $i/name`)
	w.MustAddQuery(1, `for $i in collection("auction")/site/regions/africa/item where $i/quantity > 3 return $i/name`)
	w.MustAddQuery(1, `for $i in collection("auction")/site/regions/samerica/item where $i/price < 40 return $i/name`)
	return w
}

// XMarkUpdates appends insert/delete statements to the workload with the
// given total weight.
func XMarkUpdates(w *workload.Workload, weight float64, seed int64) {
	half := weight / 2
	w.AddInsert(half, "auction", XMarkDocXML(seed))
	if err := w.AddDelete(half, "auction", "/site/closed_auctions/closed_auction"); err != nil {
		panic(err)
	}
}

// tpoxTemplates mirror the TPoX transaction mix: selective point lookups
// by ticker/account, analyst range scans, and customer-profile queries.
var tpoxTemplates []func(rng *rand.Rand, nSec int) string

func init() {
	tpoxTemplates = []func(rng *rand.Rand, nSec int) string{
		func(rng *rand.Rand, nSec int) string { // point lookup by symbol
			return fmt.Sprintf(
				`for $s in collection("security")/Security where $s/Symbol = "%s" return $s/Price/LastTrade`,
				Symbol(rng.Intn(nSec)))
		},
		func(rng *rand.Rand, nSec int) string { // sector + PE
			return fmt.Sprintf(
				`for $s in collection("security")/Security where $s/SecurityInformation/Sector = "%s" and $s/PE < %d return $s/Symbol`,
				Sectors[rng.Intn(len(Sectors))], 10+rng.Intn(30))
		},
		func(rng *rand.Rand, nSec int) string { // price range
			return fmt.Sprintf(
				`for $s in collection("security")/Security where $s/Price/LastTrade >= %d return $s/Symbol`,
				50+rng.Intn(150))
		},
		func(rng *rand.Rand, nSec int) string { // order by account (SQL/XML)
			return fmt.Sprintf(
				`SELECT COUNT(*) FROM order WHERE XMLEXISTS('$o/FIXML/Order[@Acct = "%d"]' PASSING doc AS "o")`,
				10000+rng.Intn(5*nSec))
		},
		func(rng *rand.Rand, nSec int) string { // big orders
			return fmt.Sprintf(
				`for $o in collection("order")/FIXML/Order where $o/OrdQty/@Qty > %d return $o/@ID`,
				1000+rng.Intn(8000))
		},
		func(rng *rand.Rand, nSec int) string { // orders for a symbol
			return fmt.Sprintf(
				`for $o in collection("order")/FIXML/Order where $o/Instrmt/@Sym = "%s" return $o/@ID`,
				Symbol(rng.Intn(nSec)))
		},
		func(rng *rand.Rand, nSec int) string { // wealthy accounts
			return fmt.Sprintf(
				`for $c in collection("custacc")/Customer where $c/Accounts/Account/Balance/OnlineActualBal/Amount > %d return $c/Name/LastName`,
				100000+10000*rng.Intn(40))
		},
		func(rng *rand.Rand, nSec int) string { // nationality
			return fmt.Sprintf(
				`for $c in collection("custacc")/Customer where $c/Nationality = "%s" return $c/Name/LastName`,
				nationalities[rng.Intn(len(nationalities))])
		},
		func(rng *rand.Rand, nSec int) string { // date of birth
			return fmt.Sprintf(
				`for $c in collection("custacc")/Customer where $c/DateOfBirth <= "19%d-01-01" return $c/@id`,
				55+rng.Intn(35))
		},
	}
}

// TPoXWorkload generates n weighted queries over the TPoX-like data.
func TPoXWorkload(n int, seed int64, nSecurities int) *workload.Workload {
	if nSecurities <= 0 {
		nSecurities = 50
	}
	rng := rand.New(rand.NewSource(seed))
	w := &workload.Workload{Name: fmt.Sprintf("tpox-%d", seed)}
	for i := 0; i < n; i++ {
		tpl := tpoxTemplates[i%len(tpoxTemplates)]
		w.MustAddQuery(float64(1+rng.Intn(10)), tpl(rng, nSecurities))
	}
	return w
}

// TPoXUpdates appends the TPoX-style order-entry updates (inserts of new
// orders dominate the TPoX write mix).
func TPoXUpdates(w *workload.Workload, weight float64, seed int64, nSecurities int) {
	w.AddInsert(weight*0.8, "order", TPoXOrderXML(seed, nSecurities))
	if err := w.AddDelete(weight*0.2, "order", "/FIXML/Order"); err != nil {
		panic(err)
	}
}
