// Package lp is a small pure-Go solver for the fractional
// index-selection relaxation (the CoPhy-style LP): given per-(query,
// candidate) benefit coefficients, per-candidate modular net weights,
// sizes, a disk budget, and at-most-one side constraints over
// containment chains, it computes a fractional installation vector and
// a certified upper bound on every feasible configuration's surrogate
// net benefit.
//
// The LP, with x_c the installed fraction of candidate c and y_qc the
// fraction of query q served by c:
//
//	max  Σ_c w_c·x_c + Σ_(q,c) b_qc·y_qc
//	s.t. y_qc ≤ x_c                 (serving needs the index)
//	     Σ_c y_qc ≤ 1    per query  (a query is served once)
//	     Σ_c s_c·x_c ≤ B            (disk budget, when B > 0)
//	     Σ_{c∈G} x_c ≤ 1 per group  (containment-chain redundancy)
//	     0 ≤ x, y ≤ 1
//
// The solver works on the dual by exact coordinate descent: each
// query price β_q, chain rent γ_G, and the budget price λ minimize a
// one-dimensional piecewise-linear convex function whose breakpoints
// are scanned exactly (a "second price" per query and per chain, a
// density threshold for λ). Every iterate is dual feasible, so
//
//	D(β, λ, γ) = Σ_q β_q + λ·B + Σ_G γ_G + Σ_c (R_c)₊
//
// with reduced profit R_c = w_c + Σ_q (b_qc − β_q)₊ − λ·s_c − Σ_{G∋c} γ_G
// is a valid upper bound at any pass count — an early stop only
// loosens the bound, never invalidates it. Descent is deterministic
// (fixed coordinate order, exact breakpoint scans, no randomization),
// so identical problems produce identical solutions.
package lp

import "sort"

// Entry is one (query, benefit) coefficient of an item's sparse
// benefit row.
type Entry struct {
	// Query is the query index in [0, NumQueries).
	Query int32
	// Benefit is the non-negative benefit of serving the query with
	// this item.
	Benefit float64
}

// Problem is one fractional index-selection instance. Items are dense
// 0..NumItems-1; callers choose the item order (the solver breaks
// exact ties toward lower indices, so a content-canonical order makes
// solutions independent of input permutation).
type Problem struct {
	// NumItems is the candidate count.
	NumItems int
	// NumQueries is the query count (the column space of Rows).
	NumQueries int
	// Weight is the per-item modular net weight w_c (private benefit
	// minus update cost); may be negative.
	Weight []float64
	// Size is the per-item size in pages; non-positive sizes count as
	// one page.
	Size []int64
	// Budget is the page budget B; 0 or negative means unlimited.
	Budget int64
	// Rows is the sparse benefit row of each item, sorted by query.
	Rows [][]Entry
	// Groups are the at-most-one side constraints: each group lists
	// item indices of one containment chain (Σ x ≤ 1).
	Groups [][]int32
}

// Options tune the solver. The zero value selects defaults.
type Options struct {
	// MaxPasses caps full coordinate-descent passes (0 = default 48).
	MaxPasses int
	// Tol is the relative dual-improvement convergence threshold
	// (0 = default 1e-7).
	Tol float64
}

// DefaultMaxPasses is the pass cap used when Options.MaxPasses is 0.
const DefaultMaxPasses = 48

const defaultTol = 1e-7

// Solution is one solve: the fractional installation vector, its
// primal objective value, and the dual upper bound.
type Solution struct {
	// X is the fractional installation per item, in [0, 1].
	X []float64
	// Objective is the primal value of X (a lower bound on the LP
	// optimum).
	Objective float64
	// Bound is the dual objective at the final iterate: a certified
	// upper bound on the LP optimum, and therefore on the surrogate
	// net benefit of every feasible integral configuration.
	Bound float64
	// Passes is the number of coordinate-descent passes performed.
	Passes int
	// Converged reports whether the dual improvement fell below the
	// tolerance before the pass cap.
	Converged bool
	// Lambda is the final budget price (0 when the budget is slack or
	// unlimited).
	Lambda float64
	// Reduced is the final reduced profit R_c per item: the dual
	// surplus an item retains after paying its query, budget, and
	// chain prices. Positive entries are the LP's support.
	Reduced []float64
}

// qItem is one incidence-list entry: an item serving a query, with
// its benefit coefficient.
type qItem struct {
	item int32
	b    float64
}

// Solve runs deterministic dual coordinate descent and extracts a
// budget- and group-feasible fractional primal from the final reduced
// profits. A nil problem or one with no items yields an empty
// solution with a zero bound, so callers need no special cases.
func Solve(p *Problem, o Options) *Solution {
	if p == nil || p.NumItems == 0 {
		return &Solution{Converged: true}
	}
	maxPasses := o.MaxPasses
	if maxPasses <= 0 {
		maxPasses = DefaultMaxPasses
	}
	tol := o.Tol
	if tol <= 0 {
		tol = defaultTol
	}

	n := p.NumItems
	size := make([]float64, n)
	for i := 0; i < n; i++ {
		s := int64(1)
		if i < len(p.Size) && p.Size[i] > 0 {
			s = p.Size[i]
		}
		size[i] = float64(s)
	}
	weight := func(i int) float64 {
		if i < len(p.Weight) {
			return p.Weight[i]
		}
		return 0
	}

	// Incidence lists: per query, the items serving it. Built in item
	// order, so every per-query scan is deterministic.
	byQuery := make([][]qItem, p.NumQueries)
	for i := 0; i < n && i < len(p.Rows); i++ {
		for _, e := range p.Rows[i] {
			if e.Benefit <= 0 || e.Query < 0 || int(e.Query) >= p.NumQueries {
				continue
			}
			byQuery[e.Query] = append(byQuery[e.Query], qItem{item: int32(i), b: e.Benefit})
		}
	}

	// Initial dual point: all prices zero, so R_c is the item's full
	// standalone surrogate net. The first pass immediately reprices.
	r := make([]float64, n)
	for i := 0; i < n; i++ {
		r[i] = weight(i)
		if i < len(p.Rows) {
			for _, e := range p.Rows[i] {
				if e.Benefit > 0 {
					r[i] += e.Benefit
				}
			}
		}
	}
	beta := make([]float64, p.NumQueries)
	gamma := make([]float64, len(p.Groups))
	lambda := 0.0
	budget := float64(p.Budget)

	dual := func() float64 {
		d := 0.0
		if p.Budget > 0 {
			d += lambda * budget
		}
		for _, b := range beta {
			d += b
		}
		for _, g := range gamma {
			d += g
		}
		for _, rc := range r {
			if rc > 0 {
				d += rc
			}
		}
		return d
	}

	type density struct{ d, s float64 }
	var scratch []density

	sol := &Solution{}
	prev := dual()
	for pass := 1; pass <= maxPasses; pass++ {
		sol.Passes = pass
		// Query prices: the exact coordinate minimum is the second
		// largest positive u_c = b_qc + min(R_c − (b_qc − β_q)₊, 0) —
		// a second-price auction where each item bids the benefit it
		// can actually back with surplus from its other queries.
		for q, items := range byQuery {
			if len(items) == 0 {
				continue
			}
			old := beta[q]
			var u1, u2 float64
			for _, e := range items {
				cur := e.b - old
				if cur < 0 {
					cur = 0
				}
				u := e.b
				if k := r[e.item] - cur; k < 0 {
					u += k
				}
				if u > u1 {
					u1, u2 = u, u1
				} else if u > u2 {
					u2 = u
				}
			}
			if u2 != old {
				beta[q] = u2
				for _, e := range items {
					curOld := e.b - old
					if curOld < 0 {
						curOld = 0
					}
					curNew := e.b - u2
					if curNew < 0 {
						curNew = 0
					}
					r[e.item] += curNew - curOld
				}
			}
		}
		// Chain rents: again a second price, over the group members'
		// rent-free reduced profits.
		for k, group := range p.Groups {
			if len(group) == 0 {
				continue
			}
			old := gamma[k]
			var u1, u2 float64
			for _, it := range group {
				u := r[it] + old
				if u > u1 {
					u1, u2 = u, u1
				} else if u > u2 {
					u2 = u
				}
			}
			if u2 != old {
				gamma[k] = u2
				for _, it := range group {
					r[it] += old - u2
				}
			}
		}
		// Budget price: the smallest λ at which the items still paying
		// for themselves fit the budget — the marginal profit density
		// at the budget boundary.
		if p.Budget > 0 {
			old := lambda
			scratch = scratch[:0]
			for i := 0; i < n; i++ {
				if u := r[i] + old*size[i]; u > 0 {
					scratch = append(scratch, density{d: u / size[i], s: size[i]})
				}
			}
			sort.Slice(scratch, func(a, b int) bool { return scratch[a].d > scratch[b].d })
			cum, nl := 0.0, 0.0
			for i := 0; i < len(scratch); {
				j, gs := i, 0.0
				for j < len(scratch) && scratch[j].d == scratch[i].d {
					gs += scratch[j].s
					j++
				}
				if cum+gs > budget {
					nl = scratch[i].d
					break
				}
				cum += gs
				i = j
			}
			if nl != old {
				lambda = nl
				for i := 0; i < n; i++ {
					r[i] += (old - nl) * size[i]
				}
			}
		}
		d := dual()
		if improved := prev - d; improved <= tol*(1+abs(d)) {
			prev = d
			sol.Converged = true
			break
		}
		prev = d
	}

	sol.Bound = prev
	sol.Lambda = lambda
	sol.Reduced = r
	sol.X = extractPrimal(p, r, size)
	sol.Objective = primalValue(p, sol.X, byQuery, weight)
	return sol
}

// supportEps is the reduced-profit threshold below which an item is
// treated as outside the LP support.
const supportEps = 1e-9

// extractPrimal builds a feasible fractional x from the final reduced
// profits: items with positive R in profit-density order fill the
// budget (the boundary item fractionally), capped by their chains'
// remaining at-most-one capacity. Ties break toward lower item
// indices.
func extractPrimal(p *Problem, r []float64, size []float64) []float64 {
	n := p.NumItems
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if r[i] > supportEps {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		da := r[order[a]] / size[order[a]]
		db := r[order[b]] / size[order[b]]
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	groupsOf := make([][]int32, n)
	for k, group := range p.Groups {
		for _, it := range group {
			groupsOf[it] = append(groupsOf[it], int32(k))
		}
	}
	groupRem := make([]float64, len(p.Groups))
	for k := range groupRem {
		groupRem[k] = 1
	}
	budgetRem := float64(p.Budget)
	x := make([]float64, n)
	for _, i := range order {
		cap := 1.0
		for _, k := range groupsOf[i] {
			if groupRem[k] < cap {
				cap = groupRem[k]
			}
		}
		if p.Budget > 0 {
			if byBudget := budgetRem / size[i]; byBudget < cap {
				cap = byBudget
			}
		}
		if cap <= supportEps {
			continue
		}
		x[i] = cap
		if p.Budget > 0 {
			budgetRem -= cap * size[i]
		}
		for _, k := range groupsOf[i] {
			groupRem[k] -= cap
		}
	}
	return x
}

// primalValue prices a fractional x: modular weights plus, per query,
// the fractional best-first assignment of its unit of service to the
// installed items.
func primalValue(p *Problem, x []float64, byQuery [][]qItem, weight func(int) float64) float64 {
	total := 0.0
	for i, xi := range x {
		if xi > 0 {
			total += weight(i) * xi
		}
	}
	var served []qItem
	for _, items := range byQuery {
		served = served[:0]
		for _, e := range items {
			if x[e.item] > 0 {
				served = append(served, e)
			}
		}
		if len(served) == 0 {
			continue
		}
		sort.Slice(served, func(a, b int) bool {
			if served[a].b != served[b].b {
				return served[a].b > served[b].b
			}
			return served[a].item < served[b].item
		})
		rem := 1.0
		for _, e := range served {
			take := x[e.item]
			if take > rem {
				take = rem
			}
			total += e.b * take
			rem -= take
			if rem <= 0 {
				break
			}
		}
	}
	return total
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
