package lp

import (
	"math"
	"reflect"
	"testing"
)

// solveDefault runs Solve with default options.
func solveDefault(p *Problem) *Solution {
	return Solve(p, Options{})
}

func TestEmptyProblem(t *testing.T) {
	for _, p := range []*Problem{nil, {}, {NumQueries: 3}} {
		sol := solveDefault(p)
		if sol.Bound != 0 || sol.Objective != 0 || !sol.Converged {
			t.Errorf("empty problem: got bound=%v objective=%v converged=%v", sol.Bound, sol.Objective, sol.Converged)
		}
	}
}

// TestSingleItem pins the trivial instance: one profitable item, slack
// budget — the LP installs it fully and the bound is exact.
func TestSingleItem(t *testing.T) {
	p := &Problem{
		NumItems:   1,
		NumQueries: 1,
		Weight:     []float64{-3},
		Size:       []int64{5},
		Budget:     10,
		Rows:       [][]Entry{{{Query: 0, Benefit: 10}}},
	}
	sol := solveDefault(p)
	if got, want := sol.Objective, 7.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("objective = %v, want %v", got, want)
	}
	if math.Abs(sol.Bound-7.0) > 1e-9 {
		t.Errorf("bound = %v, want 7", sol.Bound)
	}
	if sol.X[0] != 1 {
		t.Errorf("x = %v, want [1]", sol.X)
	}
	if !sol.Converged {
		t.Error("did not converge on a one-item problem")
	}
}

// TestSharedQuerySecondPrice pins the per-query coupling: two items
// serving the same query contribute max(b), not the sum — the LP must
// not double count shared queries.
func TestSharedQuerySecondPrice(t *testing.T) {
	p := &Problem{
		NumItems:   2,
		NumQueries: 1,
		Weight:     []float64{0, 0},
		Size:       []int64{1, 1},
		Budget:     10,
		Rows: [][]Entry{
			{{Query: 0, Benefit: 10}},
			{{Query: 0, Benefit: 8}},
		},
	}
	sol := solveDefault(p)
	if math.Abs(sol.Bound-10) > 1e-9 {
		t.Errorf("bound = %v, want 10 (max, not 18)", sol.Bound)
	}
	if math.Abs(sol.Objective-10) > 1e-9 {
		t.Errorf("objective = %v, want 10", sol.Objective)
	}
	if sol.X[0] != 1 {
		t.Errorf("x = %v, want the better item installed", sol.X)
	}
}

// TestBudgetBinding pins the knapsack side: under a binding budget the
// denser item wins and the budget price λ settles at the loser's
// density.
func TestBudgetBinding(t *testing.T) {
	p := &Problem{
		NumItems:   2,
		NumQueries: 2,
		Weight:     []float64{0, 0},
		Size:       []int64{5, 5},
		Budget:     5,
		Rows: [][]Entry{
			{{Query: 0, Benefit: 10}},
			{{Query: 1, Benefit: 6}},
		},
	}
	sol := solveDefault(p)
	if math.Abs(sol.Bound-10) > 1e-9 {
		t.Errorf("bound = %v, want 10", sol.Bound)
	}
	if math.Abs(sol.Objective-10) > 1e-9 {
		t.Errorf("objective = %v, want 10", sol.Objective)
	}
	if sol.X[0] != 1 || sol.X[1] != 0 {
		t.Errorf("x = %v, want [1 0]", sol.X)
	}
	if math.Abs(sol.Lambda-1.2) > 1e-9 {
		t.Errorf("lambda = %v, want 1.2 (the displaced item's density)", sol.Lambda)
	}
}

// TestGroupConstraint pins the containment-chain side constraint: an
// ancestor and its descendant cannot both be fully installed.
func TestGroupConstraint(t *testing.T) {
	p := &Problem{
		NumItems:   2,
		NumQueries: 2,
		Weight:     []float64{0, 0},
		Size:       []int64{1, 1},
		Budget:     100,
		Rows: [][]Entry{
			{{Query: 0, Benefit: 10}},
			{{Query: 1, Benefit: 9}},
		},
		Groups: [][]int32{{0, 1}},
	}
	sol := solveDefault(p)
	if tot := sol.X[0] + sol.X[1]; tot > 1+1e-9 {
		t.Errorf("group sum = %v, want <= 1", tot)
	}
	// Fractional optimum under the chain: x0=1 alone is worth 10; any
	// split is worse or equal, so the objective is 10.
	if math.Abs(sol.Objective-10) > 1e-9 {
		t.Errorf("objective = %v, want 10", sol.Objective)
	}
	if sol.Bound < sol.Objective-1e-9 {
		t.Errorf("bound %v below objective %v", sol.Bound, sol.Objective)
	}
}

// surrogate prices an integral item subset: modular weights plus each
// query's best benefit over the chosen items.
func surrogate(p *Problem, chosen []bool) float64 {
	total := 0.0
	for i := 0; i < p.NumItems; i++ {
		if chosen[i] {
			total += p.Weight[i]
		}
	}
	for q := 0; q < p.NumQueries; q++ {
		best := 0.0
		for i := 0; i < p.NumItems; i++ {
			if !chosen[i] {
				continue
			}
			for _, e := range p.Rows[i] {
				if int(e.Query) == q && e.Benefit > best {
					best = e.Benefit
				}
			}
		}
		total += best
	}
	return total
}

// feasible reports whether an integral subset satisfies the budget and
// every at-most-one group.
func feasible(p *Problem, chosen []bool) bool {
	var pages int64
	for i := 0; i < p.NumItems; i++ {
		if chosen[i] {
			pages += p.Size[i]
		}
	}
	if p.Budget > 0 && pages > p.Budget {
		return false
	}
	for _, g := range p.Groups {
		n := 0
		for _, it := range g {
			if chosen[it] {
				n++
			}
		}
		if n > 1 {
			return false
		}
	}
	return true
}

// lcg is a tiny deterministic generator for the brute-force sweep.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}
func (r *lcg) float() float64 { return float64(r.next()>>11) / (1 << 53) }
func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }

// TestBoundDominatesBruteForce is the solver's core contract: on random
// small instances, the dual bound must dominate every feasible integral
// configuration's surrogate value (exhaustively enumerated), the primal
// X must be feasible, and its objective must not exceed the bound.
func TestBoundDominatesBruteForce(t *testing.T) {
	rng := lcg(7)
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.intn(8) // up to 10 items: 1024 subsets
		nq := 2 + rng.intn(5)
		p := &Problem{
			NumItems:   n,
			NumQueries: nq,
			Weight:     make([]float64, n),
			Size:       make([]int64, n),
			Rows:       make([][]Entry, n),
		}
		for i := 0; i < n; i++ {
			p.Weight[i] = -10 * rng.float()
			p.Size[i] = int64(1 + rng.intn(9))
			nb := rng.intn(nq + 1)
			seen := map[int32]bool{}
			for k := 0; k < nb; k++ {
				q := int32(rng.intn(nq))
				if seen[q] {
					continue
				}
				seen[q] = true
				p.Rows[i] = append(p.Rows[i], Entry{Query: q, Benefit: 5 + 20*rng.float()})
			}
			// Rows must be query-sorted.
			for a := 1; a < len(p.Rows[i]); a++ {
				for b := a; b > 0 && p.Rows[i][b].Query < p.Rows[i][b-1].Query; b-- {
					p.Rows[i][b], p.Rows[i][b-1] = p.Rows[i][b-1], p.Rows[i][b]
				}
			}
		}
		if rng.intn(2) == 0 {
			p.Budget = int64(3 + rng.intn(20))
		}
		for g := 0; g < rng.intn(3); g++ {
			a, b := int32(rng.intn(n)), int32(rng.intn(n))
			if a != b {
				p.Groups = append(p.Groups, []int32{a, b})
			}
		}

		sol := solveDefault(p)

		best := 0.0
		chosen := make([]bool, n)
		for mask := 0; mask < 1<<n; mask++ {
			for i := 0; i < n; i++ {
				chosen[i] = mask&(1<<i) != 0
			}
			if !feasible(p, chosen) {
				continue
			}
			if v := surrogate(p, chosen); v > best {
				best = v
			}
		}
		if sol.Bound < best-1e-6 {
			t.Fatalf("trial %d: bound %v below best integral %v", trial, sol.Bound, best)
		}
		if sol.Objective > sol.Bound+1e-6 {
			t.Fatalf("trial %d: objective %v above bound %v", trial, sol.Objective, sol.Bound)
		}
		// X feasibility.
		var pages float64
		for i, xi := range sol.X {
			if xi < -1e-9 || xi > 1+1e-9 {
				t.Fatalf("trial %d: x[%d] = %v out of [0,1]", trial, i, xi)
			}
			pages += xi * float64(p.Size[i])
		}
		if p.Budget > 0 && pages > float64(p.Budget)+1e-6 {
			t.Fatalf("trial %d: fractional pages %v exceed budget %d", trial, pages, p.Budget)
		}
		for gi, g := range p.Groups {
			tot := 0.0
			for _, it := range g {
				tot += sol.X[it]
			}
			if tot > 1+1e-6 {
				t.Fatalf("trial %d: group %d sum %v > 1", trial, gi, tot)
			}
		}
	}
}

// TestDeterministic pins byte-identical solutions across repeat solves.
func TestDeterministic(t *testing.T) {
	build := func() *Problem {
		return &Problem{
			NumItems:   4,
			NumQueries: 3,
			Weight:     []float64{-1, -2, 0.5, -0.25},
			Size:       []int64{3, 4, 2, 6},
			Budget:     8,
			Rows: [][]Entry{
				{{Query: 0, Benefit: 9}, {Query: 2, Benefit: 4}},
				{{Query: 0, Benefit: 9}, {Query: 1, Benefit: 7}},
				{{Query: 1, Benefit: 7}},
				{{Query: 2, Benefit: 4}},
			},
			Groups: [][]int32{{0, 3}},
		}
	}
	a := Solve(build(), Options{})
	b := Solve(build(), Options{})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("solutions differ across identical solves:\n%+v\n%+v", a, b)
	}
}

// TestPassCapBoundsWork pins that a tiny pass cap still yields a valid
// (if looser) bound: fewer passes never drop the bound below the
// converged one.
func TestPassCapBoundsWork(t *testing.T) {
	p := func() *Problem {
		rng := lcg(11)
		n, nq := 30, 6
		pr := &Problem{NumItems: n, NumQueries: nq,
			Weight: make([]float64, n), Size: make([]int64, n), Rows: make([][]Entry, n), Budget: 25}
		for i := 0; i < n; i++ {
			pr.Weight[i] = -15 * rng.float()
			pr.Size[i] = int64(1 + rng.intn(6))
			q := int32(rng.intn(nq))
			pr.Rows[i] = []Entry{{Query: q, Benefit: 5 + 20*rng.float()}}
		}
		return pr
	}
	full := Solve(p(), Options{})
	capped := Solve(p(), Options{MaxPasses: 1})
	if capped.Bound < full.Bound-1e-9 {
		t.Fatalf("1-pass bound %v below converged bound %v (bounds must stay valid at any cap)", capped.Bound, full.Bound)
	}
	if capped.Passes != 1 {
		t.Fatalf("passes = %d, want 1", capped.Passes)
	}
}
