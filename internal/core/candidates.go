// Package core implements the paper's primary contribution: the XML Index
// Advisor. Given a database and a weighted workload of queries and
// updates, it recommends the set of XML value indexes (patterns + SQL
// types) with the greatest estimated benefit that fits a disk budget.
//
// The pipeline follows Figure 1 of the paper, with each stage behind its
// own package boundary; this package is the thin orchestration layer
// that wires them together and derives the recommendation report:
//
//  1. internal/candidate enumerates the basic candidate patterns for
//     every workload query (§2.1, the Enumerate Indexes EXPLAIN mode via
//     candidate.Source), generalizes them with the §2.2 rule engine, and
//     arranges the result in a containment DAG.
//  2. internal/search picks the recommended configuration under the
//     disk budget (§2.3): pluggable registered strategies — plain
//     greedy, greedy with redundancy heuristics, top-down DAG descent,
//     and a concurrent portfolio race — over a Space this package
//     assembles (candidates, DAG, budget, cost evaluator).
//  3. internal/whatif prices every configuration the search considers
//     via the Evaluate Indexes EXPLAIN mode, accounting for index
//     interaction; update (maintenance) cost is charged by this
//     package's evaluator on top of the engine's per-query costs.
package core

import (
	"repro/internal/candidate"
)

// Candidate is one candidate index in the advisor's search space,
// produced by the internal/candidate pipeline.
type Candidate = candidate.Candidate

// DAG is the candidate generalization DAG (paper §2.2, Figure 4).
type DAG = candidate.DAG

// EnumerationMode selects how basic candidates are obtained.
type EnumerationMode uint8

const (
	// EnumOptimizer uses the Enumerate Indexes EXPLAIN mode (the
	// paper's tightly coupled approach).
	EnumOptimizer EnumerationMode = iota
	// EnumSyntactic is the loosely coupled baseline for the coupling
	// ablation: every path in the query text becomes a candidate,
	// including extraction paths the optimizer would never serve with a
	// value index, and with no SQL type inference (everything VARCHAR).
	EnumSyntactic
)

// candidateSource resolves the advisor's candidate source: an explicit
// Options.Source wins, then the Enumeration mode picks the optimizer or
// syntactic enumerator.
func (a *Advisor) candidateSource() candidate.Source {
	if a.opts.Source != nil {
		return a.opts.Source
	}
	if a.opts.Enumeration == EnumSyntactic {
		return candidate.SyntacticSource{}
	}
	return &candidate.OptimizerSource{Opt: a.opt}
}

// candidateRules resolves the generalization rule set: Generalize=false
// disables all rules; an explicit Options.Rules spec is parsed as-is;
// otherwise the paper's default rules apply, extended by the RelaxAxes
// and IncludeUniversal toggles.
func (a *Advisor) candidateRules() ([]candidate.Rule, error) {
	if !a.opts.Generalize {
		return nil, nil
	}
	if a.opts.Rules != "" {
		return candidate.ParseRules(a.opts.Rules)
	}
	rules := candidate.DefaultRules()
	if a.opts.RelaxAxes {
		if r, err := candidate.RuleByName("axis"); err == nil {
			rules = append(rules, r)
		}
	}
	if a.opts.IncludeUniversal {
		if r, err := candidate.RuleByName("universal"); err == nil {
			rules = append(rules, r)
		}
	}
	return rules, nil
}

// pipeline assembles the candidate pipeline for one Recommend run.
func (a *Advisor) pipeline() (*candidate.Pipeline, error) {
	rules, err := a.candidateRules()
	if err != nil {
		return nil, err
	}
	return candidate.New(a.cat, a.candidateSource(), candidate.Options{
		Parallelism:    a.opts.GenParallelism,
		Rules:          rules,
		MinSharedSteps: a.opts.MinSharedSteps,
		MaxCandidates:  a.opts.MaxCandidates,
	}), nil
}
