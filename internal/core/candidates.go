// Package core implements the paper's primary contribution: the XML Index
// Advisor. Given a database and a weighted workload of queries and
// updates, it recommends the set of XML value indexes (patterns + SQL
// types) with the greatest estimated benefit that fits a disk budget.
//
// The pipeline follows Figure 1 of the paper:
//
//  1. For every workload query, the optimizer's Enumerate Indexes EXPLAIN
//     mode produces the basic candidate patterns (§2.1).
//  2. Generalization rules expand the candidates with patterns that can
//     benefit several queries — and unseen future queries — arranged in a
//     containment DAG (§2.2).
//  3. A search over index configurations — greedy with redundancy
//     heuristics, or top-down over the DAG — picks the recommended
//     configuration under the disk budget, using the Evaluate Indexes
//     EXPLAIN mode for configuration benefits and accounting for index
//     interaction and update (maintenance) cost (§2.3).
package core

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/pattern"
	"repro/internal/querylang"
	"repro/internal/sqltype"
	"repro/internal/workload"
)

// Candidate is one candidate index in the advisor's search space.
type Candidate struct {
	ID         int
	Collection string
	Pattern    pattern.Pattern
	Type       sqltype.Type

	// Basic marks candidates enumerated directly from a query by the
	// optimizer; generalized candidates have Basic=false.
	Basic bool
	// FromQueries lists workload query indices that enumerated this
	// candidate (basic candidates only).
	FromQueries []int

	// Def is the virtual index definition used in Evaluate Indexes
	// calls; its EstPages is the candidate's size.
	Def *catalog.IndexDef

	// Parents are direct generalizations, Children direct
	// specializations, in the candidate DAG.
	Parents  []*Candidate
	Children []*Candidate

	// covers[b] is true when this candidate's index would serve basic
	// candidate b (same type, containing pattern): the redundancy
	// bitmap of the greedy heuristic.
	covers bitset
}

// Pages returns the candidate's estimated size in pages.
func (c *Candidate) Pages() int64 { return c.Def.EstPages }

// Key identifies the candidate by what it indexes.
func (c *Candidate) Key() string {
	return c.Collection + "|" + c.Pattern.String() + "|" + c.Type.Short()
}

// String renders the candidate compactly.
func (c *Candidate) String() string {
	kind := "gen"
	if c.Basic {
		kind = "basic"
	}
	return fmt.Sprintf("%s AS %s on %s (%s, ~%d pages)", c.Pattern, c.Type.Short(), c.Collection, kind, c.Pages())
}

// bitset is a simple fixed-capacity bitmap over basic-candidate indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// subset reports whether every bit of b is set in o.
func (b bitset) subset(o bitset) bool {
	for i := range b {
		if b[i]&^o[i] != 0 {
			return false
		}
	}
	return true
}

func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// EnumerationMode selects how basic candidates are obtained.
type EnumerationMode uint8

const (
	// EnumOptimizer uses the Enumerate Indexes EXPLAIN mode (the
	// paper's tightly coupled approach).
	EnumOptimizer EnumerationMode = iota
	// EnumSyntactic is the loosely coupled baseline for the coupling
	// ablation: every path in the query text becomes a candidate,
	// including extraction paths the optimizer would never serve with a
	// value index, and with no SQL type inference (everything VARCHAR).
	EnumSyntactic
)

// enumerateBasic produces the deduplicated basic candidate set for the
// workload, tagging each candidate with the queries that produced it.
func (a *Advisor) enumerateBasic(w *workload.Workload) ([]*Candidate, error) {
	byKey := map[string]*Candidate{}
	var out []*Candidate
	for qi, e := range w.Queries {
		var cands []optimizer.Candidate
		var err error
		switch a.opts.Enumeration {
		case EnumSyntactic:
			cands = syntacticCandidates(e.Query)
		default:
			cands, err = a.opt.EnumerateIndexes(e.Query)
			if err != nil {
				return nil, err
			}
		}
		for _, oc := range cands {
			key := e.Query.Collection + "|" + oc.Key()
			c := byKey[key]
			if c == nil {
				st, err := a.cat.Stats(e.Query.Collection)
				if err != nil {
					return nil, err
				}
				c = &Candidate{
					Collection: e.Query.Collection,
					Pattern:    oc.Pattern,
					Type:       oc.Type,
					Basic:      true,
				}
				c.Def = catalog.VirtualDef(fmt.Sprintf("XIA_B%d", len(out)+1), c.Collection, c.Pattern, c.Type, st)
				byKey[key] = c
				out = append(out, c)
			}
			if len(c.FromQueries) == 0 || c.FromQueries[len(c.FromQueries)-1] != qi {
				c.FromQueries = append(c.FromQueries, qi)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	for i, c := range out {
		c.ID = i
	}
	return out, nil
}

// syntacticCandidates is the loosely coupled enumeration baseline: it
// scrapes every leg from the parsed query — including output legs — and
// types everything VARCHAR, because without the optimizer there is no
// index-matching or type inference to consult.
func syntacticCandidates(q *querylang.Query) []optimizer.Candidate {
	var out []optimizer.Candidate
	for _, leg := range q.Legs() {
		out = append(out, optimizer.Candidate{
			Pattern: leg.Pattern,
			Type:    sqltype.Varchar,
			Leg:     leg,
		})
	}
	return out
}
