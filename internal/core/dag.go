package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/sqltype"
)

// DAG is the candidate generalization DAG (paper §2.2, Figure 4): nodes
// are candidate indexes; an edge runs from a generalization (parent) to
// each of its most specific covered candidates (children). Roots are the
// most general candidates obtainable from the workload.
type DAG struct {
	Nodes []*Candidate
	Roots []*Candidate
}

// generalize expands the basic candidates with the generalization rules
// and returns all candidates plus the DAG. Rules (applied to fixpoint,
// deduplicated, capped at opts.MaxCandidates):
//
//	R1 pairwise LUB: candidates of identical shape that differ in one or
//	   more step names generalize to the pattern with * at the differing
//	   steps — the paper's /regions/namerica/item/quantity +
//	   /regions/africa/item/quantity => /regions/*/item/quantity.
//	R2 descendant leaf: every candidate generalizes to //leaf.
//
// R1 requires at least opts.MinSharedSteps concrete steps in common, so
// unrelated patterns do not generalize into uselessly broad indexes.
func (a *Advisor) generalize(basics []*Candidate) ([]*Candidate, *DAG, error) {
	all := append([]*Candidate(nil), basics...)
	byKey := map[string]*Candidate{}
	for _, c := range all {
		byKey[c.Key()] = c
	}

	addCand := func(coll string, p pattern.Pattern, t sqltype.Type) (*Candidate, error) {
		key := coll + "|" + p.String() + "|" + t.Short()
		if c := byKey[key]; c != nil {
			return c, nil
		}
		st, err := a.cat.Stats(coll)
		if err != nil {
			return nil, err
		}
		c := &Candidate{
			ID:         len(all),
			Collection: coll,
			Pattern:    p,
			Type:       t,
		}
		c.Def = catalog.VirtualDef(fmt.Sprintf("XIA_G%d", len(all)+1), coll, p, t, st)
		byKey[key] = c
		all = append(all, c)
		return c, nil
	}

	if a.opts.Generalize {
		// R1 to fixpoint: each round LUBs every shape-compatible pair.
		frontier := append([]*Candidate(nil), basics...)
		for len(frontier) > 0 && len(all) < a.opts.MaxCandidates {
			var next []*Candidate
			for _, c := range frontier {
				for _, d := range all {
					if len(all) >= a.opts.MaxCandidates {
						break
					}
					if c == d || c.Collection != d.Collection || c.Type != d.Type {
						continue
					}
					if pattern.SharedConcreteSteps(c.Pattern, d.Pattern) < a.opts.MinSharedSteps {
						continue
					}
					lub, ok := pattern.PairwiseLUB(c.Pattern, d.Pattern)
					if !ok {
						continue
					}
					key := c.Collection + "|" + lub.String() + "|" + c.Type.Short()
					if byKey[key] == nil {
						nc, err := addCand(c.Collection, lub, c.Type)
						if err != nil {
							return nil, nil, err
						}
						next = append(next, nc)
					}
				}
			}
			frontier = next
		}
		// R2: descendant-leaf generalizations of the basics.
		for _, c := range basics {
			if len(all) >= a.opts.MaxCandidates {
				break
			}
			if g, ok := pattern.DescendantLeaf(c.Pattern); ok {
				if _, err := addCand(c.Collection, g, c.Type); err != nil {
					return nil, nil, err
				}
			}
		}
		// R3 (optional): axis relaxation of each basic step.
		if a.opts.RelaxAxes {
			for _, c := range basics {
				for i := 0; i < c.Pattern.Len() && len(all) < a.opts.MaxCandidates; i++ {
					if g, ok := pattern.RelaxAxisAt(c.Pattern, i); ok {
						if _, err := addCand(c.Collection, g, c.Type); err != nil {
							return nil, nil, err
						}
					}
				}
			}
		}
		// Universal roots (optional): //* and //@* per referenced
		// (collection, type).
		if a.opts.IncludeUniversal {
			seen := map[string]bool{}
			for _, c := range basics {
				key := c.Collection + "|" + c.Type.Short()
				if seen[key] {
					continue
				}
				seen[key] = true
				for _, kind := range []pattern.TestKind{pattern.TestElem, pattern.TestAttr} {
					if len(all) >= a.opts.MaxCandidates {
						break
					}
					if _, err := addCand(c.Collection, pattern.UniversalFor(kind), c.Type); err != nil {
						return nil, nil, err
					}
				}
			}
		}
	}

	// Drop generalized candidates that would index nothing (no data).
	kept := all[:0:0]
	for _, c := range all {
		if c.Basic || c.Def.EstEntries > 0 {
			kept = append(kept, c)
		}
	}
	all = kept
	for i, c := range all {
		c.ID = i
	}

	// Coverage bitmaps over basic candidates (the greedy heuristic's
	// redundancy bitmap).
	nBasic := 0
	for _, c := range all {
		if c.Basic {
			nBasic++
		}
	}
	basicIdx := map[string]int{}
	i := 0
	for _, c := range all {
		if c.Basic {
			basicIdx[c.Key()] = i
			i++
		}
	}
	for _, c := range all {
		c.covers = newBitset(nBasic)
		for _, b := range all {
			if !b.Basic || b.Collection != c.Collection || b.Type != c.Type {
				continue
			}
			if pattern.ContainsCached(c.Pattern, b.Pattern) {
				c.covers.set(basicIdx[b.Key()])
			}
		}
	}

	dag, err := buildDAG(all)
	return all, dag, err
}

// buildDAG wires parent/child edges by pattern containment with
// transitive reduction, per (collection, type) stratum.
func buildDAG(all []*Candidate) (*DAG, error) {
	n := len(all)
	// contains[i][j]: candidate i's pattern properly contains j's.
	contains := make([][]bool, n)
	for i := range contains {
		contains[i] = make([]bool, n)
	}
	for i, p := range all {
		for j, q := range all {
			if i == j || p.Collection != q.Collection || p.Type != q.Type {
				continue
			}
			if pattern.ContainsCached(p.Pattern, q.Pattern) && !pattern.ContainsCached(q.Pattern, p.Pattern) {
				contains[i][j] = true
			}
		}
	}
	// Transitive reduction: edge i->j survives iff no k with i⊃k⊃j.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !contains[i][j] {
				continue
			}
			direct := true
			for k := 0; k < n && direct; k++ {
				if k != i && k != j && contains[i][k] && contains[k][j] {
					direct = false
				}
			}
			if direct {
				all[i].Children = append(all[i].Children, all[j])
				all[j].Parents = append(all[j].Parents, all[i])
			}
		}
	}
	dag := &DAG{Nodes: all}
	for _, c := range all {
		sort.Slice(c.Children, func(x, y int) bool { return c.Children[x].ID < c.Children[y].ID })
		sort.Slice(c.Parents, func(x, y int) bool { return c.Parents[x].ID < c.Parents[y].ID })
		if len(c.Parents) == 0 {
			dag.Roots = append(dag.Roots, c)
		}
	}
	return dag, nil
}

// Edges returns the number of DAG edges.
func (d *DAG) Edges() int {
	n := 0
	for _, c := range d.Nodes {
		n += len(c.Children)
	}
	return n
}

// Render draws the DAG as indented text, roots first (the content of the
// paper's Figure 4 visualization).
func (d *DAG) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "candidate DAG: %d nodes, %d edges, %d roots\n", len(d.Nodes), d.Edges(), len(d.Roots))
	seen := map[int]bool{}
	var walk func(c *Candidate, depth int)
	walk = func(c *Candidate, depth int) {
		fmt.Fprintf(&sb, "%s%s\n", strings.Repeat("  ", depth+1), c)
		if seen[c.ID] {
			return
		}
		seen[c.ID] = true
		for _, ch := range c.Children {
			walk(ch, depth+1)
		}
	}
	for _, r := range d.Roots {
		walk(r, 0)
	}
	return sb.String()
}
