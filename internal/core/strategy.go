package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/candidate"
	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/search"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// SearchKind selects the configuration search algorithm (paper §2.3).
// It is a thin alias over the internal/search registry names: any
// registered strategy name is a valid SearchKind, and the constants
// below only name the built-in ones. The zero value selects the
// default strategy (greedy-heuristic).
type SearchKind string

const (
	// SearchGreedyHeuristic is the paper's first algorithm: greedy
	// knapsack augmented with the redundancy bitmap and interaction-
	// aware re-evaluation.
	SearchGreedyHeuristic SearchKind = "greedy-heuristic"
	// SearchTopDown is the paper's second algorithm: root-to-leaf DAG
	// descent that keeps the configuration as general as possible while
	// shrinking it into the budget.
	SearchTopDown SearchKind = "topdown"
	// SearchGreedyBasic is the plain greedy 0/1-knapsack approximation
	// of the relational DB2 advisor [8], kept as the baseline the paper
	// compares its strategies against.
	SearchGreedyBasic SearchKind = "greedy-basic"
	// SearchRace is the portfolio strategy: every registered strategy
	// races concurrently on the shared what-if cache and the best
	// configuration wins.
	SearchRace SearchKind = "race"
)

// String names the search kind (the default strategy for the zero
// value).
func (k SearchKind) String() string {
	if k == "" {
		return search.Default
	}
	return string(k)
}

// ParseSearchKind resolves a search strategy name or alias against the
// search registry. Unknown names fail with an error enumerating the
// valid strategies.
func ParseSearchKind(s string) (SearchKind, error) {
	name, err := search.Canonical(s)
	if err != nil {
		return "", err
	}
	return SearchKind(name), nil
}

// Prepared is one advisor run stopped just before configuration search:
// the candidate pipeline has run and the what-if evaluator is bound to
// the workload. Repeated searches over it — different strategies,
// different budgets via the space's WithBudget — reuse the candidate
// set and the warm what-if cache instead of re-running the whole
// advisor, which is what budget sweeps and strategy comparisons want.
//
// A Prepared is valid until the underlying collections change; it does
// not re-check catalog statistics versions the way Recommend does.
type Prepared struct {
	a     *Advisor
	w     *workload.Workload
	set   *candidate.Set
	ev    *evaluator
	space *search.Space
	// relevance summarizes per-query relevant-candidate counts over the
	// whole candidate space, computed once at Prepare time (no what-if
	// evaluations — the projection predicates alone decide it).
	relevance whatif.RelevanceStats

	// benefitMu guards the lazily built standalone benefit matrix
	// behind the space's Benefits hook; benefitsBuilt marks it done
	// (restore seeds it from a snapshot, Save reads it concurrently).
	benefitMu     sync.Mutex
	benefitsBuilt bool
	benefits      *whatif.BenefitMatrix
	benefitErr    error
}

// Prepare runs the candidate pipeline on the workload and binds the
// what-if evaluator, returning the reusable search setup.
func (a *Advisor) Prepare(ctx context.Context, w *workload.Workload) (*Prepared, error) {
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("core: workload has no queries")
	}
	if err := a.ensureFreshCosts(w); err != nil {
		return nil, err
	}
	pipe, err := a.pipeline()
	if err != nil {
		return nil, err
	}
	set, err := pipe.Run(ctx, w)
	if err != nil {
		return nil, err
	}
	return a.assemble(ctx, w, set)
}

// assemble binds the what-if evaluator and builds the search space over
// an already-built candidate set — the tail of Prepare, shared with the
// snapshot-restore path (which arrives with a deserialized set instead
// of a pipeline run).
func (a *Advisor) assemble(ctx context.Context, w *workload.Workload, set *candidate.Set) (*Prepared, error) {
	ev, err := a.newEvaluator(ctx, w)
	if err != nil {
		return nil, err
	}
	sp := &search.Space{
		Candidates:       set.All,
		DAG:              set.DAG,
		BudgetPages:      a.opts.DiskBudgetPages,
		Eval:             searchEvaluator{ev},
		InteractionAware: a.opts.InteractionAware,
		Anytime:          a.opts.Anytime,
		EagerGreedy:      a.opts.EagerGreedy,
		RaceCostBound:    a.opts.RaceCostBound,
		TraceCap:         a.opts.TraceCap,
		LPMaxPasses:      a.opts.LPMaxPasses,
		LPRepairRounds:   a.opts.LPRepairRounds,
		Counters: func() search.Counters {
			s := a.cost.Stats()
			return search.Counters{Hits: s.Hits, Misses: s.Misses, Evaluations: s.Evaluations}
		},
	}
	p := &Prepared{a: a, w: w, set: set, ev: ev, space: sp}
	sp.Benefits = p.BenefitMatrix
	p.relevance = whatif.NewRelevanceStats(ev.bound.RelevantCounts(defsOfCandidates(set.All)))
	return p, nil
}

// defsOfCandidates extracts the candidates' index definitions.
func defsOfCandidates(cands []*Candidate) []*catalog.IndexDef {
	defs := make([]*catalog.IndexDef, len(cands))
	for i, c := range cands {
		defs[i] = c.Def
	}
	return defs
}

// RelevanceStats summarizes per-query relevant-candidate counts over
// the prepared space — how many candidates can serve each workload
// query at all, as the what-if engine's projection sees it.
func (p *Prepared) RelevanceStats() whatif.RelevanceStats { return p.relevance }

// BenefitMatrix returns the standalone per-(query, candidate) benefit
// matrix over the prepared space, rows aligned with Space().Candidates:
// entry (q, c) is the query's weighted cost reduction when candidate c
// is installed alone, and Update is the candidate's modular maintenance
// cost (no optimizer calls — the update model is local). Built once on
// first call — one standalone what-if evaluation per candidate, batched
// through the engine (atoms already cached by a prior search are free)
// — and memoized; row sums equal the standalone QueryBenefit the search
// evaluator reports, which the cross-check test pins. This is the
// decomposed benefit model the CoPhy-style LP strategy seam
// (search.Space.Benefits) exposes.
func (p *Prepared) BenefitMatrix(ctx context.Context) (*whatif.BenefitMatrix, error) {
	p.benefitMu.Lock()
	defer p.benefitMu.Unlock()
	if !p.benefitsBuilt {
		p.benefitsBuilt = true
		m := &whatif.BenefitMatrix{
			NumQueries: len(p.w.Queries),
			Rows:       make([][]whatif.BenefitEntry, len(p.set.All)),
			Update:     make([]float64, len(p.set.All)),
		}
		configs := make([][]*catalog.IndexDef, len(p.set.All))
		for i, c := range p.set.All {
			configs[i] = []*catalog.IndexDef{c.Def}
			m.Update[i] = p.ev.updateCost([]*Candidate{c})
		}
		results, err := p.ev.bound.EvaluateConfigBatch(ctx, configs)
		if err != nil {
			p.benefitErr = err
			return nil, err
		}
		for ci, res := range results {
			var row []whatif.BenefitEntry
			for qi, e := range p.w.Queries {
				if b := res.Queries[qi].Benefit(); b > 0 {
					row = append(row, whatif.BenefitEntry{Query: int32(qi), Benefit: e.Weight * b})
				}
			}
			m.Rows[ci] = row
		}
		p.benefits = m
	}
	return p.benefits, p.benefitErr
}

// builtBenefits returns the benefit matrix only if it has already been
// built successfully (no what-if calls) — what a snapshot save carries.
func (p *Prepared) builtBenefits() *whatif.BenefitMatrix {
	p.benefitMu.Lock()
	defer p.benefitMu.Unlock()
	if p.benefitsBuilt && p.benefitErr == nil {
		return p.benefits
	}
	return nil
}

// seedBenefits installs a restored benefit matrix so the first
// BenefitMatrix call is free.
func (p *Prepared) seedBenefits(m *whatif.BenefitMatrix) {
	p.benefitMu.Lock()
	p.benefitsBuilt = true
	p.benefits = m
	p.benefitMu.Unlock()
}

// Workload exposes the workload the session was prepared over.
func (p *Prepared) Workload() *workload.Workload { return p.w }

// Space exposes the prepared search space for direct strategy runs
// (budget sweeps over Space.WithBudget, custom registered strategies).
func (p *Prepared) Space() *search.Space { return p.space }

// Basics exposes the deduplicated basic candidates of the prepared
// space.
func (p *Prepared) Basics() []*Candidate { return p.set.Basics }

// DAG exposes the containment DAG over the prepared candidate space.
func (p *Prepared) DAG() *DAG { return p.set.DAG }

// CandidateStats exposes the candidate pipeline's stats for the
// prepared space.
func (p *Prepared) CandidateStats() candidate.Stats { return p.set.Stats }

// RecommendWith runs one search strategy at one disk budget (0 =
// unlimited) over the prepared space and assembles the full
// recommendation. The run's cache/kernel counter windows and Elapsed
// cover only this search, not the shared candidate generation.
func (p *Prepared) RecommendWith(ctx context.Context, kind SearchKind, budgetPages int64) (*Recommendation, error) {
	return p.RecommendObserved(ctx, kind, budgetPages, nil)
}

// RecommendObserved is RecommendWith with a streaming trace hook: every
// search TraceEvent is forwarded to obs as it is emitted, before the
// recommendation is assembled. obs may be called concurrently (the race
// portfolio's members search at once) and must not block for long. A
// nil obs makes it identical to RecommendWith. Concurrent calls on one
// Prepared are safe and each sees only its own events.
func (p *Prepared) RecommendObserved(ctx context.Context, kind SearchKind, budgetPages int64,
	obs func(search.TraceEvent)) (*Recommendation, error) {
	return p.recommend(ctx, kind, budgetPages, obs, time.Now(), p.a.cost.Stats(), pattern.Stats())
}

// recommend searches the prepared space and derives the recommendation
// output: DDL, per-query analysis, overtrained comparison, and the
// counter windows against the given snapshots.
func (p *Prepared) recommend(ctx context.Context, kind SearchKind, budgetPages int64,
	obs func(search.TraceEvent),
	start time.Time, statsBefore whatif.Stats, kernelBefore pattern.KernelStats) (*Recommendation, error) {
	strat, err := search.Lookup(string(kind))
	if err != nil {
		return nil, err
	}
	// WithBudget copies the space, so the per-call observer never leaks
	// into sibling searches running on the same Prepared.
	sp := p.space.WithBudget(budgetPages)
	sp.Observer = obs
	res, err := strat.Search(ctx, sp)
	if err != nil {
		return nil, err
	}
	// Anytime mode delivered a best-so-far result at an expired
	// deadline; assembling the recommendation below needs a few more
	// what-if evaluations (the final and overtrained configurations),
	// which must not be killed by the deadline that already fired — the
	// whole point was to return something useful at the deadline.
	// Explicit cancellation is not softened: the search itself would
	// have failed, so we never get here with a cancelled context.
	if sp.Anytime && errors.Is(ctx.Err(), context.DeadlineExceeded) {
		ctx = context.WithoutCancel(ctx)
	}

	rec := &Recommendation{
		// The result's config may be shared with a portfolio member;
		// copy before sorting.
		Config:      append([]*Candidate(nil), res.Config...),
		Basics:      p.set.Basics,
		DAG:         p.set.DAG,
		Gen:         p.set.Stats,
		TraceEvents: res.Trace,
		Trace:       res.Trace.Strings(),
		Search:      res.Stats,
		Degraded:    res.Degraded,
	}
	if res.Degraded {
		rec.DegradedReason = "what-if cost service unavailable (circuit breaker open); returning the best configuration evaluated before the outage"
	}
	sort.Slice(rec.Config, func(i, j int) bool { return rec.Config[i].Key() < rec.Config[j].Key() })
	rec.TotalPages = search.PagesOf(rec.Config)

	// degradedFallback decides whether an assembly-time evaluation error
	// may be absorbed into a degraded best-so-far recommendation instead
	// of failing the run: only a circuit-breaker rejection qualifies, and
	// only when the search itself already degraded or the caller opted
	// into the anytime contract. Normally these evaluations are pure
	// cache hits (the search priced the winning configuration), so this
	// fires only when the breaker opened with atoms still uncached.
	degradedFallback := func(err error) bool {
		return (rec.Degraded || sp.Anytime) && errors.Is(err, whatif.ErrCircuitOpen)
	}
	finalEval, err := p.ev.eval(ctx, rec.Config)
	if err != nil {
		if !degradedFallback(err) {
			return nil, err
		}
		// Per-query detail is unavailable; fall back to document-scan
		// costs, but keep the search's own pricing of this configuration
		// for the workload aggregates — that is the best-so-far claim the
		// degraded response carries.
		finalEval = p.ev.degradedEval(rec.Config)
		finalEval.QueryBenefit = res.Eval.QueryBenefit
		finalEval.UpdateCost = res.Eval.UpdateCost
		finalEval.Net = res.Eval.Net
		rec.Degraded = true
		rec.DegradedReason = "what-if cost service unavailable (circuit breaker open); per-query costs report the no-index baseline"
	}
	rec.QueryBenefit = finalEval.QueryBenefit
	rec.UpdateCost = finalEval.UpdateCost
	rec.NetBenefit = finalEval.Net

	// Overtrained configuration: every basic candidate, ignoring the
	// budget — the maximum achievable benefit for this workload.
	overEval, err := p.ev.eval(ctx, p.set.Basics)
	if err != nil {
		if !degradedFallback(err) {
			return nil, err
		}
		overEval = p.ev.degradedEval(p.set.Basics)
		rec.Degraded = true
	}
	// Public names: XIA_IDX<i> in config order, used consistently in the
	// DDL and the per-query analysis.
	public := map[int]string{}
	for i, c := range rec.Config {
		name := fmt.Sprintf("XIA_IDX%d", i+1)
		public[c.ID] = name
		rec.Names = append(rec.Names, name)
		rec.DDL = append(rec.DDL, catalogDDL(name, c))
	}
	for qi, e := range p.w.Queries {
		qa := QueryAnalysis{
			ID:              e.Query.ID,
			Text:            e.Query.Text,
			Weight:          e.Weight,
			CostNoIndexes:   p.ev.baseCost[qi],
			CostRecommended: finalEval.queryCost[qi],
			CostOvertrained: overEval.queryCost[qi],
		}
		for _, id := range finalEval.usedBy[qi] {
			if name, ok := public[id]; ok {
				qa.IndexesUsed = append(qa.IndexesUsed, name)
			}
		}
		sort.Strings(qa.IndexesUsed)
		rec.PerQuery = append(rec.PerQuery, qa)
	}
	rec.Relevance = p.relevance
	rec.Cache = p.a.cost.Stats().Sub(statsBefore)
	rec.Evaluations = int(rec.Cache.Evaluations)
	rec.Kernel = pattern.Stats().Sub(kernelBefore)
	rec.Elapsed = time.Since(start)
	return rec, nil
}
