package core

import (
	"bytes"
	"context"
	"io"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/snapshot"
)

// benchSession builds the benchmark session: XMark at 500 documents,
// the paper workload, one full recommend plus the benefit matrix so
// the snapshot carries a realistic atom and benefit load.
func benchSession(b *testing.B) (*catalog.Catalog, *Prepared, []byte) {
	b.Helper()
	_, cat := xmarkStoreFixture(b, 500)
	ctx := context.Background()
	a := New(cat, DefaultOptions())
	p, err := a.Prepare(ctx, datagen.XMarkPaperWorkload())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.RecommendWith(ctx, SearchGreedyHeuristic, 0); err != nil {
		b.Fatal(err)
	}
	if _, err := p.BenefitMatrix(ctx); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		b.Fatal(err)
	}
	return cat, p, buf.Bytes()
}

// BenchmarkSnapshotSave measures serializing a warm session.
func BenchmarkSnapshotSave(b *testing.B) {
	_, p, data := benchSession(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Save(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotDecode measures the codec alone: bytes to the
// validated in-memory snapshot, no advisor reconstruction.
func BenchmarkSnapshotDecode(b *testing.B) {
	_, _, data := benchSession(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapshot.Decode(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRestore measures the full warm start: decode,
// verify against the catalog, rebuild the candidate set and DAG, and
// import the cache atoms into a cold engine.
func BenchmarkSnapshotRestore(b *testing.B) {
	cat, _, data := benchSession(b)
	ctx := context.Background()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := New(cat, DefaultOptions())
		if _, err := a.LoadPrepared(ctx, bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
		if n := a.CostEngine().Stats().Evaluations; n != 0 {
			b.Fatalf("restore issued %d evaluations", n)
		}
	}
}

// BenchmarkColdOpenRecommend is the baseline the restore path replaces:
// a fresh advisor prepares the workload from scratch and recommends.
// evals/op reports the cost-service calls the run issued.
func BenchmarkColdOpenRecommend(b *testing.B) {
	cat, _, _ := benchSession(b)
	ctx := context.Background()
	w := datagen.XMarkPaperWorkload()
	b.ResetTimer()
	var evals int64
	for i := 0; i < b.N; i++ {
		a := New(cat, DefaultOptions())
		p, err := a.Prepare(ctx, w)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.RecommendWith(ctx, SearchGreedyHeuristic, 0); err != nil {
			b.Fatal(err)
		}
		evals += a.CostEngine().Stats().Evaluations
	}
	b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
}

// BenchmarkWarmRestoreRecommend is the same request served from a
// snapshot: restore into a fresh advisor (cold engine) and recommend.
// evals/op stays at zero — every atom the search needs is imported.
func BenchmarkWarmRestoreRecommend(b *testing.B) {
	cat, _, data := benchSession(b)
	ctx := context.Background()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var evals int64
	for i := 0; i < b.N; i++ {
		a := New(cat, DefaultOptions())
		p, err := a.LoadPrepared(ctx, bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.RecommendWith(ctx, SearchGreedyHeuristic, 0); err != nil {
			b.Fatal(err)
		}
		evals += a.CostEngine().Stats().Evaluations
	}
	b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
}
