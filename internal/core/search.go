package core

import (
	"fmt"
	"sort"

	"repro/internal/candidate"
)

// SearchKind selects the configuration search algorithm (paper §2.3).
type SearchKind uint8

const (
	// SearchGreedyHeuristic is the paper's first algorithm: greedy
	// knapsack augmented with the redundancy bitmap and interaction-
	// aware re-evaluation.
	SearchGreedyHeuristic SearchKind = iota
	// SearchTopDown is the paper's second algorithm: root-to-leaf DAG
	// descent that keeps the configuration as general as possible while
	// shrinking it into the budget.
	SearchTopDown
	// SearchGreedyBasic is the plain greedy 0/1-knapsack approximation
	// of the relational DB2 advisor [8], kept as the baseline the paper
	// compares its strategies against.
	SearchGreedyBasic
)

// String names the search kind.
func (k SearchKind) String() string {
	switch k {
	case SearchTopDown:
		return "topdown"
	case SearchGreedyBasic:
		return "greedy-basic"
	default:
		return "greedy-heuristic"
	}
}

// ParseSearchKind parses a search kind name.
func ParseSearchKind(s string) (SearchKind, error) {
	switch s {
	case "greedy", "greedy-heuristic", "heuristic":
		return SearchGreedyHeuristic, nil
	case "topdown", "top-down":
		return SearchTopDown, nil
	case "greedy-basic", "basic", "knapsack":
		return SearchGreedyBasic, nil
	}
	return SearchGreedyHeuristic, fmt.Errorf("core: unknown search %q", s)
}

// searchResult is a chosen configuration plus its trace.
type searchResult struct {
	config []*Candidate
	trace  []string
}

func pagesOf(cfg []*Candidate) int64 {
	var t int64
	for _, c := range cfg {
		t += c.Pages()
	}
	return t
}

// fitsBudget reports whether cfg fits the budget (0 = unlimited).
func (a *Advisor) fitsBudget(pages int64) bool {
	return a.opts.DiskBudgetPages <= 0 || pages <= a.opts.DiskBudgetPages
}

// searchGreedyBasic is the plain greedy knapsack of [8]: rank candidates
// once by standalone net benefit per page and add while the budget holds.
// No redundancy detection, no re-evaluation: exactly the weaknesses the
// paper's heuristics address.
func (a *Advisor) searchGreedyBasic(cands []*Candidate, ev *evaluator) (*searchResult, error) {
	res := &searchResult{}
	alone, err := ev.standalone(cands)
	if err != nil {
		return nil, err
	}
	order := append([]*Candidate(nil), cands...)
	sort.Slice(order, func(i, j int) bool {
		ri := ratio(alone[order[i].ID].Net, order[i].Pages())
		rj := ratio(alone[order[j].ID].Net, order[j].Pages())
		if ri != rj {
			return ri > rj
		}
		return order[i].ID < order[j].ID
	})
	var pages int64
	for _, c := range order {
		if alone[c.ID].Net <= 0 {
			break
		}
		if !a.fitsBudget(pages + c.Pages()) {
			res.trace = append(res.trace, fmt.Sprintf("skip %s: over budget", c))
			continue
		}
		res.config = append(res.config, c)
		pages += c.Pages()
		res.trace = append(res.trace, fmt.Sprintf("add %s (standalone net %.1f)", c, alone[c.ID].Net))
	}
	return res, nil
}

func ratio(benefit float64, pages int64) float64 {
	if pages <= 0 {
		pages = 1
	}
	return benefit / float64(pages)
}

// searchGreedyHeuristic is the paper's greedy search with heuristics:
//
//   - redundancy bitmap: a candidate whose covered workload patterns add
//     nothing to the patterns already covered is skipped outright;
//   - interaction-aware marginal benefit: each round re-evaluates the
//     configuration with the candidate included (Evaluate Indexes), so
//     overlapping benefits are not double-counted;
//   - reclamation: after each addition, configuration members that the
//     optimizer no longer uses for any workload query are dropped and
//     their space reclaimed.
func (a *Advisor) searchGreedyHeuristic(cands []*Candidate, ev *evaluator) (*searchResult, error) {
	res := &searchResult{}
	var config []*Candidate
	covered := candidate.NewBitset(bitsetWidth(cands))

	// Candidates with no standalone benefit are dropped up front. A
	// candidate useless alone can in principle gain value inside an
	// index-ANDed plan, but its standalone benefit is a tight upper
	// bound in practice and evaluating every (config, candidate) pair
	// without it would be quadratic in optimizer calls.
	alone, err := ev.standalone(cands)
	if err != nil {
		return nil, err
	}
	var remaining []*Candidate
	for _, c := range cands {
		if alone[c.ID].Net > 0 {
			remaining = append(remaining, c)
		}
	}
	// Consider high-density candidates first so the upper-bound pruning
	// below fires early.
	sort.Slice(remaining, func(i, j int) bool {
		ri := ratio(alone[remaining[i].ID].Net, remaining[i].Pages())
		rj := ratio(alone[remaining[j].ID].Net, remaining[j].Pages())
		if ri != rj {
			return ri > rj
		}
		return remaining[i].ID < remaining[j].ID
	})

	curEval, err := ev.eval(nil)
	if err != nil {
		return nil, err
	}
	for {
		pages := pagesOf(config)
		// Eligible candidates, in standalone-density order (inherited
		// from the sort above): budget and redundancy filters first.
		var elig []*Candidate
		for _, c := range remaining {
			if !a.fitsBudget(pages + c.Pages()) {
				continue
			}
			// Redundancy heuristic: covered patterns must grow.
			if c.Covers().Subset(covered) {
				continue
			}
			elig = append(elig, c)
		}
		var best *Candidate
		var bestEval *configEval
		bestRatio := 0.0
		if a.opts.InteractionAware {
			// Marginal re-evaluation, parallelized in worker-sized
			// chunks down the density-ordered prefix. Upper-bound
			// pruning applies exactly as in the sequential algorithm —
			// the marginal benefit of c cannot meaningfully exceed its
			// standalone benefit, so the scan stops at the first
			// candidate whose standalone density is at or below the
			// best found ratio. Chunk members past the cutoff were
			// evaluated speculatively; their results are discarded, so
			// the recommendation is independent of the worker count.
			chunk := ev.a.cost.Workers() // always >= 1
			stopped := false
			for start := 0; start < len(elig) && !stopped; start += chunk {
				// Free prune at the batch boundary: if the cutoff
				// already holds for the batch's densest candidate, no
				// member can win — skip the speculative evaluations.
				if best != nil && ratio(alone[elig[start].ID].Net, elig[start].Pages()) <= bestRatio {
					break
				}
				end := start + chunk
				if end > len(elig) {
					end = len(elig)
				}
				batch := elig[start:end]
				evals, err := ev.evalConfigs(config, batch)
				if err != nil {
					return nil, err
				}
				for i, c := range batch {
					if best != nil && ratio(alone[c.ID].Net, c.Pages()) <= bestRatio {
						stopped = true
						break
					}
					marg := evals[i].Net - curEval.Net
					if r := ratio(marg, c.Pages()); marg > 0 && (best == nil || r > bestRatio) {
						best, bestEval, bestRatio = c, evals[i], r
					}
				}
			}
		} else {
			for _, c := range elig {
				if r := ratio(alone[c.ID].Net, c.Pages()); alone[c.ID].Net > 0 && (best == nil || r > bestRatio) {
					best, bestRatio = c, r
				}
			}
		}
		if best == nil {
			break
		}
		config = append(config, best)
		covered.Or(best.Covers())
		if bestEval == nil {
			bestEval, err = ev.eval(config)
			if err != nil {
				return nil, err
			}
		}
		curEval = bestEval
		res.trace = append(res.trace, fmt.Sprintf("add %s (net %.1f, %d/%d patterns covered)",
			best, curEval.Net, covered.Count(), bitsetWidth(cands)))

		// Reclaim space held by members no plan uses anymore.
		pruned := config[:0:0]
		for _, c := range config {
			if curEval.UsedSet[c.ID] {
				pruned = append(pruned, c)
			} else {
				res.trace = append(res.trace, fmt.Sprintf("reclaim %s: unused under current config", c))
			}
		}
		if len(pruned) != len(config) {
			config = pruned
			curEval, err = ev.eval(config)
			if err != nil {
				return nil, err
			}
			covered = candidate.NewBitset(bitsetWidth(cands))
			for _, c := range config {
				covered.Or(c.Covers())
			}
		}
		// Remove the chosen candidate from further consideration.
		rest := remaining[:0:0]
		for _, c := range remaining {
			if c != best {
				rest = append(rest, c)
			}
		}
		remaining = rest
	}
	res.config = config
	return res, nil
}

func bitsetWidth(cands []*Candidate) int {
	n := 0
	for _, c := range cands {
		if c.Basic {
			n++
		}
	}
	return n
}

// searchTopDown is the paper's second algorithm: start from the DAG
// roots (the most general candidates, maximal benefit but typically over
// budget) and repeatedly replace the member with the worst benefit
// density by its DAG children, until the configuration fits. Children
// that bring no workload benefit are not added. If an over-budget member
// has no children, it is dropped.
func (a *Advisor) searchTopDown(dag *DAG, ev *evaluator) (*searchResult, error) {
	res := &searchResult{}
	alone, err := ev.standalone(dag.Nodes)
	if err != nil {
		return nil, err
	}
	// Start configuration: all roots with positive standalone benefit.
	var config []*Candidate
	for _, r := range dag.Roots {
		if alone[r.ID].Net > 0 {
			config = append(config, r)
		}
	}
	res.trace = append(res.trace, fmt.Sprintf("start with %d DAG roots (%d pages)", len(config), pagesOf(config)))

	inConfig := map[int]bool{}
	for _, c := range config {
		inConfig[c.ID] = true
	}
	for !a.fitsBudget(pagesOf(config)) && len(config) > 0 {
		// Victim: the member with the worst standalone net benefit per
		// page (general, large, weakly used indexes go first).
		vi := 0
		worst := ratio(alone[config[0].ID].Net, config[0].Pages())
		for i, c := range config[1:] {
			if r := ratio(alone[c.ID].Net, c.Pages()); r < worst {
				worst, vi = r, i+1
			}
		}
		victim := config[vi]
		config = append(config[:vi], config[vi+1:]...)
		delete(inConfig, victim.ID)

		added := 0
		for _, ch := range victim.Children {
			if inConfig[ch.ID] || alone[ch.ID].Net <= 0 {
				continue
			}
			config = append(config, ch)
			inConfig[ch.ID] = true
			added++
		}
		res.trace = append(res.trace, fmt.Sprintf("replace %s by %d children (now %d pages)",
			victim, added, pagesOf(config)))
	}

	// The children sum can still exceed the victim's size; fitsBudget
	// loop handles that by further descents. Finally drop any members
	// the optimizer does not use.
	if len(config) > 0 {
		full, err := ev.eval(config)
		if err != nil {
			return nil, err
		}
		kept := config[:0:0]
		for _, c := range config {
			if full.UsedSet[c.ID] {
				kept = append(kept, c)
			} else {
				res.trace = append(res.trace, fmt.Sprintf("drop %s: unused", c))
			}
		}
		config = kept
	}
	res.config = config
	return res, nil
}
