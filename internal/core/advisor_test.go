package core

import (
	"strings"
	"testing"

	"repro/internal/candidate"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/store"
	"repro/internal/workload"
)

// xmarkFixture builds a catalog over generated XMark data.
func xmarkFixture(t testing.TB, docs int) *catalog.Catalog {
	t.Helper()
	st := store.New()
	if _, err := datagen.GenerateXMark(st, datagen.XMarkConfig{Docs: docs, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	return catalog.New(st)
}

func TestRecommendPaperExample(t *testing.T) {
	cat := xmarkFixture(t, 300)
	a := New(cat, DefaultOptions())
	w := datagen.XMarkPaperWorkload()
	rec, err := a.Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	// The generalization phase must produce the paper's patterns.
	var sawQuantityLUB, sawItemStar bool
	for _, c := range rec.DAG.Nodes {
		switch c.Pattern.String() {
		case "/site/regions/*/item/quantity":
			sawQuantityLUB = true
		case "/site/regions/*/item/*":
			sawItemStar = true
		}
	}
	if !sawQuantityLUB {
		t.Error("missing /site/regions/*/item/quantity generalization")
	}
	if !sawItemStar {
		t.Error("missing /site/regions/*/item/* generalization")
	}
	if len(rec.Config) == 0 {
		t.Fatal("no indexes recommended")
	}
	if rec.NetBenefit <= 0 {
		t.Errorf("net benefit = %f", rec.NetBenefit)
	}
	if len(rec.DDL) != len(rec.Config) {
		t.Error("DDL count mismatch")
	}
	for _, ddl := range rec.DDL {
		if !strings.Contains(ddl, "GENERATE KEY USING XMLPATTERN") {
			t.Errorf("bad DDL: %s", ddl)
		}
	}
}

func TestRecommendImprovesPerQueryCosts(t *testing.T) {
	cat := xmarkFixture(t, 300)
	a := New(cat, DefaultOptions())
	w := datagen.XMarkWorkload(12, 3)
	rec, err := a.Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.PerQuery) != 12 {
		t.Fatalf("PerQuery = %d", len(rec.PerQuery))
	}
	improved := 0
	for _, qa := range rec.PerQuery {
		if qa.CostRecommended > qa.CostNoIndexes+1e-9 {
			t.Errorf("%s: recommended cost %f > no-index cost %f", qa.ID, qa.CostRecommended, qa.CostNoIndexes)
		}
		// Overtrained is the per-workload maximum benefit: recommended
		// can never beat it.
		if qa.CostOvertrained > qa.CostRecommended+1e-9 {
			t.Errorf("%s: overtrained cost %f > recommended %f", qa.ID, qa.CostOvertrained, qa.CostRecommended)
		}
		if qa.CostRecommended < qa.CostNoIndexes {
			improved++
		}
	}
	if improved == 0 {
		t.Error("no query improved")
	}
}

func TestBudgetIsRespected(t *testing.T) {
	cat := xmarkFixture(t, 300)
	w := datagen.XMarkWorkload(10, 4)

	unlimited := New(cat, DefaultOptions())
	recU, err := unlimited.Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	if recU.TotalPages == 0 {
		t.Skip("nothing recommended; cannot test budget")
	}
	budget := recU.TotalPages / 2
	for _, kind := range []SearchKind{SearchGreedyHeuristic, SearchTopDown, SearchGreedyBasic} {
		opts := DefaultOptions()
		opts.DiskBudgetPages = budget
		opts.Search = kind
		a := New(cat, opts)
		rec, err := a.Recommend(w)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if rec.TotalPages > budget {
			t.Errorf("%v: %d pages exceeds budget %d", kind, rec.TotalPages, budget)
		}
		if rec.NetBenefit < 0 {
			t.Errorf("%v: negative net benefit %f", kind, rec.NetBenefit)
		}
	}
}

func TestHeuristicBeatsPlainGreedyUnderTightBudget(t *testing.T) {
	cat := xmarkFixture(t, 400)
	w := datagen.XMarkWorkload(16, 7)

	base := New(cat, DefaultOptions())
	recBase, err := base.Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	if recBase.TotalPages < 4 {
		t.Skip("config too small to constrain")
	}
	budget := recBase.TotalPages / 3

	run := func(kind SearchKind) *Recommendation {
		opts := DefaultOptions()
		opts.DiskBudgetPages = budget
		opts.Search = kind
		rec, err := New(cat, opts).Recommend(w)
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	heur := run(SearchGreedyHeuristic)
	plain := run(SearchGreedyBasic)
	// The paper's claim: redundancy-aware greedy never loses to plain
	// greedy (which wastes budget on overlapping indexes).
	if heur.NetBenefit+1e-6 < plain.NetBenefit {
		t.Errorf("heuristic %.1f < plain %.1f under budget %d", heur.NetBenefit, plain.NetBenefit, budget)
	}
}

func TestEveryRecommendedIndexIsUsed(t *testing.T) {
	cat := xmarkFixture(t, 300)
	opts := DefaultOptions()
	a := New(cat, opts)
	w := datagen.XMarkWorkload(10, 5)
	rec, err := a.Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	used := map[string]bool{}
	for _, qa := range rec.PerQuery {
		for _, n := range qa.IndexesUsed {
			used[n] = true
		}
	}
	for i := range rec.Config {
		name := rec.DDL[i]
		_ = name
	}
	// §2.3: "every index recommended ... will be used by at least one
	// query in the workload".
	if len(used) != len(rec.Config) {
		t.Errorf("recommended %d indexes but only %d used: %v", len(rec.Config), len(used), used)
	}
}

func TestUpdateCostShrinksRecommendation(t *testing.T) {
	cat := xmarkFixture(t, 300)
	w := datagen.XMarkWorkload(10, 6)

	recNoUpd, err := New(cat, DefaultOptions()).Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy updates: maintenance should eat into net benefit.
	wUpd := datagen.XMarkWorkload(10, 6)
	datagen.XMarkUpdates(wUpd, 500, 6)
	recUpd, err := New(cat, DefaultOptions()).Recommend(wUpd)
	if err != nil {
		t.Fatal(err)
	}
	if recUpd.UpdateCost <= 0 {
		t.Error("update cost not charged")
	}
	if recUpd.NetBenefit > recNoUpd.NetBenefit {
		t.Errorf("net benefit with updates %f > without %f", recUpd.NetBenefit, recNoUpd.NetBenefit)
	}
	if recUpd.TotalPages > recNoUpd.TotalPages {
		t.Errorf("update-heavy workload got a bigger config (%d > %d pages)", recUpd.TotalPages, recNoUpd.TotalPages)
	}
}

func TestGeneralizationHelpsUnseenQueries(t *testing.T) {
	cat := xmarkFixture(t, 400)
	full := datagen.XMarkWorkload(30, 8)
	train, test := full.Split(0.6, 8)
	if len(train.Queries) == 0 || len(test.Queries) == 0 {
		t.Skip("degenerate split")
	}

	run := func(generalize bool) float64 {
		opts := DefaultOptions()
		opts.Search = SearchTopDown
		opts.Generalize = generalize
		a := New(cat, opts)
		rec, err := a.Recommend(train)
		if err != nil {
			t.Fatal(err)
		}
		noIdx, withIdx, err := a.EvaluateOn(test, rec.Config)
		if err != nil {
			t.Fatal(err)
		}
		return noIdx - withIdx
	}
	genBenefit := run(true)
	noGenBenefit := run(false)
	if genBenefit < noGenBenefit-1e-6 {
		t.Errorf("generalized config benefit on unseen queries %.1f < ungeneralized %.1f", genBenefit, noGenBenefit)
	}
	if genBenefit <= 0 {
		t.Error("generalized config gives no benefit to unseen queries")
	}
}

func TestMaterializeAndExecute(t *testing.T) {
	cat := xmarkFixture(t, 200)
	a := New(cat, DefaultOptions())
	w := datagen.XMarkWorkload(8, 9)
	rec, err := a.Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	names, err := a.Materialize(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(rec.Config) {
		t.Fatalf("materialized %d of %d", len(names), len(rec.Config))
	}
	for _, n := range names {
		def := cat.Index(n)
		if def == nil || def.Phys == nil {
			t.Fatalf("index %s not physically built", n)
		}
	}
	// Queries must still produce identical results with the physical
	// indexes in place.
	ex := executor.New(cat)
	for _, e := range w.Queries {
		scan, err := ex.Run(e.Query, nil)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := a.Optimizer().Optimize(e.Query, nil)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := ex.Run(e.Query, plan)
		if err != nil {
			t.Fatal(err)
		}
		if scan.Rows != idx.Rows {
			t.Errorf("%s: scan=%d indexed=%d", e.Query.ID, scan.Rows, idx.Rows)
		}
	}
}

func TestSyntacticEnumerationIsWorse(t *testing.T) {
	cat := xmarkFixture(t, 300)
	w := datagen.XMarkWorkload(12, 10)

	optsOpt := DefaultOptions()
	recOpt, err := New(cat, optsOpt).Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	optsSyn := DefaultOptions()
	optsSyn.Enumeration = EnumSyntactic
	recSyn, err := New(cat, optsSyn).Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	// The syntactic baseline types everything VARCHAR, so numeric
	// comparisons cannot be served: its benefit must not exceed the
	// optimizer-coupled benefit.
	if recSyn.NetBenefit > recOpt.NetBenefit+1e-6 {
		t.Errorf("syntactic %.1f > optimizer-coupled %.1f", recSyn.NetBenefit, recOpt.NetBenefit)
	}
}

func TestAdvisorRefreshesCostsAfterDataChange(t *testing.T) {
	cat := xmarkFixture(t, 100)
	a := New(cat, DefaultOptions())
	w := datagen.XMarkPaperWorkload()
	rec1, err := a.Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	// Grow the collection under the same long-lived advisor: the
	// what-if cache must be flushed, not serve the 100-doc costs.
	col := cat.Store().Get("auction")
	for i := 0; i < 50; i++ {
		if _, err := col.InsertXML("<site><regions><namerica><item><price>10</price><quantity>1</quantity><name>x</name></item></namerica></regions></site>"); err != nil {
			t.Fatal(err)
		}
	}
	rec2, err := a.Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.PerQuery[0].CostNoIndexes <= rec1.PerQuery[0].CostNoIndexes {
		t.Errorf("stale costs after data change: %f -> %f",
			rec1.PerQuery[0].CostNoIndexes, rec2.PerQuery[0].CostNoIndexes)
	}
}

func TestRecommendationIdenticalAcrossGenParallelism(t *testing.T) {
	cat := xmarkFixture(t, 200)
	w := datagen.XMarkWorkload(10, 12)
	fingerprint := func(rec *Recommendation) string {
		return strings.Join(rec.DDL, "\n") + "\n" + rec.DAG.Render() + strings.Join(rec.Trace, "\n")
	}
	var base string
	for _, par := range []int{1, 4, 8} {
		opts := DefaultOptions()
		opts.GenParallelism = par
		rec, err := New(cat, opts).Recommend(w)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		fp := fingerprint(rec)
		if base == "" {
			base = fp
		} else if fp != base {
			t.Errorf("recommendation changed at enumeration parallelism %d:\n%s\nvs\n%s", par, base, fp)
		}
	}
}

func TestCustomSourceOverridesEnumeration(t *testing.T) {
	cat := xmarkFixture(t, 150)
	opts := DefaultOptions()
	opts.Source = candidate.SyntacticSource{}
	a := New(cat, opts)
	rec, err := a.Recommend(datagen.XMarkPaperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Gen.Source != "syntactic" {
		t.Errorf("pipeline used source %q, want the injected syntactic source", rec.Gen.Source)
	}
}

func TestRulesSpecSelectsRules(t *testing.T) {
	cat := xmarkFixture(t, 150)
	opts := DefaultOptions()
	opts.Rules = "lub"
	rec, err := New(cat, opts).Recommend(datagen.XMarkPaperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Gen.Rules) != 1 || rec.Gen.Rules[0].Name != "lub" {
		t.Errorf("rules = %+v, want lub only", rec.Gen.Rules)
	}
	opts.Rules = "bogus"
	if _, err := New(cat, opts).Recommend(datagen.XMarkPaperWorkload()); err == nil {
		t.Error("bogus rule spec should fail")
	}
}

func TestEmptyWorkloadFails(t *testing.T) {
	cat := xmarkFixture(t, 10)
	a := New(cat, DefaultOptions())
	if _, err := a.Recommend(&workload.Workload{}); err == nil {
		t.Error("empty workload should fail")
	}
}

func TestReportRendering(t *testing.T) {
	cat := xmarkFixture(t, 150)
	a := New(cat, DefaultOptions())
	rec, err := a.Recommend(datagen.XMarkPaperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	rep := rec.Report()
	for _, want := range []string{"recommendation", "CREATE INDEX", "overtrained", "net:"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	dag := rec.DAG.Render()
	if !strings.Contains(dag, "roots") {
		t.Errorf("DAG render:\n%s", dag)
	}
}

func TestAnalyzeConfigWhatIf(t *testing.T) {
	cat := xmarkFixture(t, 200)
	a := New(cat, DefaultOptions())
	w := datagen.XMarkWorkload(8, 20)
	rec, err := a.Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Config) < 2 {
		t.Skip("config too small for removal analysis")
	}
	full, err := a.AnalyzeConfig(w, rec.Config)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := a.AnalyzeConfig(w, WithoutIndex(rec.Config, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(w.Queries) || len(reduced) != len(w.Queries) {
		t.Fatal("analysis row count wrong")
	}
	var fullTot, redTot float64
	for i := range full {
		fullTot += full[i].Weight * full[i].CostRecommended
		redTot += reduced[i].Weight * reduced[i].CostRecommended
		// Removing an index can only increase (or keep) each cost.
		if reduced[i].CostRecommended+1e-9 < full[i].CostRecommended {
			t.Errorf("%s: cost dropped after removing an index", full[i].ID)
		}
	}
	if redTot < fullTot {
		t.Error("total cost dropped after removing an index")
	}
	// The full analysis must agree with the recommendation's own table.
	for i, qa := range rec.PerQuery {
		if d := qa.CostRecommended - full[i].CostRecommended; d > 1e-6 || d < -1e-6 {
			t.Errorf("%s: AnalyzeConfig %f != recommendation %f", qa.ID, full[i].CostRecommended, qa.CostRecommended)
		}
	}
	if got := WithoutIndex(rec.Config, -1); len(got) != len(rec.Config) {
		t.Error("WithoutIndex out of range should be a no-op")
	}
}
