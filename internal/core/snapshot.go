package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/candidate"
	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/querylang"
	"repro/internal/snapshot"
	"repro/internal/sqltype"
	"repro/internal/whatif"
	"repro/internal/workload"
	"repro/internal/xpath"
)

// ErrSnapshotMismatch is the base error of every SnapshotMismatchError:
// the snapshot decoded cleanly but was taken under advisor options or
// catalog statistics that differ from this advisor's, so restoring it
// could not reproduce the original recommendations.
var ErrSnapshotMismatch = errors.New("core: snapshot does not match this advisor")

// SnapshotMismatchError reports which compatibility check a restore
// failed. It unwraps to ErrSnapshotMismatch.
type SnapshotMismatchError struct {
	// Field names the check ("options", "collection <name>").
	Field string
	// Saved and Current are the conflicting values.
	Saved   string
	Current string
}

func (e *SnapshotMismatchError) Error() string {
	return fmt.Sprintf("core: snapshot does not match this advisor: %s: snapshot has %q, advisor has %q",
		e.Field, e.Saved, e.Current)
}

func (e *SnapshotMismatchError) Unwrap() error { return ErrSnapshotMismatch }

// ErrSnapshotInvalid reports a snapshot that passed the codec's
// structural validation but carries content this advisor cannot
// materialize (an unparseable pattern, query, or stats blob).
var ErrSnapshotInvalid = errors.New("core: snapshot content invalid")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSnapshotInvalid, fmt.Sprintf(format, args...))
}

// optionsFingerprint renders the advisor options that shape prepared
// state — candidate source, generalization rules and budgets, and the
// what-if atom keying mode. Two advisors with equal fingerprints build
// identical candidate spaces and cache keys for a given workload and
// catalog, which is exactly what makes a snapshot portable between
// them. Tuning knobs that do not change prepared state (parallelism,
// cache sizing, budgets, search strategy) are deliberately excluded.
func (a *Advisor) optionsFingerprint() string {
	o := a.opts
	rules := "none"
	if o.Generalize {
		if o.Rules != "" {
			rules = o.Rules
		} else {
			rules = "default"
			if o.RelaxAxes {
				rules += "+axis"
			}
			if o.IncludeUniversal {
				rules += "+universal"
			}
		}
	}
	return fmt.Sprintf("v1|src=%s|rules=%s|minshared=%d|maxcand=%d|noproj=%t",
		a.candidateSource().Name(), rules, o.MinSharedSteps, o.MaxCandidates, o.NoProjection)
}

// Save serializes the prepared session's full state — workload,
// candidate space with containment DAG and coverage, the session's
// memoized what-if atoms, and the benefit matrix when built — into the
// versioned snapshot format. A Prepared restored from the output on an
// advisor with equal options over unchanged collections recommends
// byte-identically without re-enumeration and with near-zero
// CostService calls.
func (p *Prepared) Save(w io.Writer) error {
	snap, err := p.buildSnapshot()
	if err != nil {
		return err
	}
	return snapshot.Encode(w, snap)
}

func (p *Prepared) buildSnapshot() (*snapshot.Snapshot, error) {
	a := p.a
	s := &snapshot.Snapshot{
		Meta: snapshot.Meta{
			CreatedUnixMS: time.Now().UnixMilli(),
			WorkloadName:  p.w.Name,
			OptionsFP:     a.optionsFingerprint(),
		},
	}
	a.verMu.Lock()
	for _, coll := range p.w.Collections() {
		v, ok := a.catVersions[coll]
		if !ok {
			a.verMu.Unlock()
			return nil, fmt.Errorf("core: snapshot: no recorded statistics version for collection %q", coll)
		}
		s.Meta.Collections = append(s.Meta.Collections, snapshot.CollectionVersion{Name: coll, Version: v})
	}
	a.verMu.Unlock()

	for _, e := range p.w.Queries {
		s.Workload.Queries = append(s.Workload.Queries, snapshot.QueryData{
			ID: e.Query.ID, Weight: e.Weight, Text: e.Query.Text,
		})
	}
	for _, u := range p.w.Updates {
		ud := snapshot.UpdateData{
			Kind: uint8(u.Kind), Collection: u.Collection, Weight: u.Weight, DocXML: u.DocXML,
		}
		if u.Path != nil {
			ud.Path = u.Path.String()
		}
		s.Workload.Updates = append(s.Workload.Updates, ud)
	}

	// Pattern table: first-occurrence order over the candidate space.
	patID := map[string]uint32{}
	internPat := func(pt pattern.Pattern) uint32 {
		key := pt.String()
		if id, ok := patID[key]; ok {
			return id
		}
		id := uint32(len(s.Patterns))
		patID[key] = id
		s.Patterns = append(s.Patterns, key)
		return id
	}
	pos := make(map[*Candidate]int32, len(p.set.All))
	for i, c := range p.set.All {
		pos[c] = int32(i)
	}
	s.Space.NumQueries = len(p.w.Queries)
	for _, c := range p.set.All {
		cd := snapshot.CandidateData{
			Collection: c.Collection,
			PatternID:  internPat(c.Pattern),
			Type:       c.Type.Short(),
			Basic:      c.Basic,
			Rule:       c.Rule,
			DefName:    c.Def.Name,
			EstEntries: c.Def.EstEntries,
			EstPages:   c.Def.EstPages,
			Covers:     c.Covers(),
		}
		for _, q := range c.FromQueries {
			cd.FromQueries = append(cd.FromQueries, int32(q))
		}
		for _, ch := range c.Children {
			cd.Children = append(cd.Children, pos[ch])
		}
		s.Space.Candidates = append(s.Space.Candidates, cd)
	}
	for _, b := range p.set.Basics {
		s.Space.Basics = append(s.Space.Basics, pos[b])
	}
	statsJSON, err := json.Marshal(p.set.Stats)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: marshal pipeline stats: %w", err)
	}
	s.Space.StatsJSON = statsJSON

	// Only this session's atoms: every key of an evaluation over the
	// bound workload starts with one of the bound query prefixes.
	prefixes := map[string]bool{}
	for _, pre := range p.ev.bound.KeyPrefixes() {
		prefixes[pre] = true
	}
	atoms := a.cost.ExportAtoms(func(key string) bool {
		i := strings.IndexByte(key, '\x1f')
		return i >= 0 && prefixes[key[:i+1]]
	})
	for _, at := range atoms {
		s.Atoms = append(s.Atoms, snapshot.Atom{
			Key:           at.Key,
			CostNoIndexes: at.Val.CostNoIndexes,
			Cost:          at.Val.Cost,
			UsedIndexes:   at.Val.UsedIndexes,
			PlanDesc:      at.Val.PlanDesc,
		})
	}

	if m := p.builtBenefits(); m != nil {
		b := &snapshot.BenefitsData{NumQueries: m.NumQueries, Private: m.Private, Update: m.Update}
		for _, row := range m.Rows {
			var cells []snapshot.BenefitCell
			for _, e := range row {
				cells = append(cells, snapshot.BenefitCell{Query: e.Query, Benefit: e.Benefit})
			}
			b.Rows = append(b.Rows, cells)
		}
		s.Benefits = b
	}
	return s, nil
}

// LoadPrepared restores a Prepared session from a snapshot stream: the
// candidate space and DAG are rebuilt without enumeration or
// containment work, the saved what-if atoms are imported into the
// engine's cache before the evaluator binds (so even the base-cost
// evaluation is a cache hit), and the benefit matrix is seeded when the
// snapshot carries one. It fails with the codec's typed errors on bad
// input, ErrSnapshotMismatch when options or catalog statistics
// diverged, and ErrSnapshotInvalid when decoded content cannot be
// materialized.
func (a *Advisor) LoadPrepared(ctx context.Context, r io.Reader) (*Prepared, error) {
	snap, err := snapshot.Decode(r)
	if err != nil {
		return nil, err
	}
	return a.restorePrepared(ctx, snap)
}

func (a *Advisor) restorePrepared(ctx context.Context, snap *snapshot.Snapshot) (*Prepared, error) {
	if fp := a.optionsFingerprint(); snap.Meta.OptionsFP != fp {
		return nil, &SnapshotMismatchError{Field: "options", Saved: snap.Meta.OptionsFP, Current: fp}
	}
	// Catalog statistics must be unchanged: cached costs and size
	// estimates were computed against these versions.
	for _, cv := range snap.Meta.Collections {
		st, err := a.cat.Stats(cv.Name)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot collection %q: %w", cv.Name, err)
		}
		if st.Version != cv.Version {
			return nil, &SnapshotMismatchError{
				Field:   "collection " + cv.Name,
				Saved:   fmt.Sprintf("stats version %d", cv.Version),
				Current: fmt.Sprintf("stats version %d", st.Version),
			}
		}
	}

	w := &workload.Workload{Name: snap.Meta.WorkloadName}
	for _, q := range snap.Workload.Queries {
		pq, err := querylang.ParseAuto(q.Text)
		if err != nil {
			return nil, invalidf("query %s: %v", q.ID, err)
		}
		pq.ID = q.ID
		w.Queries = append(w.Queries, workload.Entry{Query: pq, Weight: q.Weight})
	}
	for i, u := range snap.Workload.Updates {
		up := workload.Update{
			Kind: workload.UpdateKind(u.Kind), Collection: u.Collection,
			Weight: u.Weight, DocXML: u.DocXML,
		}
		if u.Kind == uint8(workload.UpdateDelete) {
			pe, err := xpath.Parse(u.Path)
			if err != nil {
				return nil, invalidf("update %d path: %v", i, err)
			}
			up.Path = pe
		}
		w.Updates = append(w.Updates, up)
	}

	pats := make([]pattern.Pattern, len(snap.Patterns))
	for i, ps := range snap.Patterns {
		pt, err := pattern.Parse(ps)
		if err != nil {
			return nil, invalidf("pattern %q: %v", ps, err)
		}
		pats[i] = pt
	}

	all := make([]*Candidate, len(snap.Space.Candidates))
	children := make([][]int32, len(snap.Space.Candidates))
	for i, cd := range snap.Space.Candidates {
		ty, err := sqltype.ParseType(cd.Type)
		if err != nil {
			return nil, invalidf("candidate %d type %q: %v", i, cd.Type, err)
		}
		pt := pats[cd.PatternID]
		c := &Candidate{
			Collection: cd.Collection,
			Pattern:    pt,
			Type:       ty,
			Basic:      cd.Basic,
			Rule:       cd.Rule,
			Def: &catalog.IndexDef{
				Name:       cd.DefName,
				Collection: cd.Collection,
				Pattern:    pt,
				Type:       ty,
				Virtual:    true,
				EstEntries: cd.EstEntries,
				EstPages:   cd.EstPages,
			},
		}
		for _, q := range cd.FromQueries {
			c.FromQueries = append(c.FromQueries, int(q))
		}
		c.SetCovers(cd.Covers)
		all[i] = c
		children[i] = cd.Children
	}
	var cstats candidate.Stats
	if len(snap.Space.StatsJSON) > 0 {
		if err := json.Unmarshal(snap.Space.StatsJSON, &cstats); err != nil {
			return nil, invalidf("pipeline stats: %v", err)
		}
	}
	set := candidate.AssembleSet(all, snap.Space.Basics, children, cstats)

	// Warm the cache before the evaluator binds: newEvaluator's empty-
	// configuration base evaluation must already be a hit, so a restore
	// costs zero CostService calls when the snapshot carries its atoms.
	atoms := make([]whatif.CachedAtom, len(snap.Atoms))
	for i, at := range snap.Atoms {
		atoms[i] = whatif.CachedAtom{Key: at.Key, Val: whatif.QueryEval{
			CostNoIndexes: at.CostNoIndexes,
			Cost:          at.Cost,
			UsedIndexes:   at.UsedIndexes,
			PlanDesc:      at.PlanDesc,
		}}
	}
	a.cost.ImportAtoms(atoms)

	// Record the verified statistics versions so a later Recommend on
	// the same collections does not flush the cache we just warmed.
	a.verMu.Lock()
	for _, cv := range snap.Meta.Collections {
		a.catVersions[cv.Name] = cv.Version
	}
	a.verMu.Unlock()

	p, err := a.assemble(ctx, w, set)
	if err != nil {
		return nil, err
	}
	if b := snap.Benefits; b != nil {
		m := &whatif.BenefitMatrix{NumQueries: b.NumQueries, Private: b.Private, Update: b.Update}
		m.Rows = make([][]whatif.BenefitEntry, len(b.Rows))
		for i, row := range b.Rows {
			var cells []whatif.BenefitEntry
			for _, cell := range row {
				cells = append(cells, whatif.BenefitEntry{Query: cell.Query, Benefit: cell.Benefit})
			}
			m.Rows[i] = cells
		}
		p.seedBenefits(m)
	}
	return p, nil
}
