package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/sqltype"
	"repro/internal/workload"
	"repro/internal/xmldoc"
)

// evaluator computes workload benefits of candidate configurations by
// repeated Evaluate Indexes calls, memoizing per (query, configuration)
// since searches revisit the same configurations constantly. It also
// charges index maintenance for the workload's update statements.
type evaluator struct {
	a *Advisor
	w *workload.Workload

	// baseCost[qi] is the document-scan cost of query qi.
	baseCost []float64
	// cache maps configKey -> evaluation outcome.
	cache map[string]*configEval
	// insertEntries caches, per update index, the parsed sample
	// document's entry counts by candidate key.
	insertDocs []*xmldoc.Document

	// Evaluations counts optimizer Evaluate Indexes calls (reported in
	// the advisor trace).
	Evaluations int
}

// configEval is the memoized outcome for one configuration.
type configEval struct {
	// queryCost[qi] is the estimated cost of query qi under the config.
	queryCost []float64
	// usedBy[qi] lists config candidate IDs used by query qi's plan.
	usedBy [][]int
	// QueryBenefit is the weighted query benefit (no update cost).
	QueryBenefit float64
	// UpdateCost is the weighted maintenance cost of the config.
	UpdateCost float64
	// Net is QueryBenefit - UpdateCost.
	Net float64
	// UsedSet is the set of candidate IDs used by at least one query.
	UsedSet map[int]bool
}

func (a *Advisor) newEvaluator(w *workload.Workload) (*evaluator, error) {
	ev := &evaluator{a: a, w: w, cache: map[string]*configEval{}}
	for _, e := range w.Queries {
		plan, err := a.opt.EvaluateIndexes(e.Query, nil, true)
		if err != nil {
			return nil, err
		}
		ev.baseCost = append(ev.baseCost, plan.CostNoIndexes)
	}
	for _, u := range w.Updates {
		var d *xmldoc.Document
		if u.Kind == workload.UpdateInsert {
			var err error
			d, err = xmldoc.ParseString(u.DocXML)
			if err != nil {
				return nil, fmt.Errorf("core: update document: %w", err)
			}
		}
		ev.insertDocs = append(ev.insertDocs, d)
	}
	return ev, nil
}

func configKey(cfg []*Candidate) string {
	ids := make([]int, len(cfg))
	for i, c := range cfg {
		ids[i] = c.ID
	}
	sort.Ints(ids)
	var sb strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&sb, "%d,", id)
	}
	return sb.String()
}

// eval returns the (memoized) evaluation of a configuration.
func (ev *evaluator) eval(cfg []*Candidate) (*configEval, error) {
	key := configKey(cfg)
	if got, ok := ev.cache[key]; ok {
		return got, nil
	}
	defs := make([]*catalog.IndexDef, len(cfg))
	defByName := map[string]int{}
	for i, c := range cfg {
		defs[i] = c.Def
		defByName[c.Def.Name] = c.ID
	}
	out := &configEval{UsedSet: map[int]bool{}}
	for qi, e := range ev.w.Queries {
		// Only pass same-collection defs; the optimizer ignores others
		// anyway but this keeps matching cheap.
		var qdefs []*catalog.IndexDef
		for i, c := range cfg {
			if c.Collection == e.Query.Collection {
				qdefs = append(qdefs, defs[i])
			}
		}
		res, err := ev.a.opt.EvaluateIndexes(e.Query, qdefs, true)
		if err != nil {
			return nil, err
		}
		ev.Evaluations++
		out.queryCost = append(out.queryCost, res.Cost)
		var used []int
		for _, name := range res.UsedIndexes {
			if id, ok := defByName[name]; ok {
				used = append(used, id)
				out.UsedSet[id] = true
			}
		}
		out.usedBy = append(out.usedBy, used)
		out.QueryBenefit += e.Weight * (ev.baseCost[qi] - res.Cost)
	}
	out.UpdateCost = ev.updateCost(cfg)
	out.Net = out.QueryBenefit - out.UpdateCost
	ev.cache[key] = out
	return out, nil
}

// updateCost charges each update statement for the index entries it
// would add or remove in every configuration index (paper §1: "taking
// into account the cost of updating the index on data modification").
func (ev *evaluator) updateCost(cfg []*Candidate) float64 {
	if len(ev.w.Updates) == 0 {
		return 0
	}
	perEntry := ev.a.opt.Cost.MaintPerEntry
	var total float64
	for ui, u := range ev.w.Updates {
		for _, c := range cfg {
			if c.Collection != u.Collection {
				continue
			}
			switch u.Kind {
			case workload.UpdateInsert:
				d := ev.insertDocs[ui]
				if d == nil {
					continue
				}
				total += u.Weight * float64(docEntriesFor(d, c)) * perEntry
			case workload.UpdateDelete:
				// Deleting a document removes its entries from every
				// index; estimate with the index's average entries per
				// document, restricted to docs the delete path selects
				// (approximated by full overlap when patterns intersect).
				st, err := ev.a.cat.Stats(u.Collection)
				if err != nil || st.Docs == 0 {
					continue
				}
				perDoc := float64(c.Def.EstEntries) / float64(st.Docs)
				if u.Path != nil && !pattern.Overlaps(docScope(u.Path.LinearPattern()), docScope(c.Pattern)) {
					continue
				}
				total += u.Weight * perDoc * perEntry
			}
		}
	}
	return total
}

// docScope reduces a pattern to its first step: two patterns can share a
// document only if they agree on the document root element.
func docScope(p pattern.Pattern) pattern.Pattern {
	if p.IsZero() {
		return p
	}
	return pattern.Pattern{Steps: p.Steps[:1]}
}

// docEntriesFor counts the index entries document d would contribute to
// candidate c — exact maintenance work for an insert of d.
func docEntriesFor(d *xmldoc.Document, c *Candidate) int {
	m := pattern.Compile(c.Pattern)
	n := 0
	d.Walk(func(nd *xmldoc.Node) bool {
		var raw string
		switch nd.Kind {
		case xmldoc.KindElement:
			raw = nd.Text()
		default:
			raw = nd.Value
		}
		if m.MatchPath(nd.RootPath()) {
			if _, ok := sqltype.Cast(c.Type, raw); ok {
				n++
			}
		}
		return true
	})
	return n
}

// standalone returns each candidate's net benefit evaluated alone,
// in candidate order.
func (ev *evaluator) standalone(cands []*Candidate) (map[int]*configEval, error) {
	out := make(map[int]*configEval, len(cands))
	for _, c := range cands {
		e, err := ev.eval([]*Candidate{c})
		if err != nil {
			return nil, err
		}
		out[c.ID] = e
	}
	return out, nil
}
