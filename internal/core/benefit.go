package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/search"
	"repro/internal/sqltype"
	"repro/internal/whatif"
	"repro/internal/workload"
	"repro/internal/xmldoc"
)

// evaluator computes workload benefits of candidate configurations. All
// what-if costing goes through the advisor's whatif engine, which fans
// per-query evaluations across a worker pool and memoizes configuration
// results; the evaluator only derives workload-level aggregates (weighted
// benefit, update cost, candidate usage) from the engine's per-query
// costs. It is safe for concurrent use, so searches can evaluate many
// configurations at once.
type evaluator struct {
	a *Advisor
	w *workload.Workload

	// bound scopes the engine to the workload's query list, with the
	// workload fingerprint precomputed.
	bound *whatif.Bound
	// baseCost[qi] is the document-scan cost of query qi.
	baseCost []float64
	// insertDocs caches, per update index, the parsed sample document.
	insertDocs []*xmldoc.Document

	// entryMu guards the memoized per-(update, candidate) state behind
	// updateCost, shared across concurrent evals: entryCount holds
	// index-entry counts (the one expensive non-optimizer computation),
	// delOverlap holds delete-scope overlap decisions.
	entryMu    sync.Mutex
	entryCount map[[2]int]int
	delOverlap map[[2]int]bool
}

// configEval is the derived evaluation of one configuration.
type configEval struct {
	// queryCost[qi] is the estimated cost of query qi under the config.
	queryCost []float64
	// usedBy[qi] lists config candidate IDs used by query qi's plan.
	usedBy [][]int
	// QueryBenefit is the weighted query benefit (no update cost).
	QueryBenefit float64
	// UpdateCost is the weighted maintenance cost of the config.
	UpdateCost float64
	// Net is QueryBenefit - UpdateCost.
	Net float64
	// UsedSet is the set of candidate IDs used by at least one query.
	UsedSet map[int]bool
}

func (a *Advisor) newEvaluator(ctx context.Context, w *workload.Workload) (*evaluator, error) {
	ev := &evaluator{a: a, w: w, bound: a.cost.Bind(w.QueryList()),
		entryCount: map[[2]int]int{}, delOverlap: map[[2]int]bool{}}
	// The empty configuration gives every query's document-scan cost.
	base, err := ev.bound.EvaluateConfig(ctx, nil)
	if err != nil {
		return nil, err
	}
	for _, qe := range base.Queries {
		ev.baseCost = append(ev.baseCost, qe.CostNoIndexes)
	}
	for _, u := range w.Updates {
		var d *xmldoc.Document
		if u.Kind == workload.UpdateInsert {
			var err error
			d, err = xmldoc.ParseString(u.DocXML)
			if err != nil {
				return nil, fmt.Errorf("core: update document: %w", err)
			}
		}
		ev.insertDocs = append(ev.insertDocs, d)
	}
	return ev, nil
}

// eval returns the evaluation of a configuration. The underlying
// per-query costs are memoized by the whatif engine; the derivation here
// is cheap (no optimizer calls).
func (ev *evaluator) eval(ctx context.Context, cfg []*Candidate) (*configEval, error) {
	defs := make([]*catalog.IndexDef, len(cfg))
	for i, c := range cfg {
		defs[i] = c.Def
	}
	res, err := ev.bound.EvaluateConfig(ctx, defs)
	if err != nil {
		return nil, err
	}
	return ev.derive(res, cfg), nil
}

// evalBatch evaluates base+{c} for a burst of candidates as one unit:
// the whole burst goes to the whatif engine's batch entry point in one
// dispatch, then each result gets the same cheap derivation as eval.
// Results are in cands order.
func (ev *evaluator) evalBatch(ctx context.Context, base, cands []*Candidate) ([]*configEval, error) {
	baseDefs := make([]*catalog.IndexDef, len(base))
	for i, c := range base {
		baseDefs[i] = c.Def
	}
	configs := make([][]*catalog.IndexDef, len(cands))
	cfgs := make([][]*Candidate, len(cands))
	for i, c := range cands {
		defs := make([]*catalog.IndexDef, 0, len(base)+1)
		defs = append(append(defs, baseDefs...), c.Def)
		configs[i] = defs
		cfg := make([]*Candidate, 0, len(base)+1)
		cfgs[i] = append(append(cfg, base...), c)
	}
	results, err := ev.bound.EvaluateConfigBatch(ctx, configs)
	if err != nil {
		return nil, err
	}
	out := make([]*configEval, len(cands))
	for i, res := range results {
		out[i] = ev.derive(res, cfgs[i])
	}
	return out, nil
}

// degradedEval is the conservative fallback evaluation for assembling a
// degraded recommendation when the what-if backend is unavailable
// (circuit breaker open) and a configuration's atoms are not all
// cached: every query is priced at its document-scan base cost (no
// measured improvement), no index usage is claimed, and only the
// locally computed maintenance cost is charged. For the empty
// configuration this is exact; otherwise it underclaims, never
// overclaims.
func (ev *evaluator) degradedEval(cfg []*Candidate) *configEval {
	out := &configEval{
		queryCost: append([]float64(nil), ev.baseCost...),
		usedBy:    make([][]int, len(ev.baseCost)),
		UsedSet:   map[int]bool{},
	}
	out.UpdateCost = ev.updateCost(cfg)
	out.Net = -out.UpdateCost
	return out
}

// derive turns the engine's per-query costs into the workload-level
// aggregates (weighted benefit, update cost, candidate usage). No
// optimizer calls.
func (ev *evaluator) derive(res *whatif.ConfigEval, cfg []*Candidate) *configEval {
	defByName := make(map[string]int, len(cfg))
	for _, c := range cfg {
		defByName[c.Def.Name] = c.ID
	}
	out := &configEval{UsedSet: map[int]bool{}}
	for qi, e := range ev.w.Queries {
		qe := res.Queries[qi]
		out.queryCost = append(out.queryCost, qe.Cost)
		var used []int
		for _, name := range qe.UsedIndexes {
			if id, ok := defByName[name]; ok {
				used = append(used, id)
				out.UsedSet[id] = true
			}
		}
		out.usedBy = append(out.usedBy, used)
		out.QueryBenefit += e.Weight * (ev.baseCost[qi] - qe.Cost)
	}
	out.UpdateCost = ev.updateCost(cfg)
	out.Net = out.QueryBenefit - out.UpdateCost
	return out
}

// searchEvaluator adapts the advisor's evaluator to the search layer's
// Evaluator interface: configuration evaluations become the
// workload-level aggregates strategies rank by. It is safe for
// concurrent use (the evaluator is).
type searchEvaluator struct {
	ev *evaluator
}

// Evaluate prices the configuration for the search layer.
func (s searchEvaluator) Evaluate(ctx context.Context, cfg []*Candidate) (*search.Eval, error) {
	e, err := s.ev.eval(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &search.Eval{
		QueryBenefit: e.QueryBenefit,
		UpdateCost:   e.UpdateCost,
		Net:          e.Net,
		Used:         e.UsedSet,
	}, nil
}

// EvaluateBatch prices base+{c} for a whole burst of candidates in one
// whatif-engine dispatch — the search layer's BatchEvaluator fast path.
func (s searchEvaluator) EvaluateBatch(ctx context.Context, base, cands []*search.Candidate) ([]*search.Eval, error) {
	evals, err := s.ev.evalBatch(ctx, base, cands)
	if err != nil {
		return nil, err
	}
	out := make([]*search.Eval, len(evals))
	for i, e := range evals {
		out[i] = &search.Eval{
			QueryBenefit: e.QueryBenefit,
			UpdateCost:   e.UpdateCost,
			Net:          e.Net,
			Used:         e.UsedSet,
		}
	}
	return out, nil
}

// Workers is the what-if engine's evaluation parallelism.
func (s searchEvaluator) Workers() int { return s.ev.a.cost.Workers() }

// updateCost charges each update statement for the index entries it
// would add or remove in every configuration index (paper §1: "taking
// into account the cost of updating the index on data modification").
func (ev *evaluator) updateCost(cfg []*Candidate) float64 {
	if len(ev.w.Updates) == 0 {
		return 0
	}
	perEntry := ev.a.maintPerEntry
	var total float64
	for ui, u := range ev.w.Updates {
		var deleteScope pattern.Pattern
		if u.Kind == workload.UpdateDelete && u.Path != nil {
			deleteScope = docScope(u.Path.LinearPattern())
		}
		for _, c := range cfg {
			if c.Collection != u.Collection {
				continue
			}
			switch u.Kind {
			case workload.UpdateInsert:
				if ev.insertDocs[ui] == nil {
					continue
				}
				total += u.Weight * float64(ev.docEntries(ui, c)) * perEntry
			case workload.UpdateDelete:
				// Deleting a document removes its entries from every
				// index; estimate with the index's average entries per
				// document, restricted to docs the delete path selects
				// (approximated by full overlap when patterns intersect).
				st, err := ev.a.cat.Stats(u.Collection)
				if err != nil || st.Docs == 0 {
					continue
				}
				perDoc := float64(c.Def.EstEntries) / float64(st.Docs)
				if u.Path != nil && !ev.deleteOverlaps(ui, deleteScope, c) {
					continue
				}
				total += u.Weight * perDoc * perEntry
			}
		}
	}
	return total
}

// deleteOverlaps is the memoized per-(update, candidate) decision of
// whether update ui's delete scope shares a document root with
// candidate c's pattern; updateCost runs once per configuration
// evaluation, so the docScope rendering and kernel lookup are paid at
// most once per pair.
func (ev *evaluator) deleteOverlaps(ui int, scope pattern.Pattern, c *Candidate) bool {
	key := [2]int{ui, c.ID}
	ev.entryMu.Lock()
	v, ok := ev.delOverlap[key]
	ev.entryMu.Unlock()
	if ok {
		return v
	}
	v = pattern.OverlapsCached(scope, docScope(c.Pattern))
	ev.entryMu.Lock()
	ev.delOverlap[key] = v
	ev.entryMu.Unlock()
	return v
}

// docEntries is the memoized entry count of update ui's sample document
// in candidate c's index.
func (ev *evaluator) docEntries(ui int, c *Candidate) int {
	key := [2]int{ui, c.ID}
	ev.entryMu.Lock()
	n, ok := ev.entryCount[key]
	ev.entryMu.Unlock()
	if ok {
		return n
	}
	n = docEntriesFor(ev.insertDocs[ui], c)
	ev.entryMu.Lock()
	ev.entryCount[key] = n
	ev.entryMu.Unlock()
	return n
}

// docScope reduces a pattern to its first step: two patterns can share a
// document only if they agree on the document root element.
func docScope(p pattern.Pattern) pattern.Pattern {
	if p.IsZero() {
		return p
	}
	return p.Prefix(1)
}

// docEntriesFor counts the index entries document d would contribute to
// candidate c — exact maintenance work for an insert of d.
func docEntriesFor(d *xmldoc.Document, c *Candidate) int {
	m := pattern.InternedMatcher(c.Pattern)
	n := 0
	d.Walk(func(nd *xmldoc.Node) bool {
		var raw string
		switch nd.Kind {
		case xmldoc.KindElement:
			raw = nd.Text()
		default:
			raw = nd.Value
		}
		if m.MatchPath(nd.RootPath()) {
			if _, ok := sqltype.Cast(c.Type, raw); ok {
				n++
			}
		}
		return true
	})
	return n
}
