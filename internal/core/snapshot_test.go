package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/snapshot"
	"repro/internal/store"
)

// xmarkStoreFixture is xmarkFixture keeping the store, so tests can
// mutate collections to invalidate statistics versions.
func xmarkStoreFixture(t testing.TB, docs int) (*store.Store, *catalog.Catalog) {
	t.Helper()
	st := store.New()
	if _, err := datagen.GenerateXMark(st, datagen.XMarkConfig{Docs: docs, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	return st, catalog.New(st)
}

// renderRec projects a Recommendation onto everything a restored
// session must reproduce byte-for-byte: configuration, DDL, exact
// costs, per-query analysis, the candidate space, and the original
// pipeline stats. Volatile run-local fields (timings, cache counter
// windows, traces) are deliberately absent.
func renderRec(t *testing.T, rec *Recommendation) string {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "names=%v\npages=%d\n", rec.Names, rec.TotalPages)
	for _, ddl := range rec.DDL {
		fmt.Fprintln(&sb, ddl)
	}
	fmt.Fprintf(&sb, "qb=%v uc=%v net=%v\n", rec.QueryBenefit, rec.UpdateCost, rec.NetBenefit)
	for _, qa := range rec.PerQuery {
		fmt.Fprintf(&sb, "q %s w=%v c0=%v cr=%v co=%v used=%v\n",
			qa.ID, qa.Weight, qa.CostNoIndexes, qa.CostRecommended, qa.CostOvertrained, qa.IndexesUsed)
	}
	for _, c := range rec.Config {
		fmt.Fprintf(&sb, "cfg %d %s\n", c.ID, c.Key())
	}
	for _, b := range rec.Basics {
		fmt.Fprintf(&sb, "basic %d %s\n", b.ID, b.Key())
	}
	sb.WriteString(rec.DAG.Render())
	gen, err := json.Marshal(rec.Gen)
	if err != nil {
		t.Fatal(err)
	}
	sb.Write(gen)
	fmt.Fprintf(&sb, "\nrelevance=%+v\n", rec.Relevance)
	return sb.String()
}

func TestPreparedSaveLoadParity(t *testing.T) {
	_, cat := xmarkStoreFixture(t, 300)
	ctx := context.Background()
	w := datagen.XMarkPaperWorkload()
	strategies := []SearchKind{SearchGreedyHeuristic, SearchTopDown, SearchGreedyBasic}

	a := New(cat, DefaultOptions())
	p1, err := a.Prepare(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	want := map[SearchKind]string{}
	for _, k := range strategies {
		rec, err := p1.RecommendWith(ctx, k, 0)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		want[k] = renderRec(t, rec)
	}
	m1, err := p1.BenefitMatrix(ctx)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := p1.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh advisor (cold engine, same catalog and options) restores
	// and must recommend byte-identically with zero CostService calls.
	b := New(cat, DefaultOptions())
	p2, err := b.LoadPrepared(ctx, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	evalsAfterLoad := b.CostEngine().Stats().Evaluations
	if evalsAfterLoad != 0 {
		t.Errorf("restore issued %d CostService calls, want 0 (base costs must come from imported atoms)", evalsAfterLoad)
	}
	for _, k := range strategies {
		rec, err := p2.RecommendWith(ctx, k, 0)
		if err != nil {
			t.Fatalf("restored %s: %v", k, err)
		}
		if got := renderRec(t, rec); got != want[k] {
			t.Errorf("%s: restored recommendation differs from original:\n--- original ---\n%s\n--- restored ---\n%s", k, want[k], got)
		}
	}
	if evals := b.CostEngine().Stats().Evaluations; evals != 0 {
		t.Errorf("restored recommends issued %d CostService calls, want 0 (warm cache)", evals)
	}
	m2, err := p2.BenefitMatrix(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Error("restored benefit matrix differs from original")
	}
	if evals := b.CostEngine().Stats().Evaluations; evals != 0 {
		t.Errorf("restored benefit matrix issued %d CostService calls, want 0 (seeded from snapshot)", evals)
	}
}

func TestSaveWithoutBenefitMatrixOmitsSection(t *testing.T) {
	_, cat := xmarkStoreFixture(t, 120)
	ctx := context.Background()
	a := New(cat, DefaultOptions())
	p, err := a.Prepare(ctx, datagen.XMarkPaperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := snapshot.Inspect(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info.BenefitRows != 0 {
		t.Error("benefit section present though the matrix was never built")
	}
	if info.Atoms == 0 || info.Candidates == 0 {
		t.Errorf("unexpectedly empty snapshot: %+v", info)
	}
	// Restore still works and can build the matrix on demand.
	b := New(cat, DefaultOptions())
	p2, err := b.LoadPrepared(ctx, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.BenefitMatrix(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestLoadPreparedOptionsMismatch(t *testing.T) {
	_, cat := xmarkStoreFixture(t, 120)
	ctx := context.Background()
	a := New(cat, DefaultOptions())
	p, err := a.Prepare(ctx, datagen.XMarkPaperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Generalize = false
	b := New(cat, opts)
	_, err = b.LoadPrepared(ctx, bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("LoadPrepared = %v, want ErrSnapshotMismatch", err)
	}
	var me *SnapshotMismatchError
	if !errors.As(err, &me) || me.Field != "options" {
		t.Fatalf("LoadPrepared = %v, want options SnapshotMismatchError", err)
	}
}

func TestLoadPreparedStaleCatalog(t *testing.T) {
	st, cat := xmarkStoreFixture(t, 120)
	ctx := context.Background()
	a := New(cat, DefaultOptions())
	p, err := a.Prepare(ctx, datagen.XMarkPaperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// The collection changes after the save: cached costs are stale.
	if _, err := st.Get("auction").InsertXML("<site><regions/></site>"); err != nil {
		t.Fatal(err)
	}
	b := New(cat, DefaultOptions())
	_, err = b.LoadPrepared(ctx, bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("LoadPrepared = %v, want ErrSnapshotMismatch", err)
	}
}

func TestLoadPreparedRejectsGarbage(t *testing.T) {
	_, cat := xmarkStoreFixture(t, 120)
	a := New(cat, DefaultOptions())
	_, err := a.LoadPrepared(context.Background(), strings.NewReader("not a snapshot at all"))
	if !errors.Is(err, snapshot.ErrNotSnapshot) {
		t.Fatalf("LoadPrepared = %v, want snapshot.ErrNotSnapshot", err)
	}
}
