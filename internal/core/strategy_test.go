package core

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/search"
)

func TestParseSearchKind(t *testing.T) {
	for in, want := range map[string]SearchKind{
		"greedy":           SearchGreedyHeuristic,
		"greedy-heuristic": SearchGreedyHeuristic,
		"heuristic":        SearchGreedyHeuristic,
		"topdown":          SearchTopDown,
		"top-down":         SearchTopDown,
		"greedy-basic":     SearchGreedyBasic,
		"basic":            SearchGreedyBasic,
		"knapsack":         SearchGreedyBasic,
		"race":             SearchRace,
		"portfolio":        SearchRace,
		"":                 SearchGreedyHeuristic,
	} {
		got, err := ParseSearchKind(in)
		if err != nil || got != want {
			t.Errorf("ParseSearchKind(%q) = %v, %v", in, got, err)
		}
	}
	_, err := ParseSearchKind("simulated-annealing")
	if err == nil {
		t.Fatal("unknown search should fail")
	}
	// The error must enumerate the valid strategy names, not just echo
	// the bad input.
	for _, name := range search.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name valid strategy %q", err, name)
		}
	}
	if SearchTopDown.String() != "topdown" || SearchGreedyBasic.String() != "greedy-basic" {
		t.Error("search names broken")
	}
	if SearchKind("").String() != search.Default {
		t.Error("zero SearchKind should name the default strategy")
	}
}

func TestPlainGreedyKeepsRedundantIndexes(t *testing.T) {
	// With no budget pressure, plain greedy adds every positive-benefit
	// candidate — including general indexes fully covered by specific
	// ones it already picked. The heuristic search must not.
	cat := xmarkFixture(t, 250)
	w := datagen.XMarkWorkload(14, 12)

	unused := func(kind SearchKind) int {
		opts := DefaultOptions()
		opts.Search = kind
		rec, err := New(cat, opts).Recommend(w)
		if err != nil {
			t.Fatal(err)
		}
		used := map[string]bool{}
		for _, qa := range rec.PerQuery {
			for _, n := range qa.IndexesUsed {
				used[n] = true
			}
		}
		return len(rec.Config) - len(used)
	}
	plain := unused(SearchGreedyBasic)
	heur := unused(SearchGreedyHeuristic)
	if heur != 0 {
		t.Errorf("heuristic search recommended %d unused indexes", heur)
	}
	if plain < heur {
		t.Errorf("plain greedy (%d unused) should not beat heuristic (%d)", plain, heur)
	}
}

func TestTopDownPrefersGeneralIndexes(t *testing.T) {
	cat := xmarkFixture(t, 250)
	w := datagen.XMarkWorkload(14, 13)

	base, err := New(cat, DefaultOptions()).Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Search = SearchTopDown
	opts.DiskBudgetPages = search.PagesOf(base.Config) // generous budget
	top, err := New(cat, opts).Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	wild := func(rec *Recommendation) int {
		n := 0
		for _, c := range rec.Config {
			n += c.Pattern.WildcardCount() + c.Pattern.DescendantCount()
		}
		return n
	}
	// Top-down keeps configurations as general as possible: its config
	// should carry at least as many wildcard/descendant steps.
	if wild(top) < wild(base) {
		t.Errorf("top-down config less general (%d) than greedy (%d)", wild(top), wild(base))
	}
}

func TestTopDownTerminatesOnTinyBudget(t *testing.T) {
	cat := xmarkFixture(t, 120)
	opts := DefaultOptions()
	opts.Search = SearchTopDown
	opts.DiskBudgetPages = 1
	rec, err := New(cat, opts).Recommend(datagen.XMarkWorkload(8, 14))
	if err != nil {
		t.Fatal(err)
	}
	if rec.TotalPages > 1 {
		t.Errorf("budget 1 page violated: %d", rec.TotalPages)
	}
}

func TestRaceMatchesBestMember(t *testing.T) {
	cat := xmarkFixture(t, 200)
	w := datagen.XMarkWorkload(12, 15)

	base, err := New(cat, DefaultOptions()).Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	budget := base.TotalPages / 2
	bestNet := -1.0
	for _, kind := range []SearchKind{SearchGreedyBasic, SearchGreedyHeuristic, SearchTopDown} {
		opts := DefaultOptions()
		opts.Search = kind
		opts.DiskBudgetPages = budget
		rec, err := New(cat, opts).Recommend(w)
		if err != nil {
			t.Fatal(err)
		}
		if rec.NetBenefit > bestNet {
			bestNet = rec.NetBenefit
		}
	}
	opts := DefaultOptions()
	opts.Search = SearchRace
	opts.DiskBudgetPages = budget
	rec, err := New(cat, opts).Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	if rec.NetBenefit+1e-6 < bestNet {
		t.Errorf("race net %.3f worse than best member %.3f", rec.NetBenefit, bestNet)
	}
	if rec.Search.Winner == "" {
		t.Error("race recorded no winner")
	}
	if len(rec.Search.Members) == 0 {
		t.Error("race recorded no member stats")
	}
	if rec.TotalPages > budget {
		t.Errorf("race config %d pages exceeds budget %d", rec.TotalPages, budget)
	}
}

func TestPreparedBudgetSweepMatchesFullRuns(t *testing.T) {
	cat := xmarkFixture(t, 200)
	w := datagen.XMarkWorkload(10, 16)
	ctx := context.Background()

	a := New(cat, DefaultOptions())
	prep, err := a.Prepare(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	full, err := prep.RecommendWith(ctx, SearchGreedyHeuristic, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{0, full.TotalPages / 2, full.TotalPages / 4} {
		swept, err := prep.RecommendWith(ctx, SearchGreedyHeuristic, budget)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.DiskBudgetPages = budget
		fresh, err := New(cat, opts).Recommend(w)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(swept.DDL, "\n") != strings.Join(fresh.DDL, "\n") {
			t.Errorf("budget %d: swept recommendation differs from a full advisor run:\n%v\nvs\n%v",
				budget, swept.DDL, fresh.DDL)
		}
		if swept.NetBenefit != fresh.NetBenefit {
			t.Errorf("budget %d: net benefit %v != %v", budget, swept.NetBenefit, fresh.NetBenefit)
		}
	}
}

func TestCompressedWorkloadSameRecommendation(t *testing.T) {
	cat := xmarkFixture(t, 150)
	// Duplicate the workload against itself: compression halves the
	// queries while doubling weights.
	big := datagen.XMarkWorkload(10, 15)
	big.Queries = append(big.Queries[:len(big.Queries):len(big.Queries)], big.Queries...)
	compressed := big.Compress()
	if len(compressed.Queries) >= len(big.Queries) {
		t.Fatalf("compression did not shrink: %d vs %d", len(compressed.Queries), len(big.Queries))
	}
	recBig, err := New(cat, DefaultOptions()).Recommend(big)
	if err != nil {
		t.Fatal(err)
	}
	recSmall, err := New(cat, DefaultOptions()).Recommend(compressed)
	if err != nil {
		t.Fatal(err)
	}
	// Identical leg multiset => identical configuration and net benefit.
	if len(recBig.Config) != len(recSmall.Config) {
		t.Errorf("config sizes differ: %d vs %d", len(recBig.Config), len(recSmall.Config))
	}
	if diff := recBig.NetBenefit - recSmall.NetBenefit; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("net benefit differs: %f vs %f", recBig.NetBenefit, recSmall.NetBenefit)
	}
	// The engine's per-(query, sub-config) atoms are keyed by query text,
	// so the duplicated queries already share every evaluation and
	// compression cannot cost more; its remaining win is the smaller
	// pipeline and per-query derivation.
	if recSmall.Evaluations > recBig.Evaluations {
		t.Errorf("compression increased evaluations: %d vs %d", recSmall.Evaluations, recBig.Evaluations)
	}
}

func TestRecommendationJSONExport(t *testing.T) {
	cat := xmarkFixture(t, 120)
	rec, err := New(cat, DefaultOptions()).Recommend(datagen.XMarkPaperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"ddl"`, `"dag"`, `"edges"`, `"netBenefit"`, `"perQuery"`,
		`"traceEvents"`, `"search"`, `"strategy"`, "/site/regions/*/item/quantity"} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q", want)
		}
	}
	var back map[string]interface{}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if _, ok := back["dag"].(map[string]interface{}); !ok {
		t.Error("dag not an object")
	}
}
