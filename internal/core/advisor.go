package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/candidate"
	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/pattern"
	"repro/internal/search"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// Options configure the advisor.
type Options struct {
	// DiskBudgetPages bounds the total size of the recommended
	// configuration; 0 means unlimited.
	DiskBudgetPages int64
	// Search selects the configuration search algorithm.
	Search SearchKind
	// Generalize enables the candidate generalization phase (§2.2).
	Generalize bool
	// MinSharedSteps is the minimum number of shared concrete steps two
	// patterns need before pairwise generalization applies.
	MinSharedSteps int
	// MaxCandidates caps the expanded candidate set.
	MaxCandidates int
	// InteractionAware makes greedy search re-evaluate configurations
	// each round instead of trusting standalone benefits (§2.3 "index
	// interaction").
	InteractionAware bool
	// Enumeration selects optimizer-coupled or syntactic candidate
	// enumeration (the coupling ablation).
	Enumeration EnumerationMode
	// Source, when non-nil, overrides Enumeration with a custom
	// candidate source (a user-supplied or seeded enumerator).
	Source candidate.Source
	// Rules, when non-empty, is the comma-separated generalization rule
	// list ("lub,leaf,axis", "all", "none") and replaces the default
	// rule set; Generalize=false still disables all rules.
	Rules string
	// GenParallelism bounds concurrent per-query candidate enumerations
	// in the pipeline; 0 means GOMAXPROCS. The candidate set is
	// identical at every parallelism level.
	GenParallelism int
	// IncludeUniversal adds the universal patterns (//* and //@*) as DAG
	// roots, the most general indexes possible. They are usually far too
	// large to recommend, but give top-down search the full root-to-leaf
	// range the paper describes.
	IncludeUniversal bool
	// RelaxAxes enables the optional axis-relaxation rule: each child
	// step of a candidate also generalizes to a descendant step
	// (/a/b -> /a//b), useful when future workloads move subtrees.
	RelaxAxes bool

	// Anytime makes deadline-aware strategies return the best result
	// found so far when the context deadline expires instead of failing.
	// Today the race portfolio honors it: members that completed before
	// the deadline still compete and the best finished member wins.
	Anytime bool

	// EagerGreedy forces greedy-heuristic's original eager marginal
	// scan instead of the default lazy-greedy heap. Both choose the
	// same configuration; eager is the measured baseline for the lazy
	// path's what-if call reduction.
	EagerGreedy bool
	// RaceCostBound makes the race portfolio cost-bounded: members
	// publish fully evaluated nets to a shared leader board and abort
	// once their remaining upper bound cannot beat the leader (aborted
	// members are recorded in the search stats and never win).
	RaceCostBound bool
	// TraceCap bounds the per-strategy search trace buffer: 0 means
	// the search layer's default, negative means unlimited. Truncation
	// is recorded in the search stats.
	TraceCap int
	// LPMaxPasses caps the lp strategy's dual coordinate-descent
	// passes; 0 means the solver default. The dual value is a valid
	// upper bound at every pass, so a lower cap trades bound tightness
	// (and rounding quality) for solve time, never correctness.
	LPMaxPasses int
	// LPRepairRounds caps the lp strategy's what-if repair rounds after
	// rounding; 0 means the default, negative disables repair entirely.
	LPRepairRounds int

	// Parallelism bounds concurrent what-if query evaluations in the
	// costing engine; 0 means GOMAXPROCS.
	Parallelism int
	// CacheShards is the what-if cache shard count (0 = default).
	CacheShards int
	// CacheSize caps the number of memoized per-(query, sub-config)
	// evaluation atoms. 0 means the default cap (65536); negative means
	// unlimited. The cache lives for the advisor's lifetime, so
	// unbounded growth is opt-in only.
	CacheSize int
	// NoProjection disables the what-if engine's relevance projection:
	// evaluation atoms are keyed by the whole configuration instead of
	// each query's relevant sub-config. Recommendations are identical
	// either way; this is the measured baseline and the differential-
	// test reference.
	NoProjection bool

	// Resilience, when non-nil, wraps the cost service in the
	// whatif.ResilientService middleware (per-call timeouts, bounded
	// retries with deterministic jitter, circuit breaker) directly
	// below the memoizing engine — so transient faults the retries
	// absorb are invisible to searches, and cached atoms keep serving
	// while the breaker is open.
	Resilience *whatif.ResilientOptions
	// CostWrapper, when non-nil, wraps the cost service below the
	// resilience middleware (Engine → Resilient → CostWrapper(svc)).
	// It exists for fault injection (whatif.FaultService) in tests,
	// soaks, and `xiad -faults`, and for backend-specific shims.
	CostWrapper func(whatif.CostService) whatif.CostService
}

// DefaultOptions returns the advisor defaults used by the demo tools.
func DefaultOptions() Options {
	return Options{
		Search:           SearchGreedyHeuristic,
		Generalize:       true,
		MinSharedSteps:   candidate.DefaultMinSharedSteps,
		MaxCandidates:    candidate.DefaultMaxCandidates,
		InteractionAware: true,
	}
}

// Advisor recommends XML index configurations for workloads. Candidate
// enumeration uses the query optimizer's Enumerate Indexes EXPLAIN mode;
// all what-if costing goes through the whatif.CostService boundary,
// wrapped in a concurrent memoizing engine.
type Advisor struct {
	cat  *catalog.Catalog
	opt  *optimizer.Optimizer
	cost *whatif.Engine
	opts Options
	// resilient is the costing middleware when Options.Resilience is
	// set; nil otherwise. Its breaker state feeds health reporting.
	resilient *whatif.ResilientService

	// maintPerEntry is the index-maintenance cost per entry, taken from
	// the backing cost model (benefit computation must not reach into
	// the optimizer directly).
	maintPerEntry float64

	// verMu guards catVersions, the per-collection statistics versions
	// the cached what-if costs were computed against. The engine's
	// cache keys carry no catalog version, so the advisor flushes it
	// whenever a workload collection's data has changed.
	verMu       sync.Mutex
	catVersions map[string]int64
}

// New creates an advisor over the catalog, costing through the
// in-process optimizer.
func New(cat *catalog.Catalog, opts Options) *Advisor {
	opt := optimizer.New(cat)
	return NewWithService(cat, opts, whatif.NewOptimizerService(opt), opt)
}

// NewWithService creates an advisor whose what-if costing goes through
// the given service — the hook for alternative optimizer backends. The
// optimizer is still used for candidate enumeration (and may be nil when
// Options.Enumeration is EnumSyntactic).
func NewWithService(cat *catalog.Catalog, opts Options, svc whatif.CostService, opt *optimizer.Optimizer) *Advisor {
	if opts.MaxCandidates <= 0 {
		opts.MaxCandidates = candidate.DefaultMaxCandidates
	}
	if opts.MinSharedSteps < 0 {
		opts.MinSharedSteps = 0
	}
	cacheSize := opts.CacheSize
	switch {
	case cacheSize == 0:
		cacheSize = 1 << 16
	case cacheSize < 0:
		cacheSize = 0 // engine semantics: 0 = unlimited
	}
	// Service stack, innermost first: backend → CostWrapper (fault
	// injection, shims) → ResilientService → Engine. Retries live
	// below the engine so transient faults never poison a batch, and
	// the engine's cache keeps serving while the breaker is open.
	if opts.CostWrapper != nil {
		svc = opts.CostWrapper(svc)
	}
	var resilient *whatif.ResilientService
	if opts.Resilience != nil {
		resilient = whatif.NewResilientService(svc, *opts.Resilience)
		svc = resilient
	}
	eng := whatif.NewEngine(svc, whatif.Options{
		Workers:      opts.Parallelism,
		Shards:       opts.CacheShards,
		MaxEntries:   cacheSize,
		NoProjection: opts.NoProjection,
	})
	rate := optimizer.DefaultCost.MaintPerEntry
	if opt != nil {
		rate = opt.Cost.MaintPerEntry
	}
	return &Advisor{cat: cat, opt: opt, cost: eng, opts: opts, resilient: resilient,
		maintPerEntry: rate, catVersions: map[string]int64{}}
}

// ensureFreshCosts flushes the what-if cache if any collection the
// workload touches has changed since the cache was populated, so a
// long-lived advisor never serves costs computed from stale statistics.
func (a *Advisor) ensureFreshCosts(w *workload.Workload) error {
	colls := map[string]bool{}
	for _, e := range w.Queries {
		colls[e.Query.Collection] = true
	}
	for _, u := range w.Updates {
		colls[u.Collection] = true
	}
	a.verMu.Lock()
	defer a.verMu.Unlock()
	// Gather every version before committing any, so an error on one
	// collection cannot record a newer version without the flush that
	// must accompany it.
	cur := make(map[string]int64, len(colls))
	for coll := range colls {
		st, err := a.cat.Stats(coll)
		if err != nil {
			return err
		}
		cur[coll] = st.Version
	}
	stale := false
	for coll, v := range cur {
		if prev, ok := a.catVersions[coll]; ok && prev != v {
			stale = true
		}
		a.catVersions[coll] = v
	}
	if stale {
		a.cost.Flush()
	}
	return nil
}

// Optimizer exposes the advisor's optimizer (shared cost model).
func (a *Advisor) Optimizer() *optimizer.Optimizer { return a.opt }

// CostEngine exposes the advisor's what-if evaluation engine (cache and
// evaluation counters).
func (a *Advisor) CostEngine() *whatif.Engine { return a.cost }

// Resilient exposes the costing resilience middleware, or nil when
// Options.Resilience was not set. Health reporting reads its breaker
// state.
func (a *Advisor) Resilient() *whatif.ResilientService { return a.resilient }

// QueryAnalysis is the per-query cost comparison of the recommendation
// analysis screen (paper Figure 5): original cost, cost under the
// recommended configuration, and cost under the overtrained
// configuration of all basic candidates.
type QueryAnalysis struct {
	ID              string
	Text            string
	Weight          float64
	CostNoIndexes   float64
	CostRecommended float64
	CostOvertrained float64
	IndexesUsed     []string
}

// Recommendation is the advisor's output.
type Recommendation struct {
	// Config is the recommended configuration.
	Config []*Candidate
	// DDL holds one CREATE INDEX statement per recommended index.
	DDL []string
	// Names holds the public index name (XIA_IDX<n>) per recommended
	// index, in Config order — the names used in DDL and in
	// PerQuery.IndexesUsed, exposed so API layers never re-derive the
	// naming scheme.
	Names []string
	// TotalPages is the configuration size.
	TotalPages int64
	// QueryBenefit, UpdateCost, NetBenefit summarize the estimated
	// workload improvement.
	QueryBenefit float64
	UpdateCost   float64
	NetBenefit   float64
	// PerQuery is the recommendation analysis (Figure 5).
	PerQuery []QueryAnalysis
	// Basics and DAG expose the candidate space (Figure 4).
	Basics []*Candidate
	DAG    *DAG
	// Gen holds the candidate pipeline's stats for this run:
	// enumerated/generalized/deduped/pruned counts, per-rule counters,
	// and the pipeline wall time.
	Gen candidate.Stats
	// TraceEvents is the structured search trace (typed events with
	// round, action, candidate key, benefit, pages, and cache deltas).
	TraceEvents search.Trace
	// Trace is TraceEvents rendered to text, one line per event.
	Trace []string
	// Search holds the strategy's run stats: rounds, wall time, cache
	// counter deltas, and — for the race portfolio — the winner and
	// per-member stats.
	Search search.Stats
	// Evaluations counts per-query what-if evaluations issued during
	// this run (cache misses only; hits cost nothing).
	Evaluations int
	// Relevance summarizes, per workload query, how many candidates of
	// the whole space can serve the query at all (the engine's
	// projection view): the distribution that determines how much of a
	// configuration each per-query what-if call actually prices.
	Relevance whatif.RelevanceStats
	// Cache holds the what-if engine counter deltas for this run. The
	// deltas are windows over the advisor's shared engine counters:
	// they are accurate when runs on one Advisor do not overlap, and
	// approximate if Recommend/EvaluateOn/AnalyzeConfig run
	// concurrently on the same Advisor (the evaluations themselves
	// remain correct either way).
	Cache whatif.Stats
	// Kernel is the pattern containment kernel's counter delta for this
	// run (interned patterns, contains/overlaps cache hits and misses).
	Kernel pattern.KernelStats
	// Elapsed is the advisor runtime.
	Elapsed time.Duration
	// Degraded marks a best-so-far recommendation: the what-if backend
	// became unavailable mid-run (circuit breaker open) and the anytime
	// contract returned the best fully evaluated configuration instead
	// of failing. DegradedReason says what gave out.
	Degraded       bool
	DegradedReason string
}

// Recommend runs the full index recommendation pipeline on the workload.
func (a *Advisor) Recommend(w *workload.Workload) (*Recommendation, error) {
	return a.RecommendContext(context.Background(), w)
}

// RecommendContext is Recommend with cancellation: the context is
// threaded through every what-if evaluation, so a cancelled or expired
// context aborts the search promptly.
func (a *Advisor) RecommendContext(ctx context.Context, w *workload.Workload) (*Recommendation, error) {
	rec, _, err := a.RecommendFull(ctx, w, a.opts.Search, a.opts.DiskBudgetPages, nil)
	return rec, err
}

// RecommendFull is the one-shot pipeline with per-call strategy and
// budget: Prepare plus one search, with Elapsed and the cache/kernel
// counter windows covering the whole run (candidate generation
// included), unlike Prepared.RecommendWith whose windows cover only the
// search. The Prepared is returned alongside so callers can keep the
// warm space for follow-up searches.
func (a *Advisor) RecommendFull(ctx context.Context, w *workload.Workload, kind SearchKind, budgetPages int64,
	obs func(search.TraceEvent)) (*Recommendation, *Prepared, error) {
	start := time.Now()
	statsBefore := a.cost.Stats()
	kernelBefore := pattern.Stats()
	p, err := a.Prepare(ctx, w)
	if err != nil {
		return nil, nil, err
	}
	rec, err := p.recommend(ctx, kind, budgetPages, obs, start, statsBefore, kernelBefore)
	if err != nil {
		return nil, nil, err
	}
	return rec, p, nil
}

func catalogDDL(name string, c *Candidate) string {
	d := *c.Def
	d.Name = name
	return d.DDL()
}

// EvaluateOn measures the recommended configuration's benefit on another
// workload (the unseen-queries analysis of the demo, Figure 5's "add
// more queries" feature). It returns total weighted cost without
// indexes, with the configuration, and the benefit.
func (a *Advisor) EvaluateOn(w *workload.Workload, config []*Candidate) (noIdx, withIdx float64, err error) {
	defs := make([]*catalog.IndexDef, len(config))
	for i, c := range config {
		defs[i] = c.Def
	}
	return a.EvaluateDefs(context.Background(), w, defs)
}

// EvaluateDefs is EvaluateOn for an arbitrary index-definition
// configuration — the hook the public facade uses to cost
// configurations that arrived as DTOs (possibly from another process).
func (a *Advisor) EvaluateDefs(ctx context.Context, w *workload.Workload, defs []*catalog.IndexDef) (noIdx, withIdx float64, err error) {
	if err := a.ensureFreshCosts(w); err != nil {
		return 0, 0, err
	}
	res, err := a.cost.EvaluateConfig(ctx, w.QueryList(), defs)
	if err != nil {
		return 0, 0, err
	}
	for qi, e := range w.Queries {
		noIdx += e.Weight * res.Queries[qi].CostNoIndexes
		withIdx += e.Weight * res.Queries[qi].Cost
	}
	return noIdx, withIdx, nil
}

// evalWorkload costs an arbitrary workload under a candidate
// configuration through the what-if engine.
func (a *Advisor) evalWorkload(ctx context.Context, w *workload.Workload, config []*Candidate) (*whatif.ConfigEval, error) {
	if err := a.ensureFreshCosts(w); err != nil {
		return nil, err
	}
	defs := make([]*catalog.IndexDef, len(config))
	for i, c := range config {
		defs[i] = c.Def
	}
	return a.cost.EvaluateConfig(ctx, w.QueryList(), defs)
}

// AnalyzeConfig re-runs the per-query analysis for a user-modified
// configuration — the demo's Figure 5 feature of adding/removing indexes
// from the recommendation and seeing the effect on every query.
func (a *Advisor) AnalyzeConfig(w *workload.Workload, config []*Candidate) ([]QueryAnalysis, error) {
	names := map[string]string{}
	for i, c := range config {
		names[c.Def.Name] = fmt.Sprintf("XIA_IDX%d", i+1)
	}
	res, err := a.evalWorkload(context.Background(), w, config)
	if err != nil {
		return nil, err
	}
	var out []QueryAnalysis
	for qi, e := range w.Queries {
		qe := res.Queries[qi]
		qa := QueryAnalysis{
			ID:              e.Query.ID,
			Text:            e.Query.Text,
			Weight:          e.Weight,
			CostNoIndexes:   qe.CostNoIndexes,
			CostRecommended: qe.Cost,
		}
		for _, n := range qe.UsedIndexes {
			qa.IndexesUsed = append(qa.IndexesUsed, names[n])
		}
		sort.Strings(qa.IndexesUsed)
		out = append(out, qa)
	}
	return out, nil
}

// WithoutIndex returns config minus the candidate at index i, for
// what-if removal analysis.
func WithoutIndex(config []*Candidate, i int) []*Candidate {
	if i < 0 || i >= len(config) {
		return config
	}
	out := make([]*Candidate, 0, len(config)-1)
	out = append(out, config[:i]...)
	return append(out, config[i+1:]...)
}

// Materialize creates the recommended indexes as real (physical) indexes
// in the catalog, returning their names — the demo's final "create the
// recommended configuration" step.
func (a *Advisor) Materialize(rec *Recommendation) ([]string, error) {
	var names []string
	for i, c := range rec.Config {
		name := fmt.Sprintf("XIA_IDX%d", i+1)
		if _, err := a.cat.CreateIndex(name, c.Collection, c.Pattern, c.Type); err != nil {
			return names, err
		}
		names = append(names, name)
	}
	return names, nil
}

// Report renders the recommendation as text: configuration, DDL,
// benefits, and the per-query analysis table.
func (rec *Recommendation) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== XML Index Advisor recommendation ===\n")
	fmt.Fprintf(&sb, "candidates: %d basic, %d total (DAG: %d edges, %d roots)\n",
		len(rec.Basics), len(rec.DAG.Nodes), rec.DAG.Edges(), len(rec.DAG.Roots))
	fmt.Fprintf(&sb, "recommended configuration: %d indexes, %d pages\n", len(rec.Config), rec.TotalPages)
	for _, ddl := range rec.DDL {
		fmt.Fprintf(&sb, "  %s\n", ddl)
	}
	fmt.Fprintf(&sb, "estimated query benefit: %.1f   update cost: %.1f   net: %.1f\n",
		rec.QueryBenefit, rec.UpdateCost, rec.NetBenefit)
	fmt.Fprintf(&sb, "\n%-6s %10s %12s %12s  %s\n", "query", "no-index", "recommended", "overtrained", "indexes used")
	for _, qa := range rec.PerQuery {
		fmt.Fprintf(&sb, "%-6s %10.1f %12.1f %12.1f  %s\n",
			qa.ID, qa.CostNoIndexes, qa.CostRecommended, qa.CostOvertrained, strings.Join(qa.IndexesUsed, ","))
	}
	fmt.Fprintf(&sb, "\nadvisor runtime: %v (%d what-if evaluations, %d cache hits)\n",
		rec.Elapsed.Round(time.Millisecond), rec.Evaluations, rec.Cache.Hits)
	return sb.String()
}
