package core

import (
	"encoding/json"
	"time"

	"repro/internal/search"
)

// recommendationJSON is the flat, cycle-free export form of a
// Recommendation (the in-memory DAG links parents and children both
// ways, which encoding/json cannot serialize directly).
type recommendationJSON struct {
	Config       []candidateJSON `json:"config"`
	DDL          []string        `json:"ddl"`
	TotalPages   int64           `json:"totalPages"`
	QueryBenefit float64         `json:"queryBenefit"`
	UpdateCost   float64         `json:"updateCost"`
	NetBenefit   float64         `json:"netBenefit"`
	PerQuery     []QueryAnalysis `json:"perQuery"`
	DAG          dagJSON         `json:"dag"`
	// TraceEvents is the canonical trace export; the rendered text
	// lines of Recommendation.Trace are a pure function of it and are
	// not duplicated here.
	TraceEvents search.Trace `json:"traceEvents,omitempty"`
	Search      search.Stats `json:"search"`
	Evaluations int          `json:"evaluations"`
	ElapsedMS   int64        `json:"elapsedMs"`
}

type candidateJSON struct {
	ID         int    `json:"id"`
	Collection string `json:"collection"`
	Pattern    string `json:"pattern"`
	Type       string `json:"type"`
	Basic      bool   `json:"basic"`
	Pages      int64  `json:"pages"`
	Entries    int64  `json:"entries"`
	FromQuery  []int  `json:"fromQueries,omitempty"`
}

type dagJSON struct {
	Nodes []candidateJSON `json:"nodes"`
	// Edges are (parent ID, child ID) pairs.
	Edges [][2]int `json:"edges"`
	Roots []int    `json:"roots"`
}

func candJSON(c *Candidate) candidateJSON {
	return candidateJSON{
		ID:         c.ID,
		Collection: c.Collection,
		Pattern:    c.Pattern.String(),
		Type:       c.Type.Short(),
		Basic:      c.Basic,
		Pages:      c.Pages(),
		Entries:    c.Def.EstEntries,
		FromQuery:  c.FromQueries,
	}
}

// MarshalJSON exports the recommendation as a flat JSON document with the
// DAG as node/edge lists, suitable for external tooling (the demo GUI's
// data model).
func (rec *Recommendation) MarshalJSON() ([]byte, error) {
	out := recommendationJSON{
		DDL:          rec.DDL,
		TotalPages:   rec.TotalPages,
		QueryBenefit: rec.QueryBenefit,
		UpdateCost:   rec.UpdateCost,
		NetBenefit:   rec.NetBenefit,
		PerQuery:     rec.PerQuery,
		TraceEvents:  rec.TraceEvents,
		Search:       rec.Search,
		Evaluations:  rec.Evaluations,
		ElapsedMS:    int64(rec.Elapsed / time.Millisecond),
	}
	for _, c := range rec.Config {
		out.Config = append(out.Config, candJSON(c))
	}
	if rec.DAG != nil {
		for _, n := range rec.DAG.Nodes {
			out.DAG.Nodes = append(out.DAG.Nodes, candJSON(n))
			for _, ch := range n.Children {
				out.DAG.Edges = append(out.DAG.Edges, [2]int{n.ID, ch.ID})
			}
		}
		for _, r := range rec.DAG.Roots {
			out.DAG.Roots = append(out.DAG.Roots, r.ID)
		}
	}
	return json.Marshal(out)
}
