package core

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/sqltype"
	"repro/internal/workload"
	"repro/internal/xmldoc"
)

// referenceUpdateCost recomputes a configuration's maintenance cost from
// first principles — uncached pattern.Overlaps, per-call Compile — as
// the oracle for the kernel-backed updateCost path (OverlapsCached,
// interned matchers, memoized entry counts).
func referenceUpdateCost(t *testing.T, a *Advisor, w *workload.Workload, cfg []*Candidate) float64 {
	t.Helper()
	var total float64
	for _, u := range w.Updates {
		for _, c := range cfg {
			if c.Collection != u.Collection {
				continue
			}
			switch u.Kind {
			case workload.UpdateInsert:
				d, err := xmldoc.ParseString(u.DocXML)
				if err != nil {
					t.Fatal(err)
				}
				m := pattern.Compile(c.Pattern)
				entries := 0
				d.Walk(func(nd *xmldoc.Node) bool {
					var raw string
					switch nd.Kind {
					case xmldoc.KindElement:
						raw = nd.Text()
					default:
						raw = nd.Value
					}
					if m.MatchPath(nd.RootPath()) {
						if _, ok := sqltype.Cast(c.Type, raw); ok {
							entries++
						}
					}
					return true
				})
				total += u.Weight * float64(entries) * a.maintPerEntry
			case workload.UpdateDelete:
				st, err := a.cat.Stats(u.Collection)
				if err != nil || st.Docs == 0 {
					continue
				}
				perDoc := float64(c.Def.EstEntries) / float64(st.Docs)
				if u.Path != nil && !pattern.Overlaps(docScope(u.Path.LinearPattern()), docScope(c.Pattern)) {
					continue
				}
				total += u.Weight * perDoc * a.maintPerEntry
			}
		}
	}
	return total
}

// TestUpdateBenefitUnchangedByKernelCache checks the kernel-cached
// update-cost path (OverlapsCached through the containment kernel)
// produces exactly the same maintenance charges as the uncached
// reference, on a workload with both inserts and path-scoped deletes.
func TestUpdateBenefitUnchangedByKernelCache(t *testing.T) {
	cat := xmarkFixture(t, 200)
	w := datagen.XMarkWorkload(8, 3)
	datagen.XMarkUpdates(w, 300, 3)
	// A delete whose path shares no document root with any candidate
	// exercises the non-overlapping branch too.
	if err := w.AddDelete(50, "auction", "/other_root/thing"); err != nil {
		t.Fatal(err)
	}

	a := New(cat, DefaultOptions())
	rec, err := a.Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	if rec.UpdateCost <= 0 {
		t.Fatal("workload with updates charged no maintenance cost")
	}
	want := referenceUpdateCost(t, a, w, rec.Config)
	if math.Abs(rec.UpdateCost-want) > 1e-9*math.Max(1, want) {
		t.Fatalf("update cost through kernel cache = %v, reference = %v", rec.UpdateCost, want)
	}

	// A second advisor over the now-warm process-wide kernel must charge
	// identical costs (cached Overlaps results replay correctly).
	rec2, err := New(cat, DefaultOptions()).Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.UpdateCost != rec.UpdateCost {
		t.Fatalf("update cost changed on warm kernel: %v vs %v", rec2.UpdateCost, rec.UpdateCost)
	}
}
