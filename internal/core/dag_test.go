package core

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/workload"
)

func recommendWith(t *testing.T, opts Options, w *workload.Workload) *Recommendation {
	t.Helper()
	cat := xmarkFixture(t, 150)
	a := New(cat, opts)
	rec, err := a.Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestDAGEdgesAreContainments(t *testing.T) {
	rec := recommendWith(t, DefaultOptions(), datagen.XMarkWorkload(10, 2))
	for _, c := range rec.DAG.Nodes {
		for _, ch := range c.Children {
			if !pattern.Contains(c.Pattern, ch.Pattern) {
				t.Errorf("edge %s -> %s is not a containment", c.Pattern, ch.Pattern)
			}
			if pattern.Contains(ch.Pattern, c.Pattern) {
				t.Errorf("edge %s -> %s is not proper", c.Pattern, ch.Pattern)
			}
			if c.Type != ch.Type || c.Collection != ch.Collection {
				t.Errorf("edge %s -> %s crosses strata", c, ch)
			}
		}
	}
}

func TestDAGTransitiveReduction(t *testing.T) {
	rec := recommendWith(t, DefaultOptions(), datagen.XMarkPaperWorkload())
	// No edge may have a two-hop witness.
	for _, p := range rec.DAG.Nodes {
		direct := map[int]bool{}
		for _, ch := range p.Children {
			direct[ch.ID] = true
		}
		for _, mid := range p.Children {
			for _, gc := range mid.Children {
				if direct[gc.ID] {
					t.Errorf("transitive edge kept: %s -> %s -> %s", p.Pattern, mid.Pattern, gc.Pattern)
				}
			}
		}
	}
}

func TestDAGRootsHaveNoParents(t *testing.T) {
	rec := recommendWith(t, DefaultOptions(), datagen.XMarkWorkload(8, 3))
	rootSet := map[int]bool{}
	for _, r := range rec.DAG.Roots {
		rootSet[r.ID] = true
		if len(r.Parents) != 0 {
			t.Errorf("root %s has parents", r)
		}
	}
	for _, n := range rec.DAG.Nodes {
		if len(n.Parents) == 0 && !rootSet[n.ID] {
			t.Errorf("parentless node %s missing from roots", n)
		}
	}
}

func TestCoversBitmapMatchesContainment(t *testing.T) {
	rec := recommendWith(t, DefaultOptions(), datagen.XMarkPaperWorkload())
	// Rebuild the basic index ordering used by generalize().
	var basics []*Candidate
	for _, c := range rec.DAG.Nodes {
		if c.Basic {
			basics = append(basics, c)
		}
	}
	for _, c := range rec.DAG.Nodes {
		for bi, b := range basics {
			want := b.Collection == c.Collection && b.Type == c.Type &&
				pattern.Contains(c.Pattern, b.Pattern)
			if got := c.Covers().Get(bi); got != want {
				t.Errorf("covers(%s, %s) = %v, want %v", c.Pattern, b.Pattern, got, want)
			}
		}
	}
}

func TestIncludeUniversalAddsRoots(t *testing.T) {
	opts := DefaultOptions()
	opts.IncludeUniversal = true
	rec := recommendWith(t, opts, datagen.XMarkPaperWorkload())
	var sawUniversal bool
	for _, r := range rec.DAG.Roots {
		if r.Pattern.Universal() {
			sawUniversal = true
		}
	}
	if !sawUniversal {
		t.Error("IncludeUniversal did not add //* roots")
	}
	// //* must contain every same-type element candidate, so no other
	// element-pattern node of that type may be a root.
	for _, r := range rec.DAG.Roots {
		if r.Pattern.Universal() {
			continue
		}
		if r.Pattern.Last().Kind == pattern.TestElem {
			for _, u := range rec.DAG.Roots {
				if u.Pattern.Universal() && u.Type == r.Type && u.Collection == r.Collection &&
					u.Pattern.Last().Kind == pattern.TestElem {
					t.Errorf("node %s should hang below //*", r)
				}
			}
		}
	}
}

func TestRelaxAxesAddsDescendantCandidates(t *testing.T) {
	opts := DefaultOptions()
	opts.RelaxAxes = true
	rec := recommendWith(t, opts, datagen.XMarkPaperWorkload())
	found := false
	for _, c := range rec.DAG.Nodes {
		if c.Pattern.DescendantCount() > 0 && c.Pattern.Len() > 1 {
			found = true
		}
	}
	if !found {
		t.Error("RelaxAxes produced no multi-step descendant candidates")
	}
}

func TestGeneralizationCap(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxCandidates = 10
	rec := recommendWith(t, opts, datagen.XMarkWorkload(15, 4))
	if len(rec.DAG.Nodes) > 10+len(rec.Basics) {
		t.Errorf("candidate cap ignored: %d nodes", len(rec.DAG.Nodes))
	}
}

func TestMinSharedStepsBlocksUnrelatedLUB(t *testing.T) {
	opts := DefaultOptions()
	opts.MinSharedSteps = 3
	cat := xmarkFixture(t, 100)
	a := New(cat, opts)
	w := &workload.Workload{}
	// Same shape, nothing but the root shared: LUB would be /site/*/*/*.
	w.MustAddQuery(1, `for $i in collection("auction")/site/regions/namerica/item where $i/quantity > 1 return $i`)
	w.MustAddQuery(1, `for $p in collection("auction")/site/people/person where $p/profile/@income > 1 return $p`)
	rec, err := a.Recommend(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rec.DAG.Nodes {
		if c.Pattern.String() == "/site/*/*" {
			t.Errorf("unrelated patterns generalized despite MinSharedSteps: %s", c)
		}
	}
}

func TestRecommendationCarriesPipelineStats(t *testing.T) {
	rec := recommendWith(t, DefaultOptions(), datagen.XMarkPaperWorkload())
	if rec.Gen.Source != "optimizer" {
		t.Errorf("pipeline source = %q", rec.Gen.Source)
	}
	if rec.Gen.Basic != len(rec.Basics) {
		t.Errorf("stats basic %d != %d basics", rec.Gen.Basic, len(rec.Basics))
	}
	if rec.Gen.Enumerated < rec.Gen.Basic {
		t.Errorf("enumerated %d < basic %d", rec.Gen.Enumerated, rec.Gen.Basic)
	}
	if rec.Gen.Generalized != len(rec.DAG.Nodes)-len(rec.Basics) {
		t.Errorf("stats generalized %d != %d DAG extras",
			rec.Gen.Generalized, len(rec.DAG.Nodes)-len(rec.Basics))
	}
	var lub bool
	for _, r := range rec.Gen.Rules {
		if r.Name == "lub" && r.Applied > 0 {
			lub = true
		}
	}
	if !lub {
		t.Errorf("no lub applications recorded: %+v", rec.Gen.Rules)
	}
}
