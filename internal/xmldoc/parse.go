package xmldoc

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError describes a syntax error with its byte offset in the input.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xml parse error at offset %d: %s", e.Offset, e.Msg)
}

// Parse parses an XML document from src. The parser handles elements,
// attributes (single or double quoted), character data, entity references
// (the five predefined entities plus numeric character references), CDATA
// sections, comments, processing instructions, and a leading XML
// declaration / DOCTYPE (all but elements/attributes/text are discarded).
// Namespaces are not interpreted; prefixed names are kept verbatim.
//
// Whitespace-only text between elements is dropped, matching how data-
// centric XML stores (and the DB2 XML index machinery the paper relies on)
// treat ignorable whitespace.
func Parse(src []byte) (*Document, error) {
	p := &parser{src: src}
	root, err := p.parseDocument()
	if err != nil {
		return nil, err
	}
	doc := &Document{Root: root}
	doc.Renumber()
	return doc, nil
}

// ParseString is Parse on a string.
func ParseString(src string) (*Document, error) {
	return Parse([]byte(src))
}

// MustParse parses src and panics on error. For tests and generators whose
// input is known-good.
func MustParse(src string) *Document {
	d, err := ParseString(src)
	if err != nil {
		panic(err)
	}
	return d
}

type parser struct {
	src []byte
	pos int
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) skipSpace() {
	for !p.eof() {
		switch p.src[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

// skipUntil advances past the first occurrence of marker, returning an
// error if it is never found.
func (p *parser) skipUntil(marker string) error {
	idx := strings.Index(string(p.src[p.pos:]), marker)
	if idx < 0 {
		return p.errf("unterminated construct: missing %q", marker)
	}
	p.pos += idx + len(marker)
	return nil
}

func (p *parser) parseDocument() (*Node, error) {
	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errf("no root element")
		}
		if p.peek() != '<' {
			return nil, p.errf("unexpected character %q before root element", p.peek())
		}
		if p.pos+1 < len(p.src) {
			switch p.src[p.pos+1] {
			case '?':
				if err := p.skipUntil("?>"); err != nil {
					return nil, err
				}
				continue
			case '!':
				if strings.HasPrefix(string(p.src[p.pos:]), "<!--") {
					if err := p.skipUntil("-->"); err != nil {
						return nil, err
					}
					continue
				}
				// DOCTYPE: skip to matching '>'. Internal subsets with
				// nested brackets are handled by depth counting.
				if err := p.skipDoctype(); err != nil {
					return nil, err
				}
				continue
			}
		}
		break
	}
	root, err := p.parseElement()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	for !p.eof() {
		// Trailing comments / PIs are permitted.
		if strings.HasPrefix(string(p.src[p.pos:]), "<!--") {
			if err := p.skipUntil("-->"); err != nil {
				return nil, err
			}
		} else if strings.HasPrefix(string(p.src[p.pos:]), "<?") {
			if err := p.skipUntil("?>"); err != nil {
				return nil, err
			}
		} else {
			return nil, p.errf("content after root element")
		}
		p.skipSpace()
	}
	return root, nil
}

func (p *parser) skipDoctype() error {
	depth := 0
	for ; p.pos < len(p.src); p.pos++ {
		switch p.src[p.pos] {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				p.pos++
				return nil
			}
		}
	}
	return p.errf("unterminated DOCTYPE")
}

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	if p.eof() || !isNameStart(p.src[p.pos]) {
		return "", p.errf("expected name")
	}
	p.pos++
	for !p.eof() && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	return string(p.src[start:p.pos]), nil
}

// parseElement parses one element starting at '<'.
func (p *parser) parseElement() (*Node, error) {
	if p.peek() != '<' {
		return nil, p.errf("expected '<'")
	}
	p.pos++
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	el := NewElement(name)
	// Attributes.
	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errf("unterminated start tag <%s", name)
		}
		c := p.peek()
		if c == '/' {
			p.pos++
			if p.peek() != '>' {
				return nil, p.errf("expected '>' after '/' in tag <%s", name)
			}
			p.pos++
			return el, nil // self-closing
		}
		if c == '>' {
			p.pos++
			break
		}
		aname, err := p.parseName()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != '=' {
			return nil, p.errf("expected '=' after attribute %q", aname)
		}
		p.pos++
		p.skipSpace()
		q := p.peek()
		if q != '"' && q != '\'' {
			return nil, p.errf("expected quoted value for attribute %q", aname)
		}
		p.pos++
		vstart := p.pos
		for !p.eof() && p.src[p.pos] != q {
			p.pos++
		}
		if p.eof() {
			return nil, p.errf("unterminated attribute value for %q", aname)
		}
		val, err := decodeEntities(string(p.src[vstart:p.pos]), p.pos)
		if err != nil {
			return nil, err
		}
		p.pos++ // closing quote
		el.SetAttr(aname, val)
	}
	// Content.
	for {
		if p.eof() {
			return nil, p.errf("unterminated element <%s>", name)
		}
		if p.peek() == '<' {
			rest := string(p.src[p.pos:])
			switch {
			case strings.HasPrefix(rest, "</"):
				p.pos += 2
				ename, err := p.parseName()
				if err != nil {
					return nil, err
				}
				if ename != name {
					return nil, p.errf("mismatched end tag </%s>, expected </%s>", ename, name)
				}
				p.skipSpace()
				if p.peek() != '>' {
					return nil, p.errf("expected '>' in end tag </%s", ename)
				}
				p.pos++
				return el, nil
			case strings.HasPrefix(rest, "<!--"):
				if err := p.skipUntil("-->"); err != nil {
					return nil, err
				}
			case strings.HasPrefix(rest, "<![CDATA["):
				p.pos += len("<![CDATA[")
				idx := strings.Index(string(p.src[p.pos:]), "]]>")
				if idx < 0 {
					return nil, p.errf("unterminated CDATA section")
				}
				text := string(p.src[p.pos : p.pos+idx])
				p.pos += idx + len("]]>")
				if text != "" {
					el.AppendChild(NewText(text))
				}
			case strings.HasPrefix(rest, "<?"):
				if err := p.skipUntil("?>"); err != nil {
					return nil, err
				}
			default:
				child, err := p.parseElement()
				if err != nil {
					return nil, err
				}
				el.AppendChild(child)
			}
			continue
		}
		// Character data up to the next '<'.
		start := p.pos
		for !p.eof() && p.src[p.pos] != '<' {
			p.pos++
		}
		raw := string(p.src[start:p.pos])
		text, err := decodeEntities(raw, start)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(text) != "" {
			el.AppendChild(NewText(text))
		}
	}
}

// decodeEntities expands the predefined XML entities and numeric character
// references in s. offset is used only for error positions.
func decodeEntities(s string, offset int) (string, error) {
	if !strings.ContainsRune(s, '&') {
		return s, nil
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			sb.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 {
			return "", &ParseError{Offset: offset + i, Msg: "unterminated entity reference"}
		}
		ent := s[i+1 : i+semi]
		switch ent {
		case "amp":
			sb.WriteByte('&')
		case "lt":
			sb.WriteByte('<')
		case "gt":
			sb.WriteByte('>')
		case "quot":
			sb.WriteByte('"')
		case "apos":
			sb.WriteByte('\'')
		default:
			if strings.HasPrefix(ent, "#") {
				numStr := ent[1:]
				base := 10
				if strings.HasPrefix(numStr, "x") || strings.HasPrefix(numStr, "X") {
					numStr = numStr[1:]
					base = 16
				}
				n, err := strconv.ParseInt(numStr, base, 32)
				if err != nil || n < 0 {
					return "", &ParseError{Offset: offset + i, Msg: fmt.Sprintf("bad character reference &%s;", ent)}
				}
				sb.WriteRune(rune(n))
			} else {
				return "", &ParseError{Offset: offset + i, Msg: fmt.Sprintf("unknown entity &%s;", ent)}
			}
		}
		i += semi + 1
	}
	return sb.String(), nil
}

// EscapeText escapes character data for serialization.
func EscapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes an attribute value for serialization (double-quoted).
func EscapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Serialize renders the document as XML text without extra whitespace.
func (d *Document) Serialize() string {
	var sb strings.Builder
	if d.Root != nil {
		serializeNode(&sb, d.Root)
	}
	return sb.String()
}

func serializeNode(sb *strings.Builder, n *Node) {
	switch n.Kind {
	case KindText:
		sb.WriteString(EscapeText(n.Value))
	case KindElement:
		sb.WriteByte('<')
		sb.WriteString(n.Name)
		for _, a := range n.Attrs {
			sb.WriteByte(' ')
			sb.WriteString(a.Name)
			sb.WriteString(`="`)
			sb.WriteString(EscapeAttr(a.Value))
			sb.WriteByte('"')
		}
		if len(n.Children) == 0 {
			sb.WriteString("/>")
			return
		}
		sb.WriteByte('>')
		for _, c := range n.Children {
			serializeNode(sb, c)
		}
		sb.WriteString("</")
		sb.WriteString(n.Name)
		sb.WriteByte('>')
	}
}
