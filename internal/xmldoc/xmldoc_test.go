package xmldoc

import (
	"encoding/xml"
	"strings"
	"testing"
	"testing/quick"
)

const sampleDoc = `<?xml version="1.0" encoding="UTF-8"?>
<!DOCTYPE site [ <!ELEMENT site ANY> ]>
<site>
  <!-- a comment -->
  <regions>
    <namerica>
      <item id="i1" featured="yes">
        <name>Fast bicycle</name>
        <quantity>5</quantity>
        <price>120.50</price>
      </item>
      <item id="i2">
        <name>Slow &amp; steady tortoise</name>
        <quantity>1</quantity>
      </item>
    </namerica>
    <africa>
      <item id="i3">
        <name>Carved mask</name>
        <quantity>12</quantity>
      </item>
    </africa>
  </regions>
  <people>
    <person id="p1">
      <name>Alice</name>
      <emailaddress>alice@example.com</emailaddress>
    </person>
  </people>
</site>`

func TestParseSample(t *testing.T) {
	doc, err := ParseString(sampleDoc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if doc.Root == nil || doc.Root.Name != "site" {
		t.Fatalf("root = %+v, want site", doc.Root)
	}
	regions := doc.Root.ChildElement("regions")
	if regions == nil {
		t.Fatal("missing regions")
	}
	na := regions.ChildElement("namerica")
	if na == nil {
		t.Fatal("missing namerica")
	}
	items := na.ChildElements()
	if len(items) != 2 {
		t.Fatalf("namerica items = %d, want 2", len(items))
	}
	if got, _ := items[0].Attr("id"); got != "i1" {
		t.Errorf("item[0]/@id = %q, want i1", got)
	}
	if got := items[0].ChildElement("quantity").Text(); got != "5" {
		t.Errorf("quantity = %q, want 5", got)
	}
	if got := items[1].ChildElement("name").Text(); got != "Slow & steady tortoise" {
		t.Errorf("entity decoding: got %q", got)
	}
}

func TestNodeIDsAreDensePreorder(t *testing.T) {
	doc := MustParse(sampleDoc)
	for i, n := range doc.Nodes {
		if int(n.ID) != i {
			t.Fatalf("Nodes[%d].ID = %d", i, n.ID)
		}
		if doc.Node(n.ID) != n {
			t.Fatalf("Node(%d) roundtrip failed", n.ID)
		}
	}
	if doc.Node(-1) != nil || doc.Node(NodeID(len(doc.Nodes))) != nil {
		t.Error("out-of-range Node() should return nil")
	}
	if doc.Root.ID != 0 {
		t.Errorf("root ID = %d, want 0", doc.Root.ID)
	}
}

func TestRootPath(t *testing.T) {
	doc := MustParse(sampleDoc)
	var gotQuantity, gotAttr, gotText string
	doc.Walk(func(n *Node) bool {
		switch {
		case n.Kind == KindElement && n.Name == "quantity" && gotQuantity == "":
			gotQuantity = n.RootPath()
		case n.Kind == KindAttribute && n.Name == "id" && gotAttr == "":
			gotAttr = n.RootPath()
		case n.Kind == KindText && strings.Contains(n.Value, "Fast") && gotText == "":
			gotText = n.RootPath()
		}
		return true
	})
	if want := "/site/regions/namerica/item/quantity"; gotQuantity != want {
		t.Errorf("quantity path = %q, want %q", gotQuantity, want)
	}
	if want := "/site/regions/namerica/item/@id"; gotAttr != want {
		t.Errorf("attr path = %q, want %q", gotAttr, want)
	}
	if want := "/site/regions/namerica/item/name/text()"; gotText != want {
		t.Errorf("text path = %q, want %q", gotText, want)
	}
}

func TestWalkSkipsSubtree(t *testing.T) {
	doc := MustParse(sampleDoc)
	visited := 0
	doc.Walk(func(n *Node) bool {
		visited++
		return !(n.Kind == KindElement && n.Name == "regions")
	})
	// regions subtree skipped: only site, regions, people subtree, attrs.
	all := 0
	doc.Walk(func(n *Node) bool { all++; return true })
	if visited >= all {
		t.Errorf("skip did not prune: visited=%d all=%d", visited, all)
	}
}

func TestTextConcatenation(t *testing.T) {
	doc := MustParse(`<a>one<b>two</b>three</a>`)
	if got := doc.Root.Text(); got != "onetwothree" {
		t.Errorf("Text() = %q, want onetwothree", got)
	}
}

func TestSelfClosingAndCDATA(t *testing.T) {
	doc := MustParse(`<a><b/><c><![CDATA[x < y & z]]></c></a>`)
	b := doc.Root.ChildElement("b")
	if b == nil || len(b.Children) != 0 {
		t.Fatal("self-closing element broken")
	}
	if got := doc.Root.ChildElement("c").Text(); got != "x < y & z" {
		t.Errorf("CDATA = %q", got)
	}
}

func TestNumericEntities(t *testing.T) {
	doc := MustParse(`<a v="&#65;&#x42;">&#67;</a>`)
	if got, _ := doc.Root.Attr("v"); got != "AB" {
		t.Errorf("attr = %q, want AB", got)
	}
	if got := doc.Root.Text(); got != "C" {
		t.Errorf("text = %q, want C", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no root", "   "},
		{"mismatched tags", "<a><b></a></b>"},
		{"unterminated", "<a><b>"},
		{"content after root", "<a/><b/>"},
		{"bad entity", "<a>&nosuch;</a>"},
		{"unterminated entity", "<a>&amp</a>"},
		{"garbage before root", "hello<a/>"},
		{"unterminated attr", `<a v="x>`},
		{"missing attr value", `<a v></a>`},
		{"unterminated comment", `<a><!-- foo</a>`},
		{"unterminated cdata", `<a><![CDATA[x</a>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.src); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestParseErrorMessageHasOffset(t *testing.T) {
	_, err := ParseString("<a><b></c></a>")
	if err == nil {
		t.Fatal("want error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Offset <= 0 || !strings.Contains(pe.Error(), "offset") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// TestSerializeRoundTrip checks Parse(Serialize(d)) preserves structure.
func TestSerializeRoundTrip(t *testing.T) {
	doc := MustParse(sampleDoc)
	out := doc.Serialize()
	doc2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v\nserialized: %s", err, out)
	}
	if !equalTree(doc.Root, doc2.Root) {
		t.Errorf("round trip changed tree:\n%s\nvs\n%s", out, doc2.Serialize())
	}
}

func equalTree(a, b *Node) bool {
	if a.Kind != b.Kind || a.Name != b.Name || a.Value != b.Value {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i].Name != b.Attrs[i].Name || a.Attrs[i].Value != b.Attrs[i].Value {
			return false
		}
	}
	for i := range a.Children {
		if !equalTree(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// TestAgainstEncodingXML cross-checks our parser against the stdlib
// tokenizer on the sample document: same element sequence in document
// order.
func TestAgainstEncodingXML(t *testing.T) {
	doc := MustParse(sampleDoc)
	var ours []string
	doc.Walk(func(n *Node) bool {
		if n.Kind == KindElement {
			ours = append(ours, n.Name)
		}
		return true
	})

	dec := xml.NewDecoder(strings.NewReader(sampleDoc))
	var theirs []string
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		if se, ok := tok.(xml.StartElement); ok {
			theirs = append(theirs, se.Name.Local)
		}
	}
	if strings.Join(ours, ",") != strings.Join(theirs, ",") {
		t.Errorf("element order mismatch:\nours:   %v\nstdlib: %v", ours, theirs)
	}
}

func TestEscapeRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		if !utf8Valid(s) {
			return true
		}
		doc := &Document{Root: NewElement("r")}
		doc.Root.SetAttr("a", s)
		doc.Root.AppendChild(NewText(s))
		doc.Renumber()
		re, err := ParseString(doc.Serialize())
		if err != nil {
			return false
		}
		got, _ := re.Root.Attr("a")
		if got != s {
			return false
		}
		// Whitespace-only text is dropped by design.
		if strings.TrimSpace(s) == "" {
			return len(re.Root.Children) == 0
		}
		return re.Root.Text() == s
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func utf8Valid(s string) bool {
	for _, r := range s {
		if r == 0xFFFD {
			return false
		}
		// Control characters other than \t\n\r are not legal XML chars.
		if r < 0x20 && r != '\t' && r != '\n' && r != '\r' {
			return false
		}
	}
	return true
}

func TestRenumberHandBuiltTree(t *testing.T) {
	root := NewElement("site")
	item := NewElement("item")
	item.SetAttr("id", "1")
	item.AppendChild(Elem("name", "thing"))
	root.AppendChild(item)
	doc := &Document{Root: root}
	doc.Renumber()
	if doc.NodeCount() != 5 { // site, item, @id, name, text
		t.Fatalf("NodeCount = %d, want 5", doc.NodeCount())
	}
	if doc.ElementCount() != 3 {
		t.Fatalf("ElementCount = %d, want 3", doc.ElementCount())
	}
	// Parents must be wired.
	if item.Parent != root || item.Attrs[0].Parent != item {
		t.Error("Renumber did not set parents")
	}
}

func TestAttrHelpers(t *testing.T) {
	doc := MustParse(`<a x="1" y="2"/>`)
	if v, ok := doc.Root.Attr("y"); !ok || v != "2" {
		t.Errorf("Attr(y) = %q,%v", v, ok)
	}
	if _, ok := doc.Root.Attr("z"); ok {
		t.Error("Attr(z) should be missing")
	}
	if n := doc.Root.AttrNode("x"); n == nil || n.Value != "1" {
		t.Error("AttrNode(x) broken")
	}
	if n := doc.Root.AttrNode("z"); n != nil {
		t.Error("AttrNode(z) should be nil")
	}
}

func TestDepth(t *testing.T) {
	doc := MustParse(`<a><b><c/></b></a>`)
	c := doc.Root.ChildElement("b").ChildElement("c")
	if c.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", c.Depth())
	}
	if doc.Root.Depth() != 0 {
		t.Errorf("root Depth = %d, want 0", doc.Root.Depth())
	}
}

func BenchmarkParseSample(b *testing.B) {
	src := []byte(sampleDoc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
