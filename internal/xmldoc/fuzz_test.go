package xmldoc

import "testing"

// FuzzParse checks that the parser never panics, and that any input it
// accepts survives a serialize/reparse round trip unchanged.
func FuzzParse(f *testing.F) {
	seeds := []string{
		sampleDoc,
		`<a/>`,
		`<a b="c">text</a>`,
		`<a><![CDATA[x<y]]></a>`,
		`<a>&amp;&#65;</a>`,
		`<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a ANY>]><a><!-- c --></a>`,
		`<a><b/><b></b></a>`,
		`<broken`,
		`<a>&nosuch;</a>`,
		`<a x='1' x="2"/>`,
		"<\x00a/>",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Parse(data)
		if err != nil {
			return
		}
		out := doc.Serialize()
		doc2, err := ParseString(out)
		if err != nil {
			t.Fatalf("reparse of serialized output failed: %v\ninput: %q\nserialized: %q", err, data, out)
		}
		if !equalTree(doc.Root, doc2.Root) {
			t.Fatalf("round trip changed tree\ninput: %q", data)
		}
	})
}
