// Package xmldoc defines the XML document model used throughout the
// advisor: a parsed node tree with stable pre-order node IDs, a hand-rolled
// parser, and a serializer. It is the storage representation that the
// store, statistics collector, index builder, and XPath evaluator all
// operate on.
//
// The model deliberately covers the XML subset that matters for XML value
// indexing in the style of DB2 pureXML: elements, attributes, and text
// content. Processing instructions, comments, namespaces, and DTDs are
// parsed but discarded.
package xmldoc

import (
	"fmt"
	"strings"
)

// NodeKind identifies the kind of a node in the document tree.
type NodeKind uint8

const (
	// KindElement is an XML element node.
	KindElement NodeKind = iota
	// KindAttribute is an attribute attached to an element.
	KindAttribute
	// KindText is a text node (character data under an element).
	KindText
)

// String returns a human-readable kind name.
func (k NodeKind) String() string {
	switch k {
	case KindElement:
		return "element"
	case KindAttribute:
		return "attribute"
	case KindText:
		return "text"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// NodeID is the identifier of a node within a single document. IDs are
// assigned in document (pre-order) position, starting at 0 for the root
// element. Attribute nodes receive IDs too, immediately after their owner
// element. NodeIDs are dense: Document.Nodes[id] is the node with that ID.
type NodeID int32

// Node is a single node in a parsed XML document.
//
// For element nodes, Name is the tag and Value is empty. For attribute
// nodes, Name is the attribute name and Value its value. For text nodes,
// Name is empty and Value is the character data.
type Node struct {
	ID       NodeID
	Kind     NodeKind
	Name     string
	Value    string
	Parent   *Node
	Children []*Node // element and text children, in document order
	Attrs    []*Node // attribute nodes, in document order
}

// IsElement reports whether the node is an element.
func (n *Node) IsElement() bool { return n.Kind == KindElement }

// IsAttr reports whether the node is an attribute.
func (n *Node) IsAttr() bool { return n.Kind == KindAttribute }

// IsText reports whether the node is a text node.
func (n *Node) IsText() bool { return n.Kind == KindText }

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrNode returns the attribute node with the given name, or nil.
func (n *Node) AttrNode(name string) *Node {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Text returns the concatenated text content of the node. For text and
// attribute nodes this is Value; for elements it is the concatenation of
// all descendant text nodes in document order.
func (n *Node) Text() string {
	switch n.Kind {
	case KindText, KindAttribute:
		return n.Value
	}
	var sb strings.Builder
	n.appendText(&sb)
	return sb.String()
}

func (n *Node) appendText(sb *strings.Builder) {
	for _, c := range n.Children {
		switch c.Kind {
		case KindText:
			sb.WriteString(c.Value)
		case KindElement:
			c.appendText(sb)
		}
	}
}

// ChildElements returns the element children of n, in document order.
func (n *Node) ChildElements() []*Node {
	out := make([]*Node, 0, len(n.Children))
	for _, c := range n.Children {
		if c.Kind == KindElement {
			out = append(out, c)
		}
	}
	return out
}

// ChildElement returns the first child element with the given name, or nil.
func (n *Node) ChildElement(name string) *Node {
	for _, c := range n.Children {
		if c.Kind == KindElement && c.Name == name {
			return c
		}
	}
	return nil
}

// Depth returns the number of ancestors of n (the document root element has
// depth 0).
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// PathSteps returns the labels from the document root element down to n,
// inclusive. Attribute nodes contribute "@name"; text nodes contribute
// "text()".
func (n *Node) PathSteps() []string {
	var rev []string
	for cur := n; cur != nil; cur = cur.Parent {
		switch cur.Kind {
		case KindElement:
			rev = append(rev, cur.Name)
		case KindAttribute:
			rev = append(rev, "@"+cur.Name)
		case KindText:
			rev = append(rev, "text()")
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// RootPath returns the concrete rooted path of n, e.g. "/site/regions/item"
// or "/site/item/@id". This is the key used by the statistics tables.
func (n *Node) RootPath() string {
	steps := n.PathSteps()
	var sb strings.Builder
	for _, s := range steps {
		sb.WriteByte('/')
		sb.WriteString(s)
	}
	return sb.String()
}

// DocID identifies a document within a store collection.
type DocID int64

// Document is a parsed XML document. Nodes holds every node in pre-order;
// Nodes[i].ID == NodeID(i).
type Document struct {
	ID    DocID
	Name  string
	Root  *Node
	Nodes []*Node
}

// Node returns the node with the given ID, or nil if out of range.
func (d *Document) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(d.Nodes) {
		return nil
	}
	return d.Nodes[id]
}

// NodeCount returns the total number of nodes (elements, attributes, text).
func (d *Document) NodeCount() int { return len(d.Nodes) }

// ElementCount returns the number of element nodes.
func (d *Document) ElementCount() int {
	n := 0
	for _, nd := range d.Nodes {
		if nd.Kind == KindElement {
			n++
		}
	}
	return n
}

// Walk visits every node of the document in pre-order, calling fn. If fn
// returns false for an element, that element's attributes and subtree are
// skipped.
func (d *Document) Walk(fn func(*Node) bool) {
	if d.Root != nil {
		walk(d.Root, fn)
	}
}

func walk(n *Node, fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, a := range n.Attrs {
		fn(a)
	}
	for _, c := range n.Children {
		walk(c, fn)
	}
}

// Renumber assigns dense pre-order NodeIDs and rebuilds d.Nodes. It must be
// called after constructing a tree by hand; Parse does it automatically.
func (d *Document) Renumber() {
	d.Nodes = d.Nodes[:0]
	if d.Root == nil {
		return
	}
	var assign func(n *Node)
	assign = func(n *Node) {
		n.ID = NodeID(len(d.Nodes))
		d.Nodes = append(d.Nodes, n)
		for _, a := range n.Attrs {
			a.Parent = n
			a.ID = NodeID(len(d.Nodes))
			d.Nodes = append(d.Nodes, a)
		}
		for _, c := range n.Children {
			c.Parent = n
			assign(c)
		}
	}
	d.Root.Parent = nil
	assign(d.Root)
}

// NewElement returns a new element node with the given tag name.
func NewElement(name string) *Node {
	return &Node{Kind: KindElement, Name: name}
}

// NewText returns a new text node with the given character data.
func NewText(value string) *Node {
	return &Node{Kind: KindText, Value: value}
}

// NewAttr returns a new attribute node.
func NewAttr(name, value string) *Node {
	return &Node{Kind: KindAttribute, Name: name, Value: value}
}

// AppendChild appends c (element or text) to n's children and sets parent.
func (n *Node) AppendChild(c *Node) *Node {
	c.Parent = n
	n.Children = append(n.Children, c)
	return n
}

// SetAttr appends an attribute node to n and sets parent.
func (n *Node) SetAttr(name, value string) *Node {
	a := NewAttr(name, value)
	a.Parent = n
	n.Attrs = append(n.Attrs, a)
	return n
}

// Elem is a convenience constructor: an element with a single text child.
func Elem(name, text string) *Node {
	e := NewElement(name)
	if text != "" {
		e.AppendChild(NewText(text))
	}
	return e
}
