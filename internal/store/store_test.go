package store

import (
	"fmt"
	"testing"

	"repro/internal/xmldoc"
)

func TestInsertGetDelete(t *testing.T) {
	c := NewCollection("items")
	id1, err := c.InsertXML(`<item><name>a</name></item>`)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := c.InsertXML(`<item><name>b</name></item>`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if d := c.Get(id1); d == nil || d.Root.ChildElement("name").Text() != "a" {
		t.Error("Get(id1) wrong document")
	}
	if !c.Delete(id1) {
		t.Error("Delete(id1) = false")
	}
	if c.Delete(id1) {
		t.Error("double Delete(id1) = true")
	}
	if c.Get(id1) != nil {
		t.Error("deleted doc still retrievable")
	}
	if d := c.Get(id2); d == nil {
		t.Error("Get(id2) lost after unrelated delete")
	}
	if c.Len() != 1 {
		t.Fatalf("Len after delete = %d, want 1", c.Len())
	}
}

func TestInsertXMLBadInput(t *testing.T) {
	c := NewCollection("x")
	if _, err := c.InsertXML("<broken"); err == nil {
		t.Error("InsertXML on bad input should fail")
	}
	if c.Len() != 0 {
		t.Error("failed insert must not add a document")
	}
}

func TestAccounting(t *testing.T) {
	c := NewCollection("x")
	if c.Bytes() != 0 || c.NodeCount() != 0 || c.Pages() != 0 {
		t.Fatal("empty collection accounting not zero")
	}
	id, _ := c.InsertXML(`<a><b>hello</b><c x="1"/></a>`)
	if c.NodeCount() != 5 { // a, b, text, c, @x
		t.Errorf("NodeCount = %d, want 5", c.NodeCount())
	}
	if c.Bytes() <= 0 || c.Pages() < 1 {
		t.Errorf("Bytes=%d Pages=%d", c.Bytes(), c.Pages())
	}
	before := c.Bytes()
	c.Delete(id)
	if c.Bytes() != 0 || c.NodeCount() != 0 {
		t.Errorf("after delete: Bytes=%d (was %d) NodeCount=%d", c.Bytes(), before, c.NodeCount())
	}
}

func TestVersionBumps(t *testing.T) {
	c := NewCollection("x")
	v0 := c.Version()
	id, _ := c.InsertXML(`<a/>`)
	if c.Version() == v0 {
		t.Error("insert did not bump version")
	}
	v1 := c.Version()
	c.Delete(id)
	if c.Version() == v1 {
		t.Error("delete did not bump version")
	}
}

func TestEachOrderAndStop(t *testing.T) {
	c := NewCollection("x")
	for i := 0; i < 5; i++ {
		c.InsertXML(fmt.Sprintf(`<d n="%d"/>`, i))
	}
	var seen []string
	c.Each(func(d *xmldoc.Document) bool {
		v, _ := d.Root.Attr("n")
		seen = append(seen, v)
		return len(seen) < 3
	})
	if fmt.Sprint(seen) != "[0 1 2]" {
		t.Errorf("Each visited %v", seen)
	}
	docs := c.Docs()
	if len(docs) != 5 {
		t.Fatalf("Docs len = %d", len(docs))
	}
	for i, d := range docs {
		if v, _ := d.Root.Attr("n"); v != fmt.Sprint(i) {
			t.Errorf("Docs[%d] = %s, want %d", i, v, i)
		}
	}
}

func TestDeleteMiddlePreservesOrder(t *testing.T) {
	c := NewCollection("x")
	var ids []xmldoc.DocID
	for i := 0; i < 4; i++ {
		id, _ := c.InsertXML(fmt.Sprintf(`<d n="%d"/>`, i))
		ids = append(ids, id)
	}
	c.Delete(ids[1])
	var seen []string
	c.Each(func(d *xmldoc.Document) bool {
		v, _ := d.Root.Attr("n")
		seen = append(seen, v)
		return true
	})
	if fmt.Sprint(seen) != "[0 2 3]" {
		t.Errorf("order after middle delete: %v", seen)
	}
	// Remaining docs must still be retrievable by ID.
	for _, i := range []int{0, 2, 3} {
		if c.Get(ids[i]) == nil {
			t.Errorf("doc %d lost after middle delete", i)
		}
	}
}

func TestStoreCollections(t *testing.T) {
	s := New()
	if _, err := s.Create("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("a"); err == nil {
		t.Error("duplicate Create should fail")
	}
	s.MustCreate("b")
	if got := fmt.Sprint(s.Names()); got != "[a b]" {
		t.Errorf("Names = %s", got)
	}
	if s.Get("a") == nil || s.Get("zzz") != nil {
		t.Error("Get broken")
	}
	if !s.Drop("a") || s.Drop("a") {
		t.Error("Drop semantics broken")
	}
}

func TestSetPageSize(t *testing.T) {
	c := NewCollection("x")
	c.InsertXML(`<a>` + string(make([]byte, 0)) + `<b>some text content here</b></a>`)
	p1 := c.Pages()
	c.SetPageSize(64)
	p2 := c.Pages()
	if p2 <= p1 {
		t.Errorf("smaller pages should mean more pages: %d -> %d", p1, p2)
	}
	defer func() {
		if recover() == nil {
			t.Error("SetPageSize(0) should panic")
		}
	}()
	c.SetPageSize(0)
}
