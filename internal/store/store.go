// Package store implements the document store substrate: named collections
// of parsed XML documents with page-based size accounting. It stands in
// for the DB2 pureXML table storage that the paper's advisor runs against;
// the advisor and optimizer only need document trees plus realistic page
// counts for costing, which this package provides.
package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/xmldoc"
)

// DefaultPageSize is the simulated disk page size in bytes, matching the
// 4 KB default of DB2 table spaces.
const DefaultPageSize = 4096

// perNodeOverhead approximates the per-node storage overhead of a native
// XML store (node kind, IDs, offsets).
const perNodeOverhead = 16

// Collection is a named set of XML documents — the analogue of a table
// with one XML column.
type Collection struct {
	name     string
	pageSize int

	mu      sync.RWMutex
	docs    []*xmldoc.Document // insertion order
	byID    map[xmldoc.DocID]int
	nextID  xmldoc.DocID
	bytes   int64 // total estimated storage bytes
	nodes   int64 // total node count
	version int64 // bumped on every mutation; consumers cache against it
}

// NewCollection creates an empty collection with the default page size.
func NewCollection(name string) *Collection {
	return &Collection{
		name:     name,
		pageSize: DefaultPageSize,
		byID:     map[xmldoc.DocID]int{},
	}
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// PageSize returns the simulated page size in bytes.
func (c *Collection) PageSize() int { return c.pageSize }

// SetPageSize changes the simulated page size. It affects only page-count
// reporting, not stored data.
func (c *Collection) SetPageSize(n int) {
	if n <= 0 {
		panic("store: page size must be positive")
	}
	c.mu.Lock()
	c.pageSize = n
	c.mu.Unlock()
}

// docBytes estimates the stored size of a document.
func docBytes(d *xmldoc.Document) int64 {
	var b int64
	for _, n := range d.Nodes {
		b += int64(len(n.Name)+len(n.Value)) + perNodeOverhead
	}
	return b
}

// Insert adds a parsed document and returns its assigned DocID.
func (c *Collection) Insert(d *xmldoc.Document) xmldoc.DocID {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	d.ID = id
	c.byID[id] = len(c.docs)
	c.docs = append(c.docs, d)
	c.bytes += docBytes(d)
	c.nodes += int64(len(d.Nodes))
	c.version++
	return id
}

// InsertXML parses src and inserts the resulting document.
func (c *Collection) InsertXML(src string) (xmldoc.DocID, error) {
	d, err := xmldoc.ParseString(src)
	if err != nil {
		return 0, fmt.Errorf("store: insert into %s: %w", c.name, err)
	}
	return c.Insert(d), nil
}

// Delete removes the document with the given ID. It reports whether the
// document existed.
func (c *Collection) Delete(id xmldoc.DocID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx, ok := c.byID[id]
	if !ok {
		return false
	}
	d := c.docs[idx]
	c.bytes -= docBytes(d)
	c.nodes -= int64(len(d.Nodes))
	copy(c.docs[idx:], c.docs[idx+1:])
	c.docs = c.docs[:len(c.docs)-1]
	delete(c.byID, id)
	for i := idx; i < len(c.docs); i++ {
		c.byID[c.docs[i].ID] = i
	}
	c.version++
	return true
}

// Get returns the document with the given ID, or nil.
func (c *Collection) Get(id xmldoc.DocID) *xmldoc.Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if idx, ok := c.byID[id]; ok {
		return c.docs[idx]
	}
	return nil
}

// Len returns the number of documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// NodeCount returns the total number of nodes across all documents.
func (c *Collection) NodeCount() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes
}

// Bytes returns the estimated total storage size in bytes.
func (c *Collection) Bytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.bytes
}

// Pages returns the estimated number of pages the collection occupies.
func (c *Collection) Pages() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return pagesFor(c.bytes, c.pageSize)
}

func pagesFor(bytes int64, pageSize int) int64 {
	p := (bytes + int64(pageSize) - 1) / int64(pageSize)
	if p < 1 && bytes > 0 {
		p = 1
	}
	return p
}

// Version returns a counter bumped by every mutation; statistics and index
// consumers use it to detect staleness.
func (c *Collection) Version() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Each calls fn for every document in insertion order; fn returning false
// stops the scan. Each holds a read lock: fn must not mutate the
// collection.
func (c *Collection) Each(fn func(*xmldoc.Document) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, d := range c.docs {
		if !fn(d) {
			return
		}
	}
}

// Docs returns a snapshot slice of the documents in insertion order.
func (c *Collection) Docs() []*xmldoc.Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*xmldoc.Document, len(c.docs))
	copy(out, c.docs)
	return out
}

// Store is a set of named collections — the analogue of a database.
type Store struct {
	mu   sync.RWMutex
	cols map[string]*Collection
}

// New creates an empty store.
func New() *Store {
	return &Store{cols: map[string]*Collection{}}
}

// Create adds a new empty collection, failing if the name exists.
func (s *Store) Create(name string) (*Collection, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cols[name]; ok {
		return nil, fmt.Errorf("store: collection %q already exists", name)
	}
	c := NewCollection(name)
	s.cols[name] = c
	return c, nil
}

// MustCreate is Create panicking on error, for setup code.
func (s *Store) MustCreate(name string) *Collection {
	c, err := s.Create(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Get returns the named collection, or nil.
func (s *Store) Get(name string) *Collection {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cols[name]
}

// Drop removes the named collection, reporting whether it existed.
func (s *Store) Drop(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cols[name]; !ok {
		return false
	}
	delete(s.cols, name)
	return true
}

// Names returns the collection names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.cols))
	for n := range s.cols {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
