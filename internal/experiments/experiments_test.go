package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func env(t testing.TB) *Env {
	t.Helper()
	e, err := BuildEnv(Small)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestE1(t *testing.T) {
	rep, err := E1EnumerateIndexes(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "Enumerate Indexes") || !strings.Contains(rep, "total candidates") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestE2(t *testing.T) {
	rep, err := E2EvaluateIndexes(env(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"none", "exact-quantity", "general-quantity", "qty+price"} {
		if !strings.Contains(rep, want) {
			t.Errorf("missing config %q in:\n%s", want, rep)
		}
	}
}

func TestE3(t *testing.T) {
	rep, err := E3GeneralizationDAG(env(t))
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4's content: the paper's generalized patterns must appear.
	if !strings.Contains(rep, "/site/regions/*/item/quantity") {
		t.Errorf("missing paper generalization in:\n%s", rep)
	}
	if !strings.Contains(rep, "topdown") && !strings.Contains(rep, "greedy") {
		t.Errorf("missing search traces in:\n%s", rep)
	}
}

func TestE4(t *testing.T) {
	rep, err := E4RecommendationAnalysis(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "overtrained") || !strings.Contains(rep, "weighted totals") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestE5(t *testing.T) {
	rep, err := E5UnseenWorkload(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "test benefit") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestE6(t *testing.T) {
	rep, err := E6SearchStrategies(env(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"greedy-basic", "greedy-heuristic", "topdown"} {
		if !strings.Contains(rep, want) {
			t.Errorf("missing %q in:\n%s", want, rep)
		}
	}
}

func TestE7(t *testing.T) {
	rep, err := E7UpdateCost(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "update cost") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestE8(t *testing.T) {
	rep, err := E8ActualExecution(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "speedup") || !strings.Contains(rep, "geometric-mean") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestE9(t *testing.T) {
	rep, err := E9CouplingAblation(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "optimizer") || !strings.Contains(rep, "syntactic") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestE10(t *testing.T) {
	rep, err := E10InteractionAblation(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "evaluations") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestE12(t *testing.T) {
	rep, err := E12ParallelWhatIf(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "workers") || !strings.Contains(rep, "hit%") {
		t.Errorf("report:\n%s", rep)
	}
	// The recommendation must not depend on the worker count: every row
	// reports the same index count and net benefit.
	lines := strings.Split(strings.TrimSpace(rep), "\n")
	if len(lines) < 5 {
		t.Fatalf("table too short:\n%s", rep)
	}
	var first []string
	for _, ln := range lines[3:] {
		f := strings.Fields(ln)
		if len(f) < 3 {
			continue
		}
		if first == nil {
			first = f
			continue
		}
		if f[1] != first[1] || f[2] != first[2] {
			t.Errorf("worker count changed the recommendation:\n%s", rep)
		}
	}
}

func TestE13(t *testing.T) {
	rep, err := E13RuleAblation(env(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"none", "lub", "leaf", "all", "applied/pruned", "lub:"} {
		if !strings.Contains(rep, want) {
			t.Errorf("missing %q in:\n%s", want, rep)
		}
	}
	// Every rule row must report at least as many candidates as basics
	// (rules only ever add to the basic set).
	lines := strings.Split(strings.TrimSpace(rep), "\n")
	rows := 0
	for _, ln := range lines[3:] {
		f := strings.Fields(ln)
		if len(f) < 3 {
			continue
		}
		rows++
		var basic, cands int
		if _, err := fmt.Sscanf(f[1]+" "+f[2], "%d %d", &basic, &cands); err != nil {
			t.Fatalf("unparseable row %q: %v", ln, err)
		}
		if cands < basic {
			t.Errorf("row %q: %d candidates < %d basics", ln, cands, basic)
		}
	}
	if rows < 8 {
		t.Errorf("expected 8 ablation rows, got %d:\n%s", rows, rep)
	}
}

func TestEnvDeterministicAndCached(t *testing.T) {
	a, err := BuildEnv(Small)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := BuildEnv(Small)
	if a != b {
		t.Error("env not cached")
	}
	if a.Store.Get("auction") == nil || a.Store.Get("security") == nil {
		t.Error("collections missing")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := newTable("title", "a", "bb")
	tb.add("x", 1)
	tb.add("longer", 2.5)
	s := tb.String()
	if !strings.Contains(s, "title") || !strings.Contains(s, "longer") || !strings.Contains(s, "2.5") {
		t.Errorf("table:\n%s", s)
	}
}

func TestE11(t *testing.T) {
	rep, err := E11AdvisorScalability(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "runtime") || !strings.Contains(rep, "80") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestE14(t *testing.T) {
	rep, err := E14StrategyPortfolio(env(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"race", "greedy-heuristic", "topdown", "winner", "xmark", "tpox",
		"syn-1k", "syn-10k", "greedy-eager", "race-bounded"} {
		if !strings.Contains(rep, want) {
			t.Errorf("missing %q in:\n%s", want, rep)
		}
	}
	// The race rows must name a winner and match its net benefit: the
	// portfolio is never worse than its best member.
	lines := strings.Split(strings.TrimSpace(rep), "\n")
	raceRows := 0
	for _, ln := range lines {
		f := strings.Fields(ln)
		if len(f) < 10 || f[1] != "race" {
			continue
		}
		raceRows++
	}
	if raceRows != 4 {
		t.Errorf("expected 4 race rows (xmark, tpox, syn-1k, syn-10k), got %d:\n%s", raceRows, rep)
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	reports, err := All(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 14 {
		t.Fatalf("All returned %d reports, want 14", len(reports))
	}
	for i, r := range reports {
		if r == "" {
			t.Errorf("report %d empty", i)
		}
	}
}
