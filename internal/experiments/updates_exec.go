package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/advisor"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/optimizer"
)

// E7UpdateCost reproduces the update-cost analysis (paper §1: "taking
// into account the cost of updating the index on data modification"):
// as the update share of the workload grows, maintenance eats into net
// benefit and the advisor recommends fewer/smaller indexes. Each update
// ratio prepares one candidate space and sweeps two budget points over
// it via Space.WithBudget (unlimited and half the unconstrained size),
// so the constrained row costs only the extra search, not a second
// advisor run.
func E7UpdateCost(env *Env) (string, error) {
	t := newTable("E7: recommendation vs update share (update weight as multiple of query weight; budget sweep per ratio)",
		"upd:qry ratio", "budget", "#idx", "pages", "query benefit", "update cost", "net benefit", "evals")
	ctx := context.Background()
	for _, ratio := range []float64{0, 1, 5, 20, 50, 100} {
		w := datagen.XMarkWorkload(20, 1)
		if ratio > 0 {
			datagen.XMarkUpdates(w, ratio*w.TotalQueryWeight(), 1)
		}
		sess, err := env.advisor().Open(ctx, w)
		if err != nil {
			return "", err
		}
		defer sess.Close()
		unlimited, err := sess.Recommend(ctx, advisor.RecommendRequest{Strategy: "greedy-heuristic"})
		if err != nil {
			return "", err
		}
		type budgetRow struct {
			label  string
			budget int64
		}
		rows := []budgetRow{{"unlimited", 0}}
		// The constrained point only exists when there is something to
		// halve: at high update ratios the advisor recommends nothing,
		// and a fabricated budget-0 row would just repeat the
		// unconstrained one.
		if half := unlimited.TotalPages / 2; half >= 1 {
			rows = append(rows, budgetRow{fmt.Sprintf("%d", half), half})
		}
		for _, row := range rows {
			rec := unlimited
			if row.budget > 0 {
				if rec, err = sess.Recommend(ctx, advisor.RecommendRequest{
					Strategy: "greedy-heuristic", BudgetPages: row.budget}); err != nil {
					return "", err
				}
			}
			t.add(fmt.Sprintf("%.1f", ratio), row.label, len(rec.Indexes), rec.TotalPages,
				rec.QueryBenefit, rec.UpdateCost, rec.NetBenefit, rec.Evaluations)
		}
	}
	return t.String(), nil
}

// E8ActualExecution reproduces the demo's final step: materialize the
// recommended configuration and display actual execution times, doc scan
// vs indexed plan, per query.
func E8ActualExecution(env *Env) (string, error) {
	cat := env.freshCatalog()
	a, err := advisor.New(cat)
	if err != nil {
		return "", err
	}
	w := env.XMarkWorkload
	rec, err := a.Recommend(context.Background(), w, advisor.RecommendRequest{})
	if err != nil {
		return "", err
	}
	if _, err := a.Materialize(rec); err != nil {
		return "", err
	}
	opt := optimizer.New(cat)
	ex := executor.New(cat)

	t := newTable("E8: actual execution, no indexes vs recommended configuration (demo final step)",
		"query", "rows", "scan µs", "indexed µs", "speedup", "scan nodes", "idx nodes", "plan")
	var logSum float64
	var n int
	for _, e := range w.Queries {
		scanRes, err := ex.Run(e.Query, nil)
		if err != nil {
			return "", err
		}
		plan, err := opt.Optimize(e.Query, nil)
		if err != nil {
			return "", err
		}
		idxRes, err := ex.Run(e.Query, plan)
		if err != nil {
			return "", err
		}
		if scanRes.Rows != idxRes.Rows {
			return "", fmt.Errorf("E8: result mismatch on %s: %d vs %d", e.Query.ID, scanRes.Rows, idxRes.Rows)
		}
		su := float64(scanRes.Metrics.Duration.Microseconds()+1) / float64(idxRes.Metrics.Duration.Microseconds()+1)
		kind := "DOCSCAN"
		if plan.UsesIndexes() {
			kind = "IXSCAN(" + strings.Join(plan.IndexNames(), ",") + ")"
			logSum += math.Log(su)
			n++
		}
		t.add(e.Query.ID, scanRes.Rows,
			scanRes.Metrics.Duration.Microseconds(), idxRes.Metrics.Duration.Microseconds(),
			fmt.Sprintf("%.1fx", su),
			scanRes.Metrics.NodesVisited, idxRes.Metrics.NodesVisited, kind)
	}
	geo := 1.0
	if n > 0 {
		geo = math.Exp(logSum / float64(n))
	}
	return t.String() + fmt.Sprintf("geometric-mean speedup over indexed queries: %.1fx (%d of %d queries use indexes)\n",
		geo, n, len(w.Queries)), nil
}
