package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/advisor"
	"repro/internal/datagen"
)

// E9CouplingAblation compares the paper's optimizer-coupled candidate
// enumeration with a loosely coupled syntactic baseline that scrapes
// paths from the query text: the baseline cannot infer SQL types or
// exclude non-matchable patterns, so its recommendations are larger and
// weaker — the paper's motivation for tight coupling (§2).
func E9CouplingAblation(env *Env) (string, error) {
	ctx := context.Background()
	t := newTable("E9: optimizer-coupled vs syntactic candidate enumeration",
		"enumeration", "#basic", "#idx", "pages", "net benefit", "#unused")
	for _, syntactic := range []bool{false, true} {
		name := "optimizer"
		if syntactic {
			name = "syntactic"
		}
		a := env.advisor(advisor.WithSyntacticEnumeration(syntactic))
		rec, err := a.Recommend(ctx, env.XMarkWorkload, advisor.RecommendRequest{})
		if err != nil {
			return "", err
		}
		used := map[string]bool{}
		for _, qa := range rec.PerQuery {
			for _, n := range qa.IndexesUsed {
				used[n] = true
			}
		}
		t.add(name, rec.Candidates.Basics, len(rec.Indexes), rec.TotalPages, rec.NetBenefit,
			len(rec.Indexes)-len(used))
	}
	return t.String(), nil
}

// E10InteractionAblation measures interaction-aware benefit estimation
// (paper §2.3: "the benefit of an index can change depending on which
// other indexes are available"): greedy search with marginal
// re-evaluation vs standalone benefits.
func E10InteractionAblation(env *Env) (string, error) {
	ctx := context.Background()
	over, err := overtrainedPages(env, env.XMarkWorkload)
	if err != nil {
		return "", err
	}
	t := newTable("E10: index-interaction-aware greedy vs standalone-benefit greedy",
		"interaction", "budget", "#idx", "pages", "net benefit", "evaluations", "cache hit%")
	for _, frac := range []float64{0.25, 0.5} {
		budget := int64(float64(over) * frac)
		for _, aware := range []bool{false, true} {
			a := env.advisor(advisor.WithInteractionAware(aware), advisor.WithBudgetPages(budget))
			rec, err := a.Recommend(ctx, env.XMarkWorkload, advisor.RecommendRequest{})
			if err != nil {
				return "", err
			}
			t.add(boolName(aware), budget, len(rec.Indexes), rec.TotalPages, rec.NetBenefit,
				rec.Evaluations, 100*rec.Cache.HitRate())
		}
	}
	return t.String(), nil
}

func boolName(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// E11AdvisorScalability measures advisor runtime, optimizer-evaluation
// count, and candidate-set growth as the workload grows — the advisor's
// own cost, which a DBA-facing tool must keep manageable.
func E11AdvisorScalability(env *Env) (string, error) {
	ctx := context.Background()
	t := newTable("E11: advisor runtime vs workload size",
		"#queries", "#basic", "#cands", "#idx", "evaluations", "cache hit%", "kernel hit%", "runtime")
	for _, n := range []int{5, 10, 20, 40, 80} {
		w := datagen.XMarkWorkload(n, 1)
		rec, err := env.advisor().Recommend(ctx, w, advisor.RecommendRequest{})
		if err != nil {
			return "", err
		}
		t.add(n, rec.Candidates.Basics, rec.Candidates.DAGNodes, len(rec.Indexes),
			rec.Evaluations, 100*rec.Cache.HitRate(), 100*rec.Kernel.HitRate(),
			rec.Elapsed().Round(time.Millisecond).String())
	}
	return t.String(), nil
}

// E12ParallelWhatIf measures how the advisor scales with the what-if
// engine's worker count: identical recommendations, falling wall-clock.
// This is the payoff of decoupling search from the optimizer behind the
// concurrent whatif.CostService.
func E12ParallelWhatIf(env *Env) (string, error) {
	ctx := context.Background()
	t := newTable("E12: what-if evaluation parallelism (XMark workload, greedy-heuristic search)",
		"workers", "#idx", "net benefit", "evaluations", "cache hits", "hit%", "proj hits", "rel med/p95", "runtime")
	for _, wk := range WorkerSweep() {
		a := env.advisor(advisor.WithParallelism(wk))
		rec, err := a.Recommend(ctx, env.XMarkWorkload, advisor.RecommendRequest{})
		if err != nil {
			return "", err
		}
		t.add(wk, len(rec.Indexes), rec.NetBenefit, rec.Evaluations,
			int(rec.Cache.Hits), 100*rec.Cache.HitRate(), rec.Cache.ProjectedHits,
			fmt.Sprintf("%d/%d", rec.Relevance.Median, rec.Relevance.P95),
			rec.Elapsed().Round(time.Millisecond).String())
	}
	return t.String(), nil
}

// WorkerSweep is the worker-count series E12 and BenchmarkAdvisorParallel
// share: 1, 2, 4, plus the host's CPU count when larger.
func WorkerSweep() []int {
	set := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		set = append(set, n)
	}
	return set
}

// E13RuleAblation measures the contribution of each generalization rule
// (§2.2) to the candidate space and the recommendation: the default rule
// set, each rule alone, the full set, and none, with the pipeline's
// per-rule applied/pruned counters.
func E13RuleAblation(env *Env) (string, error) {
	ctx := context.Background()
	t := newTable("E13: generalization rule ablation (XMark workload, unlimited budget)",
		"rules", "#basic", "#cands", "#idx", "pages", "net benefit", "rule applied/pruned")
	for _, spec := range []string{"none", "lub", "wildcard", "leaf", "axis", "universal", "lub,leaf", "all"} {
		a := env.advisor(advisor.WithRules(spec))
		rec, err := a.Recommend(ctx, env.XMarkWorkload, advisor.RecommendRequest{})
		if err != nil {
			return "", err
		}
		var counters []string
		for _, r := range rec.Pipeline.Rules {
			counters = append(counters, fmt.Sprintf("%s:%d/%d", r.Name, r.Applied, r.Pruned))
		}
		t.add(spec, rec.Pipeline.Basic, rec.Candidates.DAGNodes, len(rec.Indexes), rec.TotalPages,
			rec.NetBenefit, strings.Join(counters, " "))
	}
	return t.String(), nil
}

// All runs every experiment at the given scale, returning the reports in
// order E1..E14.
func All(s Scale) ([]string, error) {
	env, err := BuildEnv(s)
	if err != nil {
		return nil, err
	}
	type exp struct {
		name string
		fn   func(*Env) (string, error)
	}
	exps := []exp{
		{"E1", E1EnumerateIndexes},
		{"E2", E2EvaluateIndexes},
		{"E3", E3GeneralizationDAG},
		{"E4", E4RecommendationAnalysis},
		{"E5", E5UnseenWorkload},
		{"E6", E6SearchStrategies},
		{"E7", E7UpdateCost},
		{"E8", E8ActualExecution},
		{"E9", E9CouplingAblation},
		{"E10", E10InteractionAblation},
		{"E11", E11AdvisorScalability},
		{"E12", E12ParallelWhatIf},
		{"E13", E13RuleAblation},
		{"E14", E14StrategyPortfolio},
	}
	var out []string
	for _, e := range exps {
		rep, err := e.fn(env)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}
