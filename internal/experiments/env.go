// Package experiments implements the reproduction harness: one function
// per experiment in DESIGN.md §4 (E1–E14), each regenerating the data
// behind a demonstration step or figure of the paper as a printable
// table. The cmd/experiments binary prints them all; the repository-root
// benchmarks wrap each one.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/advisor"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/optimizer"
	"repro/internal/store"
	"repro/internal/workload"
)

// Scale selects the dataset size. Small keeps unit-test latency low;
// Medium is what cmd/experiments uses for reported numbers.
type Scale int

const (
	// Small is for tests and quick runs.
	Small Scale = iota
	// Medium is the reporting scale.
	Medium
)

func (s Scale) xmarkDocs() int {
	if s == Medium {
		return 1500
	}
	return 250
}

func (s Scale) tpoxSecurities() int {
	if s == Medium {
		return 120
	}
	return 25
}

// Env is a fully built experiment environment: generated XMark and TPoX
// databases, a catalog, and the standard workloads.
type Env struct {
	Scale Scale
	Store *store.Store
	Cat   *catalog.Catalog

	XMarkWorkload *workload.Workload
	TPoXWorkload  *workload.Workload

	// PaperWorkload is the §2.2 example workload.
	PaperWorkload *workload.Workload
}

var (
	envMu    sync.Mutex
	envCache = map[Scale]*Env{}
)

// BuildEnv builds (or returns the cached) environment for the scale.
// All generation is seeded: every call observes identical data.
func BuildEnv(s Scale) (*Env, error) {
	envMu.Lock()
	defer envMu.Unlock()
	if e := envCache[s]; e != nil {
		return e, nil
	}
	st := store.New()
	if _, err := datagen.GenerateXMark(st, datagen.XMarkConfig{Docs: s.xmarkDocs(), Seed: 42}); err != nil {
		return nil, err
	}
	if err := datagen.GenerateTPoX(st, datagen.TPoXConfig{Securities: s.tpoxSecurities(), Seed: 42}); err != nil {
		return nil, err
	}
	env := &Env{
		Scale:         s,
		Store:         st,
		Cat:           catalog.New(st),
		XMarkWorkload: datagen.XMarkWorkload(20, 1),
		TPoXWorkload:  datagen.TPoXWorkload(18, 1, s.tpoxSecurities()),
		PaperWorkload: datagen.XMarkPaperWorkload(),
	}
	envCache[s] = env
	return env, nil
}

// freshCatalog returns a new catalog over the same store, so experiments
// that materialize physical indexes do not leak them into later ones.
func (e *Env) freshCatalog() *catalog.Catalog {
	return catalog.New(e.Store)
}

// advisor builds a public-facade advisor over a fresh catalog with the
// given options. The experiment harness goes through the same API the
// CLI tools and the xiad server use; option values here are
// program-constant, so a validation failure is a programming error and
// panics.
func (e *Env) advisor(opts ...advisor.Option) *advisor.Advisor {
	a, err := advisor.New(e.freshCatalog(), opts...)
	if err != nil {
		panic(fmt.Sprintf("experiments: advisor options: %v", err))
	}
	return a
}

// optimizer builds an optimizer over a fresh catalog.
func (e *Env) optimizer() *optimizer.Optimizer {
	return optimizer.New(e.freshCatalog())
}

// executorOn returns an executor over the given catalog.
func executorOn(cat *catalog.Catalog) *executor.Executor {
	return executor.New(cat)
}

// table is a tiny fixed-width table builder for experiment output.
type table struct {
	header []string
	rows   [][]string
	title  string
}

func newTable(title string, header ...string) *table {
	return &table{title: title, header: header}
}

func (t *table) add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		fmt.Fprintf(&sb, "%s\n", t.title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}
