package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/pattern"
	"repro/internal/sqltype"
	"repro/internal/whatif"
)

// E1EnumerateIndexes reproduces the Enumerate Indexes demonstration
// (paper Figure 2): for each workload query, the basic candidate indexes
// the optimizer enumerates through the //* virtual index.
func E1EnumerateIndexes(env *Env) (string, error) {
	opt := env.optimizer()
	t := newTable("E1: Enumerate Indexes mode — basic candidates per query (Figure 2)",
		"query", "lang", "#cands", "sample candidates")
	total := 0
	for _, e := range env.XMarkWorkload.Queries[:10] {
		cands, err := opt.EnumerateIndexes(e.Query)
		if err != nil {
			return "", err
		}
		total += len(cands)
		t.add("X"+strings.TrimPrefix(e.Query.ID, "Q"), e.Query.Lang.String(), len(cands), candList(cands, 2))
	}
	for _, e := range env.TPoXWorkload.Queries[:9] {
		cands, err := opt.EnumerateIndexes(e.Query)
		if err != nil {
			return "", err
		}
		total += len(cands)
		t.add("T"+strings.TrimPrefix(e.Query.ID, "Q"), e.Query.Lang.String(), len(cands), candList(cands, 2))
	}
	return t.String() + fmt.Sprintf("total candidates enumerated: %d\n", total), nil
}

func candList(cands []optimizer.Candidate, max int) string {
	var parts []string
	for i, c := range cands {
		if i >= max {
			parts = append(parts, fmt.Sprintf("+%d more", len(cands)-max))
			break
		}
		parts = append(parts, c.String())
	}
	return strings.Join(parts, "; ")
}

// E2EvaluateIndexes reproduces the Evaluate Indexes demonstration (paper
// Figure 3): the estimated cost of queries under hand-picked virtual
// index configurations, without building anything.
func E2EvaluateIndexes(env *Env) (string, error) {
	opt := env.optimizer()
	eng := whatif.NewEngine(whatif.NewOptimizerService(opt), whatif.Options{})
	st, err := opt.Cat.Stats("auction")
	if err != nil {
		return "", err
	}
	mk := func(name, pat string, ty sqltype.Type) *catalog.IndexDef {
		return catalog.VirtualDef(name, "auction", pattern.MustParse(pat), ty, st)
	}
	configs := []struct {
		name string
		defs []*catalog.IndexDef
	}{
		{"none", nil},
		{"exact-quantity", []*catalog.IndexDef{mk("V_QTY", "/site/regions/namerica/item/quantity", sqltype.Double)}},
		{"general-quantity", []*catalog.IndexDef{mk("V_GQTY", "/site/regions/*/item/quantity", sqltype.Double)}},
		{"item-star", []*catalog.IndexDef{mk("V_ITEM", "/site/regions/*/item/*", sqltype.Double)}},
		{"qty+price", []*catalog.IndexDef{
			mk("V_GQTY", "/site/regions/*/item/quantity", sqltype.Double),
			mk("V_GPRC", "/site/regions/*/item/price", sqltype.Double),
		}},
	}
	t := newTable("E2: Evaluate Indexes mode — estimated cost per configuration (Figure 3)",
		"query", "config", "est cost", "benefit", "indexes used")
	// Each configuration is evaluated over the whole workload through
	// the what-if service, exactly as advisor search does.
	qs := env.PaperWorkload.QueryList()
	byConfig := make([]*whatif.ConfigEval, len(configs))
	for ci, cfg := range configs {
		res, err := eng.EvaluateConfig(context.Background(), qs, cfg.defs)
		if err != nil {
			return "", err
		}
		byConfig[ci] = res
	}
	for qi, e := range env.PaperWorkload.Queries {
		for ci, cfg := range configs {
			qe := byConfig[ci].Queries[qi]
			t.add(e.Query.ID, cfg.name, qe.Cost, qe.Benefit(), strings.Join(qe.UsedIndexes, ","))
		}
	}
	st2 := eng.Stats()
	return t.String() + fmt.Sprintf("what-if service: %d evaluations, %d cache misses, %d hits\n",
		st2.Evaluations, st2.Misses, st2.Hits), nil
}
