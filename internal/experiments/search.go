package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/advisor"
	"repro/internal/search"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// overtrainedPages runs the advisor without a budget and returns the
// size of the all-basic-candidates configuration, the sweep baseline.
func overtrainedPages(env *Env, w *workload.Workload) (int64, error) {
	rec, err := env.advisor().Recommend(context.Background(), w, advisor.RecommendRequest{})
	if err != nil {
		return 0, err
	}
	pages := rec.Candidates.BasicsPages
	if pages == 0 {
		pages = 1
	}
	return pages, nil
}

// E3GeneralizationDAG reproduces the candidate DAG view (paper Figure 4):
// the size and shape of the generalized candidate set and how each
// search algorithm traverses it.
func E3GeneralizationDAG(env *Env) (string, error) {
	ctx := context.Background()
	var sb strings.Builder
	rec, err := env.advisor().Recommend(ctx, env.PaperWorkload, advisor.RecommendRequest{IncludeDAG: true})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "E3: candidate generalization DAG (Figure 4), paper workload\n")
	sb.WriteString(rec.DAGText)
	sb.WriteString("\nsearch traces:\n")

	for _, strategy := range []string{"greedy-heuristic", "topdown"} {
		over, err := overtrainedPages(env, env.XMarkWorkload)
		if err != nil {
			return "", err
		}
		budget := over / 2
		r, err := env.advisor().Recommend(ctx, env.XMarkWorkload, advisor.RecommendRequest{
			Strategy:     strategy,
			BudgetPages:  budget,
			IncludeTrace: true,
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "\n[%s] budget=%d pages -> %d indexes, %d pages, net %.1f\n",
			strategy, budget, len(r.Indexes), r.TotalPages, r.NetBenefit)
		for _, ev := range r.Trace {
			fmt.Fprintf(&sb, "  %s\n", ev.String())
		}
	}
	return sb.String(), nil
}

// E4RecommendationAnalysis reproduces the recommendation analysis screen
// (paper Figure 5): per query, the original cost, the cost under the
// recommended configuration, and the cost under the overtrained
// configuration of all basic candidates.
func E4RecommendationAnalysis(env *Env) (string, error) {
	over, err := overtrainedPages(env, env.XMarkWorkload)
	if err != nil {
		return "", err
	}
	budget := over / 2
	rec, err := env.advisor().Recommend(context.Background(), env.XMarkWorkload,
		advisor.RecommendRequest{BudgetPages: budget})
	if err != nil {
		return "", err
	}
	t := newTable(fmt.Sprintf("E4: recommendation analysis (Figure 5) — budget %d pages, recommended %d pages",
		budget, rec.TotalPages),
		"query", "weight", "no-index", "recommended", "overtrained", "indexes")
	for _, qa := range rec.PerQuery {
		t.add(qa.ID, qa.Weight, qa.CostNoIndexes, qa.CostRecommended, qa.CostOvertrained,
			strings.Join(qa.IndexesUsed, ","))
	}
	var recTot, overTot, noTot float64
	for _, qa := range rec.PerQuery {
		noTot += qa.Weight * qa.CostNoIndexes
		recTot += qa.Weight * qa.CostRecommended
		overTot += qa.Weight * qa.CostOvertrained
	}
	return t.String() + fmt.Sprintf(
		"weighted totals: no-index %.1f, recommended %.1f (%.0f%% of max benefit), overtrained %.1f\n",
		noTot, recTot, pct(noTot-recTot, noTot-overTot), overTot), nil
}

func pct(x, of float64) float64 {
	if of == 0 {
		return 100
	}
	return 100 * x / of
}

// E5UnseenWorkload reproduces the demo's "add more queries beyond the
// input workload" analysis: train the advisor on a subset and measure
// benefit on held-out queries, with generalization on vs off — the
// argument for recommending generalized configurations.
func E5UnseenWorkload(env *Env) (string, error) {
	ctx := context.Background()
	full := env.XMarkWorkload
	train, test := full.Split(0.6, 99)
	if len(train.Queries) == 0 || len(test.Queries) == 0 {
		return "", fmt.Errorf("degenerate split")
	}
	t := newTable("E5: benefit on unseen queries (train 60% / test 40%)",
		"search", "generalize", "#idx", "pages", "train benefit", "test benefit")
	for _, strategy := range []string{"greedy-heuristic", "topdown"} {
		for _, gen := range []bool{false, true} {
			a := env.advisor(advisor.WithStrategy(strategy), advisor.WithGeneralize(gen))
			rec, err := a.Recommend(ctx, train, advisor.RecommendRequest{})
			if err != nil {
				return "", err
			}
			trainNo, trainWith, err := a.EvaluateOn(ctx, train, rec.Indexes)
			if err != nil {
				return "", err
			}
			testNo, testWith, err := a.EvaluateOn(ctx, test, rec.Indexes)
			if err != nil {
				return "", err
			}
			t.add(strategy, fmt.Sprint(gen), len(rec.Indexes), rec.TotalPages,
				trainNo-trainWith, testNo-testWith)
		}
	}
	return t.String(), nil
}

// E6SearchStrategies compares the three search algorithms across a disk
// budget sweep (paper §2.3): plain greedy [8] vs greedy with redundancy
// heuristics vs top-down, reporting net benefit and how many recommended
// indexes the optimizer never uses (redundant picks). One advisor
// session holds the candidate space; every (budget, strategy) cell then
// re-searches it on the shared what-if cache instead of re-running the
// whole advisor per budget point — visible in the falling evals /
// rising hit-rate columns.
func E6SearchStrategies(env *Env) (string, error) {
	over, err := overtrainedPages(env, env.XMarkWorkload)
	if err != nil {
		return "", err
	}
	ctx := context.Background()
	sess, err := env.advisor().Open(ctx, env.XMarkWorkload)
	if err != nil {
		return "", err
	}
	defer sess.Close()
	t := newTable("E6: search strategies across disk budgets (fractions of overtrained size; one shared candidate space + what-if cache)",
		"budget%", "search", "#idx", "pages", "net benefit", "#unused", "evals", "cache hit%", "kernel hit%")
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		budget := int64(float64(over) * frac)
		if budget < 1 {
			budget = 1
		}
		for _, strategy := range []string{"greedy-basic", "greedy-heuristic", "topdown"} {
			rec, err := sess.Recommend(ctx, advisor.RecommendRequest{Strategy: strategy, BudgetPages: budget})
			if err != nil {
				return "", err
			}
			used := map[string]bool{}
			for _, qa := range rec.PerQuery {
				for _, n := range qa.IndexesUsed {
					used[n] = true
				}
			}
			unused := len(rec.Indexes) - len(used)
			t.add(int(frac*100), strategy, len(rec.Indexes), rec.TotalPages, rec.NetBenefit, unused,
				rec.Evaluations, 100*rec.Cache.HitRate(), 100*rec.Kernel.HitRate())
		}
	}
	return t.String(), nil
}

// E14StrategyPortfolio compares every registered strategy — including
// the race portfolio — side-by-side at half the overtrained budget on
// the XMark and TPoX workloads. Each workload opens one advisor
// session; the strategies (and the race's concurrent members) share its
// what-if cache, so the portfolio's marginal cost over its most
// expensive member is small, while its net benefit matches the best
// member by construction.
func E14StrategyPortfolio(env *Env) (string, error) {
	ctx := context.Background()
	t := newTable("E14: strategy portfolio — all registered strategies plus the race, half-overtrained budget",
		"workload", "strategy", "#idx", "pages", "net benefit", "rounds", "search ms", "evals", "cache hit%", "proj hits", "winner")
	for _, wl := range []struct {
		name string
		w    *workload.Workload
	}{
		{"xmark", env.XMarkWorkload},
		{"tpox", env.TPoXWorkload},
	} {
		over, err := overtrainedPages(env, wl.w)
		if err != nil {
			return "", err
		}
		sess, err := env.advisor().Open(ctx, wl.w)
		if err != nil {
			return "", err
		}
		defer sess.Close()
		budget := over / 2
		if budget < 1 {
			budget = 1
		}
		for _, name := range advisor.Strategies() {
			rec, err := sess.Recommend(ctx, advisor.RecommendRequest{Strategy: name, BudgetPages: budget})
			if err != nil {
				return "", err
			}
			t.add(wl.name, name, len(rec.Indexes), rec.TotalPages, rec.NetBenefit, rec.Search.Rounds,
				rec.Search.Elapsed.Milliseconds(), rec.Evaluations, 100*rec.Cache.HitRate(),
				rec.Cache.ProjectedHits, rec.Search.Winner)
		}
	}
	// Synthetic scale section: the same portfolio question at candidate
	// counts the real workloads cannot reach, where lazy-vs-eager and
	// cost-bounded racing actually separate. Evals here are the exact
	// per-strategy what-if call counts from Stats.
	for _, n := range []int{1000, 10000} {
		sp := search.NewSyntheticSpace(n, 42)
		wlName := fmt.Sprintf("syn-%dk", n/1000)
		for _, variant := range []struct {
			name string
			base string
			tune func(*search.Space)
		}{
			{"greedy-heuristic", "greedy-heuristic", nil},
			{"greedy-eager", "greedy-heuristic", func(v *search.Space) { v.EagerGreedy = true }},
			{"lp", "lp", nil},
			{"race", "race", nil},
			{"race-bounded", "race", func(v *search.Space) { v.RaceCostBound = true }},
		} {
			strat, err := search.Lookup(variant.base)
			if err != nil {
				return "", err
			}
			view := sp.WithBudget(sp.BudgetPages)
			if variant.tune != nil {
				variant.tune(view)
			}
			res, err := strat.Search(ctx, view)
			if err != nil {
				return "", err
			}
			t.add(wlName, variant.name, len(res.Config), res.Pages, res.Eval.Net, res.Stats.Rounds,
				res.Stats.Elapsed.Milliseconds(), res.Stats.Evals, 0.0, int64(0), res.Stats.Winner)
		}
		// The same greedy search through the real what-if engine over the
		// synthetic backend, with and without relevance projection — the
		// projected-hit and CostService-call counters at a candidate scale
		// the real workloads cannot reach.
		for _, noProj := range []bool{false, true} {
			name := "greedy-whatif"
			if noProj {
				name += "-noproj"
			}
			spw, eng := search.NewSyntheticWhatIfSpace(n, 42, whatif.Options{NoProjection: noProj})
			strat, err := search.Lookup("greedy-heuristic")
			if err != nil {
				return "", err
			}
			res, err := strat.Search(ctx, spw)
			if err != nil {
				return "", err
			}
			st := eng.Stats()
			t.add(wlName, name, len(res.Config), res.Pages, res.Eval.Net, res.Stats.Rounds,
				res.Stats.Elapsed.Milliseconds(), st.Evaluations, 100*st.HitRate(), st.ProjectedHits, "")
		}
	}
	return t.String(), nil
}
