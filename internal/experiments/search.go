package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/workload"
)

// overtrainedPages runs the advisor without a budget and returns the
// size of the all-basic-candidates configuration, the sweep baseline.
func overtrainedPages(env *Env, w *workload.Workload) (int64, error) {
	opts := core.DefaultOptions()
	a := env.advisor(opts)
	rec, err := a.Recommend(w)
	if err != nil {
		return 0, err
	}
	var pages int64
	for _, c := range rec.Basics {
		pages += c.Pages()
	}
	if pages == 0 {
		pages = 1
	}
	return pages, nil
}

// E3GeneralizationDAG reproduces the candidate DAG view (paper Figure 4):
// the size and shape of the generalized candidate set and how each
// search algorithm traverses it.
func E3GeneralizationDAG(env *Env) (string, error) {
	var sb strings.Builder
	a := env.advisor(core.DefaultOptions())
	rec, err := a.Recommend(env.PaperWorkload)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "E3: candidate generalization DAG (Figure 4), paper workload\n")
	sb.WriteString(rec.DAG.Render())
	sb.WriteString("\nsearch traces:\n")

	for _, kind := range []core.SearchKind{core.SearchGreedyHeuristic, core.SearchTopDown} {
		opts := core.DefaultOptions()
		opts.Search = kind
		over, err := overtrainedPages(env, env.XMarkWorkload)
		if err != nil {
			return "", err
		}
		opts.DiskBudgetPages = over / 2
		a := env.advisor(opts)
		r, err := a.Recommend(env.XMarkWorkload)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "\n[%s] budget=%d pages -> %d indexes, %d pages, net %.1f\n",
			kind, opts.DiskBudgetPages, len(r.Config), r.TotalPages, r.NetBenefit)
		for _, line := range r.Trace {
			fmt.Fprintf(&sb, "  %s\n", line)
		}
	}
	return sb.String(), nil
}

// E4RecommendationAnalysis reproduces the recommendation analysis screen
// (paper Figure 5): per query, the original cost, the cost under the
// recommended configuration, and the cost under the overtrained
// configuration of all basic candidates.
func E4RecommendationAnalysis(env *Env) (string, error) {
	over, err := overtrainedPages(env, env.XMarkWorkload)
	if err != nil {
		return "", err
	}
	opts := core.DefaultOptions()
	opts.DiskBudgetPages = over / 2
	a := env.advisor(opts)
	rec, err := a.Recommend(env.XMarkWorkload)
	if err != nil {
		return "", err
	}
	t := newTable(fmt.Sprintf("E4: recommendation analysis (Figure 5) — budget %d pages, recommended %d pages",
		opts.DiskBudgetPages, rec.TotalPages),
		"query", "weight", "no-index", "recommended", "overtrained", "indexes")
	for _, qa := range rec.PerQuery {
		t.add(qa.ID, qa.Weight, qa.CostNoIndexes, qa.CostRecommended, qa.CostOvertrained,
			strings.Join(qa.IndexesUsed, ","))
	}
	var recTot, overTot, noTot float64
	for _, qa := range rec.PerQuery {
		noTot += qa.Weight * qa.CostNoIndexes
		recTot += qa.Weight * qa.CostRecommended
		overTot += qa.Weight * qa.CostOvertrained
	}
	return t.String() + fmt.Sprintf(
		"weighted totals: no-index %.1f, recommended %.1f (%.0f%% of max benefit), overtrained %.1f\n",
		noTot, recTot, pct(noTot-recTot, noTot-overTot), overTot), nil
}

func pct(x, of float64) float64 {
	if of == 0 {
		return 100
	}
	return 100 * x / of
}

// E5UnseenWorkload reproduces the demo's "add more queries beyond the
// input workload" analysis: train the advisor on a subset and measure
// benefit on held-out queries, with generalization on vs off — the
// argument for recommending generalized configurations.
func E5UnseenWorkload(env *Env) (string, error) {
	full := env.XMarkWorkload
	train, test := full.Split(0.6, 99)
	if len(train.Queries) == 0 || len(test.Queries) == 0 {
		return "", fmt.Errorf("degenerate split")
	}
	t := newTable("E5: benefit on unseen queries (train 60% / test 40%)",
		"search", "generalize", "#idx", "pages", "train benefit", "test benefit")
	for _, kind := range []core.SearchKind{core.SearchGreedyHeuristic, core.SearchTopDown} {
		for _, gen := range []bool{false, true} {
			opts := core.DefaultOptions()
			opts.Search = kind
			opts.Generalize = gen
			a := env.advisor(opts)
			rec, err := a.Recommend(train)
			if err != nil {
				return "", err
			}
			trainNo, trainWith, err := a.EvaluateOn(train, rec.Config)
			if err != nil {
				return "", err
			}
			testNo, testWith, err := a.EvaluateOn(test, rec.Config)
			if err != nil {
				return "", err
			}
			t.add(kind.String(), fmt.Sprint(gen), len(rec.Config), rec.TotalPages,
				trainNo-trainWith, testNo-testWith)
		}
	}
	return t.String(), nil
}

// E6SearchStrategies compares the three search algorithms across a disk
// budget sweep (paper §2.3): plain greedy [8] vs greedy with redundancy
// heuristics vs top-down, reporting net benefit and how many recommended
// indexes the optimizer never uses (redundant picks).
func E6SearchStrategies(env *Env) (string, error) {
	over, err := overtrainedPages(env, env.XMarkWorkload)
	if err != nil {
		return "", err
	}
	t := newTable("E6: search strategies across disk budgets (fractions of overtrained size)",
		"budget%", "search", "#idx", "pages", "net benefit", "#unused", "evals")
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		budget := int64(float64(over) * frac)
		if budget < 1 {
			budget = 1
		}
		for _, kind := range []core.SearchKind{core.SearchGreedyBasic, core.SearchGreedyHeuristic, core.SearchTopDown} {
			opts := core.DefaultOptions()
			opts.Search = kind
			opts.DiskBudgetPages = budget
			a := env.advisor(opts)
			rec, err := a.Recommend(env.XMarkWorkload)
			if err != nil {
				return "", err
			}
			used := map[string]bool{}
			for _, qa := range rec.PerQuery {
				for _, n := range qa.IndexesUsed {
					used[n] = true
				}
			}
			unused := len(rec.Config) - len(used)
			t.add(int(frac*100), kind.String(), len(rec.Config), rec.TotalPages, rec.NetBenefit, unused, rec.Evaluations)
		}
	}
	return t.String(), nil
}
