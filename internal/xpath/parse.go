package xpath

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/pattern"
	"repro/internal/sqltype"
)

// Parse parses a path expression such as
//
//	/site/regions/*/item[quantity > 5 and contains(name, "bike")]/name
//	//person[profile/@income >= 50000]
//	open_auctions/open_auction[initial > 100]   (relative)
//	.                                           (context node)
//
// String literals that parse as dates are typed DATE so date indexes can
// match them; numbers are DOUBLE; other strings are VARCHAR.
func Parse(src string) (*PathExpr, error) {
	lx, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: lx, src: src}
	expr, err := p.parsePath(true)
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, p.errf("trailing input at %q", p.peek().text)
	}
	return expr, nil
}

// MustParse parses src and panics on error, for tests and generators.
func MustParse(src string) *PathExpr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind uint8

const (
	tEOF tokKind = iota
	tSlash
	tDSlash
	tIdent  // name, possibly with : - . inside
	tAt     // @
	tStar   // *
	tLBrack // [
	tRBrack // ]
	tLParen // (
	tRParen // )
	tComma
	tDot
	tNumber
	tString
	tOp // = != < <= > >=
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/':
			if i+1 < len(src) && src[i+1] == '/' {
				toks = append(toks, token{tDSlash, "//", i})
				i += 2
			} else {
				toks = append(toks, token{tSlash, "/", i})
				i++
			}
		case c == '@':
			toks = append(toks, token{tAt, "@", i})
			i++
		case c == '*':
			toks = append(toks, token{tStar, "*", i})
			i++
		case c == '[':
			toks = append(toks, token{tLBrack, "[", i})
			i++
		case c == ']':
			toks = append(toks, token{tRBrack, "]", i})
			i++
		case c == '(':
			toks = append(toks, token{tLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tComma, ",", i})
			i++
		case c == '=':
			toks = append(toks, token{tOp, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("xpath: stray '!' at %d in %q", i, src)
			}
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tOp, op, i})
			i++
		case c == '\'' || c == '"':
			q := c
			j := i + 1
			for j < len(src) && src[j] != q {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("xpath: unterminated string at %d in %q", i, src)
			}
			toks = append(toks, token{tString, src[i+1 : j], i})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9'):
			j := i + 1
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tNumber, src[i:j], i})
			i = j
		case c == '.':
			toks = append(toks, token{tDot, ".", i})
			i++
		case isIdentStart(c):
			j := i + 1
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			toks = append(toks, token{tIdent, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("xpath: unexpected character %q at %d in %q", c, i, src)
		}
	}
	toks = append(toks, token{tEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c == '-' || c == '.' || c == ':' || (c >= '0' && c <= '9')
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) peek() token { return p.toks[p.pos] }

// next consumes one token, saturating at EOF so error paths that consume
// blindly can never index past the token slice.
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}
func (p *parser) atEnd() bool { return p.peek().kind == tEOF }
func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("xpath: %s (in %q)", fmt.Sprintf(format, args...), p.src)
}

// parsePath parses a path; top indicates a full path (which may be
// absolute). Inside predicates paths are relative.
func (p *parser) parsePath(top bool) (*PathExpr, error) {
	expr := &PathExpr{Relative: true}
	// "." alone.
	if p.peek().kind == tDot {
		p.next()
		expr.Dot = true
		if p.peek().kind == tSlash || p.peek().kind == tDSlash {
			// "./a/b": continue with relative steps.
			expr.Dot = false
		} else {
			return expr, nil
		}
	}
	first := true
	for {
		axis := pattern.Child
		switch p.peek().kind {
		case tSlash:
			p.next()
			if first {
				expr.Relative = false
			}
		case tDSlash:
			p.next()
			axis = pattern.Descendant
			if first {
				expr.Relative = false
			}
		default:
			if !first {
				return expr, nil
			}
			// Relative path starting directly with a name test.
		}
		st, err := p.parseStep(axis)
		if err != nil {
			if first && !expr.Relative {
				return nil, err
			}
			return nil, err
		}
		expr.Steps = append(expr.Steps, st)
		first = false
		if p.peek().kind != tSlash && p.peek().kind != tDSlash {
			return expr, nil
		}
	}
}

func (p *parser) parseStep(axis pattern.Axis) (Step, error) {
	st := Step{Axis: axis}
	switch t := p.peek(); t.kind {
	case tStar:
		p.next()
		st.Kind = pattern.TestElem
	case tAt:
		p.next()
		switch nt := p.peek(); nt.kind {
		case tStar:
			p.next()
			st.Kind = pattern.TestAttr
		case tIdent:
			p.next()
			st.Kind = pattern.TestAttr
			st.Name = nt.text
		default:
			return st, p.errf("expected attribute name after @")
		}
	case tIdent:
		p.next()
		if t.text == "text" && p.peek().kind == tLParen {
			p.next()
			if p.peek().kind != tRParen {
				return st, p.errf("expected ) after text(")
			}
			p.next()
			st.Kind = pattern.TestText
		} else {
			st.Kind = pattern.TestElem
			st.Name = t.text
		}
	default:
		return st, p.errf("expected step, found %q", t.text)
	}
	// Predicates.
	for p.peek().kind == tLBrack {
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return st, err
		}
		if p.peek().kind != tRBrack {
			return st, p.errf("expected ] after predicate")
		}
		p.next()
		st.Preds = append(st.Preds, e)
	}
	return st, nil
}

func (p *parser) parseOr() (BoolExpr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tIdent && p.peek().text == "or" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &OrExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (BoolExpr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tIdent && p.peek().text == "and" {
		p.next()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &AndExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parsePrimary() (BoolExpr, error) {
	t := p.peek()
	switch {
	case t.kind == tLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tRParen {
			return nil, p.errf("expected )")
		}
		p.next()
		return e, nil
	case t.kind == tIdent && t.text == "not" && p.toks[p.pos+1].kind == tLParen:
		p.next()
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tRParen {
			return nil, p.errf("expected ) after not(")
		}
		p.next()
		return &NotExpr{E: e}, nil
	case t.kind == tIdent && t.text == "contains" && p.toks[p.pos+1].kind == tLParen:
		p.next()
		p.next()
		path, err := p.parsePath(false)
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tComma {
			return nil, p.errf("expected , in contains()")
		}
		p.next()
		lit := p.next()
		if lit.kind != tString {
			return nil, p.errf("contains() needs a string literal")
		}
		if p.peek().kind != tRParen {
			return nil, p.errf("expected ) after contains()")
		}
		p.next()
		return &Comparison{
			Path:  path,
			Op:    sqltype.ContainsSubstr,
			Value: sqltype.Value{Type: sqltype.Varchar, S: lit.text},
		}, nil
	}
	// A relative path, optionally compared to a literal.
	path, err := p.parsePath(false)
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tOp {
		return &ExistsExpr{Path: path}, nil
	}
	opTok := p.next()
	op, err := parseOp(opTok.text)
	if err != nil {
		return nil, p.errf("%v", err)
	}
	lit := p.next()
	val, err := literalValue(lit)
	if err != nil {
		return nil, p.errf("%v", err)
	}
	return &Comparison{Path: path, Op: op, Value: val}, nil
}

func parseOp(s string) (sqltype.CmpOp, error) {
	switch s {
	case "=":
		return sqltype.Eq, nil
	case "!=":
		return sqltype.Ne, nil
	case "<":
		return sqltype.Lt, nil
	case "<=":
		return sqltype.Le, nil
	case ">":
		return sqltype.Gt, nil
	case ">=":
		return sqltype.Ge, nil
	}
	return sqltype.Eq, fmt.Errorf("unknown operator %q", s)
}

func literalValue(t token) (sqltype.Value, error) {
	switch t.kind {
	case tNumber:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return sqltype.Value{}, fmt.Errorf("bad number %q", t.text)
		}
		return sqltype.Value{Type: sqltype.Double, F: f}, nil
	case tString:
		// Date-shaped strings are typed DATE so DATE indexes can serve
		// the comparison; string order and date order agree for ISO
		// dates, so semantics are unchanged.
		if v, ok := sqltype.Cast(sqltype.Date, t.text); ok && looksLikeDate(t.text) {
			return v, nil
		}
		return sqltype.Value{Type: sqltype.Varchar, S: t.text}, nil
	}
	return sqltype.Value{}, fmt.Errorf("expected literal, found %q", t.text)
}

func looksLikeDate(s string) bool {
	s = strings.TrimSpace(s)
	return len(s) >= 10 && s[4] == '-' || len(s) >= 10 && s[4] == '/'
}
