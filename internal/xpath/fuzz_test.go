package xpath

import (
	"testing"

	"repro/internal/xmldoc"
)

// FuzzParse checks the path parser never panics and that accepted inputs
// have a stable rendering (String() reparses to the same String()).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"/site/regions/*/item[quantity > 5]/name",
		"//person[profile/@income >= 50000]",
		`//item[contains(name, "bike") and not(sold = 1)]`,
		"//a[b = 1 or c = 2][d]",
		".",
		"a/b/@c",
		"//item[@id = \"i1\"]",
		"/a[b = \"x\" and (c < 2 or d != 'y')]",
		"/a[text() = '1']",
		"//[]",
		"/a[",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		s1 := e.String()
		e2, err := Parse(s1)
		if err != nil {
			t.Fatalf("rendering %q of %q does not reparse: %v", s1, src, err)
		}
		if s2 := e2.String(); s1 != s2 {
			t.Fatalf("unstable rendering: %q -> %q -> %q", src, s1, s2)
		}
	})
}

// FuzzEval checks evaluation never panics on arbitrary (path, doc) pairs.
func FuzzEval(f *testing.F) {
	f.Add("/site//item[price > 5]/@id", `<site><regions><a><item id="1" price="9"/></a></regions></site>`)
	f.Add("//x[y or z]", `<x><y/></x>`)
	f.Add("//*[. = '']", `<a><b></b></a>`)
	f.Fuzz(func(t *testing.T, pathSrc, docSrc string) {
		e, err := Parse(pathSrc)
		if err != nil {
			return
		}
		d, err := xmldoc.ParseString(docSrc)
		if err != nil {
			return
		}
		Eval(d, e) // must not panic
	})
}
