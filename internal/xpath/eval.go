package xpath

import (
	"sort"

	"repro/internal/pattern"
	"repro/internal/sqltype"
	"repro/internal/xmldoc"
)

// Evaluator evaluates path expressions over documents and counts visited
// nodes, which the executor converts into CPU cost. The zero value is
// ready to use.
type Evaluator struct {
	// Visited counts node-test evaluations performed; it is the
	// navigation work a document scan pays.
	Visited int64
}

// Eval evaluates an absolute path expression over the document and
// returns the selected nodes in document order, without duplicates.
// Relative expressions are evaluated from the document root's parent
// (the virtual document node), which gives them absolute meaning too.
func (ev *Evaluator) Eval(d *xmldoc.Document, e *PathExpr) []*xmldoc.Node {
	if d.Root == nil {
		return nil
	}
	virtual := &xmldoc.Node{Kind: xmldoc.KindElement, Name: "#document", Children: []*xmldoc.Node{d.Root}}
	if e.Dot {
		return []*xmldoc.Node{d.Root}
	}
	return ev.evalSteps([]*xmldoc.Node{virtual}, e.Steps)
}

// EvalFrom evaluates a relative path expression from a context node.
func (ev *Evaluator) EvalFrom(ctx *xmldoc.Node, e *PathExpr) []*xmldoc.Node {
	if e.Dot {
		return []*xmldoc.Node{ctx}
	}
	return ev.evalSteps([]*xmldoc.Node{ctx}, e.Steps)
}

func (ev *Evaluator) evalSteps(ctxs []*xmldoc.Node, steps []Step) []*xmldoc.Node {
	cur := ctxs
	for si := range steps {
		st := &steps[si]
		var next []*xmldoc.Node
		seen := map[*xmldoc.Node]struct{}{}
		emit := func(n *xmldoc.Node) {
			ev.Visited++
			if !matchTest(st, n) {
				return
			}
			for _, pr := range st.Preds {
				if !ev.evalPred(n, pr) {
					return
				}
			}
			if _, dup := seen[n]; dup {
				return
			}
			seen[n] = struct{}{}
			next = append(next, n)
		}
		for _, c := range cur {
			if st.Axis == pattern.Child {
				switch st.Kind {
				case pattern.TestAttr:
					for _, a := range c.Attrs {
						emit(a)
					}
				default:
					for _, ch := range c.Children {
						emit(ch)
					}
				}
				continue
			}
			// Descendant axis: everything strictly below c, including
			// c's own attributes (matching the pattern semantics where
			// a descendant gap may be empty).
			walkBelow(c, emit)
		}
		// Document order (IDs are pre-order within one document; the
		// virtual document node has ID 0 like the root but never
		// appears in results).
		sort.Slice(next, func(i, j int) bool { return next[i].ID < next[j].ID })
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

func walkBelow(c *xmldoc.Node, emit func(*xmldoc.Node)) {
	for _, a := range c.Attrs {
		emit(a)
	}
	for _, ch := range c.Children {
		emit(ch)
		if ch.Kind == xmldoc.KindElement {
			walkBelow(ch, emit)
		}
	}
}

func matchTest(st *Step, n *xmldoc.Node) bool {
	switch st.Kind {
	case pattern.TestElem:
		return n.Kind == xmldoc.KindElement && (st.Name == "" || st.Name == n.Name)
	case pattern.TestAttr:
		return n.Kind == xmldoc.KindAttribute && (st.Name == "" || st.Name == n.Name)
	case pattern.TestText:
		return n.Kind == xmldoc.KindText
	}
	return false
}

// NodeValue returns the comparable raw value of a node: text content for
// elements, value for attributes and text nodes.
func NodeValue(n *xmldoc.Node) string {
	switch n.Kind {
	case xmldoc.KindElement:
		return n.Text()
	default:
		return n.Value
	}
}

func (ev *Evaluator) evalPred(ctx *xmldoc.Node, e BoolExpr) bool {
	switch x := e.(type) {
	case *AndExpr:
		return ev.evalPred(ctx, x.L) && ev.evalPred(ctx, x.R)
	case *OrExpr:
		return ev.evalPred(ctx, x.L) || ev.evalPred(ctx, x.R)
	case *NotExpr:
		return !ev.evalPred(ctx, x.E)
	case *ExistsExpr:
		return len(ev.EvalFrom(ctx, x.Path)) > 0
	case *Comparison:
		for _, n := range ev.EvalFrom(ctx, x.Path) {
			if sqltype.Eval(NodeValue(n), x.Op, x.Value) {
				return true
			}
		}
		return false
	}
	return false
}

// Eval is a convenience one-shot evaluation without visit accounting.
func Eval(d *xmldoc.Document, e *PathExpr) []*xmldoc.Node {
	var ev Evaluator
	return ev.Eval(d, e)
}

// EvalString parses and evaluates src against the document.
func EvalString(d *xmldoc.Document, src string) ([]*xmldoc.Node, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Eval(d, e), nil
}
