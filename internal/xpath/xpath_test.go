package xpath

import (
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/sqltype"
	"repro/internal/xmldoc"
)

const auctionDoc = `<site>
  <regions>
    <namerica>
      <item id="i1"><name>Mountain bike</name><quantity>5</quantity><price>120.50</price></item>
      <item id="i2"><name>Tortoise</name><quantity>1</quantity><price>15</price></item>
    </namerica>
    <africa>
      <item id="i3"><name>Mask</name><quantity>12</quantity><price>30</price></item>
    </africa>
  </regions>
  <people>
    <person id="p1"><name>Alice</name><profile income="65000"><interest category="c1"/></profile></person>
    <person id="p2"><name>Bob</name><profile income="30000"><interest category="c2"/></profile></person>
  </people>
  <open_auctions>
    <open_auction id="a1"><initial>100</initial><current>180</current><enddate>2008-06-15</enddate></open_auction>
    <open_auction id="a2"><initial>20</initial><current>25</current><enddate>2008-07-01</enddate></open_auction>
  </open_auctions>
</site>`

func doc(t testing.TB) *xmldoc.Document {
	t.Helper()
	d, err := xmldoc.ParseString(auctionDoc)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func names(ns []*xmldoc.Node) []string {
	var out []string
	for _, n := range ns {
		out = append(out, n.Name)
	}
	return out
}

func TestParseString(t *testing.T) {
	cases := []struct {
		in   string
		want string // round-tripped form; "" = same
	}{
		{"/site/regions/namerica/item", ""},
		{"//item", ""},
		{"/site//item/@id", ""},
		{"/site/regions/*/item", ""},
		{"//item[quantity > 5]", ""},
		{"//item[quantity > 5 and price < 100]", "//item[(quantity > 5 and price < 100)]"},
		{"//person[profile/@income >= 50000]", ""},
		{`//item[contains(name, "bike")]`, ""},
		{"//item[not(quantity = 1)]", ""},
		{"open_auction/initial", ""},
		{".", ""},
		{"//item[quantity]", ""},
		{"//item[quantity = 5 or quantity = 12]", "//item[(quantity = 5 or quantity = 12)]"},
		// Date literals render unquoted in ISO form.
		{"//auction[enddate > \"2008-06-20\"]", "//auction[enddate > 2008-06-20]"},
	}
	for _, tc := range cases {
		e, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		want := tc.want
		if want == "" {
			want = tc.in
		}
		got := e.String()
		// Normalize quotes for comparison (we render with %q-ish quoting).
		got = strings.ReplaceAll(got, `"`, `"`)
		if got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"/site/",
		"//",
		"/site/item[",
		"/site/item[quantity >]",
		"/site/item[quantity > 'x]",
		"/site/item]",
		"/site/item[contains(name)]",
		"/site/item[contains(name, 5)]",
		"/site/item[not(quantity]",
		"/a!b",
		"/a[b = ]",
		"/a[(b = 1]",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestEvalSimplePaths(t *testing.T) {
	d := doc(t)
	cases := []struct {
		path string
		n    int
	}{
		{"/site", 1},
		{"/site/regions/namerica/item", 2},
		{"/site/regions/*/item", 3},
		{"//item", 3},
		{"//item/@id", 3},
		{"//@id", 7},
		{"/site//name", 5},
		{"//name/text()", 5},
		{"/nosuch", 0},
		{"//person/profile/interest/@category", 2},
		{"/site/regions//item", 3},
	}
	for _, tc := range cases {
		got, err := EvalString(d, tc.path)
		if err != nil {
			t.Errorf("EvalString(%q): %v", tc.path, err)
			continue
		}
		if len(got) != tc.n {
			t.Errorf("Eval(%q) = %d nodes, want %d", tc.path, len(got), tc.n)
		}
	}
}

func TestEvalPredicates(t *testing.T) {
	d := doc(t)
	cases := []struct {
		path string
		n    int
	}{
		{"//item[quantity > 4]", 2},
		{"//item[quantity > 4 and price < 100]", 1},
		{"//item[quantity = 1 or quantity = 12]", 2},
		{"//item[not(quantity = 1)]", 2},
		{`//item[contains(name, "bike")]`, 1},
		{"//person[profile/@income >= 50000]", 1},
		{"//item[quantity]", 3},
		{"//item[nosub]", 0},
		{"//open_auction[initial >= 100][current > 150]", 1},
		{"//open_auction[enddate > \"2008-06-20\"]", 1},
		{"//item[quantity > 100]", 0},
		{"//item[price >= 15 and price <= 40]", 2},
		{"//item[name = \"Mask\"]", 1},
		{"//item[quantity != 1]", 2},
	}
	for _, tc := range cases {
		got, err := EvalString(d, tc.path)
		if err != nil {
			t.Errorf("EvalString(%q): %v", tc.path, err)
			continue
		}
		if len(got) != tc.n {
			t.Errorf("Eval(%q) = %d nodes, want %d", tc.path, len(got), tc.n)
		}
	}
}

func TestEvalDotPredicate(t *testing.T) {
	d := doc(t)
	got, err := EvalString(d, "//quantity[. > 4]")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("//quantity[. > 4] = %d, want 2", len(got))
	}
}

func TestEvalDocumentOrderAndDedup(t *testing.T) {
	d := doc(t)
	got, _ := EvalString(d, "//item")
	for i := 1; i < len(got); i++ {
		if got[i-1].ID >= got[i].ID {
			t.Fatal("results not in document order")
		}
	}
	// //*//name could reach the same name via multiple ancestors.
	got, _ = EvalString(d, "//*//name")
	seen := map[*xmldoc.Node]bool{}
	for _, n := range got {
		if seen[n] {
			t.Fatal("duplicate node in results")
		}
		seen[n] = true
	}
}

func TestEvalFromRelative(t *testing.T) {
	d := doc(t)
	items, _ := EvalString(d, "//item")
	rel := MustParse("name")
	var ev Evaluator
	for _, it := range items {
		got := ev.EvalFrom(it, rel)
		if len(got) != 1 {
			t.Errorf("item %v: name eval = %d nodes", it.AttrNode("id"), len(got))
		}
	}
	dot := MustParse(".")
	if got := ev.EvalFrom(items[0], dot); len(got) != 1 || got[0] != items[0] {
		t.Error("dot eval should return the context node")
	}
}

func TestEvaluatorCountsVisits(t *testing.T) {
	d := doc(t)
	var ev Evaluator
	ev.Eval(d, MustParse("//item[quantity > 4]"))
	if ev.Visited == 0 {
		t.Error("Visited not counted")
	}
}

func TestAttrDescendantSemantics(t *testing.T) {
	d := xmldoc.MustParse(`<a id="x"><b id="y"><c id="z"/></b></a>`)
	got, _ := EvalString(d, "/a//@id")
	// /a//@id includes a's own @id (empty descendant gap) plus b's and c's.
	if len(got) != 3 {
		t.Errorf("/a//@id = %d, want 3", len(got))
	}
	got, _ = EvalString(d, "/a//c")
	if len(got) != 1 {
		t.Errorf("/a//c = %d, want 1", len(got))
	}
	got, _ = EvalString(d, "/a//a")
	if len(got) != 0 {
		t.Errorf("/a//a = %d, want 0 (descendant is strictly below)", len(got))
	}
}

func TestLinearPatternAndAppendTo(t *testing.T) {
	e := MustParse("/site/regions/*/item[quantity > 5]/name")
	p := e.LinearPattern()
	if p.String() != "/site/regions/*/item/name" {
		t.Errorf("LinearPattern = %q", p)
	}
	rel := MustParse("profile/@income")
	base := pattern.MustParse("/site/people/person")
	full := rel.AppendTo(base)
	if full.String() != "/site/people/person/profile/@income" {
		t.Errorf("AppendTo = %q", full)
	}
	dot := MustParse(".")
	if got := dot.AppendTo(base); got.String() != base.String() {
		t.Errorf("dot AppendTo = %q", got)
	}
}

func TestHasPredicates(t *testing.T) {
	if MustParse("/a/b").HasPredicates() {
		t.Error("no predicates expected")
	}
	if !MustParse("/a[x = 1]/b").HasPredicates() {
		t.Error("predicate expected")
	}
}

func TestEvalAgainstPatternMatching(t *testing.T) {
	// Cross-check: for predicate-free absolute paths, the evaluator and
	// the pattern matcher must agree on every node of the document.
	d := doc(t)
	for _, expr := range []string{"/site/regions/namerica/item", "//item", "//item/@id", "/site//name", "//*", "/site/*"} {
		e := MustParse(expr)
		p := e.LinearPattern()
		m := pattern.Compile(p)
		want := map[*xmldoc.Node]bool{}
		d.Walk(func(n *xmldoc.Node) bool {
			if m.MatchPath(n.RootPath()) {
				want[n] = true
			}
			return true
		})
		got := Eval(d, e)
		if len(got) != len(want) {
			t.Errorf("%s: eval %d nodes, matcher %d", expr, len(got), len(want))
			continue
		}
		for _, n := range got {
			if !want[n] {
				t.Errorf("%s: eval selected %s which matcher rejects", expr, n.RootPath())
			}
		}
	}
}

func TestComparisonStringRendering(t *testing.T) {
	e := MustParse(`//item[contains(name, "bike") and price <= 10]`)
	s := e.String()
	if !strings.Contains(s, "contains(name") || !strings.Contains(s, "price <= 10") {
		t.Errorf("rendered: %s", s)
	}
}

func TestDateLiteralTyping(t *testing.T) {
	e := MustParse(`//open_auction[enddate > "2008-06-20"]`)
	cmp := e.Steps[0].Preds[0].(*Comparison)
	if cmp.Value.Type != sqltype.Date {
		t.Errorf("date literal typed %v", cmp.Value.Type)
	}
	e2 := MustParse(`//item[name = "Mask"]`)
	cmp2 := e2.Steps[0].Preds[0].(*Comparison)
	if cmp2.Value.Type != sqltype.Varchar {
		t.Errorf("string literal typed %v", cmp2.Value.Type)
	}
}
