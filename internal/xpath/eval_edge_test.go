package xpath

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/xmldoc"
)

func TestEvalAttributePredicates(t *testing.T) {
	d := xmldoc.MustParse(`<site>
	  <item id="i1" featured="yes"><price>10</price></item>
	  <item id="i2"><price>20</price></item>
	  <item id="i3" featured="no"><price>30</price></item>
	</site>`)
	cases := []struct {
		path string
		n    int
	}{
		{`//item[@id = "i2"]`, 1},
		{`//item[@featured]`, 2},
		{`//item[@featured = "yes"]`, 1},
		{`//item[@nosuch]`, 0},
		{`//item[@id != "i1"]`, 2},
		{`//item[@featured and price > 5]`, 2},
	}
	for _, tc := range cases {
		got, err := EvalString(d, tc.path)
		if err != nil {
			t.Errorf("%s: %v", tc.path, err)
			continue
		}
		if len(got) != tc.n {
			t.Errorf("%s = %d nodes, want %d", tc.path, len(got), tc.n)
		}
	}
}

func TestEvalWildcardSteps(t *testing.T) {
	d := xmldoc.MustParse(`<a><b><x>1</x></b><c><x>2</x></c><d><y>3</y></d></a>`)
	got, _ := EvalString(d, "/a/*/x")
	if len(got) != 2 {
		t.Errorf("/a/*/x = %d, want 2", len(got))
	}
	got, _ = EvalString(d, "/a/*[x]")
	if len(got) != 2 {
		t.Errorf("/a/*[x] = %d, want 2", len(got))
	}
	got, _ = EvalString(d, "/*/*")
	if len(got) != 3 {
		t.Errorf("/*/* = %d, want 3", len(got))
	}
}

func TestEvalEmptyAndDegenerateDocs(t *testing.T) {
	d := &xmldoc.Document{}
	if got := Eval(d, MustParse("//a")); got != nil {
		t.Errorf("eval on empty doc = %v", got)
	}
	single := xmldoc.MustParse(`<only/>`)
	if got := Eval(single, MustParse("/only")); len(got) != 1 {
		t.Error("root-only doc broken")
	}
	if got := Eval(single, MustParse("//only")); len(got) != 1 {
		t.Error("descendant to root broken")
	}
}

func TestEvalDeepDocument(t *testing.T) {
	depth := 300
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&sb, "<n%d>", i)
	}
	sb.WriteString("<leaf>v</leaf>")
	for i := depth - 1; i >= 0; i-- {
		fmt.Fprintf(&sb, "</n%d>", i)
	}
	d, err := xmldoc.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := EvalString(d, "//leaf")
	if len(got) != 1 {
		t.Errorf("deep //leaf = %d", len(got))
	}
	got, _ = EvalString(d, "//leaf[. = \"v\"]")
	if len(got) != 1 {
		t.Errorf("deep predicate = %d", len(got))
	}
}

func TestEvalRecursiveElementNames(t *testing.T) {
	// parts nested inside parts: descendant queries must find all, and
	// dedup must hold when multiple context ancestors reach the same node.
	d := xmldoc.MustParse(`<part name="a"><part name="b"><part name="c"/></part></part>`)
	got, _ := EvalString(d, "//part")
	if len(got) != 3 {
		t.Errorf("//part = %d, want 3", len(got))
	}
	got, _ = EvalString(d, "//part//part")
	if len(got) != 2 {
		t.Errorf("//part//part = %d, want 2 (b and c)", len(got))
	}
	got, _ = EvalString(d, "/part/part/part")
	if len(got) != 1 {
		t.Errorf("/part/part/part = %d, want 1", len(got))
	}
}

func TestEvalOrPrecedence(t *testing.T) {
	d := xmldoc.MustParse(`<r><i><a>1</a></i><i><b>1</b><c>1</c></i><i><c>1</c></i></r>`)
	// a or (b and c): items 1 and 2.
	got, _ := EvalString(d, "//i[a or b and c]")
	if len(got) != 2 {
		t.Errorf("a or b and c = %d, want 2", len(got))
	}
	// (a or b) and c: item 2 only.
	got, _ = EvalString(d, "//i[(a or b) and c]")
	if len(got) != 1 {
		t.Errorf("(a or b) and c = %d, want 1", len(got))
	}
}

func TestEvalTextNodes(t *testing.T) {
	d := xmldoc.MustParse(`<r><a>one</a><a><b>two</b></a></r>`)
	got, _ := EvalString(d, "//a/text()")
	if len(got) != 1 {
		t.Errorf("//a/text() = %d, want 1 (only direct text)", len(got))
	}
	got, _ = EvalString(d, "//text()")
	if len(got) != 2 {
		t.Errorf("//text() = %d, want 2", len(got))
	}
}

func TestEvalNumericStringCoercion(t *testing.T) {
	d := xmldoc.MustParse(`<r><v>007</v><v>7</v><v>seven</v></r>`)
	got, _ := EvalString(d, "//v[. = 7]")
	if len(got) != 2 {
		t.Errorf("numeric comparison should coerce: %d, want 2", len(got))
	}
	got, _ = EvalString(d, `//v[. = "7"]`)
	if len(got) != 1 {
		t.Errorf("string comparison is exact: %d, want 1", len(got))
	}
}
