// Package xpath implements the XPath subset used by the query front ends
// and the executor: linear location paths with child/descendant axes,
// element/attribute/text node tests, and predicates built from value
// comparisons, existence tests, contains(), and/or/not.
//
// This is the fragment DB2's XML index matching understands (reference [1]
// of the paper); richer XPath/XQuery features exist in the language but
// cannot use value indexes, so the advisor never sees them.
package xpath

import (
	"fmt"
	"strings"

	"repro/internal/pattern"
	"repro/internal/sqltype"
)

// Step is one location step, with optional predicates.
type Step struct {
	Axis  pattern.Axis
	Kind  pattern.TestKind
	Name  string // empty = wildcard for element/attribute tests
	Preds []BoolExpr
}

// PathExpr is a linear location path. Relative paths (no leading slash)
// are evaluated from a context node; absolute paths from the document.
type PathExpr struct {
	Relative bool
	Steps    []Step
	// Dot marks the path "." (the context node itself; Steps empty).
	Dot bool
}

// BoolExpr is a predicate expression.
type BoolExpr interface {
	exprNode()
	String() string
}

// Comparison compares the value of a relative path (or ".") against a
// typed literal, with XPath existential semantics: true if any node
// selected by Path satisfies the comparison.
type Comparison struct {
	Path  *PathExpr
	Op    sqltype.CmpOp
	Value sqltype.Value
}

// ExistsExpr is a bare relative path used as a predicate: true if the
// path selects at least one node.
type ExistsExpr struct {
	Path *PathExpr
}

// AndExpr is a conjunction.
type AndExpr struct{ L, R BoolExpr }

// OrExpr is a disjunction.
type OrExpr struct{ L, R BoolExpr }

// NotExpr is a negation: not(expr).
type NotExpr struct{ E BoolExpr }

func (*Comparison) exprNode() {}
func (*ExistsExpr) exprNode() {}
func (*AndExpr) exprNode()    {}
func (*OrExpr) exprNode()     {}
func (*NotExpr) exprNode()    {}

// String renders the comparison in query syntax.
func (c *Comparison) String() string {
	if c.Op == sqltype.ContainsSubstr {
		return fmt.Sprintf("contains(%s, %s)", c.Path, quoteValue(c.Value))
	}
	return fmt.Sprintf("%s %s %s", c.Path, c.Op, quoteValue(c.Value))
}

// quoteValue renders a literal in the query language's own syntax. The
// language has no escape sequences: a string literal is delimited by
// whichever quote character it does not contain. Literals obtained by
// parsing always satisfy that (the source delimiter cannot appear
// inside), so parsed expressions render reparseably; only hand-built
// values containing both quote kinds fall back to Go quoting, which is
// for display only.
func quoteValue(v sqltype.Value) string {
	if v.Type != sqltype.Varchar {
		return v.String()
	}
	if !strings.Contains(v.S, `"`) {
		return `"` + v.S + `"`
	}
	if !strings.Contains(v.S, "'") {
		return "'" + v.S + "'"
	}
	return fmt.Sprintf("%q", v.S)
}

// String renders the existence test.
func (e *ExistsExpr) String() string { return e.Path.String() }

// String renders the conjunction.
func (a *AndExpr) String() string { return fmt.Sprintf("(%s and %s)", a.L, a.R) }

// String renders the disjunction.
func (o *OrExpr) String() string { return fmt.Sprintf("(%s or %s)", o.L, o.R) }

// String renders the negation.
func (n *NotExpr) String() string { return fmt.Sprintf("not(%s)", n.E) }

// String renders the path in query syntax, including predicates.
func (p *PathExpr) String() string {
	if p.Dot {
		return "."
	}
	var sb strings.Builder
	for i, st := range p.Steps {
		sep := "/"
		if st.Axis == pattern.Descendant {
			sep = "//"
		}
		if i == 0 && p.Relative {
			if st.Axis == pattern.Child {
				sep = ""
			}
		}
		sb.WriteString(sep)
		sb.WriteString((pattern.Step{Axis: st.Axis, Kind: st.Kind, Name: st.Name}).String())
		for _, pr := range st.Preds {
			sb.WriteByte('[')
			sb.WriteString(pr.String())
			sb.WriteByte(']')
		}
	}
	return sb.String()
}

// LinearPattern strips predicates and returns the pattern of the path's
// own steps. For relative paths the pattern is rooted at the (caller-
// provided) context; use pattern.Pattern concatenation via AppendTo.
func (p *PathExpr) LinearPattern() pattern.Pattern {
	return p.AppendTo(pattern.Pattern{})
}

// AppendTo appends this path's steps to a prefix pattern, producing the
// absolute pattern of the nodes the path selects when evaluated from
// nodes matching the prefix. A "." path returns the prefix unchanged.
func (p *PathExpr) AppendTo(prefix pattern.Pattern) pattern.Pattern {
	if p.Dot {
		return prefix
	}
	steps := make([]pattern.Step, 0, prefix.Len()+len(p.Steps))
	steps = append(steps, prefix.Steps...)
	for _, st := range p.Steps {
		steps = append(steps, pattern.Step{Axis: st.Axis, Kind: st.Kind, Name: st.Name})
	}
	return pattern.Pattern{Steps: steps}
}

// HasPredicates reports whether any step carries a predicate.
func (p *PathExpr) HasPredicates() bool {
	for _, st := range p.Steps {
		if len(st.Preds) > 0 {
			return true
		}
	}
	return false
}
