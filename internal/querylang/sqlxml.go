package querylang

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
)

// ParseSQLXML parses the SQL/XML subset:
//
//	SELECT XMLQUERY('$d/site/item/name' PASSING doc AS "d")
//	FROM items
//	WHERE XMLEXISTS('$d/site/item[price > 100]' PASSING doc AS "d")
//	  AND XMLEXISTS('$d/site/item[quantity > 5]' PASSING doc AS "d")
//
// The embedded XPath strings carry the index-relevant patterns; the
// PASSING clause and the relational select list are recognized but
// otherwise ignored, exactly as DB2's XML index matching only inspects
// the XMLEXISTS/XMLQUERY arguments [1].
//
// The first XMLEXISTS becomes the query binding; additional XMLEXISTS
// conjuncts become document-level conditions. Result semantics are
// per-document (SQL rows).
func ParseSQLXML(text string) (*Query, error) {
	q := &Query{Text: text, Lang: LangSQLXML, PerDocument: true}

	table, err := sqlFromTable(text)
	if err != nil {
		return nil, err
	}
	q.Collection = table

	exists, err := sqlEmbeddedPaths(text, "XMLEXISTS")
	if err != nil {
		return nil, err
	}
	queries, err := sqlEmbeddedPaths(text, "XMLQUERY")
	if err != nil {
		return nil, err
	}
	if len(exists) == 0 && len(queries) == 0 {
		return nil, fmt.Errorf("querylang: SQL statement has no XMLEXISTS or XMLQUERY: %q", text)
	}
	for i, src := range exists {
		e, err := parseDollarPath(src)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			q.Binding = e
		} else {
			q.DocConds = append(q.DocConds, e)
		}
	}
	for _, src := range queries {
		e, err := parseDollarPath(src)
		if err != nil {
			return nil, err
		}
		if q.Binding == nil {
			q.Binding = e
			continue
		}
		q.DocReturns = append(q.DocReturns, e)
	}
	if strings.Contains(asciiUpper(text), "COUNT(") {
		q.Aggregate = true
	}
	return q, nil
}

// asciiUpper upper-cases ASCII letters byte-wise. Unlike strings.ToUpper
// it never changes the byte length (invalid UTF-8 would otherwise grow
// into replacement runes), so offsets computed on the result are valid
// in the original text.
func asciiUpper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// sqlFromTable extracts the table name following FROM.
func sqlFromTable(text string) (string, error) {
	upper := asciiUpper(text)
	i := indexWord(upper, "FROM")
	if i < 0 {
		return "", fmt.Errorf("querylang: SQL statement lacks FROM: %q", text)
	}
	rest := strings.TrimSpace(text[i+len("FROM"):])
	end := 0
	for end < len(rest) && (isIdentChar(rest[end]) || rest[end] == '_') {
		end++
	}
	if end == 0 {
		return "", fmt.Errorf("querylang: cannot parse table name after FROM: %q", text)
	}
	return rest[:end], nil
}

// indexWord finds a whole-word occurrence of w (already upper-cased
// haystack) outside quoted strings.
func indexWord(upper, w string) int {
	inQuote := byte(0)
	for i := 0; i+len(w) <= len(upper); i++ {
		c := upper[i]
		if inQuote != 0 {
			if c == inQuote {
				inQuote = 0
			}
			continue
		}
		if c == '\'' || c == '"' {
			inQuote = c
			continue
		}
		if upper[i:i+len(w)] == w {
			beforeOK := i == 0 || !isIdentChar(upper[i-1])
			afterOK := i+len(w) == len(upper) || !isIdentChar(upper[i+len(w)])
			if beforeOK && afterOK {
				return i
			}
		}
	}
	return -1
}

// sqlEmbeddedPaths extracts the single-quoted first argument of every
// fn(...) occurrence (fn = XMLEXISTS or XMLQUERY), case-insensitively.
func sqlEmbeddedPaths(text, fn string) ([]string, error) {
	var out []string
	upper := asciiUpper(text)
	for i := 0; ; {
		j := strings.Index(upper[i:], fn+"(")
		if j < 0 {
			// Allow whitespace before the paren.
			j = strings.Index(upper[i:], fn+" (")
			if j < 0 {
				break
			}
		}
		at := i + j + len(fn)
		// Skip to the opening quote.
		k := strings.IndexByte(text[at:], '\'')
		if k < 0 {
			return nil, fmt.Errorf("querylang: %s without quoted XPath in %q", fn, text)
		}
		start := at + k + 1
		end := strings.IndexByte(text[start:], '\'')
		if end < 0 {
			return nil, fmt.Errorf("querylang: unterminated XPath string in %q", text)
		}
		out = append(out, text[start:start+end])
		i = start + end + 1
	}
	return out, nil
}

// parseDollarPath parses an embedded XPath of the form $var/absolute/path
// (the conventional PASSING variable prefix) or a bare absolute path.
func parseDollarPath(src string) (*xpath.PathExpr, error) {
	s := strings.TrimSpace(src)
	if strings.HasPrefix(s, "$") {
		i := 1
		for i < len(s) && isIdentChar(s[i]) {
			i++
		}
		s = s[i:]
	}
	if s == "" {
		return nil, fmt.Errorf("querylang: empty XPath in %q", src)
	}
	if !strings.HasPrefix(s, "/") {
		s = "/" + s
	}
	e, err := xpath.Parse(s)
	if err != nil {
		return nil, fmt.Errorf("querylang: embedded XPath: %w", err)
	}
	return e, nil
}
