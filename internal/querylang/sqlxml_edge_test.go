package querylang

import (
	"strings"
	"testing"
)

func TestSQLXMLCaseInsensitiveKeywords(t *testing.T) {
	q, err := ParseSQLXML(`select count(*) from Orders where xmlexists ('$d/FIXML/Order[@Acct = "123"]' passing doc as "d")`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Collection != "Orders" {
		t.Errorf("Collection = %q", q.Collection)
	}
	if !q.Aggregate {
		t.Error("COUNT should set Aggregate")
	}
	joined := strings.Join(legStrings(q), "\n")
	if !strings.Contains(joined, `/FIXML/Order/@Acct = "123"`) {
		t.Errorf("legs:\n%s", joined)
	}
}

func TestSQLXMLQueryOnlyBecomesBinding(t *testing.T) {
	q, err := ParseSQLXML(`SELECT XMLQUERY('$d/site/item/name' PASSING doc AS "d") FROM items`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Binding == nil || q.Binding.String() != "/site/item/name" {
		t.Errorf("Binding = %v", q.Binding)
	}
	if len(q.DocReturns) != 0 {
		t.Errorf("DocReturns = %d", len(q.DocReturns))
	}
}

func TestSQLXMLBarePathWithoutDollar(t *testing.T) {
	q, err := ParseSQLXML(`SELECT 1 FROM items WHERE XMLEXISTS('/site/item[price > 3]' PASSING doc AS "d")`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Binding.String() != "/site/item[price > 3]" {
		t.Errorf("Binding = %q", q.Binding)
	}
}

func TestSQLXMLFromInsideStringIgnored(t *testing.T) {
	// The word FROM inside a quoted string must not be taken as the
	// table clause.
	q, err := ParseSQLXML(`SELECT 'select from nowhere' FROM items WHERE XMLEXISTS('$d/a/b' PASSING doc AS "d")`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Collection != "items" {
		t.Errorf("Collection = %q", q.Collection)
	}
}

func TestSQLXMLDateLiteralInsidePredicate(t *testing.T) {
	q, err := ParseSQLXML(`SELECT 1 FROM auction WHERE XMLEXISTS('$d/site/closed_auctions/closed_auction[date >= "2008-01-01"]' PASSING doc AS "d")`)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(legStrings(q), "\n")
	if !strings.Contains(joined, "date >= 2008-01-01") {
		t.Errorf("date leg missing:\n%s", joined)
	}
}

func TestXQueryWhitespaceAndNewlines(t *testing.T) {
	q, err := ParseXQuery("for $i in collection(\"items\")/site/item\n\twhere\n\t$i/price > 5\nreturn\n\t$i/name")
	if err != nil {
		t.Fatal(err)
	}
	if q.Binding.String() != "/site/item" {
		t.Errorf("Binding = %q", q.Binding)
	}
}

func TestXQueryDocFunction(t *testing.T) {
	q, err := ParseXQuery(`for $i in doc("items")/site/item return $i`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Collection != "items" {
		t.Errorf("doc() collection = %q", q.Collection)
	}
}

func TestXQueryBindingPredicateWithContains(t *testing.T) {
	q, err := ParseXQuery(`for $i in collection("c")/site/item[contains(name, "bike") and price < 9] return $i`)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(legStrings(q), "\n")
	for _, want := range []string{`contains`, "price < 9"} {
		if !strings.Contains(joined, want) {
			t.Errorf("legs missing %q:\n%s", want, joined)
		}
	}
}

func TestXQueryAttributeReturn(t *testing.T) {
	q, err := ParseXQuery(`for $o in collection("order")/FIXML/Order where $o/OrdQty/@Qty > 100 return $o/@ID`)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(legStrings(q), "\n")
	if !strings.Contains(joined, "/FIXML/Order/@ID (output)") {
		t.Errorf("attribute return leg missing:\n%s", joined)
	}
	if !strings.Contains(joined, "/FIXML/Order/OrdQty/@Qty > 100") {
		t.Errorf("attribute predicate leg missing:\n%s", joined)
	}
}

func TestXQueryTextLegNormalizedToParent(t *testing.T) {
	q, err := ParseXQuery(`for $i in collection("c")/a/b where $i/c/text() = "x" return $i`)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(legStrings(q), "\n")
	if strings.Contains(joined, "text()") {
		t.Errorf("text() leg not normalized:\n%s", joined)
	}
	if !strings.Contains(joined, `/a/b/c = "x"`) {
		t.Errorf("normalized element leg missing:\n%s", joined)
	}
}
