package querylang

import (
	"fmt"
	"strings"

	"repro/internal/sqltype"
	"repro/internal/xpath"
)

// ParseXQuery parses the FLWOR subset:
//
//	for $i in collection("items")/site/regions/*/item[price > 100]
//	for $b in $i/bidder
//	let $q := $i/quantity
//	where $q > 5 and contains($i/name, "bike")
//	return ($i/name, $b/increase)
//
// Supported: any number of for/let clauses (later vars bind relative to
// earlier ones), one optional where clause (and/or/not/contains/
// comparisons over var-rooted paths), and a return clause of var-rooted
// paths, a parenthesized sequence, count(...), data(...), or an element
// constructor whose {...} holes contain var-rooted paths.
//
// Restrictions (documented in DESIGN.md): paths in where/return clauses
// may not carry their own [...] predicates (put those in the binding
// path), and order by / group by clauses are not supported. These
// features would not produce additional index candidates anyway — DB2's
// index matching ignores them too.
func ParseXQuery(text string) (*Query, error) {
	p := &xqParser{src: text}
	if err := p.lex(); err != nil {
		return nil, err
	}
	q, err := p.parse()
	if err != nil {
		return nil, err
	}
	q.Text = text
	q.Lang = LangXQuery
	return q, nil
}

type xqTok struct {
	kind xqKind
	text string
	pos  int // byte offset in src
	end  int
}

type xqKind uint8

const (
	xqEOF xqKind = iota
	xqIdent
	xqVar    // $name
	xqString // quoted
	xqNumber
	xqOp     // = != < <= > >=
	xqAssign // :=
	xqPunct  // any single punct: / ( ) [ ] , . * @ { } <
)

type xqParser struct {
	src  string
	toks []xqTok
	pos  int

	vars map[string]*xpath.PathExpr // var -> path relative to primary binding ("" steps = the binding itself)
	q    *Query
}

func (p *xqParser) lex() error {
	src := p.src
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '$':
			j := i + 1
			for j < len(src) && (isIdentChar(src[j])) {
				j++
			}
			if j == i+1 {
				return fmt.Errorf("querylang: bare $ at %d", i)
			}
			p.toks = append(p.toks, xqTok{xqVar, src[i+1 : j], i, j})
			i = j
		case c == '\'' || c == '"':
			q := c
			j := i + 1
			for j < len(src) && src[j] != q {
				j++
			}
			if j >= len(src) {
				return fmt.Errorf("querylang: unterminated string at %d", i)
			}
			p.toks = append(p.toks, xqTok{xqString, src[i+1 : j], i, j + 1})
			i = j + 1
		case c == ':' && i+1 < len(src) && src[i+1] == '=':
			p.toks = append(p.toks, xqTok{xqAssign, ":=", i, i + 2})
			i += 2
		case c == '!' && i+1 < len(src) && src[i+1] == '=':
			p.toks = append(p.toks, xqTok{xqOp, "!=", i, i + 2})
			i += 2
		case c == '<' || c == '>':
			// Could be an operator or an element constructor '<tag>'.
			// '<' followed by a letter at clause level is a constructor;
			// the parser decides, the lexer emits ops for <=, >= and
			// bare < > otherwise.
			op := string(c)
			j := i + 1
			if j < len(src) && src[j] == '=' {
				op += "="
				j++
			}
			p.toks = append(p.toks, xqTok{xqOp, op, i, j})
			i = j
		case c == '=':
			p.toks = append(p.toks, xqTok{xqOp, "=", i, i + 1})
			i++
		case isDigit(c) || (c == '-' && i+1 < len(src) && isDigit(src[i+1])):
			j := i + 1
			for j < len(src) && (isDigit(src[j]) || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			p.toks = append(p.toks, xqTok{xqNumber, src[i:j], i, j})
			i = j
		case isIdentStart(c):
			j := i + 1
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			p.toks = append(p.toks, xqTok{xqIdent, src[i:j], i, j})
			i = j
		default:
			p.toks = append(p.toks, xqTok{xqPunct, string(c), i, i + 1})
			i++
		}
	}
	p.toks = append(p.toks, xqTok{xqEOF, "", len(src), len(src)})
	return nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c|0x20 >= 'a' && c|0x20 <= 'z') || c >= 0x80 }
func isIdentChar(c byte) bool {
	return isIdentStart(c) || isDigit(c) || c == '-' || c == '.' || c == ':'
}

func (p *xqParser) peek() xqTok { return p.toks[p.pos] }

// next consumes one token, saturating at EOF so error paths that consume
// blindly can never index past the token slice.
func (p *xqParser) next() xqTok {
	t := p.toks[p.pos]
	if t.kind != xqEOF {
		p.pos++
	}
	return t
}

func (p *xqParser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == xqIdent && t.text == kw
}

func (p *xqParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("querylang: %s (near offset %d in %q)", fmt.Sprintf(format, args...), p.peek().pos, p.src)
}

func (p *xqParser) parse() (*Query, error) {
	p.q = &Query{}
	p.vars = map[string]*xpath.PathExpr{}
	sawFor := false
	for {
		switch {
		case p.isKeyword("for"):
			if err := p.parseFor(); err != nil {
				return nil, err
			}
			sawFor = true
		case p.isKeyword("let"):
			if err := p.parseLet(); err != nil {
				return nil, err
			}
		case p.isKeyword("where"):
			if !sawFor {
				return nil, p.errf("where before any for clause")
			}
			if err := p.parseWhere(); err != nil {
				return nil, err
			}
		case p.isKeyword("return"):
			if !sawFor {
				return nil, p.errf("return before any for clause")
			}
			if err := p.parseReturn(); err != nil {
				return nil, err
			}
			if p.peek().kind != xqEOF {
				return nil, p.errf("trailing input after return clause")
			}
			if p.q.Binding == nil {
				return nil, p.errf("no collection()/doc() binding")
			}
			return p.q, nil
		default:
			return nil, p.errf("expected for/let/where/return, found %q", p.peek().text)
		}
	}
}

// parseFor handles: for $v in collection("c")PATH  |  for $v in $w PATH
func (p *xqParser) parseFor() error {
	p.next() // for
	v := p.next()
	if v.kind != xqVar {
		return p.errf("expected $var after for")
	}
	if !p.isKeyword("in") {
		return p.errf("expected in after for $%s", v.text)
	}
	p.next()
	return p.bindVar(v.text)
}

// parseLet handles: let $v := $w PATH
func (p *xqParser) parseLet() error {
	p.next() // let
	v := p.next()
	if v.kind != xqVar {
		return p.errf("expected $var after let")
	}
	if p.peek().kind != xqAssign {
		return p.errf("expected := in let clause")
	}
	p.next()
	if p.peek().kind != xqVar {
		return p.errf("let must bind from another variable's path")
	}
	return p.bindVar(v.text)
}

func (p *xqParser) bindVar(name string) error {
	t := p.peek()
	switch {
	case t.kind == xqIdent && (t.text == "collection" || t.text == "doc"):
		p.next()
		if p.peek().text != "(" {
			return p.errf("expected ( after %s", t.text)
		}
		p.next()
		arg := p.next()
		if arg.kind != xqString {
			return p.errf("%s() needs a string argument", t.text)
		}
		if p.peek().text != ")" {
			return p.errf("expected ) after %s(...", t.text)
		}
		p.next()
		if p.q.Binding != nil {
			return p.errf("only one collection()/doc() binding is supported")
		}
		p.q.Collection = arg.text
		pathSrc, err := p.capturePath()
		if err != nil {
			return err
		}
		var bind *xpath.PathExpr
		if pathSrc == "" {
			bind = xpath.MustParse("/*")
		} else {
			bind, err = xpath.Parse(pathSrc)
			if err != nil {
				return fmt.Errorf("querylang: binding path: %w", err)
			}
		}
		p.q.Binding = bind
		p.vars[name] = &xpath.PathExpr{Relative: true, Dot: true}
		return nil
	case t.kind == xqVar:
		p.next()
		base, ok := p.vars[t.text]
		if !ok {
			return p.errf("unknown variable $%s", t.text)
		}
		pathSrc, err := p.capturePath()
		if err != nil {
			return err
		}
		if pathSrc == "" {
			p.vars[name] = base
			return nil
		}
		rel, err := parseRelPath(pathSrc)
		if err != nil {
			return fmt.Errorf("querylang: path for $%s: %w", name, err)
		}
		p.vars[name] = concatRel(base, rel)
		return nil
	default:
		return p.errf("expected collection()/doc() or $var in binding")
	}
}

// concatRel joins two relative paths (either may be the dot path).
func concatRel(a, b *xpath.PathExpr) *xpath.PathExpr {
	if a.Dot {
		return b
	}
	if b.Dot {
		return a
	}
	out := &xpath.PathExpr{Relative: true}
	out.Steps = append(out.Steps, a.Steps...)
	out.Steps = append(out.Steps, b.Steps...)
	return out
}

// capturePath consumes tokens that form a path continuation (steps and
// bracketed predicates) and returns the exact source substring. It stops
// at a clause keyword (for/let/where/return/order) at bracket depth 0, or
// at any token that cannot continue a path.
func (p *xqParser) capturePath() (string, error) {
	start := p.peek().pos
	end := start
	depth := 0
	for {
		t := p.peek()
		if t.kind == xqEOF {
			break
		}
		if depth == 0 && t.kind == xqIdent {
			switch t.text {
			case "for", "let", "where", "return", "order", "stable", "group":
				goto done
			}
		}
		switch {
		case t.kind == xqPunct && t.text == "[":
			depth++
		case t.kind == xqPunct && t.text == "]":
			if depth == 0 {
				goto done
			}
			depth--
		case depth == 0:
			// Only path-ish tokens continue the capture.
			ok := (t.kind == xqPunct && (t.text == "/" || t.text == "*" || t.text == "@" || t.text == "." || t.text == "(" || t.text == ")")) ||
				t.kind == xqIdent
			// A closing paren only continues text(); conservatively
			// stop on ( ) unless preceded by ident "text".
			if t.kind == xqPunct && (t.text == "(" || t.text == ")") {
				ok = p.pos > 0 && p.toks[p.pos-1].kind == xqIdent && p.toks[p.pos-1].text == "text" ||
					t.text == ")" && p.pos > 0 && p.toks[p.pos-1].text == "("
			}
			if !ok {
				goto done
			}
		}
		end = t.end
		p.next()
	}
done:
	if depth != 0 {
		return "", p.errf("unbalanced [ in path")
	}
	return strings.TrimSpace(p.src[start:end]), nil
}

// parseWhere parses the boolean condition into an xpath.BoolExpr whose
// paths are relative to the primary binding.
func (p *xqParser) parseWhere() error {
	p.next() // where
	e, err := p.parseOr()
	if err != nil {
		return err
	}
	p.q.Where = e
	return nil
}

func (p *xqParser) parseOr() (xpath.BoolExpr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &xpath.OrExpr{L: l, R: r}
	}
	return l, nil
}

func (p *xqParser) parseAnd() (xpath.BoolExpr, error) {
	l, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		p.next()
		r, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		l = &xpath.AndExpr{L: l, R: r}
	}
	return l, nil
}

func (p *xqParser) parseCond() (xpath.BoolExpr, error) {
	t := p.peek()
	switch {
	case t.kind == xqPunct && t.text == "(":
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().text != ")" {
			return nil, p.errf("expected )")
		}
		p.next()
		return e, nil
	case t.kind == xqIdent && t.text == "not":
		p.next()
		if p.peek().text != "(" {
			return nil, p.errf("expected ( after not")
		}
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().text != ")" {
			return nil, p.errf("expected ) after not(")
		}
		p.next()
		return &xpath.NotExpr{E: e}, nil
	case t.kind == xqIdent && t.text == "contains":
		p.next()
		if p.peek().text != "(" {
			return nil, p.errf("expected ( after contains")
		}
		p.next()
		rel, err := p.parseVarPath()
		if err != nil {
			return nil, err
		}
		if p.peek().text != "," {
			return nil, p.errf("expected , in contains()")
		}
		p.next()
		lit := p.next()
		if lit.kind != xqString {
			return nil, p.errf("contains() needs a string literal")
		}
		if p.peek().text != ")" {
			return nil, p.errf("expected ) after contains()")
		}
		p.next()
		return &xpath.Comparison{
			Path:  rel,
			Op:    sqltype.ContainsSubstr,
			Value: sqltype.Value{Type: sqltype.Varchar, S: lit.text},
		}, nil
	case t.kind == xqVar:
		rel, err := p.parseVarPath()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != xqOp {
			return &xpath.ExistsExpr{Path: rel}, nil
		}
		opTok := p.next()
		op, err := xqOpFor(opTok.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		val, err := p.literal()
		if err != nil {
			return nil, err
		}
		return &xpath.Comparison{Path: rel, Op: op, Value: val}, nil
	default:
		return nil, p.errf("expected condition, found %q", t.text)
	}
}

// parseVarPath parses $var followed by an optional predicate-free
// relative path, returning a path relative to the primary binding.
func (p *xqParser) parseVarPath() (*xpath.PathExpr, error) {
	t := p.next()
	if t.kind != xqVar {
		return nil, p.errf("expected $var, found %q", t.text)
	}
	base, ok := p.vars[t.text]
	if !ok {
		return nil, p.errf("unknown variable $%s", t.text)
	}
	pathSrc, err := p.captureSimplePath()
	if err != nil {
		return nil, err
	}
	if pathSrc == "" {
		return base, nil
	}
	rel, err := parseRelPath(pathSrc)
	if err != nil {
		return nil, fmt.Errorf("querylang: path after $%s: %w", t.text, err)
	}
	return concatRel(base, rel), nil
}

// parseRelPath parses a path continuation that followed a variable. A
// single leading slash is a child step from the variable; a double slash
// keeps its descendant meaning. The result is marked relative.
func parseRelPath(src string) (*xpath.PathExpr, error) {
	var e *xpath.PathExpr
	var err error
	if strings.HasPrefix(src, "//") {
		e, err = xpath.Parse(src)
	} else {
		e, err = xpath.Parse(strings.TrimPrefix(src, "/"))
	}
	if err != nil {
		return nil, err
	}
	e.Relative = true
	return e, nil
}

// captureSimplePath consumes a predicate-free path continuation
// (/step//step/@attr/text()).
func (p *xqParser) captureSimplePath() (string, error) {
	start := p.peek().pos
	end := start
	expectStep := false
	for {
		t := p.peek()
		if t.kind == xqPunct && t.text == "/" {
			expectStep = true
			end = t.end
			p.next()
			continue
		}
		if expectStep {
			switch {
			case t.kind == xqIdent, t.kind == xqPunct && (t.text == "*" || t.text == "@"):
				end = t.end
				p.next()
				if t.kind == xqPunct && t.text == "@" {
					expectStep = true // attribute name follows
					continue
				}
				// text() support.
				if t.kind == xqIdent && t.text == "text" && p.peek().text == "(" {
					end = p.next().end
					if p.peek().text != ")" {
						return "", p.errf("expected ) after text(")
					}
					end = p.next().end
				}
				expectStep = false
			default:
				return "", p.errf("expected step after /")
			}
			continue
		}
		break
	}
	return strings.TrimSpace(p.src[start:end]), nil
}

func (p *xqParser) literal() (sqltype.Value, error) {
	t := p.next()
	switch t.kind {
	case xqNumber:
		v, ok := sqltype.Cast(sqltype.Double, t.text)
		if !ok {
			return sqltype.Value{}, p.errf("bad number %q", t.text)
		}
		return v, nil
	case xqString:
		if v, ok := sqltype.Cast(sqltype.Date, t.text); ok && len(t.text) >= 10 {
			return v, nil
		}
		return sqltype.Value{Type: sqltype.Varchar, S: t.text}, nil
	}
	return sqltype.Value{}, p.errf("expected literal, found %q", t.text)
}

func xqOpFor(s string) (sqltype.CmpOp, error) {
	switch s {
	case "=":
		return sqltype.Eq, nil
	case "!=":
		return sqltype.Ne, nil
	case "<":
		return sqltype.Lt, nil
	case "<=":
		return sqltype.Le, nil
	case ">":
		return sqltype.Gt, nil
	case ">=":
		return sqltype.Ge, nil
	}
	return sqltype.Eq, fmt.Errorf("unknown operator %q", s)
}

// parseReturn parses the return clause into extraction paths.
func (p *xqParser) parseReturn() error {
	p.next() // return
	t := p.peek()
	switch {
	case t.kind == xqPunct && t.text == "(":
		p.next()
		for {
			if err := p.parseReturnItem(); err != nil {
				return err
			}
			if p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
		if p.peek().text != ")" {
			return p.errf("expected ) in return sequence")
		}
		p.next()
		return nil
	case t.kind == xqOp && t.text == "<":
		// Element constructor: consume everything, extracting {...}
		// holes as return items.
		return p.parseConstructorReturn()
	default:
		return p.parseReturnItem()
	}
}

func (p *xqParser) parseReturnItem() error {
	t := p.peek()
	switch {
	case t.kind == xqIdent && (t.text == "count" || t.text == "data" || t.text == "string" || t.text == "sum" || t.text == "avg"):
		p.next()
		if p.peek().text != "(" {
			return p.errf("expected ( after %s", t.text)
		}
		p.next()
		rel, err := p.parseVarPath()
		if err != nil {
			return err
		}
		if p.peek().text != ")" {
			return p.errf("expected ) after %s(...", t.text)
		}
		p.next()
		if t.text == "count" || t.text == "sum" || t.text == "avg" {
			p.q.Aggregate = true
		}
		p.q.Returns = append(p.q.Returns, rel)
		return nil
	case t.kind == xqVar:
		rel, err := p.parseVarPath()
		if err != nil {
			return err
		}
		p.q.Returns = append(p.q.Returns, rel)
		return nil
	case t.kind == xqString:
		p.next() // literal text content: no extraction leg
		return nil
	default:
		return p.errf("unsupported return expression starting at %q", t.text)
	}
}

func (p *xqParser) parseConstructorReturn() error {
	depth := 0
	for {
		t := p.peek()
		if t.kind == xqEOF {
			if depth != 0 {
				return p.errf("unterminated element constructor")
			}
			return nil
		}
		if t.kind == xqPunct && t.text == "{" {
			depth++
			p.next()
			if err := p.parseReturnItem(); err != nil {
				return err
			}
			if p.peek().text != "}" {
				return p.errf("expected } in constructor")
			}
			depth--
			p.next()
			continue
		}
		p.next()
	}
}
