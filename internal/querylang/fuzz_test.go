package querylang

import "testing"

// FuzzParseXQuery checks the FLWOR parser never panics and that accepted
// queries survive leg normalization.
func FuzzParseXQuery(f *testing.F) {
	seeds := []string{
		`for $i in collection("c")/a/b where $i/x > 5 return $i/y`,
		`for $i in collection("c")/a[b = 1 or c = "x"] for $j in $i/d let $k := $j/e where contains($k, "q") and not($i/f = 2) return ($i/g, count($j))`,
		`for $i in collection("c") return <r>{ $i/a }</r>`,
		`for $i in doc("c")//deep/path where $i//x >= "2008-01-01" return $i/@id`,
		`for $i in collection("c")/a return $i extra`,
		`for $$ in x return $i`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseXQuery(src)
		if err != nil {
			return
		}
		legs := q.Legs() // must not panic
		for _, l := range legs {
			if l.Pattern.IsZero() {
				t.Fatalf("zero-pattern leg from %q", src)
			}
		}
	})
}

// FuzzParseSQLXML checks the SQL/XML parser never panics.
func FuzzParseSQLXML(f *testing.F) {
	seeds := []string{
		`SELECT 1 FROM t WHERE XMLEXISTS('$d/a/b[c > 1]' PASSING doc AS "d")`,
		`select xmlquery('$d/a') from t where xmlexists('$d/b') and xmlexists('$d/c')`,
		`SELECT COUNT(*) FROM t WHERE XMLEXISTS('/a[b = "x'`,
		`SELECT FROM WHERE XMLEXISTS(')`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseSQLXML(src)
		if err != nil {
			return
		}
		q.Legs() // must not panic
	})
}
