// Package querylang implements the two query front ends the paper's
// advisor supports through the optimizer — an XQuery subset (FLWOR) and a
// SQL/XML subset (XMLEXISTS/XMLQUERY) — and their normalization into the
// logical form the optimizer consumes: a binding path plus conjunctive
// conditions, flattened into index-matchable "legs".
package querylang

import (
	"fmt"
	"strings"

	"repro/internal/pattern"
	"repro/internal/sqltype"
	"repro/internal/xpath"
)

// Lang identifies the source language of a query.
type Lang uint8

const (
	// LangXQuery is the FLWOR subset.
	LangXQuery Lang = iota
	// LangSQLXML is the SQL/XML subset.
	LangSQLXML
)

// String names the language.
func (l Lang) String() string {
	if l == LangSQLXML {
		return "SQL/XML"
	}
	return "XQuery"
}

// Query is a normalized query. Semantics:
//   - Binding selects the result-driving nodes in each document (with
//     inline predicates applied).
//   - Where, if non-nil, further filters binding nodes (paths inside are
//     relative to the binding node).
//   - DocConds are absolute paths that must each select at least one node
//     in the document (extra XMLEXISTS conjuncts).
//   - Returns are extraction paths relative to the binding node;
//     DocReturns are absolute extraction paths (XMLQUERY).
//   - PerDocument indicates SQL row semantics: one result row per
//     qualifying document rather than per binding node.
type Query struct {
	ID         string
	Text       string
	Lang       Lang
	Collection string

	Binding    *xpath.PathExpr
	Where      xpath.BoolExpr
	DocConds   []*xpath.PathExpr
	Returns    []*xpath.PathExpr
	DocReturns []*xpath.PathExpr

	PerDocument bool
	Aggregate   bool // count(...) in the return clause
}

// Leg is one index-matchable path of a query: an absolute linear pattern
// plus the comparison applied to it. The optimizer matches indexes
// against legs; the Enumerate Indexes mode reports legs as candidates.
type Leg struct {
	Pattern pattern.Pattern
	Op      sqltype.CmpOp
	Value   sqltype.Value

	// Output marks extraction (return-clause) legs.
	Output bool
	// Disjunct marks legs that appear under an OR (or inside not());
	// they are enumeration candidates but cannot anchor an index-AND
	// plan on their own.
	Disjunct bool
	// OrGroup (> 0) groups the disjuncts of one positively-occurring OR
	// whose branches are all simple comparisons/existence tests. If
	// every leg of a group has a covering index, the optimizer can
	// answer the whole OR by index ORing (union of the member scans).
	// Legs under NOT, or in ORs containing nested ANDs, have OrGroup 0.
	OrGroup int
}

// Key returns a deduplication key for the leg.
func (l Leg) Key() string {
	out := ""
	if l.Output {
		out = "|out"
	}
	return fmt.Sprintf("%s|%s|%s%s", l.Pattern, l.Op, l.Value, out)
}

// String renders the leg for display.
func (l Leg) String() string {
	var sb strings.Builder
	sb.WriteString(l.Pattern.String())
	if l.Op != sqltype.Exists {
		fmt.Fprintf(&sb, " %s %s", l.Op, l.Value)
	}
	if l.Output {
		sb.WriteString(" (output)")
	}
	if l.Disjunct {
		sb.WriteString(" (disjunct)")
	}
	return sb.String()
}

// Legs normalizes the query into its index-matchable legs, deduplicated,
// in a deterministic order: binding legs, predicate legs, doc-condition
// legs, output legs.
func (q *Query) Legs() []Leg {
	var out []Leg
	seen := map[string]bool{}
	add := func(l Leg) {
		if l.Pattern.IsZero() {
			return
		}
		// Normalize: an element's indexed value is its text, so a leg
		// on .../text() is served by an index on the parent element.
		if last := l.Pattern.Last(); last.Kind == pattern.TestText && l.Pattern.Len() > 1 {
			l.Pattern = pattern.Pattern{Steps: l.Pattern.Steps[:l.Pattern.Len()-1]}
		}
		k := l.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, l)
		}
	}

	lc := &legCollector{add: add}
	bindPat := q.Binding.LinearPattern()
	// The binding path itself is a structural (existence) leg.
	add(Leg{Pattern: bindPat, Op: sqltype.Exists})
	// Inline predicates along the binding path.
	lc.collectPath(q.Binding, pattern.Pattern{}, false, 0)
	// Where conditions, relative to the binding.
	if q.Where != nil {
		lc.collectBool(q.Where, bindPat, false, 0)
	}
	// Document-level conjuncts.
	for _, dc := range q.DocConds {
		add(Leg{Pattern: dc.LinearPattern(), Op: sqltype.Exists})
		lc.collectPath(dc, pattern.Pattern{}, false, 0)
	}
	// Extraction legs.
	for _, r := range q.Returns {
		add(Leg{Pattern: r.AppendTo(bindPat), Op: sqltype.Exists, Output: true})
	}
	for _, r := range q.DocReturns {
		add(Leg{Pattern: r.LinearPattern(), Op: sqltype.Exists, Output: true})
	}
	return out
}

// legCollector walks predicate trees emitting legs; it owns the OR-group
// counter so group IDs are unique across the whole query.
type legCollector struct {
	add       func(Leg)
	nextGroup int
}

// collectPath walks a path expression and emits a leg for every
// comparison or existence test in its step predicates. prefix is the
// absolute pattern of the path's context ({} for absolute paths).
func (lc *legCollector) collectPath(e *xpath.PathExpr, prefix pattern.Pattern, disjunct bool, group int) {
	steps := make([]pattern.Step, 0, prefix.Len()+len(e.Steps))
	steps = append(steps, prefix.Steps...)
	for _, st := range e.Steps {
		steps = append(steps, pattern.Step{Axis: st.Axis, Kind: st.Kind, Name: st.Name})
		cur := pattern.Pattern{Steps: append([]pattern.Step(nil), steps...)}
		for _, pr := range st.Preds {
			lc.collectBool(pr, cur, disjunct, group)
		}
	}
}

// orPure reports whether the OR subtree consists solely of nested ORs
// over comparisons and existence tests — the shape index ORing can
// answer (a union of member scans covers exactly the OR's semantics).
func orPure(e xpath.BoolExpr) bool {
	switch x := e.(type) {
	case *xpath.OrExpr:
		return orPure(x.L) && orPure(x.R)
	case *xpath.Comparison, *xpath.ExistsExpr:
		return true
	default:
		return false
	}
}

// collectBool emits legs for every comparison within a predicate
// expression. Everything under an OR or NOT is marked Disjunct: such a
// condition alone cannot restrict the result. Pure ORs in positive
// positions additionally receive an OrGroup so the optimizer can
// consider index ORing across all their disjuncts.
func (lc *legCollector) collectBool(e xpath.BoolExpr, prefix pattern.Pattern, disjunct bool, group int) {
	switch x := e.(type) {
	case *xpath.AndExpr:
		// An AND below an OR makes the group impure; orPure prevents
		// reaching here with group != 0.
		lc.collectBool(x.L, prefix, disjunct, 0)
		lc.collectBool(x.R, prefix, disjunct, 0)
	case *xpath.OrExpr:
		g := group
		if g == 0 && !disjunct && orPure(x) {
			lc.nextGroup++
			g = lc.nextGroup
		}
		lc.collectBool(x.L, prefix, true, g)
		lc.collectBool(x.R, prefix, true, g)
	case *xpath.NotExpr:
		lc.collectBool(x.E, prefix, true, 0)
	case *xpath.ExistsExpr:
		lc.add(Leg{Pattern: x.Path.AppendTo(prefix), Op: sqltype.Exists, Disjunct: disjunct, OrGroup: group})
		lc.collectPath(x.Path, prefix, true, 0)
	case *xpath.Comparison:
		lc.add(Leg{
			Pattern:  x.Path.AppendTo(prefix),
			Op:       x.Op,
			Value:    x.Value,
			Disjunct: disjunct,
			OrGroup:  group,
		})
		lc.collectPath(x.Path, prefix, true, 0)
	}
}

// Parse parses query text in the given language.
func Parse(lang Lang, text string) (*Query, error) {
	if lang == LangSQLXML {
		return ParseSQLXML(text)
	}
	return ParseXQuery(text)
}

// ParseAuto guesses the language from the text: SELECT ... means SQL/XML,
// anything else XQuery.
func ParseAuto(text string) (*Query, error) {
	trimmed := strings.TrimSpace(text)
	if len(trimmed) >= 6 && strings.EqualFold(trimmed[:6], "SELECT") {
		return ParseSQLXML(text)
	}
	return ParseXQuery(text)
}
