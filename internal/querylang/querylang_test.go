package querylang

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/sqltype"
)

func legStrings(q *Query) []string {
	var out []string
	for _, l := range q.Legs() {
		out = append(out, l.String())
	}
	sort.Strings(out)
	return out
}

func mustXQuery(t *testing.T, src string) *Query {
	t.Helper()
	q, err := ParseXQuery(src)
	if err != nil {
		t.Fatalf("ParseXQuery(%q): %v", src, err)
	}
	return q
}

func TestXQueryBasic(t *testing.T) {
	q := mustXQuery(t, `for $i in collection("items")/site/regions/namerica/item where $i/quantity > 5 return $i/name`)
	if q.Collection != "items" {
		t.Errorf("Collection = %q", q.Collection)
	}
	if q.Binding.String() != "/site/regions/namerica/item" {
		t.Errorf("Binding = %q", q.Binding)
	}
	legs := q.Legs()
	want := map[string]bool{
		"/site/regions/namerica/item":               false, // exists leg
		"/site/regions/namerica/item/quantity > 5":  false,
		"/site/regions/namerica/item/name (output)": false,
	}
	for _, l := range legs {
		s := l.String()
		if _, ok := want[s]; ok {
			want[s] = true
		} else {
			t.Errorf("unexpected leg %q", s)
		}
	}
	for s, seen := range want {
		if !seen {
			t.Errorf("missing leg %q", s)
		}
	}
}

func TestXQueryInlinePredicates(t *testing.T) {
	q := mustXQuery(t, `for $i in collection("items")/site/regions/*/item[price > 100 and quantity > 2] return $i`)
	legs := legStrings(q)
	joined := strings.Join(legs, "\n")
	for _, want := range []string{
		"/site/regions/*/item/price > 100",
		"/site/regions/*/item/quantity > 2",
		"/site/regions/*/item",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("legs missing %q:\n%s", want, joined)
		}
	}
}

func TestXQueryLetAndNestedFor(t *testing.T) {
	q := mustXQuery(t, `for $i in collection("items")/site/open_auctions/open_auction
for $b in $i/bidder
let $inc := $b/increase
where $inc > 10 and $i/initial >= 100
return ($i/itemref/@item, $b/date)`)
	joined := strings.Join(legStrings(q), "\n")
	for _, want := range []string{
		"/site/open_auctions/open_auction/bidder/increase > 10",
		"/site/open_auctions/open_auction/initial >= 100",
		"/site/open_auctions/open_auction/itemref/@item (output)",
		"/site/open_auctions/open_auction/bidder/date (output)",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("legs missing %q:\n%s", want, joined)
		}
	}
}

func TestXQueryDescendantAfterVar(t *testing.T) {
	q := mustXQuery(t, `for $i in collection("items")/site where $i//quantity > 5 return $i`)
	joined := strings.Join(legStrings(q), "\n")
	if !strings.Contains(joined, "/site//quantity > 5") {
		t.Errorf("descendant step lost:\n%s", joined)
	}
}

func TestXQueryOrMarksDisjunct(t *testing.T) {
	q := mustXQuery(t, `for $i in collection("items")/site/item where $i/a = 1 or $i/b = 2 return $i`)
	var sawDisjunct int
	for _, l := range q.Legs() {
		if l.Disjunct {
			sawDisjunct++
		}
	}
	if sawDisjunct != 2 {
		t.Errorf("disjunct legs = %d, want 2", sawDisjunct)
	}
}

func TestXQueryContainsAndNot(t *testing.T) {
	q := mustXQuery(t, `for $i in collection("items")/site/item where contains($i/name, "bike") and not($i/sold = 1) return count($i)`)
	if !q.Aggregate {
		t.Error("count() should set Aggregate")
	}
	var foundContains, foundNot bool
	for _, l := range q.Legs() {
		if l.Op == sqltype.ContainsSubstr {
			foundContains = true
		}
		if l.Disjunct && l.Op == sqltype.Eq {
			foundNot = true
		}
	}
	if !foundContains || !foundNot {
		t.Errorf("contains=%v notDisjunct=%v", foundContains, foundNot)
	}
}

func TestXQueryConstructorReturn(t *testing.T) {
	q := mustXQuery(t, `for $i in collection("items")/site/item return <row>{ $i/name }{ $i/price }</row>`)
	if len(q.Returns) != 2 {
		t.Fatalf("Returns = %d, want 2", len(q.Returns))
	}
}

func TestXQueryDateLiteral(t *testing.T) {
	q := mustXQuery(t, `for $a in collection("auctions")/site/closed_auctions/closed_auction where $a/date >= "2008-01-01" return $a/price`)
	var found bool
	for _, l := range q.Legs() {
		if l.Op == sqltype.Ge && l.Value.Type == sqltype.Date {
			found = true
		}
	}
	if !found {
		t.Error("date-typed leg missing")
	}
}

func TestXQueryBindingWithoutPath(t *testing.T) {
	q := mustXQuery(t, `for $d in collection("items") return $d`)
	if q.Binding.String() != "/*" {
		t.Errorf("Binding = %q, want /*", q.Binding)
	}
}

func TestXQueryErrors(t *testing.T) {
	bad := []string{
		``,
		`for $i in return $i`,
		`for $i collection("x") return $i`,
		`for in collection("x") return $i`,
		`for $i in collection(x) return $i`,
		`for $i in collection("x") where $j/a = 1 return $i`, // unknown var
		`for $i in collection("x") return`,
		`where $i/a = 1`,
		`for $i in collection("x") where $i/a = return $i`,
		`for $i in collection("x") where $i/a ~ 3 return $i`,
		`let $p := collection("x")/a for $i in collection("y") return $i`, // two bindings... let from collection then for
		`for $i in collection("x") where contains($i/a) return $i`,
		`for $i in collection("x") return $i extra`,
	}
	for _, src := range bad {
		if _, err := ParseXQuery(src); err == nil {
			t.Errorf("ParseXQuery(%q) succeeded, want error", src)
		}
	}
}

func TestSQLXMLBasic(t *testing.T) {
	q, err := ParseSQLXML(`SELECT 1 FROM items WHERE XMLEXISTS('$d/site/item[price > 100]' PASSING doc AS "d")`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Collection != "items" {
		t.Errorf("Collection = %q", q.Collection)
	}
	if !q.PerDocument {
		t.Error("SQL/XML should be per-document")
	}
	joined := strings.Join(legStrings(q), "\n")
	if !strings.Contains(joined, "/site/item/price > 100") {
		t.Errorf("legs:\n%s", joined)
	}
}

func TestSQLXMLMultipleExistsAndQuery(t *testing.T) {
	q, err := ParseSQLXML(`SELECT XMLQUERY('$d/site/item/name' PASSING doc AS "d")
FROM items
WHERE XMLEXISTS('$d/site/item[price > 100]' PASSING doc AS "d")
  AND XMLEXISTS('$d/site/item[quantity > 5]' PASSING doc AS "d")`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.DocConds) != 1 {
		t.Errorf("DocConds = %d, want 1", len(q.DocConds))
	}
	if len(q.DocReturns) != 1 {
		t.Errorf("DocReturns = %d, want 1", len(q.DocReturns))
	}
	joined := strings.Join(legStrings(q), "\n")
	for _, want := range []string{
		"/site/item/price > 100",
		"/site/item/quantity > 5",
		"/site/item/name (output)",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("legs missing %q:\n%s", want, joined)
		}
	}
}

func TestSQLXMLErrors(t *testing.T) {
	bad := []string{
		`SELECT 1 FROM items`,                          // no XML predicates
		`SELECT 1 WHERE XMLEXISTS('$d/a' PASSING d)`,   // no FROM
		`SELECT 1 FROM items WHERE XMLEXISTS(noquote)`, // malformed
		`SELECT 1 FROM items WHERE XMLEXISTS('$d/a[' PASSING doc AS "d")`,
	}
	for _, src := range bad {
		if _, err := ParseSQLXML(src); err == nil {
			t.Errorf("ParseSQLXML(%q) succeeded, want error", src)
		}
	}
}

func TestParseAuto(t *testing.T) {
	q, err := ParseAuto(`select 1 from items where xmlexists('$d/a/b' passing doc as "d")`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Lang != LangSQLXML {
		t.Error("lowercase select should parse as SQL/XML")
	}
	q, err = ParseAuto(`for $i in collection("items")/a return $i`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Lang != LangXQuery {
		t.Error("FLWOR should parse as XQuery")
	}
}

func TestLegDedupe(t *testing.T) {
	q := mustXQuery(t, `for $i in collection("items")/site/item where $i/price > 5 and $i/price > 5 return $i/price`)
	count := 0
	for _, l := range q.Legs() {
		if l.Op == sqltype.Gt {
			count++
		}
	}
	if count != 1 {
		t.Errorf("duplicate legs not merged: %d", count)
	}
}

func TestLegKeyDistinguishesOutput(t *testing.T) {
	a := Leg{Op: sqltype.Exists, Output: true}
	b := Leg{Op: sqltype.Exists, Output: false}
	if a.Key() == b.Key() {
		t.Error("output flag must be part of the leg key")
	}
}
