// Package catalog implements the database catalog: the registry of
// collections, their statistics snapshots, and their indexes — both real
// (backed by a B+ tree) and virtual. Virtual indexes exist only as catalog
// metadata with estimated sizes; they are the mechanism (borrowed from
// DB2's relational advisor [8] and extended by the paper to candidate
// *enumeration*) that lets the optimizer cost hypothetical configurations
// without building anything.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/pattern"
	"repro/internal/sqltype"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/xindex"
	"repro/internal/xmldoc"
)

// IndexDef describes one index, real or virtual.
type IndexDef struct {
	Name       string
	Collection string
	Pattern    pattern.Pattern
	Type       sqltype.Type
	Virtual    bool

	// Estimated size (always populated; for real indexes it is refreshed
	// from the physical structure).
	EstEntries int64
	EstPages   int64

	// Phys is the physical structure; nil for virtual indexes.
	Phys *xindex.Index
}

// Pages returns the index size in pages: physical if built, estimated
// otherwise.
func (d *IndexDef) Pages() int64 {
	if d.Phys != nil {
		return d.Phys.Pages()
	}
	return d.EstPages
}

// Entries returns the (estimated or actual) entry count.
func (d *IndexDef) Entries() int64 {
	if d.Phys != nil {
		return int64(d.Phys.Entries())
	}
	return d.EstEntries
}

// DDL renders the DB2-style CREATE INDEX statement.
func (d *IndexDef) DDL() string {
	return xindex.DDL(d.Name, d.Collection, d.Pattern, d.Type)
}

// Key identifies an index by what it indexes rather than by name.
func (d *IndexDef) Key() string {
	return d.Collection + "|" + d.Pattern.String() + "|" + d.Type.Short()
}

// String summarizes the definition.
func (d *IndexDef) String() string {
	kind := "real"
	if d.Virtual {
		kind = "virtual"
	}
	return fmt.Sprintf("%s [%s on %s AS %s, %s, ~%d entries, ~%d pages]",
		d.Name, d.Pattern, d.Collection, d.Type.Short(), kind, d.Entries(), d.Pages())
}

// Catalog is the registry of collections, statistics, and indexes.
type Catalog struct {
	st *store.Store

	mu      sync.Mutex
	stats   map[string]*stats.Stats
	indexes map[string]*IndexDef // by name
	nextID  int
}

// New creates a catalog over the given store.
func New(st *store.Store) *Catalog {
	return &Catalog{
		st:      st,
		stats:   map[string]*stats.Stats{},
		indexes: map[string]*IndexDef{},
	}
}

// Store returns the underlying document store.
func (c *Catalog) Store() *store.Store { return c.st }

// Collection returns the named collection or an error.
func (c *Catalog) Collection(name string) (*store.Collection, error) {
	col := c.st.Get(name)
	if col == nil {
		return nil, fmt.Errorf("catalog: unknown collection %q", name)
	}
	return col, nil
}

// Stats returns the statistics snapshot for the collection, collecting (or
// re-collecting after mutations) on demand — the RUNSTATS analogue.
func (c *Catalog) Stats(coll string) (*stats.Stats, error) {
	col, err := c.Collection(coll)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats[coll]
	if s == nil || s.Version != col.Version() {
		s = stats.Collect(col)
		c.stats[coll] = s
	}
	return s, nil
}

// InvalidateStats drops the cached snapshot for the collection.
func (c *Catalog) InvalidateStats(coll string) {
	c.mu.Lock()
	delete(c.stats, coll)
	c.mu.Unlock()
}

// AutoName generates a fresh index name from the pattern's leaf.
func (c *Catalog) AutoName(p pattern.Pattern, t sqltype.Type) string {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()
	leaf := p.Last().String()
	leaf = strings.NewReplacer("*", "any", "@", "at_", "(", "", ")", "").Replace(leaf)
	return fmt.Sprintf("IDX_%s_%s_%d", strings.ToUpper(leaf), strings.ToUpper(t.Short()), id)
}

// CreateIndex builds a physical index over the collection and registers
// it. The name must be unused.
func (c *Catalog) CreateIndex(name, coll string, p pattern.Pattern, t sqltype.Type) (*IndexDef, error) {
	col, err := c.Collection(coll)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, dup := c.indexes[name]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("catalog: index %q already exists", name)
	}
	c.mu.Unlock()

	phys := xindex.Build(name, p, t, col)
	def := &IndexDef{
		Name:       name,
		Collection: coll,
		Pattern:    p,
		Type:       t,
		EstEntries: int64(phys.Entries()),
		EstPages:   phys.Pages(),
		Phys:       phys,
	}
	c.mu.Lock()
	c.indexes[name] = def
	c.mu.Unlock()
	return def, nil
}

// CreateVirtualIndex registers a hypothetical index whose size is
// estimated from statistics. It is never built on disk.
func (c *Catalog) CreateVirtualIndex(name, coll string, p pattern.Pattern, t sqltype.Type) (*IndexDef, error) {
	s, err := c.Stats(coll)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, dup := c.indexes[name]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("catalog: index %q already exists", name)
	}
	c.mu.Unlock()
	def := VirtualDef(name, coll, p, t, s)
	c.mu.Lock()
	c.indexes[name] = def
	c.mu.Unlock()
	return def, nil
}

// VirtualDef constructs (without registering) a virtual index definition
// with sizes estimated from the given statistics. The optimizer's EXPLAIN
// modes use unregistered definitions to simulate configurations without
// touching the shared catalog.
func VirtualDef(name, coll string, p pattern.Pattern, t sqltype.Type, s *stats.Stats) *IndexDef {
	return &IndexDef{
		Name:       name,
		Collection: coll,
		Pattern:    p,
		Type:       t,
		Virtual:    true,
		EstEntries: s.EstimateIndexEntries(p, t),
		EstPages:   s.EstimateIndexPages(p, t),
	}
}

// DropIndex removes the named index, reporting whether it existed.
func (c *Catalog) DropIndex(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[name]; !ok {
		return false
	}
	delete(c.indexes, name)
	return true
}

// Index returns the named index definition, or nil.
func (c *Catalog) Index(name string) *IndexDef {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.indexes[name]
}

// Indexes returns the index definitions for a collection, sorted by name.
// An empty collection name returns all indexes.
func (c *Catalog) Indexes(coll string) []*IndexDef {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*IndexDef
	for _, d := range c.indexes {
		if coll == "" || d.Collection == coll {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// InsertDocument parses and inserts a document into the collection and
// maintains every registered physical index on it — the write path of a
// real system, and the work the advisor's update-cost model charges for.
// It returns the new document's ID and the number of index entries
// added.
func (c *Catalog) InsertDocument(coll, src string) (xmldoc.DocID, int, error) {
	col, err := c.Collection(coll)
	if err != nil {
		return 0, 0, err
	}
	id, err := col.InsertXML(src)
	if err != nil {
		return 0, 0, err
	}
	doc := col.Get(id)
	entries := 0
	for _, def := range c.Indexes(coll) {
		if def.Phys != nil {
			entries += def.Phys.InsertDoc(doc)
			def.EstEntries = int64(def.Phys.Entries())
			def.EstPages = def.Phys.Pages()
		}
	}
	return id, entries, nil
}

// DeleteDocument removes a document and its entries from every
// registered physical index, returning the number of entries removed.
func (c *Catalog) DeleteDocument(coll string, id xmldoc.DocID) (int, error) {
	col, err := c.Collection(coll)
	if err != nil {
		return 0, err
	}
	doc := col.Get(id)
	if doc == nil {
		return 0, fmt.Errorf("catalog: no document %d in %q", id, coll)
	}
	removed := 0
	for _, def := range c.Indexes(coll) {
		if def.Phys != nil {
			removed += def.Phys.DeleteDoc(doc)
			def.EstEntries = int64(def.Phys.Entries())
			def.EstPages = def.Phys.Pages()
		}
	}
	col.Delete(id)
	return removed, nil
}

// FindCovering returns the registered indexes on the collection whose
// pattern contains q and whose type matches t.
func (c *Catalog) FindCovering(coll string, q pattern.Pattern, t sqltype.Type) []*IndexDef {
	var out []*IndexDef
	for _, d := range c.Indexes(coll) {
		if d.Type == t && pattern.ContainsCached(d.Pattern, q) {
			out = append(out, d)
		}
	}
	return out
}
