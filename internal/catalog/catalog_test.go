package catalog

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/sqltype"
	"repro/internal/store"
)

func newTestCatalog(t testing.TB, docs int) *Catalog {
	t.Helper()
	st := store.New()
	c := st.MustCreate("items")
	for i := 0; i < docs; i++ {
		src := fmt.Sprintf(`<site><item id="i%d"><quantity>%d</quantity><name>n%d</name></item></site>`, i, i%5, i)
		if _, err := c.InsertXML(src); err != nil {
			t.Fatal(err)
		}
	}
	return New(st)
}

func TestStatsCachingAndInvalidation(t *testing.T) {
	cat := newTestCatalog(t, 10)
	s1, err := cat.Stats("items")
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := cat.Stats("items")
	if s1 != s2 {
		t.Error("unchanged collection should reuse the snapshot")
	}
	cat.Store().Get("items").InsertXML(`<site/>`)
	s3, _ := cat.Stats("items")
	if s3 == s1 {
		t.Error("stats not refreshed after mutation")
	}
	cat.InvalidateStats("items")
	s4, _ := cat.Stats("items")
	if s4 == s3 {
		t.Error("InvalidateStats should force recollection")
	}
	if _, err := cat.Stats("nosuch"); err == nil {
		t.Error("Stats on unknown collection should fail")
	}
}

func TestCreateIndexRealAndVirtual(t *testing.T) {
	cat := newTestCatalog(t, 20)
	p := pattern.MustParse("/site/item/quantity")

	real, err := cat.CreateIndex("IR", "items", p, sqltype.Double)
	if err != nil {
		t.Fatal(err)
	}
	if real.Virtual || real.Phys == nil {
		t.Error("real index misconfigured")
	}
	if real.Entries() != 20 {
		t.Errorf("real entries = %d", real.Entries())
	}

	virt, err := cat.CreateVirtualIndex("IV", "items", p, sqltype.Double)
	if err != nil {
		t.Fatal(err)
	}
	if !virt.Virtual || virt.Phys != nil {
		t.Error("virtual index misconfigured")
	}
	if virt.EstEntries != 20 {
		t.Errorf("virtual estimated entries = %d, want 20", virt.EstEntries)
	}
	if virt.Pages() < 1 {
		t.Error("virtual index should estimate >= 1 page")
	}

	// Virtual estimate should be within 3x of the real size for the same
	// definition (both are page counts of the same data).
	rp, vp := float64(real.Pages()), float64(virt.Pages())
	if vp > 3*rp+2 || rp > 3*vp+2 {
		t.Errorf("size estimate far off: real=%v virtual=%v", rp, vp)
	}

	if _, err := cat.CreateIndex("IR", "items", p, sqltype.Double); err == nil {
		t.Error("duplicate index name should fail")
	}
	if _, err := cat.CreateIndex("IX", "nosuch", p, sqltype.Double); err == nil {
		t.Error("index on unknown collection should fail")
	}
}

func TestDropAndLookup(t *testing.T) {
	cat := newTestCatalog(t, 5)
	p := pattern.MustParse("//quantity")
	cat.CreateIndex("I1", "items", p, sqltype.Double)
	if cat.Index("I1") == nil {
		t.Fatal("Index lookup failed")
	}
	if !cat.DropIndex("I1") || cat.DropIndex("I1") {
		t.Error("drop semantics broken")
	}
	if cat.Index("I1") != nil {
		t.Error("dropped index still present")
	}
}

func TestIndexesSortedAndFiltered(t *testing.T) {
	cat := newTestCatalog(t, 5)
	cat.Store().MustCreate("other").InsertXML(`<r><x>1</x></r>`)
	cat.CreateIndex("B", "items", pattern.MustParse("//quantity"), sqltype.Double)
	cat.CreateIndex("A", "items", pattern.MustParse("//name"), sqltype.Varchar)
	cat.CreateIndex("C", "other", pattern.MustParse("//x"), sqltype.Double)
	got := cat.Indexes("items")
	if len(got) != 2 || got[0].Name != "A" || got[1].Name != "B" {
		t.Errorf("Indexes(items) = %v", got)
	}
	if all := cat.Indexes(""); len(all) != 3 {
		t.Errorf("Indexes(\"\") = %d", len(all))
	}
}

func TestFindCovering(t *testing.T) {
	cat := newTestCatalog(t, 10)
	cat.CreateIndex("GEN", "items", pattern.MustParse("/site/item/*"), sqltype.Double)
	cat.CreateIndex("STR", "items", pattern.MustParse("/site/item/*"), sqltype.Varchar)
	q := pattern.MustParse("/site/item/quantity")
	got := cat.FindCovering("items", q, sqltype.Double)
	if len(got) != 1 || got[0].Name != "GEN" {
		t.Errorf("FindCovering = %v", got)
	}
	if got := cat.FindCovering("items", pattern.MustParse("/other/path"), sqltype.Double); len(got) != 0 {
		t.Errorf("non-covered query matched %v", got)
	}
}

func TestAutoNameAndDDL(t *testing.T) {
	cat := newTestCatalog(t, 1)
	n1 := cat.AutoName(pattern.MustParse("//item/@id"), sqltype.Varchar)
	n2 := cat.AutoName(pattern.MustParse("//item/@id"), sqltype.Varchar)
	if n1 == n2 {
		t.Error("AutoName must be unique")
	}
	if !strings.HasPrefix(n1, "IDX_AT_ID_STR_") {
		t.Errorf("AutoName = %q", n1)
	}
	def, _ := cat.CreateVirtualIndex("V", "items", pattern.MustParse("//quantity"), sqltype.Double)
	if !strings.Contains(def.DDL(), "XMLPATTERN '//quantity'") {
		t.Errorf("DDL = %q", def.DDL())
	}
	if !strings.Contains(def.String(), "virtual") {
		t.Errorf("String = %q", def.String())
	}
	if def.Key() != "items|//quantity|dbl" {
		t.Errorf("Key = %q", def.Key())
	}
}

func TestInsertDocumentMaintainsIndexes(t *testing.T) {
	cat := newTestCatalog(t, 10)
	def, err := cat.CreateIndex("IQ", "items", pattern.MustParse("/site/item/quantity"), sqltype.Double)
	if err != nil {
		t.Fatal(err)
	}
	before := def.Entries()
	id, added, err := cat.InsertDocument("items", `<site><item id="new"><quantity>77</quantity></item></site>`)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Errorf("added = %d, want 1", added)
	}
	if def.Entries() != before+1 {
		t.Errorf("entries = %d, want %d", def.Entries(), before+1)
	}
	v, _ := sqltype.Cast(sqltype.Double, "77")
	res, err := def.Phys.Scan(sqltype.Eq, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 {
		t.Errorf("new entry not findable: %d", len(res.Entries))
	}
	removed, err := cat.DeleteDocument("items", id)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || def.Entries() != before {
		t.Errorf("removed=%d entries=%d want back to %d", removed, def.Entries(), before)
	}
	res, _ = def.Phys.Scan(sqltype.Eq, v)
	if len(res.Entries) != 0 {
		t.Error("deleted entry still in index")
	}
	if _, err := cat.DeleteDocument("items", id); err == nil {
		t.Error("double delete should fail")
	}
	if _, _, err := cat.InsertDocument("items", "<broken"); err == nil {
		t.Error("bad XML insert should fail")
	}
	if _, _, err := cat.InsertDocument("nosuch", "<a/>"); err == nil {
		t.Error("insert into unknown collection should fail")
	}
}
