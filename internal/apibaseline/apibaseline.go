// Package apibaseline lists a Go package's exported API surface as
// stable text lines, for diffing against a committed baseline file
// (api/v1.txt). It is the engine behind cmd/apicheck and the advisor
// package's compatibility test: any add, rename, or removal of an
// exported identifier shows up as a baseline diff that must be
// committed deliberately.
package apibaseline

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

// Identifiers returns the exported API surface of the package in dir as
// sorted lines:
//
//	<pkg>: const <Name>
//	<pkg>: func <Name>
//	<pkg>: method <Type>.<Name>
//	<pkg>: type <Name>
//	<pkg>: field <Type>.<Name>
//	<pkg>: var <Name>
//
// label names the package in the output (e.g. "advisor"). Test files
// are ignored; only syntax is inspected, so the listing needs no build
// context.
func Identifiers(label, dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var out []string
	add := func(format string, args ...any) {
		out = append(out, fmt.Sprintf("%s: %s", label, fmt.Sprintf(format, args...)))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					if d.Recv == nil {
						add("func %s", d.Name.Name)
					} else if recv := receiverName(d.Recv); recv != "" && ast.IsExported(recv) {
						add("method %s.%s", recv, d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if !s.Name.IsExported() {
								continue
							}
							add("type %s", s.Name.Name)
							listTypeMembers(add, s)
						case *ast.ValueSpec:
							kind := "var"
							if d.Tok == token.CONST {
								kind = "const"
							}
							for _, name := range s.Names {
								if name.IsExported() {
									add("%s %s", kind, name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(out)
	return dedupe(out), nil
}

// listTypeMembers records the exported fields of a struct type and the
// methods of an interface type — the parts of a type's shape that are
// API surface on their own.
func listTypeMembers(add func(string, ...any), s *ast.TypeSpec) {
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			for _, name := range f.Names {
				if name.IsExported() {
					add("field %s.%s", s.Name.Name, name.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			for _, name := range m.Names {
				if name.IsExported() {
					add("method %s.%s", s.Name.Name, name.Name)
				}
			}
		}
	}
}

// receiverName extracts the receiver's base type name.
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name
	}
	return ""
}

func dedupe(in []string) []string {
	out := in[:0]
	var prev string
	for i, s := range in {
		if i == 0 || s != prev {
			out = append(out, s)
		}
		prev = s
	}
	return out
}

// Surface lists the exported identifiers of every (label, dir) pair in
// order, concatenated into one baseline document.
func Surface(packages [][2]string) (string, error) {
	var lines []string
	for _, p := range packages {
		ids, err := Identifiers(p[0], p[1])
		if err != nil {
			return "", err
		}
		lines = append(lines, ids...)
	}
	return strings.Join(lines, "\n") + "\n", nil
}
