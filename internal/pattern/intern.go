package pattern

import (
	"sync"
	"sync/atomic"
)

// ID is a dense interned-pattern identifier. IDs are only meaningful
// relative to the Interner that issued them; the zero Interner state
// issues IDs from 0 upward in interning order.
type ID int32

// internEntry pairs an issued ID with its compiled matcher, so the
// lock-free lookup resolves both in one load.
type internEntry struct {
	id ID
	m  *Matcher
}

// Interner canonicalizes patterns to dense integer IDs and caches one
// compiled Matcher per distinct pattern, so Compile never re-runs for a
// pattern the process has already seen. It is safe for concurrent use;
// the hot path (an already-interned pattern) is one lock-free map load
// and allocates nothing.
type Interner struct {
	byStr sync.Map // pattern string -> *internEntry

	mu sync.Mutex // serializes writers
	ms atomic.Pointer[[]*Matcher]
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	in := &Interner{}
	in.ms.Store(&[]*Matcher{})
	return in
}

// Intern returns p's dense ID, assigning one on first sight.
func (in *Interner) Intern(p Pattern) ID {
	id, _ := in.intern(p)
	return id
}

// InternMatcher returns p's dense ID and its cached compiled matcher.
func (in *Interner) InternMatcher(p Pattern) (ID, *Matcher) {
	return in.intern(p)
}

// Matcher returns the cached matcher for p (compiling on first sight).
func (in *Interner) Matcher(p Pattern) *Matcher {
	_, m := in.intern(p)
	return m
}

// At returns the matcher for a previously issued ID.
func (in *Interner) At(id ID) *Matcher {
	return (*in.ms.Load())[id]
}

// Len returns the number of distinct patterns interned.
func (in *Interner) Len() int {
	return len(*in.ms.Load())
}

func (in *Interner) intern(p Pattern) (ID, *Matcher) {
	key := p.String()
	if e, ok := in.byStr.Load(key); ok {
		ent := e.(*internEntry)
		return ent.id, ent.m
	}

	m := Compile(p)
	in.mu.Lock()
	if e, ok := in.byStr.Load(key); ok { // lost the race
		in.mu.Unlock()
		ent := e.(*internEntry)
		return ent.id, ent.m
	}
	// Publish the matcher slice append-only: readers holding the old
	// header never index past their snapshot's length, so appending in
	// place (or growing into a fresh array) is safe before the store.
	old := *in.ms.Load()
	next := append(old, m)
	id := ID(len(old))
	in.ms.Store(&next)
	in.byStr.Store(key, &internEntry{id: id, m: m})
	in.mu.Unlock()
	return id, m
}
