// Package pattern implements linear XML path patterns, the index-pattern
// language of DB2 pureXML value indexes (CREATE INDEX ... GENERATE KEY
// USING XMLPATTERN '...') that the paper's advisor recommends.
//
// A pattern is a sequence of steps. Each step has an axis — child ("/") or
// descendant-or-self-then-child ("//") — and a node test: an element name,
// the element wildcard "*", an attribute "@name", the attribute wildcard
// "@*", or "text()". Examples:
//
//	/site/regions/namerica/item/quantity
//	/site/regions/*/item/*
//	//item/@id
//	//*
//
// The package provides exact containment and intersection tests for this
// fragment (XP{/,//,*}; linear patterns, so both are PTIME via small
// automata), matching against concrete rooted paths, and the generalization
// primitives used to build the advisor's candidate DAG.
package pattern

import (
	"fmt"
	"strings"
)

// Axis is the relationship of a step to the previous one.
type Axis uint8

const (
	// Child is the "/" axis: the node is a direct child.
	Child Axis = iota
	// Descendant is the "//" axis: the node is any descendant (one or
	// more levels below, with zero or more intervening elements).
	Descendant
)

// TestKind classifies a step's node test.
type TestKind uint8

const (
	// TestElem matches element nodes (Name == "" means wildcard "*").
	TestElem TestKind = iota
	// TestAttr matches attribute nodes (Name == "" means wildcard "@*").
	TestAttr
	// TestText matches text nodes ("text()").
	TestText
)

// Step is one location step of a linear pattern.
type Step struct {
	Axis Axis
	Kind TestKind
	Name string // empty means wildcard (for TestElem / TestAttr)
}

// IsWildcard reports whether the step's node test is a wildcard.
func (s Step) IsWildcard() bool {
	return s.Kind != TestText && s.Name == ""
}

// String renders the step's node test (without the axis).
func (s Step) String() string {
	switch s.Kind {
	case TestElem:
		if s.Name == "" {
			return "*"
		}
		return s.Name
	case TestAttr:
		if s.Name == "" {
			return "@*"
		}
		return "@" + s.Name
	case TestText:
		return "text()"
	}
	return "?"
}

// Pattern is a linear XML path pattern. The zero value is the empty
// (invalid) pattern; construct with Parse or MustParse.
type Pattern struct {
	Steps []Step
	str   string // cached canonical form
}

// Parse parses a pattern string. The grammar is
//
//	pattern := ("/" | "//") step (("/" | "//") step)*
//	step    := name | "*" | "@" name | "@*" | "text()"
//
// A leading "/" anchors the first step at the document root; a leading
// "//" allows it at any depth. text() and attribute steps may appear only
// in the final position (as in DB2 XMLPATTERN).
func Parse(s string) (Pattern, error) {
	orig := s
	if s == "" {
		return Pattern{}, fmt.Errorf("pattern: empty pattern")
	}
	if !strings.HasPrefix(s, "/") {
		return Pattern{}, fmt.Errorf("pattern %q: must start with / or //", orig)
	}
	var steps []Step
	for len(s) > 0 {
		axis := Child
		if strings.HasPrefix(s, "//") {
			axis = Descendant
			s = s[2:]
		} else if strings.HasPrefix(s, "/") {
			s = s[1:]
		} else {
			return Pattern{}, fmt.Errorf("pattern %q: expected / before %q", orig, s)
		}
		end := strings.IndexByte(s, '/')
		var tok string
		if end < 0 {
			tok, s = s, ""
		} else {
			tok, s = s[:end], s[end:]
		}
		step, err := parseStep(tok)
		if err != nil {
			return Pattern{}, fmt.Errorf("pattern %q: %v", orig, err)
		}
		step.Axis = axis
		steps = append(steps, step)
	}
	// The subset-simulation bitmask in the matcher is a uint64; 60 steps
	// is far beyond any real document depth.
	if len(steps) > 60 {
		return Pattern{}, fmt.Errorf("pattern %q: too many steps (%d > 60)", orig, len(steps))
	}
	for i, st := range steps {
		if (st.Kind == TestAttr || st.Kind == TestText) && i != len(steps)-1 {
			return Pattern{}, fmt.Errorf("pattern %q: %s step must be last", orig, st)
		}
	}
	p := Pattern{Steps: steps}
	p.str = p.render()
	return p, nil
}

func parseStep(tok string) (Step, error) {
	switch {
	case tok == "":
		return Step{}, fmt.Errorf("empty step")
	case tok == "*":
		return Step{Kind: TestElem}, nil
	case tok == "@*":
		return Step{Kind: TestAttr}, nil
	case tok == "text()":
		return Step{Kind: TestText}, nil
	case strings.HasPrefix(tok, "@"):
		name := tok[1:]
		if !validName(name) {
			return Step{}, fmt.Errorf("bad attribute name %q", tok)
		}
		return Step{Kind: TestAttr, Name: name}, nil
	default:
		if !validName(tok) {
			return Step{}, fmt.Errorf("bad name test %q", tok)
		}
		return Step{Kind: TestElem, Name: tok}, nil
	}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '-' || c == '.' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9') || c >= 0x80
		if !ok {
			return false
		}
		if i == 0 && (c == '-' || c == '.' || (c >= '0' && c <= '9')) {
			return false
		}
	}
	return true
}

// MustParse parses s and panics on error; for tests and literals.
func MustParse(s string) Pattern {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

func (p Pattern) render() string {
	var sb strings.Builder
	for _, st := range p.Steps {
		if st.Axis == Descendant {
			sb.WriteString("//")
		} else {
			sb.WriteByte('/')
		}
		sb.WriteString(st.String())
	}
	return sb.String()
}

// String returns the canonical textual form of the pattern.
func (p Pattern) String() string {
	if p.str == "" && len(p.Steps) > 0 {
		p.str = p.render()
	}
	return p.str
}

// IsZero reports whether the pattern is the invalid zero value.
func (p Pattern) IsZero() bool { return len(p.Steps) == 0 }

// Len returns the number of steps.
func (p Pattern) Len() int { return len(p.Steps) }

// Last returns the final step. It panics on the zero pattern.
func (p Pattern) Last() Step { return p.Steps[len(p.Steps)-1] }

// LeafKind returns the node test kind of the final step, which determines
// what an index on this pattern stores (element values, attribute values,
// or text).
func (p Pattern) LeafKind() TestKind { return p.Last().Kind }

// Equal reports structural equality.
func (p Pattern) Equal(q Pattern) bool {
	if len(p.Steps) != len(q.Steps) {
		return false
	}
	for i := range p.Steps {
		if p.Steps[i] != q.Steps[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy whose Steps slice is independent of p's.
func (p Pattern) Clone() Pattern {
	steps := make([]Step, len(p.Steps))
	copy(steps, p.Steps)
	return Pattern{Steps: steps, str: p.str}
}

// Prefix returns the pattern made of p's first n steps, with the
// canonical form precomputed so the result interns and memoizes without
// re-rendering. It panics if n exceeds p's length; Prefix(0) is the
// zero pattern.
func (p Pattern) Prefix(n int) Pattern {
	q := Pattern{Steps: p.Steps[:n:n]}
	q.str = q.render()
	return q
}

// WithStep returns a copy of p whose i-th step is replaced by st.
func (p Pattern) WithStep(i int, st Step) Pattern {
	q := p.Clone()
	q.Steps[i] = st
	q.str = q.render()
	return q
}

// WildcardCount returns the number of wildcard steps, a simple measure of
// generality used for ordering DAG construction.
func (p Pattern) WildcardCount() int {
	n := 0
	for _, st := range p.Steps {
		if st.IsWildcard() {
			n++
		}
	}
	return n
}

// DescendantCount returns the number of descendant-axis steps.
func (p Pattern) DescendantCount() int {
	n := 0
	for _, st := range p.Steps {
		if st.Axis == Descendant {
			n++
		}
	}
	return n
}

// Names returns every concrete name mentioned in the pattern.
func (p Pattern) Names() []string {
	var out []string
	for _, st := range p.Steps {
		if st.Name != "" {
			out = append(out, st.Name)
		}
	}
	return out
}

// Universal reports whether the pattern is "//*" (the virtual index pattern
// the Enumerate Indexes optimizer mode plants) or its attribute/text
// counterparts "//@*", "//text()".
func (p Pattern) Universal() bool {
	return len(p.Steps) == 1 && p.Steps[0].Axis == Descendant && p.Steps[0].Name == ""
}
