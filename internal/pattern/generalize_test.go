package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPairwiseLUBPaperExample(t *testing.T) {
	// Paper §2.2: the two region queries generalize to a wildcard region.
	p := MustParse("/regions/namerica/item/quantity")
	q := MustParse("/regions/africa/item/quantity")
	lub, ok := PairwiseLUB(p, q)
	if !ok {
		t.Fatal("PairwiseLUB failed")
	}
	if lub.String() != "/regions/*/item/quantity" {
		t.Fatalf("lub = %q", lub.String())
	}
	// Second step: against samerica/item/price, yielding /regions/*/item/*.
	r := MustParse("/regions/samerica/item/price")
	lub2, ok := PairwiseLUB(lub, r)
	if !ok {
		t.Fatal("second PairwiseLUB failed")
	}
	if lub2.String() != "/regions/*/item/*" {
		t.Fatalf("lub2 = %q", lub2.String())
	}
}

func TestPairwiseLUBRejects(t *testing.T) {
	cases := []struct{ p, q string }{
		{"/a/b", "/a/b/c"}, // different lengths
		{"/a/b", "/a//b"},  // different axes
		{"/a/@x", "/a/y"},  // different kinds at a position
		{"/a/b", "/a/b"},   // identical: no new pattern
		{"/a/*", "/a/b"},   // LUB equals p
	}
	for _, tc := range cases {
		if lub, ok := PairwiseLUB(MustParse(tc.p), MustParse(tc.q)); ok {
			t.Errorf("PairwiseLUB(%q, %q) = %q, want rejection", tc.p, tc.q, lub)
		}
	}
}

func TestPairwiseLUBContainsBoth(t *testing.T) {
	// Property: a successful LUB contains both inputs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPattern(rng)
		q := mutatePattern(rng, p)
		lub, ok := PairwiseLUB(p, q)
		if !ok {
			return true
		}
		return Contains(lub, p) && Contains(lub, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestWildcardAt(t *testing.T) {
	p := MustParse("/a/b/@id")
	if g, ok := WildcardAt(p, 1); !ok || g.String() != "/a/*/@id" {
		t.Errorf("WildcardAt(1) = %v, %v", g, ok)
	}
	if g, ok := WildcardAt(p, 2); !ok || g.String() != "/a/b/@*" {
		t.Errorf("WildcardAt(2) = %v, %v", g, ok)
	}
	if _, ok := WildcardAt(MustParse("/a/*/c"), 1); ok {
		t.Error("WildcardAt on existing wildcard should fail")
	}
	if _, ok := WildcardAt(MustParse("/a/text()"), 1); ok {
		t.Error("WildcardAt on text() should fail")
	}
	if _, ok := WildcardAt(p, 7); ok {
		t.Error("WildcardAt out of range should fail")
	}
	// Result must contain the original.
	g, _ := WildcardAt(p, 0)
	if !Contains(g, p) {
		t.Error("wildcarded pattern must contain the original")
	}
}

func TestDescendantLeaf(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/site/regions/namerica/item", "//item"},
		{"/a/b/@id", "//@id"},
		{"/a/text()", "//text()"},
		{"/a/*", "//*"},
	}
	for _, tc := range cases {
		g, ok := DescendantLeaf(MustParse(tc.in))
		if !ok || g.String() != tc.want {
			t.Errorf("DescendantLeaf(%q) = %q,%v want %q", tc.in, g, ok, tc.want)
		}
		if !Contains(g, MustParse(tc.in)) {
			t.Errorf("DescendantLeaf(%q) does not contain input", tc.in)
		}
	}
	if _, ok := DescendantLeaf(MustParse("//item")); ok {
		t.Error("DescendantLeaf of //item should report no new pattern")
	}
}

func TestUniversalFor(t *testing.T) {
	if UniversalFor(TestElem).String() != "//*" {
		t.Error("UniversalFor(TestElem)")
	}
	if UniversalFor(TestAttr).String() != "//@*" {
		t.Error("UniversalFor(TestAttr)")
	}
	if UniversalFor(TestText).String() != "//text()" {
		t.Error("UniversalFor(TestText)")
	}
	// Universal patterns contain every same-kind pattern.
	for _, s := range []string{"/a/b/c", "//x", "/a/*"} {
		if !Contains(UniversalFor(TestElem), MustParse(s)) {
			t.Errorf("//* should contain %q", s)
		}
	}
}

func TestRelaxAxisAt(t *testing.T) {
	p := MustParse("/a/b/c")
	g, ok := RelaxAxisAt(p, 1)
	if !ok || g.String() != "/a//b/c" {
		t.Errorf("RelaxAxisAt = %q, %v", g, ok)
	}
	if !Contains(g, p) {
		t.Error("axis-relaxed pattern must contain the original")
	}
	if _, ok := RelaxAxisAt(MustParse("//a"), 0); ok {
		t.Error("relaxing an already-descendant step should fail")
	}
}

func TestSharedConcreteSteps(t *testing.T) {
	p := MustParse("/regions/namerica/item/quantity")
	q := MustParse("/regions/africa/item/quantity")
	if got := SharedConcreteSteps(p, q); got != 3 {
		t.Errorf("SharedConcreteSteps = %d, want 3", got)
	}
	if got := SharedConcreteSteps(p, MustParse("/a/b")); got != 0 {
		t.Errorf("different lengths: %d, want 0", got)
	}
}

func TestDedupe(t *testing.T) {
	pats := []Pattern{
		MustParse("/a/b"),
		MustParse("/a/c"),
		MustParse("/a/b"),
		MustParse("//x"),
		MustParse("/a/c"),
	}
	got := Dedupe(pats)
	if len(got) != 3 {
		t.Fatalf("Dedupe len = %d, want 3", len(got))
	}
	if got[0].String() != "/a/b" || got[1].String() != "/a/c" || got[2].String() != "//x" {
		t.Errorf("Dedupe order changed: %v", got)
	}
}

// --- property-based checks on the containment machinery ---

var propNames = []string{"a", "b", "c", "item", "quantity"}

func randomPattern(rng *rand.Rand) Pattern {
	n := 1 + rng.Intn(4)
	steps := make([]Step, n)
	for i := range steps {
		st := Step{Axis: Child, Kind: TestElem, Name: propNames[rng.Intn(len(propNames))]}
		if rng.Intn(3) == 0 {
			st.Axis = Descendant
		}
		if rng.Intn(4) == 0 {
			st.Name = "" // wildcard
		}
		steps[i] = st
	}
	// Occasionally make the leaf an attribute.
	if rng.Intn(4) == 0 {
		steps[n-1].Kind = TestAttr
	}
	p := Pattern{Steps: steps}
	p.str = p.render()
	return p
}

func mutatePattern(rng *rand.Rand, p Pattern) Pattern {
	q := p.Clone()
	i := rng.Intn(len(q.Steps))
	if q.Steps[i].Kind != TestText {
		q.Steps[i].Name = propNames[rng.Intn(len(propNames))]
	}
	q.str = q.render()
	return q
}

// randomWordFor generates a concrete path that the pattern matches, by
// expanding each step (wildcards to a fresh name, descendant gaps to 0-2
// filler elements).
func randomWordFor(rng *rand.Rand, p Pattern) string {
	var parts []string
	for _, st := range p.Steps {
		if st.Axis == Descendant {
			for k := rng.Intn(3); k > 0; k-- {
				parts = append(parts, "filler")
			}
		}
		name := st.Name
		if name == "" {
			name = "wild"
		}
		switch st.Kind {
		case TestElem:
			parts = append(parts, name)
		case TestAttr:
			parts = append(parts, "@"+name)
		case TestText:
			parts = append(parts, "text()")
		}
	}
	return "/" + joinSlash(parts)
}

func joinSlash(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "/"
		}
		out += p
	}
	return out
}

// Property: containment is consistent with matching — if Contains(p, q)
// then every generated word of q matches p.
func TestContainmentSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPattern(rng)
		q := randomPattern(rng)
		if !Contains(p, q) {
			return true
		}
		for i := 0; i < 5; i++ {
			w := randomWordFor(rng, q)
			if !MatchesPath(q, w) {
				// Generator bug would invalidate the test; flag it.
				return false
			}
			if !MatchesPath(p, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: if some generated word of q fails to match p, then p cannot
// contain q (completeness direction, via witness).
func TestContainmentCompletenessWitness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPattern(rng)
		q := randomPattern(rng)
		for i := 0; i < 5; i++ {
			w := randomWordFor(rng, q)
			if MatchesPath(q, w) && !MatchesPath(p, w) {
				return !Contains(p, q)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: containment is transitive on random triples.
func TestContainmentTransitive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randomPattern(rng), randomPattern(rng), randomPattern(rng)
		if Contains(a, b) && Contains(b, c) {
			return Contains(a, c)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Overlaps is implied by containment (a contained non-empty
// language shares all its words).
func TestContainmentImpliesOverlap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPattern(rng)
		q := randomPattern(rng)
		if Contains(p, q) {
			return Overlaps(p, q)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMatchPath(b *testing.B) {
	m := Compile(MustParse("//regions//item/*"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MatchPath("/site/regions/namerica/item/quantity")
	}
}
