package pattern

import "testing"

// benchPairs is a representative mix of containment queries: equal
// patterns, wildcard and axis generalizations, descendant leaves,
// attribute/text leaves, and non-containing pairs — the shapes the DAG
// build and the optimizer's index-matching test see constantly.
var benchPairs = func() [][2]Pattern {
	specs := [][2]string{
		{"/site/regions/namerica/item/quantity", "/site/regions/namerica/item/quantity"},
		{"/site/regions/*/item/quantity", "/site/regions/namerica/item/quantity"},
		{"/site/regions/*/item/*", "/site/regions/africa/item/price"},
		{"/site/*/*", "/site/regions/item"},
		{"//item", "/site/regions/namerica/item"},
		{"//item/quantity", "/site/regions/samerica/item/quantity"},
		{"/site//item", "/site/regions/europe/item"},
		{"//*", "/site/regions/asia/item"},
		{"//@id", "/site/people/person/@id"},
		{"/site/people/person/@*", "/site/people/person/@income"},
		{"//text()", "/site/regions/item/name/text()"},
		{"/a//b//c", "/a/b/x/b/y/c"},
		{"/a//b//c", "/a//c"},
		{"/site/regions/namerica/item", "/site/regions/africa/item"},
		{"/site/regions/*/item/price", "/site/regions/africa/item/quantity"},
		{"/site/open_auctions/open_auction/bidder/increase", "/site/closed_auctions/closed_auction/price"},
		{"//person/@id", "//item/@id"},
		{"/site/regions/namerica/item/quantity", "/site/regions/*/item/quantity"},
		{"/a/b/c", "/a//c"},
		{"//item", "//item/quantity"},
	}
	out := make([][2]Pattern, len(specs))
	for i, s := range specs {
		out[i] = [2]Pattern{MustParse(s[0]), MustParse(s[1])}
	}
	return out
}()

// BenchmarkContains measures the raw (uncached) containment decision
// over the pair mix.
func BenchmarkContains(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, pq := range benchPairs {
			Contains(pq[0], pq[1])
		}
	}
}

// BenchmarkContainsCached measures the memoized hot path (all pairs
// cached after the first iteration) — the optimizer's inner loop.
func BenchmarkContainsCached(b *testing.B) {
	b.ReportAllocs()
	for _, pq := range benchPairs {
		ContainsCached(pq[0], pq[1]) // warm
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pq := range benchPairs {
			ContainsCached(pq[0], pq[1])
		}
	}
}

// BenchmarkOverlaps measures the raw intersection-non-emptiness test
// over the pair mix (the update-cost path).
func BenchmarkOverlaps(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, pq := range benchPairs {
			Overlaps(pq[0], pq[1])
		}
	}
}
