package pattern

import (
	"strings"
	"testing"
)

func TestParseAndString(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical form; "" means same as in
	}{
		{"/a", ""},
		{"/a/b/c", ""},
		{"//a", ""},
		{"/a//b", ""},
		{"//*", ""},
		{"/a/*/c", ""},
		{"/a/b/@id", ""},
		{"//@*", ""},
		{"/a/b/text()", ""},
		{"//text()", ""},
		{"/site/regions/namerica/item/quantity", ""},
		{"/regions/*/item/*", ""},
		{"/a//*", ""},
		{"/ns:tag/sub-tag/x.y", ""},
	}
	for _, tc := range cases {
		p, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		want := tc.want
		if want == "" {
			want = tc.in
		}
		if got := p.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"a/b",                                // no leading slash
		"/",                                  // empty step
		"/a/",                                // trailing empty step
		"/a//",                               // trailing empty descendant step
		"/@id/b",                             // attribute not last
		"/text()/b",                          // text not last
		"/a/@",                               // empty attribute name
		"/a/b[1]",                            // predicates are not part of index patterns
		"/a b",                               // bad name
		"/1a",                                // name starting with digit
		"/" + strings.Repeat("a/", 61) + "a", // too deep
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestMatchPath(t *testing.T) {
	cases := []struct {
		pat  string
		path string
		want bool
	}{
		{"/a/b/c", "/a/b/c", true},
		{"/a/b/c", "/a/b", false},
		{"/a/b/c", "/a/b/c/d", false},
		{"/a/b/c", "/a/x/c", false},
		{"/a/*/c", "/a/b/c", true},
		{"/a/*/c", "/a/b/b/c", false},
		{"//c", "/c", true},
		{"//c", "/a/b/c", true},
		{"//c", "/a/b/c/d", false},
		{"/a//c", "/a/c", true},
		{"/a//c", "/a/b/c", true},
		{"/a//c", "/a/b/b/b/c", true},
		{"/a//c", "/b/c", false},
		{"//*", "/a", true},
		{"//*", "/a/b/c", true},
		{"//*", "/a/@id", false}, // element wildcard does not match attributes
		{"//@*", "/a/@id", true},
		{"//@id", "/a/b/@id", true},
		{"//@id", "/a/b/@other", false},
		{"/a/@id", "/a/@id", true},
		{"/a/@id", "/a/b/@id", false},
		{"//text()", "/a/b/text()", true},
		{"/a/text()", "/a/text()", true},
		{"/a/text()", "/a/b/text()", false},
		{"/a//c", "/a/@c", false}, // attr label is not an element label
		{"//item/@id", "/site/regions/namerica/item/@id", true},
		{"/regions/*/item/quantity", "/regions/africa/item/quantity", true},
		{"/regions/*/item/quantity", "/regions/africa/item/price", false},
		// Descendant gaps are element-only: //@id cannot absorb text steps.
		{"//c", "/a/text()", false},
	}
	for _, tc := range cases {
		p := MustParse(tc.pat)
		if got := MatchesPath(p, tc.path); got != tc.want {
			t.Errorf("MatchesPath(%q, %q) = %v, want %v", tc.pat, tc.path, got, tc.want)
		}
	}
}

func TestMatchPathMalformed(t *testing.T) {
	p := MustParse("//*")
	for _, path := range []string{"", "a/b", "/a//b", "/a/*", "/a/@", "/a/text()/b"} {
		if MatchesPath(p, path) {
			t.Errorf("malformed path %q should not match", path)
		}
	}
}

func TestParseWord(t *testing.T) {
	w, err := ParseWord("/a/b/@id")
	if err != nil {
		t.Fatal(err)
	}
	want := []Sym{{TestElem, "a"}, {TestElem, "b"}, {TestAttr, "id"}}
	if len(w) != len(want) {
		t.Fatalf("len = %d", len(w))
	}
	for i := range w {
		if w[i] != want[i] {
			t.Errorf("sym[%d] = %+v, want %+v", i, w[i], want[i])
		}
	}
}

func TestContains(t *testing.T) {
	cases := []struct {
		p, q string
		want bool
	}{
		// Reflexive.
		{"/a/b/c", "/a/b/c", true},
		// Wildcard generalization.
		{"/a/*/c", "/a/b/c", true},
		{"/a/b/c", "/a/*/c", false},
		// Descendant generalization.
		{"//c", "/a/b/c", true},
		{"//c", "/c", true},
		{"/a/b/c", "//c", false},
		{"/a//c", "/a/b/c", true},
		{"/a//c", "/a/c", true},
		{"/a//c", "/b/c", false},
		{"//*", "/a/b/c", true},
		{"//*", "//c", true},
		{"//*", "/a/*/c", true},
		// Attribute kinds are disjoint from elements.
		{"//*", "/a/@id", false},
		{"//@*", "/a/@id", true},
		{"//@*", "/a/b", false},
		{"//@id", "/a/b/@id", true},
		{"/a/@*", "/a/@id", true},
		{"/a/@id", "/a/@*", false},
		// Mixed wildcard + descendant.
		{"/a//*", "/a/b/c", true},
		{"/a//*", "/a/b", true},
		{"/a//*", "/b/c", false},
		{"//b//c", "/a/b/c", true},
		{"//b//c", "/a/b/d/c", true},
		{"//b//c", "/a/c", false},
		{"/a/*/c", "/a/b/b/c", false},
		// The paper's example chain.
		{"/regions/*/item/quantity", "/regions/namerica/item/quantity", true},
		{"/regions/*/item/*", "/regions/*/item/quantity", true},
		{"/regions/*/item/*", "/regions/samerica/item/price", true},
		{"/regions/*/item/quantity", "/regions/*/item/*", false},
		// Descendant on both sides.
		{"//c", "/a//c", true},
		{"/a//c", "//c", false},
		{"//a//c", "//a//b//c", true},
		{"//a//b//c", "//a//c", false},
		// Equivalent but syntactically different: /a//* vs /a//*//*?
		// /a//*//* requires at least two levels below a.
		{"/a//*", "/a//*//*", true},
		{"/a//*//*", "/a//*", false},
		// text().
		{"//text()", "/a/b/text()", true},
		{"/a/text()", "//text()", false},
		{"//*", "//text()", false},
	}
	for _, tc := range cases {
		p, q := MustParse(tc.p), MustParse(tc.q)
		if got := Contains(p, q); got != tc.want {
			t.Errorf("Contains(%q, %q) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
	}
}

func TestContainsProperlyAndEquivalent(t *testing.T) {
	if !ContainsProperly(MustParse("//c"), MustParse("/a/c")) {
		t.Error("//c should properly contain /a/c")
	}
	if ContainsProperly(MustParse("/a/c"), MustParse("/a/c")) {
		t.Error("pattern should not properly contain itself")
	}
	// //*//c and //c are equivalent? //*//c requires depth>=2 while //c
	// also matches /c at depth 1, so NOT equivalent.
	if Equivalent(MustParse("//*//c"), MustParse("//c")) {
		t.Error("//*//c and //c must not be equivalent")
	}
	if !Equivalent(MustParse("/a//b"), MustParse("/a//b")) {
		t.Error("identical patterns must be equivalent")
	}
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		p, q string
		want bool
	}{
		{"/a/b", "/a/b", true},
		{"/a/b", "/a/c", false},
		{"/a/*", "/a/b", true},
		{"//c", "/a/b/c", true},
		{"//c", "/a/b", false},
		{"/a//c", "//b/c", true}, // /a/b/c in both
		{"/a/@id", "//@id", true},
		{"/a/@id", "//@other", false},
		{"//*", "//@*", false}, // element vs attribute: disjoint
		{"/regions/namerica/item", "/regions/*/item", true},
		{"/a/b/c", "/a/b/c/d", false},
		{"//text()", "/a/text()", true},
		{"//text()", "/a/b", false},
	}
	for _, tc := range cases {
		p, q := MustParse(tc.p), MustParse(tc.q)
		if got := Overlaps(p, q); got != tc.want {
			t.Errorf("Overlaps(%q, %q) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
		if got := Overlaps(q, p); got != tc.want {
			t.Errorf("Overlaps(%q, %q) = %v, want %v (symmetry)", tc.q, tc.p, got, tc.want)
		}
	}
}

func TestZeroPattern(t *testing.T) {
	var z Pattern
	if !z.IsZero() {
		t.Error("zero pattern should be zero")
	}
	if Contains(z, MustParse("/a")) || Contains(MustParse("/a"), z) {
		t.Error("containment with zero pattern should be false")
	}
	if Overlaps(z, MustParse("/a")) {
		t.Error("overlap with zero pattern should be false")
	}
}

func TestHelpers(t *testing.T) {
	p := MustParse("/a/*/c//d/@id")
	if p.Len() != 5 {
		t.Errorf("Len = %d", p.Len())
	}
	if p.WildcardCount() != 1 {
		t.Errorf("WildcardCount = %d", p.WildcardCount())
	}
	if p.DescendantCount() != 1 {
		t.Errorf("DescendantCount = %d", p.DescendantCount())
	}
	if p.LeafKind() != TestAttr {
		t.Errorf("LeafKind = %v", p.LeafKind())
	}
	names := strings.Join(p.Names(), ",")
	if names != "a,c,d,id" {
		t.Errorf("Names = %q", names)
	}
	if !MustParse("//*").Universal() || !MustParse("//@*").Universal() {
		t.Error("//* and //@* are universal")
	}
	if MustParse("//a").Universal() || MustParse("/a").Universal() {
		t.Error("named/child patterns are not universal")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := MustParse("/a/b")
	q := p.Clone()
	q.Steps[0].Name = "zzz"
	if p.Steps[0].Name != "a" {
		t.Error("Clone shares step storage with original")
	}
}

func TestWithStep(t *testing.T) {
	p := MustParse("/a/b/c")
	q := p.WithStep(1, Step{Axis: Child, Kind: TestElem, Name: "x"})
	if q.String() != "/a/x/c" {
		t.Errorf("WithStep = %q", q.String())
	}
	if p.String() != "/a/b/c" {
		t.Errorf("WithStep mutated receiver: %q", p.String())
	}
}
