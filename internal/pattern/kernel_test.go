package pattern

import (
	"fmt"
	"math/rand"
	"testing"
)

// overlapsReference is the original subset-product BFS over the symbolic
// alphabet, kept as the oracle for the product-reachability Overlaps.
func overlapsReference(p, q Pattern) bool {
	if p.IsZero() || q.IsZero() {
		return false
	}
	mp := Compile(p)
	mq := Compile(q)
	alpha := symbolicAlphabet(p, q)

	type pair struct{ pset, qset uint64 }
	pAcceptBit := uint64(1) << uint(len(p.Steps))
	qAcceptBit := uint64(1) << uint(len(q.Steps))

	start := pair{1, 1}
	seen := map[pair]bool{start: true}
	queue := []pair{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.pset&pAcceptBit != 0 && cur.qset&qAcceptBit != 0 {
			return true
		}
		for _, sym := range alpha {
			np := pair{mp.next(cur.pset, sym), mq.next(cur.qset, sym)}
			if np.pset == 0 || np.qset == 0 {
				continue
			}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return false
}

// checkKernelAgainstReference asserts every kernel entry point agrees
// with the reference implementations on one pattern pair.
func checkKernelAgainstReference(t *testing.T, p, q Pattern) {
	t.Helper()
	wantC := containsSlow(p, q)
	mp, mq := Compile(p), Compile(q)
	if got := mp.Contains(mq); got != wantC {
		t.Fatalf("Matcher.Contains(%q, %q) = %v, reference %v", p, q, got, wantC)
	}
	if r, ok := structuralContains(mp, mq); ok && r != wantC {
		t.Fatalf("structuralContains(%q, %q) = %v, reference %v", p, q, r, wantC)
	}
	if got := Contains(p, q); got != wantC {
		t.Fatalf("Contains(%q, %q) = %v, reference %v", p, q, got, wantC)
	}
	if got := ContainsCached(p, q); got != wantC {
		t.Fatalf("ContainsCached(%q, %q) = %v, reference %v", p, q, got, wantC)
	}
	wantO := overlapsReference(p, q)
	if got := Overlaps(p, q); got != wantO {
		t.Fatalf("Overlaps(%q, %q) = %v, reference %v", p, q, got, wantO)
	}
	if got := OverlapsCached(p, q); got != wantO {
		t.Fatalf("OverlapsCached(%q, %q) = %v, reference %v", p, q, got, wantO)
	}
	if wantC && !wantO {
		t.Fatalf("Contains(%q, %q) without overlap", p, q)
	}
}

// TestKernelMatchesReferenceRandom drives the differential check over a
// large deterministic sample of random pattern pairs, including related
// pairs (mutations and generalizations of the same pattern) that
// exercise the structural fast paths far more often than independent
// draws would.
func TestKernelMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4000; i++ {
		p := randomPattern(rng)
		var q Pattern
		switch i % 4 {
		case 0:
			q = randomPattern(rng)
		case 1:
			q = mutatePattern(rng, p)
		case 2: // wildcard generalization, often contained
			if g, ok := WildcardAt(p, rng.Intn(len(p.Steps))); ok {
				q = g
			} else {
				q = p.Clone()
			}
		case 3: // axis relaxation
			if g, ok := RelaxAxisAt(p, rng.Intn(len(p.Steps))); ok {
				q = g
			} else {
				q = p.Clone()
			}
		}
		checkKernelAgainstReference(t, p, q)
		checkKernelAgainstReference(t, q, p)
	}
}

// TestKernelDeepPatterns exercises the NFA search near the step bound,
// where the pooled scratch is most stressed.
func TestKernelDeepPatterns(t *testing.T) {
	deep := "/a"
	for i := 0; i < 55; i++ {
		deep += "/a"
	}
	q := MustParse(deep)
	if !Contains(MustParse("//a"), q) {
		t.Fatal("//a should contain a deep chain of a's")
	}
	wide := MustParse("//a//a//a//a//a//a//a//a")
	checkKernelAgainstReference(t, wide, q)
	checkKernelAgainstReference(t, q, wide)
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	p := MustParse("/a/b/c")
	q := MustParse("/a/b/c")
	r := MustParse("/a/b/*")
	id1, m1 := in.InternMatcher(p)
	id2, m2 := in.InternMatcher(q)
	if id1 != id2 || m1 != m2 {
		t.Fatalf("equal patterns interned differently: %d/%p vs %d/%p", id1, m1, id2, m2)
	}
	id3 := in.Intern(r)
	if id3 == id1 {
		t.Fatalf("distinct patterns share ID %d", id1)
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
	if in.At(id3).Pattern().String() != "/a/b/*" {
		t.Fatalf("At(%d) = %q", id3, in.At(id3).Pattern())
	}
}

func TestPairCacheBounded(t *testing.T) {
	c := newPairCache()
	for i := 0; i < 4*pairCacheCapacity; i++ {
		c.put(ID(i), ID(i+1), i%2 == 0)
	}
	if n := c.len(); n > pairCacheCapacity {
		t.Fatalf("cache grew to %d entries, capacity %d", n, pairCacheCapacity)
	}
	// Entries read back the value stored for their exact pair, or miss.
	hits := 0
	for i := 0; i < 4*pairCacheCapacity; i++ {
		if v, ok := c.get(ID(i), ID(i+1)); ok {
			hits++
			if v != (i%2 == 0) {
				t.Fatalf("pair (%d,%d): got %v want %v", i, i+1, v, i%2 == 0)
			}
		}
	}
	if hits == 0 {
		t.Fatal("no pair survived in the cache")
	}
}

func TestResetCaches(t *testing.T) {
	p := MustParse("/reset/probe/a")
	q := MustParse("/reset/probe/*")
	ContainsCached(q, p)
	OverlapsCached(q, p)
	before := Stats()
	if before.Interned == 0 || before.Contains.Size == 0 {
		t.Fatalf("expected warm kernel, got %+v", before)
	}
	ResetCaches()
	after := Stats()
	if after.Interned != 0 || after.Contains.Size != 0 || after.Overlaps.Size != 0 {
		t.Fatalf("ResetCaches left state behind: %+v", after)
	}
	// Counters are monotonic across resets.
	if after.Contains.Misses < before.Contains.Misses {
		t.Fatalf("miss counter went backwards: %d -> %d", before.Contains.Misses, after.Contains.Misses)
	}
	// The kernel still answers correctly after a reset.
	if !ContainsCached(q, p) {
		t.Fatal("ContainsCached wrong after reset")
	}
}

// TestKernelSelfBounds drives more distinct patterns through the
// process-wide interner than maxInternedPatterns and checks the kernel
// swaps itself out instead of growing without limit.
func TestKernelSelfBounds(t *testing.T) {
	ResetCaches()
	for i := 0; i <= maxInternedPatterns+16; i++ {
		Interned(Pattern{Steps: []Step{
			{Kind: TestElem, Name: "bound"},
			{Kind: TestElem, Name: fmt.Sprintf("p%d", i)},
		}})
	}
	if n := Stats().Interned; n >= maxInternedPatterns {
		t.Fatalf("interner grew to %d patterns, bound %d", n, maxInternedPatterns)
	}
	ResetCaches()
}

func TestKernelStatsCount(t *testing.T) {
	ResetCaches()
	p := MustParse("/stats/probe/x")
	q := MustParse("/stats/probe/*")
	base := Stats()
	ContainsCached(q, p)
	ContainsCached(q, p)
	st := Stats().Contains
	if st.Misses-base.Contains.Misses != 1 || st.Hits-base.Contains.Hits != 1 {
		t.Fatalf("want 1 miss + 1 hit, got Δmisses=%d Δhits=%d",
			st.Misses-base.Contains.Misses, st.Hits-base.Contains.Hits)
	}
}
