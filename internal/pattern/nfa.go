package pattern

import (
	"fmt"
	"strings"
	"sync"
)

// Sym is one symbol of a concrete rooted path, viewed as a word: an element
// label, an attribute label, or a text node.
type Sym struct {
	Kind TestKind
	Name string
}

// ParseWord parses a concrete rooted path such as "/site/item/@id" or
// "/site/item/name/text()" into its symbol sequence. Unlike patterns,
// words may not contain wildcards or "//".
func ParseWord(path string) ([]Sym, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("pattern: concrete path %q must start with /", path)
	}
	if strings.Contains(path, "//") {
		return nil, fmt.Errorf("pattern: concrete path %q may not contain //", path)
	}
	parts := strings.Split(path[1:], "/")
	word := make([]Sym, 0, len(parts))
	for i, part := range parts {
		switch {
		case part == "text()":
			if i != len(parts)-1 {
				return nil, fmt.Errorf("pattern: text() must be last in %q", path)
			}
			word = append(word, Sym{Kind: TestText})
		case strings.HasPrefix(part, "@"):
			if i != len(parts)-1 {
				return nil, fmt.Errorf("pattern: attribute must be last in %q", path)
			}
			if len(part) == 1 {
				return nil, fmt.Errorf("pattern: empty attribute name in %q", path)
			}
			word = append(word, Sym{Kind: TestAttr, Name: part[1:]})
		case part == "" || part == "*":
			return nil, fmt.Errorf("pattern: bad step %q in concrete path %q", part, path)
		default:
			word = append(word, Sym{Kind: TestElem, Name: part})
		}
	}
	return word, nil
}

// matches reports whether the step's node test accepts the symbol.
func (s Step) matches(sym Sym) bool {
	if s.Kind != sym.Kind {
		return false
	}
	if s.Kind == TestText {
		return true
	}
	return s.Name == "" || s.Name == sym.Name
}

// Matcher is a compiled pattern. State i means "the first i steps have been
// matched"; state len(Steps) is accepting. A descendant-axis step i adds a
// self-loop at state i over any element symbol (the intervening ancestors
// of a descendant are always elements).
type Matcher struct {
	pat Pattern
}

// Compile returns a matcher for p. Compilation is cheap; the Matcher type
// exists so hot paths can hoist pattern inspection out of loops and so the
// matching semantics live in one place.
func Compile(p Pattern) *Matcher {
	return &Matcher{pat: p}
}

// next advances the subset simulation of the pattern automaton by one
// symbol. states and out are bitmasks over automaton states (bit i = state
// i); patterns are limited to 63 steps, far beyond anything real.
func (m *Matcher) next(states uint64, sym Sym) uint64 {
	var out uint64
	steps := m.pat.Steps
	for i := 0; i <= len(steps); i++ {
		if states&(1<<uint(i)) == 0 {
			continue
		}
		if i < len(steps) {
			st := steps[i]
			// Descendant self-loop: stay at state i consuming one
			// intervening element.
			if st.Axis == Descendant && sym.Kind == TestElem {
				out |= 1 << uint(i)
			}
			if st.matches(sym) {
				out |= 1 << uint(i+1)
			}
		}
	}
	return out
}

// MatchWord reports whether the pattern matches the concrete path word.
func (m *Matcher) MatchWord(word []Sym) bool {
	states := uint64(1) // {state 0}
	for _, sym := range word {
		states = m.next(states, sym)
		if states == 0 {
			return false
		}
	}
	accept := uint64(1) << uint(len(m.pat.Steps))
	return states&accept != 0
}

// MatchPath reports whether the pattern matches the concrete rooted path.
// Malformed paths do not match.
func (m *Matcher) MatchPath(path string) bool {
	word, err := ParseWord(path)
	if err != nil {
		return false
	}
	return m.MatchWord(word)
}

// Pattern returns the pattern this matcher was compiled from.
func (m *Matcher) Pattern() Pattern { return m.pat }

// MatchesPath is a convenience wrapper: Compile(p).MatchPath(path).
func MatchesPath(p Pattern, path string) bool {
	return Compile(p).MatchPath(path)
}

// symbolicAlphabet returns a finite alphabet sufficient for deciding
// containment and intersection of the given patterns: every concrete name
// they mention, plus one fresh name per kind ("other" behaviour), plus the
// text symbol. Wildcard transitions treat all unmentioned names uniformly,
// so one representative fresh name is enough.
func symbolicAlphabet(pats ...Pattern) []Sym {
	names := map[string]bool{}
	for _, p := range pats {
		for _, n := range p.Names() {
			names[n] = true
		}
	}
	const fresh = "\x00other" // cannot collide with a parsed name
	var alpha []Sym
	for n := range names {
		alpha = append(alpha, Sym{Kind: TestElem, Name: n})
		alpha = append(alpha, Sym{Kind: TestAttr, Name: n})
	}
	alpha = append(alpha,
		Sym{Kind: TestElem, Name: fresh},
		Sym{Kind: TestAttr, Name: fresh},
		Sym{Kind: TestText},
	)
	return alpha
}

// Contains reports whether p contains q: every concrete rooted path matched
// by q is also matched by p. This is the index-matching test — an index on
// pattern p can answer a query leg with pattern q iff Contains(p, q) — and
// the edge relation of the advisor's generalization DAG.
//
// The check is exact for this pattern fragment: it is language inclusion of
// two small word automata over the symbolic alphabet, decided by a
// product/subset BFS.
func Contains(p, q Pattern) bool {
	if p.IsZero() || q.IsZero() {
		return false
	}
	mp := Compile(p)
	mq := Compile(q)
	alpha := symbolicAlphabet(p, q)

	type pair struct {
		qstate int
		pset   uint64
	}
	qAccept := len(q.Steps)
	pAcceptBit := uint64(1) << uint(len(p.Steps))

	start := pair{0, 1}
	seen := map[pair]bool{start: true}
	queue := []pair{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.qstate == qAccept && cur.pset&pAcceptBit == 0 {
			return false // a word q accepts that p rejects
		}
		// Expand q's NFA one symbol at a time, tracking p's subset.
		for _, sym := range alpha {
			pnext := mp.next(cur.pset, sym)
			// q transitions from single state cur.qstate.
			qmask := mq.next(1<<uint(cur.qstate), sym)
			for nq := 0; nq <= qAccept; nq++ {
				if qmask&(1<<uint(nq)) == 0 {
					continue
				}
				np := pair{nq, pnext}
				if !seen[np] {
					seen[np] = true
					queue = append(queue, np)
				}
			}
		}
	}
	return true
}

// containsCache memoizes Contains results. Pattern variety in a session
// is bounded (workload legs, candidates, index definitions), while the
// advisor's DAG construction and the optimizer's index matching repeat
// the same pairs constantly.
var containsCache sync.Map // "p\x00q" -> bool

// ContainsCached is Contains with process-lifetime memoization.
func ContainsCached(p, q Pattern) bool {
	key := p.String() + "\x00" + q.String()
	if v, ok := containsCache.Load(key); ok {
		return v.(bool)
	}
	r := Contains(p, q)
	containsCache.Store(key, r)
	return r
}

// ContainsProperly reports p ⊃ q (contains but not equal as a language).
func ContainsProperly(p, q Pattern) bool {
	return Contains(p, q) && !Contains(q, p)
}

// Equivalent reports that p and q match exactly the same paths.
func Equivalent(p, q Pattern) bool {
	return Contains(p, q) && Contains(q, p)
}

// Overlaps reports whether some concrete rooted path is matched by both p
// and q (language intersection non-emptiness). The advisor uses this to
// decide whether a data modification under pattern q incurs maintenance
// work on an index with pattern p.
func Overlaps(p, q Pattern) bool {
	if p.IsZero() || q.IsZero() {
		return false
	}
	mp := Compile(p)
	mq := Compile(q)
	alpha := symbolicAlphabet(p, q)

	type pair struct{ pset, qset uint64 }
	pAcceptBit := uint64(1) << uint(len(p.Steps))
	qAcceptBit := uint64(1) << uint(len(q.Steps))

	start := pair{1, 1}
	seen := map[pair]bool{start: true}
	queue := []pair{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.pset&pAcceptBit != 0 && cur.qset&qAcceptBit != 0 {
			return true
		}
		for _, sym := range alpha {
			np := pair{mp.next(cur.pset, sym), mq.next(cur.qset, sym)}
			if np.pset == 0 || np.qset == 0 {
				continue
			}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return false
}
