package pattern

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"
)

// Sym is one symbol of a concrete rooted path, viewed as a word: an element
// label, an attribute label, or a text node.
type Sym struct {
	Kind TestKind
	Name string
}

// ParseWord parses a concrete rooted path such as "/site/item/@id" or
// "/site/item/name/text()" into its symbol sequence. Unlike patterns,
// words may not contain wildcards or "//".
func ParseWord(path string) ([]Sym, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("pattern: concrete path %q must start with /", path)
	}
	if strings.Contains(path, "//") {
		return nil, fmt.Errorf("pattern: concrete path %q may not contain //", path)
	}
	parts := strings.Split(path[1:], "/")
	word := make([]Sym, 0, len(parts))
	for i, part := range parts {
		switch {
		case part == "text()":
			if i != len(parts)-1 {
				return nil, fmt.Errorf("pattern: text() must be last in %q", path)
			}
			word = append(word, Sym{Kind: TestText})
		case strings.HasPrefix(part, "@"):
			if i != len(parts)-1 {
				return nil, fmt.Errorf("pattern: attribute must be last in %q", path)
			}
			if len(part) == 1 {
				return nil, fmt.Errorf("pattern: empty attribute name in %q", path)
			}
			word = append(word, Sym{Kind: TestAttr, Name: part[1:]})
		case part == "" || part == "*":
			return nil, fmt.Errorf("pattern: bad step %q in concrete path %q", part, path)
		default:
			word = append(word, Sym{Kind: TestElem, Name: part})
		}
	}
	return word, nil
}

// matches reports whether the step's node test accepts the symbol.
func (s Step) matches(sym Sym) bool {
	if s.Kind != sym.Kind {
		return false
	}
	if s.Kind == TestText {
		return true
	}
	return s.Name == "" || s.Name == sym.Name
}

// Matcher is a compiled pattern. State i means "the first i steps have been
// matched"; state len(Steps) is accepting. A descendant-axis step i adds a
// self-loop at state i over any element symbol (the intervening ancestors
// of a descendant are always elements).
//
// Compilation precomputes the structural facts the containment kernel's
// fast paths and the subset simulation need: the descendant self-loop
// mask and flag, and the deduplicated concrete names (the symbolic
// alphabet contribution). Compile once and reuse — the package Interner
// hands out one Matcher per distinct pattern.
type Matcher struct {
	pat       Pattern
	acceptBit uint64 // bit of the accepting state
	selfLoop  uint64 // states with a descendant self-loop over elements
	hasDesc   bool
	names     []string // deduped concrete names mentioned by the pattern
}

// Compile returns a matcher for p, precomputing the step masks and name
// alphabet the matching and containment hot paths use.
func Compile(p Pattern) *Matcher {
	m := &Matcher{pat: p, acceptBit: 1 << uint(len(p.Steps))}
	for i, st := range p.Steps {
		if st.Axis == Descendant {
			m.selfLoop |= 1 << uint(i)
			m.hasDesc = true
		}
		if st.Name != "" {
			m.names = appendUniqueName(m.names, st.Name)
		}
	}
	return m
}

func appendUniqueName(names []string, n string) []string {
	for _, have := range names {
		if have == n {
			return names
		}
	}
	return append(names, n)
}

// next advances the subset simulation of the pattern automaton by one
// symbol. states and out are bitmasks over automaton states (bit i = state
// i); patterns are limited to 60 steps, far beyond anything real. Only set
// bits are visited, and the descendant self-loops are applied word-parallel
// through the precomputed mask.
func (m *Matcher) next(states uint64, sym Sym) uint64 {
	var out uint64
	if sym.Kind == TestElem {
		out = states & m.selfLoop
	}
	steps := m.pat.Steps
	for s := states &^ m.acceptBit; s != 0; s &= s - 1 {
		i := bits.TrailingZeros64(s)
		if steps[i].matches(sym) {
			out |= 1 << uint(i+1)
		}
	}
	return out
}

// MatchWord reports whether the pattern matches the concrete path word.
func (m *Matcher) MatchWord(word []Sym) bool {
	states := uint64(1) // {state 0}
	for _, sym := range word {
		states = m.next(states, sym)
		if states == 0 {
			return false
		}
	}
	return states&m.acceptBit != 0
}

// MatchPath reports whether the pattern matches the concrete rooted path.
// Malformed paths do not match.
func (m *Matcher) MatchPath(path string) bool {
	word, err := ParseWord(path)
	if err != nil {
		return false
	}
	return m.MatchWord(word)
}

// Pattern returns the pattern this matcher was compiled from.
func (m *Matcher) Pattern() Pattern { return m.pat }

// MatchesPath is a convenience wrapper: InternedMatcher(p).MatchPath(path).
func MatchesPath(p Pattern, path string) bool {
	return InternedMatcher(p).MatchPath(path)
}

// symbolicAlphabet returns a finite alphabet sufficient for deciding
// containment and intersection of the given patterns: every concrete name
// they mention, plus one fresh name per kind ("other" behaviour), plus the
// text symbol. Wildcard transitions treat all unmentioned names uniformly,
// so one representative fresh name is enough.
func symbolicAlphabet(pats ...Pattern) []Sym {
	names := map[string]bool{}
	for _, p := range pats {
		for _, n := range p.Names() {
			names[n] = true
		}
	}
	var alpha []Sym
	for n := range names {
		alpha = append(alpha, Sym{Kind: TestElem, Name: n})
		alpha = append(alpha, Sym{Kind: TestAttr, Name: n})
	}
	alpha = append(alpha,
		Sym{Kind: TestElem, Name: freshName},
		Sym{Kind: TestAttr, Name: freshName},
		Sym{Kind: TestText},
	)
	return alpha
}

// freshName represents every name no pattern mentions; it cannot collide
// with a parsed name.
const freshName = "\x00other"

// Contains reports whether p contains q: every concrete rooted path matched
// by q is also matched by p. This is the index-matching test — an index on
// pattern p can answer a query leg with pattern q iff Contains(p, q) — and
// the edge relation of the advisor's generalization DAG.
//
// The check is exact for this pattern fragment. Common shapes (identical
// patterns, descendant-free pairs, aligned step lists, //leaf roots) are
// decided structurally without touching automata; the rest run a
// product/subset search over the symbolic alphabet on pooled scratch
// buffers, so the decision allocates nothing in steady state.
func Contains(p, q Pattern) bool {
	if p.IsZero() || q.IsZero() {
		return false
	}
	return InternedMatcher(p).Contains(InternedMatcher(q))
}

// Contains reports whether m's pattern contains q's pattern.
func (m *Matcher) Contains(q *Matcher) bool {
	r, _ := m.ContainsDetail(q)
	return r
}

// ContainsDetail is Contains plus whether the structural fast path decided
// the answer (false means the product/subset automaton search ran).
func (m *Matcher) ContainsDetail(q *Matcher) (contained, structural bool) {
	if m.pat.IsZero() || q.pat.IsZero() {
		return false, true // zero patterns match nothing, as in Contains
	}
	if r, ok := structuralContains(m, q); ok {
		return r, true
	}
	return containsNFA(m, q), false
}

// structuralContains decides Contains(p, q) without automata when the
// pair's shape admits a direct argument. The cases below are exact; decided
// is false when the pair needs the full product search.
//
// Two facts drive the leaf and length filters: every word of L(q) ends with
// a symbol matching q's final step (the only transition into the accepting
// state), and every word of L(q) has at least len(q.Steps) symbols, with
// all non-final symbols being elements.
func structuralContains(p, q *Matcher) (result, decided bool) {
	ps, qs := p.pat.Steps, q.pat.Steps
	// Identical patterns contain each other.
	if p == q || p.pat.Equal(q.pat) {
		return true, true
	}
	// Leaf filter: q's words end with a symbol matching q's last step; p
	// must accept that final symbol with its own last step.
	lp, lq := ps[len(ps)-1], qs[len(qs)-1]
	if lp.Kind != lq.Kind {
		return false, true
	}
	if lp.Name != "" && lp.Name != lq.Name {
		// Covers both a differing concrete leaf and a wildcard q leaf
		// (lq.Name == ""), whose words end with names p's leaf rejects.
		return false, true
	}
	// Length filter: q's shortest word has exactly len(qs) symbols.
	if len(ps) > len(qs) {
		return false, true
	}
	if !p.hasDesc {
		// All of p's words have exactly len(ps) symbols.
		if q.hasDesc || len(qs) != len(ps) {
			return false, true
		}
		// Descendant-free pair of equal length: alignment is forced, so
		// step-wise wildcard comparison is exact in both directions.
		for i := range ps {
			if ps[i].Kind != qs[i].Kind {
				return false, true
			}
			if ps[i].Name != "" && ps[i].Name != qs[i].Name {
				return false, true
			}
		}
		return true, true
	}
	// p = "//leaf" (or "//*", "//@x", ...): a single descendant step
	// accepts exactly the words whose final symbol matches it (all
	// preceding symbols are elements by construction), and the leaf
	// filter above already verified q's final symbols match.
	if len(ps) == 1 {
		return true, true
	}
	// Aligned sufficient check: with equal lengths, every accepting parse
	// of a q word maps step-for-step onto p when each p step is at least
	// as general as its q counterpart (axis, kind, and name test).
	if len(ps) == len(qs) {
		for i := range ps {
			if ps[i].Kind != qs[i].Kind {
				return false, false // misaligned kinds: let the automata decide
			}
			if qs[i].Axis == Descendant && ps[i].Axis != Descendant {
				return false, false
			}
			if ps[i].Name != "" && ps[i].Name != qs[i].Name {
				return false, false
			}
			if qs[i].Name == "" && ps[i].Name != "" {
				return false, false
			}
		}
		return true, true
	}
	return false, false
}

// maxStates is the per-pattern automaton state count bound (60 steps plus
// the accepting state).
const maxStates = 61

// seenCap bounds the distinct p-subsets remembered per q-state before the
// search falls back to the map-based implementation. Reachable subset
// counts in this fragment are tiny; the cap exists for adversarial inputs.
const seenCap = 32

// pqPair is one frontier item of the inclusion search: q's NFA state plus
// the subset of p's states reachable on the same word.
type pqPair struct {
	pset   uint64
	qstate int32
}

// containsScratch is the pooled working set of one inclusion search: the
// merged name alphabet, the per-qstate visited p-subsets, and the explicit
// DFS stack. Pushes are bounded by the visited capacity, so the stack
// never overflows.
type containsScratch struct {
	names [2 * maxStates]string
	seen  [maxStates][seenCap]uint64
	cnt   [maxStates]uint16
	stack [maxStates * seenCap]pqPair
}

var containsPool = sync.Pool{New: func() any { return new(containsScratch) }}

// containsNFA decides language inclusion L(q) ⊆ L(p) with a product of
// q's NFA against the subset simulation of p, searched depth-first on
// pooled buffers: no maps, no queue, no per-call allocation.
func containsNFA(mp, mq *Matcher) bool {
	sc := containsPool.Get().(*containsScratch)
	defer containsPool.Put(sc)

	names := sc.names[:0]
	for _, n := range mp.names {
		names = appendUniqueName(names, n)
	}
	for _, n := range mq.names {
		names = appendUniqueName(names, n)
	}

	qAccept := int32(len(mq.pat.Steps))
	for i := int32(0); i <= qAccept; i++ {
		sc.cnt[i] = 0
	}
	stack := sc.stack[:0]
	overflow := false
	// push records (qstate, pset) if unseen; overflow trips the fallback.
	push := func(qstate int32, pset uint64) {
		c := sc.cnt[qstate]
		for k := uint16(0); k < c; k++ {
			if sc.seen[qstate][k] == pset {
				return
			}
		}
		if c >= seenCap {
			overflow = true
			return
		}
		sc.seen[qstate][c] = pset
		sc.cnt[qstate] = c + 1
		stack = append(stack, pqPair{pset: pset, qstate: qstate})
	}
	push(0, 1)

	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.qstate == qAccept && cur.pset&mp.acceptBit == 0 {
			clearNames(sc, len(names))
			return false // a word q accepts that p rejects
		}
		// Expand q's NFA one symbol at a time, tracking p's subset. The
		// alphabet is every mentioned name as element and attribute, one
		// fresh name per kind, and the text symbol.
		for k := 0; k <= len(names); k++ {
			name := freshName
			if k < len(names) {
				name = names[k]
			}
			for _, sym := range [2]Sym{{Kind: TestElem, Name: name}, {Kind: TestAttr, Name: name}} {
				pnext := mp.next(cur.pset, sym)
				qmask := mq.next(1<<uint(cur.qstate), sym)
				for s := qmask; s != 0; s &= s - 1 {
					push(int32(bits.TrailingZeros64(s)), pnext)
				}
			}
		}
		sym := Sym{Kind: TestText}
		pnext := mp.next(cur.pset, sym)
		qmask := mq.next(1<<uint(cur.qstate), sym)
		for s := qmask; s != 0; s &= s - 1 {
			push(int32(bits.TrailingZeros64(s)), pnext)
		}
		if overflow {
			clearNames(sc, len(names))
			return containsSlow(mp.pat, mq.pat)
		}
	}
	clearNames(sc, len(names))
	return true
}

// clearNames drops the scratch buffer's string references so a pooled
// scratch does not pin pattern names against the GC.
func clearNames(sc *containsScratch, n int) {
	for i := 0; i < n; i++ {
		sc.names[i] = ""
	}
}

// containsSlow is the map-backed subset BFS the kernel replaced. It is the
// overflow fallback for adversarial patterns whose reachable subset count
// exceeds the fixed scratch capacity, and the reference implementation the
// differential tests compare the fast kernel against.
func containsSlow(p, q Pattern) bool {
	if p.IsZero() || q.IsZero() {
		return false
	}
	mp := Compile(p)
	mq := Compile(q)
	alpha := symbolicAlphabet(p, q)

	type pair struct {
		qstate int
		pset   uint64
	}
	qAccept := len(q.Steps)
	pAcceptBit := uint64(1) << uint(len(p.Steps))

	start := pair{0, 1}
	seen := map[pair]bool{start: true}
	queue := []pair{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.qstate == qAccept && cur.pset&pAcceptBit == 0 {
			return false // a word q accepts that p rejects
		}
		for _, sym := range alpha {
			pnext := mp.next(cur.pset, sym)
			qmask := mq.next(1<<uint(cur.qstate), sym)
			for nq := 0; nq <= qAccept; nq++ {
				if qmask&(1<<uint(nq)) == 0 {
					continue
				}
				np := pair{nq, pnext}
				if !seen[np] {
					seen[np] = true
					queue = append(queue, np)
				}
			}
		}
	}
	return true
}

// ContainsProperly reports p ⊃ q (contains but not equal as a language).
func ContainsProperly(p, q Pattern) bool {
	return Contains(p, q) && !Contains(q, p)
}

// Equivalent reports that p and q match exactly the same paths.
func Equivalent(p, q Pattern) bool {
	return Contains(p, q) && Contains(q, p)
}

// Overlaps reports whether some concrete rooted path is matched by both p
// and q (language intersection non-emptiness). The advisor uses this to
// decide whether a data modification under pattern q incurs maintenance
// work on an index with pattern p.
//
// Non-emptiness needs no subset construction: it is plain reachability in
// the product of the two NFAs, searched here over single-state pairs with
// a dense per-state visited bitmask and an explicit stack — exact, and
// allocation-free.
func Overlaps(p, q Pattern) bool {
	if p.IsZero() || q.IsZero() {
		return false
	}
	ps, qs := p.Steps, q.Steps
	// Leaf filter: words of both languages end with a symbol matching the
	// respective final step; a shared word needs a shared final symbol.
	lp, lq := ps[len(ps)-1], qs[len(qs)-1]
	if lp.Kind != lq.Kind {
		return false
	}
	if lp.Name != "" && lq.Name != "" && lp.Name != lq.Name {
		return false
	}

	np, nq := len(ps), len(qs)
	// visited[i] bit j: product state (p at i, q at j) seen.
	var visited [maxStates]uint64
	var stack [maxStates * maxStates]uint16
	top := 0
	push := func(i, j int) {
		if visited[i]&(1<<uint(j)) != 0 {
			return
		}
		visited[i] |= 1 << uint(j)
		stack[top] = uint16(i)<<8 | uint16(j)
		top++
	}
	push(0, 0)
	for top > 0 {
		top--
		i, j := int(stack[top]>>8), int(stack[top]&0xff)
		if i == np && j == nq {
			return true
		}
		if i == np || j == nq {
			continue // one side accepted; no transitions extend the word
		}
		sp, sq := ps[i], qs[j]
		// Both advance on one shared symbol.
		if sp.Kind == sq.Kind && (sp.Kind == TestText || sp.Name == "" || sq.Name == "" || sp.Name == sq.Name) {
			push(i+1, j+1)
		}
		// p advances while q's descendant self-loop consumes the element.
		if sq.Axis == Descendant && sp.Kind == TestElem {
			push(i+1, j)
		}
		// q advances while p's descendant self-loop consumes the element.
		if sp.Axis == Descendant && sq.Kind == TestElem {
			push(i, j+1)
		}
	}
	return false
}
