package pattern

import (
	"fmt"
	"sync/atomic"
)

// The containment kernel memoizes Contains and Overlaps per interned
// pattern pair. Pattern variety in a session is bounded (workload legs,
// candidates, index definitions), while the advisor's DAG construction
// and the optimizer's index matching repeat the same pairs constantly.
// Unlike the sync.Map the kernel replaced, the caches are bounded: each
// is a fixed-capacity direct-mapped table whose entries are displaced by
// hash collision, and lookups build no string keys — the key is the
// packed (ID, ID) pair and a hit is a single atomic load.

// pairCacheShift sizes each pair cache: 2^shift slots (512 KiB per
// operation). A displaced pair recomputes in a microsecond-scale NFA
// search, so collision eviction is plenty.
const pairCacheShift = 16

// pairCacheCapacity is the slot count of each pair cache.
const pairCacheCapacity = 1 << pairCacheShift

// pairCache memoizes boolean results keyed by packed (ID, ID) pairs in
// a lock-free direct-mapped table. Each slot packs the two 31-bit IDs,
// a presence bit, and the result into one word: an interner cannot
// plausibly issue 2^31 IDs (each costs a compiled matcher), so the
// packing is injective, and slot 0 is distinguishable because present
// entries always carry the presence bit.
type pairCache struct {
	slots []atomic.Uint64
}

func newPairCache() *pairCache {
	return &pairCache{slots: make([]atomic.Uint64, pairCacheCapacity)}
}

func pairSlot(p, q ID) (idx uint64, enc uint64) {
	enc = uint64(uint32(p))<<33 | uint64(uint32(q))<<2 | 1<<1
	// Fibonacci hashing spreads the dense low ID bits across the table.
	idx = (pairKey(p, q) * 0x9E3779B97F4A7C15) >> (64 - pairCacheShift)
	return idx, enc
}

func (c *pairCache) get(p, q ID) (bool, bool) {
	idx, enc := pairSlot(p, q)
	e := c.slots[idx].Load()
	if e&^1 != enc {
		return false, false
	}
	return e&1 != 0, true
}

func (c *pairCache) put(p, q ID, v bool) {
	idx, enc := pairSlot(p, q)
	if v {
		enc |= 1
	}
	c.slots[idx].Store(enc)
}

func (c *pairCache) len() int {
	n := 0
	for i := range c.slots {
		if c.slots[i].Load() != 0 {
			n++
		}
	}
	return n
}

// kernel bundles the interner with the pair caches its IDs key. Reset
// swaps the whole bundle atomically, so a concurrent caller racing a
// reset fills the old caches with old IDs (harmlessly unreachable)
// rather than poisoning the fresh ones with stale IDs.
type kernel struct {
	in                 *Interner
	contains, overlaps *pairCache
}

var defaultKernel atomic.Pointer[kernel]

// Monotonic cache counters; they survive ResetCaches like the what-if
// engine's counters survive Flush.
var (
	containsHits, containsMisses atomic.Int64
	overlapsHits, overlapsMisses atomic.Int64
)

func init() {
	defaultKernel.Store(&kernel{in: NewInterner(), contains: newPairCache(), overlaps: newPairCache()})
}

// maxInternedPatterns bounds the process-wide interner. Crossing it
// swaps in a fresh kernel — matchers and cached decisions rebuild on
// demand — so services that churn through unbounded pattern variety
// stay bounded even without an explicit ResetCaches call. The advisor
// itself never gets close: a full experiment run interns a few hundred
// patterns.
const maxInternedPatterns = 1 << 17

// currentKernel returns the live kernel, resetting it first if the
// interner has outgrown its bound.
func currentKernel() *kernel {
	k := defaultKernel.Load()
	if k.in.Len() >= maxInternedPatterns {
		nk := &kernel{in: NewInterner(), contains: newPairCache(), overlaps: newPairCache()}
		if defaultKernel.CompareAndSwap(k, nk) {
			return nk
		}
		return defaultKernel.Load()
	}
	return k
}

// InternedMatcher returns the process-wide cached matcher for p. Hot
// paths that used to call Compile per operation (optimizer matching,
// executor residual checks, stats cardinality, update maintenance)
// should use this instead.
func InternedMatcher(p Pattern) *Matcher {
	return currentKernel().in.Matcher(p)
}

// Interned returns p's ID in the process-wide interner.
func Interned(p Pattern) ID {
	return currentKernel().in.Intern(p)
}

// pairKey packs two interner IDs into one cache key.
func pairKey(p, q ID) uint64 {
	return uint64(uint32(p))<<32 | uint64(uint32(q))
}

// ContainsCached is Contains memoized by interned pattern pair. The hot
// path — both patterns already interned, pair already decided — is two
// lock-free intern lookups plus one atomic table load, and allocates
// nothing.
func ContainsCached(p, q Pattern) bool {
	if p.IsZero() || q.IsZero() {
		return false
	}
	k := currentKernel()
	pid, mp := k.in.InternMatcher(p)
	qid, mq := k.in.InternMatcher(q)
	if v, ok := k.contains.get(pid, qid); ok {
		containsHits.Add(1)
		return v
	}
	containsMisses.Add(1)
	r := mp.Contains(mq)
	k.contains.put(pid, qid, r)
	return r
}

// OverlapsCached is Overlaps memoized by interned pattern pair; the
// update-cost path calls it once per (update, candidate) pair on every
// configuration evaluation.
func OverlapsCached(p, q Pattern) bool {
	if p.IsZero() || q.IsZero() {
		return false
	}
	k := currentKernel()
	pid := k.in.Intern(p)
	qid := k.in.Intern(q)
	if v, ok := k.overlaps.get(pid, qid); ok {
		overlapsHits.Add(1)
		return v
	}
	overlapsMisses.Add(1)
	r := Overlaps(p, q)
	k.overlaps.put(pid, qid, r)
	return r
}

// CacheStats are one pair cache's monotonic counters and current size.
type CacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Size     int   `json:"size"`
	Capacity int   `json:"capacity"`
}

// HitRate is hits / (hits + misses), or 0 when nothing was looked up.
func (s CacheStats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Sub returns the hit/miss deltas since an earlier snapshot; Size and
// Capacity describe the later snapshot (they are gauges, not counters).
func (s CacheStats) Sub(earlier CacheStats) CacheStats {
	return CacheStats{
		Hits:     s.Hits - earlier.Hits,
		Misses:   s.Misses - earlier.Misses,
		Size:     s.Size,
		Capacity: s.Capacity,
	}
}

// KernelStats snapshot the containment kernel's counters: interned
// pattern count plus per-operation cache stats, surfaced the same way
// the what-if engine surfaces its configuration cache.
type KernelStats struct {
	Interned int        `json:"interned"`
	Contains CacheStats `json:"contains"`
	Overlaps CacheStats `json:"overlaps"`
}

// String renders the snapshot as one line.
func (s KernelStats) String() string {
	return fmt.Sprintf("kernel: %d patterns interned; contains %d/%d hit (%.0f%%), overlaps %d/%d hit (%.0f%%)",
		s.Interned,
		s.Contains.Hits, s.Contains.Hits+s.Contains.Misses, 100*s.Contains.HitRate(),
		s.Overlaps.Hits, s.Overlaps.Hits+s.Overlaps.Misses, 100*s.Overlaps.HitRate())
}

// Sub returns the counter deltas since an earlier snapshot: patterns
// interned and cache hits/misses accrued in between (a per-run window
// over the process-wide kernel counters).
func (s KernelStats) Sub(earlier KernelStats) KernelStats {
	return KernelStats{
		Interned: s.Interned - earlier.Interned,
		Contains: s.Contains.Sub(earlier.Contains),
		Overlaps: s.Overlaps.Sub(earlier.Overlaps),
	}
}

// HitRate is the combined contains+overlaps hit rate, or 0 when nothing
// was looked up.
func (s KernelStats) HitRate() float64 {
	hits := s.Contains.Hits + s.Overlaps.Hits
	if t := hits + s.Contains.Misses + s.Overlaps.Misses; t > 0 {
		return float64(hits) / float64(t)
	}
	return 0
}

// Stats returns a snapshot of the default kernel's counters.
func Stats() KernelStats {
	k := defaultKernel.Load()
	return KernelStats{
		Interned: k.in.Len(),
		Contains: CacheStats{
			Hits: containsHits.Load(), Misses: containsMisses.Load(),
			Size: k.contains.len(), Capacity: pairCacheCapacity,
		},
		Overlaps: CacheStats{
			Hits: overlapsHits.Load(), Misses: overlapsMisses.Load(),
			Size: k.overlaps.len(), Capacity: pairCacheCapacity,
		},
	}
}

// ResetCaches drops the process-wide interner and both pair caches
// (counters are kept). Long-running services that churn through
// unbounded pattern variety — or tests that need a cold kernel — call
// this to release every cached matcher and decision.
func ResetCaches() {
	defaultKernel.Store(&kernel{in: NewInterner(), contains: newPairCache(), overlaps: newPairCache()})
}
