package pattern

// This file holds the generalization primitives behind the advisor's
// candidate-expansion phase (paper §2.2). The advisor applies these rules
// to the optimizer-enumerated candidates to obtain index patterns that can
// benefit several workload queries — and future queries with similar
// shapes — then arranges the result in a DAG ordered by containment.

// PairwiseLUB computes the least upper bound of two patterns under
// positionwise wildcarding: if p and q have the same number of steps, the
// same axes, and the same test kinds position by position, the result
// keeps each step where the two agree and replaces it with a wildcard
// where they differ. This is the paper's rule: from
// /regions/namerica/item/quantity and /regions/africa/item/quantity it
// produces /regions/*/item/quantity, and one more application against
// /regions/samerica/item/price produces /regions/*/item/*.
//
// The boolean result is false when the patterns are not shape-compatible
// or when the LUB would equal one of the inputs (no new pattern).
func PairwiseLUB(p, q Pattern) (Pattern, bool) {
	if len(p.Steps) != len(q.Steps) || len(p.Steps) == 0 {
		return Pattern{}, false
	}
	steps := make([]Step, len(p.Steps))
	diff := false
	for i := range p.Steps {
		a, b := p.Steps[i], q.Steps[i]
		if a.Axis != b.Axis || a.Kind != b.Kind {
			return Pattern{}, false
		}
		steps[i] = a
		if a.Name != b.Name {
			steps[i].Name = "" // wildcard
			diff = true
		}
	}
	if !diff {
		return Pattern{}, false
	}
	out := Pattern{Steps: steps}
	out.str = out.render()
	if out.Equal(p) || out.Equal(q) {
		return Pattern{}, false
	}
	return out, true
}

// SharedConcreteSteps counts positions where p and q carry the same
// concrete (non-wildcard) name. The advisor can require a minimum overlap
// before accepting a PairwiseLUB, to avoid generalizing unrelated patterns
// into uselessly broad indexes.
func SharedConcreteSteps(p, q Pattern) int {
	n := 0
	if len(p.Steps) != len(q.Steps) {
		return 0
	}
	for i := range p.Steps {
		if p.Steps[i].Name != "" && p.Steps[i] == q.Steps[i] {
			n++
		}
	}
	return n
}

// WildcardAt returns a copy of p whose i-th step's name test is replaced
// by a wildcard. The boolean is false if the step is text() or already a
// wildcard.
func WildcardAt(p Pattern, i int) (Pattern, bool) {
	if i < 0 || i >= len(p.Steps) {
		return Pattern{}, false
	}
	st := p.Steps[i]
	if st.Kind == TestText || st.Name == "" {
		return Pattern{}, false
	}
	st.Name = ""
	return p.WithStep(i, st), true
}

// DescendantLeaf returns the maximally label-preserving generalization of
// p: the single-step pattern //leaf (e.g. /site/regions/namerica/item ->
// //item, /a/b/@id -> //@id). These patterns sit near the roots of the
// generalization DAG.
func DescendantLeaf(p Pattern) (Pattern, bool) {
	if p.IsZero() {
		return Pattern{}, false
	}
	last := p.Last()
	last.Axis = Descendant
	out := Pattern{Steps: []Step{last}}
	out.str = out.render()
	if out.Equal(p) {
		return Pattern{}, false
	}
	return out, true
}

// UniversalFor returns the universal pattern of the given kind: "//*" for
// elements, "//@*" for attributes, "//text()" for text. It is the DAG root
// for its kind and the virtual-index pattern planted by the Enumerate
// Indexes optimizer mode.
func UniversalFor(kind TestKind) Pattern {
	out := Pattern{Steps: []Step{{Axis: Descendant, Kind: kind}}}
	out.str = out.render()
	return out
}

// RelaxAxisAt returns a copy of p whose i-th step's axis is relaxed from
// child to descendant (/a/b -> /a//b). The boolean is false if the axis is
// already descendant. Axis relaxation is an optional generalization rule;
// it strictly grows the matched path set.
func RelaxAxisAt(p Pattern, i int) (Pattern, bool) {
	if i < 0 || i >= len(p.Steps) {
		return Pattern{}, false
	}
	st := p.Steps[i]
	if st.Axis == Descendant {
		return Pattern{}, false
	}
	st.Axis = Descendant
	return p.WithStep(i, st), true
}

// Dedupe returns pats with structural duplicates removed, preserving the
// order of first occurrence.
func Dedupe(pats []Pattern) []Pattern {
	seen := make(map[string]bool, len(pats))
	out := pats[:0:0]
	for _, p := range pats {
		key := p.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	return out
}
