package pattern

import "testing"

// FuzzParse checks the pattern parser never panics and that accepted
// patterns render canonically (Parse(String(p)) == p).
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"/a/b/c", "//*", "/a/*/@id", "//text()", "/regions/*/item/*",
		"/a//b//c", "@x", "/a/", "//", "/a[1]",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", p.String(), src, err)
		}
		if !p.Equal(q) {
			t.Fatalf("canonical form unstable: %q -> %q", src, p.String())
		}
	})
}

// FuzzContainment checks Contains/Overlaps never panic and containment
// stays consistent with matching on a derived witness word.
func FuzzContainment(f *testing.F) {
	f.Add("/a/*/c", "/a/b/c", "/a/b/c")
	f.Add("//item", "/site/regions/namerica/item", "/site/regions/namerica/item")
	f.Add("//@id", "/a/@id", "/a/@id")
	f.Fuzz(func(t *testing.T, ps, qs, word string) {
		p, err := Parse(ps)
		if err != nil {
			return
		}
		q, err := Parse(qs)
		if err != nil {
			return
		}
		c := Contains(p, q)
		o := Overlaps(p, q)
		if c && !o {
			t.Fatalf("Contains(%q,%q) without overlap", ps, qs)
		}
		// If the word matches q and p contains q, it must match p.
		if c && MatchesPath(q, word) && !MatchesPath(p, word) {
			t.Fatalf("witness %q matches %q but not container %q", word, qs, ps)
		}
	})
}

// FuzzContainmentDifferential checks the fast kernel — structural fast
// paths, interned matchers, pooled NFA search, product-reachability
// Overlaps, and both pair caches — against the original map-backed
// subset-BFS reference on arbitrary pattern pairs.
func FuzzContainmentDifferential(f *testing.F) {
	f.Add("/a/*/c", "/a/b/c")
	f.Add("//item", "/site/regions/namerica/item")
	f.Add("/a//b//c", "/a/b/x/b/y/c")
	f.Add("//*", "/a/b/@id")
	f.Add("/a/@*", "/a/@id")
	f.Add("//text()", "/a/b/text()")
	f.Add("/a//b/*", "/a//*/b")
	f.Fuzz(func(t *testing.T, ps, qs string) {
		p, err := Parse(ps)
		if err != nil {
			return
		}
		q, err := Parse(qs)
		if err != nil {
			return
		}
		checkKernelAgainstReference(t, p, q)
	})
}
