package candidate

import (
	"fmt"
	"sort"
	"strings"
)

// DAG is the candidate generalization DAG (paper §2.2, Figure 4): nodes
// are candidate indexes; an edge runs from a generalization (parent) to
// each of its most specific covered candidates (children). Roots are the
// most general candidates obtainable from the workload.
type DAG struct {
	Nodes []*Candidate
	Roots []*Candidate
}

// buildDAG wires parent/child edges by pattern containment with
// transitive reduction, per (collection, type) stratum. The containment
// relation is computed once as a Bitset-row matrix (leaf-bucketed pair
// pre-filtering, structural fast paths) and reduced word-parallel; see
// matrix.go.
func buildDAG(all []*Candidate) *DAG {
	dag, _ := buildDAGMatrix(all)
	return dag
}

// buildDAGMatrix is buildDAG, also returning the underlying containment
// matrix so the pipeline can reuse it for the covers bitmaps and report
// its stats.
func buildDAGMatrix(all []*Candidate) (*DAG, *containmentMatrix) {
	mx := newContainmentMatrix(all)
	direct := mx.reduce()
	for i, row := range direct {
		for j := range row.Each {
			all[i].Children = append(all[i].Children, all[j])
			all[j].Parents = append(all[j].Parents, all[i])
		}
	}
	dag := &DAG{Nodes: all}
	for _, c := range all {
		sortByKey(c.Children)
		sortByKey(c.Parents)
		if len(c.Parents) == 0 {
			dag.Roots = append(dag.Roots, c)
		}
	}
	sortByKey(dag.Roots)
	return dag, mx
}

// sortByKey orders candidates by what they index, independent of ID
// assignment, so every DAG rendering and traversal is stable across
// runs and rule configurations.
func sortByKey(cs []*Candidate) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Key() < cs[j].Key() })
}

// Edges returns the number of DAG edges.
func (d *DAG) Edges() int {
	n := 0
	for _, c := range d.Nodes {
		n += len(c.Children)
	}
	return n
}

// Render draws the DAG as indented text, roots first (the content of the
// paper's Figure 4 visualization). Roots and children are walked in Key
// order, so the output is deterministic for a given candidate set.
func (d *DAG) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "candidate DAG: %d nodes, %d edges, %d roots\n", len(d.Nodes), d.Edges(), len(d.Roots))
	seen := map[int]bool{}
	var walk func(c *Candidate, depth int)
	walk = func(c *Candidate, depth int) {
		fmt.Fprintf(&sb, "%s%s\n", strings.Repeat("  ", depth+1), c)
		if seen[c.ID] {
			return
		}
		seen[c.ID] = true
		for _, ch := range c.Children {
			walk(ch, depth+1)
		}
	}
	for _, r := range d.Roots {
		walk(r, 0)
	}
	return sb.String()
}
