package candidate

import (
	"fmt"
	"time"

	"repro/internal/pattern"
	"repro/internal/sqltype"
)

// MatrixStats describe one containment-matrix build: how many candidate
// pairs survived the stratum and leaf-name pre-filters, how those pairs
// were decided (structurally vs by the NFA product search), and the
// wall-clock split between pairwise containment and the word-parallel
// transitive reduction.
type MatrixStats struct {
	// Strata is the number of (collection, type) groups.
	Strata int `json:"strata"`
	// Pairs counts ordered candidate pairs tested for containment after
	// the stratum and leaf-compatibility pre-filters.
	Pairs int `json:"pairs"`
	// Structural counts pairs decided by the kernel's structural fast
	// path; NFA counts pairs that ran the automaton product search.
	Structural int `json:"structural"`
	NFA        int `json:"nfa"`
	// Edges is the DAG edge count after transitive reduction.
	Edges int `json:"edges"`
	// BuildWall and ReduceWall split the matrix wall-clock between the
	// pairwise containment sweep and the bitwise transitive reduction.
	BuildWall  time.Duration `json:"buildWallNs"`
	ReduceWall time.Duration `json:"reduceWallNs"`
}

// String renders the stats as one line.
func (s MatrixStats) String() string {
	return fmt.Sprintf("matrix: %d strata, %d pairs (%d structural, %d nfa), %d edges, build %v, reduce %v",
		s.Strata, s.Pairs, s.Structural, s.NFA, s.Edges,
		s.BuildWall.Round(time.Microsecond), s.ReduceWall.Round(time.Microsecond))
}

// containmentMatrix is the pairwise containment relation over one
// candidate set, one Bitset row per candidate: contains[i] bit j means
// candidate i's pattern contains candidate j's within the same
// (collection, type) stratum, diagonal included. The matrix is computed
// once per pipeline run and shared by the DAG build (via word-parallel
// transitive reduction) and the covers bitmaps.
type containmentMatrix struct {
	contains []Bitset
	stats    MatrixStats
}

// leafOf buckets a pattern by its final step's node test; containment
// requires equal leaf kinds and a leaf name no more specific in the
// container (every word of the containee ends with a symbol matching
// the containee's leaf).
type leafKey struct {
	kind pattern.TestKind
	name string
}

// newContainmentMatrix computes the containment rows for all, bucketing
// by (collection, type) stratum and pre-filtering pairs by leaf
// compatibility so most non-containing pairs are never tested.
func newContainmentMatrix(all []*Candidate) *containmentMatrix {
	start := time.Now()
	n := len(all)
	m := &containmentMatrix{contains: make([]Bitset, n)}
	words := (n + 63) / 64
	backing := make([]uint64, n*words) // one arena for all rows
	for i := range m.contains {
		m.contains[i] = Bitset(backing[i*words : (i+1)*words])
	}

	type stratumKey struct {
		coll string
		typ  sqltype.Type
	}
	strata := map[stratumKey][]int{}
	for i, c := range all {
		k := stratumKey{c.Collection, c.Type}
		strata[k] = append(strata[k], i)
	}
	m.stats.Strata = len(strata)

	ms := make([]*pattern.Matcher, n)
	for i, c := range all {
		ms[i] = pattern.InternedMatcher(c.Pattern)
	}

	for _, members := range strata {
		// Bucket members by leaf test. A container with a concrete leaf
		// name can only contain candidates with the same concrete leaf;
		// a wildcard-leaf container can contain any leaf of its kind.
		byLeaf := map[leafKey][]int{}
		byKind := map[pattern.TestKind][]int{}
		for _, i := range members {
			last := all[i].Pattern.Last()
			byLeaf[leafKey{last.Kind, last.Name}] = append(byLeaf[leafKey{last.Kind, last.Name}], i)
			byKind[last.Kind] = append(byKind[last.Kind], i)
		}
		for _, i := range members {
			m.contains[i].Set(i) // diagonal: every pattern contains itself
			last := all[i].Pattern.Last()
			targets := byLeaf[leafKey{last.Kind, last.Name}]
			if last.Kind != pattern.TestText && last.Name == "" {
				targets = byKind[last.Kind]
			}
			for _, j := range targets {
				if i == j {
					continue
				}
				m.stats.Pairs++
				contained, structural := ms[i].ContainsDetail(ms[j])
				if structural {
					m.stats.Structural++
				} else {
					m.stats.NFA++
				}
				if contained {
					m.contains[i].Set(j)
				}
			}
		}
	}
	m.stats.BuildWall = time.Since(start)
	return m
}

// properRows derives the proper-containment relation (i ⊃ j: contains
// but not contained back — languages equal in both directions carry no
// DAG edge) from the matrix.
func (m *containmentMatrix) properRows() []Bitset {
	n := len(m.contains)
	words := (n + 63) / 64
	backing := make([]uint64, n*words)
	proper := make([]Bitset, n)
	for i := range proper {
		proper[i] = Bitset(backing[i*words : (i+1)*words])
		row := m.contains[i]
		for j := range row.Each {
			if j != i && !m.contains[j].Get(i) {
				proper[i].Set(j)
			}
		}
	}
	return proper
}

// reduce computes the transitively reduced edge set word-parallel: an
// edge i->j is direct iff j is not properly contained by any other
// candidate k that i properly contains. Each row's indirect set is the
// union of the rows it reaches, OR-ed 64 candidates at a time —
// replacing the scalar triple loop the matrix superseded.
func (m *containmentMatrix) reduce() []Bitset {
	start := time.Now()
	proper := m.properRows()
	n := len(proper)
	words := (n + 63) / 64
	indirect := make(Bitset, words)
	direct := make([]Bitset, n)
	backing := make([]uint64, n*words)
	for i := range proper {
		for w := range indirect {
			indirect[w] = 0
		}
		for k := range proper[i].Each {
			indirect.Or(proper[k])
		}
		direct[i] = Bitset(backing[i*words : (i+1)*words])
		for w := range direct[i] {
			direct[i][w] = proper[i][w] &^ indirect[w]
		}
		m.stats.Edges += direct[i].Count()
	}
	m.stats.ReduceWall = time.Since(start)
	return direct
}
