package candidate

import (
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/sqltype"
)

// TestSetRelevantCounts builds a tiny hand-wired set: three basics from
// queries {0}, {0,1}, {2}, plus one generalized candidate covering the
// first two basics.
func TestSetRelevantCounts(t *testing.T) {
	mk := func(id int, pat string, basic bool, from []int, covers []int32) *Candidate {
		p := pattern.MustParse(pat)
		c := &Candidate{
			ID: id, Collection: "c", Pattern: p, Type: sqltype.Varchar,
			Basic: basic, FromQueries: from,
			Def: &catalog.IndexDef{Name: "x", Collection: "c", Pattern: p, Type: sqltype.Varchar},
		}
		c.SetCovers(covers)
		return c
	}
	b0 := mk(0, "/a/b", true, []int{0}, []int32{0})
	b1 := mk(1, "/a/c", true, []int{0, 1}, []int32{1})
	b2 := mk(2, "/d/e", true, []int{2}, []int32{2})
	g := mk(3, "/a/*", false, nil, []int32{0, 1})
	s := &Set{All: []*Candidate{b0, b1, b2, g}, Basics: []*Candidate{b0, b1, b2}}

	// Query 0: b0, b1, and g (covers both). Query 1: b1 and g. Query 2:
	// b2 only. g is counted once for query 0 despite covering two of its
	// basics.
	got := s.RelevantCounts(3)
	if want := []int{3, 2, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("relevant counts = %v, want %v", got, want)
	}
}
