package candidate

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/querylang"
	"repro/internal/sqltype"
	"repro/internal/store"
	"repro/internal/workload"
)

// fixture builds a small auction catalog (the paper's §2.2 example data)
// and a workload whose enumeration produces LUB-able candidates.
func fixture(t testing.TB) (*catalog.Catalog, *workload.Workload) {
	t.Helper()
	st := store.New()
	col := st.MustCreate("auction")
	for i := 0; i < 120; i++ {
		region := []string{"namerica", "africa", "samerica"}[i%3]
		doc := fmt.Sprintf(
			`<site><regions><%[1]s><item id="i%[2]d"><name>item %[2]d</name><quantity>%[3]d</quantity><price>%[4]d.50</price></item></%[1]s></regions></site>`,
			region, i, 1+i%9, 10+(i*13)%400)
		if _, err := col.InsertXML(doc); err != nil {
			t.Fatal(err)
		}
	}
	w := &workload.Workload{Name: "test"}
	w.MustAddQuery(3, `for $i in collection("auction")/site/regions/namerica/item where $i/quantity > 5 return $i/name`)
	w.MustAddQuery(2, `for $i in collection("auction")/site/regions/africa/item where $i/quantity > 3 return $i/name`)
	w.MustAddQuery(1, `for $i in collection("auction")/site/regions/samerica/item where $i/price < 40 return $i/name`)
	w.MustAddQuery(1, `for $i in collection("auction")/site/regions/namerica/item where $i/quantity > 5 return $i/name`)
	return catalog.New(st), w
}

func optSource(cat *catalog.Catalog) Source {
	return &OptimizerSource{Opt: optimizer.New(cat)}
}

// fingerprint renders everything observable about a Set except wall time.
func fingerprint(s *Set) string {
	var sb strings.Builder
	for _, c := range s.All {
		fmt.Fprintf(&sb, "%d %s name=%s rule=%q basic=%v from=%v pages=%d\n",
			c.ID, c.Key(), c.Def.Name, c.Rule, c.Basic, c.FromQueries, c.Pages())
	}
	sb.WriteString(s.DAG.Render())
	st := s.Stats
	st.Wall = 0
	st.Matrix.BuildWall = 0
	st.Matrix.ReduceWall = 0
	fmt.Fprintf(&sb, "%+v\n", st)
	return sb.String()
}

func runPipeline(t testing.TB, cat *catalog.Catalog, src Source, w *workload.Workload, opts Options) *Set {
	t.Helper()
	set, err := New(cat, src, opts).Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestPipelineParallelEqualsSerial(t *testing.T) {
	cat, w := fixture(t)
	base := fingerprint(runPipeline(t, cat, optSource(cat), w, Options{Parallelism: 1, Rules: AllRules()}))
	for _, par := range []int{2, 4, 8} {
		got := fingerprint(runPipeline(t, cat, optSource(cat), w, Options{Parallelism: par, Rules: AllRules()}))
		if got != base {
			t.Errorf("parallelism %d changed the candidate set:\n--- serial ---\n%s--- parallel ---\n%s", par, base, got)
		}
	}
}

func TestPipelineStatsAreCoherent(t *testing.T) {
	cat, w := fixture(t)
	set := runPipeline(t, cat, optSource(cat), w, Options{Rules: DefaultRules()})
	st := set.Stats
	if st.Source != "optimizer" {
		t.Errorf("source = %q", st.Source)
	}
	if st.Basic != len(set.Basics) {
		t.Errorf("Basic = %d, want %d", st.Basic, len(set.Basics))
	}
	if st.Enumerated != st.Basic+st.Deduped {
		t.Errorf("Enumerated %d != Basic %d + Deduped %d", st.Enumerated, st.Basic, st.Deduped)
	}
	// The duplicate fourth query must have been merged away.
	if st.Deduped == 0 {
		t.Error("expected deduplicated proposals from the repeated query")
	}
	if st.Generalized != len(set.All)-len(set.Basics) {
		t.Errorf("Generalized = %d, want %d", st.Generalized, len(set.All)-len(set.Basics))
	}
	applied := 0
	pruned := 0
	for _, r := range st.Rules {
		applied += r.Applied
		pruned += r.Pruned
	}
	if applied != st.Generalized {
		t.Errorf("sum of rule Applied %d != Generalized %d", applied, st.Generalized)
	}
	if pruned != st.Pruned {
		t.Errorf("sum of rule Pruned %d != Pruned %d", pruned, st.Pruned)
	}
	if st.Wall <= 0 {
		t.Error("wall time not recorded")
	}
	// The paper's LUB patterns must be present.
	keys := map[string]bool{}
	for _, c := range set.All {
		keys[c.Pattern.String()] = true
	}
	for _, want := range []string{"/site/regions/*/item/quantity", "/site/regions/*/item/*"} {
		if !keys[want] {
			t.Errorf("missing generalization %s", want)
		}
	}
}

func TestPipelineNoRulesYieldsBasicsOnly(t *testing.T) {
	cat, w := fixture(t)
	set := runPipeline(t, cat, optSource(cat), w, Options{})
	if len(set.All) != len(set.Basics) {
		t.Errorf("no rules, yet %d candidates vs %d basics", len(set.All), len(set.Basics))
	}
	if set.Stats.Generalized != 0 || len(set.Stats.Rules) != 0 {
		t.Errorf("stats report generalization without rules: %+v", set.Stats)
	}
	for i, c := range set.All {
		if c.ID != i {
			t.Errorf("IDs not dense: %d at %d", c.ID, i)
		}
		if !c.Basic {
			t.Errorf("non-basic candidate %s", c)
		}
	}
}

func TestPipelineHonorsCandidateBudget(t *testing.T) {
	cat, w := fixture(t)
	unbounded := runPipeline(t, cat, optSource(cat), w, Options{Rules: AllRules()})
	if len(unbounded.All) <= len(unbounded.Basics)+1 {
		t.Skip("fixture generalizes too little to constrain")
	}
	max := len(unbounded.Basics) + 1
	set := runPipeline(t, cat, optSource(cat), w, Options{Rules: AllRules(), MaxCandidates: max})
	if len(set.All) > max {
		t.Errorf("budget %d exceeded: %d candidates", max, len(set.All))
	}
	if set.Stats.Pruned == 0 {
		t.Error("budget pruning not counted")
	}
}

func TestPipelineRuleToggle(t *testing.T) {
	cat, w := fixture(t)
	lubOnly, err := ParseRules("lub")
	if err != nil {
		t.Fatal(err)
	}
	set := runPipeline(t, cat, optSource(cat), w, Options{Rules: lubOnly})
	for _, c := range set.All {
		if !c.Basic && c.Rule != "lub" {
			t.Errorf("rule %q produced %s with only lub enabled", c.Rule, c)
		}
	}
	keys := map[string]bool{}
	for _, c := range set.All {
		keys[c.Pattern.String()] = true
	}
	if keys["//quantity"] {
		t.Error("leaf-rule output //quantity present with leaf disabled")
	}
	if !keys["/site/regions/*/item/quantity"] {
		t.Error("lub output missing")
	}
}

func TestStaticAndMergedSources(t *testing.T) {
	cat, w := fixture(t)
	seed := Raw{Pattern: mustPattern(t, "/site/regions/namerica/item/name"), Type: sqltype.Varchar}
	static := &StaticSource{ByCollection: map[string][]Raw{"auction": {seed}}}

	set := runPipeline(t, cat, static, w, Options{})
	if len(set.Basics) != 1 {
		t.Fatalf("static source produced %d basics, want 1", len(set.Basics))
	}
	b := set.Basics[0]
	if b.Pattern.String() != "/site/regions/namerica/item/name" || b.Type != sqltype.Varchar {
		t.Errorf("unexpected seeded candidate %s", b)
	}
	// Every query enumerates the seed; dedup keeps one tagged with all.
	if len(b.FromQueries) != len(w.Queries) {
		t.Errorf("FromQueries = %v, want all %d queries", b.FromQueries, len(w.Queries))
	}

	merged := Merged{optSource(cat), static}
	if merged.Name() != "optimizer+static" {
		t.Errorf("merged name = %q", merged.Name())
	}
	mset := runPipeline(t, cat, merged, w, Options{})
	keys := map[string]bool{}
	for _, c := range mset.Basics {
		keys[c.Pattern.String()] = true
	}
	if !keys["/site/regions/namerica/item/name"] {
		t.Error("merged source lost the static seed")
	}
	if !keys["/site/regions/namerica/item/quantity"] {
		t.Error("merged source lost the optimizer candidates")
	}
}

func TestDAGRenderDeterministic(t *testing.T) {
	cat, w := fixture(t)
	base := runPipeline(t, cat, optSource(cat), w, Options{Rules: AllRules()}).DAG.Render()
	for i := 0; i < 3; i++ {
		if got := runPipeline(t, cat, optSource(cat), w, Options{Rules: AllRules(), Parallelism: 4}).DAG.Render(); got != base {
			t.Fatalf("DAG render differs between runs:\n%s\nvs\n%s", base, got)
		}
	}
	if !strings.Contains(base, "roots") {
		t.Errorf("render header missing: %s", base)
	}
}

func TestPipelineContextCancellation(t *testing.T) {
	cat, w := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(cat, optSource(cat), Options{}).Run(ctx, w); err == nil {
		t.Error("cancelled context did not abort the pipeline")
	}
}

// failingSource fails on one query ID, after a pause that keeps the
// submission loop blocked on the worker semaphore.
type failingSource struct{ failID string }

func (f failingSource) Name() string { return "failing" }

func (f failingSource) Enumerate(q *querylang.Query) ([]Raw, error) {
	if q.ID == f.failID {
		return nil, fmt.Errorf("enumeration exploded on %s", q.ID)
	}
	time.Sleep(time.Millisecond)
	return nil, nil
}

func TestPipelineSurfacesSourceError(t *testing.T) {
	cat, w := fixture(t)
	src := failingSource{failID: w.Queries[0].Query.ID}
	_, err := New(cat, src, Options{Parallelism: 1}).Run(context.Background(), w)
	if err == nil || !strings.Contains(err.Error(), "enumeration exploded") {
		t.Errorf("source error masked: %v", err)
	}
}

func TestDedupeRaw(t *testing.T) {
	a := Raw{Pattern: mustPattern(t, "/a/b"), Type: sqltype.Varchar}
	b := Raw{Pattern: mustPattern(t, "/a/b"), Type: sqltype.Double} // same pattern, new type
	c := Raw{Pattern: mustPattern(t, "/a/c"), Type: sqltype.Varchar}
	got := DedupeRaw([]Raw{a, b, a, c, c, a})
	if len(got) != 3 || got[0].Key() != a.Key() || got[1].Key() != b.Key() || got[2].Key() != c.Key() {
		t.Errorf("DedupeRaw = %v", got)
	}
	if out := DedupeRaw(nil); len(out) != 0 {
		t.Errorf("DedupeRaw(nil) = %v", out)
	}
}

// BenchmarkDedupeRaw measures the single-pass map deduplication on a
// workload-sized proposal list with heavy duplication.
func BenchmarkDedupeRaw(b *testing.B) {
	var raws []Raw
	for i := 0; i < 64; i++ {
		p := mustPattern(b, fmt.Sprintf("/site/regions/r%d/item/quantity", i%8))
		raws = append(raws, Raw{Pattern: p, Type: sqltype.Double})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := DedupeRaw(raws); len(got) != 8 {
			b.Fatalf("dedupe kept %d", len(got))
		}
	}
}

// BenchmarkPipeline measures the full candidate front end on the test
// fixture (enumeration + rules + DAG), serial vs parallel enumeration.
func BenchmarkPipeline(b *testing.B) {
	cat, w := fixture(b)
	src := optSource(cat)
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			p := New(cat, src, Options{Parallelism: par, Rules: DefaultRules()})
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(context.Background(), w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
