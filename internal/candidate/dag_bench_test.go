package candidate

import (
	"fmt"
	"testing"

	"repro/internal/pattern"
	"repro/internal/sqltype"
)

// genBenchCandidates builds n synthetic candidates shaped like a real
// advisor candidate space: concrete paths over a small name hierarchy
// plus wildcard, axis, and descendant-leaf generalizations, split
// across two SQL types. Deterministic for a given n.
func genBenchCandidates(n int) []*Candidate {
	l2 := []string{"regions", "people", "open_auctions", "closed_auctions", "categories", "catgraph"}
	l3 := []string{"africa", "asia", "europe", "namerica", "samerica", "australia", "person", "auction"}
	l4 := []string{"item", "profile", "bidder", "seller", "watch"}
	leaf := []string{"name", "price", "quantity", "location", "date", "id", "income", "category", "text", "payment"}

	seen := map[string]bool{}
	var out []*Candidate
	add := func(pat string, t sqltype.Type) {
		if len(out) >= n {
			return
		}
		p, err := pattern.Parse(pat)
		if err != nil {
			return
		}
		key := p.String() + "|" + t.Short()
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, &Candidate{
			ID:         len(out),
			Collection: "auction",
			Pattern:    p,
			Type:       t,
			Basic:      true,
		})
	}

	// rng is a tiny deterministic LCG, so candidate sets are identical
	// across runs and implementations.
	state := uint64(0x9E3779B97F4A7C15)
	rng := func(m int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % m
	}
	for len(out) < n {
		a, b, c, d := l2[rng(len(l2))], l3[rng(len(l3))], l4[rng(len(l4))], leaf[rng(len(leaf))]
		t := sqltype.Varchar
		if rng(3) == 0 {
			t = sqltype.Double
		}
		base := fmt.Sprintf("/site/%s/%s/%s/%s", a, b, c, d)
		add(base, t)
		switch rng(6) {
		case 0:
			add(fmt.Sprintf("/site/%s/*/%s/%s", a, c, d), t)
		case 1:
			add(fmt.Sprintf("/site/%s/%s/%s/*", a, b, c), t)
		case 2:
			add(fmt.Sprintf("/site/*/*/%s/*", c), t)
		case 3:
			add("//"+d, t)
		case 4:
			add(fmt.Sprintf("/site/%s//%s", a, d), t)
		case 5:
			add(fmt.Sprintf("/site/%s/%s/%s/@%s", a, b, c, d), t)
		}
	}
	return out
}

// BenchmarkBuildDAG measures containment-DAG construction (pairwise
// containment plus transitive reduction) at advisor-realistic candidate
// counts.
func BenchmarkBuildDAG(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("n-%d", n), func(b *testing.B) {
			cands := genBenchCandidates(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, c := range cands {
					c.Parents, c.Children = nil, nil
				}
				buildDAG(cands)
			}
		})
	}
}
