package candidate

import (
	"fmt"
	"testing"

	"repro/internal/pattern"
)

// naiveDAG is the original scalar DAG construction — O(n²) pairwise
// ContainsCached plus an O(n³) boolean transitive reduction — kept as
// the oracle for the matrix-based build.
func naiveDAG(all []*Candidate) map[string]bool {
	n := len(all)
	contains := make([][]bool, n)
	for i := range contains {
		contains[i] = make([]bool, n)
	}
	for i, p := range all {
		for j, q := range all {
			if i == j || p.Collection != q.Collection || p.Type != q.Type {
				continue
			}
			if pattern.ContainsCached(p.Pattern, q.Pattern) && !pattern.ContainsCached(q.Pattern, p.Pattern) {
				contains[i][j] = true
			}
		}
	}
	edges := map[string]bool{}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !contains[i][j] {
				continue
			}
			direct := true
			for k := 0; k < n && direct; k++ {
				if k != i && k != j && contains[i][k] && contains[k][j] {
					direct = false
				}
			}
			if direct {
				edges[all[i].Key()+" -> "+all[j].Key()] = true
			}
		}
	}
	return edges
}

// TestMatrixDAGMatchesNaive checks the leaf-bucketed matrix build plus
// word-parallel reduction produces exactly the scalar algorithm's edges
// on a realistic synthetic candidate set.
func TestMatrixDAGMatchesNaive(t *testing.T) {
	for _, n := range []int{25, 120} {
		t.Run(fmt.Sprintf("n-%d", n), func(t *testing.T) {
			cands := genBenchCandidates(n)
			want := naiveDAG(cands)
			dag := buildDAG(cands)
			got := map[string]bool{}
			for _, c := range dag.Nodes {
				for _, ch := range c.Children {
					got[c.Key()+" -> "+ch.Key()] = true
				}
			}
			for e := range want {
				if !got[e] {
					t.Errorf("missing edge %s", e)
				}
			}
			for e := range got {
				if !want[e] {
					t.Errorf("spurious edge %s", e)
				}
			}
			if dag.Edges() != len(want) {
				t.Errorf("Edges() = %d, want %d", dag.Edges(), len(want))
			}
			for _, c := range cands {
				c.Parents, c.Children = nil, nil
			}
		})
	}
}

// TestMatrixCoversMatchesDirect checks the matrix-derived covers
// bitmaps equal the direct per-pair definition.
func TestMatrixCoversMatchesDirect(t *testing.T) {
	all := genBenchCandidates(80)
	basics := all[:30]
	mx := newContainmentMatrix(all)
	buildCovers(all, basics, mx)
	for _, c := range all {
		for i, b := range basics {
			want := b.Collection == c.Collection && b.Type == c.Type &&
				pattern.ContainsCached(c.Pattern, b.Pattern)
			if got := c.Covers().Get(i); got != want {
				t.Fatalf("covers(%s, %s) = %v, want %v", c.Key(), b.Key(), got, want)
			}
		}
	}
}

// TestMatrixStatsCoherent sanity-checks the matrix counters.
func TestMatrixStatsCoherent(t *testing.T) {
	all := genBenchCandidates(60)
	mx := newContainmentMatrix(all)
	st := mx.stats
	if st.Strata == 0 || st.Pairs == 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	if st.Structural+st.NFA != st.Pairs {
		t.Fatalf("decision split %d+%d != pairs %d", st.Structural, st.NFA, st.Pairs)
	}
	mx.reduce()
	if mx.stats.Edges == 0 {
		t.Fatal("no edges on a generalization-rich candidate set")
	}
}
