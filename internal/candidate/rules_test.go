package candidate

import (
	"reflect"
	"testing"

	"repro/internal/pattern"
	"repro/internal/sqltype"
)

func mustPattern(t testing.TB, s string) pattern.Pattern {
	t.Helper()
	p, err := pattern.Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return p
}

// cand builds a bare candidate for rule-level tests (no Def needed).
func cand(t testing.TB, pat string, ty sqltype.Type) *Candidate {
	t.Helper()
	return &Candidate{Collection: "auction", Pattern: mustPattern(t, pat), Type: ty, Basic: true}
}

func patStrings(pats []pattern.Pattern) []string {
	var out []string
	for _, p := range pats {
		out = append(out, p.String())
	}
	return out
}

func TestLUBRule(t *testing.T) {
	tests := []struct {
		name  string
		c     string
		all   []string
		minSh int
		want  []string
	}{
		{
			name: "paper example",
			c:    "/site/regions/namerica/item/quantity",
			all:  []string{"/site/regions/namerica/item/quantity", "/site/regions/africa/item/quantity"},
			want: []string{"/site/regions/*/item/quantity"},
		},
		{
			name: "second application yields item star",
			c:    "/site/regions/*/item/quantity",
			all:  []string{"/site/regions/*/item/quantity", "/site/regions/samerica/item/price"},
			want: []string{"/site/regions/*/item/*"},
		},
		{
			name: "shape mismatch",
			c:    "/a/b",
			all:  []string{"/a/b", "/a/b/c"},
			want: nil,
		},
		{
			name:  "min shared steps blocks unrelated patterns",
			c:     "/site/regions/namerica/item",
			all:   []string{"/site/regions/namerica/item", "/site/people/person/name"},
			minSh: 2,
			want:  nil,
		},
		{
			name: "identical patterns propose nothing",
			c:    "/a/b",
			all:  []string{"/a/b", "/a/b"},
			want: nil,
		},
	}
	rule, err := RuleByName("lub")
	if err != nil {
		t.Fatal(err)
	}
	if !rule.Fixpoint() {
		t.Error("lub must be a fixpoint rule")
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var all []*Candidate
			for _, s := range tc.all {
				all = append(all, cand(t, s, sqltype.Double))
			}
			c := all[0]
			c.Pattern = mustPattern(t, tc.c)
			got := patStrings(rule.Apply(c, &RuleContext{All: all, MinSharedSteps: tc.minSh}))
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("lub(%s) = %v, want %v", tc.c, got, tc.want)
			}
		})
	}
}

func TestLUBRuleIgnoresOtherStrata(t *testing.T) {
	rule, _ := RuleByName("lub")
	c := cand(t, "/a/b/c", sqltype.Double)
	other := cand(t, "/a/x/c", sqltype.Varchar) // same shape, different type
	foreign := cand(t, "/a/y/c", sqltype.Double)
	foreign.Collection = "other"
	got := rule.Apply(c, &RuleContext{All: []*Candidate{c, other, foreign}})
	if len(got) != 0 {
		t.Errorf("lub crossed (collection, type) strata: %v", patStrings(got))
	}
}

func TestWildcardRule(t *testing.T) {
	rule, err := RuleByName("wildcard")
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		c    string
		want []string
	}{
		{"/a/b/c", []string{"/*/b/c", "/a/*/c", "/a/b/*"}},
		{"/a/*", []string{"/*/*"}},
		{"/item/@id", []string{"/*/@id", "/item/@*"}},
	}
	for _, tc := range tests {
		got := patStrings(rule.Apply(cand(t, tc.c, sqltype.Varchar), &RuleContext{}))
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("wildcard(%s) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestLeafRule(t *testing.T) {
	rule, err := RuleByName("leaf")
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		c    string
		want []string
	}{
		{"/site/regions/namerica/item", []string{"//item"}},
		{"/a/b/@id", []string{"//@id"}},
		{"//item", nil}, // already its own descendant leaf
	}
	for _, tc := range tests {
		got := patStrings(rule.Apply(cand(t, tc.c, sqltype.Varchar), &RuleContext{}))
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("leaf(%s) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestAxisRule(t *testing.T) {
	rule, err := RuleByName("axis")
	if err != nil {
		t.Fatal(err)
	}
	got := patStrings(rule.Apply(cand(t, "/a/b", sqltype.Varchar), &RuleContext{}))
	want := []string{"//a/b", "/a//b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("axis(/a/b) = %v, want %v", got, want)
	}
	if props := rule.Apply(cand(t, "//a", sqltype.Varchar), &RuleContext{}); len(props) != 0 {
		t.Errorf("axis(//a) proposed %v for an already-descendant step", patStrings(props))
	}
}

func TestUniversalRule(t *testing.T) {
	rule, err := RuleByName("universal")
	if err != nil {
		t.Fatal(err)
	}
	first := cand(t, "/a/b", sqltype.Double)
	second := cand(t, "/a/c", sqltype.Double)
	ctx := &RuleContext{All: []*Candidate{first, second}}
	got := patStrings(rule.Apply(first, ctx))
	want := []string{"//*", "//@*"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("universal = %v, want %v", got, want)
	}
	// Only the first basic of a (collection, type) proposes, so repeat
	// applications do not inflate the pruned counter.
	if props := rule.Apply(second, ctx); len(props) != 0 {
		t.Errorf("second basic proposed %v", patStrings(props))
	}
	other := cand(t, "/a/d", sqltype.Varchar)
	ctx.All = append(ctx.All, other)
	if props := rule.Apply(other, ctx); len(props) != 2 {
		t.Errorf("first basic of a new type proposed %v", patStrings(props))
	}
}

func TestParseRules(t *testing.T) {
	tests := []struct {
		spec    string
		want    string
		wantErr bool
	}{
		{spec: "", want: ""},
		{spec: "none", want: ""},
		{spec: "all", want: "lub,wildcard,leaf,axis,universal"},
		{spec: "lub,leaf", want: "lub,leaf"},
		{spec: "leaf, lub", want: "lub,leaf"}, // canonical engine order
		{spec: "lub,lub", want: "lub"},
		{spec: "bogus", wantErr: true},
	}
	for _, tc := range tests {
		rules, err := ParseRules(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseRules(%q): expected error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseRules(%q): %v", tc.spec, err)
			continue
		}
		if got := RuleNames(rules); got != tc.want {
			t.Errorf("ParseRules(%q) = %q, want %q", tc.spec, got, tc.want)
		}
	}
}

func TestBitsetOps(t *testing.T) {
	b := NewBitset(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Error("set/get broken")
	}
	if b.Count() != 3 {
		t.Errorf("count = %d", b.Count())
	}
	c := b.Clone()
	c.Set(1)
	if b.Get(1) {
		t.Error("clone shares storage")
	}
	if !b.Subset(c) {
		t.Error("b should be subset of c")
	}
	if c.Subset(b) {
		t.Error("c should not be subset of b")
	}
	d := NewBitset(130)
	d.Or(b)
	if d.Count() != 3 {
		t.Error("or broken")
	}
}
