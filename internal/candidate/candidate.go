// Package candidate is the candidate-generation front end of the XML
// Index Advisor: the first two stages of the paper's pipeline (Figure 1),
// extracted behind a pluggable API so the configuration search in
// internal/core only ever sees a finished candidate Set.
//
// The package has three layers:
//
//   - Source is the pluggable per-query enumerator of basic candidates
//     (§2.1): OptimizerSource wraps the optimizer's Enumerate Indexes
//     EXPLAIN mode, SyntacticSource is the loosely coupled baseline that
//     scrapes paths from the query text, and StaticSource injects a
//     user-supplied (seeded) candidate list.
//   - Rule is one named §2.2 generalization rewrite (pairwise LUB,
//     wildcard substitution, descendant-leaf relaxation, axis
//     relaxation, universal roots). Rules are individually toggleable
//     and keep applied/pruned counters.
//   - Pipeline fans a Source across the workload's queries on a bounded
//     worker pool, deduplicates by Candidate.Key, runs the rule engine
//     to fixpoint under a candidate budget, prunes candidates that would
//     index nothing, and assembles the containment DAG (Figure 4).
//
// The pipeline is deterministic: the same workload, source, and rules
// produce the same Set at every parallelism level.
package candidate

import (
	"fmt"
	"math/bits"

	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/sqltype"
)

// Candidate is one candidate index in the advisor's search space.
type Candidate struct {
	ID         int
	Collection string
	Pattern    pattern.Pattern
	Type       sqltype.Type

	// Basic marks candidates enumerated directly from a query by a
	// Source; generalized candidates have Basic=false.
	Basic bool
	// Rule names the generalization rule that produced this candidate
	// (empty for basic candidates).
	Rule string
	// FromQueries lists workload query indices that enumerated this
	// candidate (basic candidates only).
	FromQueries []int

	// Def is the virtual index definition used in Evaluate Indexes
	// calls; its EstPages is the candidate's size.
	Def *catalog.IndexDef

	// Parents are direct generalizations, Children direct
	// specializations, in the candidate DAG.
	Parents  []*Candidate
	Children []*Candidate

	// covers lists the basic candidates this candidate's index would
	// serve (same type, containing pattern): the redundancy coverage of
	// the greedy heuristic. Stored sparse — a candidate typically covers
	// a handful of basics, so per-candidate dense bitmaps would cost
	// O(candidates × basics) bits and dominate memory at 10k+ candidates.
	covers CoverSet
}

// Pages returns the candidate's estimated size in pages.
func (c *Candidate) Pages() int64 { return c.Def.EstPages }

// Key identifies the candidate by what it indexes.
func (c *Candidate) Key() string {
	return c.Collection + "|" + c.Pattern.String() + "|" + c.Type.Short()
}

// Covers is the candidate's redundancy coverage over basic-candidate
// indices: index b is present when this candidate's index would serve
// basic candidate b (same type, containing pattern). Callers must not
// mutate the returned set.
func (c *Candidate) Covers() CoverSet { return c.covers }

// SetCovers installs the candidate's coverage set from a sorted list of
// basic-candidate indices. It exists for synthetic candidate spaces
// (benchmarks, scale tests); the pipeline fills coverage itself.
func (c *Candidate) SetCovers(indices []int32) { c.covers = CoverSet(indices) }

// String renders the candidate compactly.
func (c *Candidate) String() string {
	kind := "gen"
	if c.Basic {
		kind = "basic"
	}
	return fmt.Sprintf("%s AS %s on %s (%s, ~%d pages)", c.Pattern, c.Type.Short(), c.Collection, kind, c.Pages())
}

// Set is the pipeline's output: the full candidate space the search
// runs over.
type Set struct {
	// All is every candidate (basic and generalized), IDs dense from 0.
	All []*Candidate
	// Basics is the subset enumerated directly from queries, in
	// Key order (the same order the covers bitmaps index).
	Basics []*Candidate
	// DAG is the containment DAG over All (paper Figure 4).
	DAG *DAG
	// Stats describes the pipeline run that produced the set.
	Stats Stats
}

// RelevantCounts returns, per workload query index in [0, numQueries),
// how many candidates in All can serve the query at all: a candidate
// counts for query q when its coverage includes a basic candidate
// enumerated from q (same type, containing pattern — straight from the
// containment matrix). This is the candidate-space view of the what-if
// engine's relevance projection: the counts bound how many of a
// configuration's members can ever appear in one query's projected
// sub-config, which is what makes per-(query, sub-config) memoization
// pay off.
func (s *Set) RelevantCounts(numQueries int) []int {
	out := make([]int, numQueries)
	// mark[q] is the last candidate counted for q, so a candidate
	// covering several of q's basics is counted once.
	mark := make([]int, numQueries)
	for i := range mark {
		mark[i] = -1
	}
	for ci, c := range s.All {
		for _, b := range c.Covers() {
			for _, q := range s.Basics[b].FromQueries {
				if q >= 0 && q < numQueries && mark[q] != ci {
					mark[q] = ci
					out[q]++
				}
			}
		}
	}
	return out
}

// Bitset is a simple fixed-capacity bitmap over basic-candidate indices.
type Bitset []uint64

// NewBitset returns a bitmap able to hold n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << uint(i%64) }

// Get reports bit i.
func (b Bitset) Get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

// Or folds o into b.
func (b Bitset) Or(o Bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// Subset reports whether every bit of b is set in o.
func (b Bitset) Subset(o Bitset) bool {
	for i := range b {
		if b[i]&^o[i] != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of b.
func (b Bitset) Clone() Bitset {
	out := make(Bitset, len(b))
	copy(out, b)
	return out
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Each iterates the set bit indices in ascending order; use with
// range-over-func: for i := range b.Each { ... }.
func (b Bitset) Each(yield func(int) bool) {
	for wi, w := range b {
		for ; w != 0; w &= w - 1 {
			if !yield(wi*64 + bits.TrailingZeros64(w)) {
				return
			}
		}
	}
}

// CoverSet is a sparse ascending list of basic-candidate indices — one
// candidate's redundancy coverage. Coverage sets are tiny (a candidate
// covers the few basics its pattern contains) while the basic count
// grows with the workload, so the sparse form keeps the whole space's
// coverage O(total covered pairs) instead of O(candidates × basics)
// bits. The dense Bitset remains the right shape for the single
// "covered so far" accumulator the greedy search folds CoverSets into.
type CoverSet []int32

// Get reports whether basic-candidate index i is covered.
func (s CoverSet) Get(i int) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(s[mid]) < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && int(s[lo]) == i
}

// Count returns the number of covered basics.
func (s CoverSet) Count() int { return len(s) }

// SubsetOf reports whether every covered index is already set in the
// dense accumulator b.
func (s CoverSet) SubsetOf(b Bitset) bool {
	for _, i := range s {
		if !b.Get(int(i)) {
			return false
		}
	}
	return true
}

// OrInto folds the coverage into the dense accumulator b.
func (s CoverSet) OrInto(b Bitset) {
	for _, i := range s {
		b.Set(int(i))
	}
}
