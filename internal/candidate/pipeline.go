package candidate

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/workload"
)

// Default pipeline thresholds, shared by the advisor core, the public
// advisor facade's option validation, and the xdb candidates command.
const (
	// DefaultMaxCandidates is the default candidate budget.
	DefaultMaxCandidates = 400
	// DefaultMinSharedSteps is the default minimum number of shared
	// concrete steps two patterns need before pairwise generalization
	// applies.
	DefaultMinSharedSteps = 1
)

// Options configure a Pipeline.
type Options struct {
	// Parallelism bounds concurrent Source.Enumerate calls (one query
	// per call); 0 means GOMAXPROCS. The output Set is identical at
	// every parallelism level.
	Parallelism int
	// Rules is the generalization rule set, applied in order; nil or
	// empty disables generalization (§2.2 off).
	Rules []Rule
	// MinSharedSteps is the minimum number of shared concrete steps two
	// patterns need before pairwise generalization applies.
	MinSharedSteps int
	// MaxCandidates is the candidate budget: generalization stops once
	// the full set (basic + generalized) reaches it; 0 means
	// DefaultMaxCandidates.
	MaxCandidates int
}

// RuleStats are one rule's counters for a pipeline run.
type RuleStats struct {
	// Name is the rule's identifier.
	Name string `json:"name"`
	// Applied counts candidates the rule added to the set.
	Applied int `json:"applied"`
	// Pruned counts the rule's proposals that were rejected: duplicates
	// of existing candidates, over the candidate budget, or patterns
	// that would index no data.
	Pruned int `json:"pruned"`
}

// Stats describe one pipeline run.
type Stats struct {
	// Source names the candidate source.
	Source string `json:"source"`
	// Enumerated counts raw source proposals across all queries, before
	// deduplication.
	Enumerated int `json:"enumerated"`
	// Basic is the deduplicated basic candidate count.
	Basic int `json:"basic"`
	// Generalized counts candidates added by the rules (after pruning).
	Generalized int `json:"generalized"`
	// Deduped counts duplicate basic proposals merged away.
	Deduped int `json:"deduped"`
	// Pruned counts rejected rule proposals (duplicates, budget,
	// no-data), summed over Rules.
	Pruned int `json:"pruned"`
	// Rules holds the per-rule counters, in application order.
	Rules []RuleStats `json:"rules,omitempty"`
	// Matrix describes the containment-matrix build behind the DAG and
	// covers bitmaps: pair counts, decision-path split, and timings.
	Matrix MatrixStats `json:"matrix"`
	// Wall is the pipeline wall-clock time.
	Wall time.Duration `json:"wallNs"`
}

// String renders the stats as one line plus one line per rule.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pipeline[%s]: %d enumerated, %d basic (%d deduped), %d generalized, %d pruned, %v",
		s.Source, s.Enumerated, s.Basic, s.Deduped, s.Generalized, s.Pruned, s.Wall.Round(time.Millisecond))
	for _, r := range s.Rules {
		fmt.Fprintf(&sb, "\n  rule %-9s applied %4d  pruned %4d", r.Name, r.Applied, r.Pruned)
	}
	fmt.Fprintf(&sb, "\n  %s", s.Matrix)
	return sb.String()
}

// Pipeline is the candidate front end: it fans a Source across the
// workload's queries on a bounded worker pool, deduplicates, runs the
// generalization rules under the candidate budget, and assembles the
// containment DAG. A Pipeline is immutable and safe for concurrent use.
type Pipeline struct {
	cat  *catalog.Catalog
	src  Source
	opts Options
}

// New builds a pipeline over the catalog with the given source.
func New(cat *catalog.Catalog, src Source, opts Options) *Pipeline {
	if opts.MaxCandidates <= 0 {
		opts.MaxCandidates = DefaultMaxCandidates
	}
	if opts.MinSharedSteps < 0 {
		opts.MinSharedSteps = 0
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	return &Pipeline{cat: cat, src: src, opts: opts}
}

// Run produces the candidate Set for the workload. The result is
// deterministic: parallelism only changes enumeration wall-clock.
func (p *Pipeline) Run(ctx context.Context, w *workload.Workload) (*Set, error) {
	start := time.Now()
	st := Stats{Source: p.src.Name()}

	perQuery, err := p.enumerate(ctx, w)
	if err != nil {
		return nil, err
	}
	basics, err := p.merge(w, perQuery, &st)
	if err != nil {
		return nil, err
	}
	st.Basic = len(basics)

	all, err := p.generalize(basics, &st)
	if err != nil {
		return nil, err
	}
	st.Generalized = len(all) - len(basics)
	for _, r := range st.Rules {
		st.Pruned += r.Pruned
	}

	dag, mx := buildDAGMatrix(all)
	buildCovers(all, basics, mx)
	st.Matrix = mx.stats
	set := &Set{All: all, Basics: basics, DAG: dag}
	st.Wall = time.Since(start)
	set.Stats = st
	return set, nil
}

// enumerate fans Source.Enumerate across the workload queries on the
// worker pool, returning per-query proposals in query order.
func (p *Pipeline) enumerate(ctx context.Context, w *workload.Workload) ([][]Raw, error) {
	out := make([][]Raw, len(w.Queries))
	sem := make(chan struct{}, p.opts.Parallelism)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
submit:
	for qi, e := range w.Queries {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break submit
		}
		wg.Add(1)
		go func(qi int, e workload.Entry) {
			defer wg.Done()
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			raws, err := p.src.Enumerate(e.Query)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				cancel()
				return
			}
			out[qi] = raws
		}(qi, e)
	}
	wg.Wait()
	// A worker's own error outranks the cancellation it triggered, so
	// the caller sees the enumeration failure, not "context canceled".
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// merge deduplicates the per-query proposals into the basic candidate
// set in one pass over a key map, tags each candidate with the queries
// that produced it, and assigns IDs in Key order.
func (p *Pipeline) merge(w *workload.Workload, perQuery [][]Raw, st *Stats) ([]*Candidate, error) {
	byKey := map[string]*Candidate{}
	var out []*Candidate
	for qi, raws := range perQuery {
		coll := w.Queries[qi].Query.Collection
		st.Enumerated += len(raws)
		for _, r := range raws {
			key := coll + "|" + r.Key()
			c := byKey[key]
			if c == nil {
				cstats, err := p.cat.Stats(coll)
				if err != nil {
					return nil, err
				}
				c = &Candidate{
					Collection: coll,
					Pattern:    r.Pattern,
					Type:       r.Type,
					Basic:      true,
				}
				c.Def = catalog.VirtualDef(fmt.Sprintf("XIA_B%d", len(out)+1), coll, r.Pattern, r.Type, cstats)
				byKey[key] = c
				out = append(out, c)
			} else {
				st.Deduped++
			}
			if len(c.FromQueries) == 0 || c.FromQueries[len(c.FromQueries)-1] != qi {
				c.FromQueries = append(c.FromQueries, qi)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	for i, c := range out {
		c.ID = i
	}
	return out, nil
}

// generalize runs the rule engine: fixpoint rules iterate a frontier of
// newly added candidates until quiescence; the remaining rules apply
// once to the basics. Every proposal is deduplicated against the set
// and the candidate budget; accepted candidates that would index no
// data are pruned afterwards.
func (p *Pipeline) generalize(basics []*Candidate, st *Stats) ([]*Candidate, error) {
	all := append([]*Candidate(nil), basics...)
	byKey := make(map[string]*Candidate, len(all))
	for _, c := range all {
		byKey[c.Key()] = c
	}
	counters := make([]*RuleStats, len(p.opts.Rules))
	for i, r := range p.opts.Rules {
		counters[i] = &RuleStats{Name: r.Name()}
	}

	ctx := &RuleContext{MinSharedSteps: p.opts.MinSharedSteps}
	// accept adds one proposal for rule ri, returning the new candidate
	// or nil when the proposal was rejected (duplicate or over budget).
	accept := func(ri int, c *Candidate, pat pattern.Pattern) (*Candidate, error) {
		if len(all) >= p.opts.MaxCandidates {
			counters[ri].Pruned++
			return nil, nil
		}
		key := c.Collection + "|" + pat.String() + "|" + c.Type.Short()
		if byKey[key] != nil {
			counters[ri].Pruned++
			return nil, nil
		}
		cstats, err := p.cat.Stats(c.Collection)
		if err != nil {
			return nil, err
		}
		nc := &Candidate{
			ID:         len(all),
			Collection: c.Collection,
			Pattern:    pat,
			Type:       c.Type,
			Rule:       p.opts.Rules[ri].Name(),
		}
		nc.Def = catalog.VirtualDef(fmt.Sprintf("XIA_G%d", len(all)+1), nc.Collection, pat, nc.Type, cstats)
		byKey[key] = nc
		all = append(all, nc)
		counters[ri].Applied++
		return nc, nil
	}

	for ri, rule := range p.opts.Rules {
		if !rule.Fixpoint() {
			continue
		}
		frontier := append([]*Candidate(nil), basics...)
		for len(frontier) > 0 && len(all) < p.opts.MaxCandidates {
			var next []*Candidate
			for _, c := range frontier {
				ctx.All = all
				for _, pat := range rule.Apply(c, ctx) {
					nc, err := accept(ri, c, pat)
					if err != nil {
						return nil, err
					}
					if nc != nil {
						next = append(next, nc)
					}
				}
			}
			frontier = next
		}
	}
	for ri, rule := range p.opts.Rules {
		if rule.Fixpoint() {
			continue
		}
		for _, c := range basics {
			if len(all) >= p.opts.MaxCandidates {
				break
			}
			ctx.All = all
			for _, pat := range rule.Apply(c, ctx) {
				if _, err := accept(ri, c, pat); err != nil {
					return nil, err
				}
			}
		}
	}

	// Budget-aware prune: drop generalized candidates that would index
	// nothing — an empty index can never benefit a query, and its pages
	// would still count against the search's disk budget.
	byRule := map[string]*RuleStats{}
	for _, rs := range counters {
		byRule[rs.Name] = rs
	}
	kept := all[:0:0]
	for _, c := range all {
		if c.Basic || c.Def.EstEntries > 0 {
			kept = append(kept, c)
			continue
		}
		if rs := byRule[c.Rule]; rs != nil {
			rs.Applied--
			rs.Pruned++
		}
	}
	all = kept
	for i, c := range all {
		c.ID = i
	}
	for _, rs := range counters {
		st.Rules = append(st.Rules, *rs)
	}
	return all, nil
}

// buildCovers fills each candidate's sparse redundancy coverage over
// the basic candidates (same collection and type, containing pattern)
// straight from the containment matrix rows — the stratum and
// containment tests were already paid for by the DAG build.
func buildCovers(all, basics []*Candidate, mx *containmentMatrix) {
	// generalize() builds all as basics followed by accepted proposals
	// and the no-data prune keeps every basic, so basics[bi] == all[bi]
	// and a basic's matrix column is simply bi.
	for bi, b := range basics {
		if all[bi] != b {
			panic("candidate: basics are not a prefix of the candidate set")
		}
	}
	for i, c := range all {
		c.covers = nil
		row := mx.contains[i]
		for bi := range basics {
			if row.Get(bi) {
				c.covers = append(c.covers, int32(bi))
			}
		}
	}
}
