package candidate

import (
	"repro/internal/optimizer"
	"repro/internal/pattern"
	"repro/internal/querylang"
	"repro/internal/sqltype"
)

// Raw is one basic-candidate proposal from a Source: a pattern plus the
// SQL type an index must have to serve it. Collection is implied by the
// query the proposal was enumerated for.
type Raw struct {
	Pattern pattern.Pattern
	Type    sqltype.Type
}

// Key identifies the proposal by what it would index.
func (r Raw) Key() string { return r.Pattern.String() + "|" + r.Type.Short() }

// Source enumerates the basic candidate indexes of one query (paper
// §2.1). Implementations must be safe for concurrent use: the Pipeline
// calls Enumerate from many goroutines, one query per call.
type Source interface {
	// Name identifies the source in stats and traces.
	Name() string
	// Enumerate returns the basic candidates of q, deduplicated within
	// the query and in deterministic order.
	Enumerate(q *querylang.Query) ([]Raw, error)
}

// OptimizerSource is the paper's tightly coupled enumeration: the
// optimizer's Enumerate Indexes EXPLAIN mode reports every query pattern
// its index-matching code would serve with a value index, with inferred
// SQL types.
type OptimizerSource struct {
	Opt *optimizer.Optimizer
}

// Name implements Source.
func (s *OptimizerSource) Name() string { return "optimizer" }

// Enumerate implements Source via the Enumerate Indexes EXPLAIN mode.
func (s *OptimizerSource) Enumerate(q *querylang.Query) ([]Raw, error) {
	cands, err := s.Opt.EnumerateIndexes(q)
	if err != nil {
		return nil, err
	}
	out := make([]Raw, len(cands))
	for i, c := range cands {
		out[i] = Raw{Pattern: c.Pattern, Type: c.Type}
	}
	return out, nil
}

// SyntacticSource is the loosely coupled enumeration baseline for the
// coupling ablation: every path in the query text becomes a candidate,
// including extraction paths the optimizer would never serve with a
// value index, and with no SQL type inference (everything VARCHAR).
type SyntacticSource struct{}

// Name implements Source.
func (SyntacticSource) Name() string { return "syntactic" }

// Enumerate implements Source by scraping every leg of the parsed query.
func (SyntacticSource) Enumerate(q *querylang.Query) ([]Raw, error) {
	var out []Raw
	for _, leg := range q.Legs() {
		out = append(out, Raw{Pattern: leg.Pattern, Type: sqltype.Varchar})
	}
	return DedupeRaw(out), nil
}

// StaticSource is a user-supplied (seeded) candidate source: every query
// of a collection receives the same fixed proposals. It models an
// external advisor or DBA seeding the search space, and composes with
// another source via Merged.
type StaticSource struct {
	// ByCollection maps a collection name to its seeded proposals.
	ByCollection map[string][]Raw
}

// Name implements Source.
func (s *StaticSource) Name() string { return "static" }

// Enumerate implements Source with the collection's fixed seed list.
func (s *StaticSource) Enumerate(q *querylang.Query) ([]Raw, error) {
	return s.ByCollection[q.Collection], nil
}

// Merged fans one query across several sources and concatenates their
// proposals in source order (the Pipeline deduplicates by key).
type Merged []Source

// Name implements Source.
func (m Merged) Name() string {
	name := ""
	for i, s := range m {
		if i > 0 {
			name += "+"
		}
		name += s.Name()
	}
	return name
}

// Enumerate implements Source.
func (m Merged) Enumerate(q *querylang.Query) ([]Raw, error) {
	var out []Raw
	for _, s := range m {
		raws, err := s.Enumerate(q)
		if err != nil {
			return nil, err
		}
		out = append(out, raws...)
	}
	return DedupeRaw(out), nil
}

// DedupeRaw removes duplicate proposals by Key in a single pass over a
// map, preserving the order of first occurrence.
func DedupeRaw(raws []Raw) []Raw {
	seen := make(map[string]bool, len(raws))
	out := raws[:0:0]
	for _, r := range raws {
		key := r.Key()
		if !seen[key] {
			seen[key] = true
			out = append(out, r)
		}
	}
	return out
}
