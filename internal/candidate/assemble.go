package candidate

// AssembleSet reconstructs a pipeline-built Set from serialized parts:
// the candidates in their original dense-ID order (IDs are assigned
// from position), the containment DAG as a direct-children adjacency
// (indices into all), the basic subset as indices into all, and the
// original pipeline stats. Parents, roots, and the Key-sorted ordering
// invariants are rebuilt here, so a Set restored from a snapshot is
// structurally identical to the pipeline's output. Callers fill each
// candidate's scalar fields, Def, and coverage (SetCovers) beforehand.
func AssembleSet(all []*Candidate, basics []int32, children [][]int32, st Stats) *Set {
	for i, c := range all {
		c.ID = i
	}
	for i, chs := range children {
		p := all[i]
		for _, j := range chs {
			ch := all[j]
			p.Children = append(p.Children, ch)
			ch.Parents = append(ch.Parents, p)
		}
	}
	dag := &DAG{Nodes: all}
	for _, c := range all {
		sortByKey(c.Children)
		sortByKey(c.Parents)
		if len(c.Parents) == 0 {
			dag.Roots = append(dag.Roots, c)
		}
	}
	sortByKey(dag.Roots)
	set := &Set{All: all, DAG: dag, Stats: st}
	if len(basics) > 0 {
		set.Basics = make([]*Candidate, len(basics))
		for i, b := range basics {
			set.Basics[i] = all[b]
		}
	}
	return set
}
