package candidate

import (
	"fmt"
	"strings"

	"repro/internal/pattern"
)

// RuleContext is what a Rule sees when applied to one candidate: the
// live candidate set (for pairwise rules) and the engine thresholds.
type RuleContext struct {
	// All is the current candidate set, in ID order. It grows as the
	// engine accepts proposals; a Rule must treat it as read-only.
	All []*Candidate
	// MinSharedSteps is the minimum number of shared concrete steps two
	// patterns need before pairwise generalization applies.
	MinSharedSteps int
}

// Rule is one named generalization rewrite of §2.2. Apply proposes
// generalizations of c; the engine deduplicates, enforces the candidate
// budget, and tracks per-rule applied/pruned counters. Rules must be
// stateless: the same Rule value is reused across pipeline runs.
type Rule interface {
	// Name is the rule's stable identifier (the -rules flag vocabulary).
	Name() string
	// Fixpoint reports whether the engine re-applies the rule to the
	// candidates it produced (frontier iteration until no new candidate
	// appears) instead of applying it once to the basic candidates.
	Fixpoint() bool
	// Apply returns the patterns c generalizes to under this rule, in
	// deterministic order. Collection and SQL type are inherited from c.
	Apply(c *Candidate, ctx *RuleContext) []pattern.Pattern
}

// lubRule is the paper's pairwise least-upper-bound rule: candidates of
// identical shape that differ in one or more step names generalize to
// the pattern with * at the differing steps — /regions/namerica/item/
// quantity + /regions/africa/item/quantity => /regions/*/item/quantity.
// It runs to fixpoint, so LUBs of LUBs appear too (/regions/*/item/*).
type lubRule struct{}

func (lubRule) Name() string   { return "lub" }
func (lubRule) Fixpoint() bool { return true }

func (lubRule) Apply(c *Candidate, ctx *RuleContext) []pattern.Pattern {
	var out []pattern.Pattern
	for _, d := range ctx.All {
		if c == d || c.Collection != d.Collection || c.Type != d.Type {
			continue
		}
		if pattern.SharedConcreteSteps(c.Pattern, d.Pattern) < ctx.MinSharedSteps {
			continue
		}
		if lub, ok := pattern.PairwiseLUB(c.Pattern, d.Pattern); ok {
			out = append(out, lub)
		}
	}
	return out
}

// wildcardRule substitutes a wildcard for one step name at a time
// (/a/b/c -> /*/b/c, /a/*/c, /a/b/*), the single-step form of §2.2's
// wildcard substitution. Unlike lub it needs no partner pattern, so it
// also generalizes candidates that share a shape with nothing else. It
// applies to basics only: running it to fixpoint would enumerate the
// full wildcard lattice of every pattern.
type wildcardRule struct{}

func (wildcardRule) Name() string   { return "wildcard" }
func (wildcardRule) Fixpoint() bool { return false }

func (wildcardRule) Apply(c *Candidate, _ *RuleContext) []pattern.Pattern {
	var out []pattern.Pattern
	for i := 0; i < c.Pattern.Len(); i++ {
		if g, ok := pattern.WildcardAt(c.Pattern, i); ok {
			out = append(out, g)
		}
	}
	return out
}

// leafRule is the descendant-leaf relaxation: every candidate
// generalizes to //leaf (/site/regions/namerica/item -> //item), the
// most label-preserving pattern near the DAG roots.
type leafRule struct{}

func (leafRule) Name() string   { return "leaf" }
func (leafRule) Fixpoint() bool { return false }

func (leafRule) Apply(c *Candidate, _ *RuleContext) []pattern.Pattern {
	if g, ok := pattern.DescendantLeaf(c.Pattern); ok {
		return []pattern.Pattern{g}
	}
	return nil
}

// axisRule relaxes each child step to a descendant step (/a/b -> /a//b),
// useful when future workloads move subtrees.
type axisRule struct{}

func (axisRule) Name() string   { return "axis" }
func (axisRule) Fixpoint() bool { return false }

func (axisRule) Apply(c *Candidate, _ *RuleContext) []pattern.Pattern {
	var out []pattern.Pattern
	for i := 0; i < c.Pattern.Len(); i++ {
		if g, ok := pattern.RelaxAxisAt(c.Pattern, i); ok {
			out = append(out, g)
		}
	}
	return out
}

// universalRule adds the universal patterns (//* and //@*) for each
// referenced (collection, type) — the most general indexes possible,
// giving top-down search the full root-to-leaf range. Only the first
// basic candidate of each (collection, type) proposes, so repeat
// proposals do not pollute the rule's pruned counter.
type universalRule struct{}

func (universalRule) Name() string   { return "universal" }
func (universalRule) Fixpoint() bool { return false }

func (universalRule) Apply(c *Candidate, ctx *RuleContext) []pattern.Pattern {
	for _, d := range ctx.All {
		if d.Basic && d.Collection == c.Collection && d.Type == c.Type {
			if d != c {
				return nil
			}
			break
		}
	}
	return []pattern.Pattern{
		pattern.UniversalFor(pattern.TestElem),
		pattern.UniversalFor(pattern.TestAttr),
	}
}

// DefaultRules is the paper's §2.2 rule set: pairwise LUB to fixpoint
// plus the descendant-leaf relaxation.
func DefaultRules() []Rule { return []Rule{lubRule{}, leafRule{}} }

// AllRules is every known rule, in engine application order.
func AllRules() []Rule {
	return []Rule{lubRule{}, wildcardRule{}, leafRule{}, axisRule{}, universalRule{}}
}

// RuleByName resolves one rule name.
func RuleByName(name string) (Rule, error) {
	for _, r := range AllRules() {
		if r.Name() == name {
			return r, nil
		}
	}
	return nil, fmt.Errorf("candidate: unknown rule %q", name)
}

// ParseRules parses a comma-separated rule list ("lub,leaf,axis").
// The empty string and "none" mean no rules; "all" means AllRules. The
// returned rules are reordered to the engine's canonical application
// order, so the resulting candidate set is independent of spelling.
func ParseRules(spec string) ([]Rule, error) {
	spec = strings.TrimSpace(spec)
	switch spec {
	case "", "none":
		return nil, nil
	case "all":
		return AllRules(), nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := RuleByName(name); err != nil {
			return nil, err
		}
		want[name] = true
	}
	var out []Rule
	for _, r := range AllRules() {
		if want[r.Name()] {
			out = append(out, r)
		}
	}
	return out, nil
}

// RuleNames renders a rule list as its comma-separated names.
func RuleNames(rules []Rule) string {
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.Name()
	}
	return strings.Join(names, ",")
}
