// Package sqltype defines the SQL data types, typed values, and comparison
// operators shared by the index layer, the statistics collector, the query
// front ends, and the optimizer. It mirrors the type clause of DB2 XML
// index DDL (CREATE INDEX ... GENERATE KEY USING XMLPATTERN '...' AS SQL
// VARCHAR/DOUBLE/DATE).
package sqltype

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Type is the SQL type of an XML index or predicate constant.
type Type uint8

const (
	// Varchar indexes/compares values as strings.
	Varchar Type = iota
	// Double indexes/compares values as 64-bit floats.
	Double
	// Date indexes/compares values as calendar dates.
	Date
)

// Types lists all supported types, in a stable order.
var Types = []Type{Varchar, Double, Date}

// String returns the DDL spelling of the type.
func (t Type) String() string {
	switch t {
	case Varchar:
		return "VARCHAR(100)"
	case Double:
		return "DOUBLE"
	case Date:
		return "DATE"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Short returns a compact name used in index naming and reports.
func (t Type) Short() string {
	switch t {
	case Varchar:
		return "str"
	case Double:
		return "dbl"
	case Date:
		return "date"
	default:
		return "?"
	}
}

// ParseType parses a type name in either DDL or short spelling.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "VARCHAR", "VARCHAR(100)", "STR", "STRING":
		return Varchar, nil
	case "DOUBLE", "DBL", "FLOAT", "NUMERIC":
		return Double, nil
	case "DATE":
		return Date, nil
	}
	return Varchar, fmt.Errorf("sqltype: unknown type %q", s)
}

// Value is a typed value. For Double and Date the F field carries the
// comparable form (Date as fractional days since the Unix epoch); for
// Varchar the S field carries the string.
type Value struct {
	Type Type
	F    float64
	S    string
}

// dateLayouts are the accepted textual date formats, tried in order.
var dateLayouts = []string{"2006-01-02", "2006-01-02T15:04:05", "2006/01/02"}

// Cast interprets raw text as a value of type t. ok is false when the text
// does not convert (e.g. "abc" AS DOUBLE) — such nodes simply do not
// appear in an index of that type, mirroring DB2's REJECT INVALID VALUES
// behaviour.
func Cast(t Type, raw string) (Value, bool) {
	switch t {
	case Varchar:
		return Value{Type: Varchar, S: raw}, true
	case Double:
		f, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return Value{}, false
		}
		return Value{Type: Double, F: f}, true
	case Date:
		s := strings.TrimSpace(raw)
		for _, layout := range dateLayouts {
			if tm, err := time.Parse(layout, s); err == nil {
				return Value{Type: Date, F: float64(tm.Unix()) / 86400.0}, true
			}
		}
		return Value{}, false
	}
	return Value{}, false
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Type {
	case Varchar:
		return strconv.Quote(v.S)
	case Double:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Date:
		tm := time.Unix(int64(v.F*86400), 0).UTC()
		return tm.Format("2006-01-02")
	}
	return "?"
}

// Compare orders two values of the same type: -1, 0, or +1. It panics if
// the types differ; callers cast first.
func Compare(a, b Value) int {
	if a.Type != b.Type {
		panic(fmt.Sprintf("sqltype: comparing %v to %v", a.Type, b.Type))
	}
	if a.Type == Varchar {
		return strings.Compare(a.S, b.S)
	}
	switch {
	case a.F < b.F:
		return -1
	case a.F > b.F:
		return 1
	default:
		return 0
	}
}

// CmpOp is a comparison operator in a query predicate.
type CmpOp uint8

const (
	// Exists is the absence of a value predicate: the path merely has to
	// exist (structural predicate).
	Exists CmpOp = iota
	// Eq is "=".
	Eq
	// Ne is "!=".
	Ne
	// Lt is "<".
	Lt
	// Le is "<=".
	Le
	// Gt is ">".
	Gt
	// Ge is ">=".
	Ge
	// ContainsSubstr is the contains(path, "s") function.
	ContainsSubstr
)

// String returns the operator's query spelling.
func (op CmpOp) String() string {
	switch op {
	case Exists:
		return "exists"
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case ContainsSubstr:
		return "contains"
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Rangeable reports whether the operator can be answered by a B+ tree
// point or range scan (everything except Ne and ContainsSubstr, which
// need a full index or document scan).
func (op CmpOp) Rangeable() bool {
	switch op {
	case Eq, Lt, Le, Gt, Ge:
		return true
	}
	return false
}

// Eval applies the operator to a raw node value and a typed constant. The
// raw value is cast to the constant's type first; a failed cast yields
// false (the node cannot satisfy a typed comparison).
func Eval(raw string, op CmpOp, c Value) bool {
	switch op {
	case Exists:
		return true
	case ContainsSubstr:
		return strings.Contains(raw, c.S)
	}
	v, ok := Cast(c.Type, raw)
	if !ok {
		return false
	}
	cmp := Compare(v, c)
	switch op {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	}
	return false
}
