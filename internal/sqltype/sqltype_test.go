package sqltype

import (
	"testing"
	"testing/quick"
)

func TestCastVarchar(t *testing.T) {
	v, ok := Cast(Varchar, "hello")
	if !ok || v.S != "hello" || v.Type != Varchar {
		t.Errorf("Cast varchar = %+v, %v", v, ok)
	}
}

func TestCastDouble(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"1.5", 1.5, true},
		{" 42 ", 42, true},
		{"-3e2", -300, true},
		{"abc", 0, false},
		{"", 0, false},
		{"12abc", 0, false},
	}
	for _, tc := range cases {
		v, ok := Cast(Double, tc.in)
		if ok != tc.ok || (ok && v.F != tc.want) {
			t.Errorf("Cast(Double, %q) = %+v, %v", tc.in, v, ok)
		}
	}
}

func TestCastDate(t *testing.T) {
	v, ok := Cast(Date, "2008-06-09") // SIGMOD'08 started June 9
	if !ok {
		t.Fatal("date cast failed")
	}
	v2, ok := Cast(Date, "2008-06-10")
	if !ok {
		t.Fatal("date cast failed")
	}
	if !(v.F < v2.F) {
		t.Error("date ordering broken")
	}
	if d := v2.F - v.F; d < 0.99 || d > 1.01 {
		t.Errorf("one day apart = %f days", d)
	}
	if _, ok := Cast(Date, "not a date"); ok {
		t.Error("bad date should fail")
	}
	if got := v.String(); got != "2008-06-09" {
		t.Errorf("date String = %q", got)
	}
	if _, ok := Cast(Date, "2008/06/09"); !ok {
		t.Error("slash layout should parse")
	}
	if _, ok := Cast(Date, "2008-06-09T10:30:00"); !ok {
		t.Error("datetime layout should parse")
	}
}

func TestCompare(t *testing.T) {
	a, _ := Cast(Double, "1")
	b, _ := Cast(Double, "2")
	if Compare(a, b) != -1 || Compare(b, a) != 1 || Compare(a, a) != 0 {
		t.Error("double compare broken")
	}
	s1, _ := Cast(Varchar, "apple")
	s2, _ := Cast(Varchar, "banana")
	if Compare(s1, s2) >= 0 {
		t.Error("varchar compare broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("cross-type Compare should panic")
		}
	}()
	Compare(a, s1)
}

func TestEval(t *testing.T) {
	c, _ := Cast(Double, "100")
	cases := []struct {
		raw  string
		op   CmpOp
		want bool
	}{
		{"100", Eq, true},
		{"100.0", Eq, true},
		{"99", Eq, false},
		{"99", Lt, true},
		{"100", Lt, false},
		{"100", Le, true},
		{"101", Gt, true},
		{"100", Ge, true},
		{"abc", Eq, false}, // failed cast never satisfies
		{"abc", Ne, false}, // even Ne requires a castable value
		{"55", Ne, true},
		{"anything", Exists, true},
	}
	for _, tc := range cases {
		if got := Eval(tc.raw, tc.op, c); got != tc.want {
			t.Errorf("Eval(%q %v 100) = %v, want %v", tc.raw, tc.op, got, tc.want)
		}
	}
	s, _ := Cast(Varchar, "err")
	if !Eval("keyboard error", ContainsSubstr, s) {
		t.Error("contains should match substring")
	}
	if Eval("fine", ContainsSubstr, s) {
		t.Error("contains should not match")
	}
}

func TestParseType(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Type
	}{
		{"VARCHAR", Varchar}, {"varchar(100)", Varchar}, {"str", Varchar},
		{"DOUBLE", Double}, {"dbl", Double}, {"float", Double},
		{"DATE", Date}, {" date ", Date},
	} {
		got, err := ParseType(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseType(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseType("BLOB"); err == nil {
		t.Error("unknown type should fail")
	}
}

func TestOpStringsAndRangeable(t *testing.T) {
	if Eq.String() != "=" || Lt.String() != "<" || Exists.String() != "exists" {
		t.Error("op String broken")
	}
	for _, op := range []CmpOp{Eq, Lt, Le, Gt, Ge} {
		if !op.Rangeable() {
			t.Errorf("%v should be rangeable", op)
		}
	}
	for _, op := range []CmpOp{Ne, ContainsSubstr, Exists} {
		if op.Rangeable() {
			t.Errorf("%v should not be rangeable", op)
		}
	}
}

// Property: Eval(raw, Eq, Cast(raw)) holds for any float-formatted raw.
func TestEvalEqReflexiveProperty(t *testing.T) {
	f := func(x float64) bool {
		v := Value{Type: Double, F: x}
		raw := v.String()
		got, ok := Cast(Double, raw)
		if !ok {
			return false
		}
		return Compare(got, v) == 0 && Eval(raw, Eq, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTypeStrings(t *testing.T) {
	if Varchar.String() != "VARCHAR(100)" || Double.String() != "DOUBLE" || Date.String() != "DATE" {
		t.Error("type DDL spelling broken")
	}
	if Varchar.Short() != "str" || Double.Short() != "dbl" || Date.Short() != "date" {
		t.Error("short names broken")
	}
}
