// Package stats collects and serves the path-level statistics that drive
// the optimizer's cost model and the advisor's index size estimation: per
// rooted path, the node count, value-typing counts, min/max, distinct
// counts, and equi-depth histograms over sampled values.
//
// This is the substrate standing in for DB2's RUNSTATS-collected XML
// statistics; the paper's Evaluate Indexes mode ("cost estimation using DB
// statistics" in Figure 1) reads exactly this kind of table.
package stats

import (
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/pattern"
	"repro/internal/sqltype"
	"repro/internal/store"
	"repro/internal/xmldoc"
)

const (
	// distinctCap bounds the exact distinct-value tracking per path.
	distinctCap = 8192
	// sampleCap is the reservoir size per path for histogram building.
	sampleCap = 1024
	// maxValueLen truncates stored sample values.
	maxValueLen = 128
)

// PathStat aggregates statistics for one concrete rooted path.
type PathStat struct {
	Path  string
	Count int64 // nodes with this rooted path

	ValueCount   int64 // nodes with a non-empty text value
	NumericCount int64 // values castable to DOUBLE
	DateCount    int64 // values castable to DATE

	MinNum, MaxNum float64
	MinStr, MaxStr string
	TotalValueLen  int64

	distinct         map[string]struct{}
	distinctOverflow bool

	numSample []float64 // reservoir sample of numeric values
	strSample []string  // reservoir sample of string values
	seen      int64     // reservoir counter

	histOnce sync.Once
	numHist  *Histogram // built lazily from numSample
}

// Distinct returns the (possibly estimated) number of distinct values.
func (ps *PathStat) Distinct() int64 {
	if ps.distinctOverflow {
		// Cap hit: assume the tail kept introducing new values at half
		// the rate observed up to the cap.
		est := int64(len(ps.distinct)) + (ps.ValueCount-int64(len(ps.distinct)))/2
		if est > ps.ValueCount {
			est = ps.ValueCount
		}
		return est
	}
	return int64(len(ps.distinct))
}

// AvgValueLen returns the average stored value length in bytes.
func (ps *PathStat) AvgValueLen() float64 {
	if ps.ValueCount == 0 {
		return 0
	}
	return float64(ps.TotalValueLen) / float64(ps.ValueCount)
}

// CountForType returns how many of this path's nodes would appear in an
// index of the given SQL type (failed casts are rejected from the index).
func (ps *PathStat) CountForType(t sqltype.Type) int64 {
	switch t {
	case sqltype.Varchar:
		return ps.ValueCount
	case sqltype.Double:
		return ps.NumericCount
	case sqltype.Date:
		return ps.DateCount
	}
	return 0
}

func (ps *PathStat) addValue(raw string, rng *rand.Rand) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return
	}
	if len(raw) > maxValueLen {
		raw = raw[:maxValueLen]
	}
	ps.ValueCount++
	ps.TotalValueLen += int64(len(raw))
	if ps.ValueCount == 1 || raw < ps.MinStr {
		ps.MinStr = raw
	}
	if ps.ValueCount == 1 || raw > ps.MaxStr {
		ps.MaxStr = raw
	}
	if !ps.distinctOverflow {
		if ps.distinct == nil {
			ps.distinct = map[string]struct{}{}
		}
		ps.distinct[raw] = struct{}{}
		if len(ps.distinct) >= distinctCap {
			ps.distinctOverflow = true
		}
	}
	if v, ok := sqltype.Cast(sqltype.Double, raw); ok {
		ps.NumericCount++
		if ps.NumericCount == 1 || v.F < ps.MinNum {
			ps.MinNum = v.F
		}
		if ps.NumericCount == 1 || v.F > ps.MaxNum {
			ps.MaxNum = v.F
		}
		reservoirAdd(&ps.numSample, v.F, ps.seen, rng)
	}
	if _, ok := sqltype.Cast(sqltype.Date, raw); ok {
		ps.DateCount++
	}
	reservoirAdd(&ps.strSample, raw, ps.seen, rng)
	ps.seen++
}

func reservoirAdd[T any](sample *[]T, v T, seen int64, rng *rand.Rand) {
	if len(*sample) < sampleCap {
		*sample = append(*sample, v)
		return
	}
	if j := rng.Int63n(seen + 1); j < int64(sampleCap) {
		(*sample)[j] = v
	}
}

// NumHistogram returns the equi-depth histogram over the path's numeric
// values, or nil if there are none.
func (ps *PathStat) NumHistogram() *Histogram {
	// Concurrent what-if evaluations share the stats snapshot, so the
	// lazy build must be race-free.
	ps.histOnce.Do(func() {
		if len(ps.numSample) > 0 {
			ps.numHist = NewEquiDepth(ps.numSample, 32)
		}
	})
	return ps.numHist
}

// StrFractionBelow estimates the fraction of values < s (lexicographic),
// from the string sample.
func (ps *PathStat) StrFractionBelow(s string) float64 {
	if len(ps.strSample) == 0 {
		return 0.5
	}
	sorted := make([]string, len(ps.strSample))
	copy(sorted, ps.strSample)
	sort.Strings(sorted)
	i := sort.SearchStrings(sorted, s)
	return float64(i) / float64(len(sorted))
}

// Stats is the statistics snapshot for one collection.
type Stats struct {
	Collection string
	Docs       int64
	Nodes      int64
	Bytes      int64
	Pages      int64
	PageSize   int
	Version    int64 // collection version this snapshot was built from

	Paths map[string]*PathStat

	mu         sync.Mutex
	matchCache map[string][]*PathStat
}

// Collect walks every document of the collection once and builds the
// statistics snapshot. Element values are the concatenated descendant
// text (the value DB2 indexes for an element node).
func Collect(c *store.Collection) *Stats {
	s := &Stats{
		Collection: c.Name(),
		Docs:       int64(c.Len()),
		Nodes:      c.NodeCount(),
		Bytes:      c.Bytes(),
		Pages:      c.Pages(),
		PageSize:   c.PageSize(),
		Version:    c.Version(),
		Paths:      map[string]*PathStat{},
		matchCache: map[string][]*PathStat{},
	}
	rng := rand.New(rand.NewSource(1)) // deterministic sampling
	c.Each(func(d *xmldoc.Document) bool {
		if d.Root != nil {
			s.walk(d.Root, "", rng)
		}
		return true
	})
	return s
}

func (s *Stats) walk(n *xmldoc.Node, prefix string, rng *rand.Rand) {
	var path string
	switch n.Kind {
	case xmldoc.KindElement:
		path = prefix + "/" + n.Name
	case xmldoc.KindAttribute:
		path = prefix + "/@" + n.Name
	case xmldoc.KindText:
		path = prefix + "/text()"
	}
	ps := s.Paths[path]
	if ps == nil {
		ps = &PathStat{Path: path}
		s.Paths[path] = ps
	}
	ps.Count++
	switch n.Kind {
	case xmldoc.KindElement:
		ps.addValue(n.Text(), rng)
		for _, a := range n.Attrs {
			s.walk(a, path, rng)
		}
		for _, c := range n.Children {
			s.walk(c, path, rng)
		}
	case xmldoc.KindAttribute, xmldoc.KindText:
		ps.addValue(n.Value, rng)
	}
}

// PathList returns all distinct rooted paths in sorted order.
func (s *Stats) PathList() []string {
	out := make([]string, 0, len(s.Paths))
	for p := range s.Paths {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Matching returns the PathStats whose concrete path matches the pattern,
// in sorted path order. Results are cached per pattern string.
func (s *Stats) Matching(p pattern.Pattern) []*PathStat {
	key := p.String()
	s.mu.Lock()
	if got, ok := s.matchCache[key]; ok {
		s.mu.Unlock()
		return got
	}
	s.mu.Unlock()

	m := pattern.InternedMatcher(p)
	var out []*PathStat
	for _, path := range s.PathList() {
		if m.MatchPath(path) {
			out = append(out, s.Paths[path])
		}
	}
	s.mu.Lock()
	s.matchCache[key] = out
	s.mu.Unlock()
	return out
}

// Cardinality returns the number of nodes matched by the pattern.
func (s *Stats) Cardinality(p pattern.Pattern) int64 {
	var n int64
	for _, ps := range s.Matching(p) {
		n += ps.Count
	}
	return n
}

// TypedCardinality returns the number of index entries a (pattern, type)
// index would hold: matched nodes whose values cast to the type.
func (s *Stats) TypedCardinality(p pattern.Pattern, t sqltype.Type) int64 {
	var n int64
	for _, ps := range s.Matching(p) {
		n += ps.CountForType(t)
	}
	return n
}

// Selectivity estimates the fraction of the pattern's *indexable* nodes
// that satisfy (op, value). Exists predicates have selectivity 1 over the
// matched nodes.
func (s *Stats) Selectivity(p pattern.Pattern, op sqltype.CmpOp, v sqltype.Value) float64 {
	matched := s.Matching(p)
	var total int64
	for _, ps := range matched {
		total += ps.CountForType(v.Type)
	}
	if op == sqltype.Exists {
		return 1.0
	}
	if total == 0 {
		return 0
	}
	var hit float64
	for _, ps := range matched {
		n := ps.CountForType(v.Type)
		if n == 0 {
			continue
		}
		hit += float64(n) * pathSelectivity(ps, op, v)
	}
	sel := hit / float64(total)
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

func pathSelectivity(ps *PathStat, op sqltype.CmpOp, v sqltype.Value) float64 {
	switch op {
	case sqltype.Eq:
		d := ps.Distinct()
		if d == 0 {
			return 0
		}
		return 1.0 / float64(d)
	case sqltype.Ne:
		d := ps.Distinct()
		if d == 0 {
			return 0
		}
		return 1.0 - 1.0/float64(d)
	case sqltype.ContainsSubstr:
		return 0.1 // no substring statistics; fixed guess as in textbooks
	}
	// Range operators.
	if v.Type == sqltype.Varchar {
		below := ps.StrFractionBelow(v.S)
		switch op {
		case sqltype.Lt, sqltype.Le:
			return below
		case sqltype.Gt, sqltype.Ge:
			return 1 - below
		}
		return 0.3
	}
	h := ps.NumHistogram()
	if h == nil {
		return 0.3 // nothing numeric known; textbook default
	}
	below := h.FractionBelow(v.F)
	switch op {
	case sqltype.Lt:
		return below
	case sqltype.Le:
		return below + h.FractionEqual(v.F)
	case sqltype.Gt:
		return 1 - below - h.FractionEqual(v.F)
	case sqltype.Ge:
		return 1 - below
	}
	return 0.3
}

// Index size model constants (bytes per B+ tree entry beyond the key).
const (
	ridBytes       = 10  // doc id + node id, packed
	entryOverhead  = 6   // slot + prefix bytes
	btreeFill      = 0.7 // steady-state B+ tree page fill factor
	keyBytesDouble = 8
	keyBytesDate   = 4
)

// EstimateIndexEntries returns the estimated entry count of an index on
// (pattern, type).
func (s *Stats) EstimateIndexEntries(p pattern.Pattern, t sqltype.Type) int64 {
	return s.TypedCardinality(p, t)
}

// EstimateIndexBytes returns the estimated on-disk byte size of an index
// on (pattern, type).
func (s *Stats) EstimateIndexBytes(p pattern.Pattern, t sqltype.Type) int64 {
	var entries int64
	var keyLen float64
	switch t {
	case sqltype.Varchar:
		var totalLen float64
		for _, ps := range s.Matching(p) {
			entries += ps.ValueCount
			totalLen += float64(ps.TotalValueLen)
		}
		if entries > 0 {
			keyLen = totalLen / float64(entries)
		}
	case sqltype.Double:
		entries = s.TypedCardinality(p, t)
		keyLen = keyBytesDouble
	case sqltype.Date:
		entries = s.TypedCardinality(p, t)
		keyLen = keyBytesDate
	}
	raw := float64(entries) * (keyLen + ridBytes + entryOverhead)
	return int64(raw / btreeFill)
}

// EstimateIndexPages returns the estimated page count of an index on
// (pattern, type); at least 1 for a non-empty index.
func (s *Stats) EstimateIndexPages(p pattern.Pattern, t sqltype.Type) int64 {
	b := s.EstimateIndexBytes(p, t)
	if b == 0 {
		return 0
	}
	pages := (b + int64(s.PageSize) - 1) / int64(s.PageSize)
	if pages < 1 {
		pages = 1
	}
	return pages
}
