package stats

import (
	"fmt"
	"testing"

	"repro/internal/pattern"
	"repro/internal/sqltype"
	"repro/internal/store"
)

func TestDateCounting(t *testing.T) {
	c := store.NewCollection("d")
	c.InsertXML(`<r><when>2008-06-09</when><when>2008-06-10</when><when>not a date</when></r>`)
	s := Collect(c)
	ps := s.Paths["/r/when"]
	if ps == nil {
		t.Fatal("missing path")
	}
	if ps.DateCount != 2 {
		t.Errorf("DateCount = %d, want 2", ps.DateCount)
	}
	if ps.ValueCount != 3 {
		t.Errorf("ValueCount = %d, want 3", ps.ValueCount)
	}
	if got := s.TypedCardinality(pattern.MustParse("//when"), sqltype.Date); got != 2 {
		t.Errorf("typed date cardinality = %d", got)
	}
}

func TestStringRangeSelectivity(t *testing.T) {
	c := store.NewCollection("s")
	var sb []byte
	sb = append(sb, "<r>"...)
	for i := 0; i < 260; i++ {
		sb = append(sb, fmt.Sprintf("<n>name%03d</n>", i)...)
	}
	sb = append(sb, "</r>"...)
	c.InsertXML(string(sb))
	s := Collect(c)
	p := pattern.MustParse("//n")
	v, _ := sqltype.Cast(sqltype.Varchar, "name130")
	sel := s.Selectivity(p, sqltype.Lt, v)
	if sel < 0.35 || sel > 0.65 {
		t.Errorf("string Lt selectivity = %f, want ~0.5", sel)
	}
	selGe := s.Selectivity(p, sqltype.Ge, v)
	if diff := sel + selGe; diff < 0.9 || diff > 1.1 {
		t.Errorf("Lt + Ge = %f, want ~1", diff)
	}
}

func TestSelectivityBounds(t *testing.T) {
	c := store.NewCollection("b")
	for i := 0; i < 50; i++ {
		c.InsertXML(fmt.Sprintf(`<r><v>%d</v><s>txt%d</s></r>`, i%7, i%13))
	}
	s := Collect(c)
	for _, tc := range []struct {
		pat string
		op  sqltype.CmpOp
		raw string
		ty  sqltype.Type
	}{
		{"//v", sqltype.Eq, "3", sqltype.Double},
		{"//v", sqltype.Ne, "3", sqltype.Double},
		{"//v", sqltype.Lt, "-100", sqltype.Double},
		{"//v", sqltype.Gt, "1e9", sqltype.Double},
		{"//s", sqltype.Eq, "txt5", sqltype.Varchar},
		{"//s", sqltype.ContainsSubstr, "txt", sqltype.Varchar},
		{"//s", sqltype.Le, "txt9", sqltype.Varchar},
	} {
		v, _ := sqltype.Cast(tc.ty, tc.raw)
		sel := s.Selectivity(pattern.MustParse(tc.pat), tc.op, v)
		if sel < 0 || sel > 1 {
			t.Errorf("selectivity(%s %v %s) = %f out of [0,1]", tc.pat, tc.op, tc.raw, sel)
		}
	}
}

func TestVarcharIndexBytesUseAvgLength(t *testing.T) {
	short := store.NewCollection("short")
	long := store.NewCollection("long")
	for i := 0; i < 40; i++ {
		short.InsertXML(`<r><v>ab</v></r>`)
		long.InsertXML(`<r><v>abcdefghijklmnopqrstuvwxyz0123456789</v></r>`)
	}
	ss, sl := Collect(short), Collect(long)
	p := pattern.MustParse("//v")
	bShort := ss.EstimateIndexBytes(p, sqltype.Varchar)
	bLong := sl.EstimateIndexBytes(p, sqltype.Varchar)
	if bLong <= bShort {
		t.Errorf("long values should give a bigger index: %d vs %d", bLong, bShort)
	}
}

func TestAvgValueLenAndEmpty(t *testing.T) {
	c := store.NewCollection("a")
	c.InsertXML(`<r><v>abcd</v><v>ef</v><empty/></r>`)
	s := Collect(c)
	ps := s.Paths["/r/v"]
	if got := ps.AvgValueLen(); got != 3 {
		t.Errorf("AvgValueLen = %f, want 3", got)
	}
	pe := s.Paths["/r/empty"]
	if pe.ValueCount != 0 || pe.AvgValueLen() != 0 {
		t.Errorf("empty element stats: %+v", pe)
	}
	// Structural inner element: value is concatenated descendant text.
	pr := s.Paths["/r"]
	if pr.ValueCount != 1 {
		t.Errorf("inner element value count = %d", pr.ValueCount)
	}
}

func TestPathListSortedAndComplete(t *testing.T) {
	c := store.NewCollection("p")
	c.InsertXML(`<r a="1"><b>x</b><c/></r>`)
	s := Collect(c)
	list := s.PathList()
	want := []string{"/r", "/r/@a", "/r/b", "/r/b/text()", "/r/c"}
	if len(list) != len(want) {
		t.Fatalf("PathList = %v", list)
	}
	for i := range want {
		if list[i] != want[i] {
			t.Errorf("PathList[%d] = %s, want %s", i, list[i], want[i])
		}
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewEquiDepth([]float64{5, 5, 5, 5}, 8)
	if got := h.FractionBelow(5); got != 0 {
		t.Errorf("FractionBelow(min) = %f", got)
	}
	if got := h.FractionBelow(6); got != 1 {
		t.Errorf("FractionBelow(above) = %f", got)
	}
	if eq := h.FractionEqual(5); eq <= 0 {
		t.Errorf("FractionEqual(5) = %f", eq)
	}
	if eq := h.FractionEqual(99); eq != 0 {
		t.Errorf("FractionEqual(99) = %f", eq)
	}
}
