package stats

import "sort"

// Histogram is an equi-depth histogram over a numeric sample. Bucket i
// spans (Bounds[i], Bounds[i+1]]; each bucket holds ~1/len(depths) of the
// sample mass. Equi-depth (rather than equi-width) keeps estimates stable
// under the skewed value distributions XML benchmarks produce.
type Histogram struct {
	Bounds []float64 // len = buckets+1, ascending
	Depths []float64 // fraction of mass per bucket, sums to 1
	N      int       // sample size the histogram was built from
}

// NewEquiDepth builds an equi-depth histogram with at most maxBuckets
// buckets from the sample. Returns nil for an empty sample.
func NewEquiDepth(sample []float64, maxBuckets int) *Histogram {
	if len(sample) == 0 {
		return nil
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)

	b := maxBuckets
	if b > len(sorted) {
		b = len(sorted)
	}
	if b < 1 {
		b = 1
	}
	h := &Histogram{N: len(sorted)}
	h.Bounds = append(h.Bounds, sorted[0])
	per := float64(len(sorted)) / float64(b)
	prevIdx := 0
	for i := 1; i <= b; i++ {
		idx := int(per*float64(i)) - 1
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		if idx < prevIdx {
			idx = prevIdx
		}
		h.Bounds = append(h.Bounds, sorted[idx])
		h.Depths = append(h.Depths, float64(idx-prevIdx+1)/float64(len(sorted)))
		prevIdx = idx + 1
	}
	// Normalize drift from integer truncation.
	var sum float64
	for _, d := range h.Depths {
		sum += d
	}
	if sum > 0 {
		for i := range h.Depths {
			h.Depths[i] /= sum
		}
	}
	return h
}

// FractionBelow estimates the fraction of values strictly less than v,
// interpolating linearly within the containing bucket.
func (h *Histogram) FractionBelow(v float64) float64 {
	if h == nil || len(h.Bounds) < 2 {
		return 0.5
	}
	if v <= h.Bounds[0] {
		return 0
	}
	last := h.Bounds[len(h.Bounds)-1]
	if v > last {
		return 1
	}
	var acc float64
	for i := 0; i < len(h.Depths); i++ {
		lo, hi := h.Bounds[i], h.Bounds[i+1]
		if v > hi {
			acc += h.Depths[i]
			continue
		}
		if hi > lo {
			acc += h.Depths[i] * (v - lo) / (hi - lo)
		}
		break
	}
	if acc > 1 {
		acc = 1
	}
	return acc
}

// FractionEqual estimates the fraction of values equal to v: the mass of
// the containing bucket divided by an assumed uniform spread, bounded by
// the bucket mass.
func (h *Histogram) FractionEqual(v float64) float64 {
	if h == nil || len(h.Bounds) < 2 {
		return 0
	}
	if v < h.Bounds[0] || v > h.Bounds[len(h.Bounds)-1] {
		return 0
	}
	for i := 0; i < len(h.Depths); i++ {
		lo, hi := h.Bounds[i], h.Bounds[i+1]
		if v >= lo && v <= hi {
			// Assume ~N/buckets distinct values per bucket.
			perBucket := float64(h.N) / float64(len(h.Depths))
			if perBucket < 1 {
				perBucket = 1
			}
			return h.Depths[i] / perBucket
		}
	}
	return 0
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int {
	if h == nil {
		return 0
	}
	return len(h.Depths)
}
