package stats

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pattern"
	"repro/internal/sqltype"
	"repro/internal/store"
)

func itemsCollection(t testing.TB, n int) *store.Collection {
	t.Helper()
	c := store.NewCollection("items")
	for i := 0; i < n; i++ {
		region := []string{"namerica", "africa", "europe"}[i%3]
		src := fmt.Sprintf(
			`<site><regions><%s><item id="i%d"><quantity>%d</quantity><price>%d.50</price><name>item %d</name></item></%s></regions></site>`,
			region, i, i%10, i, i, region)
		if _, err := c.InsertXML(src); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestCollectBasics(t *testing.T) {
	c := itemsCollection(t, 30)
	s := Collect(c)
	if s.Docs != 30 {
		t.Errorf("Docs = %d", s.Docs)
	}
	if s.Nodes != c.NodeCount() {
		t.Errorf("Nodes = %d, want %d", s.Nodes, c.NodeCount())
	}
	ps := s.Paths["/site/regions/namerica/item/quantity"]
	if ps == nil {
		t.Fatal("missing path stat for quantity")
	}
	if ps.Count != 10 {
		t.Errorf("namerica quantity count = %d, want 10", ps.Count)
	}
	if ps.NumericCount != ps.ValueCount {
		t.Errorf("quantities should all be numeric: %d vs %d", ps.NumericCount, ps.ValueCount)
	}
	if ps.MinNum != 0 || ps.MaxNum != 9 {
		t.Errorf("min/max = %f/%f, want 0/9", ps.MinNum, ps.MaxNum)
	}
	attr := s.Paths["/site/regions/namerica/item/@id"]
	if attr == nil || attr.Count != 10 {
		t.Errorf("attr stat = %+v", attr)
	}
}

func TestCardinalityWithPatterns(t *testing.T) {
	c := itemsCollection(t, 30)
	s := Collect(c)
	cases := []struct {
		pat  string
		want int64
	}{
		{"/site/regions/namerica/item/quantity", 10},
		{"/site/regions/*/item/quantity", 30},
		{"//quantity", 30},
		{"//item", 30},
		{"//item/@id", 30},
		{"/site/regions/africa/item", 10},
		{"//nosuch", 0},
	}
	for _, tc := range cases {
		if got := s.Cardinality(pattern.MustParse(tc.pat)); got != tc.want {
			t.Errorf("Cardinality(%s) = %d, want %d", tc.pat, got, tc.want)
		}
	}
}

func TestTypedCardinality(t *testing.T) {
	c := itemsCollection(t, 30)
	s := Collect(c)
	q := pattern.MustParse("/site/regions/*/item/quantity")
	if got := s.TypedCardinality(q, sqltype.Double); got != 30 {
		t.Errorf("numeric quantity cardinality = %d", got)
	}
	name := pattern.MustParse("/site/regions/*/item/name")
	if got := s.TypedCardinality(name, sqltype.Double); got != 0 {
		t.Errorf("names as DOUBLE = %d, want 0", got)
	}
	if got := s.TypedCardinality(name, sqltype.Varchar); got != 30 {
		t.Errorf("names as VARCHAR = %d, want 30", got)
	}
	if got := s.TypedCardinality(q, sqltype.Date); got != 0 {
		t.Errorf("quantities as DATE = %d, want 0", got)
	}
}

func TestSelectivityEquality(t *testing.T) {
	c := itemsCollection(t, 100)
	s := Collect(c)
	q := pattern.MustParse("//quantity")
	v, _ := sqltype.Cast(sqltype.Double, "5")
	sel := s.Selectivity(q, sqltype.Eq, v)
	// 10 distinct values 0..9 per region path; equality sel ~ 1/10.
	if sel < 0.05 || sel > 0.2 {
		t.Errorf("Eq selectivity = %f, want ~0.1", sel)
	}
}

func TestSelectivityRange(t *testing.T) {
	c := itemsCollection(t, 300)
	s := Collect(c)
	q := pattern.MustParse("//quantity")
	v, _ := sqltype.Cast(sqltype.Double, "5")
	sel := s.Selectivity(q, sqltype.Lt, v)
	// Values 0..9 uniform: P(x < 5) = 0.5.
	if sel < 0.3 || sel > 0.7 {
		t.Errorf("Lt selectivity = %f, want ~0.5", sel)
	}
	if got := s.Selectivity(q, sqltype.Exists, v); got != 1.0 {
		t.Errorf("Exists selectivity = %f, want 1", got)
	}
	// Selectivity over an empty match set.
	if got := s.Selectivity(pattern.MustParse("//nosuch"), sqltype.Eq, v); got != 0 {
		t.Errorf("selectivity of unmatched pattern = %f, want 0", got)
	}
}

func TestIndexSizeEstimates(t *testing.T) {
	c := itemsCollection(t, 50)
	s := Collect(c)
	q := pattern.MustParse("//quantity")
	e := s.EstimateIndexEntries(q, sqltype.Double)
	if e != 50 {
		t.Errorf("entries = %d, want 50", e)
	}
	b := s.EstimateIndexBytes(q, sqltype.Double)
	if b <= 0 {
		t.Errorf("bytes = %d", b)
	}
	p := s.EstimateIndexPages(q, sqltype.Double)
	if p < 1 {
		t.Errorf("pages = %d", p)
	}
	// A more general pattern must never be estimated smaller.
	gen := pattern.MustParse("//*")
	if s.EstimateIndexBytes(gen, sqltype.Varchar) < s.EstimateIndexBytes(q, sqltype.Varchar) {
		t.Error("//* index estimated smaller than //quantity index")
	}
	if s.EstimateIndexPages(pattern.MustParse("//nosuch"), sqltype.Double) != 0 {
		t.Error("empty index should have 0 pages")
	}
}

func TestMatchingCache(t *testing.T) {
	c := itemsCollection(t, 10)
	s := Collect(c)
	p := pattern.MustParse("//item")
	a := s.Matching(p)
	b := s.Matching(p)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("Matching inconsistent: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Error("cache returned different PathStats")
		}
	}
}

func TestDistinctOverflow(t *testing.T) {
	c := store.NewCollection("big")
	var sb []byte
	sb = append(sb, "<r>"...)
	for i := 0; i < distinctCap+500; i++ {
		sb = append(sb, fmt.Sprintf("<v>%d</v>", i)...)
	}
	sb = append(sb, "</r>"...)
	if _, err := c.InsertXML(string(sb)); err != nil {
		t.Fatal(err)
	}
	s := Collect(c)
	ps := s.Paths["/r/v"]
	if ps == nil {
		t.Fatal("missing /r/v")
	}
	if !ps.distinctOverflow {
		t.Fatal("expected distinct overflow")
	}
	d := ps.Distinct()
	if d < int64(distinctCap) || d > ps.ValueCount {
		t.Errorf("Distinct estimate %d out of [%d, %d]", d, distinctCap, ps.ValueCount)
	}
}

func TestStatsVersionTracksCollection(t *testing.T) {
	c := itemsCollection(t, 5)
	s := Collect(c)
	if s.Version != c.Version() {
		t.Error("snapshot version mismatch")
	}
	c.InsertXML(`<site/>`)
	if s.Version == c.Version() {
		t.Error("version should change after insert")
	}
}

func TestHistogramFractions(t *testing.T) {
	var sample []float64
	for i := 0; i < 1000; i++ {
		sample = append(sample, float64(i))
	}
	h := NewEquiDepth(sample, 32)
	if h.Buckets() == 0 || h.Buckets() > 32 {
		t.Fatalf("buckets = %d", h.Buckets())
	}
	if got := h.FractionBelow(-5); got != 0 {
		t.Errorf("FractionBelow(-5) = %f", got)
	}
	if got := h.FractionBelow(5000); got != 1 {
		t.Errorf("FractionBelow(5000) = %f", got)
	}
	got := h.FractionBelow(500)
	if got < 0.45 || got > 0.55 {
		t.Errorf("FractionBelow(500) = %f, want ~0.5", got)
	}
	if NewEquiDepth(nil, 8) != nil {
		t.Error("empty sample should yield nil histogram")
	}
}

func TestHistogramSkewedData(t *testing.T) {
	// 90% of mass at 1, tail up to 1000: equi-depth keeps the estimate
	// of FractionBelow(2) near 0.9.
	var sample []float64
	for i := 0; i < 900; i++ {
		sample = append(sample, 1)
	}
	for i := 0; i < 100; i++ {
		sample = append(sample, float64(10*i+2))
	}
	h := NewEquiDepth(sample, 16)
	got := h.FractionBelow(2)
	if got < 0.8 || got > 1.0 {
		t.Errorf("skewed FractionBelow(2) = %f, want ~0.9", got)
	}
}

// Property: histogram FractionBelow is monotone and bounded in [0,1].
func TestHistogramMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		sample := make([]float64, n)
		for i := range sample {
			sample[i] = rng.NormFloat64() * 100
		}
		h := NewEquiDepth(sample, 1+rng.Intn(40))
		prev := -1.0
		for x := -400.0; x <= 400; x += 25 {
			fb := h.FractionBelow(x)
			if fb < 0 || fb > 1 || fb < prev-1e-9 {
				return false
			}
			prev = fb
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Cardinality of a generalized pattern is >= the original's.
func TestCardinalityMonotoneUnderGeneralization(t *testing.T) {
	c := itemsCollection(t, 40)
	s := Collect(c)
	base := pattern.MustParse("/site/regions/namerica/item/quantity")
	for i := 0; i < base.Len(); i++ {
		g, ok := pattern.WildcardAt(base, i)
		if !ok {
			continue
		}
		if s.Cardinality(g) < s.Cardinality(base) {
			t.Errorf("generalization %s has smaller cardinality", g)
		}
	}
}
